package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-list"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "p1") {
		t.Fatalf("figure list missing the pipeline ablation:\n%s", sb.String())
	}
}

func TestRunMissingFig(t *testing.T) {
	if err := run(io.Discard, []string{}); err == nil {
		t.Fatal("missing -fig accepted")
	}
}

func TestRunUnknownFig(t *testing.T) {
	if err := run(io.Discard, []string{"-fig", "99z"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(io.Discard, []string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunTinyFigure(t *testing.T) {
	// A minuscule scale keeps this a smoke test rather than a benchmark.
	if err := run(io.Discard, []string{"-fig", "3a", "-scale", "0.02", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONOutputParses(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "3a", "-scale", "0.02", "-seed", "2", "-json"}); err != nil {
		t.Fatal(err)
	}
	var figs []struct {
		ID     string `json:"id"`
		Metric string `json:"metric"`
		Series []struct {
			Label  string `json:"label"`
			Points []struct {
				X         float64 `json:"x"`
				MeanMs    float64 `json:"mean_ms"`
				Delivered int     `json:"delivered"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &figs); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(figs) != 1 || figs[0].ID != "3a" || figs[0].Metric != "latency" {
		t.Fatalf("unexpected JSON shape: %+v", figs)
	}
	if len(figs[0].Series) != 2 {
		t.Fatalf("series count = %d, want 2", len(figs[0].Series))
	}
	for _, s := range figs[0].Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %q has no points", s.Label)
		}
		for _, p := range s.Points {
			if p.Delivered == 0 && p.MeanMs == 0 {
				t.Fatalf("series %q point x=%v carries no data", s.Label, p.X)
			}
		}
	}
}

func TestRunJSONUnknownFig(t *testing.T) {
	if err := run(io.Discard, []string{"-fig", "99z", "-json"}); err == nil {
		t.Fatal("unknown figure accepted in -json mode")
	}
}

func TestRunCommaSeparatedFigs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "3a,p1", "-scale", "0.02", "-seed", "2", "-json"}); err != nil {
		t.Fatal(err)
	}
	var figs []struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(buf.Bytes(), &figs); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(figs) != 2 || figs[0].ID != "3a" || figs[1].ID != "p1" {
		t.Fatalf("figure list = %+v, want [3a p1]", figs)
	}
}

func TestRunTopoOverride(t *testing.T) {
	// 3a on the wan3 topology: just a smoke test that the override path
	// builds and runs.
	if err := run(io.Discard, []string{"-fig", "3a", "-scale", "0.02", "-topo", "wan3"}); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, []string{"-fig", "3a", "-topo", "atlantis"}); err == nil {
		t.Fatal("unknown -topo accepted")
	}
}

func TestRunPartitionOverride(t *testing.T) {
	if err := run(io.Discard, []string{"-fig", "3a", "-scale", "0.02", "-partition", "100ms:300ms:3"}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"nope", "100ms:50ms:3", "0s:1s:3", "1s:2s:zero", "1s:2s:3:flood"} {
		if err := run(io.Discard, []string{"-fig", "3a", "-partition", bad}); err == nil {
			t.Fatalf("bad -partition %q accepted", bad)
		}
	}
}

func TestRunWANFigureTiny(t *testing.T) {
	if err := run(io.Discard, []string{"-fig", "g1,g2", "-scale", "0.02", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSnapshotFigureTiny(t *testing.T) {
	// g4 (deep-lag snapshot comparison) and the -snapshot override on an
	// ordinary figure: both must build and run.
	if err := run(io.Discard, []string{"-fig", "g4", "-scale", "0.02", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, []string{"-fig", "3a", "-scale", "0.02", "-snapshot"}); err != nil {
		t.Fatal(err)
	}
}
