package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFig(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing -fig accepted")
	}
}

func TestRunUnknownFig(t *testing.T) {
	if err := run([]string{"-fig", "99z"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunTinyFigure(t *testing.T) {
	// A minuscule scale keeps this a smoke test rather than a benchmark.
	if err := run([]string{"-fig", "3a", "-scale", "0.02", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}
