package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, []string{"-list"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "p1") {
		t.Fatalf("figure list missing the pipeline ablation:\n%s", sb.String())
	}
}

func TestRunMissingFig(t *testing.T) {
	if err := run(io.Discard, []string{}); err == nil {
		t.Fatal("missing -fig accepted")
	}
}

func TestRunUnknownFig(t *testing.T) {
	if err := run(io.Discard, []string{"-fig", "99z"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(io.Discard, []string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunTinyFigure(t *testing.T) {
	// A minuscule scale keeps this a smoke test rather than a benchmark.
	if err := run(io.Discard, []string{"-fig", "3a", "-scale", "0.02", "-seed", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSONOutputParses(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []string{"-fig", "3a", "-scale", "0.02", "-seed", "2", "-json"}); err != nil {
		t.Fatal(err)
	}
	var figs []struct {
		ID     string `json:"id"`
		Metric string `json:"metric"`
		Series []struct {
			Label  string `json:"label"`
			Points []struct {
				X         float64 `json:"x"`
				MeanMs    float64 `json:"mean_ms"`
				Delivered int     `json:"delivered"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &figs); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(figs) != 1 || figs[0].ID != "3a" || figs[0].Metric != "latency" {
		t.Fatalf("unexpected JSON shape: %+v", figs)
	}
	if len(figs[0].Series) != 2 {
		t.Fatalf("series count = %d, want 2", len(figs[0].Series))
	}
	for _, s := range figs[0].Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %q has no points", s.Label)
		}
		for _, p := range s.Points {
			if p.Delivered == 0 && p.MeanMs == 0 {
				t.Fatalf("series %q point x=%v carries no data", s.Label, p.X)
			}
		}
	}
}

func TestRunJSONUnknownFig(t *testing.T) {
	if err := run(io.Discard, []string{"-fig", "99z", "-json"}); err == nil {
		t.Fatal("unknown figure accepted in -json mode")
	}
}
