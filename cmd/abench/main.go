// Command abench regenerates the paper's evaluation figures on the
// simulated test beds.
//
// Usage:
//
//	abench -list                    # list available figures
//	abench -fig 3a                  # regenerate one figure
//	abench -fig p1,g1               # regenerate several figures
//	abench -fig all                 # regenerate everything (slow)
//	abench -fig 1b -scale 0.2       # quick low-resolution run
//	abench -fig p1 -json            # machine-readable results on stdout
//	abench -fig 7a -topo wan3       # re-run a figure on the 3-site WAN
//	abench -fig g1 -partition 0.4s:1.1s:3   # cut p3 off for 0.7 s
//	abench -fig g2 -partition 0.4s:1.1s:3:drop -recover  # black-hole cut, recovery on
//
// Output is one table per figure: rows are x-axis values, columns the mean
// atomic broadcast latency of each stack (delivered msg/s for
// throughput-metric figures such as the pipeline ablation p1 or the WAN
// partition figure g2). A '*' marks saturated points where some messages
// were still undelivered at the measurement horizon.
//
// With -json, the same sweep is emitted instead as an indented JSON array
// (one object per figure, every Result counter included), suitable for
// archiving as BENCH_<rev>.json and diffing across revisions.
//
// -topo re-runs any figure on a named network model (setup1, setup2,
// pipeline, wan3) instead of the figure's own; -partition from:until:procs
// injects a partition episode (delay semantics; append ":drop" for
// black-hole semantics) cutting the comma-separated process list off
// between the two virtual instants; -recover enables the recovery subsystem
// (retransmission + anti-entropy + decide-relay + payload fetch) on every
// process, which makes drop-mode episodes survivable — figure g3 is the
// built-in comparison; -snapshot additionally enables snapshot state
// transfer (implying -recover), which extends catch-up beyond the
// decide-relay's bounded decision log to arbitrarily deep lags — figure g4
// is the built-in comparison; -adaptive enables the adaptive control plane
// (backlog-driven pipeline width and MaxBatch, RTT-driven anti-entropy
// cadence) on every process — figure p2 is the built-in comparison of the
// controller against hand-picked static widths under ramped load.
//
// Observability: -trace <file> runs every selected figure with lifecycle
// tracing on and writes the recordings — JSONL by default (byte-identical
// across identical runs), Chrome trace_event when the file name ends in
// .json (open in chrome://tracing or Perfetto); traced runs also report the
// per-stage latency decomposition (figure o1 is the built-in traced sweep).
// -cpuprofile and -memprofile write standard pprof profiles of the abench
// process itself for `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"abcast/internal/bench"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "abench:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("abench", flag.ContinueOnError)
	var (
		fig       = fs.String("fig", "", "figure id(s) to regenerate (e.g. 1a or p1,g1) or 'all'")
		scale     = fs.Float64("scale", 1.0, "workload scale in (0,1]: smaller = faster, noisier")
		seed      = fs.Int64("seed", 1, "deterministic simulation seed")
		list      = fs.Bool("list", false, "list available figures")
		jsonOut   = fs.Bool("json", false, "emit machine-readable JSON instead of tables")
		topo      = fs.String("topo", "", "network model override: setup1, setup2, pipeline, wan3")
		partition = fs.String("partition", "", "partition episode override: from:until:p,q[,...][:drop] (e.g. 0.4s:1.1s:3)")
		recovery  = fs.Bool("recover", false, "enable the recovery subsystem (retransmission, decide-relay, payload fetch) on every figure")
		snapshot  = fs.Bool("snapshot", false, "enable snapshot state transfer for deep catch-up on every figure (implies -recover)")
		adaptive  = fs.Bool("adaptive", false, "enable the adaptive control plane (backlog-driven pipeline width and MaxBatch, RTT-driven anti-entropy cadence) on every figure")
		traceOut  = fs.String("trace", "", "trace every selected figure's runs and write the lifecycle events to this file (.json suffix → Chrome trace_event for chrome://tracing, anything else → JSONL)")
		cpuOut    = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file (inspect with go tool pprof)")
		memOut    = fs.String("memprofile", "", "write an allocation profile taken at exit to this file (inspect with go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuOut != "" {
		f, err := os.Create(*cpuOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memOut != "" {
		defer func() {
			f, err := os.Create(*memOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "abench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows what's retained
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "abench:", err)
			}
		}()
	}
	if *list {
		for _, id := range bench.FigureIDs() {
			fmt.Fprintf(out, "%-4s %s\n", id, bench.Figures()[id].Describe())
		}
		return nil
	}
	if *fig == "" {
		fs.Usage()
		return fmt.Errorf("missing -fig (or -list)")
	}
	override, err := buildOverride(*topo, *partition, *recovery, *snapshot, *adaptive, *traceOut != "")
	if err != nil {
		return err
	}
	var ids []string
	for _, id := range strings.Split(*fig, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	if strings.EqualFold(*fig, "all") {
		ids = bench.FigureIDs()
	}
	figs := bench.Figures()
	specs := make([]bench.FigureSpec, 0, len(ids))
	for _, id := range ids {
		spec, ok := figs[id]
		if !ok {
			return fmt.Errorf("unknown figure %q (use -list)", id)
		}
		if override != nil {
			spec = spec.WithOverride(override)
		}
		specs = append(specs, spec)
	}
	if *traceOut == "" {
		if *jsonOut {
			return bench.RunSpecsJSON(out, specs, *scale, *seed)
		}
		for _, spec := range specs {
			if err := bench.RunSpecAndPrint(out, spec, *scale, *seed); err != nil {
				return err
			}
		}
		return nil
	}
	// Traced path: keep the full figures so their recordings can be
	// exported after the normal table/JSON output.
	figsRun, err := bench.RunSpecs(specs, *scale, *seed)
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := bench.WriteJSON(out, figsRun, *scale, *seed); err != nil {
			return err
		}
	} else {
		for _, f := range figsRun {
			f.Print(out)
		}
	}
	format := "jsonl"
	if strings.HasSuffix(*traceOut, ".json") {
		format = "chrome"
	}
	tf, err := os.Create(*traceOut)
	if err != nil {
		return err
	}
	defer tf.Close()
	return bench.WriteTraces(tf, figsRun, format)
}

// buildOverride turns the -topo, -partition, -recover, -snapshot,
// -adaptive and -trace flags into an experiment post-processor (nil when
// no flag is set).
func buildOverride(topo, partition string, recovery, snapshot, adaptive, traced bool) (func(*bench.Experiment), error) {
	var steps []func(*bench.Experiment)
	if traced {
		steps = append(steps, func(e *bench.Experiment) { e.Trace = true })
	}
	if recovery || snapshot {
		steps = append(steps, func(e *bench.Experiment) {
			e.Recovery = true
			e.Snapshot = e.Snapshot || snapshot
		})
	}
	if adaptive {
		steps = append(steps, func(e *bench.Experiment) { e.Adaptive = true })
	}
	if topo != "" {
		params, err := bench.NamedParams(topo)
		if err != nil {
			return nil, err
		}
		steps = append(steps, func(e *bench.Experiment) { e.Params = params })
	}
	if partition != "" {
		from, until, procs, drop, err := parsePartition(partition)
		if err != nil {
			return nil, err
		}
		steps = append(steps, func(e *bench.Experiment) {
			e.PartitionFrom = from
			e.PartitionUntil = until
			e.PartitionMinority = procs
			e.PartitionDrop = drop
		})
	}
	if len(steps) == 0 {
		return nil, nil
	}
	return func(e *bench.Experiment) {
		for _, s := range steps {
			s(e)
		}
	}, nil
}

// parsePartition parses from:until:p,q[,...][:drop].
func parsePartition(s string) (from, until time.Duration, procs []int, drop bool, err error) {
	parts := strings.Split(s, ":")
	if len(parts) == 4 && parts[3] == "drop" {
		drop = true
		parts = parts[:3]
	}
	if len(parts) != 3 {
		return 0, 0, nil, false, fmt.Errorf("bad -partition %q, want from:until:procs[:drop]", s)
	}
	if from, err = time.ParseDuration(parts[0]); err != nil {
		return 0, 0, nil, false, fmt.Errorf("bad -partition start: %w", err)
	}
	if until, err = time.ParseDuration(parts[1]); err != nil {
		return 0, 0, nil, false, fmt.Errorf("bad -partition end: %w", err)
	}
	if until <= from || from <= 0 {
		return 0, 0, nil, false, fmt.Errorf("bad -partition window %v..%v, want 0 < from < until", from, until)
	}
	for _, f := range strings.Split(parts[2], ",") {
		p, perr := strconv.Atoi(strings.TrimSpace(f))
		if perr != nil || p < 1 {
			return 0, 0, nil, false, fmt.Errorf("bad -partition process %q", f)
		}
		procs = append(procs, p)
	}
	return from, until, procs, drop, nil
}
