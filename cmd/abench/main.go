// Command abench regenerates the paper's evaluation figures on the
// simulated test beds.
//
// Usage:
//
//	abench -list              # list available figures
//	abench -fig 3a            # regenerate one figure
//	abench -fig all           # regenerate everything (slow)
//	abench -fig 1b -scale 0.2 # quick low-resolution run
//	abench -fig p1 -json      # machine-readable results on stdout
//
// Output is one table per figure: rows are x-axis values, columns the mean
// atomic broadcast latency of each stack (delivered msg/s for
// throughput-metric figures such as the pipeline ablation p1). A '*' marks
// saturated points where some messages were still undelivered at the
// measurement horizon.
//
// With -json, the same sweep is emitted instead as an indented JSON array
// (one object per figure, every Result counter included), suitable for
// archiving as BENCH_<rev>.json and diffing across revisions.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"abcast/internal/bench"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "abench:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, args []string) error {
	fs := flag.NewFlagSet("abench", flag.ContinueOnError)
	var (
		fig     = fs.String("fig", "", "figure id to regenerate (e.g. 1a, 3b, 7a) or 'all'")
		scale   = fs.Float64("scale", 1.0, "workload scale in (0,1]: smaller = faster, noisier")
		seed    = fs.Int64("seed", 1, "deterministic simulation seed")
		list    = fs.Bool("list", false, "list available figures")
		jsonOut = fs.Bool("json", false, "emit machine-readable JSON instead of tables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range bench.FigureIDs() {
			fmt.Fprintf(out, "%-4s %s\n", id, bench.Figures()[id].Title)
		}
		return nil
	}
	if *fig == "" {
		fs.Usage()
		return fmt.Errorf("missing -fig (or -list)")
	}
	ids := []string{*fig}
	if strings.EqualFold(*fig, "all") {
		ids = bench.FigureIDs()
	}
	if *jsonOut {
		return bench.RunJSON(out, ids, *scale, *seed)
	}
	for _, id := range ids {
		if err := bench.RunAndPrint(out, id, *scale, *seed); err != nil {
			return err
		}
	}
	return nil
}
