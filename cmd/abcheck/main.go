// Command abcheck runs the repository's determinism analyzers (maporder,
// walltime, eventloop — see internal/analysis) over the module.
//
// Standalone use, from anywhere inside the module:
//
//	go run ./cmd/abcheck ./...          # analyze every package
//	go run ./cmd/abcheck ./internal/fd  # analyze one package
//	go run ./cmd/abcheck -json ./...    # machine-readable findings
//
// Findings print one per line as file:line:col: analyzer: message and the
// exit status is 1 when there are any, so the command gates CI directly.
// With -json the findings are emitted as a JSON array of
// {analyzer, file, line, col, message} objects (empty array when clean)
// for the bench-trajectory tooling.
//
// The binary also speaks the `go vet` driver protocol (-V=full and
// single-argument *.cfg invocations), so it can be used as
//
//	go build -o /tmp/abcheck ./cmd/abcheck
//	go vet -vettool=/tmp/abcheck ./...
//
// In that mode type information comes from the compiler's export data
// (handed over in the .cfg file) instead of abcheck's own source loader.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"abcast/internal/analysis"
)

// version feeds the go command's build cache via -V=full; bump it when
// analyzer semantics change so stale cached vet results are invalidated.
const version = "1.0.0"

func main() {
	log.SetFlags(0)
	log.SetPrefix("abcheck: ")
	var (
		jsonOut  = flag.Bool("json", false, "emit findings as a JSON array")
		showV    = flag.String("V", "", "print version and exit (go vet protocol)")
		flagsReq = flag.Bool("flags", false, "describe flags in JSON (go vet protocol)")
	)
	flag.Parse()
	if *showV != "" {
		// The go command requires "<name> version <id>" on stdout.
		fmt.Printf("abcheck version %s\n", version)
		return
	}
	if *flagsReq {
		fmt.Println("[]")
		return
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(args[0]))
	}
	os.Exit(runStandalone(args, *jsonOut))
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// runStandalone loads the requested packages with the source loader and
// reports findings; it returns the process exit code.
func runStandalone(patterns []string, jsonOut bool) int {
	modPath, modDir, err := analysis.FindModule(".")
	if err != nil {
		log.Print(err)
		return 2
	}
	loader := analysis.NewLoader(modPath, modDir)
	paths, err := expandPatterns(loader, modPath, modDir, patterns)
	if err != nil {
		log.Print(err)
		return 2
	}
	findings := []finding{}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			log.Print(err)
			return 2
		}
		diags, err := analysis.RunPackage(pkg, analysis.All)
		if err != nil {
			log.Print(err)
			return 2
		}
		for _, d := range diags {
			file := d.Pos.Filename
			if rel, err := filepath.Rel(modDir, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
			findings = append(findings, finding{
				Analyzer: d.Analyzer,
				File:     file,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(findings); err != nil {
			log.Print(err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// expandPatterns resolves command-line package patterns ("./...", a
// relative directory, or an import path; default everything) to import
// paths.
func expandPatterns(loader *analysis.Loader, modPath, modDir string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	all, err := loader.ModulePackages()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				for _, p := range all {
					add(p)
				}
				continue
			}
		}
		path := pat
		if strings.HasPrefix(pat, ".") || filepath.IsAbs(pat) {
			abs, err := filepath.Abs(pat)
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(modDir, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("%s: outside module %s", pat, modPath)
			}
			if rel == "." {
				path = modPath
			} else {
				path = modPath + "/" + filepath.ToSlash(rel)
			}
		}
		matched := false
		for _, p := range all {
			if p == path || (recursive && strings.HasPrefix(p, path+"/")) {
				add(p)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("no packages match %q", pat)
		}
	}
	return out, nil
}

// vetConfig mirrors the fields of the JSON config `go vet` hands to a
// -vettool (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoVersion   string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// runVet analyzes the single compilation unit described by a go vet
// config file, using the compiler's export data for imports.
func runVet(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Print(err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("%s: %v", cfgFile, err)
		return 2
	}
	// abcheck exports no analysis facts; write an empty vetx so the go
	// command's cache bookkeeping stays happy, and skip facts-only runs.
	if cfg.VetxOutput != "" {
		_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			log.Print(err)
			return 2
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Print(err)
		return 2
	}
	// go vet hands test variants of a package over with their _test.go
	// files in the unit. abcheck's contract covers non-test files only
	// (tests legitimately use the host clock and poke protocol state
	// during setup), so those files are typechecked but not analyzed —
	// matching what the standalone loader does.
	analyzed := files[:0:0]
	for _, f := range files {
		if name := fset.Position(f.Pos()).Filename; !strings.HasSuffix(name, "_test.go") {
			analyzed = append(analyzed, f)
		}
	}
	pkg := &analysis.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: analyzed,
		Types: tpkg,
		Info:  info,
	}
	diags, err := analysis.RunPackage(pkg, analysis.All)
	if err != nil {
		log.Print(err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
