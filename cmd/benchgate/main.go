// Command benchgate enforces the repository's allocation budgets: it reads
// `go test -bench -benchmem` output on stdin, extracts each budgeted
// benchmark's allocs/op, and fails when a measurement exceeds its budget by
// more than the tolerance (default 10%). The budgets live in
// bench_budgets.json at the repository root; CI pipes the three hot-path
// benchmarks through this gate so an accidental allocation on the ordering,
// consensus or link fast path fails the build instead of landing silently.
//
// Usage:
//
//	go test -run '^$' -bench 'OrderedDelivery|InstanceDecide|SendDispatch' \
//	    -benchtime 1x -benchmem ./internal/... | benchgate -budgets bench_budgets.json
//
// The gated benchmarks run a fixed deterministic workload, so allocs/op is
// exact and stable at -benchtime 1x; the tolerance absorbs Go-runtime
// variation across toolchain versions, not noise. Every budgeted benchmark
// must appear in the input — a silently skipped benchmark fails the gate.
// After an intentional change, refresh the budget with the measured value.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

func main() {
	if err := run(os.Stdin, os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// benchLine matches one -benchmem result line, capturing the benchmark name
// (GOMAXPROCS suffix stripped) and its allocs/op.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+.*\s(\d+)\s+allocs/op`)

func run(in io.Reader, out io.Writer, args []string) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	budgetsPath := fs.String("budgets", "bench_budgets.json", "path to the allocation budgets file")
	tolerance := fs.Float64("tolerance", 0.10, "allowed fractional overshoot before failing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	raw, err := os.ReadFile(*budgetsPath)
	if err != nil {
		return err
	}
	budgets := map[string]int64{}
	if err := json.Unmarshal(raw, &budgets); err != nil {
		return fmt.Errorf("parse %s: %w", *budgetsPath, err)
	}
	if len(budgets) == 0 {
		return fmt.Errorf("%s declares no budgets", *budgetsPath)
	}

	measured := map[string]int64{}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		allocs, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad allocs/op on %q: %w", sc.Text(), err)
		}
		measured[m[1]] = allocs
	}
	if err := sc.Err(); err != nil {
		return err
	}

	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		budget := budgets[name]
		got, ok := measured[name]
		if !ok {
			fmt.Fprintf(out, "FAIL %s: not found in benchmark output\n", name)
			failed = true
			continue
		}
		limit := int64(float64(budget) * (1 + *tolerance))
		status := "ok  "
		if got > limit {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(out, "%s %s: %d allocs/op (budget %d, limit %d)\n", status, name, got, budget, limit)
	}
	if failed {
		return fmt.Errorf("allocation budgets exceeded (see above); refresh bench_budgets.json only for intentional changes")
	}
	return nil
}
