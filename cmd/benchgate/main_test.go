package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBudgets(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "budgets.json")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const sampleOutput = `goos: linux
BenchmarkEngineOrderedDelivery 	       1	   3457662 ns/op	  854416 B/op	   22577 allocs/op
BenchmarkInstanceDecide-8 	       1	     40009 ns/op	   12080 B/op	     228 allocs/op
ok  	abcast/internal/core	0.009s
`

func TestGatePasses(t *testing.T) {
	p := writeBudgets(t, `{"BenchmarkEngineOrderedDelivery": 22577, "BenchmarkInstanceDecide": 228}`)
	var out strings.Builder
	if err := run(strings.NewReader(sampleOutput), &out, []string{"-budgets", p}); err != nil {
		t.Fatalf("gate failed on budgeted output: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok   BenchmarkInstanceDecide: 228") {
		t.Fatalf("missing per-benchmark report:\n%s", out.String())
	}
}

func TestGateStripsGomaxprocsSuffix(t *testing.T) {
	p := writeBudgets(t, `{"BenchmarkInstanceDecide": 228}`)
	var out strings.Builder
	if err := run(strings.NewReader(sampleOutput), &out, []string{"-budgets", p}); err != nil {
		t.Fatalf("suffix form not matched: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	// 228 → 260 is a 14% regression, beyond the 10% tolerance.
	p := writeBudgets(t, `{"BenchmarkInstanceDecide": 228}`)
	input := "BenchmarkInstanceDecide 	 1	 40009 ns/op	 12080 B/op	 260 allocs/op\n"
	var out strings.Builder
	err := run(strings.NewReader(input), &out, []string{"-budgets", p})
	if err == nil {
		t.Fatalf("14%% regression passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkInstanceDecide") {
		t.Fatalf("no FAIL line:\n%s", out.String())
	}
}

func TestGateAllowsWithinTolerance(t *testing.T) {
	// 228 → 245 is ~7.5%, inside the 10% tolerance.
	p := writeBudgets(t, `{"BenchmarkInstanceDecide": 228}`)
	input := "BenchmarkInstanceDecide 	 1	 40009 ns/op	 12080 B/op	 245 allocs/op\n"
	var out strings.Builder
	if err := run(strings.NewReader(input), &out, []string{"-budgets", p}); err != nil {
		t.Fatalf("within-tolerance run failed: %v\n%s", err, out.String())
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	p := writeBudgets(t, `{"BenchmarkLinkSendDispatch": 80}`)
	var out strings.Builder
	if err := run(strings.NewReader(sampleOutput), &out, []string{"-budgets", p}); err == nil {
		t.Fatal("budgeted benchmark absent from output but gate passed")
	}
}

func TestGateRejectsEmptyBudgets(t *testing.T) {
	p := writeBudgets(t, `{}`)
	if err := run(strings.NewReader(sampleOutput), &strings.Builder{}, []string{"-budgets", p}); err == nil {
		t.Fatal("empty budgets accepted")
	}
}
