// Crashdemo replays Section 2.2 of the paper on the deterministic
// simulator: the same adversarial schedule is run against (a) the faulty
// stack — an unmodified consensus algorithm executed directly on message
// identifiers — and (b) the indirect consensus stack.
//
// Schedule (n = 3; the round-1 coordinator is p2):
//
//  1. p1 and p3 atomically broadcast m1 and m3 (normal traffic).
//  2. p2 atomically broadcasts m, but the reliable-broadcast DATA carrying
//     m is delayed arbitrarily (reliable channels are not FIFO in the
//     asynchronous model) while p2's consensus traffic flows normally.
//  3. p1 and p3 broadcast m4 and m5, joining the same consensus instance.
//  4. The faulty stack acks p2's proposal {id(m)} blindly; id(m) is
//     decided. p2 then crashes, losing the in-flight DATA forever.
//
// Result: the faulty stack blocks forever behind id(m), so m4/m5 — from
// correct senders — are never delivered: Validity is violated. The indirect
// stack refuses (nack) the proposal because rcv({id(m)}) is false, so id(m)
// is never ordered and everything else is delivered.
//
//	go run ./examples/crashdemo
package main

import (
	"fmt"
	"log"
	"time"

	"abcast/internal/core"
	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== faulty stack: unmodified consensus on message identifiers ===")
	if err := scenario(core.VariantFaultyIDs); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("=== correct stack: indirect consensus (Algorithm 2) ===")
	return scenario(core.VariantIndirectCT)
}

// scenario runs the Section 2.2 schedule against the given stack.
func scenario(variant core.Variant) error {
	const n = 3
	params := netmodel.Setup1()
	// The adversary delays p2's reliable-broadcast payloads indefinitely.
	params.LatencyFn = func(from, to stack.ProcessID, env stack.Envelope) time.Duration {
		if from == 2 && env.Proto == stack.ProtoRB {
			return time.Hour
		}
		return params.Latency
	}
	w := simnet.NewWorld(n, params, 2006)

	engines := make([]*core.Engine, n+1)
	delivered := make([][]string, n+1)
	for i := 1; i <= n; i++ {
		i := i
		node := w.Node(stack.ProcessID(i))
		det := fd.NewHeartbeat(node, fd.DefaultConfig())
		eng, err := core.New(node, core.Config{
			Variant:  variant,
			RB:       rbcast.KindEager,
			Detector: det,
			Deliver: func(app *msg.App) {
				delivered[i] = append(delivered[i], string(app.Payload))
			},
		})
		if err != nil {
			return err
		}
		engines[i] = eng
	}

	ab := func(p stack.ProcessID, at time.Duration, payload string) {
		w.After(p, at, func() { engines[p].ABroadcast([]byte(payload)) })
	}
	ab(1, time.Millisecond, "m1")
	ab(3, time.Millisecond, "m3")
	ab(2, 50*time.Millisecond, "m (payload lost)")
	ab(1, 51*time.Millisecond, "m4")
	ab(3, 51*time.Millisecond, "m5")
	w.After(1, time.Second, func() {
		fmt.Println("  t=1s  p2 crashes; its in-flight messages are lost")
		w.Crash(2, simnet.DropInFlight)
	})

	w.RunFor(30 * time.Second)

	for _, p := range []stack.ProcessID{1, 3} {
		fmt.Printf("  p%d delivered: %v\n", p, delivered[p])
		if id, blocked := engines[p].BlockedOn(); blocked {
			fmt.Printf("  p%d is BLOCKED forever waiting for message %v — Validity violated\n", p, id)
		}
	}
	ok := len(delivered[1]) == 4 && len(delivered[3]) == 4
	if variant.Correct() {
		if !ok {
			return fmt.Errorf("correct stack failed to deliver all survivor messages")
		}
		fmt.Println("  all messages from correct processes delivered ✓")
	} else if ok {
		return fmt.Errorf("faulty stack unexpectedly survived the schedule")
	}
	return nil
}
