// Replicated key-value store: state machine replication over atomic
// broadcast.
//
// Each replica applies the exact same sequence of commands, so replicas
// that start identical stay identical — even when writes to the same keys
// race from different replicas, and even when a replica crashes mid-run.
//
//	go run ./examples/replicated-kv
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"time"

	"abcast"
)

// command is one replicated state-machine operation.
type command struct {
	Op    string `json:"op"` // "set" or "del"
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
}

// store is one replica's state machine.
type store struct {
	data    map[string]string
	applied int
}

func newStore() *store { return &store{data: make(map[string]string)} }

// apply executes one command; called in delivery order only.
func (s *store) apply(c command) {
	switch c.Op {
	case "set":
		s.data[c.Key] = c.Value
	case "del":
		delete(s.data, c.Key)
	}
	s.applied++
}

// fingerprint summarizes the state deterministically.
func (s *store) fingerprint() string {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + "=" + s.data[k] + ";"
	}
	return out
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 4 // 4 replicas: IndirectMR tolerates one crash at n ≥ 4
	cluster, err := abcast.New(n, abcast.Options{Stack: abcast.IndirectMR})
	if err != nil {
		return err
	}
	defer cluster.Close()

	replicas := make([]*store, n+1)
	for p := 1; p <= n; p++ {
		replicas[p] = newStore()
	}

	// Conflicting writes from the three replicas that stay alive:
	// everyone fights over the same keys. (Replica 4 is a follower that
	// will crash mid-run; commands broadcast by a crashing process may
	// legitimately be lost, so the example does not count on them.)
	cmds := 0
	submit := func(p int, c command) error {
		buf, err := json.Marshal(c)
		if err != nil {
			return err
		}
		cmds++
		return cluster.Broadcast(p, buf)
	}
	for round := 0; round < 5; round++ {
		for p := 1; p <= n-1; p++ {
			if err := submit(p, command{Op: "set", Key: "leader", Value: fmt.Sprintf("p%d", p)}); err != nil {
				return err
			}
			if err := submit(p, command{Op: "set", Key: fmt.Sprintf("round-%d", round), Value: fmt.Sprintf("p%d", p)}); err != nil {
				return err
			}
		}
	}
	if err := submit(2, command{Op: "del", Key: "round-0"}); err != nil {
		return err
	}

	// Crash one replica mid-stream; the rest must converge regardless.
	cluster.Crash(4)

	survivors := []int{1, 2, 3}
	for _, p := range survivors {
		for replicas[p].applied < cmds {
			d, ok := cluster.Next(p, 15*time.Second)
			if !ok {
				return fmt.Errorf("replica %d stalled at %d/%d commands", p, replicas[p].applied, cmds)
			}
			var c command
			if err := json.Unmarshal(d.Payload, &c); err != nil {
				return err
			}
			replicas[p].apply(c)
		}
	}

	fmt.Printf("submitted %d racing commands from %d replicas (one crashed mid-run)\n\n", cmds, n)
	base := replicas[survivors[0]].fingerprint()
	for _, p := range survivors {
		fp := replicas[p].fingerprint()
		fmt.Printf("replica %d: applied=%d state=%q\n", p, replicas[p].applied, fp)
		if fp != base {
			return fmt.Errorf("replica %d diverged", p)
		}
	}
	fmt.Println("\nall surviving replicas converged to the same state ✓")
	return nil
}
