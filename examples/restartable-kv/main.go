// Restartable replicated key-value store: crash recovery from a persistent
// checkpoint.
//
// The replicated-kv example stops at crash tolerance — the survivors
// converge, the crashed replica is gone for good. Here the cluster runs
// with Options.Persist, so each process checkpoints its delivered prefix
// and Cluster.Restart can bring the crashed replica back: the fresh
// incarnation resumes from its checkpoint, catches the commands it missed
// through the repair paths, and even broadcasts again under a sequence
// number guaranteed (by the write-ahead log) not to collide with its
// pre-crash identity.
//
// Deliveries across a restart are at-least-once: the suffix above the last
// checkpoint is redelivered, in unchanged order. The store therefore keeps
// one high-water mark per sender and skips commands at or below it — the
// standard two-line dedupe any at-least-once consumer needs.
//
//	go run ./examples/restartable-kv
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"time"

	"abcast"
)

// command is one replicated state-machine operation.
type command struct {
	Op    string `json:"op"` // "set" or "del"
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
}

// store is one replica's state machine, safe under at-least-once delivery:
// lastSeq records the newest applied sequence number per sender, and apply
// ignores anything at or below it (redelivered suffix after a restart).
type store struct {
	data    map[string]string
	lastSeq map[int]uint64
	applied int
}

func newStore() *store {
	return &store{data: make(map[string]string), lastSeq: make(map[int]uint64)}
}

// apply executes one delivery; called in delivery order only. Returns false
// for a duplicate.
func (s *store) apply(d abcast.Delivery) (bool, error) {
	if d.Seq <= s.lastSeq[d.Sender] {
		return false, nil // redelivered below the high-water mark
	}
	s.lastSeq[d.Sender] = d.Seq
	var c command
	if err := json.Unmarshal(d.Payload, &c); err != nil {
		return false, err
	}
	switch c.Op {
	case "set":
		s.data[c.Key] = c.Value
	case "del":
		delete(s.data, c.Key)
	}
	s.applied++
	return true, nil
}

// fingerprint summarizes the state deterministically.
func (s *store) fingerprint() string {
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + "=" + s.data[k] + ";"
	}
	return out
}

// drain applies deliveries at replica p until count new commands landed.
func drain(cluster *abcast.Cluster, replicas []*store, p, count int) error {
	for fresh := 0; fresh < count; {
		d, ok := cluster.Next(p, 15*time.Second)
		if !ok {
			return fmt.Errorf("replica %d stalled at %d/%d commands", p, fresh, count)
		}
		applied, err := replicas[p].apply(d)
		if err != nil {
			return err
		}
		if applied {
			fresh++
		}
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 3
	cluster, err := abcast.New(n, abcast.Options{
		Stack: abcast.IndirectCT,
		// Checkpoint often so the demo's restart resumes from a recent
		// boundary; an empty Dir keeps the stores in memory (state survives
		// Restart, not the OS process — set Dir for that).
		Persist: &abcast.PersistOptions{Interval: 50 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	replicas := make([]*store, n+1)
	for p := 1; p <= n; p++ {
		replicas[p] = newStore()
	}

	submit := func(p int, c command) error {
		buf, err := json.Marshal(c)
		if err != nil {
			return err
		}
		return cluster.Broadcast(p, buf)
	}

	// Phase 1: racing writes from every replica, including the one that is
	// about to crash.
	phase1 := 0
	for round := 0; round < 3; round++ {
		for p := 1; p <= n; p++ {
			if err := submit(p, command{Op: "set", Key: fmt.Sprintf("round-%d", round), Value: fmt.Sprintf("p%d", p)}); err != nil {
				return err
			}
			phase1++
		}
	}
	for p := 1; p <= n; p++ {
		if err := drain(cluster, replicas, p, phase1); err != nil {
			return err
		}
	}
	// Give the checkpoint timer a chance to pass the delivered boundary.
	time.Sleep(300 * time.Millisecond)

	// Phase 2: replica 3 crashes; the survivors keep writing without it.
	cluster.Crash(3)
	fmt.Println("replica 3 crashed; survivors keep ordering")
	phase2 := 0
	for i := 0; i < 3; i++ {
		for _, p := range []int{1, 2} {
			if err := submit(p, command{Op: "set", Key: fmt.Sprintf("down-%d", i), Value: fmt.Sprintf("p%d", p)}); err != nil {
				return err
			}
			phase2++
		}
	}
	for _, p := range []int{1, 2} {
		if err := drain(cluster, replicas, p, phase2); err != nil {
			return err
		}
	}

	// Phase 3: restart replica 3 from its checkpoint. The new incarnation
	// redelivers its post-checkpoint suffix (deduped by the store), catches
	// the phase-2 commands it missed, and broadcasts again — under a fresh
	// sequence number, so the command is applied everywhere exactly once.
	if err := cluster.Restart(3); err != nil {
		return err
	}
	fmt.Println("replica 3 restarted from its checkpoint")
	if err := submit(3, command{Op: "set", Key: "back", Value: "p3"}); err != nil {
		return err
	}
	if err := drain(cluster, replicas, 3, phase2+1); err != nil {
		return err
	}
	for _, p := range []int{1, 2} {
		if err := drain(cluster, replicas, p, 1); err != nil {
			return err
		}
	}

	total := phase1 + phase2 + 1
	fmt.Printf("\nsubmitted %d commands across crash and restart\n\n", total)
	base := replicas[1].fingerprint()
	for p := 1; p <= n; p++ {
		fp := replicas[p].fingerprint()
		fmt.Printf("replica %d: applied=%d state=%q\n", p, replicas[p].applied, fp)
		if fp != base || replicas[p].applied != total {
			return fmt.Errorf("replica %d diverged", p)
		}
	}
	fmt.Println("\nall replicas — including the restarted one — converged ✓")
	return nil
}
