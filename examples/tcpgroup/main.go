// TCP group: the same atomic broadcast stack the simulator benchmarks,
// running over real TCP sockets on loopback — three peers, three
// listeners, gob-encoded envelopes, heartbeat failure detection.
//
// In a real deployment each peer would be its own OS process on its own
// machine; this demo hosts all three peers in one process (each with its
// own listener and real loopback connections) so it is self-contained and
// needs no flags. Splitting it across machines means running one Peer per
// host and passing the full address map to Start — see internal/tcpnet.
//
//	go run ./examples/tcpgroup
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"abcast/internal/core"
	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/rbcast"
	"abcast/internal/stack"
	"abcast/internal/tcpnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n, perProc = 3, 2

	// Listen first so every peer knows everyone's real port.
	peers := make([]*tcpnet.Peer, n+1)
	addrs := make(map[stack.ProcessID]string, n)
	for i := 1; i <= n; i++ {
		p, err := tcpnet.Listen(stack.ProcessID(i), n, "127.0.0.1:0")
		if err != nil {
			return err
		}
		peers[i] = p
		addrs[stack.ProcessID(i)] = p.Addr()
		defer p.Close()
	}
	fmt.Println("peers listening:")
	for i := 1; i <= n; i++ {
		fmt.Printf("  p%d @ %s\n", i, addrs[stack.ProcessID(i)])
	}

	// Wire the full stack on each peer, then start the group.
	var mu sync.Mutex
	order := make([][]string, n+1)
	engines := make([]*core.Engine, n+1)
	for i := 1; i <= n; i++ {
		i := i
		node := peers[i].Node()
		det := fd.NewHeartbeat(node, fd.DefaultConfig())
		eng, err := core.New(node, core.Config{
			Variant:  core.VariantIndirectCT,
			RB:       rbcast.KindLazy, // O(n) diffusion in good runs
			Detector: det,
			Deliver: func(app *msg.App) {
				mu.Lock()
				order[i] = append(order[i], string(app.Payload))
				mu.Unlock()
			},
		})
		if err != nil {
			return err
		}
		engines[i] = eng
	}
	for i := 1; i <= n; i++ {
		if err := peers[i].Start(addrs); err != nil {
			return err
		}
	}

	for p := 1; p <= n; p++ {
		p := p
		for i := 1; i <= perProc; i++ {
			i := i
			peers[p].Do(func() {
				engines[p].ABroadcast([]byte(fmt.Sprintf("msg %d from p%d", i, p)))
			})
		}
	}

	// Wait for full delivery.
	total := n * perProc
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		done := len(order[1]) >= total && len(order[2]) >= total && len(order[3]) >= total
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for deliveries")
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Println("\ndelivery order over TCP:")
	for i := 0; i < total; i++ {
		fmt.Printf("  #%d  p1=%-16q p2=%-16q p3=%-16q\n", i+1, order[1][i], order[2][i], order[3][i])
		if order[1][i] != order[2][i] || order[1][i] != order[3][i] {
			return fmt.Errorf("total order violated")
		}
	}
	fmt.Println("\nidentical total order across real sockets ✓")
	return nil
}
