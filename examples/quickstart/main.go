// Quickstart: a three-process atomic broadcast group.
//
// Every process broadcasts a few messages concurrently; atomic broadcast
// guarantees all three processes deliver exactly the same sequence, so the
// three columns printed below are identical.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"abcast"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n, perProc = 3, 3
	cluster, err := abcast.New(n, abcast.Options{
		Stack: abcast.IndirectCT, // the paper's recommended stack
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	// All processes broadcast concurrently — ordering is the library's
	// problem, not the caller's.
	for p := 1; p <= n; p++ {
		for i := 1; i <= perProc; i++ {
			payload := fmt.Sprintf("msg %d from p%d", i, p)
			if err := cluster.Broadcast(p, []byte(payload)); err != nil {
				return err
			}
		}
	}

	total := n * perProc
	sequences := make([][]string, n+1)
	for p := 1; p <= n; p++ {
		for len(sequences[p]) < total {
			d, ok := cluster.Next(p, 10*time.Second)
			if !ok {
				return fmt.Errorf("p%d: timed out waiting for deliveries", p)
			}
			sequences[p] = append(sequences[p], string(d.Payload))
		}
	}

	fmt.Printf("%-20s %-20s %-20s\n", "p1 delivers", "p2 delivers", "p3 delivers")
	agreed := true
	for i := 0; i < total; i++ {
		fmt.Printf("%-20s %-20s %-20s\n", sequences[1][i], sequences[2][i], sequences[3][i])
		if sequences[1][i] != sequences[2][i] || sequences[1][i] != sequences[3][i] {
			agreed = false
		}
	}
	if !agreed {
		return fmt.Errorf("total order violated")
	}
	fmt.Println("\nall processes delivered the same total order ✓")
	return nil
}
