// Replicated bank ledger: money conservation under concurrent transfers.
//
// Transfers are atomically broadcast and applied in delivery order at every
// replica. Because all replicas see the same order, balance checks (reject
// overdrafts) resolve identically everywhere, and the total amount of money
// is conserved.
//
//	go run ./examples/bank
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"time"

	"abcast"
)

// transfer moves Amount from one account to another; it is rejected
// deterministically at apply time if the source would overdraw.
type transfer struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Amount int    `json:"amount"`
}

// ledger is one replica's account state.
type ledger struct {
	balances map[string]int
	applied  int
	rejected int
}

func newLedger(accounts []string, initial int) *ledger {
	l := &ledger{balances: make(map[string]int, len(accounts))}
	for _, a := range accounts {
		l.balances[a] = initial
	}
	return l
}

// apply executes one transfer in delivery order.
func (l *ledger) apply(t transfer) {
	l.applied++
	if l.balances[t.From] < t.Amount {
		l.rejected++ // overdraft: every replica rejects the same ops
		return
	}
	l.balances[t.From] -= t.Amount
	l.balances[t.To] += t.Amount
}

// total sums all balances (must be conserved).
func (l *ledger) total() int {
	sum := 0
	for _, b := range l.balances {
		sum += b
	}
	return sum
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n        = 3
		accounts = 4
		initial  = 100
		ops      = 60
	)
	names := make([]string, accounts)
	for i := range names {
		names[i] = fmt.Sprintf("acct-%c", 'A'+i)
	}

	cluster, err := abcast.New(n, abcast.Options{Stack: abcast.IndirectCT})
	if err != nil {
		return err
	}
	defer cluster.Close()

	ledgers := make([]*ledger, n+1)
	for p := 1; p <= n; p++ {
		ledgers[p] = newLedger(names, initial)
	}

	// Every replica fires random transfers concurrently — including ones
	// that will be rejected as overdrafts.
	rng := rand.New(rand.NewSource(2006))
	for i := 0; i < ops; i++ {
		t := transfer{
			From:   names[rng.Intn(accounts)],
			To:     names[rng.Intn(accounts)],
			Amount: 10 + rng.Intn(120),
		}
		buf, err := json.Marshal(t)
		if err != nil {
			return err
		}
		if err := cluster.Broadcast(rng.Intn(n)+1, buf); err != nil {
			return err
		}
	}

	for p := 1; p <= n; p++ {
		for ledgers[p].applied < ops {
			d, ok := cluster.Next(p, 15*time.Second)
			if !ok {
				return fmt.Errorf("replica %d stalled at %d/%d transfers", p, ledgers[p].applied, ops)
			}
			var t transfer
			if err := json.Unmarshal(d.Payload, &t); err != nil {
				return err
			}
			ledgers[p].apply(t)
		}
	}

	want := accounts * initial
	fmt.Printf("%d concurrent transfers across %d replicas\n\n", ops, n)
	for p := 1; p <= n; p++ {
		l := ledgers[p]
		fmt.Printf("replica %d: balances=%v rejected=%d total=%d\n",
			p, l.balances, l.rejected, l.total())
		if l.total() != want {
			return fmt.Errorf("replica %d: money not conserved: %d != %d", p, l.total(), want)
		}
	}
	for p := 2; p <= n; p++ {
		for _, a := range names {
			if ledgers[p].balances[a] != ledgers[1].balances[a] {
				return fmt.Errorf("replica %d diverged on %s", p, a)
			}
		}
	}
	fmt.Printf("\nmoney conserved (%d) and replicas agree on every balance ✓\n", want)
	return nil
}
