package abcast

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"abcast/internal/adapt"
	"abcast/internal/core"
	"abcast/internal/fd"
	"abcast/internal/live"
	"abcast/internal/metrics"
	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/persist"
	"abcast/internal/rbcast"
	"abcast/internal/stack"
	"abcast/internal/trace"
)

// Stack selects the ordering protocol of a Cluster.
type Stack int

// Available stacks. The default (zero) Options value selects IndirectCT,
// the paper's recommended configuration.
const (
	// IndirectCT: indirect consensus based on Chandra–Toueg ◇S
	// (Algorithm 2). Tolerates f < n/2 crashes.
	IndirectCT Stack = iota + 1
	// IndirectMR: indirect consensus based on Mostéfaoui–Raynal ◇S
	// (Algorithm 3). Tolerates only f < n/3 crashes — the price of the
	// adaptation, per the paper's Section 3.3.
	IndirectMR
	// ConsensusOnMessages: the classic reduction, consensus on full
	// message sets. Correct; slow for large payloads.
	ConsensusOnMessages
	// ConsensusWithURB: unmodified consensus on identifiers over uniform
	// reliable broadcast. Correct; pays an extra communication step.
	ConsensusWithURB
	// FaultyConsensusOnIDs: unmodified consensus directly on identifiers
	// over plain reliable broadcast. NOT crash-safe — it can violate
	// Validity (Section 2.2). Exposed for experimentation and
	// demonstration only (see examples/crashdemo).
	FaultyConsensusOnIDs
)

// String implements fmt.Stringer.
func (s Stack) String() string {
	switch s {
	case IndirectCT:
		return "indirect-consensus-ct"
	case IndirectMR:
		return "indirect-consensus-mr"
	case ConsensusOnMessages:
		return "consensus-on-messages"
	case ConsensusWithURB:
		return "consensus-with-urb"
	case FaultyConsensusOnIDs:
		return "faulty-consensus-on-ids"
	default:
		return fmt.Sprintf("Stack(%d)", int(s))
	}
}

// variant maps the public stack to the engine variant.
func (s Stack) variant() (core.Variant, error) {
	switch s {
	case IndirectCT:
		return core.VariantIndirectCT, nil
	case IndirectMR:
		return core.VariantIndirectMR, nil
	case ConsensusOnMessages:
		return core.VariantConsensusMsgs, nil
	case ConsensusWithURB:
		return core.VariantURBIDs, nil
	case FaultyConsensusOnIDs:
		return core.VariantFaultyIDs, nil
	default:
		return 0, fmt.Errorf("abcast: unknown stack %v", s)
	}
}

// Diffusion selects the reliable broadcast used to spread message payloads
// (ignored by ConsensusWithURB, which always uses uniform broadcast).
type Diffusion int

// Available diffusion strategies.
const (
	// DiffusionEager relays every message on first receipt: O(n²)
	// messages, no failure-detector dependence.
	DiffusionEager Diffusion = iota + 1
	// DiffusionLazy relays only when the sender is suspected: O(n)
	// messages in good runs.
	DiffusionLazy
)

// Options configures a Cluster. The zero value is a sensible default:
// IndirectCT over eager reliable broadcast, 200µs simulated link latency.
type Options struct {
	// Stack selects the ordering protocol (default IndirectCT).
	Stack Stack
	// Diffusion selects the reliable broadcast (default DiffusionEager).
	Diffusion Diffusion
	// Latency is the in-memory network's one-way latency (default 200µs).
	Latency time.Duration
	// Jitter adds ±jitter to each message's latency.
	Jitter time.Duration
	// Topology, when set, replaces the uniform Latency/Jitter with the
	// per-directed-link latencies of a geo-replicated site layout (e.g.
	// netmodel.WAN3Sites().Topology assigns processes round-robin to three
	// sites joined by 40-126 ms asymmetric links). Link bandwidth is not
	// modelled by the in-memory transport.
	Topology *netmodel.Topology
	// Heartbeat overrides the failure-detector configuration.
	Heartbeat *fd.Config
	// Pipeline is the consensus pipeline width W: the number of ordering
	// instances each process may run concurrently (default 1, the paper's
	// serial Algorithm 1). Larger windows raise the delivered-throughput
	// ceiling when MaxBatch bounds per-instance work, at the price of more
	// concurrent protocol state; decisions are always consumed in serial
	// order, so delivery order and crash safety are unaffected.
	Pipeline int
	// MaxBatch caps the identifiers ordered per consensus instance
	// (0 = unlimited). See core.Config.MaxBatch; mainly useful together
	// with Pipeline, which multiplies the resulting throughput ceiling.
	MaxBatch int
	// Adaptive replaces the static Pipeline/MaxBatch tuning with the
	// feedback control plane: every process samples its own backlog,
	// delivered rate and decision latency on a control tick and retargets
	// its pipeline width (AIMD — grow while the backlog outruns a pipeline
	// round and decisions keep pace, shrink when extra instances stop
	// adding delivered throughput) and batch cap; with Recovery also on,
	// the anti-entropy cadence of the reliable-link layer tracks measured
	// per-link round-trip times instead of a constant. Pipeline and
	// MaxBatch become initial values (zero MaxBatch starts at the
	// controller's minimum batch — adaptation always runs with bounded
	// batches). Delivery order and crash safety are unaffected: width
	// changes only gate how many new instances may start, never cancel
	// in-flight ones. Figure p2 (abench -fig p2) quantifies the controller
	// against hand-picked static widths under ramped load.
	Adaptive bool
	// Recovery enables the drop-partition recovery subsystem on every
	// process: a sequencing, retransmitting link layer with periodic
	// anti-entropy beneath the protocol stack, a consensus decide-relay
	// that catches up peers which missed decisions, and payload fetch for
	// ordered-but-never-received messages. The in-memory transport never
	// loses messages on its own, so this matters when the cluster's
	// processes face lossy conditions (and it is the configuration the
	// simulator's drop-mode partition figures validate — see abench -fig
	// g3). It costs a sequencing header per message plus periodic digest
	// traffic while streams have unacknowledged data.
	Recovery bool
	// Snapshot enables snapshot state transfer on top of Recovery (setting
	// it implies Recovery): a process behind by more consensus instances
	// than the decide-relay's bounded decision log retains — an outage
	// deeper than retransmission can repair — is shipped the delivered
	// prefix plus engine state (the Raft-snapshot analogue) and atomically
	// advanced past the gap, after which the relay and payload-fetch paths
	// finish the tail. Without it, recovery guarantees catch-up only within
	// the decision log's horizon. Figure g4 (abench -fig g4) quantifies the
	// difference.
	Snapshot bool
	// Persist enables crash-recovery persistence with bounded memory on
	// every process (implying Recovery with Snapshot, the restart catch-up
	// path): each process checkpoints its delivered-prefix digest to its own
	// store on a timer, prunes payloads and bookkeeping below the boundary
	// every member has durably passed — so long-running clusters hold a
	// bounded suffix instead of the full history — and Crash becomes
	// reversible: Restart brings the process back as a fresh incarnation
	// that resumes from its checkpoint and catches the tail through the
	// repair paths. Figure r1 (abench -fig r1) quantifies the restart
	// against staying down. Nil (the default) disables persistence; Restart
	// then returns an error.
	Persist *PersistOptions
	// Membership, when non-nil, enables dynamic membership: only the listed
	// processes (a subset of 1..n) form the initial ordering group, and the
	// group then changes at runtime through Join and Leave. A membership
	// change is itself atomically broadcast, so its position in the total
	// order — identical at every process — defines when the ordering quorums
	// switch; processes outside the current group run the full stack but
	// neither propose nor count toward quorums until they join, at which
	// point they catch up through the recovery machinery (enable Recovery,
	// and Snapshot for joiners arbitrarily far behind). Nil (the default)
	// is the classic static group of all n processes; Join and Leave then
	// return an error.
	Membership []int
	// Seed makes jitter and protocol tie-breaking deterministic.
	Seed int64
	// OnDeliver, if set, is called for every delivery, on the delivering
	// process's event loop (do not block in it). Deliveries are also
	// always available through Next.
	OnDeliver func(process int, d Delivery)
	// Trace enables lifecycle tracing: every message's path (abroadcast →
	// receive → propose → decide → ordered → adeliver, plus the recovery
	// events that repair a run) is recorded with each process's own clock
	// and exported through WriteTrace. Off (the default) costs one pointer
	// test per hook point; on, recording allocates only the shared event
	// buffer, never perturbing protocol scheduling.
	Trace bool
	// Metrics enables the unified metrics registry: each process's layer
	// counters (core, consensus, recovery link, failure detector,
	// persistence) register into a per-process catalog readable through
	// MetricsSnapshot. Updates are single atomic adds whether or not this
	// is set — the layers always count — so enabling collection does not
	// change a run's behaviour.
	Metrics bool
	// MetricsAddr, when non-empty, additionally serves the per-process
	// registries over HTTP at the given listen address (e.g.
	// "127.0.0.1:0"): an expvar-style text dump at /metrics plus the
	// standard net/http/pprof profiling endpoints under /debug/pprof/.
	// Implies Metrics. MetricsAddr reports the bound address; the server
	// shuts down with Close.
	MetricsAddr string
}

// PersistOptions configures crash-recovery persistence (Options.Persist).
// The zero value is valid: per-process in-memory stores with the default
// checkpoint cadence.
type PersistOptions struct {
	// Dir, when non-empty, keeps each process's checkpoint and write-ahead
	// log under Dir/p<i> (persist.FileStore), surviving restarts of the
	// hosting OS process. Empty uses per-process in-memory stores
	// (persist.MemStore): state survives Cluster.Restart but dies with the
	// hosting process.
	Dir string
	// Interval overrides the checkpoint cadence (0 = the engine default).
	// Checkpoints are lazy — a stale one only lengthens the redelivered
	// suffix after a restart, never changes the order — so the cadence
	// trades restart catch-up work against checkpoint write rate.
	Interval time.Duration
}

// Delivery is one adelivered message.
type Delivery struct {
	// Sender and Seq identify the message (id(m) in the paper).
	Sender int
	Seq    uint64
	// Payload is the broadcast content.
	Payload []byte
}

// Cluster is an in-memory atomic broadcast group running one goroutine per
// process.
type Cluster struct {
	net     *live.Network
	opts    Options
	engines []*core.Engine
	dets    []*fd.Heartbeat
	queues  []*deliveryQueue
	n       int

	// Wiring inputs retained for Restart, which rebuilds a process's stack.
	variant     core.Variant
	rbKind      rbcast.Kind
	hb          fd.Config
	coreMembers []stack.ProcessID
	// stores holds each process's checkpoint/WAL store under Options.Persist
	// (index 0 unused, nil otherwise); Restart reopens stores[p] for the
	// next incarnation.
	stores []persist.Store

	// tracer is the shared lifecycle recorder under Options.Trace (nil
	// otherwise; Event.P identifies the recording process). regs holds each
	// process's metrics registry under Options.Metrics (index 0 unused; the
	// slice itself is nil when metrics are off). msrv is the HTTP exporter
	// under Options.MetricsAddr. All survive Restart: a new incarnation
	// keeps recording into the same trace and registry.
	tracer *trace.Recorder
	regs   []*metrics.Registry
	msrv   *metrics.Server

	// members mirrors the intended group under Options.Membership: the
	// initial set plus every Join/Leave issued through the Cluster. It picks
	// the sponsor that broadcasts the next change (the authoritative view
	// lives in the engines; see Stats.Members). Guarded by memberMu — Join
	// and Leave may race from different goroutines.
	memberMu sync.Mutex
	members  []int
}

// New starts an n-process cluster.
func New(n int, opts Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("abcast: need at least one process, got %d", n)
	}
	if opts.Stack == 0 {
		opts.Stack = IndirectCT
	}
	if opts.Diffusion == 0 {
		opts.Diffusion = DiffusionEager
	}
	if opts.Latency == 0 {
		opts.Latency = 200 * time.Microsecond
	}
	variant, err := opts.Stack.variant()
	if err != nil {
		return nil, err
	}
	rbKind := rbcast.KindEager
	if opts.Diffusion == DiffusionLazy {
		rbKind = rbcast.KindLazy
	}
	hb := fd.DefaultConfig()
	if opts.Heartbeat != nil {
		hb = *opts.Heartbeat
	}
	var coreMembers []stack.ProcessID
	if opts.Membership != nil {
		if len(opts.Membership) == 0 {
			return nil, fmt.Errorf("abcast: empty initial membership")
		}
		coreMembers = make([]stack.ProcessID, 0, len(opts.Membership))
		for _, p := range opts.Membership {
			if p < 1 || p > n {
				return nil, fmt.Errorf("abcast: member %d out of range 1..%d", p, n)
			}
			coreMembers = append(coreMembers, stack.ProcessID(p))
		}
	}

	var stores []persist.Store
	if opts.Persist != nil {
		stores = make([]persist.Store, n+1)
		for i := 1; i <= n; i++ {
			s, err := openStore(opts.Persist, i)
			if err != nil {
				return nil, err
			}
			stores[i] = s
		}
	}

	net := live.NewNetwork(n,
		live.WithLatency(opts.Latency),
		live.WithJitter(opts.Jitter),
		live.WithTopology(opts.Topology),
		live.WithSeed(opts.Seed),
	)
	c := &Cluster{
		net:         net,
		opts:        opts,
		engines:     make([]*core.Engine, n+1),
		dets:        make([]*fd.Heartbeat, n+1),
		queues:      make([]*deliveryQueue, n+1),
		n:           n,
		variant:     variant,
		rbKind:      rbKind,
		hb:          hb,
		coreMembers: coreMembers,
		stores:      stores,
	}
	if opts.Membership != nil {
		c.members = append([]int(nil), opts.Membership...)
		sort.Ints(c.members)
	}
	if opts.Trace {
		c.tracer = trace.New()
	}
	if opts.Metrics || opts.MetricsAddr != "" {
		c.regs = make([]*metrics.Registry, n+1)
		for i := 1; i <= n; i++ {
			c.regs[i] = metrics.New()
		}
	}
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		i := i
		c.queues[i] = newDeliveryQueue()
		wg.Add(1)
		// Wire each process's layers on its own event loop so no
		// protocol event can precede complete wiring.
		net.Do(stack.ProcessID(i), func() {
			defer wg.Done()
			if err := c.wire(i, net.Node(stack.ProcessID(i))); err != nil {
				errs <- err
			}
		})
	}
	wg.Wait()
	select {
	case err := <-errs:
		net.Close()
		return nil, err
	default:
	}
	if opts.MetricsAddr != "" {
		named := make(map[string]*metrics.Registry, n)
		for i := 1; i <= n; i++ {
			named[fmt.Sprintf("p%d", i)] = c.regs[i]
		}
		srv, err := metrics.Serve(opts.MetricsAddr, named)
		if err != nil {
			net.Close()
			return nil, err
		}
		c.msrv = srv
	}
	return c, nil
}

// reg returns process i's metrics registry (nil when metrics are off —
// the layers then hold standalone handles).
func (c *Cluster) reg(i int) *metrics.Registry {
	if c.regs == nil {
		return nil
	}
	return c.regs[i]
}

// sameSitePeers returns p's co-located peers under the topology (nil for a
// uniform network or a process alone at its site) — the Cluster's choice of
// core.RecoverConfig.PreferPeers.
func sameSitePeers(t *netmodel.Topology, p stack.ProcessID, n int) []stack.ProcessID {
	if t == nil {
		return nil
	}
	var out []stack.ProcessID
	for _, q := range t.SiteProcs(t.Site(p), n) {
		if q != p {
			out = append(out, q)
		}
	}
	return out
}

// openStore opens process p's checkpoint/WAL store per the options.
func openStore(po *PersistOptions, p int) (persist.Store, error) {
	if po.Dir != "" {
		return persist.OpenFileStore(filepath.Join(po.Dir, fmt.Sprintf("p%d", p)))
	}
	return persist.NewMemStore(), nil
}

// wire builds one incarnation of process i's protocol stack on node: the
// failure detector plus the engine, rehydrating from the process's store
// when persistence is on. Runs on i's event loop — at startup via New's
// wiring closures, and again from Restart.
func (c *Cluster) wire(i int, node *stack.Node) error {
	hb := c.hb
	hb.Metrics = c.reg(i)
	c.dets[i] = fd.NewHeartbeat(node, hb)
	var rcfg *core.RecoverConfig
	if c.opts.Recovery || c.opts.Snapshot || c.opts.Persist != nil {
		rcfg = &core.RecoverConfig{Snapshot: c.opts.Snapshot}
		// Prefer same-site peers for the rotating repair paths, keeping
		// fetch/sync traffic off the expensive inter-site links whenever a
		// local peer can serve it.
		rcfg.PreferPeers = sameSitePeers(c.opts.Topology, stack.ProcessID(i), c.n)
	}
	var pcfg *core.PersistConfig
	if c.opts.Persist != nil {
		pcfg = &core.PersistConfig{Store: c.stores[i], Interval: c.opts.Persist.Interval}
	}
	var acfg *adapt.Config
	if c.opts.Adaptive {
		acfg = &adapt.Config{}
	}
	eng, err := core.New(node, core.Config{
		Variant:  c.variant,
		RB:       c.rbKind,
		Detector: c.dets[i],
		Pipeline: c.opts.Pipeline,
		MaxBatch: c.opts.MaxBatch,
		Adapt:    acfg,
		Recover:  rcfg,
		Persist:  pcfg,
		Members:  c.coreMembers,
		Trace:    c.tracer,
		Metrics:  c.reg(i),
		Deliver: func(app *msg.App) {
			d := Delivery{
				Sender:  int(app.ID.Sender),
				Seq:     app.ID.Seq,
				Payload: app.Payload,
			}
			c.queues[i].put(d)
			if c.opts.OnDeliver != nil {
				c.opts.OnDeliver(i, d)
			}
		},
	})
	if err != nil {
		return err
	}
	c.engines[i] = eng
	return nil
}

// N returns the number of processes.
func (c *Cluster) N() int { return c.n }

// Broadcast atomically broadcasts payload from process p. The payload is
// copied, so the caller may reuse the slice. Broadcasting from a crashed
// process returns an error: a crashed process handles no further events, so
// the broadcast would otherwise be silently discarded. (A crash racing the
// call can still swallow the broadcast after Broadcast returns — exactly as
// if the process had crashed a moment later.)
func (c *Cluster) Broadcast(p int, payload []byte) error {
	if p < 1 || p > c.n {
		return fmt.Errorf("abcast: process %d out of range 1..%d", p, c.n)
	}
	if c.net.Proc(stack.ProcessID(p)).Crashed() {
		return fmt.Errorf("abcast: process %d has crashed", p)
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	c.net.Do(stack.ProcessID(p), func() {
		c.engines[p].ABroadcast(buf)
	})
	return nil
}

// Join atomically broadcasts a membership change adding process p to the
// ordering group. The change is sponsored by a current member (p itself
// cannot reach the group yet); it takes effect at the change's position in
// the total order, identically everywhere, after which p catches up through
// the recovery machinery and starts ordering under the new quorums. Requires
// Options.Membership. Returns once the change is broadcast, not once it is
// applied — watch Stats.Members for the switch.
func (c *Cluster) Join(p int) error { return c.changeMembership(p, true) }

// Leave atomically broadcasts a membership change removing process p from
// the ordering group. Sponsored by a member other than p when one exists, so
// the change survives even if p stops immediately after the call. Instances
// ordered below the change's position drain under the old membership
// (including p); everything above uses the new quorums. Requires
// Options.Membership.
func (c *Cluster) Leave(p int) error { return c.changeMembership(p, false) }

func (c *Cluster) changeMembership(p int, join bool) error {
	if c.opts.Membership == nil {
		return fmt.Errorf("abcast: dynamic membership not enabled (Options.Membership)")
	}
	if p < 1 || p > c.n {
		return fmt.Errorf("abcast: process %d out of range 1..%d", p, c.n)
	}
	c.memberMu.Lock()
	defer c.memberMu.Unlock()
	// Sponsor: the lowest-id current member that is not crashed and — for a
	// leave — not the leaver itself, if any other member remains.
	sponsor := 0
	for _, m := range c.members {
		if c.net.Proc(stack.ProcessID(m)).Crashed() {
			continue
		}
		if !join && m == p && len(c.members) > 1 {
			continue
		}
		sponsor = m
		break
	}
	if sponsor == 0 {
		return fmt.Errorf("abcast: no live member to sponsor the change")
	}
	ch := msg.ConfigChange{}
	if join {
		ch.Join = stack.ProcessID(p)
	} else {
		ch.Leave = stack.ProcessID(p)
	}
	c.net.Do(stack.ProcessID(sponsor), func() {
		c.engines[sponsor].BroadcastConfig(ch)
	})
	// Update the sponsor-selection mirror (the engines hold the truth).
	if join {
		i := sort.SearchInts(c.members, p)
		if i == len(c.members) || c.members[i] != p {
			c.members = append(c.members, 0)
			copy(c.members[i+1:], c.members[i:])
			c.members[i] = p
		}
	} else {
		i := sort.SearchInts(c.members, p)
		if i < len(c.members) && c.members[i] == p && len(c.members) > 1 {
			c.members = append(c.members[:i], c.members[i+1:]...)
		}
	}
	return nil
}

// Next returns process p's next delivery, waiting up to timeout. ok is
// false on timeout.
func (c *Cluster) Next(p int, timeout time.Duration) (d Delivery, ok bool) {
	if p < 1 || p > c.n {
		return Delivery{}, false
	}
	return c.queues[p].next(timeout)
}

// Stats is a snapshot of one process's engine counters.
type Stats struct {
	// Received counts messages received (diffused) by the process.
	Received int
	// Delivered counts messages adelivered, in total order.
	Delivered int
	// Pending counts messages received or ordered but not yet delivered.
	Pending int
	// Instances counts consensus instances consumed so far.
	Instances uint64
	// Window and MaxBatch are the pipeline width and per-instance batch
	// cap currently applied by the process — the Options values for a
	// static cluster, the controller's current targets under
	// Options.Adaptive (0 MaxBatch = unlimited).
	Window   int
	MaxBatch int
	// Members is the process's latest applied ordering view under
	// Options.Membership (nil for a static cluster). Processes apply a
	// membership change when they deliver it, so a lagging process may
	// briefly report an older view than its peers.
	Members []int
	// Retransmitted, Duplicates and Evicted are the recovery link layer's
	// repair counters: envelope re-sends triggered by anti-entropy digests,
	// received envelopes dropped as already delivered, and buffered
	// envelopes discarded unacknowledged. All zero without Options.Recovery.
	Retransmitted int64
	Duplicates    int64
	Evicted       int64
	// Checkpoints and Prunes count persistence activity: checkpoints
	// written and bounded-memory prune passes. Both zero without
	// Options.Persist.
	Checkpoints int
	Prunes      int
}

// Stats returns process p's counters, or ok=false if p is out of range or
// the snapshot could not be taken within timeout.
//
// The snapshot runs as a closure on p's event loop. A crashed process drops
// every enqueued closure, so the snapshot never executes and the call would
// block; known-crashed processes therefore fail fast, and the timeout is
// the backstop for a crash that lands after the check (or for an event loop
// too backlogged to answer in time). On timeout the closure stays queued
// and may still run later; its result is discarded.
func (c *Cluster) Stats(p int, timeout time.Duration) (Stats, bool) {
	if p < 1 || p > c.n {
		return Stats{}, false
	}
	if c.net.Proc(stack.ProcessID(p)).Crashed() {
		return Stats{}, false
	}
	ch := make(chan Stats, 1)
	c.net.Do(stack.ProcessID(p), func() {
		st := c.engines[p].Stats()
		out := Stats{
			Received:  st.Received,
			Delivered: st.Delivered,
			Pending:   st.Unordered + st.OrderedQ,
			Instances: st.Instances,
			Window:    st.Window,
			MaxBatch:  st.MaxBatch,
		}
		if _, ms := c.engines[p].CurrentView(); ms != nil {
			out.Members = make([]int, len(ms))
			for j, q := range ms {
				out.Members[j] = int(q)
			}
		}
		ls := c.engines[p].LinkStats()
		out.Retransmitted = ls.Retransmitted
		out.Duplicates = ls.Duplicates
		out.Evicted = ls.Evicted
		out.Checkpoints, out.Prunes, _ = c.engines[p].PersistStats()
		ch <- out
	})
	select {
	case st := <-ch:
		return st, true
	case <-time.After(timeout):
		return Stats{}, false
	}
}

// WriteTrace writes the lifecycle trace recorded so far in the given
// format: "jsonl" (one JSON object per event, fixed field order — two runs
// that record the same events export identical bytes) or "chrome" (Chrome
// trace_event JSON for chrome://tracing / Perfetto). Requires
// Options.Trace. Safe while the cluster runs: it snapshots the events
// recorded so far.
func (c *Cluster) WriteTrace(w io.Writer, format string) error {
	if c.tracer == nil {
		return fmt.Errorf("abcast: tracing not enabled (Options.Trace)")
	}
	switch format {
	case "jsonl":
		return c.tracer.WriteJSONL(w)
	case "chrome":
		return c.tracer.WriteChrome(w)
	default:
		return fmt.Errorf("abcast: unknown trace format %q (want jsonl or chrome)", format)
	}
}

// TraceEvents returns a copy of the lifecycle events recorded so far (nil
// without Options.Trace), in arrival order.
func (c *Cluster) TraceEvents() []trace.Event {
	return c.tracer.Events()
}

// MetricsSnapshot returns process p's metric catalog as name → value
// (histograms expand to .count/.sum/bucket cells). Requires
// Options.Metrics (or MetricsAddr). Safe while the cluster runs — cells
// are atomics — though a snapshot taken mid-run is not a consistent cut.
func (c *Cluster) MetricsSnapshot(p int) (map[string]int64, error) {
	if c.regs == nil {
		return nil, fmt.Errorf("abcast: metrics not enabled (Options.Metrics)")
	}
	if p < 1 || p > c.n {
		return nil, fmt.Errorf("abcast: process %d out of range 1..%d", p, c.n)
	}
	return c.regs[p].Snapshot(), nil
}

// MetricsAddr returns the bound address of the HTTP metrics/profiling
// endpoint, or "" when Options.MetricsAddr was not set.
func (c *Cluster) MetricsAddr() string {
	if c.msrv == nil {
		return ""
	}
	return c.msrv.Addr()
}

// Crash stops process p (it handles no further events; in-flight messages
// from it are lost). Irreversible on a cluster without persistence; with
// Options.Persist set, Restart revives the process.
func (c *Cluster) Crash(p int) {
	if p >= 1 && p <= c.n {
		c.net.Crash(stack.ProcessID(p))
	}
}

// Restart revives a crashed process as a fresh incarnation that resumes
// from its persistent store: the checkpointed delivered prefix is
// rehydrated, the write-ahead counters guarantee the incarnation's new
// broadcasts cannot alias pre-crash identifiers, and the gap between the
// checkpoint and the group's current position is caught up through the
// repair paths (retransmission, decide-relay, payload fetch, snapshot
// transfer for deep gaps). Requires Options.Persist and a crashed process.
//
// Deliveries on p are at-least-once across the restart: the suffix above
// p's last checkpoint is redelivered — in unchanged order — so a consumer
// tracking the last applied (Sender, Seq) per sender deduplicates
// trivially (see examples/restartable-kv). Restart returns once the new
// incarnation is wired; catch-up proceeds in the background — watch Stats.
func (c *Cluster) Restart(p int) error {
	if c.opts.Persist == nil {
		return fmt.Errorf("abcast: persistence not enabled (Options.Persist)")
	}
	if p < 1 || p > c.n {
		return fmt.Errorf("abcast: process %d out of range 1..%d", p, c.n)
	}
	if !c.net.Proc(stack.ProcessID(p)).Crashed() {
		return fmt.Errorf("abcast: process %d has not crashed", p)
	}
	store, err := c.reopenStore(p)
	if err != nil {
		return err
	}
	c.stores[p] = store
	node := c.net.Restart(stack.ProcessID(p))
	errs := make(chan error, 1)
	c.net.Do(stack.ProcessID(p), func() { errs <- c.wire(p, node) })
	return <-errs
}

// reopenStore hands process p's store to its next incarnation: the same
// MemStore for in-memory persistence, a fresh FileStore handle on the same
// directory otherwise (the crashed incarnation's handle is dead — its event
// loop no longer runs — so the single-owner contract moves with the open).
func (c *Cluster) reopenStore(p int) (persist.Store, error) {
	if c.opts.Persist.Dir != "" {
		return openStore(c.opts.Persist, p)
	}
	ms := c.stores[p].(*persist.MemStore)
	ms.Reopen()
	return ms, nil
}

// Close shuts the cluster down and waits for all process goroutines.
func (c *Cluster) Close() {
	if c.msrv != nil {
		c.msrv.Close()
	}
	c.net.Close()
	for _, q := range c.queues[1:] {
		q.close()
	}
	if c.stores != nil {
		// Safe once the event loops have exited: the stores' single owners
		// (the engines) can no longer touch them.
		for _, s := range c.stores[1:] {
			s.Close()
		}
	}
}

// deliveryQueue is an unbounded queue with timeout-capable consumption.
type deliveryQueue struct {
	mu     sync.Mutex
	items  []Delivery
	signal chan struct{}
	closed bool
}

func newDeliveryQueue() *deliveryQueue {
	return &deliveryQueue{signal: make(chan struct{}, 1)}
}

func (q *deliveryQueue) put(d Delivery) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, d)
	q.mu.Unlock()
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

func (q *deliveryQueue) next(timeout time.Duration) (Delivery, bool) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			d := q.items[0]
			q.items = q.items[1:]
			q.mu.Unlock()
			return d, true
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return Delivery{}, false
		}
		select {
		case <-q.signal:
		case <-deadline.C:
			return Delivery{}, false
		}
	}
}

func (q *deliveryQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.signal <- struct{}{}:
	default:
	}
}
