package abcast

// This file regenerates the paper's evaluation as Go benchmarks: one
// benchmark per figure (Figures 1, 3, 4, 5, 6, 7 — every experimental
// figure in the paper), plus ablation benchmarks for the design choices
// called out in DESIGN.md.
//
// Each figure benchmark runs a reduced-resolution sweep per iteration and
// reports the mean atomic broadcast latency of each stack at the sweep's
// most loaded point, as ms metrics. Run with:
//
//	go test -bench=. -benchmem
//
// For full-resolution tables use cmd/abench.

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/bench"
	"abcast/internal/core"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
)

// benchScale keeps per-iteration sim workloads small; cmd/abench is the
// full-resolution path.
const benchScale = 0.12

// runFigure executes one figure sweep per iteration and reports the mean
// latency of every stack at the heaviest x value.
func runFigure(b *testing.B, id string) {
	b.Helper()
	spec, ok := bench.Figures()[id]
	if !ok {
		b.Fatalf("unknown figure %q", id)
	}
	var last bench.Figure
	for i := 0; i < b.N; i++ {
		fig, err := spec.Run(benchScale, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		last = fig
	}
	for _, s := range spec.Stacks {
		pts := last.Series[s.Label]
		if len(pts) == 0 {
			continue
		}
		r := pts[len(pts)-1].Result
		b.ReportMetric(r.Latency.Mean, "ms-lat/"+sanitize(s.Label))
	}
}

// sanitize makes stack labels metric-name friendly.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// Figure 1: atomic broadcast latency vs message size — indirect consensus
// vs consensus on full messages (n=3, Setup 1).
func BenchmarkFig1a(b *testing.B) { runFigure(b, "1a") }
func BenchmarkFig1b(b *testing.B) { runFigure(b, "1b") }

// Figure 3: latency vs throughput — indirect consensus vs the faulty
// direct use of consensus on identifiers (1-byte payloads, Setup 1).
func BenchmarkFig3a(b *testing.B) { runFigure(b, "3a") }
func BenchmarkFig3b(b *testing.B) { runFigure(b, "3b") }

// Figure 4: latency vs payload at four throughputs — indirect vs faulty
// consensus on identifiers (n=5, Setup 1).
func BenchmarkFig4a(b *testing.B) { runFigure(b, "4a") }
func BenchmarkFig4b(b *testing.B) { runFigure(b, "4b") }
func BenchmarkFig4c(b *testing.B) { runFigure(b, "4c") }
func BenchmarkFig4d(b *testing.B) { runFigure(b, "4d") }

// Figure 5: latency vs payload — indirect consensus + O(n²) reliable
// broadcast vs consensus on ids + uniform reliable broadcast (Setup 2).
func BenchmarkFig5a(b *testing.B) { runFigure(b, "5a") }
func BenchmarkFig5b(b *testing.B) { runFigure(b, "5b") }
func BenchmarkFig5c(b *testing.B) { runFigure(b, "5c") }

// Figure 6: as Figure 5 but with the O(n) reliable broadcast.
func BenchmarkFig6a(b *testing.B) { runFigure(b, "6a") }
func BenchmarkFig6b(b *testing.B) { runFigure(b, "6b") }
func BenchmarkFig6c(b *testing.B) { runFigure(b, "6c") }

// Figure 7: latency vs throughput for the two correct id-based stacks
// (Setup 2, 1-byte payloads).
func BenchmarkFig7a(b *testing.B) { runFigure(b, "7a") }
func BenchmarkFig7b(b *testing.B) { runFigure(b, "7b") }

// Extension: latency vs system size (not a paper figure; substantiates the
// paper's Section 2.1 claim that identifier-based ordering wins more as n
// grows).
func BenchmarkScalabilityN(b *testing.B) { runFigure(b, "s1") }

// runPoint executes a single experiment per iteration and reports its mean
// latency.
func runPoint(b *testing.B, e bench.Experiment) {
	b.Helper()
	var last bench.Result
	for i := 0; i < b.N; i++ {
		e.Seed = int64(i + 1)
		r, err := bench.Run(e)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.Latency.Mean, "ms-lat")
	b.ReportMetric(float64(last.MsgsSent)/float64(last.Experiment.Messages), "netmsgs/abcast")
}

// point builds a mid-load Setup 1 experiment for ablations.
func point(variant core.Variant, rb rbcast.Kind, rcvCost time.Duration) bench.Experiment {
	params := netmodel.Setup1()
	params.RcvCheckPerID = rcvCost
	return bench.Experiment{
		Name:       "ablation",
		N:          3,
		Params:     params,
		Variant:    variant,
		RB:         rb,
		Throughput: 400,
		Payload:    100,
		Messages:   200,
		Warmup:     50,
		Seed:       1,
	}
}

// BenchmarkAblationRcvCost isolates the rcv(v) CPU charge — the knob behind
// the Figure 3/4 overhead: the same indirect stack with the check cost
// zeroed collapses onto the faulty stack's latency.
func BenchmarkAblationRcvCost(b *testing.B) {
	for _, c := range []struct {
		name string
		cost time.Duration
	}{
		{"calibrated", netmodel.Setup1().RcvCheckPerID},
		{"zero", 0},
	} {
		b.Run(c.name, func(b *testing.B) {
			runPoint(b, point(core.VariantIndirectCT, rbcast.KindEager, c.cost))
		})
	}
}

// BenchmarkAblationRBcast compares the O(n²) and O(n) reliable broadcasts
// beneath the same indirect stack (the delta between Figures 5 and 6).
func BenchmarkAblationRBcast(b *testing.B) {
	for _, c := range []struct {
		name string
		kind rbcast.Kind
	}{
		{"eager-n2", rbcast.KindEager},
		{"lazy-n", rbcast.KindLazy},
	} {
		b.Run(c.name, func(b *testing.B) {
			runPoint(b, point(core.VariantIndirectCT, c.kind, netmodel.Setup1().RcvCheckPerID))
		})
	}
}

// BenchmarkAblationAlgo compares the two indirect consensus algorithms
// (Algorithm 2 vs Algorithm 3) under identical load; MR's decision takes
// two communication steps in good runs versus CT's three.
func BenchmarkAblationAlgo(b *testing.B) {
	for _, c := range []struct {
		name    string
		variant core.Variant
	}{
		{"indirect-CT", core.VariantIndirectCT},
		{"indirect-MR", core.VariantIndirectMR},
	} {
		b.Run(c.name, func(b *testing.B) {
			runPoint(b, point(c.variant, rbcast.KindEager, netmodel.Setup1().RcvCheckPerID))
		})
	}
}

// BenchmarkAblationBatching shows how the engine's consensus batching
// responds to load: instances per message drop as throughput rises.
func BenchmarkAblationBatching(b *testing.B) {
	for _, tp := range []float64{50, 400, 800} {
		b.Run(fmt.Sprintf("tp=%.0f", tp), func(b *testing.B) {
			e := point(core.VariantIndirectCT, rbcast.KindEager, netmodel.Setup1().RcvCheckPerID)
			e.Throughput = tp
			runPoint(b, e)
		})
	}
}

// BenchmarkAblationMaxBatch compares unbounded batching (the paper's
// Algorithm 1) against a hard cap of one identifier per consensus instance:
// the cap multiplies the number of instances and collapses throughput
// headroom.
func BenchmarkAblationMaxBatch(b *testing.B) {
	for _, c := range []struct {
		name string
		cap  int
	}{
		{"unbounded", 0},
		{"one-per-instance", 1},
	} {
		b.Run(c.name, func(b *testing.B) {
			e := point(core.VariantIndirectCT, rbcast.KindEager, netmodel.Setup1().RcvCheckPerID)
			e.MaxBatch = c.cap
			runPoint(b, e)
		})
	}
}

// BenchmarkAblationPipeline measures the pipeline window (figure p1's knob)
// at the ablation's network point: with per-instance work capped, delivered
// throughput should rise with W; the reported metric is msg/s delivered.
func BenchmarkAblationPipeline(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			var last bench.Result
			for i := 0; i < b.N; i++ {
				e := bench.Experiment{
					Name:       "pipeline",
					N:          3,
					Params:     bench.PipelineParams(),
					Variant:    core.VariantIndirectCT,
					RB:         rbcast.KindEager,
					Throughput: 3000,
					Payload:    1,
					Messages:   1000,
					Warmup:     100,
					Seed:       int64(i + 1),
					MaxBatch:   4,
					Pipeline:   w,
					MaxVirtual: time.Second,
				}
				r, err := bench.Run(e)
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			b.ReportMetric(last.Rate, "msg/s-delivered")
		})
	}
}

// BenchmarkClusterLive measures the live goroutine runtime end to end (not
// a paper figure; a sanity benchmark for the public API).
func BenchmarkClusterLive(b *testing.B) {
	c, err := New(3, Options{Latency: 50 * time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Broadcast(i%3+1, payload); err != nil {
			b.Fatal(err)
		}
		if _, ok := c.Next(1, 10*time.Second); !ok {
			b.Fatal("delivery timeout")
		}
	}
}
