package abcast_test

import (
	"fmt"
	"time"

	"abcast"
)

// The basic pattern: start a cluster, broadcast from any process, consume
// the totally ordered deliveries from any process.
func Example() {
	cluster, err := abcast.New(3, abcast.Options{})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	if err := cluster.Broadcast(1, []byte("hello")); err != nil {
		panic(err)
	}
	d, ok := cluster.Next(2, 5*time.Second)
	if !ok {
		panic("timed out")
	}
	fmt.Printf("p2 delivered %q from p%d\n", d.Payload, d.Sender)
	// Output: p2 delivered "hello" from p1
}

// Choosing a stack: the paper's indirect Mostéfaoui–Raynal algorithm
// decides in fewer steps but only tolerates f < n/3 crashes, so a
// four-process group is the smallest that survives one crash.
func Example_stackChoice() {
	cluster, err := abcast.New(4, abcast.Options{Stack: abcast.IndirectMR})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	cluster.Crash(4) // tolerated: f=1 < n/3 (3·1 < 4)
	if err := cluster.Broadcast(1, []byte("still alive")); err != nil {
		panic(err)
	}
	d, ok := cluster.Next(2, 10*time.Second)
	if !ok {
		panic("timed out")
	}
	fmt.Printf("%s\n", d.Payload)
	// Output: still alive
}

// Deliveries can also be observed with a callback, invoked on each
// process's event loop.
func Example_onDeliver() {
	done := make(chan string, 3)
	cluster, err := abcast.New(3, abcast.Options{
		OnDeliver: func(p int, d abcast.Delivery) {
			if p == 3 {
				done <- string(d.Payload)
			}
		},
	})
	if err != nil {
		panic(err)
	}
	defer cluster.Close()

	if err := cluster.Broadcast(2, []byte("callback")); err != nil {
		panic(err)
	}
	fmt.Println(<-done)
	// Output: callback
}
