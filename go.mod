module abcast

go 1.24
