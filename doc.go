// Package abcast is a uniform atomic broadcast library built on *indirect
// consensus*, reproducing "Solving Atomic Broadcast with Indirect
// Consensus" (Ekwall & Schiper, DSN 2006).
//
// Atomic broadcast delivers messages to all processes in the same total
// order. The classic reduction runs consensus on sets of full messages,
// which saturates the network as payloads grow. Running consensus on
// message *identifiers* fixes the cost but, done naively, breaks the
// Validity property when a process crashes: an identifier can be ordered
// whose message no correct process holds, blocking delivery forever.
// Indirect consensus adds a "No loss" guarantee — a decided identifier set
// always has its messages at one correct process — restoring correctness at
// nearly the naive stack's speed.
//
// The top-level package offers a ready-to-use in-memory cluster running on
// goroutines and channels:
//
//	c, err := abcast.New(3, abcast.Options{})
//	if err != nil { ... }
//	defer c.Close()
//	c.Broadcast(1, []byte("hello"))
//	d, ok := c.Next(2, time.Second) // same order at every process
//
// Beyond the paper's serial ordering loop, Options.Pipeline runs up to W
// consensus instances concurrently (decisions are still consumed in serial
// order, so delivery order and crash safety are unchanged). Pipelining
// matters when Options.MaxBatch caps the identifiers ordered per instance:
// the serial engine's throughput is then bounded by MaxBatch divided by the
// consensus round-trip, and W concurrent instances multiply that ceiling —
// with unbounded batching (the paper's Algorithm 1), load is absorbed into
// ever larger batches instead and W buys little. The trade-off is
// quantified by the `abench -fig p1` ablation.
//
// The building blocks live under internal/: the ◇S consensus algorithms
// (Chandra–Toueg and Mostéfaoui–Raynal) and their indirect adaptations,
// reliable/uniform broadcast, heartbeat failure detection, the Algorithm 1
// engine, a deterministic discrete-event simulator, and the benchmark
// harness that regenerates every figure of the paper (cmd/abench).
package abcast
