// Package abcast is a uniform atomic broadcast library built on *indirect
// consensus*, reproducing "Solving Atomic Broadcast with Indirect
// Consensus" (Ekwall & Schiper, DSN 2006).
//
// Atomic broadcast delivers messages to all processes in the same total
// order. The classic reduction runs consensus on sets of full messages,
// which saturates the network as payloads grow. Running consensus on
// message *identifiers* fixes the cost but, done naively, breaks the
// Validity property when a process crashes: an identifier can be ordered
// whose message no correct process holds, blocking delivery forever.
// Indirect consensus adds a "No loss" guarantee — a decided identifier set
// always has its messages at one correct process — restoring correctness at
// nearly the naive stack's speed.
//
// The top-level package offers a ready-to-use in-memory cluster running on
// goroutines and channels:
//
//	c, err := abcast.New(3, abcast.Options{})
//	if err != nil { ... }
//	defer c.Close()
//	c.Broadcast(1, []byte("hello"))
//	d, ok := c.Next(2, time.Second) // same order at every process
//
// Beyond the paper's serial ordering loop, Options.Pipeline runs up to W
// consensus instances concurrently (decisions are still consumed in serial
// order, so delivery order and crash safety are unchanged). Pipelining
// matters when Options.MaxBatch caps the identifiers ordered per instance:
// the serial engine's throughput is then bounded by MaxBatch divided by the
// consensus round-trip, and W concurrent instances multiply that ceiling —
// with unbounded batching (the paper's Algorithm 1), load is absorbed into
// ever larger batches instead and W buys little. The trade-off is
// quantified by the `abench -fig p1` ablation.
//
// # WAN / geo-replication
//
// The paper evaluates only two LAN test beds; this reproduction extends the
// scenario space to geo-replicated deployments. A netmodel.Topology assigns
// every process to a site and every ordered site pair a directed link
// (latency, jitter, bandwidth — asymmetric routes allowed); Options.Topology
// selects one for the live cluster, and the simulator applies it per link.
// netmodel.WAN3Sites is a calibrated 3-site profile: 1 ms intra-site links,
// 40-126 ms asymmetric inter-site links at ~100 Mbit/s. Precedence is
// explicit: an adversarial Params.LatencyFn overrides the topology, which
// overrides the uniform latency/jitter.
//
// The simulator adds runtime partition injection: simnet World.Partition
// splits the system into groups and severs cross-group messages at their
// arrival instant, either dropping them (PartitionDrop — a black hole,
// which violates the quasi-reliable channel assumption while it lasts) or
// holding them until World.Heal (PartitionDelay — TCP-like buffering, under
// which every protocol property survives the episode and the minority side
// catches up at the heal). Both compose with Crash and stay deterministic
// under the simulation seed. Figures g1 (WAN latency vs pipeline width) and
// g2 (delivered throughput across a minority-site partition-and-heal
// episode) quantify the scenario: `abench -fig g1,g2`, with -topo and
// -partition available to impose a topology or an episode on any figure.
//
// The building blocks live under internal/: the ◇S consensus algorithms
// (Chandra–Toueg and Mostéfaoui–Raynal) and their indirect adaptations,
// reliable/uniform broadcast, heartbeat failure detection, the Algorithm 1
// engine, a deterministic discrete-event simulator, and the benchmark
// harness that regenerates every figure of the paper (cmd/abench).
package abcast
