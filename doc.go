// Package abcast is a uniform atomic broadcast library built on *indirect
// consensus*, reproducing "Solving Atomic Broadcast with Indirect
// Consensus" (Ekwall & Schiper, DSN 2006).
//
// Atomic broadcast delivers messages to all processes in the same total
// order. The classic reduction runs consensus on sets of full messages,
// which saturates the network as payloads grow. Running consensus on
// message *identifiers* fixes the cost but, done naively, breaks the
// Validity property when a process crashes: an identifier can be ordered
// whose message no correct process holds, blocking delivery forever.
// Indirect consensus adds a "No loss" guarantee — a decided identifier set
// always has its messages at one correct process — restoring correctness at
// nearly the naive stack's speed.
//
// The top-level package offers a ready-to-use in-memory cluster running on
// goroutines and channels:
//
//	c, err := abcast.New(3, abcast.Options{})
//	if err != nil { ... }
//	defer c.Close()
//	c.Broadcast(1, []byte("hello"))
//	d, ok := c.Next(2, time.Second) // same order at every process
//
// Beyond the paper's serial ordering loop, Options.Pipeline runs up to W
// consensus instances concurrently (decisions are still consumed in serial
// order, so delivery order and crash safety are unchanged). Pipelining
// matters when Options.MaxBatch caps the identifiers ordered per instance:
// the serial engine's throughput is then bounded by MaxBatch divided by the
// consensus round-trip, and W concurrent instances multiply that ceiling —
// with unbounded batching (the paper's Algorithm 1), load is absorbed into
// ever larger batches instead and W buys little. The trade-off is
// quantified by the `abench -fig p1` ablation.
//
// # WAN / geo-replication
//
// The paper evaluates only two LAN test beds; this reproduction extends the
// scenario space to geo-replicated deployments. A netmodel.Topology assigns
// every process to a site and every ordered site pair a directed link
// (latency, jitter, bandwidth — asymmetric routes allowed); Options.Topology
// selects one for the live cluster, and the simulator applies it per link.
// netmodel.WAN3Sites is a calibrated 3-site profile: 1 ms intra-site links,
// 40-126 ms asymmetric inter-site links at ~100 Mbit/s. Precedence is
// explicit: an adversarial Params.LatencyFn overrides the topology, which
// overrides the uniform latency/jitter.
//
// The simulator adds runtime partition injection: simnet World.Partition
// splits the system into groups and severs cross-group messages at their
// arrival instant, either dropping them (PartitionDrop — a black hole,
// which violates the quasi-reliable channel assumption while it lasts) or
// holding them until World.Heal (PartitionDelay — TCP-like buffering, under
// which every protocol property survives the episode and the minority side
// catches up at the heal). Both compose with Crash and stay deterministic
// under the simulation seed. Figures g1 (WAN latency vs pipeline width) and
// g2 (delivered throughput across a minority-site partition-and-heal
// episode) quantify the scenario: `abench -fig g1,g2`, with -topo and
// -partition available to impose a topology or an episode on any figure.
//
// # Recovery: surviving lossy links
//
// The paper's model assumes quasi-reliable channels, so a drop-mode
// partition steps outside it: traffic black-holed at the cut is gone, and
// once the original DecideMsgs and payload diffusions are lost, the minority
// side of a healed cut would stay behind forever. Options.Recovery (engine
// side: core.Config.Recover) installs the recovery subsystem that restores
// the channel assumption end to end:
//
//   - a reliable-link layer (internal/relink) that sequence-numbers every
//     remote send, keeps a bounded per-peer retransmission buffer, and runs
//     periodic anti-entropy (receiver digests, sender probes) to find and
//     repair gaps — with an eviction watermark so bounded buffers degrade
//     to give-ups instead of infinite NACKs;
//   - a consensus decide-relay: decisions outlive pruning in a bounded log,
//     and peers whose stale traffic or explicit sync requests reveal them
//     as behind are re-sent the decisions they missed;
//   - engine-level payload repair: ordered identifiers whose message never
//     arrived are fetched from a peer by identifier (No loss guarantees a
//     holder exists), and messages stuck unordered too long are
//     re-diffused, since the reliable broadcasts relay only on first
//     receipt.
//
// Recovery's repairs are replay-bounded: relink by its retransmission
// buffers, the decide-relay by its decision log. A process cut off for more
// consensus instances than the log retains (DecisionLogCap) falls off that
// horizon — the decisions it needs first are evicted everywhere, so no
// replay can catch it up. Options.Snapshot (engine side:
// core.RecoverConfig.Snapshot; implies Recovery) adds the Raft-snapshot
// analogue: the deep-lagged peer is shipped the delivered prefix plus
// engine state in bounded chunked rounds, atomically advanced past the gap,
// and the relay/fetch paths finish the tail — so the broadcast contract
// holds for arbitrarily long outages.
//
// The partition-mode guarantee matrix, pinned by the property tests in
// internal/core/partition_test.go and internal/core/snapshot_test.go
// ("deep" = the minority missed more instances than the decision log
// retains):
//
//	mode        recovery     during the cut                after the heal
//	delay       any          majority progresses; safety   full delivery everywhere
//	                         (total order, No loss) holds  (channels were never lost)
//	drop        off          majority progresses; safety   minority may stay behind
//	                         holds                         forever (documented gap)
//	drop        on           majority progresses; safety   full delivery everywhere —
//	                         holds                         drop behaves like delay
//	deep drop   on, no       majority progresses; safety   minority pinned below the
//	            snapshots    holds                         log floor forever
//	deep drop   on +         majority progresses; safety   full delivery everywhere —
//	            snapshots    holds                         snapshot, then relay/fetch
//
// Figure g3 (`abench -fig g3`) shows the delivered-rate flatline without
// recovery and the post-heal catch-up with it, including with buffers so
// small that only the decide-relay/fetch path (not raw replay) can finish
// the job; figure g4 repeats the comparison in the deep-lag regime, where
// relay-only recovery flatlines and only snapshot state transfer converges.
// `abench -recover` and `-snapshot` impose the subsystems on any figure.
//
// # Adaptive control plane
//
// Every performance knob above is a static number, and the right value is
// workload- and topology-dependent: the pipeline ablations show the best W
// differs between a metro network and the WAN. Options.Adaptive (engine
// side: core.Config.Adapt) replaces the hand-tuning with feedback: each
// process samples its own signals — unordered backlog, delivered rate,
// smoothed propose→decide latency, per-link round-trip estimates from the
// relink probe/ack exchanges — on a control tick and retargets its pipeline
// width and MaxBatch (AIMD: grow W while the backlog outruns a pipeline
// round and decisions keep pace, revert growth that adds no delivered
// throughput, decay toward serial when the backlog drains; batches escalate
// only once the window is exhausted) plus, with Recovery on, the relink
// anti-entropy cadence (a multiple of the slowest link's measured RTT
// instead of a constant). Width changes only gate how many new consensus
// instances may start — in-flight instances always drain and release their
// identifier claims at consumption — so total order and crash safety are
// exactly the static engine's. Figure p2 (`abench -fig p2`) ramps the
// offered load on the metro and WAN topologies and shows the controller
// matching the best hand-picked static W on both without retuning;
// `abench -adaptive` imposes the controller on any figure.
//
// The tuning-knob matrix (defaults in parentheses; each knob also exists on
// core.Config for engine-level embedding):
//
//	knob        (default)     effect
//	Pipeline    (1)           consensus instances run concurrently; raises
//	                          the ordering ceiling W× when MaxBatch binds
//	MaxBatch    (0 = ∞)       identifiers ordered per instance; bounds
//	                          per-instance work, trades burst latency
//	Recovery    (off)         relink retransmission + anti-entropy,
//	                          decide-relay, payload fetch: drop-mode cuts
//	                          become survivable
//	Snapshot    (off)         state transfer past the decision-log horizon
//	                          (implies Recovery): arbitrarily deep lags heal
//	Adaptive    (off)         backlog-driven W/MaxBatch retargeting plus
//	                          RTT-driven anti-entropy cadence; Pipeline and
//	                          MaxBatch become initial values
//	Membership  (nil=static)  dynamic ordering group: Join/Leave changes
//	                          ride the total order; pair with Recovery
//	                          (and Snapshot for arbitrarily old joiners)
//	Persist     (nil=off)     checkpoint/WAL store per process (implies
//	                          Recovery+Snapshot): bounded memory via
//	                          delivered-prefix pruning, Crash becomes
//	                          reversible through Restart
//	Trace       (off)         lifecycle span log per message, exported via
//	                          WriteTrace (JSONL / Chrome trace_event)
//	Metrics     (off)         per-process metric registries, readable via
//	                          MetricsSnapshot; MetricsAddr adds the HTTP
//	                          /metrics + pprof exporter
//
// # Dynamic membership
//
// Options.Membership (engine side: core.Config.Members) turns the fixed
// n-process group into a dynamic one: only the listed processes form the
// initial ordering group, and Cluster.Join / Cluster.Leave change it at
// runtime. A membership change is not a side channel — it is atomically
// broadcast like any payload and takes a position in the total order, so
// every process observes it at the same delivery point. That point defines
// the switch: consensus instances at or above deliverySerial+ConfigLag run
// under the new member set (quorum thresholds, coordinator rotation,
// per-instance fan-out), everything below drains under the old one, and the
// transport-level view (payload diffusion, heartbeat monitoring, relink
// anti-entropy) retargets immediately at the delivery point. The lag exists
// because pipelining may already have instances proposed beyond the
// delivery frontier; proposing is gated so no instance's member set can
// change retroactively.
//
// A joiner bootstraps through the recovery machinery, not a separate
// protocol: members that apply the join introduce it with a decision replay
// (or a snapshot offer when it is behind the decision log's floor), decide
// dissemination includes the latest applied view so the joiner follows the
// tail of pre-switch instances even if the group then goes quiescent, and
// payload fetch fills in the messages it never saw diffused. A leaver
// drains every instance below the switch, then retires; the failure
// detectors mark it suspected the instant the change applies, so instances
// still draining under old views rotate past it without timeout waits.
//
// The churn guarantee matrix, pinned by the property-test families in
// internal/core/membership_test.go and the public-API test in
// cluster_test.go:
//
//	event                    guarantee
//	join                     applied at one serial everywhere; the joiner
//	                         reconstructs the full pre-join history in
//	                         order (relay + fetch; snapshot when deep)
//	leave                    instances below the switch drain with the
//	                         leaver counted; above it quorums shrink —
//	                         ordering never stalls on the departed member
//	churn + partition/crash  total order, integrity and validity hold
//	                         under any composition; safety is never
//	                         traded for the switch
//	quiescent switch         the switch completes without application
//	                         load: members drive the pipeline to the
//	                         effective serial with empty instances
//
// Dynamic membership wants Recovery on (Snapshot for joiners arbitrarily
// far behind): payloads diffused before a join miss the joiner by
// construction, and the fetch path is what repairs that. Figure m1
// (`abench -fig m1`) measures delivered throughput across a join+leave
// episode against a static group, on the metro and WAN profiles.
//
// # Crash recovery: persistence and bounded memory
//
// The paper's model is crash-stop: a crashed process is gone, and every
// process keeps its full delivered history in memory. Options.Persist
// (engine side: core.Config.Persist, stores in internal/persist) upgrades
// both at once, because they are the same mechanism. Each process
// checkpoints a digest of its delivered prefix — per-sender contiguous
// floors plus a sparse residue, the applied view log, and the consensus
// frontier — to a pluggable store (in-memory, or a directory via
// PersistOptions.Dir), lazily on a timer: a stale checkpoint only lengthens
// the redelivered suffix after a restart, never changes the order. Two
// counters are the exception and go through a write-ahead log before use —
// the process's own broadcast sequence number and the relink stream
// reservation — because reusing either after a restart would let a new
// message alias an old identifier and be deduplicated away, a Validity
// violation.
//
// Durable frontiers are gossiped, and once every current member's durable
// frontier has passed a consensus instance, everything below it is pruned
// from memory: payload buffers, delivered-set bookkeeping, the delivered
// log's prefix (snapshot state transfer then ships the retained suffix,
// which the checkpoint boundary invariant keeps sufficient for any peer
// that can still need one). A long-running cluster thus holds a bounded
// working set instead of its full history — the soak property test in
// internal/core/persist_test.go pins memory flat over hours of simulated
// churn. Cluster.Restart (simulator: bench Experiment.RestartProc) revives
// a crashed process from its store: rehydrate the checkpoint, replay the
// WAL, rejoin, and catch the tail through the recovery paths.
//
// The crash-recovery guarantee matrix, pinned by the restart property tests
// in internal/core/persist_test.go and cluster_test.go:
//
//	event                    guarantee
//	crash, persist off       crash-stop (the paper's model): survivors keep
//	                         ordering while a majority remains; the crashed
//	                         process never returns
//	crash + restart          the incarnation resumes at its checkpoint and
//	                         redelivers from there: at-least-once delivery
//	                         across the crash, order unchanged (its
//	                         deduplicated sequence is a prefix-suffix match
//	                         of every correct process's order)
//	restart + new broadcast  WAL'd counters: no new message ever aliases a
//	                         pre-crash identifier, so post-restart
//	                         broadcasts deliver everywhere exactly once
//	crash + churn/partition  composes: checkpoint boundaries respect the
//	                         applied view, so pruning never outruns a
//	                         member that could still need the state
//
// Delivery to the application is at-least-once across a restart — the
// suffix above the last checkpoint is redelivered in unchanged order — so a
// consumer keeps one high-water mark per sender and skips anything at or
// below it (examples/restartable-kv shows the pattern). Figure r1
// (`abench -fig r1`) measures restart-from-checkpoint against staying down
// as a function of downtime.
//
// # Observability
//
// Options.Trace records every message's lifecycle — abroadcast, first
// payload receipt, consensus propose/decide, ordering, adelivery, plus the
// recovery events that repair a run — as typed spans stamped on each
// process's own clock (internal/trace); Cluster.WriteTrace exports them as
// byte-stable JSONL or Chrome trace_event JSON, and figure o1 decomposes
// end-to-end latency into diffusion/consensus/queue stages from the same
// events. Options.Metrics collects every layer's counters into per-process
// registries (internal/metrics; Cluster.MetricsSnapshot), and
// Options.MetricsAddr serves them with the standard pprof endpoints over
// HTTP. Both planes are built so observation cannot perturb the run:
// recording is an event-loop append with a nil-recorder fast path, and
// counters are always-on atomic cells whether or not a registry collects
// them — the pinned benchmark trajectory proves the instrumented stack
// byte-identical with both off. docs/OPERATIONS.md carries the metric
// catalog and the profiling workflow.
//
// The building blocks live under internal/: the ◇S consensus algorithms
// (Chandra–Toueg and Mostéfaoui–Raynal) and their indirect adaptations,
// reliable/uniform broadcast, heartbeat failure detection, the Algorithm 1
// engine, the recovery stack above, a deterministic discrete-event
// simulator, and the benchmark harness that regenerates every figure of the
// paper (cmd/abench). docs/ARCHITECTURE.md has the full layer map and a
// message walk-through.
//
// # Simulation-path vs wall-clock packages
//
// The internal packages split into two worlds, and the split is enforced
// statically by the abcheck analyzers (internal/analysis, cmd/abcheck).
// Simulation-path packages — sim, simnet, core, consensus, relink, rbcast,
// fd, adapt, msg, stack, bench, persist, plus the pure models netmodel,
// wire, indirect — run under the virtual clock: they may only read time through
// the runtime context (stack.Context.Now, SetTimer) and draw randomness
// from the per-process seeded source, which is what makes seeded runs
// bit-for-bit reproducible. Wall-clock packages — this root package
// (caller-side timeouts), tcpnet, live, stats, and everything under cmd/
// and examples/ — face the host clock and real sockets and are exempt.
// docs/ARCHITECTURE.md ("Determinism invariants") states the full rules
// and the //abcheck annotation grammar.
package abcast
