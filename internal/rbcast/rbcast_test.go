package rbcast

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// rbHarness wires one broadcaster per process.
type rbHarness struct {
	w         *simnet.World
	bcs       []Broadcaster
	fds       []*fd.Scripted
	delivered []map[msg.ID]int // id -> delivery count per process
	order     [][]msg.ID
}

func newRBHarness(t *testing.T, n int, kind Kind) *rbHarness {
	t.Helper()
	h := &rbHarness{
		w:         simnet.NewWorld(n, netmodel.Setup1(), 5),
		bcs:       make([]Broadcaster, n+1),
		fds:       make([]*fd.Scripted, n+1),
		delivered: make([]map[msg.ID]int, n+1),
		order:     make([][]msg.ID, n+1),
	}
	for i := 1; i <= n; i++ {
		i := i
		h.fds[i] = fd.NewScripted()
		h.delivered[i] = make(map[msg.ID]int)
		h.bcs[i] = New(kind, h.w.Node(stack.ProcessID(i)), h.fds[i], func(a *msg.App) {
			h.delivered[i][a.ID]++
			h.order[i] = append(h.order[i], a.ID)
		})
	}
	return h
}

func (h *rbHarness) broadcast(p stack.ProcessID, d time.Duration, id msg.ID, payload int) {
	h.w.After(p, d, func() {
		h.bcs[p].Broadcast(&msg.App{ID: id, Payload: make([]byte, payload)})
	})
}

func kinds() []Kind { return []Kind{KindEager, KindLazy, KindUniform} }

func TestAllKindsDeliverEverywhereOnce(t *testing.T) {
	for _, k := range kinds() {
		t.Run(k.String(), func(t *testing.T) {
			const n = 4
			h := newRBHarness(t, n, k)
			var ids []msg.ID
			for i := 1; i <= n; i++ {
				for s := 1; s <= 3; s++ {
					id := msg.ID{Sender: stack.ProcessID(i), Seq: uint64(s)}
					ids = append(ids, id)
					h.broadcast(stack.ProcessID(i), time.Duration(s)*time.Millisecond, id, 50)
				}
			}
			h.w.RunFor(time.Second)
			for p := 1; p <= n; p++ {
				for _, id := range ids {
					if c := h.delivered[p][id]; c != 1 {
						t.Fatalf("%v: p%d delivered %v %d times, want 1", k, p, id, c)
					}
				}
			}
		})
	}
}

// TestValidity: the sender itself delivers its own message (immediately for
// the reliable variants, after a majority echo for uniform).
func TestValidity(t *testing.T) {
	for _, k := range kinds() {
		t.Run(k.String(), func(t *testing.T) {
			h := newRBHarness(t, 3, k)
			id := msg.ID{Sender: 1, Seq: 1}
			h.broadcast(1, 0, id, 1)
			h.w.RunFor(time.Second)
			if h.delivered[1][id] != 1 {
				t.Fatalf("%v: sender did not deliver its own message", k)
			}
		})
	}
}

// TestEagerMessageComplexity verifies the O(n²) cost: every process relays
// every message once.
func TestEagerMessageComplexity(t *testing.T) {
	const n = 5
	h := newRBHarness(t, n, KindEager)
	h.broadcast(1, 0, msg.ID{Sender: 1, Seq: 1}, 1)
	h.w.RunFor(time.Second)
	// Sender: n-1 sends; each of the n-1 receivers relays to n-1 others.
	want := int64((n - 1) * n)
	if got := h.w.MsgsSent(); got != want {
		t.Fatalf("eager rbcast used %d messages, want %d", got, want)
	}
}

// TestLazyMessageComplexity verifies the O(n) good-run cost: without
// suspicion, only the sender transmits.
func TestLazyMessageComplexity(t *testing.T) {
	const n = 5
	h := newRBHarness(t, n, KindLazy)
	h.broadcast(1, 0, msg.ID{Sender: 1, Seq: 1}, 1)
	h.w.RunFor(time.Second)
	if got := h.w.MsgsSent(); got != int64(n-1) {
		t.Fatalf("lazy rbcast used %d messages in a good run, want %d", got, n-1)
	}
}

// TestUniformMessageComplexity: data to n-1, plus an echo from each of the
// n-1 receivers to n-1 others.
func TestUniformMessageComplexity(t *testing.T) {
	const n = 3
	h := newRBHarness(t, n, KindUniform)
	h.broadcast(1, 0, msg.ID{Sender: 1, Seq: 1}, 1)
	h.w.RunFor(time.Second)
	want := int64((n - 1) * n)
	if got := h.w.MsgsSent(); got != want {
		t.Fatalf("uniform rbcast used %d messages, want %d", got, want)
	}
}

// TestUniformSenderPaysExtraStep: with plain reliable broadcast, a sender
// delivers its own message immediately; with uniform reliable broadcast it
// must first learn that a majority holds the message — a full round trip.
// This is the extra communication step the paper's Section 4.4 attributes
// the cost of the URB-based stack to.
func TestUniformSenderPaysExtraStep(t *testing.T) {
	timeOf := func(k Kind) time.Duration {
		w := simnet.NewWorld(3, netmodel.Setup1(), 5)
		var deliveredAt time.Duration = -1
		var bc Broadcaster
		for i := 1; i <= 3; i++ {
			i := i
			det := fd.NewScripted()
			b := New(k, w.Node(stack.ProcessID(i)), det, func(a *msg.App) {
				if i == 1 && deliveredAt < 0 {
					deliveredAt = w.Now().Sub(time.Unix(0, 0))
				}
			})
			if i == 1 {
				bc = b
			}
		}
		w.After(1, 0, func() {
			bc.Broadcast(&msg.App{ID: msg.ID{Sender: 1, Seq: 1}, Payload: make([]byte, 100)})
		})
		w.RunFor(time.Second)
		return deliveredAt
	}
	eager := timeOf(KindEager)
	uniform := timeOf(KindUniform)
	if eager < 0 || uniform < 0 {
		t.Fatalf("sender deliveries not observed: eager=%v uniform=%v", eager, uniform)
	}
	if uniform <= eager {
		t.Fatalf("uniform sender delivered in %v, eager in %v; uniform must pay a round trip", uniform, eager)
	}
}

// TestLazyRelaysOnSuspicion: if the origin is suspected after a partial
// broadcast, holders must relay so every correct process delivers
// (Agreement).
func TestLazyRelaysOnSuspicion(t *testing.T) {
	const n = 3
	params := netmodel.Setup1()
	// Adversarial delay: DATA from p1 to p3 is extremely slow.
	params.LatencyFn = func(from, to stack.ProcessID, env stack.Envelope) time.Duration {
		if from == 1 && to == 3 {
			return time.Hour
		}
		return params.Latency
	}
	h := &rbHarness{
		w:         simnet.NewWorld(n, params, 5),
		bcs:       make([]Broadcaster, n+1),
		fds:       make([]*fd.Scripted, n+1),
		delivered: make([]map[msg.ID]int, n+1),
		order:     make([][]msg.ID, n+1),
	}
	for i := 1; i <= n; i++ {
		i := i
		h.fds[i] = fd.NewScripted()
		h.delivered[i] = make(map[msg.ID]int)
		h.bcs[i] = New(KindLazy, h.w.Node(stack.ProcessID(i)), h.fds[i], func(a *msg.App) {
			h.delivered[i][a.ID]++
		})
	}
	id := msg.ID{Sender: 1, Seq: 1}
	h.broadcast(1, 0, id, 10)
	// p1 crashes; p2 (which holds m) eventually suspects it and relays.
	h.w.After(2, 10*time.Millisecond, func() { h.w.Crash(1, simnet.DropInFlight) })
	h.w.After(2, 50*time.Millisecond, func() { h.fds[2].SetSuspected(1, true) })
	h.w.RunFor(time.Second)
	if h.delivered[2][id] != 1 {
		t.Fatal("p2 missing the message")
	}
	if h.delivered[3][id] != 1 {
		t.Fatal("agreement violated: p3 never delivered despite a correct holder")
	}
}

// TestUniformAgreementUnderCrash: with uniform broadcast, if any process
// delivered, all correct processes deliver — even when the sender crashes
// immediately after its sends.
func TestUniformAgreementUnderCrash(t *testing.T) {
	const n = 5
	h := newRBHarness(t, n, KindUniform)
	id := msg.ID{Sender: 1, Seq: 1}
	h.broadcast(1, 0, id, 10)
	// Crash the sender shortly after; in-flight copies still reach some
	// processes, whose echoes must complete delivery everywhere.
	h.w.After(2, 5*time.Millisecond, func() { h.w.Crash(1, simnet.DeliverInFlight) })
	h.w.RunFor(time.Second)
	deliveredSomewhere := false
	for p := 2; p <= n; p++ {
		if h.delivered[p][id] > 0 {
			deliveredSomewhere = true
		}
	}
	if !deliveredSomewhere {
		t.Skip("no process delivered; uniform agreement vacuous in this schedule")
	}
	for p := 2; p <= n; p++ {
		if h.delivered[p][id] != 1 {
			t.Fatalf("uniform agreement violated: p%d delivered %d times", p, h.delivered[p][id])
		}
	}
}

func TestMajority(t *testing.T) {
	for _, c := range []struct{ n, want int }{{1, 1}, {2, 2}, {3, 2}, {4, 3}, {5, 3}, {6, 4}, {7, 4}} {
		if got := Majority(c.n); got != c.want {
			t.Errorf("Majority(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	for _, c := range []struct {
		k    Kind
		want string
	}{
		{KindEager, "rbcast-O(n2)"},
		{KindLazy, "rbcast-O(n)"},
		{KindUniform, "uniform-rbcast"},
		{Kind(0), "rbcast-unknown"},
	} {
		if got := c.k.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("New with unknown kind did not panic")
		}
	}()
	w := simnet.NewWorld(1, netmodel.Instant(), 1)
	New(Kind(0), w.Node(1), nil, func(*msg.App) {})
}

func TestDuplicateBroadcastIgnored(t *testing.T) {
	for _, k := range kinds() {
		t.Run(fmt.Sprint(k), func(t *testing.T) {
			h := newRBHarness(t, 3, k)
			id := msg.ID{Sender: 1, Seq: 1}
			h.broadcast(1, 0, id, 1)
			h.broadcast(1, time.Millisecond, id, 1) // same id again
			h.w.RunFor(time.Second)
			for p := 1; p <= 3; p++ {
				if h.delivered[p][id] != 1 {
					t.Fatalf("p%d delivered %d times", p, h.delivered[p][id])
				}
			}
		})
	}
}
