// Package rbcast implements the broadcast primitives beneath atomic
// broadcast:
//
//   - Eager: reliable broadcast with O(n²) messages — every process relays a
//     message on first receipt (the algorithm assumed in Chandra & Toueg's
//     reduction, and the "Reliable broadcast in O(n^2) messages" series of
//     Figures 5 and 7a).
//   - Lazy: reliable broadcast with O(n) messages in good runs — receivers
//     relay a message only if/when the failure detector suspects its sender
//     (the "Reliable broadcast in O(n) messages" series of Figures 6
//     and 7b).
//   - Uniform: uniform reliable broadcast — majority echo, two
//     communication steps, O(n²) messages, tolerating f < n/2 crashes. Used
//     by the alternative correct stack the paper compares against in
//     Section 4.4.
//
// All three satisfy Validity, Uniform integrity and Agreement; Uniform
// additionally satisfies uniform agreement (if *any* process delivers m,
// every correct process eventually delivers m).
package rbcast

import (
	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/stack"
)

// Deliver is the upcall invoked exactly once per delivered message.
type Deliver func(*msg.App)

// Broadcaster is the sending interface used by the atomic broadcast engine.
type Broadcaster interface {
	// Broadcast R-broadcasts (or uniform-R-broadcasts) the message to all
	// processes, including the sender.
	Broadcast(app *msg.App)
	// Rebroadcast re-diffuses an already-delivered message to the other
	// processes. The reliable broadcasts relay only on *first* receipt, so
	// their Agreement property is spent once the relays have been sent: if
	// those sends were black-holed (drop-mode partition) and evicted from
	// every retransmission buffer, no layer would ever offer the message
	// again. The recovery subsystem calls this for messages stuck
	// unordered too long; receivers that already hold the message drop the
	// duplicate, so delivery stays at-most-once.
	Rebroadcast(app *msg.App)
}

// Kind selects a broadcast algorithm.
type Kind int

// Available broadcast algorithms.
const (
	KindEager   Kind = iota + 1 // O(n²) reliable broadcast
	KindLazy                    // O(n) good-run reliable broadcast (needs a failure detector)
	KindUniform                 // uniform reliable broadcast (majority echo)
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindEager:
		return "rbcast-O(n2)"
	case KindLazy:
		return "rbcast-O(n)"
	case KindUniform:
		return "uniform-rbcast"
	default:
		return "rbcast-unknown"
	}
}

// DataMsg carries the application message.
type DataMsg struct {
	App *msg.App
}

// WireSize implements stack.Message.
func (d DataMsg) WireSize() int { return 1 + d.App.WireSize() }

// EchoMsg is the uniform-broadcast echo; it carries the full message because
// the echoing process cannot know whether the destination already holds it.
type EchoMsg struct {
	App *msg.App
}

// WireSize implements stack.Message.
func (e EchoMsg) WireSize() int { return 1 + e.App.WireSize() }

// Eager is the O(n²) reliable broadcast.
type Eager struct {
	proto     stack.Proto
	deliver   Deliver
	delivered map[msg.ID]bool
}

var _ Broadcaster = (*Eager)(nil)

// NewEager wires an eager reliable broadcast into the node under
// stack.ProtoRB.
func NewEager(node *stack.Node, deliver Deliver) *Eager {
	e := &Eager{
		proto:     node.Proto(stack.ProtoRB),
		deliver:   deliver,
		delivered: make(map[msg.ID]bool),
	}
	node.Register(stack.ProtoRB, stack.HandlerFunc(e.receive))
	return e
}

// Broadcast implements Broadcaster.
func (e *Eager) Broadcast(app *msg.App) {
	if e.delivered[app.ID] {
		return
	}
	e.delivered[app.ID] = true
	e.proto.BroadcastOthers(0, DataMsg{App: app})
	e.deliver(app)
}

// Rebroadcast implements Broadcaster: re-send the data message to the other
// processes (no local re-delivery; receivers dedupe).
func (e *Eager) Rebroadcast(app *msg.App) {
	e.proto.BroadcastOthers(0, DataMsg{App: app})
}

func (e *Eager) receive(_ stack.ProcessID, _ uint64, m stack.Message) {
	d, ok := m.(DataMsg)
	if !ok || e.delivered[d.App.ID] {
		return
	}
	e.delivered[d.App.ID] = true
	// Relay on first receipt: this is what makes the broadcast reliable
	// (Agreement) despite sender crashes, at O(n²) message cost.
	e.proto.BroadcastOthers(0, DataMsg{App: d.App})
	e.deliver(d.App)
}

// Lazy is the O(n)-messages-in-good-runs reliable broadcast: a receiver
// relays a message only when the failure detector suspects the message's
// original sender, so in failure-free, suspicion-free runs each broadcast
// costs exactly n-1 messages.
type Lazy struct {
	proto     stack.Proto
	deliver   Deliver
	detector  fd.Detector
	delivered map[msg.ID]*msg.App // messages seen (nil once relayed)
	relayed   map[msg.ID]bool
	bySender  map[stack.ProcessID][]msg.ID // pending relay bookkeeping
}

var _ Broadcaster = (*Lazy)(nil)

// NewLazy wires a lazy reliable broadcast into the node under
// stack.ProtoRB. The detector drives crash-triggered relaying.
func NewLazy(node *stack.Node, detector fd.Detector, deliver Deliver) *Lazy {
	l := &Lazy{
		proto:     node.Proto(stack.ProtoRB),
		deliver:   deliver,
		detector:  detector,
		delivered: make(map[msg.ID]*msg.App),
		relayed:   make(map[msg.ID]bool),
		bySender:  make(map[stack.ProcessID][]msg.ID),
	}
	node.Register(stack.ProtoRB, stack.HandlerFunc(l.receive))
	detector.Subscribe(func(q stack.ProcessID, suspected bool) {
		if suspected {
			l.relaySuspect(q)
		}
	})
	return l
}

// Broadcast implements Broadcaster.
func (l *Lazy) Broadcast(app *msg.App) {
	if _, seen := l.delivered[app.ID]; seen {
		return
	}
	l.delivered[app.ID] = app
	l.relayed[app.ID] = true // the origin's send is the "relay"
	l.proto.BroadcastOthers(0, DataMsg{App: app})
	l.deliver(app)
}

// Rebroadcast implements Broadcaster.
func (l *Lazy) Rebroadcast(app *msg.App) {
	l.proto.BroadcastOthers(0, DataMsg{App: app})
}

func (l *Lazy) receive(_ stack.ProcessID, _ uint64, m stack.Message) {
	d, ok := m.(DataMsg)
	if !ok {
		return
	}
	if _, seen := l.delivered[d.App.ID]; seen {
		return
	}
	l.delivered[d.App.ID] = d.App
	origin := d.App.ID.Sender
	l.bySender[origin] = append(l.bySender[origin], d.App.ID)
	if l.detector.Suspects(origin) {
		// The sender is already suspected: relay immediately.
		l.relayOne(d.App)
	}
	l.deliver(d.App)
}

// relaySuspect relays every message whose origin q is now suspected.
func (l *Lazy) relaySuspect(q stack.ProcessID) {
	for _, id := range l.bySender[q] {
		if app := l.delivered[id]; app != nil {
			l.relayOne(app)
		}
	}
}

func (l *Lazy) relayOne(app *msg.App) {
	if l.relayed[app.ID] {
		return
	}
	l.relayed[app.ID] = true
	l.proto.BroadcastOthers(0, DataMsg{App: app})
}

// Uniform is uniform reliable broadcast: deliver only once a majority of
// processes is known to hold the message. Requires f < n/2.
type Uniform struct {
	proto     stack.Proto
	deliver   Deliver
	have      map[msg.ID]*msg.App
	holders   map[msg.ID]map[stack.ProcessID]bool
	delivered map[msg.ID]bool
}

var _ Broadcaster = (*Uniform)(nil)

// NewUniform wires a uniform reliable broadcast into the node under
// stack.ProtoURB.
func NewUniform(node *stack.Node, deliver Deliver) *Uniform {
	u := &Uniform{
		proto:     node.Proto(stack.ProtoURB),
		deliver:   deliver,
		have:      make(map[msg.ID]*msg.App),
		holders:   make(map[msg.ID]map[stack.ProcessID]bool),
		delivered: make(map[msg.ID]bool),
	}
	node.Register(stack.ProtoURB, stack.HandlerFunc(u.receive))
	return u
}

// Broadcast implements Broadcaster.
func (u *Uniform) Broadcast(app *msg.App) {
	if _, seen := u.have[app.ID]; seen {
		return
	}
	u.have[app.ID] = app
	u.addHolder(app.ID, u.proto.Ctx().ID())
	u.proto.BroadcastOthers(0, DataMsg{App: app})
	u.check(app.ID)
}

// Rebroadcast implements Broadcaster: re-send the data message; receivers
// re-run the holder/echo bookkeeping idempotently.
func (u *Uniform) Rebroadcast(app *msg.App) {
	u.proto.BroadcastOthers(0, DataMsg{App: app})
}

func (u *Uniform) receive(from stack.ProcessID, _ uint64, m stack.Message) {
	var app *msg.App
	switch mm := m.(type) {
	case DataMsg:
		app = mm.App
	case EchoMsg:
		app = mm.App
	default:
		return
	}
	first := false
	if _, seen := u.have[app.ID]; !seen {
		u.have[app.ID] = app
		first = true
	}
	u.addHolder(app.ID, from)
	u.addHolder(app.ID, u.proto.Ctx().ID())
	if first {
		// Echo on first receipt so every process learns who holds m.
		u.proto.BroadcastOthers(0, EchoMsg{App: app})
	}
	u.check(app.ID)
}

func (u *Uniform) addHolder(id msg.ID, p stack.ProcessID) {
	h, ok := u.holders[id]
	if !ok {
		h = make(map[stack.ProcessID]bool, u.proto.Ctx().N())
		u.holders[id] = h
	}
	h[p] = true
}

// check delivers the message once a majority is known to hold it.
func (u *Uniform) check(id msg.ID) {
	if u.delivered[id] {
		return
	}
	if len(u.holders[id]) >= Majority(u.proto.Ctx().N()) {
		u.delivered[id] = true
		u.deliver(u.have[id])
	}
}

// Majority returns ⌈(n+1)/2⌉, the quorum used by uniform reliable broadcast
// and by the Chandra–Toueg consensus algorithms.
func Majority(n int) int { return (n + 2) / 2 }

// New constructs the broadcast of the given kind. The detector may be nil
// unless kind is KindLazy.
func New(kind Kind, node *stack.Node, detector fd.Detector, deliver Deliver) Broadcaster {
	switch kind {
	case KindEager:
		return NewEager(node, deliver)
	case KindLazy:
		return NewLazy(node, detector, deliver)
	case KindUniform:
		return NewUniform(node, deliver)
	default:
		panic("rbcast: unknown kind")
	}
}
