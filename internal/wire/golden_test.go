package wire

// Golden-vector suite: the exact encoded bytes of one instance of every
// wire type are checked in under testdata/golden.hex. Any accidental format
// change — a field reordered, a width changed, a tag renumbered — fails
// here loudly, in both directions: today's encoder must reproduce the
// pinned bytes, and the pinned bytes must decode back to the original
// value (what an already-deployed peer would emit).
//
// Version-bump procedure (enforced by this test): if a format change is
// intentional, bump wire.Version, regenerate the vectors with
//
//	ABCAST_REGEN_GOLDEN=1 go test ./internal/wire -run TestGolden
//
// and describe the change in docs/ARCHITECTURE.md's wire-format section.
// Never regenerate without the version bump: two binaries disagreeing
// about the same version byte is exactly the failure mode the vectors
// exist to prevent.

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"abcast/internal/consensus"
	"abcast/internal/core"
	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/rbcast"
	"abcast/internal/relink"
	"abcast/internal/stack"
)

// goldenCase pins one instance of one wire type.
type goldenCase struct {
	name string
	from stack.ProcessID
	env  stack.Envelope
}

// goldenCases returns one deterministic instance per registered wire type
// (plus one per consensus-value shape). Do not edit existing entries: each
// is a frozen contract with the checked-in bytes.
func goldenCases() []goldenCase {
	app := &msg.App{ID: msg.ID{Sender: 2, Seq: 5}, Payload: []byte("golden")}
	cfgApp := &msg.App{ID: msg.ID{Sender: 1, Seq: 8}, Config: &msg.ConfigChange{Join: 4, Leave: 3}}
	idv := core.IDSetValue{Set: msg.NewIDSet(msg.ID{Sender: 1, Seq: 1}, msg.ID{Sender: 3, Seq: 2})}
	msgv := core.NewMsgSetValue([]*msg.App{app})
	return []goldenCase{
		{"fd.HeartbeatMsg", 1, stack.Envelope{Proto: stack.ProtoFD, Msg: fd.HeartbeatMsg{}}},
		{"rbcast.DataMsg", 2, stack.Envelope{Proto: stack.ProtoRB, Msg: rbcast.DataMsg{App: app}}},
		{"rbcast.EchoMsg", 3, stack.Envelope{Proto: stack.ProtoURB, Msg: rbcast.EchoMsg{App: cfgApp}}},
		{"consensus.CTEstimateMsg", 1, stack.Envelope{Proto: stack.ProtoCons, Inst: 4, Msg: consensus.CTEstimateMsg{R: 2, TS: 1, Est: idv}}},
		{"consensus.CTProposalMsg", 2, stack.Envelope{Proto: stack.ProtoCons, Inst: 4, Msg: consensus.CTProposalMsg{R: 2, Est: idv}}},
		{"consensus.CTAckMsg", 3, stack.Envelope{Proto: stack.ProtoCons, Inst: 4, Msg: consensus.CTAckMsg{R: 2, Nack: true}}},
		{"consensus.MREchoMsg", 1, stack.Envelope{Proto: stack.ProtoCons, Inst: 5, Msg: consensus.MREchoMsg{R: 3, Bottom: true, Est: nil}}},
		{"consensus.DecideMsg", 2, stack.Envelope{Proto: stack.ProtoCons, Inst: 5, Msg: consensus.DecideMsg{Est: msgv}}},
		{"consensus.OpenMsg", 3, stack.Envelope{Proto: stack.ProtoCons, Inst: 6, Msg: consensus.OpenMsg{Also: []uint64{7, 9}}}},
		{"consensus.PiggyMsg", 1, stack.Envelope{Proto: stack.ProtoCons, Inst: 6, Msg: consensus.PiggyMsg{Opens: []uint64{7}, M: consensus.CTAckMsg{R: 1}}}},
		{"consensus.SyncReqMsg", 2, stack.Envelope{Proto: stack.ProtoCons, Msg: consensus.SyncReqMsg{From: 12}}},
		{"relink.SeqMsg", 3, stack.Envelope{Proto: stack.ProtoLink, Msg: relink.SeqMsg{Seq: 9, Low: 2, Env: stack.Envelope{Proto: stack.ProtoRB, Msg: rbcast.DataMsg{App: app}}}}},
		{"relink.AckMsg", 1, stack.Envelope{Proto: stack.ProtoLink, Msg: relink.AckMsg{Cum: 5, Have: []uint64{7, 8}}}},
		{"relink.ProbeMsg", 2, stack.Envelope{Proto: stack.ProtoLink, Msg: relink.ProbeMsg{Max: 11, Low: 4}}},
		{"core.FetchMsg", 3, stack.Envelope{Proto: stack.ProtoSync, Msg: core.FetchMsg{IDs: []msg.ID{{Sender: 2, Seq: 3}}}}},
		{"core.SupplyMsg", 1, stack.Envelope{Proto: stack.ProtoSync, Msg: core.SupplyMsg{Apps: []*msg.App{app}}}},
		{"core.SnapOfferMsg", 2, stack.Envelope{Proto: stack.ProtoSnapshot, Msg: core.SnapOfferMsg{Boundary: 40}}},
		{"core.SnapAcceptMsg", 3, stack.Envelope{Proto: stack.ProtoSnapshot, Msg: core.SnapAcceptMsg{Delivered: 16}}},
		{"core.SnapChunkMsg", 1, stack.Envelope{Proto: stack.ProtoSnapshot, Msg: core.SnapChunkMsg{
			Boundary: 40, Start: 8, Seq: 1, Total: 2, More: true,
			Entries: []core.SnapEntry{
				{ID: msg.ID{Sender: 1, Seq: 2}, K: 3, Payload: []byte("st")},
				{ID: msg.ID{Sender: 2, Seq: 1}, K: 4, Missing: true, Cfg: &msg.ConfigChange{Join: 4}},
			}}}},
		{"core.FrontierMsg", 2, stack.Envelope{Proto: stack.ProtoSync, Msg: core.FrontierMsg{Frontier: 33}}},
		{"msg.App", 2, stack.Envelope{Proto: stack.ProtoApp, Inst: 1, Msg: cfgApp}},
		{"value.IDSetValue.empty", 1, stack.Envelope{Proto: stack.ProtoCons, Inst: 7, Msg: consensus.DecideMsg{Est: core.IDSetValue{}}}},
		{"value.nil", 2, stack.Envelope{Proto: stack.ProtoCons, Inst: 7, Msg: consensus.CTEstimateMsg{R: 1, TS: -1}}},
	}
}

const goldenFile = "testdata/golden.hex"

// readGolden parses the checked-in vectors: one "name hex" pair per line.
func readGolden(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open(goldenFile)
	if err != nil {
		t.Fatalf("golden vectors missing (regenerate with ABCAST_REGEN_GOLDEN=1): %v", err)
	}
	defer f.Close()
	out := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		out[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// regenGolden rewrites the vector file from the current encoder.
func regenGolden(t *testing.T) {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Golden wire vectors, format version %d.\n", Version)
	sb.WriteString("# One 'name hex' pair per line; see golden_test.go for the\n")
	sb.WriteString("# instances and the version-bump procedure.\n")
	for _, c := range goldenCases() {
		data, err := EncodeEnvelope(c.from, c.env)
		if err != nil {
			t.Fatalf("%s: encode: %v", c.name, err)
		}
		fmt.Fprintf(&sb, "%s %s\n", c.name, hex.EncodeToString(data))
	}
	if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenFile, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %s — if the format changed, wire.Version must be bumped too", goldenFile)
}

// TestGoldenVectors pins the byte layout in both directions.
func TestGoldenVectors(t *testing.T) {
	if os.Getenv("ABCAST_REGEN_GOLDEN") != "" {
		regenGolden(t)
		return
	}
	want := readGolden(t)
	cases := goldenCases()
	if len(want) != len(cases) {
		t.Errorf("golden file has %d vectors, cases have %d (stale file? regenerate and bump Version if the format changed)", len(want), len(cases))
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			wantHex, ok := want[c.name]
			if !ok {
				t.Fatalf("no golden vector for %s (regenerate with ABCAST_REGEN_GOLDEN=1)", c.name)
			}
			data, err := EncodeEnvelope(c.from, c.env)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if got := hex.EncodeToString(data); got != wantHex {
				t.Fatalf("byte layout changed for %s:\n got:  %s\n want: %s\n"+
					"If intentional: bump wire.Version, regenerate with ABCAST_REGEN_GOLDEN=1, and document the change in docs/ARCHITECTURE.md.",
					c.name, got, wantHex)
			}
			// The pinned bytes (what a deployed peer emits) must still
			// decode to the original value.
			raw, err := hex.DecodeString(wantHex)
			if err != nil {
				t.Fatal(err)
			}
			from, env, err := DecodeEnvelope(raw)
			if err != nil {
				t.Fatalf("decode pinned bytes: %v", err)
			}
			if from != c.from || !reflect.DeepEqual(env, c.env) {
				t.Fatalf("pinned bytes decode mismatch:\n got:  %#v\n want: %#v", env, c.env)
			}
		})
	}
}

// TestGoldenVersionByte pins the frame's first byte to the declared format
// version, the field the bump procedure revolves around.
func TestGoldenVersionByte(t *testing.T) {
	data, err := EncodeEnvelope(1, stack.Envelope{Proto: stack.ProtoFD, Msg: fd.HeartbeatMsg{}})
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != Version {
		t.Fatalf("frame starts with %d, want Version=%d", data[0], Version)
	}
	// A frame from a future version must be rejected, not misparsed.
	future := append([]byte{Version + 1}, data[1:]...)
	if _, _, err := DecodeEnvelope(future); err == nil {
		t.Fatal("future-version frame decoded")
	}
}
