package wire

// Differential equivalence suite: the binary codec against the encoding/gob
// codec it replaced. Gob is kept here, test-only, as the trusted baseline —
// for every registered wire type, hand-built and randomized instances must
// round-trip to deep-equal results through both codecs, so any semantic
// divergence of the new format (a dropped field, a sign mix-up, a
// nil/empty confusion) fails against an independent implementation.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"abcast/internal/consensus"
	"abcast/internal/core"
	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/rbcast"
	"abcast/internal/relink"
	"abcast/internal/stack"
)

// gobFrame replicates the on-the-wire unit of the retired gob codec.
type gobFrame struct {
	From stack.ProcessID
	Env  stack.Envelope
}

var gobRegisterOnce sync.Once

// gobRegister registers every wire type with gob, exactly as the retired
// codec's Register did.
func gobRegister() {
	gobRegisterOnce.Do(func() {
		gob.Register(fd.HeartbeatMsg{})
		gob.Register(rbcast.DataMsg{})
		gob.Register(rbcast.EchoMsg{})
		gob.Register(consensus.CTEstimateMsg{})
		gob.Register(consensus.CTProposalMsg{})
		gob.Register(consensus.CTAckMsg{})
		gob.Register(consensus.MREchoMsg{})
		gob.Register(consensus.DecideMsg{})
		gob.Register(consensus.OpenMsg{})
		gob.Register(consensus.PiggyMsg{})
		gob.Register(consensus.SyncReqMsg{})
		gob.Register(core.IDSetValue{})
		gob.Register(core.MsgSetValue{})
		gob.Register(relink.SeqMsg{})
		gob.Register(relink.AckMsg{})
		gob.Register(relink.ProbeMsg{})
		gob.Register(core.FetchMsg{})
		gob.Register(core.SupplyMsg{})
		gob.Register(core.SnapOfferMsg{})
		gob.Register(core.SnapAcceptMsg{})
		gob.Register(core.SnapChunkMsg{})
		gob.Register(core.FrontierMsg{})
		gob.Register(&msg.App{})
	})
}

// gobEncode is the retired codec's EncodeEnvelope.
func gobEncode(from stack.ProcessID, env stack.Envelope) ([]byte, error) {
	gobRegister()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobFrame{From: from, Env: env}); err != nil {
		return nil, fmt.Errorf("gob encode envelope: %w", err)
	}
	return buf.Bytes(), nil
}

// gobDecode is the retired codec's DecodeEnvelope.
func gobDecode(data []byte) (stack.ProcessID, stack.Envelope, error) {
	gobRegister()
	var f gobFrame
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&f); err != nil {
		return 0, stack.Envelope{}, fmt.Errorf("gob decode envelope: %w", err)
	}
	return f.From, f.Env, nil
}

// roundTrip pushes env through one codec and returns the decoded result.
func roundTrip(t *testing.T, label string,
	enc func(stack.ProcessID, stack.Envelope) ([]byte, error),
	dec func([]byte) (stack.ProcessID, stack.Envelope, error),
	from stack.ProcessID, env stack.Envelope) stack.Envelope {
	t.Helper()
	data, err := enc(from, env)
	if err != nil {
		t.Fatalf("%s encode (%T): %v", label, env.Msg, err)
	}
	gotFrom, got, err := dec(data)
	if err != nil {
		t.Fatalf("%s decode (%T): %v", label, env.Msg, err)
	}
	if gotFrom != from {
		t.Fatalf("%s sender mangled: %d != %d", label, gotFrom, from)
	}
	return got
}

// checkEquivalent round-trips env through both codecs and requires the
// decoded results to deep-equal each other and the original.
func checkEquivalent(t *testing.T, from stack.ProcessID, env stack.Envelope) {
	t.Helper()
	viaBinary := roundTrip(t, "binary", EncodeEnvelope, DecodeEnvelope, from, env)
	viaGob := roundTrip(t, "gob", gobEncode, gobDecode, from, env)
	if !reflect.DeepEqual(viaBinary, viaGob) {
		t.Fatalf("codecs disagree for %T:\n binary: %#v\n gob:    %#v", env.Msg, viaBinary, viaGob)
	}
	if !reflect.DeepEqual(viaBinary, env) {
		t.Fatalf("binary round-trip not identity for %T:\n got:  %#v\n want: %#v", env.Msg, viaBinary, env)
	}
}

// TestDifferentialHandBuilt drives the hand-built exhaustive cases — every
// registered type, including edge shapes — through both codecs.
func TestDifferentialHandBuilt(t *testing.T) {
	for i, env := range caseEnvelopes() {
		t.Run(fmt.Sprintf("%02d_%T", i, env.Msg), func(t *testing.T) {
			checkEquivalent(t, 7, env)
		})
	}
}

// TestDifferentialRandomized drives per-type randomized generators through
// both codecs across several seeds.
func TestDifferentialRandomized(t *testing.T) {
	iterations := 2500
	if testing.Short() {
		iterations = 300
	}
	rng := rand.New(rand.NewSource(0xd1ff))
	for i := 0; i < iterations; i++ {
		env := randomEnvelope(rng, 0)
		from := stack.ProcessID(rng.Intn(64))
		checkEquivalent(t, from, env)
	}
}

// TestDifferentialPerType makes the per-type coverage explicit: each
// registered message type must be generated and proven equivalent at least
// once, so a generator rot (a type the random pool stops producing) fails
// loudly instead of silently shrinking coverage.
func TestDifferentialPerType(t *testing.T) {
	seen := map[string]bool{}
	record := func(m stack.Message) {
		seen[fmt.Sprintf("%T", m)] = true
		if p, ok := m.(consensus.PiggyMsg); ok {
			seen[fmt.Sprintf("%T", p.M)] = true
		}
	}
	rng := rand.New(rand.NewSource(0x5eed))
	for i := 0; i < 4000; i++ {
		env := randomEnvelope(rng, 0)
		checkEquivalent(t, 3, env)
		record(env.Msg)
		if s, ok := env.Msg.(relink.SeqMsg); ok {
			record(s.Env.Msg)
		}
	}
	for _, env := range caseEnvelopes() {
		record(env.Msg)
	}
	wantTypes := []stack.Message{
		fd.HeartbeatMsg{}, rbcast.DataMsg{}, rbcast.EchoMsg{},
		consensus.CTEstimateMsg{}, consensus.CTProposalMsg{}, consensus.CTAckMsg{},
		consensus.MREchoMsg{}, consensus.DecideMsg{}, consensus.OpenMsg{},
		consensus.PiggyMsg{}, consensus.SyncReqMsg{},
		relink.SeqMsg{}, relink.AckMsg{}, relink.ProbeMsg{},
		core.FetchMsg{}, core.SupplyMsg{},
		core.SnapOfferMsg{}, core.SnapAcceptMsg{}, core.SnapChunkMsg{},
		core.FrontierMsg{},
		&msg.App{},
	}
	for _, m := range wantTypes {
		if !seen[fmt.Sprintf("%T", m)] {
			t.Errorf("no differential coverage generated for %T", m)
		}
	}
}
