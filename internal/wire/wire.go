// Package wire registers every protocol message type with encoding/gob so
// envelopes can cross a real network (the TCP transport). It is the single
// place that knows the full set of wire types; adding a protocol layer with
// new message types means adding them here.
package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"abcast/internal/consensus"
	"abcast/internal/core"
	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/rbcast"
	"abcast/internal/relink"
	"abcast/internal/stack"
)

var registerOnce sync.Once

// Register registers all message and value types carried inside
// stack.Envelope. Safe to call multiple times.
func Register() {
	registerOnce.Do(func() {
		// Failure detector.
		gob.Register(fd.HeartbeatMsg{})
		// Reliable broadcast (all variants).
		gob.Register(rbcast.DataMsg{})
		gob.Register(rbcast.EchoMsg{})
		// Consensus (CT and MR, original and indirect).
		gob.Register(consensus.CTEstimateMsg{})
		gob.Register(consensus.CTProposalMsg{})
		gob.Register(consensus.CTAckMsg{})
		gob.Register(consensus.MREchoMsg{})
		gob.Register(consensus.DecideMsg{})
		gob.Register(consensus.OpenMsg{})
		gob.Register(consensus.PiggyMsg{})
		gob.Register(consensus.SyncReqMsg{})
		// Consensus values.
		gob.Register(core.IDSetValue{})
		gob.Register(core.MsgSetValue{})
		// Recovery: reliable-link framing and payload fetch.
		gob.Register(relink.SeqMsg{})
		gob.Register(relink.AckMsg{})
		gob.Register(relink.ProbeMsg{})
		gob.Register(core.FetchMsg{})
		gob.Register(core.SupplyMsg{})
		// Recovery: snapshot state transfer for deep catch-up.
		gob.Register(core.SnapOfferMsg{})
		gob.Register(core.SnapAcceptMsg{})
		gob.Register(core.SnapChunkMsg{})
		// Application payloads.
		gob.Register(&msg.App{})
	})
}

// EncodeEnvelope serializes an envelope (plus its sender) to bytes.
func EncodeEnvelope(from stack.ProcessID, env stack.Envelope) ([]byte, error) {
	Register()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(frame{From: from, Env: env}); err != nil {
		return nil, fmt.Errorf("encode envelope: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeEnvelope is the inverse of EncodeEnvelope.
func DecodeEnvelope(data []byte) (stack.ProcessID, stack.Envelope, error) {
	Register()
	var f frame
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&f); err != nil {
		return 0, stack.Envelope{}, fmt.Errorf("decode envelope: %w", err)
	}
	return f.From, f.Env, nil
}

// frame is the on-the-wire unit.
type frame struct {
	From stack.ProcessID
	Env  stack.Envelope
}
