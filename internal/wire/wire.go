// Package wire serializes envelopes for transports that cross a real
// network (internal/tcpnet). It is the single place that knows the full set
// of wire types; adding a protocol layer with new message types means
// adding a tag and a ~20-line encode/decode case here (the completeness
// test fails until both exist).
//
// The format is a hand-rolled, length-prefixed binary encoding with
// explicit field order and zero reflection — a version-tagged frame header
// (format version, sender, protocol id, instance number, type tag) followed
// by a per-type body built from the primitives of internal/wire/binary
// (unsigned and zigzag varints, length-prefixed byte slices). It replaced
// encoding/gob, whose per-envelope reflection and type-description preamble
// dominated the transport hot path; the byte layout is pinned by golden
// vectors and proven equivalent to the gob codec by a differential suite
// (both kept test-only).
//
// The decode path treats all input as adversarial: every read is
// bounds-checked, collection lengths are validated against the bytes
// actually present before allocating, nesting depth is capped, and a
// malformed frame yields an error — never a panic.
package wire

import (
	"fmt"

	"abcast/internal/stack"
	bin "abcast/internal/wire/binary"
)

// EncodeEnvelope serializes an envelope (plus its sender) to bytes: one
// allocation, sized from the message's own wire-size estimate.
func EncodeEnvelope(from stack.ProcessID, env stack.Envelope) ([]byte, error) {
	if env.Msg == nil {
		return nil, fmt.Errorf("encode envelope: %w", errNilMessage)
	}
	// WireSize models the payload bytes closely enough that growth past
	// the initial capacity is rare; the slack covers varint headers.
	buf := make([]byte, 0, env.WireSize()+16)
	buf = append(buf, Version)
	buf = bin.AppendVarint(buf, int64(from))
	buf, err := appendEnvelope(buf, env, 0)
	if err != nil {
		return nil, fmt.Errorf("encode envelope: %w", err)
	}
	return buf, nil
}

// DecodeEnvelope is the inverse of EncodeEnvelope. Decoded messages may
// alias data (payload byte slices are not copied); the caller hands over
// ownership of the buffer, as the transport does for each received frame.
func DecodeEnvelope(data []byte) (stack.ProcessID, stack.Envelope, error) {
	r := bin.NewReader(data)
	if v := r.Byte(); r.Err() == nil && v != Version {
		return 0, stack.Envelope{}, fmt.Errorf("decode envelope: %w %d", errVersion, v)
	}
	from := stack.ProcessID(r.Varint())
	env := decodeEnvelope(r, 0)
	if err := r.Done(); err != nil {
		return 0, stack.Envelope{}, fmt.Errorf("decode envelope: %w", err)
	}
	return from, env, nil
}
