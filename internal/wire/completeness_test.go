package wire

// Wire-completeness suite: a new message type added anywhere in the module
// must fail here until it gets a codec entry. The test scans the module
// source for stack.Message implementations — methods shaped like
// `WireSize() int` on a named receiver — and diffs the found set against
// registeredTypes plus a short allowlist of types that carry a WireSize
// but are not standalone wire messages.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// wireSizeAllowlist lists WireSize implementors that are deliberately NOT
// registered codec types, with the reason. Anything new showing up in the
// scan must land either in registeredTypes (with encode/decode arms,
// differential/golden/fuzz coverage) or here (with a justification).
var wireSizeAllowlist = map[string]string{
	"abcast/internal/stack.Envelope": "the frame structure itself, not a payload tag",
	"abcast/internal/msg.IDSet":      "embedded inside core.IDSetValue, never a standalone message",
}

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// scanWireSizeImpls parses every non-test .go file in the module and
// returns the import-qualified names of types declaring `WireSize() int`.
func scanWireSizeImpls(t *testing.T, root string) []string {
	t.Helper()
	found := map[string]bool{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") || name == "docs" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("parse %s: %w", path, err)
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		pkgPath := "abcast"
		if rel != "." {
			pkgPath = "abcast/" + filepath.ToSlash(rel)
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Name.Name != "WireSize" {
				continue
			}
			ft := fn.Type
			if len(ft.Params.List) != 0 || ft.Results == nil || len(ft.Results.List) != 1 {
				continue
			}
			if res, ok := ft.Results.List[0].Type.(*ast.Ident); !ok || res.Name != "int" {
				continue
			}
			recv := ft0RecvType(fn.Recv.List[0].Type)
			if recv == "" {
				continue
			}
			found[pkgPath+"."+recv] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(found))
	for name := range found {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ft0RecvType unwraps a receiver type expression to its named type.
func ft0RecvType(expr ast.Expr) string {
	if star, ok := expr.(*ast.StarExpr); ok {
		expr = star.X
	}
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// TestWireCompleteness fails when a stack.Message implementation exists in
// the module without a codec registration (or allowlist justification), and
// when a registration goes stale.
func TestWireCompleteness(t *testing.T) {
	impls := scanWireSizeImpls(t, moduleRoot(t))
	if len(impls) == 0 {
		t.Fatal("source scan found no WireSize implementations — scanner broken")
	}
	registered := map[string]bool{}
	for _, name := range registeredTypes {
		registered[name] = true
	}
	for _, name := range impls {
		if registered[name] || wireSizeAllowlist[name] != "" {
			continue
		}
		t.Errorf("%s implements stack.Message but has no codec entry: add a tag + encode/decode arms in internal/wire/codec.go, list it in registeredTypes, and extend the golden/differential cases — or allowlist it with a reason", name)
	}
	implSet := map[string]bool{}
	for _, name := range impls {
		implSet[name] = true
	}
	for _, name := range registeredTypes {
		if !implSet[name] {
			t.Errorf("registeredTypes lists %s but no such WireSize implementation exists in the source tree", name)
		}
	}
	for name := range wireSizeAllowlist {
		if !implSet[name] {
			t.Errorf("wireSizeAllowlist lists %s but no such WireSize implementation exists — remove the stale entry", name)
		}
	}
	if want := len(registeredTypes); want != 23 {
		t.Errorf("registeredTypes shrank to %d entries — codec coverage must only grow", want)
	}
}
