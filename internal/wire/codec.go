package wire

import (
	"errors"
	"fmt"
	"sort"

	"abcast/internal/consensus"
	"abcast/internal/core"
	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/rbcast"
	"abcast/internal/relink"
	"abcast/internal/stack"
	bin "abcast/internal/wire/binary"
)

// Version is the wire-format version, the first byte of every frame. Any
// change to the byte layout below — a field added, reordered or re-widened,
// a tag renumbered — must bump it and regenerate the golden vectors (see
// docs/ARCHITECTURE.md, "Wire format").
const Version = 1

// Type tags, one per concrete message type the codec covers. Tags are part
// of the frozen format: never renumber an existing tag, only append.
const (
	tagHeartbeat  byte = 1  // fd.HeartbeatMsg
	tagRBData     byte = 2  // rbcast.DataMsg
	tagRBEcho     byte = 3  // rbcast.EchoMsg
	tagCTEstimate byte = 4  // consensus.CTEstimateMsg
	tagCTProposal byte = 5  // consensus.CTProposalMsg
	tagCTAck      byte = 6  // consensus.CTAckMsg
	tagMREcho     byte = 7  // consensus.MREchoMsg
	tagDecide     byte = 8  // consensus.DecideMsg
	tagOpen       byte = 9  // consensus.OpenMsg
	tagPiggy      byte = 10 // consensus.PiggyMsg
	tagSyncReq    byte = 11 // consensus.SyncReqMsg
	tagLinkSeq    byte = 12 // relink.SeqMsg
	tagLinkAck    byte = 13 // relink.AckMsg
	tagLinkProbe  byte = 14 // relink.ProbeMsg
	tagFetch      byte = 15 // core.FetchMsg
	tagSupply     byte = 16 // core.SupplyMsg
	tagSnapOffer  byte = 17 // core.SnapOfferMsg
	tagSnapAccept byte = 18 // core.SnapAcceptMsg
	tagSnapChunk  byte = 19 // core.SnapChunkMsg
	tagApp        byte = 20 // *msg.App (application-level traffic)
	tagFrontier   byte = 21 // core.FrontierMsg
)

// Value tags for the consensus.Value interface field of consensus messages.
const (
	valNil    byte = 0 // absent value (e.g. an MREcho carrying ⊥)
	valIDSet  byte = 1 // core.IDSetValue
	valMsgSet byte = 2 // core.MsgSetValue
)

// registeredTypes lists every concrete message type the codec covers, by
// package path and name. The test suites are driven off it: completeness
// diffs it against a source scan for stack.Message implementations, and the
// differential/golden suites iterate it to prove full coverage.
var registeredTypes = []string{
	"abcast/internal/fd.HeartbeatMsg",
	"abcast/internal/rbcast.DataMsg",
	"abcast/internal/rbcast.EchoMsg",
	"abcast/internal/consensus.CTEstimateMsg",
	"abcast/internal/consensus.CTProposalMsg",
	"abcast/internal/consensus.CTAckMsg",
	"abcast/internal/consensus.MREchoMsg",
	"abcast/internal/consensus.DecideMsg",
	"abcast/internal/consensus.OpenMsg",
	"abcast/internal/consensus.PiggyMsg",
	"abcast/internal/consensus.SyncReqMsg",
	"abcast/internal/relink.SeqMsg",
	"abcast/internal/relink.AckMsg",
	"abcast/internal/relink.ProbeMsg",
	"abcast/internal/core.FetchMsg",
	"abcast/internal/core.SupplyMsg",
	"abcast/internal/core.SnapOfferMsg",
	"abcast/internal/core.SnapAcceptMsg",
	"abcast/internal/core.SnapChunkMsg",
	"abcast/internal/core.FrontierMsg",
	"abcast/internal/core.IDSetValue",
	"abcast/internal/core.MsgSetValue",
	"abcast/internal/msg.App",
}

// maxNest bounds message nesting (PiggyMsg wrapping a message, SeqMsg
// wrapping an envelope). Legitimate traffic nests at most three deep — a
// relink frame around a piggybacked algorithm message — so the cap only
// exists to stop adversarial input from driving unbounded recursion.
const maxNest = 8

var (
	errNilMessage = errors.New("wire: nil message")
	errDepth      = errors.New("wire: message nesting exceeds limit")
	errUnknownTag = errors.New("wire: unknown type tag")
	errVersion    = errors.New("wire: unsupported format version")
)

// --- encode -----------------------------------------------------------

// appendEnvelope appends proto id, instance number and the tagged message.
func appendEnvelope(b []byte, env stack.Envelope, depth int) ([]byte, error) {
	b = append(b, byte(env.Proto))
	b = bin.AppendUvarint(b, env.Inst)
	return appendMessage(b, env.Msg, depth)
}

// appendMessage appends the type tag and body of m. The type switch is the
// whole dispatch — no reflection anywhere on the encode path.
func appendMessage(b []byte, m stack.Message, depth int) ([]byte, error) {
	if m == nil {
		return nil, errNilMessage
	}
	if depth > maxNest {
		return nil, errDepth
	}
	switch v := m.(type) {
	case fd.HeartbeatMsg:
		return append(b, tagHeartbeat), nil
	case rbcast.DataMsg:
		b = append(b, tagRBData)
		return appendApp(b, v.App)
	case rbcast.EchoMsg:
		b = append(b, tagRBEcho)
		return appendApp(b, v.App)
	case consensus.CTEstimateMsg:
		b = append(b, tagCTEstimate)
		b = bin.AppendVarint(b, int64(v.R))
		b = bin.AppendVarint(b, int64(v.TS))
		return appendValue(b, v.Est)
	case consensus.CTProposalMsg:
		b = append(b, tagCTProposal)
		b = bin.AppendVarint(b, int64(v.R))
		return appendValue(b, v.Est)
	case consensus.CTAckMsg:
		b = append(b, tagCTAck)
		b = bin.AppendVarint(b, int64(v.R))
		return bin.AppendBool(b, v.Nack), nil
	case consensus.MREchoMsg:
		b = append(b, tagMREcho)
		b = bin.AppendVarint(b, int64(v.R))
		b = bin.AppendBool(b, v.Bottom)
		return appendValue(b, v.Est)
	case consensus.DecideMsg:
		b = append(b, tagDecide)
		return appendValue(b, v.Est)
	case consensus.OpenMsg:
		b = append(b, tagOpen)
		return appendUint64s(b, v.Also), nil
	case consensus.PiggyMsg:
		b = append(b, tagPiggy)
		b = appendUint64s(b, v.Opens)
		return appendMessage(b, v.M, depth+1)
	case consensus.SyncReqMsg:
		b = append(b, tagSyncReq)
		return bin.AppendUvarint(b, v.From), nil
	case relink.SeqMsg:
		b = append(b, tagLinkSeq)
		b = bin.AppendUvarint(b, v.Seq)
		b = bin.AppendUvarint(b, v.Low)
		return appendEnvelope(b, v.Env, depth+1)
	case relink.AckMsg:
		b = append(b, tagLinkAck)
		b = bin.AppendUvarint(b, v.Cum)
		return appendUint64s(b, v.Have), nil
	case relink.ProbeMsg:
		b = append(b, tagLinkProbe)
		b = bin.AppendUvarint(b, v.Max)
		return bin.AppendUvarint(b, v.Low), nil
	case core.FetchMsg:
		b = append(b, tagFetch)
		b = bin.AppendUvarint(b, uint64(len(v.IDs)))
		for _, id := range v.IDs {
			b = appendID(b, id)
		}
		return b, nil
	case core.SupplyMsg:
		b = append(b, tagSupply)
		return appendApps(b, v.Apps)
	case core.SnapOfferMsg:
		b = append(b, tagSnapOffer)
		return bin.AppendUvarint(b, v.Boundary), nil
	case core.SnapAcceptMsg:
		b = append(b, tagSnapAccept)
		return bin.AppendUvarint(b, v.Delivered), nil
	case core.SnapChunkMsg:
		b = append(b, tagSnapChunk)
		b = bin.AppendUvarint(b, v.Boundary)
		b = bin.AppendUvarint(b, v.Start)
		b = bin.AppendVarint(b, int64(v.Seq))
		b = bin.AppendVarint(b, int64(v.Total))
		b = bin.AppendBool(b, v.More)
		b = bin.AppendUvarint(b, uint64(len(v.Entries)))
		for _, en := range v.Entries {
			b = appendID(b, en.ID)
			b = bin.AppendUvarint(b, en.K)
			b = bin.AppendBool(b, en.Missing)
			b = bin.AppendBytes(b, en.Payload)
			b = appendConfig(b, en.Cfg)
		}
		return b, nil
	case core.FrontierMsg:
		b = append(b, tagFrontier)
		return bin.AppendUvarint(b, v.Frontier), nil
	case *msg.App:
		b = append(b, tagApp)
		return appendApp(b, v)
	case core.IDSetValue, core.MsgSetValue:
		// Consensus values travel inside consensus messages; a bare value
		// is never a wire message of its own.
		return nil, fmt.Errorf("wire: %T is a consensus value, not a standalone message", m)
	default:
		return nil, fmt.Errorf("wire: unregistered message type %T", m)
	}
}

// appendID appends one message identifier.
func appendID(b []byte, id msg.ID) []byte {
	b = bin.AppendVarint(b, int64(id.Sender))
	return bin.AppendUvarint(b, id.Seq)
}

// appendConfig appends a presence flag plus the two process ids of a
// membership change.
func appendConfig(b []byte, c *msg.ConfigChange) []byte {
	if c == nil {
		return bin.AppendBool(b, false)
	}
	b = bin.AppendBool(b, true)
	b = bin.AppendVarint(b, int64(c.Join))
	return bin.AppendVarint(b, int64(c.Leave))
}

// appendApp appends one application message: id, payload, optional config.
func appendApp(b []byte, a *msg.App) ([]byte, error) {
	if a == nil {
		return nil, fmt.Errorf("wire: nil *msg.App")
	}
	b = appendID(b, a.ID)
	b = bin.AppendBytes(b, a.Payload)
	return appendConfig(b, a.Config), nil
}

// appendApps appends a length-prefixed slice of application messages.
func appendApps(b []byte, apps []*msg.App) ([]byte, error) {
	b = bin.AppendUvarint(b, uint64(len(apps)))
	var err error
	for _, a := range apps {
		if b, err = appendApp(b, a); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// appendUint64s appends a length-prefixed slice of uvarints.
func appendUint64s(b []byte, vs []uint64) []byte {
	b = bin.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = bin.AppendUvarint(b, v)
	}
	return b
}

// appendValue appends a tagged consensus value (nil, identifier set, or
// message set).
func appendValue(b []byte, v consensus.Value) ([]byte, error) {
	switch val := v.(type) {
	case nil:
		return append(b, valNil), nil
	case core.IDSetValue:
		b = append(b, valIDSet)
		ids := val.Set.RawIDs()
		b = bin.AppendUvarint(b, uint64(len(ids)))
		for _, id := range ids {
			b = appendID(b, id)
		}
		return b, nil
	case core.MsgSetValue:
		b = append(b, valMsgSet)
		return appendApps(b, val.Msgs)
	default:
		return nil, fmt.Errorf("wire: unregistered consensus value type %T", v)
	}
}

// --- decode -----------------------------------------------------------

// decodeEnvelope is the inverse of appendEnvelope. On any malformed input
// the reader is left in its sticky error state and a zero envelope returns.
func decodeEnvelope(r *bin.Reader, depth int) stack.Envelope {
	var env stack.Envelope
	env.Proto = stack.ProtoID(r.Byte())
	env.Inst = r.Uvarint()
	env.Msg = decodeMessage(r, depth)
	return env
}

// decodeMessage reads the type tag and dispatches to the per-type decoder.
// Every collection length is validated against the remaining input before
// allocating (bin.Reader.Len), so hostile frames cannot over-allocate.
func decodeMessage(r *bin.Reader, depth int) stack.Message {
	if depth > maxNest {
		r.Fail(errDepth)
		return nil
	}
	switch tag := r.Byte(); tag {
	case tagHeartbeat:
		return fd.HeartbeatMsg{}
	case tagRBData:
		return rbcast.DataMsg{App: decodeApp(r)}
	case tagRBEcho:
		return rbcast.EchoMsg{App: decodeApp(r)}
	case tagCTEstimate:
		var m consensus.CTEstimateMsg
		m.R = int(r.Varint())
		m.TS = int(r.Varint())
		m.Est = decodeValue(r)
		return m
	case tagCTProposal:
		var m consensus.CTProposalMsg
		m.R = int(r.Varint())
		m.Est = decodeValue(r)
		return m
	case tagCTAck:
		var m consensus.CTAckMsg
		m.R = int(r.Varint())
		m.Nack = r.Bool()
		return m
	case tagMREcho:
		var m consensus.MREchoMsg
		m.R = int(r.Varint())
		m.Bottom = r.Bool()
		m.Est = decodeValue(r)
		return m
	case tagDecide:
		return consensus.DecideMsg{Est: decodeValue(r)}
	case tagOpen:
		return consensus.OpenMsg{Also: decodeUint64s(r)}
	case tagPiggy:
		var m consensus.PiggyMsg
		m.Opens = decodeUint64s(r)
		m.M = decodeMessage(r, depth+1)
		return m
	case tagSyncReq:
		return consensus.SyncReqMsg{From: r.Uvarint()}
	case tagLinkSeq:
		var m relink.SeqMsg
		m.Seq = r.Uvarint()
		m.Low = r.Uvarint()
		m.Env = decodeEnvelope(r, depth+1)
		return m
	case tagLinkAck:
		var m relink.AckMsg
		m.Cum = r.Uvarint()
		m.Have = decodeUint64s(r)
		return m
	case tagLinkProbe:
		var m relink.ProbeMsg
		m.Max = r.Uvarint()
		m.Low = r.Uvarint()
		return m
	case tagFetch:
		n := r.Len(2) // an id is at least two varint bytes
		var m core.FetchMsg
		if n > 0 {
			m.IDs = make([]msg.ID, n)
			for i := range m.IDs {
				m.IDs[i] = decodeID(r)
			}
		}
		return m
	case tagSupply:
		return core.SupplyMsg{Apps: decodeApps(r)}
	case tagSnapOffer:
		return core.SnapOfferMsg{Boundary: r.Uvarint()}
	case tagSnapAccept:
		return core.SnapAcceptMsg{Delivered: r.Uvarint()}
	case tagSnapChunk:
		var m core.SnapChunkMsg
		m.Boundary = r.Uvarint()
		m.Start = r.Uvarint()
		m.Seq = int(r.Varint())
		m.Total = int(r.Varint())
		m.More = r.Bool()
		// id(2) + k(1) + missing(1) + payload len(1) + cfg flag(1)
		n := r.Len(6)
		if n > 0 {
			m.Entries = make([]core.SnapEntry, n)
			for i := range m.Entries {
				e := &m.Entries[i]
				e.ID = decodeID(r)
				e.K = r.Uvarint()
				e.Missing = r.Bool()
				e.Payload = r.Bytes()
				e.Cfg = decodeConfig(r)
			}
		}
		return m
	case tagFrontier:
		return core.FrontierMsg{Frontier: r.Uvarint()}
	case tagApp:
		return decodeApp(r)
	default:
		r.Fail(fmt.Errorf("%w %d", errUnknownTag, tag))
		return nil
	}
}

// decodeID reads one message identifier.
func decodeID(r *bin.Reader) msg.ID {
	var id msg.ID
	id.Sender = stack.ProcessID(r.Varint())
	id.Seq = r.Uvarint()
	return id
}

// decodeConfig reads an optional membership change.
func decodeConfig(r *bin.Reader) *msg.ConfigChange {
	if !r.Bool() || r.Err() != nil {
		return nil
	}
	var c msg.ConfigChange
	c.Join = stack.ProcessID(r.Varint())
	c.Leave = stack.ProcessID(r.Varint())
	return &c
}

// decodeApp reads one application message. The payload aliases the frame
// buffer (zero copy); DecodeEnvelope documents the ownership rule.
func decodeApp(r *bin.Reader) *msg.App {
	var a msg.App
	a.ID = decodeID(r)
	a.Payload = r.Bytes()
	a.Config = decodeConfig(r)
	if r.Err() != nil {
		return nil
	}
	return &a
}

// decodeApps reads a length-prefixed slice of application messages.
func decodeApps(r *bin.Reader) []*msg.App {
	// id(2) + payload len(1) + cfg flag(1) per element, minimum.
	n := r.Len(4)
	if r.Err() != nil || n == 0 {
		return nil
	}
	apps := make([]*msg.App, n)
	for i := range apps {
		if apps[i] = decodeApp(r); apps[i] == nil {
			return nil
		}
	}
	return apps
}

// decodeUint64s reads a length-prefixed uvarint slice.
func decodeUint64s(r *bin.Reader) []uint64 {
	n := r.Len(1)
	if r.Err() != nil || n == 0 {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = r.Uvarint()
	}
	return vs
}

// decodeValue reads a tagged consensus value. Hostile input claiming an
// unsorted identifier or message set is re-normalized, preserving the
// invariant every consumer of these types relies on.
func decodeValue(r *bin.Reader) consensus.Value {
	switch tag := r.Byte(); tag {
	case valNil:
		return nil
	case valIDSet:
		n := r.Len(2)
		if r.Err() != nil {
			return nil
		}
		ids := make([]msg.ID, n)
		for i := range ids {
			ids[i] = decodeID(r)
		}
		return core.IDSetValue{Set: msg.IDSetFromSorted(ids)}
	case valMsgSet:
		apps := decodeApps(r)
		if sort.SliceIsSorted(apps, func(i, j int) bool { return apps[i].ID.Less(apps[j].ID) }) {
			return core.MsgSetValue{Msgs: apps}
		}
		return core.NewMsgSetValue(apps)
	default:
		r.Fail(fmt.Errorf("%w (value) %d", errUnknownTag, tag))
		return nil
	}
}
