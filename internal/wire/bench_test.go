package wire

// Microbenchmarks for the wire codec: encode and decode per representative
// message type, binary against the retired gob baseline (kept test-only in
// differential_test.go). The rbcast data message and the consensus piggy
// message are the two frame types that dominate steady-state traffic, so
// those are the ones the allocation budget is judged on; the others pin the
// breadth of the comparison.
//
// Numbers (and the procedure to refresh them) are recorded in
// docs/ARCHITECTURE.md's wire-format section.

import (
	"testing"

	"abcast/internal/consensus"
	"abcast/internal/core"
	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/rbcast"
	"abcast/internal/relink"
	"abcast/internal/stack"
)

// benchCase is one representative frame for the hot-path comparison.
type benchCase struct {
	name string
	env  stack.Envelope
}

// benchCases returns realistic steady-state frames: payload sizes and set
// cardinalities mirror what the figure benchmarks generate.
func benchCases() []benchCase {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	app := &msg.App{ID: msg.ID{Sender: 2, Seq: 40}, Payload: payload}
	ids := make([]msg.ID, 8)
	for i := range ids {
		ids[i] = msg.ID{Sender: stack.ProcessID(i%3 + 1), Seq: uint64(100 + i)}
	}
	est := core.IDSetValue{Set: msg.NewIDSet(ids...)}
	return []benchCase{
		{"rbcast.DataMsg", stack.Envelope{Proto: stack.ProtoRB, Msg: rbcast.DataMsg{App: app}}},
		{"consensus.PiggyMsg", stack.Envelope{Proto: stack.ProtoCons, Inst: 41, Msg: consensus.PiggyMsg{
			Opens: []uint64{42},
			M:     consensus.CTEstimateMsg{R: 0, TS: -1, Est: est},
		}}},
		{"consensus.DecideMsg", stack.Envelope{Proto: stack.ProtoCons, Inst: 41, Msg: consensus.DecideMsg{Est: est}}},
		{"relink.SeqMsg", stack.Envelope{Proto: stack.ProtoLink, Msg: relink.SeqMsg{Seq: 77, Low: 12,
			Env: stack.Envelope{Proto: stack.ProtoRB, Msg: rbcast.DataMsg{App: app}}}}},
		{"relink.AckMsg", stack.Envelope{Proto: stack.ProtoLink, Msg: relink.AckMsg{Cum: 70, Have: []uint64{72, 75}}}},
		{"fd.HeartbeatMsg", stack.Envelope{Proto: stack.ProtoFD, Msg: fd.HeartbeatMsg{}}},
		{"core.SnapChunkMsg", stack.Envelope{Proto: stack.ProtoSnapshot, Msg: core.SnapChunkMsg{
			Boundary: 40, Start: 8, Seq: 1, Total: 2, More: true,
			Entries: []core.SnapEntry{
				{ID: msg.ID{Sender: 1, Seq: 2}, K: 3, Payload: payload[:64]},
				{ID: msg.ID{Sender: 2, Seq: 1}, K: 4, Missing: true},
			}}}},
	}
}

var (
	benchBytes []byte
	benchEnv   stack.Envelope
)

func BenchmarkEncode(b *testing.B) {
	for _, c := range benchCases() {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, err := EncodeEnvelope(3, c.env)
				if err != nil {
					b.Fatal(err)
				}
				benchBytes = data
			}
		})
	}
}

func BenchmarkDecode(b *testing.B) {
	for _, c := range benchCases() {
		data, err := EncodeEnvelope(3, c.env)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, env, err := DecodeEnvelope(data)
				if err != nil {
					b.Fatal(err)
				}
				benchEnv = env
			}
		})
	}
}

// The gob baseline: what every frame used to cost. A fresh encoder/decoder
// per frame is not a strawman — gob streams are stateful (type descriptors
// travel once per stream), so datagram framing forced exactly this usage in
// the retired codec.

func BenchmarkGobEncode(b *testing.B) {
	for _, c := range benchCases() {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				data, err := gobEncode(3, c.env)
				if err != nil {
					b.Fatal(err)
				}
				benchBytes = data
			}
		})
	}
}

func BenchmarkGobDecode(b *testing.B) {
	for _, c := range benchCases() {
		data, err := gobEncode(3, c.env)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, env, err := gobDecode(data)
				if err != nil {
					b.Fatal(err)
				}
				benchEnv = env
			}
		})
	}
}
