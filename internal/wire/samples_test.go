package wire

// Shared sample and generator infrastructure for the codec test suites:
// hand-built envelopes covering every registered wire type and its edge
// cases (differential + golden + completeness), and per-type randomized
// generators (differential property runs + fuzz seed material).

import (
	"math"
	"math/rand"

	"abcast/internal/consensus"
	"abcast/internal/core"
	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/rbcast"
	"abcast/internal/relink"
	"abcast/internal/stack"
)

// caseEnvelopes returns hand-built envelopes covering every registered
// wire type: zero values, nil-vs-present optionals, empty and large
// collections, negative ints, and legal nesting shapes.
func caseEnvelopes() []stack.Envelope {
	app := &msg.App{ID: msg.ID{Sender: 2, Seq: 5}, Payload: []byte("payload")}
	appNilPayload := &msg.App{ID: msg.ID{Sender: 1, Seq: 1}}
	appJoin := &msg.App{ID: msg.ID{Sender: 3, Seq: 9}, Config: &msg.ConfigChange{Join: 4}}
	appLeave := &msg.App{ID: msg.ID{Sender: 1, Seq: 2}, Payload: []byte{0}, Config: &msg.ConfigChange{Leave: 3}}
	appZeroCfg := &msg.App{ID: msg.ID{Sender: 6, Seq: 0}, Config: &msg.ConfigChange{}}
	idv := core.IDSetValue{Set: msg.NewIDSet(
		msg.ID{Sender: 1, Seq: 1}, msg.ID{Sender: 2, Seq: 2}, msg.ID{Sender: 2, Seq: math.MaxUint64})}
	idvEmpty := core.IDSetValue{}
	msgv := core.NewMsgSetValue([]*msg.App{app, appJoin})
	msgvEmpty := core.MsgSetValue{}

	return []stack.Envelope{
		// Failure detector.
		{Proto: stack.ProtoFD, Msg: fd.HeartbeatMsg{}},
		// Reliable broadcast.
		{Proto: stack.ProtoRB, Msg: rbcast.DataMsg{App: app}},
		{Proto: stack.ProtoRB, Msg: rbcast.DataMsg{App: appNilPayload}},
		{Proto: stack.ProtoRB, Msg: rbcast.DataMsg{App: appJoin}},
		{Proto: stack.ProtoRB, Msg: rbcast.DataMsg{App: appZeroCfg}},
		{Proto: stack.ProtoURB, Msg: rbcast.EchoMsg{App: appLeave}},
		// Consensus, all seven algorithm messages.
		{Proto: stack.ProtoCons, Inst: 3, Msg: consensus.CTEstimateMsg{R: 2, TS: 1, Est: idv}},
		{Proto: stack.ProtoCons, Msg: consensus.CTEstimateMsg{}},
		{Proto: stack.ProtoCons, Inst: 1, Msg: consensus.CTEstimateMsg{R: -1, TS: -7, Est: idvEmpty}},
		{Proto: stack.ProtoCons, Inst: 3, Msg: consensus.CTProposalMsg{R: 2, Est: idv}},
		{Proto: stack.ProtoCons, Inst: 9, Msg: consensus.CTProposalMsg{R: 1 << 30, Est: msgv}},
		{Proto: stack.ProtoCons, Inst: 3, Msg: consensus.CTAckMsg{R: 2, Nack: true}},
		{Proto: stack.ProtoCons, Inst: 3, Msg: consensus.CTAckMsg{}},
		{Proto: stack.ProtoCons, Inst: 3, Msg: consensus.MREchoMsg{R: 1, Est: idv}},
		{Proto: stack.ProtoCons, Inst: 3, Msg: consensus.MREchoMsg{R: 1, Bottom: true}},
		{Proto: stack.ProtoCons, Inst: 4, Msg: consensus.DecideMsg{Est: msgv}},
		{Proto: stack.ProtoCons, Inst: 4, Msg: consensus.DecideMsg{Est: msgvEmpty}},
		{Proto: stack.ProtoCons, Inst: 4, Msg: consensus.DecideMsg{}},
		{Proto: stack.ProtoCons, Inst: 7, Msg: consensus.OpenMsg{}},
		{Proto: stack.ProtoCons, Inst: 7, Msg: consensus.OpenMsg{Also: []uint64{8, 9, math.MaxUint64}}},
		{Proto: stack.ProtoCons, Inst: 5, Msg: consensus.PiggyMsg{
			Opens: []uint64{6, 7},
			M:     consensus.CTEstimateMsg{R: 1, Est: idv},
		}},
		{Proto: stack.ProtoCons, Inst: 5, Msg: consensus.PiggyMsg{
			M: consensus.OpenMsg{Also: []uint64{12}},
		}},
		{Proto: stack.ProtoCons, Msg: consensus.SyncReqMsg{From: 42}},
		// Recovery: reliable-link framing (nested envelope, incl. a
		// piggybacked consensus message three levels deep).
		{Proto: stack.ProtoLink, Msg: relink.SeqMsg{Seq: 10, Low: 3,
			Env: stack.Envelope{Proto: stack.ProtoRB, Msg: rbcast.DataMsg{App: app}}}},
		{Proto: stack.ProtoLink, Msg: relink.SeqMsg{Seq: 1,
			Env: stack.Envelope{Proto: stack.ProtoCons, Inst: 2, Msg: consensus.PiggyMsg{
				Opens: []uint64{3}, M: consensus.CTAckMsg{R: 4},
			}}}},
		{Proto: stack.ProtoLink, Msg: relink.AckMsg{}},
		{Proto: stack.ProtoLink, Msg: relink.AckMsg{Cum: 17, Have: []uint64{19, 23}}},
		{Proto: stack.ProtoLink, Msg: relink.ProbeMsg{Max: 90, Low: 12}},
		// Recovery: payload fetch.
		{Proto: stack.ProtoSync, Msg: core.FetchMsg{}},
		{Proto: stack.ProtoSync, Msg: core.FetchMsg{IDs: []msg.ID{{Sender: 1, Seq: 4}, {Sender: 5, Seq: 1}}}},
		{Proto: stack.ProtoSync, Msg: core.SupplyMsg{}},
		{Proto: stack.ProtoSync, Msg: core.SupplyMsg{Apps: []*msg.App{app, appLeave}}},
		// Recovery: checkpoint frontier gossip.
		{Proto: stack.ProtoSync, Msg: core.FrontierMsg{}},
		{Proto: stack.ProtoSync, Msg: core.FrontierMsg{Frontier: math.MaxUint64}},
		// Recovery: snapshot state transfer.
		{Proto: stack.ProtoSnapshot, Msg: core.SnapOfferMsg{Boundary: 99}},
		{Proto: stack.ProtoSnapshot, Msg: core.SnapAcceptMsg{Delivered: 12}},
		{Proto: stack.ProtoSnapshot, Msg: core.SnapChunkMsg{Boundary: 40, Start: 8, Seq: 1, Total: 3}},
		{Proto: stack.ProtoSnapshot, Msg: core.SnapChunkMsg{
			Boundary: 40, Start: 8, Seq: 2, Total: 3, More: true,
			Entries: []core.SnapEntry{
				{ID: msg.ID{Sender: 1, Seq: 1}, K: 3, Payload: []byte("state")},
				{ID: msg.ID{Sender: 2, Seq: 7}, K: 4, Missing: true},
				{ID: msg.ID{Sender: 3, Seq: 2}, K: 5, Cfg: &msg.ConfigChange{Join: 4, Leave: 2}},
			}}},
		// Application traffic.
		{Proto: stack.ProtoApp, Msg: app},
		{Proto: stack.ProtoApp, Inst: 11, Msg: appJoin},
	}
}

// --- randomized generators -------------------------------------------

func randomID(rng *rand.Rand) msg.ID {
	return msg.ID{
		Sender: stack.ProcessID(rng.Intn(64)),
		Seq:    rng.Uint64() >> uint(rng.Intn(64)),
	}
}

func randomConfig(rng *rand.Rand) *msg.ConfigChange {
	switch rng.Intn(4) {
	case 0:
		return nil
	case 1:
		return &msg.ConfigChange{Join: stack.ProcessID(rng.Intn(8) + 1)}
	case 2:
		return &msg.ConfigChange{Leave: stack.ProcessID(rng.Intn(8) + 1)}
	default:
		return &msg.ConfigChange{
			Join:  stack.ProcessID(rng.Intn(8) + 1),
			Leave: stack.ProcessID(rng.Intn(8) + 1),
		}
	}
}

func randomApp(rng *rand.Rand) *msg.App {
	var payload []byte
	if n := rng.Intn(64); n > 0 {
		payload = make([]byte, n)
		rng.Read(payload)
	}
	return &msg.App{ID: randomID(rng), Payload: payload, Config: randomConfig(rng)}
}

func randomApps(rng *rand.Rand, max int) []*msg.App {
	n := rng.Intn(max + 1)
	if n == 0 {
		return nil
	}
	out := make([]*msg.App, n)
	for i := range out {
		out[i] = randomApp(rng)
	}
	return out
}

func randomIDSet(rng *rand.Rand) msg.IDSet {
	ids := make([]msg.ID, rng.Intn(12))
	for i := range ids {
		ids[i] = randomID(rng)
	}
	return msg.NewIDSet(ids...)
}

func randomValue(rng *rand.Rand) consensus.Value {
	switch rng.Intn(3) {
	case 0:
		return nil
	case 1:
		return core.IDSetValue{Set: randomIDSet(rng)}
	default:
		// Keep empties canonical (nil, not zero-length): both codecs decode
		// an empty set to the nil form, so originals must match it for the
		// decoded-vs-original comparison to stay strict.
		if apps := randomApps(rng, 6); apps != nil {
			return core.NewMsgSetValue(apps)
		}
		return core.MsgSetValue{}
	}
}

func randomUint64s(rng *rand.Rand, max int) []uint64 {
	n := rng.Intn(max + 1)
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64() >> uint(rng.Intn(64))
	}
	return out
}

// numMessageKinds is the number of concrete message types messageOfKind can
// produce; kinds 19 and 20 are the nesting types (Piggy, Seq).
const numMessageKinds = 21

// randomMessage draws one random message instance. depth bounds nesting so
// Piggy/Seq recursion terminates.
func randomMessage(rng *rand.Rand, depth int) stack.Message {
	n := numMessageKinds
	if depth >= 2 {
		n = 19 // exclude the two nesting types deeper down
	}
	return messageOfKind(rng, rng.Intn(n), depth)
}

// messageOfKind draws a random instance of one specific message type, so
// the per-type fuzz target can steer generation by kind.
func messageOfKind(rng *rand.Rand, kind, depth int) stack.Message {
	switch kind {
	case 0:
		return fd.HeartbeatMsg{}
	case 1:
		return rbcast.DataMsg{App: randomApp(rng)}
	case 2:
		return rbcast.EchoMsg{App: randomApp(rng)}
	case 3:
		return consensus.CTEstimateMsg{R: rng.Intn(100) - 1, TS: rng.Intn(100) - 1, Est: randomValue(rng)}
	case 4:
		return consensus.CTProposalMsg{R: rng.Intn(100), Est: randomValue(rng)}
	case 5:
		return consensus.CTAckMsg{R: rng.Intn(100), Nack: rng.Intn(2) == 0}
	case 6:
		return consensus.MREchoMsg{R: rng.Intn(100), Bottom: rng.Intn(2) == 0, Est: randomValue(rng)}
	case 7:
		return consensus.DecideMsg{Est: randomValue(rng)}
	case 8:
		return consensus.OpenMsg{Also: randomUint64s(rng, 8)}
	case 9:
		return consensus.SyncReqMsg{From: rng.Uint64() >> uint(rng.Intn(64))}
	case 10:
		return relink.AckMsg{Cum: rng.Uint64() >> uint(rng.Intn(64)), Have: randomUint64s(rng, 8)}
	case 11:
		return relink.ProbeMsg{Max: rng.Uint64() >> uint(rng.Intn(64)), Low: rng.Uint64() >> uint(rng.Intn(64))}
	case 12:
		var ids []msg.ID
		if n := rng.Intn(8); n > 0 {
			ids = make([]msg.ID, n)
			for i := range ids {
				ids[i] = randomID(rng)
			}
		}
		return core.FetchMsg{IDs: ids}
	case 13:
		return core.SupplyMsg{Apps: randomApps(rng, 6)}
	case 14:
		return core.SnapOfferMsg{Boundary: rng.Uint64() >> uint(rng.Intn(64))}
	case 15:
		return core.SnapAcceptMsg{Delivered: rng.Uint64() >> uint(rng.Intn(64))}
	case 16:
		var entries []core.SnapEntry
		if n := rng.Intn(5); n > 0 {
			entries = make([]core.SnapEntry, n)
			for i := range entries {
				var payload []byte
				if m := rng.Intn(16); m > 0 {
					payload = make([]byte, m)
					rng.Read(payload)
				}
				entries[i] = core.SnapEntry{
					ID:      randomID(rng),
					K:       rng.Uint64() >> uint(rng.Intn(64)),
					Missing: rng.Intn(2) == 0,
					Payload: payload,
					Cfg:     randomConfig(rng),
				}
			}
		}
		return core.SnapChunkMsg{
			Boundary: rng.Uint64() >> uint(rng.Intn(64)),
			Start:    rng.Uint64() >> uint(rng.Intn(64)),
			Seq:      rng.Intn(10),
			Total:    rng.Intn(10),
			More:     rng.Intn(2) == 0,
			Entries:  entries,
		}
	case 17:
		return randomApp(rng)
	case 18:
		return core.FrontierMsg{Frontier: rng.Uint64() >> uint(rng.Intn(64))}
	case 19:
		return consensus.PiggyMsg{
			Opens: randomUint64s(rng, 6),
			M:     randomMessage(rng, depth+1),
		}
	default:
		return relink.SeqMsg{
			Seq: rng.Uint64() >> uint(rng.Intn(64)),
			Low: rng.Uint64() >> uint(rng.Intn(64)),
			Env: randomEnvelope(rng, depth+1),
		}
	}
}

// randomEnvelope draws one random envelope.
func randomEnvelope(rng *rand.Rand, depth int) stack.Envelope {
	return stack.Envelope{
		Proto: stack.ProtoID(rng.Intn(10)),
		Inst:  rng.Uint64() >> uint(rng.Intn(64)),
		Msg:   randomMessage(rng, depth),
	}
}
