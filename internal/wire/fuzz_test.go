package wire

// Fuzz targets for the wire codec. The decoder treats every input as
// adversarial, so the contract under fuzzing is strict: arbitrary bytes
// either fail with an error or decode to a value that re-encodes and
// re-decodes to itself — never a panic, and never an output larger than
// the input (the no-amplification guard that backs the allocation caps).
//
// Seed corpora live under testdata/fuzz/<Target>/ in the standard go-fuzz
// corpus format; CI runs each target for a short -fuzztime as a smoke.

import (
	"math/rand"
	"reflect"
	"testing"

	"abcast/internal/stack"
)

// FuzzDecodeEnvelope feeds arbitrary bytes to the frame decoder.
func FuzzDecodeEnvelope(f *testing.F) {
	for _, env := range caseEnvelopes() {
		data, err := EncodeEnvelope(3, env)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version + 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		from, env, err := DecodeEnvelope(data)
		if err != nil {
			return // rejected input: the only other acceptable outcome
		}
		reenc, err := EncodeEnvelope(from, env)
		if err != nil {
			t.Fatalf("decoded value does not re-encode: %v (%#v)", err, env)
		}
		// Canonical re-encoding can only shrink relative to the accepted
		// input (redundant varints, re-normalized sets); growth would mean
		// small frames hydrate into large values — an allocation vector.
		if len(reenc) > len(data) {
			t.Fatalf("re-encode amplifies input: %d -> %d bytes", len(data), len(reenc))
		}
		from2, env2, err := DecodeEnvelope(reenc)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if from2 != from || !reflect.DeepEqual(env2, env) {
			t.Fatalf("round-trip not stable:\n first:  %#v\n second: %#v", env, env2)
		}
	})
}

// FuzzRoundTrip generates a random instance of a chosen message type and
// requires encode/decode to be the identity — per-type roundtrip fuzzing
// where the fuzzer steers the type and the generator seed.
func FuzzRoundTrip(f *testing.F) {
	for kind := 0; kind < numMessageKinds; kind++ {
		f.Add(uint8(kind), int64(kind)*977+11, uint32(kind))
	}
	f.Fuzz(func(t *testing.T, kind uint8, seed int64, from uint32) {
		rng := rand.New(rand.NewSource(seed))
		env := stack.Envelope{
			Proto: stack.ProtoID(rng.Intn(10)),
			Inst:  rng.Uint64() >> uint(rng.Intn(64)),
			Msg:   messageOfKind(rng, int(kind)%numMessageKinds, 0),
		}
		sender := stack.ProcessID(from)
		data, err := EncodeEnvelope(sender, env)
		if err != nil {
			t.Fatalf("encode %T: %v", env.Msg, err)
		}
		gotFrom, got, err := DecodeEnvelope(data)
		if err != nil {
			t.Fatalf("decode %T: %v", env.Msg, err)
		}
		if gotFrom != sender || !reflect.DeepEqual(got, env) {
			t.Fatalf("round-trip mismatch for %T:\n got:  %#v\n want: %#v", env.Msg, got, env)
		}
	})
}
