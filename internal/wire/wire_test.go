package wire

import (
	"testing"

	"abcast/internal/consensus"
	"abcast/internal/core"
	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/rbcast"
	"abcast/internal/stack"
)

// all wire message kinds, one instance each.
func sampleEnvelopes() []stack.Envelope {
	app := &msg.App{ID: msg.ID{Sender: 2, Seq: 5}, Payload: []byte("payload")}
	idv := core.IDSetValue{Set: msg.NewIDSet(
		msg.ID{Sender: 1, Seq: 1}, msg.ID{Sender: 2, Seq: 2})}
	msgv := core.NewMsgSetValue([]*msg.App{app})
	return []stack.Envelope{
		{Proto: stack.ProtoFD, Msg: fd.HeartbeatMsg{}},
		{Proto: stack.ProtoRB, Msg: rbcast.DataMsg{App: app}},
		{Proto: stack.ProtoURB, Msg: rbcast.EchoMsg{App: app}},
		{Proto: stack.ProtoCons, Inst: 3, Msg: consensus.CTEstimateMsg{R: 2, TS: 1, Est: idv}},
		{Proto: stack.ProtoCons, Inst: 3, Msg: consensus.CTProposalMsg{R: 2, Est: idv}},
		{Proto: stack.ProtoCons, Inst: 3, Msg: consensus.CTAckMsg{R: 2, Nack: true}},
		{Proto: stack.ProtoCons, Inst: 3, Msg: consensus.MREchoMsg{R: 1, Est: idv}},
		{Proto: stack.ProtoCons, Inst: 3, Msg: consensus.MREchoMsg{R: 1, Bottom: true}},
		{Proto: stack.ProtoCons, Inst: 3, Msg: consensus.DecideMsg{Est: msgv}},
	}
}

func TestEveryWireTypeRoundTrips(t *testing.T) {
	for i, env := range sampleEnvelopes() {
		data, err := EncodeEnvelope(7, env)
		if err != nil {
			t.Fatalf("encode %d (%T): %v", i, env.Msg, err)
		}
		from, got, err := DecodeEnvelope(data)
		if err != nil {
			t.Fatalf("decode %d (%T): %v", i, env.Msg, err)
		}
		if from != 7 {
			t.Fatalf("sender mangled: %d", from)
		}
		if got.Proto != env.Proto || got.Inst != env.Inst {
			t.Fatalf("header mangled: %+v vs %+v", got, env)
		}
		if got.Msg.WireSize() != env.Msg.WireSize() {
			t.Fatalf("%T: wire size %d != %d", env.Msg, got.Msg.WireSize(), env.Msg.WireSize())
		}
	}
}

func TestMsgSetValueSurvivesWire(t *testing.T) {
	app := &msg.App{ID: msg.ID{Sender: 3, Seq: 8}, Payload: []byte("abcdef")}
	env := stack.Envelope{
		Proto: stack.ProtoCons,
		Msg:   consensus.DecideMsg{Est: core.NewMsgSetValue([]*msg.App{app})},
	}
	data, err := EncodeEnvelope(1, env)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := DecodeEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	dec := got.Msg.(consensus.DecideMsg).Est.(core.MsgSetValue)
	if len(dec.Msgs) != 1 || string(dec.Msgs[0].Payload) != "abcdef" {
		t.Fatalf("message set mangled: %+v", dec)
	}
	if dec.Msgs[0].ID != app.ID {
		t.Fatalf("id mangled: %v", dec.Msgs[0].ID)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, _, err := DecodeEnvelope([]byte("not a gob stream")); err == nil {
		t.Fatal("garbage decoded successfully")
	}
	if _, _, err := DecodeEnvelope(nil); err == nil {
		t.Fatal("empty input decoded successfully")
	}
}

func TestValueKeysSurviveWire(t *testing.T) {
	// MR compares estimates by Key; a round trip must preserve it.
	idv := core.IDSetValue{Set: msg.NewIDSet(
		msg.ID{Sender: 9, Seq: 1}, msg.ID{Sender: 1, Seq: 9})}
	env := stack.Envelope{Proto: stack.ProtoCons, Msg: consensus.MREchoMsg{R: 1, Est: idv}}
	data, err := EncodeEnvelope(2, env)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := DecodeEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	dec := got.Msg.(consensus.MREchoMsg).Est.(core.IDSetValue)
	if dec.Key() != idv.Key() {
		t.Fatal("value key changed across the wire")
	}
}
