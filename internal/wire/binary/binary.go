// Package binary holds the shared low-level primitives of the hand-rolled
// wire codec: append-style writers and a sticky-error Reader for unsigned
// and zigzag varints, booleans, raw bytes and length-prefixed byte slices.
//
// The writers are plain append functions so an encoder builds one []byte
// with no intermediate buffers and no reflection; the Reader treats its
// input as adversarial — every read is bounds-checked, varints are capped
// at 64 bits, and collection lengths are validated against the bytes that
// remain, so a hostile length prefix can never drive an allocation larger
// than the input itself. All errors are sticky: after the first failure
// every subsequent read returns zero values, so per-type decoders can run
// straight-line and check Err once at the end.
package binary

import (
	"errors"
	"fmt"
)

// ErrTruncated reports input that ended in the middle of a value.
var ErrTruncated = errors.New("wire/binary: truncated input")

// ErrOverflow reports a varint longer than 64 bits.
var ErrOverflow = errors.New("wire/binary: varint overflows 64 bits")

// ErrLength reports a collection length prefix that cannot fit in the
// remaining input.
var ErrLength = errors.New("wire/binary: length prefix exceeds remaining input")

// ErrTrailing reports leftover bytes after a complete decode.
var ErrTrailing = errors.New("wire/binary: trailing bytes after value")

// AppendUvarint appends v in LEB128 (7 bits per byte, high bit = more).
func AppendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// AppendVarint appends v zigzag-encoded, so small magnitudes of either sign
// stay short.
func AppendVarint(b []byte, v int64) []byte {
	return AppendUvarint(b, uint64(v)<<1^uint64(v>>63))
}

// AppendBool appends one byte: 1 for true, 0 for false.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendBytes appends a length-prefixed byte slice (uvarint length + raw
// bytes). A nil slice encodes exactly like an empty one.
func AppendBytes(b, p []byte) []byte {
	b = AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Reader consumes a byte slice with sticky-error semantics.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps data for decoding. The Reader may return subslices of
// data (see Bytes); the caller must not reuse the buffer while decoded
// values are live.
func NewReader(data []byte) *Reader { return &Reader{b: data} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Fail forces the reader into the error state (used by decoders that spot
// semantically invalid values, e.g. an unknown type tag).
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Done errors unless the input was consumed exactly.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d of %d bytes unread", ErrTrailing, len(r.b)-r.off, len(r.b))
	}
	return nil
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.err = ErrTruncated
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bool reads one byte and rejects anything but 0 or 1 (keeping the
// encoding canonical, which the golden vectors pin).
func (r *Reader) Bool() bool {
	switch r.Byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail(fmt.Errorf("wire/binary: invalid bool byte"))
		return false
	}
}

// Uvarint reads a LEB128 unsigned varint, rejecting encodings past 64 bits.
func (r *Reader) Uvarint() uint64 {
	var v uint64
	for shift := uint(0); ; shift += 7 {
		if shift >= 64 {
			r.Fail(ErrOverflow)
			return 0
		}
		c := r.Byte()
		if r.err != nil {
			return 0
		}
		if shift == 63 && c > 1 {
			r.Fail(ErrOverflow)
			return 0
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v
		}
	}
}

// Varint reads a zigzag-encoded signed varint.
func (r *Reader) Varint() int64 {
	u := r.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Len reads a collection length and validates it against the remaining
// input, assuming each element occupies at least elemMin (≥ 1) bytes. This
// is the allocation guard: whatever length an attacker claims, the decoder
// never allocates more elements than the input could possibly carry.
func (r *Reader) Len(elemMin int) int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if n > uint64(r.Remaining()/elemMin) {
		r.Fail(ErrLength)
		return 0
	}
	return int(n)
}

// Bytes reads a length-prefixed byte slice. The result aliases the input
// buffer (zero copy); it is nil for a zero length, matching the canonical
// form of the encoder's nil/empty collapse.
func (r *Reader) Bytes() []byte {
	n := r.Len(1)
	if r.err != nil || n == 0 {
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

// String reads a length-prefixed string (one copy, as Go strings are
// immutable).
func (r *Reader) String() string {
	return string(r.Bytes())
}
