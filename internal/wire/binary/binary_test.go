package binary

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 0x7f, 0x80, 0x3fff, 0x4000, 1<<32 - 1, 1 << 32, math.MaxUint64}
	for _, v := range cases {
		b := AppendUvarint(nil, v)
		r := NewReader(b)
		if got := r.Uvarint(); got != v || r.Err() != nil {
			t.Fatalf("uvarint %d: got %d err %v", v, got, r.Err())
		}
		if err := r.Done(); err != nil {
			t.Fatalf("uvarint %d: trailing: %v", v, err)
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 63, -64, 64, -65, math.MaxInt64, math.MinInt64}
	for _, v := range cases {
		b := AppendVarint(nil, v)
		r := NewReader(b)
		if got := r.Varint(); got != v || r.Err() != nil {
			t.Fatalf("varint %d: got %d err %v", v, got, r.Err())
		}
	}
	// Small magnitudes of either sign must stay short (the zigzag point).
	if n := len(AppendVarint(nil, -1)); n != 1 {
		t.Fatalf("zigzag -1 took %d bytes", n)
	}
}

func TestUvarintOverflow(t *testing.T) {
	// 10 continuation bytes push past 64 bits.
	overlong := bytes.Repeat([]byte{0xff}, 10)
	r := NewReader(append(overlong, 0x01))
	r.Uvarint()
	if !errors.Is(r.Err(), ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", r.Err())
	}
	// Exactly representable max stays legal.
	r = NewReader(AppendUvarint(nil, math.MaxUint64))
	if got := r.Uvarint(); got != math.MaxUint64 || r.Err() != nil {
		t.Fatalf("max uint64: got %d err %v", got, r.Err())
	}
}

func TestTruncation(t *testing.T) {
	full := AppendBytes(AppendUvarint(nil, 300), []byte("payload"))
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.Uvarint()
		r.Bytes()
		if cut < len(full) && r.Err() == nil {
			if err := r.Done(); err == nil {
				t.Fatalf("cut at %d decoded cleanly", cut)
			}
		}
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader(nil)
	if r.Byte() != 0 || r.Err() == nil {
		t.Fatal("read past end must error")
	}
	first := r.Err()
	r.Uvarint()
	r.Bytes()
	r.Bool()
	if r.Err() != first {
		t.Fatalf("error not sticky: %v then %v", first, r.Err())
	}
}

func TestLenRejectsHostileCount(t *testing.T) {
	// Claims 2^40 elements in a 3-byte input: must fail before allocating.
	b := AppendUvarint(nil, 1<<40)
	r := NewReader(b)
	if n := r.Len(1); n != 0 || !errors.Is(r.Err(), ErrLength) {
		t.Fatalf("hostile len accepted: n=%d err=%v", n, r.Err())
	}
	// elemMin scales the guard: 5 claimed 8-byte elements need 40 bytes.
	b = AppendUvarint(nil, 5)
	b = append(b, make([]byte, 16)...)
	r = NewReader(b)
	if n := r.Len(8); n != 0 || !errors.Is(r.Err(), ErrLength) {
		t.Fatalf("under-backed len accepted: n=%d err=%v", n, r.Err())
	}
}

func TestBytesNilEmptyCollapse(t *testing.T) {
	if got := AppendBytes(nil, nil); !bytes.Equal(got, []byte{0}) {
		t.Fatalf("nil slice encoding: %v", got)
	}
	if got := AppendBytes(nil, []byte{}); !bytes.Equal(got, []byte{0}) {
		t.Fatalf("empty slice encoding: %v", got)
	}
	r := NewReader([]byte{0})
	if got := r.Bytes(); got != nil {
		t.Fatalf("zero-length decode must be nil, got %v", got)
	}
}

func TestBytesAliasing(t *testing.T) {
	src := AppendBytes(nil, []byte("abc"))
	r := NewReader(src)
	got := r.Bytes()
	if string(got) != "abc" {
		t.Fatalf("got %q", got)
	}
	// The subslice aliases the input and has no spare capacity to grow
	// into neighboring bytes.
	if cap(got) != len(got) {
		t.Fatalf("decoded slice leaks capacity: len %d cap %d", len(got), cap(got))
	}
}

func TestBoolCanonical(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestStringRoundTrip(t *testing.T) {
	b := AppendString(nil, "hé\x00llo")
	r := NewReader(b)
	if got := r.String(); got != "hé\x00llo" || r.Err() != nil {
		t.Fatalf("got %q err %v", got, r.Err())
	}
}

func TestDoneRejectsTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.Byte()
	if err := r.Done(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("want ErrTrailing, got %v", err)
	}
}
