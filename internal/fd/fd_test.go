package fd

import (
	"testing"
	"time"

	"abcast/internal/netmodel"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

func newHBWorld(t *testing.T, n int, cfg Config) (*simnet.World, []*Heartbeat) {
	t.Helper()
	w := simnet.NewWorld(n, netmodel.Setup1(), 3)
	hbs := make([]*Heartbeat, n+1)
	for i := 1; i <= n; i++ {
		hbs[i] = NewHeartbeat(w.Node(stack.ProcessID(i)), cfg)
	}
	return w, hbs
}

func TestNoSuspicionWithoutCrash(t *testing.T) {
	w, hbs := newHBWorld(t, 3, DefaultConfig())
	w.RunFor(2 * time.Second)
	for i := 1; i <= 3; i++ {
		for j := 1; j <= 3; j++ {
			if i != j && hbs[i].Suspects(stack.ProcessID(j)) {
				t.Fatalf("p%d wrongly suspects p%d on an idle healthy network", i, j)
			}
		}
	}
}

func TestCrashEventuallySuspected(t *testing.T) {
	w, hbs := newHBWorld(t, 3, DefaultConfig())
	w.After(1, 500*time.Millisecond, func() { w.Crash(2, simnet.DropInFlight) })
	w.RunFor(3 * time.Second)
	for _, p := range []int{1, 3} {
		if !hbs[p].Suspects(2) {
			t.Fatalf("p%d never suspected the crashed process (strong completeness)", p)
		}
	}
	if hbs[1].Suspects(3) || hbs[3].Suspects(1) {
		t.Fatal("a correct process is suspected")
	}
}

func TestSubscriberNotified(t *testing.T) {
	w, hbs := newHBWorld(t, 3, DefaultConfig())
	var events []bool
	cancel := hbs[1].Subscribe(func(q stack.ProcessID, suspected bool) {
		if q == 2 {
			events = append(events, suspected)
		}
	})
	w.After(1, 200*time.Millisecond, func() { w.Crash(2, simnet.DropInFlight) })
	w.RunFor(2 * time.Second)
	if len(events) == 0 || !events[0] {
		t.Fatalf("subscriber events = %v, want leading suspicion", events)
	}
	cancel()
	n := len(events)
	w.RunFor(time.Second)
	if len(events) != n {
		t.Fatal("events after unsubscribe")
	}
}

// TestAdaptiveTimeoutRecovers: a transient network stall causes a wrong
// suspicion; once heartbeats resume, trust must be restored and the timeout
// grown, eventually yielding accuracy (the ◇S behaviour).
func TestAdaptiveTimeoutRecovers(t *testing.T) {
	cfg := Config{
		Interval:         10 * time.Millisecond,
		InitialTimeout:   30 * time.Millisecond,
		TimeoutIncrement: 100 * time.Millisecond,
		MaxTimeout:       time.Second,
	}
	params := netmodel.Setup1()
	// Stall all traffic from p2 between 100ms and 200ms of virtual time.
	var w *simnet.World
	params.LatencyFn = func(from, to stack.ProcessID, env stack.Envelope) time.Duration {
		now := w.Now().Sub(time.Unix(0, 0))
		if from == 2 && now > 100*time.Millisecond && now < 200*time.Millisecond {
			return 150 * time.Millisecond
		}
		return params.Latency
	}
	w = simnet.NewWorld(3, params, 3)
	hbs := make([]*Heartbeat, 4)
	for i := 1; i <= 3; i++ {
		hbs[i] = NewHeartbeat(w.Node(stack.ProcessID(i)), cfg)
	}
	suspectedOnce := false
	hbs[1].Subscribe(func(q stack.ProcessID, s bool) {
		if q == 2 && s {
			suspectedOnce = true
		}
	})
	w.RunFor(3 * time.Second)
	if !suspectedOnce {
		t.Skip("stall did not trigger a suspicion in this schedule")
	}
	if hbs[1].Suspects(2) {
		t.Fatal("suspicion not retracted after heartbeats resumed")
	}
}

func TestHeartbeatStop(t *testing.T) {
	w, hbs := newHBWorld(t, 2, DefaultConfig())
	w.RunFor(100 * time.Millisecond)
	hbs[1].Stop()
	hbs[2].Stop()
	sent := w.MsgsSent()
	w.RunFor(time.Second)
	if w.MsgsSent() != sent {
		t.Fatal("heartbeats still flowing after Stop")
	}
	// Stopped detectors must not develop suspicions either.
	if hbs[1].Suspects(2) || hbs[2].Suspects(1) {
		t.Fatal("stopped detector changed suspicion state")
	}
}

// TestTimeoutCapRespected: adaptation must never push a timeout past
// MaxTimeout, or a flaky process could inflate suspicion delays without
// bound.
func TestTimeoutCapRespected(t *testing.T) {
	cfg := Config{
		Interval:         5 * time.Millisecond,
		InitialTimeout:   10 * time.Millisecond,
		TimeoutIncrement: 500 * time.Millisecond,
		MaxTimeout:       50 * time.Millisecond,
	}
	params := netmodel.Setup1()
	// p2 stalls periodically, causing repeated wrong suspicions and
	// therefore repeated adaptation.
	var w *simnet.World
	params.LatencyFn = func(from, to stack.ProcessID, env stack.Envelope) time.Duration {
		now := w.Now().Sub(time.Unix(0, 0))
		if from == 2 && (now/(100*time.Millisecond))%2 == 1 {
			return 60 * time.Millisecond
		}
		return params.Latency
	}
	w = simnet.NewWorld(2, params, 3)
	h1 := NewHeartbeat(w.Node(1), cfg)
	NewHeartbeat(w.Node(2), cfg)
	w.RunFor(2 * time.Second)
	if to := h1.timeout[2]; to > cfg.MaxTimeout {
		t.Fatalf("timeout adapted to %v, beyond cap %v", to, cfg.MaxTimeout)
	}
	// The cap must still allow suspicion of a real crash.
	w.Crash(2, simnet.DropInFlight)
	w.RunFor(time.Second)
	if !h1.Suspects(2) {
		t.Fatal("capped detector failed to suspect a crashed process")
	}
}

// TestDelayedHeartbeatsSuspectedThenRecovered: heartbeats that are merely
// delayed (never lost) must still trigger a suspicion once the delay
// exceeds the timeout — and the late arrivals must then restore trust and
// grow the timeout, not be mistaken for fresh liveness. This is the
// asynchronous-channel case, as opposed to the dropped-heartbeat case of
// TestCrashEventuallySuspected.
func TestDelayedHeartbeatsSuspectedThenRecovered(t *testing.T) {
	cfg := Config{
		Interval:         10 * time.Millisecond,
		InitialTimeout:   40 * time.Millisecond,
		TimeoutIncrement: 80 * time.Millisecond,
		MaxTimeout:       time.Second,
	}
	params := netmodel.Setup1()
	// Every heartbeat from p2 takes 200 ms — far beyond the 40 ms timeout —
	// but all of them arrive.
	var w *simnet.World
	params.LatencyFn = func(from, to stack.ProcessID, env stack.Envelope) time.Duration {
		if from == 2 {
			return 200 * time.Millisecond
		}
		return params.Latency
	}
	w = simnet.NewWorld(2, params, 5)
	h1 := NewHeartbeat(w.Node(1), cfg)
	NewHeartbeat(w.Node(2), cfg)
	var events []bool
	h1.Subscribe(func(q stack.ProcessID, s bool) {
		if q == 2 {
			events = append(events, s)
		}
	})
	w.RunFor(3 * time.Second)
	if len(events) == 0 || !events[0] {
		t.Fatalf("events = %v: delay beyond the timeout never triggered a suspicion", events)
	}
	recovered := false
	for _, s := range events {
		if !s {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("trust never restored although every heartbeat eventually arrived")
	}
	if to := h1.timeout[2]; to <= cfg.InitialTimeout {
		t.Fatalf("timeout = %v, not adapted beyond the initial %v despite wrong suspicions",
			to, cfg.InitialTimeout)
	}
	// With the adapted timeout above the one-way delay, the detector ends
	// the run in the ◇S steady state: no current suspicion of a live peer.
	if h1.Suspects(2) {
		t.Fatal("still suspecting a live, merely slow process at the end of the run")
	}
}

// TestSuspicionAcrossPartitionAndHeal: a partition must make the two sides
// suspect each other (strong completeness applies — a cut peer is
// indistinguishable from a crashed one), and a heal must restore trust on
// both sides once heartbeats flow again. This is the detector-level
// contract the atomic broadcast stack relies on to stall and then resume
// across WAN partition episodes.
func TestSuspicionAcrossPartitionAndHeal(t *testing.T) {
	for _, mode := range []simnet.PartitionMode{simnet.PartitionDrop, simnet.PartitionDelay} {
		name := "drop"
		if mode == simnet.PartitionDelay {
			name = "delay"
		}
		t.Run(name, func(t *testing.T) {
			w, hbs := newHBWorld(t, 3, DefaultConfig())
			w.After(1, 300*time.Millisecond, func() {
				w.Partition(mode, []stack.ProcessID{3})
			})
			// Let the partition last several timeouts, then check both
			// sides suspect across the cut and not within their side.
			w.RunFor(1500 * time.Millisecond)
			if !hbs[1].Suspects(3) || !hbs[2].Suspects(3) {
				t.Fatal("majority never suspected the cut-off process")
			}
			if !hbs[3].Suspects(1) || !hbs[3].Suspects(2) {
				t.Fatal("minority never suspected the unreachable majority")
			}
			if hbs[1].Suspects(2) || hbs[2].Suspects(1) {
				t.Fatal("suspicion within an intact side")
			}
			w.Heal()
			w.RunFor(5 * time.Second)
			for i := 1; i <= 3; i++ {
				for j := 1; j <= 3; j++ {
					if i != j && hbs[i].Suspects(stack.ProcessID(j)) {
						t.Fatalf("p%d still suspects p%d long after the heal (%s mode)", i, j, name)
					}
				}
			}
		})
	}
}

func TestScripted(t *testing.T) {
	s := NewScripted()
	if s.Suspects(1) {
		t.Fatal("fresh scripted detector suspects")
	}
	var got []bool
	cancel := s.Subscribe(func(q stack.ProcessID, suspected bool) { got = append(got, suspected) })
	s.SetSuspected(1, true)
	s.SetSuspected(1, true) // no-op, no duplicate event
	s.SetSuspected(1, false)
	if !s.Suspects(2) == false && s.Suspects(1) {
		t.Fatal("suspicion state wrong")
	}
	if len(got) != 2 || !got[0] || got[1] {
		t.Fatalf("events = %v, want [true false]", got)
	}
	cancel()
	s.SetSuspected(1, true)
	if len(got) != 2 {
		t.Fatal("event after unsubscribe")
	}
}
