// Package fd provides failure detectors of class ◇S (eventually strong).
//
// The consensus algorithms of the paper are built on an unreliable failure
// detector D_p queried as "c_p ∈ D_p". Two implementations are provided:
//
//   - Heartbeat: the usual heartbeat/adaptive-timeout detector. It satisfies
//     strong completeness (a crashed process is eventually suspected by
//     every correct process) and, in runs where message delays stabilize,
//     eventual weak accuracy — which is the ◇S behaviour the algorithms
//     need for termination.
//   - Scripted: a detector whose suspicions are driven explicitly by tests,
//     used to build the adversarial schedules of Sections 2.2 and 3.3.
package fd

import (
	"sort"
	"time"

	"abcast/internal/metrics"
	"abcast/internal/stack"
)

// Detector is the query interface used by consensus ("c ∈ D_p") plus a
// subscription mechanism so that event-driven protocols learn about
// suspicion changes without polling.
type Detector interface {
	// Suspects reports whether q is currently suspected.
	Suspects(q stack.ProcessID) bool
	// Subscribe registers fn to be called whenever the suspicion status
	// of any process changes. The returned function unsubscribes.
	Subscribe(fn func(q stack.ProcessID, suspected bool)) (cancel func())
}

// subscriptions is shared by the detector implementations.
type subscriptions struct {
	nextKey int
	subs    map[int]func(stack.ProcessID, bool)
}

func (s *subscriptions) subscribe(fn func(stack.ProcessID, bool)) func() {
	if s.subs == nil {
		s.subs = make(map[int]func(stack.ProcessID, bool))
	}
	key := s.nextKey
	s.nextKey++
	s.subs[key] = fn
	return func() { delete(s.subs, key) }
}

func (s *subscriptions) notify(q stack.ProcessID, suspected bool) {
	// Notify in subscription order, not map order: several consensus
	// instances subscribe concurrently under pipelining, and the order in
	// which they react to a suspicion determines the order of their round
	// messages — iterating the map directly made whole simulation runs
	// nondeterministic (observed as run-to-run diffs in the g3 recovery
	// curves before the bench-determinism CI gate pinned this down).
	keys := make([]int, 0, len(s.subs))
	for k := range s.subs {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		// A callback may unsubscribe others (an instance deciding cancels
		// its subscription); skip the ones gone by the time we reach them.
		if fn, ok := s.subs[k]; ok {
			fn(q, suspected)
		}
	}
}

// HeartbeatMsg is the periodic liveness message.
type HeartbeatMsg struct{}

// WireSize implements stack.Message.
func (HeartbeatMsg) WireSize() int { return 4 }

// Config parameterizes the heartbeat detector.
type Config struct {
	// Interval between heartbeats.
	Interval time.Duration
	// InitialTimeout before first suspecting a silent process.
	InitialTimeout time.Duration
	// TimeoutIncrement is added to a process's timeout whenever it is
	// suspected wrongly (a heartbeat arrives while suspected). This is
	// the standard adaptation that yields eventual accuracy.
	TimeoutIncrement time.Duration
	// MaxTimeout caps adaptation.
	MaxTimeout time.Duration
	// Metrics, when non-nil, is the registry the detector's counters (fd.*)
	// register into; nil leaves them standalone. Counter updates never
	// allocate or schedule, so enabling a registry cannot perturb a run.
	Metrics *metrics.Registry
}

// DefaultConfig returns heartbeat parameters suitable for the simulated
// LAN: suspicions within ~100ms of a crash, negligible background load.
func DefaultConfig() Config {
	return Config{
		Interval:         25 * time.Millisecond,
		InitialTimeout:   120 * time.Millisecond,
		TimeoutIncrement: 60 * time.Millisecond,
		MaxTimeout:       2 * time.Second,
	}
}

// Heartbeat is a push-style heartbeat failure detector.
type Heartbeat struct {
	proto stack.Proto
	cfg   Config

	suspected map[stack.ProcessID]bool
	timeout   map[stack.ProcessID]time.Duration
	cancelTO  map[stack.ProcessID]func()
	subs      subscriptions
	stopped   bool
	cancelHB  func()
	// dynamic is set once SetMembers has been called: the monitored set is
	// then exactly the cancelTO key set instead of the static 1..N, and a
	// non-monitored process is treated as permanently suspected (a retired
	// member must never block a quorum wait).
	dynamic bool

	// Counter cells, registered under fd.* when Config.Metrics is set.
	heartbeats   *metrics.Counter
	suspicions   *metrics.Counter
	unsuspicions *metrics.Counter
}

// MemberAware is implemented by detectors that can retarget their monitored
// peer set when the group membership changes (see Heartbeat.SetMembers). The
// dynamic-membership engine feeds delivered configuration changes to any
// detector implementing it.
type MemberAware interface {
	SetMembers(members []stack.ProcessID)
}

var _ Detector = (*Heartbeat)(nil)

// NewHeartbeat wires a heartbeat detector into the node under
// stack.ProtoFD and starts emitting heartbeats.
func NewHeartbeat(node *stack.Node, cfg Config) *Heartbeat {
	h := &Heartbeat{
		proto:     node.Proto(stack.ProtoFD),
		cfg:       cfg,
		suspected: make(map[stack.ProcessID]bool),
		timeout:   make(map[stack.ProcessID]time.Duration),
		cancelTO:  make(map[stack.ProcessID]func()),

		heartbeats:   cfg.Metrics.Counter("fd.heartbeats_sent"),
		suspicions:   cfg.Metrics.Counter("fd.suspicions"),
		unsuspicions: cfg.Metrics.Counter("fd.unsuspicions"),
	}
	node.Register(stack.ProtoFD, stack.HandlerFunc(h.receive))
	ctx := h.proto.Ctx()
	for q := stack.ProcessID(1); q <= stack.ProcessID(ctx.N()); q++ {
		if q == ctx.ID() {
			continue
		}
		h.timeout[q] = cfg.InitialTimeout
		h.armTimeout(q)
	}
	h.tick()
	return h
}

// Stop halts heartbeat emission and all timeout timers.
func (h *Heartbeat) Stop() {
	h.stopped = true
	if h.cancelHB != nil {
		h.cancelHB()
	}
	// Cancel in process order, not map order. Timer cancellation is
	// commutative today (Cancel only marks the event dead), but running
	// stored callbacks in map order is exactly the failure class that made
	// notify() nondeterministic, so hold the same line here.
	ids := make([]stack.ProcessID, 0, len(h.cancelTO))
	for q := range h.cancelTO {
		ids = append(ids, q)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, q := range ids {
		h.cancelTO[q]()
	}
}

// SetMembers retargets the monitored peer set to the given view (the
// dynamic-membership engine calls it at each delivered configuration
// change). A removed peer's timer is cancelled and the peer is marked
// suspected immediately — it has retired and must never again block a quorum
// or coordinator wait, so instances still draining under an old view rotate
// past it at once. A newly added peer starts trusted with a fresh
// InitialTimeout. After the first call the detector is dynamic: heartbeats
// from non-monitored processes are ignored and non-monitored ≠ self queries
// report suspected.
//
//abcheck:entry cross-package API; the engine calls it from its own event-loop callbacks
func (h *Heartbeat) SetMembers(members []stack.ProcessID) {
	h.dynamic = true
	self := h.proto.Ctx().ID()
	want := make(map[stack.ProcessID]bool, len(members))
	for _, q := range members {
		if q != self {
			want[q] = true
		}
	}
	// Drop retired peers, in process order for deterministic notification.
	current := make([]stack.ProcessID, 0, len(h.cancelTO))
	for q := range h.cancelTO {
		current = append(current, q)
	}
	sort.Slice(current, func(i, j int) bool { return current[i] < current[j] })
	for _, q := range current {
		if want[q] {
			continue
		}
		if cancel := h.cancelTO[q]; cancel != nil {
			cancel()
		}
		delete(h.cancelTO, q)
		delete(h.timeout, q)
		if !h.suspected[q] {
			h.suspected[q] = true
			h.suspicions.Inc()
			h.subs.notify(q, true)
		}
	}
	// Arm new peers, in member order (the caller passes a sorted view).
	for _, q := range members {
		if q == self {
			continue
		}
		if _, monitored := h.cancelTO[q]; monitored {
			continue
		}
		h.timeout[q] = h.cfg.InitialTimeout
		if h.suspected[q] {
			h.suspected[q] = false
			h.unsuspicions.Inc()
			h.subs.notify(q, false)
		}
		h.armTimeout(q)
	}
}

var _ MemberAware = (*Heartbeat)(nil)

// tick emits a heartbeat to all other processes and re-arms itself.
func (h *Heartbeat) tick() {
	if h.stopped || h.proto.Ctx().Crashed() {
		return
	}
	h.proto.BroadcastOthers(0, HeartbeatMsg{})
	h.heartbeats.Inc()
	h.cancelHB = h.proto.Ctx().SetTimer(h.cfg.Interval, h.tick)
}

// receive handles an incoming heartbeat from q.
func (h *Heartbeat) receive(q stack.ProcessID, _ uint64, m stack.Message) {
	if _, ok := m.(HeartbeatMsg); !ok || h.stopped {
		return
	}
	if h.dynamic {
		if _, monitored := h.cancelTO[q]; !monitored {
			return // a retired peer's in-flight heartbeat must not re-arm it
		}
	}
	if h.suspected[q] {
		// Wrong suspicion: restore trust and adapt the timeout.
		h.suspected[q] = false
		to := h.timeout[q] + h.cfg.TimeoutIncrement
		if h.cfg.MaxTimeout > 0 && to > h.cfg.MaxTimeout {
			to = h.cfg.MaxTimeout
		}
		h.timeout[q] = to
		h.unsuspicions.Inc()
		h.subs.notify(q, false)
	}
	h.armTimeout(q)
}

// armTimeout (re)starts the suspicion timer for q.
func (h *Heartbeat) armTimeout(q stack.ProcessID) {
	if cancel, ok := h.cancelTO[q]; ok && cancel != nil {
		cancel()
	}
	h.cancelTO[q] = h.proto.Ctx().SetTimer(h.timeout[q], func() {
		if h.stopped || h.suspected[q] {
			return
		}
		h.suspected[q] = true
		h.suspicions.Inc()
		h.subs.notify(q, true)
	})
}

// Suspects implements Detector. Under dynamic membership a non-monitored
// process other than self counts as suspected: consensus instances draining
// an old view that still names a retired member must rotate past it without
// waiting out a heartbeat timeout that will never be re-armed.
func (h *Heartbeat) Suspects(q stack.ProcessID) bool {
	if h.dynamic && q != h.proto.Ctx().ID() {
		if _, monitored := h.cancelTO[q]; !monitored {
			return true
		}
	}
	return h.suspected[q]
}

// Subscribe implements Detector.
func (h *Heartbeat) Subscribe(fn func(stack.ProcessID, bool)) func() {
	return h.subs.subscribe(fn)
}

// Scripted is a failure detector fully controlled by the test harness.
type Scripted struct {
	suspected map[stack.ProcessID]bool
	subs      subscriptions
}

var _ Detector = (*Scripted)(nil)

// NewScripted returns a detector that initially suspects nobody.
func NewScripted() *Scripted {
	return &Scripted{suspected: make(map[stack.ProcessID]bool)}
}

// SetSuspected changes the suspicion status of q and notifies subscribers.
func (s *Scripted) SetSuspected(q stack.ProcessID, suspected bool) {
	if s.suspected[q] == suspected {
		return
	}
	s.suspected[q] = suspected
	s.subs.notify(q, suspected)
}

// Suspects implements Detector.
func (s *Scripted) Suspects(q stack.ProcessID) bool { return s.suspected[q] }

// Subscribe implements Detector.
func (s *Scripted) Subscribe(fn func(stack.ProcessID, bool)) func() {
	return s.subs.subscribe(fn)
}
