package fd

import (
	"testing"
	"time"

	"abcast/internal/stack"
)

// TestSetMembersRetireImmediate: retiring a peer marks it suspected at the
// call itself — no timeout has to lapse — and notifies subscribers, so
// quorum waits over old views rotate past a leaver at once.
func TestSetMembersRetireImmediate(t *testing.T) {
	w, hbs := newHBWorld(t, 4, DefaultConfig())
	w.RunFor(time.Second) // settle mutual trust
	var events []stack.ProcessID
	hbs[1].Subscribe(func(q stack.ProcessID, suspected bool) {
		if suspected {
			events = append(events, q)
		}
	})
	w.After(1, 0, func() {
		hbs[1].SetMembers([]stack.ProcessID{1, 2, 3})
		if !hbs[1].Suspects(4) {
			t.Errorf("retired peer not suspected immediately after SetMembers")
		}
	})
	w.RunFor(10 * time.Millisecond)
	if len(events) != 1 || events[0] != 4 {
		t.Fatalf("suspicion notifications = %v, want exactly [4]", events)
	}
	// p4 is still alive and heartbeating; its heartbeats must be ignored —
	// the retirement suspicion is permanent, not an adaptive timeout that
	// fresh heartbeats would clear.
	w.RunFor(2 * time.Second)
	if !hbs[1].Suspects(4) {
		t.Fatal("heartbeats from a retired peer cleared its suspicion")
	}
	// Members keep trusting each other throughout.
	if hbs[1].Suspects(2) || hbs[1].Suspects(3) {
		t.Fatal("a live member is suspected after SetMembers")
	}
}

// TestSetMembersAddStartsTrusted: a peer added by SetMembers starts trusted
// with a fresh timeout, and its heartbeats keep it trusted; a peer that was
// suspected while retired is un-suspected on re-admission (with a
// subscriber notification).
func TestSetMembersAddStartsTrusted(t *testing.T) {
	w, hbs := newHBWorld(t, 4, DefaultConfig())
	w.RunFor(time.Second)
	w.After(1, 0, func() { hbs[1].SetMembers([]stack.ProcessID{1, 2, 3}) })
	w.RunFor(time.Second)
	var trusts []stack.ProcessID
	hbs[1].Subscribe(func(q stack.ProcessID, suspected bool) {
		if !suspected {
			trusts = append(trusts, q)
		}
	})
	w.After(1, 0, func() {
		hbs[1].SetMembers([]stack.ProcessID{1, 2, 3, 4})
		if hbs[1].Suspects(4) {
			t.Errorf("re-admitted peer still suspected immediately after SetMembers")
		}
	})
	w.RunFor(2 * time.Second)
	if len(trusts) != 1 || trusts[0] != 4 {
		t.Fatalf("trust notifications = %v, want exactly [4]", trusts)
	}
	if hbs[1].Suspects(4) {
		t.Fatal("live re-admitted peer suspected after its heartbeats resumed")
	}
}

// TestDynamicNonMonitoredSuspected: once the detector is dynamic, a query
// about a process outside the monitored set (≠ self) reports suspected —
// such a process must never block a wait.
func TestDynamicNonMonitoredSuspected(t *testing.T) {
	w, hbs := newHBWorld(t, 4, DefaultConfig())
	// Static detector: process 4 is monitored and trusted.
	w.RunFor(500 * time.Millisecond)
	if hbs[1].Suspects(4) {
		t.Fatal("static detector suspects a live process")
	}
	w.After(1, 0, func() { hbs[1].SetMembers([]stack.ProcessID{1, 2}) })
	w.RunFor(10 * time.Millisecond)
	if !hbs[1].Suspects(3) || !hbs[1].Suspects(4) {
		t.Fatal("dynamic detector trusts processes outside the monitored set")
	}
	if hbs[1].Suspects(1) {
		t.Fatal("self reads suspected")
	}
}
