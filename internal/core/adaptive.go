package core

// Adaptive control plane: the engine-side half of internal/adapt.
//
// The controller itself (internal/adapt) is a pure state machine; this file
// owns everything stateful around it: the sampling cadence (a periodic timer
// on the process's event loop), the observation hook that snapshots the
// engine's signals, and the actuators — Retarget for the pipeline width and
// batch cap, relink.Link.SetInterval for the anti-entropy cadence.
//
// Retargeting the window is safe *between* instances only, and that is the
// only place it happens: growing the window merely allows maybePropose to
// start more instances, and shrinking it merely stops new instances from
// starting until enough in-flight ones have been consumed. In-flight
// proposals are never cancelled — their claimed identifiers are released
// exclusively by consumePending when their instance is consumed, exactly as
// in the static engine, so a width change can never lose an identifier that
// was waiting to be recycled into a later instance (the property
// TestAdaptivePartitionKeepsContract and TestRetargetShrinkLosesNothing
// pin). MaxBatch is read per selectBatch call, so a batch retarget simply
// applies from the next proposal on.

import (
	"time"

	"abcast/internal/adapt"
	"abcast/internal/stats"
)

// decLatAlpha smooths the propose→decide latency signal (TCP-SRTT-style
// 1/8 gain, like the relink RTT estimate it is paired with).
const decLatAlpha = 0.125

// Observation is one snapshot of the engine's control-plane signals — the
// observation hook the adaptive controller (and any external monitor)
// samples. All fields are cheap to compute; taking an Observation never
// perturbs the engine.
type Observation struct {
	// Backlog is the number of received-but-unordered identifiers not
	// claimed by any in-flight proposal: the work the pipeline has not
	// picked up yet. (Claimed identifiers can transiently exceed the
	// unordered set when another process's proposal orders an identifier
	// we still hold claimed; the count clamps at zero.)
	Backlog int
	// Delivered is the cumulative adelivered message count.
	Delivered int
	// InFlight is the number of outstanding consensus proposals.
	InFlight int
	// Window and MaxBatch are the currently applied actuator values.
	Window   int
	MaxBatch int
	// DecisionLatency is the smoothed propose→decide latency of this
	// process's own proposals (0 until the first decision).
	DecisionLatency time.Duration
	// ConsensusOpen is the number of consensus instances this process has
	// proposed to that are still undecided.
	ConsensusOpen int
	// LinkRTTMax is the slowest link's smoothed probe→digest round-trip
	// estimate from the relink layer (0 when recovery is off or no
	// exchange has completed).
	LinkRTTMax time.Duration
	// Received and DeliveredLog are the sizes of the engine's payload map
	// and retained delivered-log suffix. Under Config.Persist both are
	// bounded by checkpoint pruning — the memory-flatness signal the soak
	// tests assert on; without it they grow with history.
	Received     int
	DeliveredLog int
}

// Observe snapshots the engine's control-plane signals.
func (e *Engine) Observe() Observation {
	backlog := e.unordered.Len() - len(e.claimed)
	if backlog < 0 {
		backlog = 0
	}
	o := Observation{
		Backlog:         backlog,
		Delivered:       e.deliveredN,
		InFlight:        len(e.inFlight),
		Window:          e.window,
		MaxBatch:        e.maxBatch,
		DecisionLatency: time.Duration(e.decLat.Value()),
		ConsensusOpen:   e.cons.Undecided(),
		Received:        len(e.received),
		DeliveredLog:    len(e.deliveredLog),
	}
	if e.link != nil {
		o.LinkRTTMax = e.link.MaxRTT()
	}
	return o
}

// Retarget applies a new pipeline width and per-instance batch cap, the
// safe between-instances path: growth takes effect immediately (the engine
// tries to start instances for the new slots), shrinkage drains — in-flight
// proposals run to consumption and keep their identifier claims until then,
// so no identifier awaiting recycling is lost. window is clamped to ≥ 1;
// maxBatch ≤ 0 means unlimited.
//
//abcheck:entry control-plane actuator; invoked on-loop by adaptTick and by external controllers via Do
func (e *Engine) Retarget(window, maxBatch int) {
	if window < 1 {
		window = 1
	}
	if maxBatch < 0 {
		maxBatch = 0
	}
	if window == e.window && maxBatch == e.maxBatch {
		return
	}
	e.retargets.Inc()
	grow := window > e.window
	e.window = window
	e.maxBatch = maxBatch
	e.winGauge.Set(int64(e.window))
	e.batchGauge.Set(int64(e.maxBatch))
	if grow {
		e.maybePropose()
	}
}

// SetAntiEntropy retargets the recovery layer's anti-entropy cadence —
// the control plane's third actuator, next to the pipeline window and the
// batch cap of Retarget. The adaptive controller drives it from measured
// link round-trip times (adaptTick); an external controller may drive it
// directly, enqueued on the owning event loop like any actuator call.
// No-op when recovery is off or d is non-positive.
//
//abcheck:entry control-plane actuator; invoked on-loop by adaptTick and by external controllers via Do
func (e *Engine) SetAntiEntropy(d time.Duration) {
	if e.link != nil && d > 0 {
		e.link.SetInterval(d)
	}
}

// initAdapt builds the controller and normalizes the initial actuator
// values into its bounds (called from New when cfg.Adapt is set). The
// control loop itself is armed at the end of New, once construction can no
// longer fail: a timer armed earlier would fire on a half-built engine if a
// later wiring step returned an error.
func (e *Engine) initAdapt() {
	e.ctrl = adapt.NewController(*e.cfg.Adapt)
	acfg := e.ctrl.Config()
	if e.window < acfg.MinWindow {
		e.window = acfg.MinWindow
	}
	if e.window > acfg.MaxWindow {
		e.window = acfg.MaxWindow
	}
	if e.maxBatch <= 0 {
		// Unbounded batching absorbs any backlog into ever-larger
		// proposals, hiding the signal the window controller steers by;
		// adaptive engines always run with a bounded batch.
		e.maxBatch = acfg.MinBatch
	}
	if e.maxBatch < acfg.MinBatch {
		e.maxBatch = acfg.MinBatch
	}
	if e.maxBatch > acfg.MaxBatchCap {
		e.maxBatch = acfg.MaxBatchCap
	}
	e.proposedAt = make(map[uint64]time.Time)
	e.decLat = stats.NewEwma(decLatAlpha)
}

// armAdapt schedules the next control tick. Unlike the recovery timers the
// control loop never quiesces: an idle engine still samples, which is what
// lets the window decay back to serial after a burst.
func (e *Engine) armAdapt() {
	e.ctx.SetTimer(e.ctrl.Config().Interval, e.adaptTick)
}

// adaptTick runs one control-loop round: observe, ask the controller for
// targets, actuate, re-arm.
func (e *Engine) adaptTick() {
	o := e.Observe()
	t := e.ctrl.Tick(adapt.Sample{
		Now:             e.ctx.Now(),
		Backlog:         o.Backlog,
		Delivered:       o.Delivered,
		InFlight:        o.InFlight,
		Window:          o.Window,
		MaxBatch:        o.MaxBatch,
		DecisionLatency: o.DecisionLatency,
		LinkRTTMax:      o.LinkRTTMax,
	})
	e.Retarget(t.Window, t.MaxBatch)
	if e.link != nil && t.AntiEntropy > 0 {
		e.link.SetInterval(t.AntiEntropy)
	}
	e.armAdapt()
}

// pipelined reports whether this engine can face consensus instances beyond
// the serial liveness argument: either it was configured with a static
// window above 1, or the adaptive controller may widen (or may already have
// widened) the window at runtime.
func (e *Engine) pipelined() bool {
	return e.window > 1 || e.ctrl != nil
}
