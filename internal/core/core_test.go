package core

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// cluster is an n-process atomic broadcast system under the simulator.
type cluster struct {
	w         *simnet.World
	engines   []*Engine  // index 0 unused
	delivered [][]msg.ID // per-process delivery order
	payloads  []map[msg.ID]string
}

// newCluster builds a cluster with heartbeat failure detectors, so crashes
// are discovered organically. Optional mutators adjust each process's
// Config before construction (e.g. to enable pipelining).
func newCluster(t *testing.T, n int, variant Variant, rb rbcast.Kind, params netmodel.Params, seed int64, mutate ...func(*Config)) *cluster {
	t.Helper()
	c := &cluster{
		w:         simnet.NewWorld(n, params, seed),
		engines:   make([]*Engine, n+1),
		delivered: make([][]msg.ID, n+1),
		payloads:  make([]map[msg.ID]string, n+1),
	}
	for i := 1; i <= n; i++ {
		i := i
		c.payloads[i] = make(map[msg.ID]string)
		node := c.w.Node(stack.ProcessID(i))
		det := fd.NewHeartbeat(node, fd.DefaultConfig())
		cfg := Config{
			Variant:      variant,
			RB:           rb,
			Detector:     det,
			RcvCheckCost: params.RcvCheckPerID,
			Deliver: func(app *msg.App) {
				c.delivered[i] = append(c.delivered[i], app.ID)
				c.payloads[i][app.ID] = string(app.Payload)
			},
		}
		for _, m := range mutate {
			m(&cfg)
		}
		eng, err := New(node, cfg)
		if err != nil {
			t.Fatalf("New(p%d): %v", i, err)
		}
		c.engines[i] = eng
	}
	return c
}

// pipelined is a Config mutator setting the window and batch cap.
func pipelined(w, maxBatch int) func(*Config) {
	return func(cfg *Config) {
		cfg.Pipeline = w
		cfg.MaxBatch = maxBatch
	}
}

// abcast schedules process p to atomically broadcast payload after d.
func (c *cluster) abcast(p stack.ProcessID, d time.Duration, payload string) {
	c.w.After(p, d, func() { c.engines[p].ABroadcast([]byte(payload)) })
}

// checkTotalOrder verifies that for every pair of processes in procs, one
// delivery sequence is a prefix of the other (Uniform total order).
func (c *cluster) checkTotalOrder(t *testing.T, procs []stack.ProcessID) {
	t.Helper()
	for i := 0; i < len(procs); i++ {
		for j := i + 1; j < len(procs); j++ {
			a, b := c.delivered[procs[i]], c.delivered[procs[j]]
			short := a
			if len(b) < len(a) {
				short = b
			}
			for x := range short {
				if a[x] != b[x] {
					t.Fatalf("total order violated: p%d[%d]=%v, p%d[%d]=%v",
						procs[i], x, a[x], procs[j], x, b[x])
				}
			}
		}
	}
}

// checkIntegrity verifies at-most-once delivery per process.
func (c *cluster) checkIntegrity(t *testing.T, procs []stack.ProcessID) {
	t.Helper()
	for _, p := range procs {
		seen := make(map[msg.ID]bool, len(c.delivered[p]))
		for _, id := range c.delivered[p] {
			if seen[id] {
				t.Fatalf("uniform integrity violated: p%d delivered %v twice", p, id)
			}
			seen[id] = true
		}
	}
}

// checkDelivers verifies every process in procs delivered all ids in want.
func (c *cluster) checkDelivers(t *testing.T, procs []stack.ProcessID, want []msg.ID) {
	t.Helper()
	for _, p := range procs {
		have := make(map[msg.ID]bool, len(c.delivered[p]))
		for _, id := range c.delivered[p] {
			have[id] = true
		}
		for _, id := range want {
			if !have[id] {
				t.Fatalf("validity/agreement violated: p%d never delivered %v (delivered %d msgs)",
					p, id, len(c.delivered[p]))
			}
		}
	}
}

func correctVariants() []Variant {
	return []Variant{
		VariantConsensusMsgs,
		VariantIndirectCT,
		VariantIndirectMR,
		VariantURBIDs,
	}
}

func allVariants() []Variant {
	return append(correctVariants(), VariantFaultyIDs)
}

func procs(ids ...int) []stack.ProcessID {
	out := make([]stack.ProcessID, len(ids))
	for i, id := range ids {
		out[i] = stack.ProcessID(id)
	}
	return out
}

// TestFailureFreeBroadcast drives symmetric traffic through every variant
// (including the faulty one, which is correct in failure-free runs) and
// checks all atomic broadcast properties.
func TestFailureFreeBroadcast(t *testing.T) {
	for _, v := range allVariants() {
		for _, n := range []int{3, 5} {
			t.Run(fmt.Sprintf("%v/n=%d", v, n), func(t *testing.T) {
				c := newCluster(t, n, v, rbcast.KindEager, netmodel.Setup1(), 7)
				var want []msg.ID
				const perProc = 10
				for i := 1; i <= n; i++ {
					for s := 1; s <= perProc; s++ {
						c.abcast(stack.ProcessID(i),
							time.Duration(s)*5*time.Millisecond+time.Duration(i)*100*time.Microsecond,
							fmt.Sprintf("m-%d-%d", i, s))
						want = append(want, msg.ID{Sender: stack.ProcessID(i), Seq: uint64(s)})
					}
				}
				c.w.RunFor(30 * time.Second)
				all := procs()
				for i := 1; i <= n; i++ {
					all = append(all, stack.ProcessID(i))
				}
				c.checkDelivers(t, all, want)
				c.checkTotalOrder(t, all)
				c.checkIntegrity(t, all)
			})
		}
	}
}

// TestLazyRBcastVariant exercises the O(n) reliable broadcast beneath the
// indirect stack (the Figure 6/7b configuration).
func TestLazyRBcastVariant(t *testing.T) {
	c := newCluster(t, 3, VariantIndirectCT, rbcast.KindLazy, netmodel.Setup2(), 11)
	var want []msg.ID
	for i := 1; i <= 3; i++ {
		for s := 1; s <= 5; s++ {
			c.abcast(stack.ProcessID(i), time.Duration(s)*3*time.Millisecond, "x")
			want = append(want, msg.ID{Sender: stack.ProcessID(i), Seq: uint64(s)})
		}
	}
	c.w.RunFor(10 * time.Second)
	c.checkDelivers(t, procs(1, 2, 3), want)
	c.checkTotalOrder(t, procs(1, 2, 3))
}

// TestCrashSurvivors crashes one process mid-run; the correct variants must
// keep delivering traffic from the survivors, in total order.
func TestCrashSurvivors(t *testing.T) {
	for _, v := range correctVariants() {
		t.Run(v.String(), func(t *testing.T) {
			n := 3
			if v == VariantIndirectMR {
				n = 4 // f < n/3
			}
			c := newCluster(t, n, v, rbcast.KindEager, netmodel.Setup1(), 13)
			crashed := stack.ProcessID(2)
			var want []msg.ID
			var alive []stack.ProcessID
			for i := 1; i <= n; i++ {
				if stack.ProcessID(i) != crashed {
					alive = append(alive, stack.ProcessID(i))
				}
			}
			// Pre-crash traffic from everyone.
			for i := 1; i <= n; i++ {
				c.abcast(stack.ProcessID(i), 2*time.Millisecond, fmt.Sprintf("pre-%d", i))
			}
			c.w.After(1, 100*time.Millisecond, func() {
				c.w.Crash(crashed, simnet.DeliverInFlight)
			})
			// Post-crash traffic from survivors only.
			for _, p := range alive {
				for s := 0; s < 5; s++ {
					c.abcast(p, 300*time.Millisecond+time.Duration(s)*20*time.Millisecond,
						fmt.Sprintf("post-%d-%d", p, s))
				}
			}
			for _, p := range alive {
				want = append(want, msg.ID{Sender: p, Seq: 1})
				for s := uint64(2); s <= 6; s++ {
					want = append(want, msg.ID{Sender: p, Seq: s})
				}
			}
			c.w.RunFor(20 * time.Second)
			c.checkDelivers(t, alive, want)
			c.checkTotalOrder(t, alive)
			c.checkIntegrity(t, alive)
		})
	}
}

// TestValidityViolationFaultyStack reproduces Section 2.2: with an
// unmodified consensus algorithm run directly on message identifiers, a
// single crash can order an identifier whose message no correct process
// holds — blocking delivery forever and violating Validity. The indirect
// stacks, under the *same* adversarial schedule, keep delivering.
//
// Schedule (n = 3, coordinator of round 1 is p2):
//   - p1 and p3 broadcast m1/m3 normally (everyone joins consensus).
//   - p2 broadcasts m; the reliable-broadcast DATA for m is delayed
//     adversarially (reliable channels are not FIFO), while p2's consensus
//     traffic proceeds. p2, as round-1 coordinator, proposes {id(m)}.
//   - The faulty stack's processes ack blindly; id(m) is decided.
//   - p2 crashes; its in-flight DATA is lost (channels only guarantee
//     delivery between correct processes).
func TestValidityViolationFaultyStack(t *testing.T) {
	run := func(v Variant) (*cluster, []msg.ID) {
		params := netmodel.Setup1()
		// Adversarial asynchrony: p2's reliable-broadcast payloads crawl.
		params.LatencyFn = func(from, to stack.ProcessID, env stack.Envelope) time.Duration {
			if from == 2 && env.Proto == stack.ProtoRB {
				return time.Hour
			}
			return params.Latency
		}
		c := newCluster(t, 3, v, rbcast.KindEager, params, 17)
		// Round 0: background traffic so p1/p3 participate in consensus.
		c.abcast(1, time.Millisecond, "m1")
		c.abcast(3, time.Millisecond, "m3")
		// p2's poisoned broadcast, once the first batch has settled.
		c.abcast(2, 50*time.Millisecond, "m")
		// More traffic so p1/p3 propose in the same consensus instance as
		// id(m).
		c.abcast(1, 51*time.Millisecond, "m4")
		c.abcast(3, 51*time.Millisecond, "m5")
		// p2 crashes well after deciding; everything still in flight from
		// it (the delayed DATA) is lost.
		c.w.After(1, time.Second, func() { c.w.Crash(2, simnet.DropInFlight) })
		c.w.RunFor(30 * time.Second)
		want := []msg.ID{
			{Sender: 1, Seq: 1}, {Sender: 3, Seq: 1}, // m1, m3
			{Sender: 1, Seq: 2}, {Sender: 3, Seq: 2}, // m4, m5
		}
		return c, want
	}

	t.Run("faulty-stack-blocks", func(t *testing.T) {
		c, _ := run(VariantFaultyIDs)
		// Both survivors must be stuck waiting for msgs({id(m)}).
		for _, p := range procs(1, 3) {
			if !c.engines[p].Blocked() {
				t.Fatalf("p%d not blocked; the faulty stack should have ordered id(m) without the message", p)
			}
			id, _ := c.engines[p].BlockedOn()
			if id.Sender != 2 {
				t.Fatalf("p%d blocked on %v, want a message of p2", p, id)
			}
			// Validity violated: m4/m5 from correct senders are stuck
			// behind the lost message.
			for _, got := range c.delivered[p] {
				if got == (msg.ID{Sender: 1, Seq: 2}) || got == (msg.ID{Sender: 3, Seq: 2}) {
					t.Fatalf("p%d delivered %v; expected it to be blocked behind id(m)", p, got)
				}
			}
		}
	})

	for _, v := range []Variant{VariantIndirectCT, VariantURBIDs} {
		t.Run(v.String()+"-survives", func(t *testing.T) {
			c, want := run(v)
			c.checkDelivers(t, procs(1, 3), want)
			c.checkTotalOrder(t, procs(1, 3))
			for _, p := range procs(1, 3) {
				if c.engines[p].Blocked() {
					id, _ := c.engines[p].BlockedOn()
					t.Fatalf("p%d blocked on %v; correct stack must not block", p, id)
				}
			}
		})
	}
}

// TestHighLoadBatching verifies that under load the engine batches many
// identifiers per consensus instance rather than running one instance per
// message.
func TestHighLoadBatching(t *testing.T) {
	c := newCluster(t, 3, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), 23)
	const total = 300
	for s := 0; s < total; s++ {
		p := stack.ProcessID(s%3 + 1)
		c.abcast(p, time.Duration(s)*200*time.Microsecond, "x")
	}
	c.w.RunFor(30 * time.Second)
	st := c.engines[1].Stats()
	if st.Delivered != total {
		t.Fatalf("delivered %d, want %d", st.Delivered, total)
	}
	if st.Instances >= total {
		t.Fatalf("ran %d consensus instances for %d messages; expected batching", st.Instances, total)
	}
	c.checkTotalOrder(t, procs(1, 2, 3))
	// Settled consensus instances must be pruned: memory stays bounded
	// regardless of how many instances have run.
	for p := 1; p <= 3; p++ {
		if count := c.engines[p].cons.InstanceCount(); count > 3 {
			t.Fatalf("p%d retains %d consensus instances after %d runs; pruning broken",
				p, count, st.Instances)
		}
	}
}

// TestNoTrafficNoConsensus: without broadcasts the stack must stay quiet
// (no consensus instances).
func TestNoTrafficNoConsensus(t *testing.T) {
	c := newCluster(t, 3, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), 29)
	c.w.RunFor(time.Second)
	if st := c.engines[1].Stats(); st.Instances != 0 {
		t.Fatalf("ran %d instances without traffic", st.Instances)
	}
}

// TestRandomizedSchedules fuzzes seeds, jitter and crash times for each
// correct variant and checks the safety properties on every run.
func TestRandomizedSchedules(t *testing.T) {
	for _, v := range correctVariants() {
		t.Run(v.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				n := 3
				if v == VariantIndirectMR {
					n = 4
				}
				params := netmodel.Setup1()
				params.Jitter = 60 * time.Microsecond
				c := newCluster(t, n, v, rbcast.KindEager, params, seed*101)
				for i := 1; i <= n; i++ {
					for s := 0; s < 8; s++ {
						d := time.Duration((int(seed)*37+i*11+s*29)%200) * time.Millisecond
						c.abcast(stack.ProcessID(i), d, "r")
					}
				}
				crashAt := time.Duration(50+seed*23) * time.Millisecond
				c.w.After(1, crashAt, func() { c.w.Crash(stack.ProcessID(n), simnet.DropInFlight) })
				c.w.RunFor(30 * time.Second)
				var alive []stack.ProcessID
				for i := 1; i < n; i++ {
					alive = append(alive, stack.ProcessID(i))
				}
				c.checkTotalOrder(t, alive)
				c.checkIntegrity(t, alive)
				// Uniform agreement at quiescence: survivors delivered
				// the same set.
				base := len(c.delivered[alive[0]])
				for _, p := range alive[1:] {
					if len(c.delivered[p]) != base {
						t.Fatalf("seed %d: survivors delivered %d vs %d messages",
							seed, base, len(c.delivered[p]))
					}
				}
			}
		})
	}
}
