package core

// Property tests of dynamic membership riding the total order: join/leave
// configuration changes are atomically broadcast like any payload, every
// process applies each change at its delivery point, and consensus
// instances at or past the change's serial plus ConfigLag run under the new
// member set. The families here pin the guarantees the design claims:
//
//   - churn under pipelining preserves uniform total order, and every
//     message reaches every member of the final view — including a joiner
//     that must reconstruct the entire pre-join history through the
//     decide-relay and payload fetch;
//   - a joiner beyond the decision-log floor catches up through snapshot
//     state transfer (SnapshotStats proves the path taken);
//   - a leave broadcast while a drop partition is active does not wedge the
//     survivors;
//   - post-switch instances provably use the new view (ViewAt), and the
//     view logs of all final members agree.

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// withMembers is a Config mutator setting the initial member set.
func withMembers(members ...stack.ProcessID) func(*Config) {
	return func(cfg *Config) { cfg.Members = members }
}

// withRecovery enables the recovery subsystem with defaults.
func withRecovery(snapshot bool) func(*Config) {
	return func(cfg *Config) { cfg.Recover = &RecoverConfig{Snapshot: snapshot} }
}

// config schedules process p to broadcast a membership change after d.
func (c *cluster) config(p stack.ProcessID, d time.Duration, ch msg.ConfigChange) {
	c.w.After(p, d, func() { c.engines[p].BroadcastConfig(ch) })
}

// abcastTracked schedules a broadcast and records the id it is actually
// assigned at send time. Ids cannot be precomputed in membership tests: a
// configuration change broadcast by the same process consumes a sequence
// number of its own, shifting every later payload id. The append runs on
// the simulation's event loop; read *out only after RunFor returns.
func (c *cluster) abcastTracked(p stack.ProcessID, d time.Duration, payload string, out *[]msg.ID) {
	c.w.After(p, d, func() {
		id := c.engines[p].ABroadcast([]byte(payload))
		*out = append(*out, id)
	})
}

// checkFullDelivery verifies that every id in sent was delivered at every
// listed process.
func (c *cluster) checkFullDelivery(t *testing.T, procs []stack.ProcessID, sent []msg.ID) {
	t.Helper()
	for _, p := range procs {
		got := make(map[msg.ID]bool, len(c.delivered[p]))
		for _, id := range c.delivered[p] {
			got[id] = true
		}
		missing := 0
		for _, id := range sent {
			if !got[id] {
				missing++
			}
		}
		if missing > 0 {
			t.Errorf("p%d: %d/%d sent messages not delivered", p, missing, len(sent))
		}
	}
}

// checkFinalView verifies that every listed process's latest applied view is
// exactly want, and returns the view's first effective instance (identical
// everywhere by uniform total order — asserted too).
func (c *cluster) checkFinalView(t *testing.T, procs []stack.ProcessID, want []stack.ProcessID) uint64 {
	t.Helper()
	var eff uint64
	for i, p := range procs {
		gotEff, got := c.engines[p].CurrentView()
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("p%d: final view %v, want %v", p, got, want)
		}
		if i == 0 {
			eff = gotEff
		} else if gotEff != eff {
			t.Errorf("p%d: final view effective at %d, p%d says %d", p, gotEff, procs[0], eff)
		}
	}
	return eff
}

// TestChurnPipelinedPropertyFamily drives a join and a leave through a
// pipelined, recovering group while load flows, across a sweep of seeds:
// universe n=5, members {1,2,3}; process 4 joins mid-run and process 2
// leaves afterwards. Final view {1,3,4} must agree on a single total order,
// deliver every message (the joiner reconstructs the pre-join prefix it
// never saw diffused), and resolve post-switch instances under the new
// 3-member view.
func TestChurnPipelinedPropertyFamily(t *testing.T) {
	seedSweep(t, 5, func(t *testing.T, seed int64) {
		const n = 5
		c := newCluster(t, n, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), seed,
			withMembers(1, 2, 3), withRecovery(false), pipelined(3, 2))

		// Stable members 1 and 3 send throughout; the leaver sends only
		// before its leave is broadcast, so its messages must drain under
		// the old views.
		var sent []msg.ID
		for _, p := range []stack.ProcessID{1, 3} {
			for s := 0; s < 25; s++ {
				at := time.Duration((int(seed)*37+int(p)*13+s*67)%2000) * time.Millisecond
				c.abcastTracked(p, at, fmt.Sprintf("m-%d-%d", p, s), &sent)
			}
		}
		for s := 0; s < 8; s++ {
			at := time.Duration((int(seed)*41+s*59)%700) * time.Millisecond
			c.abcastTracked(2, at, fmt.Sprintf("m-2-%d", s), &sent)
		}

		c.config(1, 800*time.Millisecond, msg.ConfigChange{Join: 4})
		c.config(3, 1400*time.Millisecond, msg.ConfigChange{Leave: 2})
		c.w.RunFor(40 * time.Second)

		final := []stack.ProcessID{1, 3, 4}
		c.checkTotalOrder(t, final)
		c.checkFullDelivery(t, final, sent)
		eff := c.checkFinalView(t, final, final)

		// Post-switch instances provably run under the new quorum: every
		// final member resolves the view of the final view's first
		// effective instance to {1,3,4}.
		for _, p := range final {
			if got := fmt.Sprint(c.engines[p].ViewAt(eff)); got != fmt.Sprint(final) {
				t.Errorf("p%d: ViewAt(%d) = %v, want %v", p, eff, got, final)
			}
			if k := c.engines[p].Stats().Instances; k+1 <= eff {
				t.Errorf("p%d: consumed only %d instances, final view never took effect (eff=%d)", p, k, eff)
			}
		}
	})
}

// TestChurnWithPartitionEpisode composes churn with a drop partition: the
// join is broadcast while a minority member is cut off (drop semantics, so
// its traffic is lost for good), the network heals, and the final view must
// still reach agreement on one total order with full delivery — churn and
// partition recovery exercise the same relay/fetch machinery concurrently.
func TestChurnWithPartitionEpisode(t *testing.T) {
	seedSweep(t, 3, func(t *testing.T, seed int64) {
		const n = 4
		c := newCluster(t, n, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), seed,
			withMembers(1, 2, 3), withRecovery(false), pipelined(2, 2))

		var sent []msg.ID
		for _, p := range []stack.ProcessID{1, 2} {
			for s := 0; s < 20; s++ {
				at := time.Duration((int(seed)*29+int(p)*19+s*83)%2500) * time.Millisecond
				c.abcastTracked(p, at, fmt.Sprintf("m-%d-%d", p, s), &sent)
			}
		}

		// Cut member 3 off (drop mode) from 0.4 s to 1.6 s; the join of 4
		// is ordered by the majority while the cut is active.
		c.w.After(1, 400*time.Millisecond, func() {
			c.w.Partition(simnet.PartitionDrop, []stack.ProcessID{3})
		})
		c.config(1, 900*time.Millisecond, msg.ConfigChange{Join: 4})
		c.w.After(1, 1600*time.Millisecond, func() { c.w.Heal() })
		c.w.RunFor(40 * time.Second)

		final := []stack.ProcessID{1, 2, 3, 4}
		c.checkTotalOrder(t, final)
		c.checkFullDelivery(t, final, sent)
		c.checkFinalView(t, final, final)
	})
}

// TestJoinDeepLagSnapshot proves the joiner-bootstrap path through snapshot
// state transfer: the group runs long enough before the join that the
// pre-join prefix falls off a tiny decision log, so a decision replay can
// no longer rebuild it — the joiner must be shipped a snapshot
// (SnapshotStats nonzero) and still reach full delivery in order.
func TestJoinDeepLagSnapshot(t *testing.T) {
	seedSweep(t, 3, func(t *testing.T, seed int64) {
		const n = 4
		c := newCluster(t, n, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), seed,
			withMembers(1, 2, 3), pipelined(2, 2),
			func(cfg *Config) {
				cfg.Recover = &RecoverConfig{DecisionLogCap: 4, Snapshot: true}
			})

		var sent []msg.ID
		for _, p := range []stack.ProcessID{1, 2, 3} {
			for s := 0; s < 25; s++ {
				at := time.Duration((int(seed)*43+int(p)*23+s*53)%1800) * time.Millisecond
				c.abcastTracked(p, at, fmt.Sprintf("m-%d-%d", p, s), &sent)
			}
		}

		// By 2.5 s the group has ordered far more instances than the
		// 4-entry decision log retains; process 4 then joins from serial 1.
		c.config(1, 2500*time.Millisecond, msg.ConfigChange{Join: 4})
		c.w.RunFor(40 * time.Second)

		final := []stack.ProcessID{1, 2, 3, 4}
		c.checkTotalOrder(t, final)
		c.checkFullDelivery(t, final, sent)
		c.checkFinalView(t, final, final)
		if _, installed := c.engines[4].SnapshotStats(); installed == 0 {
			t.Errorf("joiner beyond the decision-log floor caught up without a snapshot install")
		}
	})
}

// TestLeaveDuringDropPartition pins drain liveness: the leaver is cut off
// in drop mode and its leave is broadcast by a survivor while the cut is
// active, so the survivors must both finish instances that still name the
// leaver in their views (rotating past it via the immediate retirement
// suspicion) and keep ordering afterwards. The leaver never comes back; the
// survivors alone are the final view.
func TestLeaveDuringDropPartition(t *testing.T) {
	seedSweep(t, 3, func(t *testing.T, seed int64) {
		const n = 3
		c := newCluster(t, n, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), seed,
			withMembers(1, 2, 3), withRecovery(false), pipelined(2, 2))

		var sent []msg.ID
		for _, p := range []stack.ProcessID{1, 2} {
			for s := 0; s < 20; s++ {
				at := time.Duration((int(seed)*47+int(p)*31+s*61)%2200) * time.Millisecond
				c.abcastTracked(p, at, fmt.Sprintf("m-%d-%d", p, s), &sent)
			}
		}

		// Cut process 3 off for good at 0.5 s and broadcast its leave at
		// 0.8 s. The survivors' quorums stay at 2-of-3 until the switch
		// (tolerating the silent member), then drop to 2-of-2.
		c.w.After(1, 500*time.Millisecond, func() {
			c.w.Partition(simnet.PartitionDrop, []stack.ProcessID{3})
		})
		c.config(1, 800*time.Millisecond, msg.ConfigChange{Leave: 3})
		c.w.RunFor(40 * time.Second)

		survivors := []stack.ProcessID{1, 2}
		c.checkTotalOrder(t, survivors)
		c.checkFullDelivery(t, survivors, sent)
		c.checkFinalView(t, survivors, survivors)
	})
}
