package core

// Property tests of atomic broadcast across network partitions
// (simnet.Partition / Heal): random minority partitions with a later heal
// must preserve Uniform total order and the paper's No loss invariant in
// every mode, while the majority side keeps making progress during the
// episode.
//
// The two partition modes give different liveness guarantees, and the tests
// pin exactly that contract:
//
//   - PartitionDelay (TCP-like: the cut buffers, the heal flushes) keeps
//     channels reliable, so every property of the paper's model survives —
//     including full delivery everywhere once the network heals.
//   - PartitionDrop (black hole) violates the quasi-reliable channel
//     assumption while the cut lasts: safety (total order, No loss) is
//     untouched, and the majority still progresses and delivers everything
//     it originated, but — without the recovery subsystem — the minority
//     side may stay behind for good, because the decide relays it missed
//     are never retransmitted.
//   - PartitionDrop with Config.Recover set restores the full contract:
//     the relink layer retransmits what its buffers still hold, and the
//     decide-relay, sync requests, payload fetch and re-diffusion repair
//     what eviction destroyed — so drop-mode episodes end in full delivery
//     everywhere, exactly like delay-mode ones.

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/consensus"
	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
	"abcast/internal/relink"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// partitionRun drives one randomized minority-partition episode and returns
// the cluster plus the majority deliveries observed at cut and heal time.
func partitionRun(t *testing.T, seed int64, minoritySize int, mode simnet.PartitionMode, pipeline bool, extra ...func(*Config)) (c *cluster, sent []msg.ID, majoritySent []msg.ID, atCut, atHeal int) {
	t.Helper()
	const n = 5
	var mutate []func(*Config)
	if pipeline {
		mutate = append(mutate, pipelined(3, 2))
	}
	mutate = append(mutate, extra...)
	// No loss at every decision instant: nobody crashes in these runs, so
	// every process counts as correct and at least one holder must exist.
	var violations []string
	c = newCluster(t, n, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), seed, mutate...)
	for i := 1; i <= n; i++ {
		i := i
		eng := c.engines[i]
		eng.cfg.OnDecision = func(k uint64, v consensus.Value) {
			ids := idsOfValue(v)
			if len(ids) == 0 {
				return
			}
			holders := 0
			for q := 1; q <= n; q++ {
				all := true
				for _, id := range ids {
					if !c.engines[q].HasReceived(id) {
						all = false
						break
					}
				}
				if all {
					holders++
				}
			}
			if holders == 0 {
				violations = append(violations,
					fmt.Sprintf("p%d k=%d ids=%v: no holder", i, k, ids))
			}
		}
	}
	t.Cleanup(func() {
		if len(violations) > 0 {
			t.Errorf("No loss violated: %v", violations)
		}
	})

	minority := procs()
	for m := 0; m < minoritySize; m++ {
		minority = append(minority, stack.ProcessID(n-m))
	}
	isMinority := func(p stack.ProcessID) bool {
		for _, q := range minority {
			if q == p {
				return true
			}
		}
		return false
	}

	// Symmetric workload straddling the episode: sends before, during, and
	// after the cut, jittered per seed.
	const cutAt, healAt = 400 * time.Millisecond, 1000 * time.Millisecond
	for i := 1; i <= n; i++ {
		p := stack.ProcessID(i)
		for s := 0; s < 10; s++ {
			at := time.Duration((int(seed)*29+i*13+s*149)%1400) * time.Millisecond
			c.abcast(p, at, fmt.Sprintf("m-%d-%d", i, s))
			id := msg.ID{Sender: p, Seq: uint64(s + 1)}
			sent = append(sent, id)
			if !isMinority(p) {
				majoritySent = append(majoritySent, id)
			}
		}
	}

	c.w.After(1, cutAt, func() {
		atCut = len(c.delivered[1])
		c.w.Partition(mode, minority)
	})
	c.w.After(1, healAt, func() {
		atHeal = len(c.delivered[1])
		c.w.Heal()
	})
	c.w.RunFor(40 * time.Second)
	return c, sent, majoritySent, atCut, atHeal
}

// TestPartitionDelayPreservesAllProperties: under delay (TCP-like)
// semantics, a minority partition plus heal must leave every atomic
// broadcast property intact — total order, integrity, No loss, and full
// delivery everywhere — while the majority progresses during the cut.
func TestPartitionDelayPreservesAllProperties(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for _, minoritySize := range []int{1, 2} {
			pipeline := seed%2 == 0 // alternate serial and pipelined engines
			name := fmt.Sprintf("seed=%d/minority=%d/pipeline=%v", seed, minoritySize, pipeline)
			t.Run(name, func(t *testing.T) {
				c, sent, _, atCut, atHeal := partitionRun(t, seed, minoritySize, simnet.PartitionDelay, pipeline)
				all := procs(1, 2, 3, 4, 5)
				c.checkTotalOrder(t, all)
				c.checkIntegrity(t, all)
				c.checkDelivers(t, all, sent) // reliable channels: everyone catches up
				if atHeal <= atCut {
					t.Fatalf("majority made no progress during the partition: %d -> %d deliveries",
						atCut, atHeal)
				}
			})
		}
	}
}

// TestPartitionDropKeepsSafety: under drop (black-hole) semantics the
// channel assumption is violated, so only safety and majority-side
// liveness are promised: prefix total order, integrity, No loss, majority
// progress during the cut, and delivery of all majority-originated
// messages on the majority side.
func TestPartitionDropKeepsSafety(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		name := fmt.Sprintf("seed=%d", seed)
		t.Run(name, func(t *testing.T) {
			c, _, majoritySent, atCut, atHeal := partitionRun(t, seed, 2, simnet.PartitionDrop, false)
			all := procs(1, 2, 3, 4, 5)
			c.checkTotalOrder(t, all)
			c.checkIntegrity(t, all)
			c.checkDelivers(t, procs(1, 2, 3), majoritySent)
			if atHeal <= atCut {
				t.Fatalf("majority made no progress during the partition: %d -> %d deliveries",
					atCut, atHeal)
			}
		})
	}
}

// TestPartitionDropRecoveryCatchesUp: with the recovery subsystem enabled,
// a drop-mode (black-hole) minority partition plus heal must end exactly
// like a delay-mode one — every atomic broadcast property intact, *full*
// delivery at every process including the former minority, and majority
// progress during the cut. Two regimes are pinned:
//
//   - "replay": ample retransmission buffers — the relink layer alone
//     replays everything the cut black-holed, and must actually have
//     retransmitted something.
//   - "relay": 8-entry buffers — eviction destroys most of the replay
//     window, forcing the semantic repair paths (consensus decide-relay /
//     sync requests, payload fetch, unordered re-diffusion) to finish the
//     job; the run must show both evictions and relayed decisions or sync
//     requests, or the regime did not exercise what it claims to.
func TestPartitionDropRecoveryCatchesUp(t *testing.T) {
	cases := []struct {
		name string
		link relink.Config
	}{
		{"replay", relink.Config{}},
		{"relay", relink.Config{BufferCap: 8}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				pipeline := seed%2 == 0
				t.Run(fmt.Sprintf("seed=%d/pipeline=%v", seed, pipeline), func(t *testing.T) {
					recover := func(cfg *Config) {
						cfg.Recover = &RecoverConfig{Link: tc.link}
					}
					c, sent, _, atCut, atHeal := partitionRun(t, seed, 2, simnet.PartitionDrop, pipeline, recover)
					all := procs(1, 2, 3, 4, 5)
					c.checkTotalOrder(t, all)
					c.checkIntegrity(t, all)
					// The headline: full delivery everywhere despite the
					// black hole — drop-mode is survivable with recovery.
					c.checkDelivers(t, all, sent)
					if atHeal <= atCut {
						t.Fatalf("majority made no progress during the partition: %d -> %d deliveries",
							atCut, atHeal)
					}
					var retrans, evicted int64
					relays, syncs := 0, 0
					for p := 1; p <= 5; p++ {
						st := c.engines[p].LinkStats()
						retrans += st.Retransmitted
						evicted += st.Evicted
						relays += c.engines[p].cons.RelayCount()
						syncs += int(c.engines[p].syncReqs.Value())
					}
					if retrans == 0 {
						t.Fatalf("no link-layer retransmissions across a drop cut")
					}
					if tc.name == "relay" {
						if evicted == 0 {
							t.Fatalf("tiny buffers saw no evictions; regime not exercised")
						}
						if relays == 0 && syncs == 0 {
							t.Fatalf("eviction regime recovered without decide-relay or sync requests")
						}
					}
				})
			}
		})
	}
}
