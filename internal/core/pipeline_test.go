package core

// Tests of the pipelined ordering path (Config.Pipeline): the engine may
// run up to W consensus instances concurrently with disjoint identifier
// batches, while decisions are consumed — and messages delivered — in
// serial instance order. Safety must therefore be indistinguishable from
// the serial engine's; these tests drive the pipeline hard (small MaxBatch
// forces many concurrent instances) and re-check every atomic broadcast
// property, plus the pipeline-specific invariants: the window bound and the
// re-proposal of identifiers that another process's batch failed to order.

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// burst schedules per-process traffic bursts dense enough to keep several
// instances in flight.
func burst(c *cluster, n, perProc int, spacing time.Duration) []msg.ID {
	var want []msg.ID
	for i := 1; i <= n; i++ {
		for s := 1; s <= perProc; s++ {
			c.abcast(stack.ProcessID(i),
				time.Duration(s)*spacing+time.Duration(i)*30*time.Microsecond,
				fmt.Sprintf("m-%d-%d", i, s))
			want = append(want, msg.ID{Sender: stack.ProcessID(i), Seq: uint64(s)})
		}
	}
	return want
}

// TestPipelinedBroadcastAllVariants drives every variant (including the
// faulty one, correct in failure-free runs) with a window of 4 and a small
// batch cap, and checks all atomic broadcast properties plus that the
// pipeline actually engaged.
func TestPipelinedBroadcastAllVariants(t *testing.T) {
	for _, v := range allVariants() {
		t.Run(v.String(), func(t *testing.T) {
			const n = 3
			c := newCluster(t, n, v, rbcast.KindEager, netmodel.Setup1(), 31, pipelined(4, 2))
			want := burst(c, n, 12, 2*time.Millisecond)
			c.w.RunFor(30 * time.Second)
			all := procs(1, 2, 3)
			c.checkDelivers(t, all, want)
			c.checkTotalOrder(t, all)
			c.checkIntegrity(t, all)
			engaged := false
			for _, p := range all {
				st := c.engines[p].Stats()
				if st.MaxInFlight > 4 {
					t.Fatalf("p%d exceeded the window: MaxInFlight=%d > 4", p, st.MaxInFlight)
				}
				if st.MaxInFlight > 1 {
					engaged = true
				}
			}
			if !engaged {
				t.Fatal("no process ever had more than one instance in flight; the pipeline never engaged")
			}
		})
	}
}

// TestPipelineWindowBound checks that MaxInFlight never exceeds the
// configured window, for several windows, under load that would happily use
// more.
func TestPipelineWindowBound(t *testing.T) {
	for _, w := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("W=%d", w), func(t *testing.T) {
			c := newCluster(t, 3, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), 37,
				pipelined(w, 1))
			burst(c, 3, 10, time.Millisecond)
			c.w.RunFor(20 * time.Second)
			for p := 1; p <= 3; p++ {
				st := c.engines[p].Stats()
				if st.MaxInFlight > w {
					t.Fatalf("p%d: MaxInFlight=%d exceeds window %d", p, st.MaxInFlight, w)
				}
				if st.Delivered != 30 {
					t.Fatalf("p%d delivered %d/30", p, st.Delivered)
				}
			}
		})
	}
}

// TestPipelineRecyclesForeignOrderedIDs is the re-proposal path: with a
// batch cap of 1 and concurrent senders, processes routinely claim an
// identifier for instance k+j that some other process's batch gets decided
// first (in instance k), and identifiers lose their instance to a
// competing proposal; both must be resolved by recycling, with nothing
// delivered twice and nothing lost.
func TestPipelineRecyclesForeignOrderedIDs(t *testing.T) {
	const n = 3
	c := newCluster(t, n, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), 41, pipelined(3, 1))
	var want []msg.ID
	// Everyone broadcasts simultaneously, repeatedly: maximal proposal
	// overlap across processes.
	for s := 1; s <= 8; s++ {
		for i := 1; i <= n; i++ {
			c.abcast(stack.ProcessID(i), time.Duration(s)*4*time.Millisecond, "x")
		}
	}
	for i := 1; i <= n; i++ {
		for s := uint64(1); s <= 8; s++ {
			want = append(want, msg.ID{Sender: stack.ProcessID(i), Seq: s})
		}
	}
	c.w.RunFor(30 * time.Second)
	all := procs(1, 2, 3)
	c.checkDelivers(t, all, want)
	c.checkTotalOrder(t, all)
	c.checkIntegrity(t, all)
	for p := 1; p <= n; p++ {
		if st := c.engines[p].Stats(); st.Unordered != 0 || st.OrderedQ != 0 || st.InFlight != 0 {
			t.Fatalf("p%d left pipeline residue: %+v", p, st)
		}
	}
}

// TestPipelinedCrashSurvivors is TestCrashSurvivors with the pipeline on:
// a mid-run crash must not cost the survivors liveness or order.
func TestPipelinedCrashSurvivors(t *testing.T) {
	for _, v := range correctVariants() {
		t.Run(v.String(), func(t *testing.T) {
			n := 3
			if v == VariantIndirectMR {
				n = 4 // f < n/3
			}
			c := newCluster(t, n, v, rbcast.KindEager, netmodel.Setup1(), 43, pipelined(4, 2))
			crashed := stack.ProcessID(2)
			var alive []stack.ProcessID
			for i := 1; i <= n; i++ {
				if stack.ProcessID(i) != crashed {
					alive = append(alive, stack.ProcessID(i))
				}
			}
			for i := 1; i <= n; i++ {
				for s := 0; s < 4; s++ {
					c.abcast(stack.ProcessID(i), time.Duration(2+s*3)*time.Millisecond,
						fmt.Sprintf("pre-%d-%d", i, s))
				}
			}
			c.w.After(1, 100*time.Millisecond, func() {
				c.w.Crash(crashed, simnet.DropInFlight)
			})
			for _, p := range alive {
				for s := 0; s < 6; s++ {
					c.abcast(p, 300*time.Millisecond+time.Duration(s)*10*time.Millisecond,
						fmt.Sprintf("post-%d-%d", p, s))
				}
			}
			var want []msg.ID
			for _, p := range alive {
				for s := uint64(1); s <= 10; s++ {
					want = append(want, msg.ID{Sender: p, Seq: s})
				}
			}
			c.w.RunFor(30 * time.Second)
			c.checkDelivers(t, alive, want)
			c.checkTotalOrder(t, alive)
			c.checkIntegrity(t, alive)
		})
	}
}

// TestPipelinedMatchesSerialOrderProperties cross-checks that a pipelined
// cluster and a serial cluster, fed the same schedule, each satisfy the
// safety properties (their orders may legitimately differ — total order is
// per-cluster).
func TestPipelinedMatchesSerialOrderProperties(t *testing.T) {
	for _, w := range []int{1, 4} {
		c := newCluster(t, 3, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), 47,
			pipelined(w, 3))
		want := burst(c, 3, 10, 3*time.Millisecond)
		c.w.RunFor(20 * time.Second)
		all := procs(1, 2, 3)
		c.checkDelivers(t, all, want)
		c.checkTotalOrder(t, all)
		c.checkIntegrity(t, all)
	}
}

// TestPipelineValidation rejects nonsense windows and keeps the serial
// default.
func TestPipelineValidation(t *testing.T) {
	w := simnet.NewWorld(1, netmodel.Instant(), 1)
	det := fd.NewHeartbeat(w.Node(1), fd.DefaultConfig())
	if _, err := New(w.Node(1), Config{
		Variant:  VariantIndirectCT,
		Detector: det,
		Deliver:  func(*msg.App) {},
		Pipeline: -1,
	}); err == nil {
		t.Fatal("negative pipeline window accepted")
	}
	eng, err := New(w.Node(1), Config{
		Variant:  VariantIndirectCT,
		Detector: det,
		Deliver:  func(*msg.App) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if eng.window != 1 {
		t.Fatalf("default window = %d, want 1", eng.window)
	}
}

// TestPipelineBeaconPiggybackReducesMessages pins the message-count win of
// piggybacking participation beacons on algorithm traffic: under pipelined
// load, most Open announcements must ride for free, and the standalone
// beacon count must stay strictly below the naive scheme's cost (which paid
// one standalone message per announcement, i.e. standalone == announced).
func TestPipelineBeaconPiggybackReducesMessages(t *testing.T) {
	c := newCluster(t, 3, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), 53,
		pipelined(4, 2))
	want := burst(c, 3, 12, 2*time.Millisecond)
	c.w.RunFor(30 * time.Second)
	all := procs(1, 2, 3)
	c.checkDelivers(t, all, want)
	c.checkTotalOrder(t, all)

	announced, piggybacked, standalone := 0, 0, 0
	for _, p := range all {
		a, pb, sa := c.engines[p].cons.OpenTraffic()
		announced += a
		piggybacked += pb
		standalone += sa
	}
	t.Logf("beacons: announced=%d piggybacked=%d standalone=%d", announced, piggybacked, standalone)
	if announced == 0 {
		t.Fatal("no Open announcements at all; the pipeline never opened an instance")
	}
	if piggybacked == 0 {
		t.Fatal("no announcement ever piggybacked on algorithm traffic")
	}
	if standalone >= announced {
		t.Fatalf("standalone beacons (%d) not reduced below the naive per-announcement cost (%d)",
			standalone, announced)
	}
}
