package core

// Crash-recovery persistence and bounded memory: the engine-side half of
// internal/persist.
//
// Without persistence the engine keeps every received payload and the whole
// delivered log for the lifetime of the process — that is what lets it serve
// any fetch or snapshot request, but it also means memory grows linearly
// with history. Config.Persist bounds both at once, around one invariant:
//
//	the checkpoint boundary: a consensus instance k may be forgotten
//	(payloads dropped from received, entries dropped from deliveredLog,
//	decisions evicted from the relay log) only once every current member's
//	*durable* delivered frontier has passed k.
//
// The pieces, all in this file:
//
//   - Checkpointing: on a timer (PersistConfig.Interval) the engine saves a
//     persist.Checkpoint — delivered frontier, the retained delivered-log
//     suffix, per-sender delivered floors plus the sparse residue above
//     them, the applied view log, and the two monotone counters — then
//     truncates the WAL and broadcasts FrontierMsg announcing the durable
//     frontier.
//   - Pruning: every process tracks the durable frontiers its peers
//     announce. Once the minimum over the current members passes a
//     boundary, the delivered prefix below it is dropped: payloads leave
//     received, entries leave deliveredLog (logBase records how many), and
//     consensus.RaiseFloor routes lagging peers to the snapshot path
//     instead of a replay naming unfetchable payloads. Snapshot transfers
//     become suffix-only: positions below logBase are never re-shipped.
//   - The WAL: the engine's own broadcast sequence number and the relink
//     stream reservation are logged write-ahead (noteSeq, onLinkReserve) —
//     restoring either stale would alias a new message or envelope to an
//     old identity. Everything else restores stale-safely: an old
//     checkpoint only lengthens the redelivered suffix.
//   - Restart: New finds the store non-empty, rehydrates (rehydrate), and
//     probes peers for the tail (restartProbes rides the existing sync
//     timer): the decide-relay replays what its log still holds, and a
//     deeper gap arrives as a snapshot. Deliveries since the last
//     checkpoint repeat — atomic broadcast across a crash is at-least-once,
//     in unchanged total order (see doc.go's guarantee matrix).
//
// Every behavior here is gated on cfg.Persist; with it nil the engine is
// byte-for-byte the pre-persistence engine (the pinned benchmark trajectory
// pins this).

import (
	"fmt"
	"sort"
	"time"

	"abcast/internal/msg"
	"abcast/internal/persist"
	"abcast/internal/stack"
	"abcast/internal/trace"
)

// DefaultCheckpointInterval is the default checkpoint cadence. Checkpoints
// are cheap (bookkeeping only, no payloads) and stale-safe, so the cadence
// trades restart redelivery length against store traffic, nothing else.
const DefaultCheckpointInterval = 250 * time.Millisecond

// PersistConfig enables crash-recovery persistence and bounded memory.
// Setting it implies the recovery subsystem with snapshot transfer (the
// restart catch-up path); Config.Recover may still be set to tune it.
type PersistConfig struct {
	// Store is the checkpoint/WAL store: a persist.MemStore for restart
	// within the OS process (simulator, tests, bench), a persist.FileStore
	// for restart across processes. Required.
	Store persist.Store
	// Interval is the checkpoint cadence (0 = DefaultCheckpointInterval).
	Interval time.Duration
}

// FrontierMsg announces the sender's durable delivered frontier: every
// consensus instance below Frontier is fully delivered *and checkpointed*
// there. Broadcast after each checkpoint (stack.ProtoSync); the minimum over
// the current members defines the prune boundary.
type FrontierMsg struct {
	Frontier uint64
}

// WireSize implements stack.Message.
func (m FrontierMsg) WireSize() int { return 9 }

// initPersist opens the store, rehydrates a previous incarnation's state,
// and wires the WAL-backed relink reservation (called from New when
// cfg.Persist is set — after initMembership, whose seed view rehydrate may
// replace, and before initRecovery, which consumes the Link config).
//
//abcheck:entry constructor path; runs before the event loop starts
func (e *Engine) initPersist() error {
	pc := e.cfg.Persist
	e.pstore = pc.Store
	e.ckptEvery = pc.Interval
	if e.ckptEvery <= 0 {
		e.ckptEvery = DefaultCheckpointInterval
	}
	e.delFloor = make(map[stack.ProcessID]uint64)
	e.peerFrontier = make(map[stack.ProcessID]uint64)
	cp, err := persist.Recover(pc.Store)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if cp != nil {
		e.rehydrate(cp)
	}
	// The relink layer must never reuse a stream sequence number a previous
	// incarnation assigned: start at the WAL'd reservation and log each new
	// block write-ahead. e.cfg.Recover is the engine's own copy (see New),
	// so this cannot mutate caller state.
	if e.linkReserve > 0 {
		e.cfg.Recover.Link.StartSeq = e.linkReserve
	}
	e.cfg.Recover.Link.OnReserve = e.onLinkReserve
	return nil
}

// rehydrate restores the engine from a recovered checkpoint: resume
// consumption at the frontier, reload the delivered digest (suffix log,
// floors, residue), replay the view log, and restore the monotone counters.
// The restarted engine then catches the tail through the normal repair
// paths, driven by restartProbes.
func (e *Engine) rehydrate(cp *persist.Checkpoint) {
	e.seq = cp.Seq
	e.linkReserve = cp.LinkReserve
	if cp.Frontier > 0 {
		e.kNext = cp.Frontier
		e.kPropose = cp.Frontier
	}
	e.logBase = cp.LogBase
	e.deliveredLog = make([]ordRec, len(cp.Entries))
	for i, en := range cp.Entries {
		e.deliveredLog[i] = ordRec{id: en.ID, k: en.K}
	}
	e.deliveredN = int(cp.LogBase) + len(cp.Entries)
	e.deliveredC.Add(int64(e.deliveredN))
	for _, fl := range cp.Floors {
		e.delFloor[fl.Sender] = fl.Seq
	}
	for _, id := range cp.Residue {
		e.delivered[id] = true
	}
	if len(cp.Views) > 0 && e.dynamic() {
		views := make([]viewRec, len(cp.Views))
		for i, v := range cp.Views {
			views[i] = viewRec{eff: v.Eff, members: append([]stack.ProcessID(nil), v.Members...)}
		}
		e.views = views
		e.applyGroup(views[len(views)-1].members)
	}
	e.lastCkptF = cp.Frontier
	// Ask around for the tail: enough probes that the rotation reaches a
	// live peer even under concurrent crashes, then the normal needsSync
	// conditions take over.
	e.restartProbes = 2 * e.ctx.N()
	e.tr.Record(trace.Event{At: e.ctx.Now(), P: e.ctx.ID(), Kind: trace.KindRestart, K: cp.Frontier, N: len(cp.Entries)})
}

// isDelivered reports whether the identifier has been adelivered here. Under
// persistence the delivered set is compressed: per-sender contiguous floors
// plus a sparse residue map above them (nil-map reads make both halves valid
// for a non-persistent engine, where the floor is always 0).
func (e *Engine) isDelivered(id msg.ID) bool {
	if id.Seq <= e.delFloor[id.Sender] {
		return true
	}
	return e.delivered[id]
}

// markDelivered records an adelivery. Without persistence the delivered map
// simply grows; with it, an identifier extending its sender's contiguous
// floor advances the floor (folding any residue that became contiguous), so
// the map holds only the out-of-order remainder and memory stays bounded.
func (e *Engine) markDelivered(id msg.ID) {
	e.deliveredN++
	e.deliveredC.Inc()
	if e.pstore == nil {
		e.delivered[id] = true
		return
	}
	f := e.delFloor[id.Sender]
	if id.Seq != f+1 {
		e.delivered[id] = true
		return
	}
	f++
	for e.delivered[msg.ID{Sender: id.Sender, Seq: f + 1}] {
		delete(e.delivered, msg.ID{Sender: id.Sender, Seq: f + 1})
		f++
	}
	e.delFloor[id.Sender] = f
}

// noteSeq write-ahead-logs the engine's own broadcast sequence number,
// called immediately after each increment and before the broadcast leaves:
// a restarted engine must never reuse a sequence number, or the new message
// would alias the old identifier and be deduplicated away (a Validity
// violation). No-op without persistence.
func (e *Engine) noteSeq() {
	if e.pstore == nil {
		return
	}
	e.logWAL(persist.WALRecord{Kind: persist.WALSeq, Value: e.seq})
}

// onLinkReserve is the relink.Config.OnReserve callback: log the new stream
// sequence reservation write-ahead before the link uses numbers from the
// block.
//
//abcheck:entry relink callback; invoked synchronously from on-loop sends
func (e *Engine) onLinkReserve(limit uint64) {
	e.linkReserve = limit
	e.logWAL(persist.WALRecord{Kind: persist.WALLinkReserve, Value: limit})
}

// logWAL appends one WAL record, surfacing (but not propagating) store
// errors: a failing store degrades restart fidelity, not live operation.
func (e *Engine) logWAL(rec persist.WALRecord) {
	if err := e.pstore.AppendWAL(rec); err != nil {
		e.persistErrs.Inc()
		e.ctx.Logf("persist: WAL append: %v", err)
	}
}

// armCkpt schedules the next checkpoint tick. Unlike the recovery timers the
// checkpoint loop never quiesces: an idle engine still re-checks, which is
// what publishes the final frontier after a burst ends.
func (e *Engine) armCkpt() {
	e.ctx.SetTimer(e.ckptEvery, e.ckptTick)
}

// ckptTick runs one checkpoint round and re-arms.
func (e *Engine) ckptTick() {
	e.checkpointNow()
	e.armCkpt()
}

// checkpointNow saves a checkpoint if the delivered frontier advanced since
// the last one, truncates the WAL it subsumes, and announces the new durable
// frontier to the group. Skipping an unmoved frontier is safe because
// checkpoints are stale-tolerant; only the WAL'd counters are freshness-
// critical, and they are appended as they change.
func (e *Engine) checkpointNow() {
	f := e.viewFrontier()
	if f <= e.lastCkptF {
		return
	}
	if err := e.pstore.SaveCheckpoint(e.buildCheckpoint(f)); err != nil {
		e.persistErrs.Inc()
		e.ctx.Logf("persist: checkpoint: %v", err)
		return
	}
	if err := e.pstore.TruncateWAL(); err != nil {
		e.persistErrs.Inc()
		e.ctx.Logf("persist: truncate WAL: %v", err)
	}
	e.lastCkptF = f
	e.ckpts.Inc()
	e.noteFrontier(e.ctx.ID(), f)
	e.sync.BroadcastOthers(0, FrontierMsg{Frontier: f})
}

// buildCheckpoint snapshots the engine's durable state with frontier f:
// everything a restarted incarnation needs to resume, and nothing it can
// re-derive or re-fetch (payloads deliberately excluded).
func (e *Engine) buildCheckpoint(f uint64) *persist.Checkpoint {
	cp := &persist.Checkpoint{
		Frontier:    f,
		Seq:         e.seq,
		LinkReserve: e.linkReserve,
		LogBase:     e.logBase,
	}
	cp.Entries = make([]persist.Entry, len(e.deliveredLog))
	for i, rec := range e.deliveredLog {
		cp.Entries[i] = persist.Entry{ID: rec.id, K: rec.k}
	}
	floors := make([]persist.Floor, 0, len(e.delFloor))
	for s, seq := range e.delFloor {
		floors = append(floors, persist.Floor{Sender: s, Seq: seq})
	}
	sort.Slice(floors, func(i, j int) bool { return floors[i].Sender < floors[j].Sender })
	cp.Floors = floors
	residue := make([]msg.ID, 0, len(e.delivered))
	for id := range e.delivered {
		residue = append(residue, id)
	}
	sort.Slice(residue, func(i, j int) bool { return residue[i].Less(residue[j]) })
	cp.Residue = residue
	if e.dynamic() {
		cp.Views = make([]persist.View, len(e.views))
		for i, v := range e.views {
			cp.Views[i] = persist.View{Eff: v.eff, Members: append([]stack.ProcessID(nil), v.members...)}
		}
	}
	return cp
}

// noteFrontier records a durable-frontier announcement (own or a peer's) and
// prunes if the group-wide minimum advanced.
func (e *Engine) noteFrontier(q stack.ProcessID, f uint64) {
	if f <= e.peerFrontier[q] {
		return
	}
	e.peerFrontier[q] = f
	e.maybePrune()
}

// pruneBoundary returns the highest instance every current member's durable
// frontier has passed (0 until every member has announced one). Keying the
// minimum on *durable* frontiers is the crash-safety of pruning: state below
// the boundary survives a restart of any member inside its own checkpoint,
// so no one will ever need it from us again.
func (e *Engine) pruneBoundary() uint64 {
	if e.dynamic() {
		return e.minFrontier(e.views[len(e.views)-1].members)
	}
	b := uint64(0)
	for q := stack.ProcessID(1); int(q) <= e.ctx.N(); q++ {
		f := e.peerFrontier[q]
		if f == 0 {
			return 0
		}
		if b == 0 || f < b {
			b = f
		}
	}
	return b
}

// minFrontier is the minimum announced durable frontier over the given
// member set (0 if any member has not announced one).
func (e *Engine) minFrontier(members []stack.ProcessID) uint64 {
	b := uint64(0)
	for _, q := range members {
		f := e.peerFrontier[q]
		if f == 0 {
			return 0
		}
		if b == 0 || f < b {
			b = f
		}
	}
	return b
}

// maybePrune drops the delivered prefix below the prune boundary: payloads
// leave the received map, entries leave the delivered log (logBase advances
// by the count), and the consensus relay floor rises so lagging peers route
// to the snapshot path rather than a replay naming pruned payloads.
func (e *Engine) maybePrune() {
	b := e.pruneBoundary()
	if b <= e.prunedTo {
		return
	}
	e.prunedTo = b
	idx := 0
	for idx < len(e.deliveredLog) && e.deliveredLog[idx].k < b {
		delete(e.received, e.deliveredLog[idx].id)
		idx++
	}
	if idx == 0 {
		return
	}
	// Reallocate rather than re-slice: a re-slice would pin the pruned
	// prefix in the backing array, defeating the point.
	e.deliveredLog = append([]ordRec(nil), e.deliveredLog[idx:]...)
	e.logBase += uint64(idx)
	e.prunes.Inc()
	e.cons.RaiseFloor(b)
}

// PersistStats reports persistence counters for tests and diagnostics:
// checkpoints saved, prune rounds applied, and store errors surfaced.
func (e *Engine) PersistStats() (ckpts, prunes, errs int) {
	return int(e.ckpts.Value()), int(e.prunes.Value()), int(e.persistErrs.Value())
}

var _ stack.Message = FrontierMsg{}
