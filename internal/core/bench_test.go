package core

// Hot-path microbenchmark: per-message cost of fully-ordered delivery
// through the whole engine — broadcast, identifier bookkeeping, indirect
// consensus, deterministic delivery — on a loss-free 3-process world.

import (
	"testing"
	"time"

	"abcast/internal/netmodel"
	"abcast/internal/stack"
)

// BenchmarkEngineOrderedDelivery atomically broadcasts b.N messages from
// rotating senders and reports the cost per message delivered in total
// order at all three processes.
func BenchmarkEngineOrderedDelivery(b *testing.B) {
	c := newClusterQuick(3, VariantIndirectCT, netmodel.Setup1(), 11)
	const gap = 2 * time.Millisecond
	payload := make([]byte, 256)
	for i := 0; i < b.N; i++ {
		p := stack.ProcessID(i%3 + 1)
		at := time.Duration(i) * gap
		c.w.After(p, at, func() { c.engines[p].ABroadcast(payload) })
	}
	b.ReportAllocs()
	b.ResetTimer()
	c.w.RunFor(time.Duration(b.N)*gap + 5*time.Second)
	b.StopTimer()
	for p := 1; p <= 3; p++ {
		if got := len(c.delivered[p]); got != b.N {
			b.Fatalf("p%d delivered %d/%d", p, got, b.N)
		}
	}
}
