package core

// Property tests of snapshot state transfer (RecoverConfig.Snapshot): a
// drop-partitioned minority that falls behind by more consensus instances
// than the decide-relay's decision log retains is beyond every replay-based
// repair — the decisions it needs first are evicted, and its own instances
// find no quorum once the rest of the system has pruned them. The tests pin
// both sides of that contract:
//
//   - with snapshots enabled, such a minority is shipped the delivered
//     prefix, atomically advanced past the gap, and reaches full delivery
//     in total order — the paper's guarantees hold for arbitrarily deep
//     outages;
//   - with snapshots disabled (relay-only recovery), the same schedule
//     provably cannot close the gap: safety holds everywhere and the
//     majority delivers everything, but the minority stays pinned behind
//     the log floor forever.

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/consensus"
	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
	"abcast/internal/relink"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// deepLagCfg is the regime every deep-lag test runs in: per-instance work
// capped so the majority burns through many instances during the cut, a
// 4-instance decision log so those instances fall off the relay's horizon,
// and 8-entry retransmission buffers so eviction destroys the replay window.
func deepLagCfg(snapshot bool, mutate ...func(*RecoverConfig)) func(*Config) {
	return func(cfg *Config) {
		cfg.MaxBatch = 2
		rc := &RecoverConfig{
			Link:           relink.Config{BufferCap: 8},
			DecisionLogCap: 4,
			Snapshot:       snapshot,
		}
		for _, m := range mutate {
			m(rc)
		}
		cfg.Recover = rc
	}
}

// deepLagRun drives one drop-mode minority partition deep enough that the
// minority ends up behind by more than the decision log: n=3, process 3 cut
// off for a full second while the majority orders a long message backlog
// two identifiers at a time.
func deepLagRun(t *testing.T, seed int64, pipeline bool, mutate ...func(*Config)) (c *cluster, sent []msg.ID, majoritySent []msg.ID) {
	t.Helper()
	const n = 3
	var opts []func(*Config)
	if pipeline {
		opts = append(opts, func(cfg *Config) { cfg.Pipeline = 3 })
	}
	opts = append(opts, mutate...)
	c = newCluster(t, n, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), seed, opts...)

	// No loss at every decision instant (nobody crashes, so every process
	// counts as correct and at least one holder must exist).
	var violations []string
	for i := 1; i <= n; i++ {
		i := i
		eng := c.engines[i]
		eng.cfg.OnDecision = func(k uint64, v consensus.Value) {
			ids := idsOfValue(v)
			if len(ids) == 0 {
				return
			}
			holders := 0
			for q := 1; q <= n; q++ {
				all := true
				for _, id := range ids {
					if !c.engines[q].HasReceived(id) {
						all = false
						break
					}
				}
				if all {
					holders++
				}
			}
			if holders == 0 {
				violations = append(violations,
					fmt.Sprintf("p%d k=%d ids=%v: no holder", i, k, ids))
			}
		}
	}
	t.Cleanup(func() {
		if len(violations) > 0 {
			t.Errorf("No loss violated: %v", violations)
		}
	})

	// 20 messages per process, jittered per seed across 0-1.5 s; the cut
	// (0.3-1.3 s) straddles most of the schedule, so the majority decides
	// far more instances during the episode than the 4-entry log retains.
	const cutAt, healAt = 300 * time.Millisecond, 1300 * time.Millisecond
	for i := 1; i <= n; i++ {
		p := stack.ProcessID(i)
		for s := 0; s < 20; s++ {
			at := time.Duration((int(seed)*31+i*17+s*71)%1500) * time.Millisecond
			c.abcast(p, at, fmt.Sprintf("m-%d-%d", i, s))
			id := msg.ID{Sender: p, Seq: uint64(s + 1)}
			sent = append(sent, id)
			if i != n {
				majoritySent = append(majoritySent, id)
			}
		}
	}
	c.w.After(1, cutAt, func() { c.w.Partition(simnet.PartitionDrop, []stack.ProcessID{n}) })
	c.w.After(1, healAt, func() { c.w.Heal() })
	c.w.RunFor(40 * time.Second)
	return c, sent, majoritySent
}

// TestDeepLagSnapshotCatchUp: with snapshots enabled, a minority cut off
// (drop mode) for more than DecisionLogCap instances converges to identical
// delivered sequences on all correct processes — full delivery, total order,
// integrity, No loss — and the run must actually have exercised the deep-lag
// machinery (detections at the majority, snapshots served and installed).
func TestDeepLagSnapshotCatchUp(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		pipeline := seed%2 == 0
		t.Run(fmt.Sprintf("seed=%d/pipeline=%v", seed, pipeline), func(t *testing.T) {
			c, sent, _ := deepLagRun(t, seed, pipeline, deepLagCfg(true))
			all := procs(1, 2, 3)
			c.checkTotalOrder(t, all)
			c.checkIntegrity(t, all)
			// The headline: full delivery everywhere despite a lag deeper
			// than any replay path can cover.
			c.checkDelivers(t, all, sent)

			deep, served := 0, 0
			for p := 1; p <= 2; p++ {
				deep += c.engines[p].cons.DeepLagCount()
				s, _ := c.engines[p].SnapshotStats()
				served += s
			}
			_, installed := c.engines[3].SnapshotStats()
			if deep == 0 {
				t.Fatalf("no deep-lag detection at the majority; the scenario did not leave the relay's horizon")
			}
			if served == 0 || installed == 0 {
				t.Fatalf("snapshot machinery unused (served=%d installed=%d); catch-up happened some other way", served, installed)
			}
		})
	}
}

// TestDeepLagRelayOnlyCannotCatchUp pins the negative: under the exact same
// schedule with snapshots disabled, relay-only recovery cannot close a gap
// below the decision-log floor. Safety (total order, integrity, No loss)
// and majority liveness hold, but the minority stays pinned behind the
// floor with messages it can never deliver.
func TestDeepLagRelayOnlyCannotCatchUp(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		pipeline := seed%2 == 0
		t.Run(fmt.Sprintf("seed=%d/pipeline=%v", seed, pipeline), func(t *testing.T) {
			c, sent, majoritySent := deepLagRun(t, seed, pipeline, deepLagCfg(false))
			all := procs(1, 2, 3)
			c.checkTotalOrder(t, all)
			c.checkIntegrity(t, all)
			// Majority-side liveness is untouched.
			c.checkDelivers(t, procs(1, 2), majoritySent)
			// The minority is structurally stuck: its next-expected instance
			// sits below the floor of every decision log that could help.
			floor := c.engines[1].cons.LogFloor()
			if got := c.engines[3].kNext; got >= floor {
				t.Fatalf("minority kNext=%d not below relay floor %d; scenario not deep enough", got, floor)
			}
			if got := len(c.delivered[3]); got >= len(sent) {
				t.Fatalf("minority delivered %d/%d messages without snapshots; relay-only should not close a deep gap",
					got, len(sent))
			}
		})
	}
}

// TestSnapshotMultiRoundChunkedTransfer forces the bounded-transfer paths:
// with SnapshotMax=4 the gap takes several offer/accept rounds (each
// truncated at an instance boundary, re-requested by the installer), and
// with SnapshotChunk=2 every round is split into multiple chunk messages.
// Catch-up must still converge to full delivery, and the installer must
// have applied several rounds.
func TestSnapshotMultiRoundChunkedTransfer(t *testing.T) {
	bound := func(rc *RecoverConfig) {
		rc.SnapshotMax = 4
		rc.SnapshotChunk = 2
	}
	c, sent, _ := deepLagRun(t, 2, true, deepLagCfg(true, bound))
	all := procs(1, 2, 3)
	c.checkTotalOrder(t, all)
	c.checkIntegrity(t, all)
	c.checkDelivers(t, all, sent)
	_, installed := c.engines[3].SnapshotStats()
	if installed < 2 {
		t.Fatalf("installed %d snapshot rounds, want ≥ 2 (SnapshotMax must force multi-round transfer)", installed)
	}
}

// TestSnapshotOfferIgnoredWhenCurrent: an engine that is not behind the
// offered boundary must ignore the offer outright — no accept, no transfer
// state, no catch-up target.
func TestSnapshotOfferIgnoredWhenCurrent(t *testing.T) {
	c, sent, _ := deepLagRun(t, 1, false, deepLagCfg(true))
	c.checkDelivers(t, procs(1, 2, 3), sent)
	eng := c.engines[1]
	kNext := eng.kNext
	c.w.After(1, time.Millisecond, func() {
		eng.onSnapOffer(2, SnapOfferMsg{Boundary: kNext})
	})
	c.w.RunFor(time.Second)
	if eng.snapFrom != 0 || eng.kNext < eng.snapTarget {
		t.Fatalf("stale offer accepted: snapFrom=%d target=%d kNext=%d", eng.snapFrom, eng.snapTarget, eng.kNext)
	}
}
