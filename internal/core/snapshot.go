package core

// Snapshot state transfer: deep catch-up beyond the decide-relay's horizon.
//
// The recovery subsystem of recovery.go repairs bounded loss: relink replays
// envelopes its buffers still hold, and the consensus decide-relay replays
// decisions its bounded log still retains. A peer behind by more than
// DecisionLogCap consensus instances falls off that horizon — the decisions
// it needs first are evicted everywhere, relaying the logged tail only parks
// it in the peer's pending set, and a minority process cannot decide the gap
// instances itself (no quorum will join instances the rest of the system has
// pruned). Without more machinery, such a peer is behind for good.
//
// This file is the Raft-snapshot analogue that closes the gap: instead of
// replaying every decision, a current process ships the lagging peer its
// *delivered prefix* (the decided identifier sequence with payloads, which
// by uniform total order is identical at every correct process) plus the
// engine state needed to resume — the next-expected serial and the decided
// ids still awaiting payloads. The flow, all over stack.ProtoSnapshot:
//
//	lagging peer                         current peer
//	  │  stale traffic / SyncReqMsg  ───▶  consensus.Config.OnDeepLag fires
//	  │                                    (requested serial < log floor)
//	  │  ◀────────────  SnapOfferMsg{boundary, entries}
//	  │  SnapAcceptMsg{delivered} ───▶     (how much prefix I already have)
//	  │  ◀────────────  SnapChunkMsg × n   (bounded chunks, one round
//	  │                                     truncated at SnapshotMax entries,
//	  │                                     always on an instance boundary)
//	  ▼  install: atomically advance kNext past the snapshot boundary,
//	     reconcile in-flight proposals / pending decisions / unordered ids,
//	     deliver the prefix, then let relay + fetch finish the tail.
//
// The offer/accept round trip exists because the producer does not know how
// much prefix the peer already delivered; the accept names the position to
// stream from, so a snapshot never re-ships what the peer holds. Transfers
// are bounded twice over: each chunk carries at most SnapshotChunk entries,
// and each round at most SnapshotMax — a deeper gap is closed over several
// rounds (More flag), each re-requested by the installer, so neither side
// ever buffers an unbounded transfer. Lost offers, accepts, or chunks are
// all survivable: the installer keeps the engine's sync-request timer armed
// until it has reached every serial an offer promised (Engine.snapTarget),
// and each re-request eventually produces a fresh offer.
//
// Installation is atomic with respect to the protocol: it runs inside one
// event-loop callback, so no consensus or broadcast event can observe a
// half-advanced engine. Total order is preserved by construction — the
// installed prefix is the decided sequence itself, and the engine's own
// delivered sequence is a prefix of it (uniform total order), so appending
// the remainder cannot reorder anything.

import (
	"time"

	"abcast/internal/msg"
	"abcast/internal/stack"
	"abcast/internal/trace"
)

// Snapshot transfer defaults.
const (
	// DefaultSnapshotChunk is the default cap on entries per SnapChunkMsg.
	DefaultSnapshotChunk = 256
	// DefaultSnapshotMax is the default cap on entries per snapshot round;
	// deeper gaps take several offer/accept rounds.
	DefaultSnapshotMax = 2048
)

// SnapOfferMsg tells a deeply lagged peer that the sender can snapshot it
// forward to Boundary, the sender's next-expected consensus serial. Sent
// (rate-limited by the decide-relay cooldown) instead of a decision replay
// the peer could not use.
type SnapOfferMsg struct {
	Boundary uint64
}

// WireSize implements stack.Message.
func (m SnapOfferMsg) WireSize() int { return 9 }

// SnapAcceptMsg accepts an offer: Delivered is the acceptor's delivered
// count, i.e. the position in the common decided sequence to stream from.
type SnapAcceptMsg struct {
	Delivered uint64
}

// WireSize implements stack.Message.
func (m SnapAcceptMsg) WireSize() int { return 9 }

// SnapEntry is one element of the transferred decided sequence: an
// identifier, the consensus instance that ordered it, and the payload if the
// producer holds it (Missing marks the producer's own blocked tail — the
// installer fetches those by identifier like any other ordered-but-missing
// payload).
type SnapEntry struct {
	ID      msg.ID
	K       uint64
	Missing bool
	Payload []byte
	// Cfg carries the configuration change when the entry's message was a
	// membership change: the installer replays the view log by re-delivering
	// these in order, so a joiner's quorum view converges with the group's.
	Cfg *msg.ConfigChange
}

// wireSize is the entry's wire footprint (id + serial + missing flag +
// payload + optional config change).
func (en SnapEntry) wireSize() int {
	n := msg.IDWireBytes + 9 + len(en.Payload)
	if en.Cfg != nil {
		n += 8
	}
	return n
}

// SnapChunkMsg carries one bounded slice of a snapshot transfer. All chunks
// of one transfer share (Boundary, Start, Total); Seq orders them. More
// marks a round truncated at the producer's SnapshotMax — the installer
// re-requests after installing, and the next round continues from its new
// delivered count.
type SnapChunkMsg struct {
	Boundary uint64 // serial the complete set advances the installer to
	Start    uint64 // decided-sequence position of the transfer's first entry
	Seq      int    // chunk index within the transfer
	Total    int    // chunk count of the transfer
	More     bool   // truncated round: more state remains beyond Boundary
	Entries  []SnapEntry
}

// WireSize implements stack.Message.
func (m SnapChunkMsg) WireSize() int {
	size := 2 + 8 + 8 + 4 + 4 + 1
	for _, en := range m.Entries {
		size += en.wireSize()
	}
	return size
}

// snapshotEnabled reports whether snapshot state transfer is configured.
func (e *Engine) snapshotEnabled() bool {
	return e.cfg.Recover != nil && e.cfg.Recover.Snapshot
}

// snapshotChunk returns the configured entries-per-chunk cap.
func (e *Engine) snapshotChunk() int {
	if c := e.cfg.Recover.SnapshotChunk; c > 0 {
		return c
	}
	return DefaultSnapshotChunk
}

// snapshotMax returns the configured entries-per-round cap.
func (e *Engine) snapshotMax() int {
	if c := e.cfg.Recover.SnapshotMax; c > 0 {
		return c
	}
	return DefaultSnapshotMax
}

// snapStallDelay is how long an accepted transfer may sit incomplete before
// a competing offer is allowed to restart it.
func (e *Engine) snapStallDelay() time.Duration { return 4 * e.fetchDelay() }

// SnapshotStats reports snapshot counters for tests and diagnostics: rounds
// served to lagging peers, and rounds installed locally.
func (e *Engine) SnapshotStats() (served, installed int) {
	return int(e.snapsServed.Value()), int(e.snapsDone.Value())
}

// onDeepLag is the consensus.Config.OnDeepLag callback: peer q revealed
// itself behind the decision log's floor, so no relay can catch it up —
// offer a snapshot instead. The callback shares the relay's per-peer
// cooldown, which rate-limits offers too.
func (e *Engine) onDeepLag(q stack.ProcessID, _ uint64) {
	if q == e.ctx.ID() {
		return
	}
	e.snap.Send(q, 0, SnapOfferMsg{Boundary: e.kNext})
}

// onSnapshot handles snapshot transfer traffic (stack.ProtoSnapshot).
func (e *Engine) onSnapshot(from stack.ProcessID, _ uint64, m stack.Message) {
	switch mm := m.(type) {
	case SnapOfferMsg:
		e.onSnapOffer(from, mm)
	case SnapAcceptMsg:
		e.serveSnapshot(from, mm.Delivered)
	case SnapChunkMsg:
		e.onSnapChunk(from, mm)
	}
}

// onSnapOffer accepts a snapshot offer if this engine is actually behind the
// offered boundary and no healthy transfer is already in progress. Accepting
// names the delivered count, so the producer streams only the missing
// suffix.
func (e *Engine) onSnapOffer(from stack.ProcessID, m SnapOfferMsg) {
	if m.Boundary <= e.kNext {
		return // not behind this producer (or not anymore)
	}
	if e.snapFrom != 0 && e.ctx.Now().Sub(e.snapStarted) < e.snapStallDelay() {
		return // a transfer is in progress and not stalled; ignore competing offers
	}
	e.resetTransfer()
	e.snapFrom = from
	e.snapStarted = e.ctx.Now()
	if m.Boundary > e.snapTarget {
		// Stay in catch-up (sync requests keep firing) until kNext reaches
		// the promised serial, no matter which repair path gets it there.
		e.snapTarget = m.Boundary
	}
	e.snap.Send(from, 0, SnapAcceptMsg{Delivered: e.logBase + uint64(len(e.deliveredLog))})
	e.armSyncReq()
}

// serveSnapshot streams one bounded snapshot round to q: the decided
// sequence from position `from`, truncated at an instance boundary once
// SnapshotMax entries are exceeded, split into SnapshotChunk-sized chunks.
func (e *Engine) serveSnapshot(q stack.ProcessID, from uint64) {
	total := e.logBase + uint64(len(e.deliveredLog)+len(e.ordered))
	if q == e.ctx.ID() || from >= total {
		return // nothing to transfer (the peer caught up some other way)
	}
	if from < e.logBase {
		// The prefix below logBase is pruned: only a fresh joiner can be
		// this far back (every member's durable frontier passed the prune
		// boundary), and a joiner jump-starts at the base — the pruned
		// prefix is checkpointed by everyone and needed by no one.
		from = e.logBase
	}
	maxEntries := e.snapshotMax()
	boundary := e.kNext
	more := false
	recs := make([]ordRec, 0, min(total-from, uint64(maxEntries)+1))
	for i := from; i < total; i++ {
		r := e.decidedAt(i)
		if len(recs) >= maxEntries && r.k != recs[len(recs)-1].k {
			// Truncate, but only at an instance boundary: the installer may
			// advance kNext only past instances whose identifiers it holds
			// in full.
			boundary = recs[len(recs)-1].k + 1
			more = true
			break
		}
		recs = append(recs, r)
	}
	entries := make([]SnapEntry, len(recs))
	for i, r := range recs {
		en := SnapEntry{ID: r.id, K: r.k}
		if app := e.received[r.id]; app != nil {
			en.Payload = app.Payload
			en.Cfg = app.Config
		} else {
			en.Missing = true // our own blocked tail; the installer fetches it
		}
		entries[i] = en
	}
	chunk := e.snapshotChunk()
	totalChunks := (len(entries) + chunk - 1) / chunk
	for i := 0; i < totalChunks; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > len(entries) {
			hi = len(entries)
		}
		e.snap.Send(q, 0, SnapChunkMsg{
			Boundary: boundary,
			Start:    from,
			Seq:      i,
			Total:    totalChunks,
			More:     more,
			Entries:  entries[lo:hi],
		})
	}
	e.snapsServed.Inc()
}

// decidedAt returns the element at absolute position i of this engine's
// decided sequence: the retained delivered log (which starts at position
// logBase; callers never index below it) followed by the
// ordered-but-undelivered tail.
func (e *Engine) decidedAt(i uint64) ordRec {
	i -= e.logBase
	if i < uint64(len(e.deliveredLog)) {
		return e.deliveredLog[i]
	}
	return e.ordered[i-uint64(len(e.deliveredLog))]
}

// onSnapChunk collects transfer chunks and installs once the set is
// complete. The first chunk fixes the transfer header; chunks of a
// superseded transfer (different header) are dropped.
func (e *Engine) onSnapChunk(from stack.ProcessID, m SnapChunkMsg) {
	if from != e.snapFrom {
		return // not the producer we accepted from
	}
	if m.Boundary <= e.kNext {
		e.resetTransfer() // we advanced past this transfer in the meantime
		return
	}
	if e.snapChunks == nil {
		if m.Start > e.logBase+uint64(len(e.deliveredLog)) && len(e.deliveredLog) > 0 {
			// Gap before the transfer start; wait for a fresh offer. An
			// engine with no retained log may accept a start beyond its
			// count — the joiner jump of installSnapshot (a member's count
			// is always ≥ every producer's logBase, so for members the gap
			// check is exactly the pre-persistence one).
			return
		}
		e.snapBoundary, e.snapStart, e.snapTotal, e.snapMore = m.Boundary, m.Start, m.Total, m.More
		e.snapChunks = make(map[int][]SnapEntry, m.Total)
	} else if m.Boundary != e.snapBoundary || m.Start != e.snapStart || m.Total != e.snapTotal {
		return // chunk of a superseded transfer
	}
	if m.Seq < 0 || m.Seq >= e.snapTotal {
		return
	}
	if _, dup := e.snapChunks[m.Seq]; dup {
		return
	}
	e.snapChunks[m.Seq] = m.Entries
	if len(e.snapChunks) < e.snapTotal {
		return
	}
	entries := make([]SnapEntry, 0, e.snapTotal*len(m.Entries))
	for i := 0; i < e.snapTotal; i++ {
		entries = append(entries, e.snapChunks[i]...)
	}
	producer, boundary, start, more := e.snapFrom, e.snapBoundary, e.snapStart, e.snapMore
	e.resetTransfer()
	e.installSnapshot(producer, boundary, start, entries, more)
}

// resetTransfer discards the in-progress transfer state (not the catch-up
// target: needsSync keeps the engine asking until kNext reaches it).
func (e *Engine) resetTransfer() {
	e.snapFrom = 0
	e.snapStarted = time.Time{}
	e.snapBoundary, e.snapStart, e.snapTotal, e.snapMore = 0, 0, 0, false
	e.snapChunks = nil
}

// installSnapshot atomically advances the engine past the snapshot boundary:
// the transferred decided suffix replaces the local ordered queue (by
// uniform total order they agree on the overlap, and the snapshot also
// covers the gap), stale proposals and pending decisions below the boundary
// are reconciled, the prefix is delivered, and the normal relay/fetch
// machinery is left to finish the tail.
func (e *Engine) installSnapshot(producer stack.ProcessID, boundary, start uint64, entries []SnapEntry, more bool) {
	delivered := e.logBase + uint64(len(e.deliveredLog))
	if boundary <= e.kNext {
		return
	}
	if start > delivered {
		if len(e.deliveredLog) > 0 {
			return
		}
		// Fresh joiner behind the group's prune boundary: the prefix below
		// start is checkpointed by every member and pruned group-wide, so
		// the transfer legitimately begins at the producer's log base.
		// Adopt it — the joiner's application then observes the suffix
		// only, like any replica bootstrapped from a snapshot.
		e.logBase = start
		delivered = start
	}
	// Skip what this engine delivered since the accept (defensive: during a
	// deep lag the prefix cannot normally grow mid-transfer).
	skip := delivered - start
	if skip > uint64(len(entries)) {
		skip = uint64(len(entries))
	}
	entries = entries[skip:]

	// Rebuild the ordered queue from the snapshot's decided suffix.
	for _, rec := range e.ordered {
		delete(e.inOrdered, rec.id)
	}
	e.ordered = e.ordered[:0]
	for _, en := range entries {
		if e.isDelivered(en.ID) {
			continue
		}
		if !en.Missing && e.received[en.ID] == nil {
			e.received[en.ID] = &msg.App{ID: en.ID, Payload: en.Payload, Config: en.Cfg}
			e.tr.Record(trace.Event{At: e.ctx.Now(), P: e.ctx.ID(), Kind: trace.KindReceive, ID: en.ID})
			delete(e.wanted, en.ID)
		}
		e.unordered.Remove(en.ID)
		delete(e.unorderedSince, en.ID)
		if !e.inOrdered[en.ID] {
			e.ordered = append(e.ordered, ordRec{id: en.ID, k: en.K})
			e.inOrdered[en.ID] = true
			e.tr.Record(trace.Event{At: e.ctx.Now(), P: e.ctx.ID(), Kind: trace.KindOrdered, ID: en.ID, K: en.K})
		}
	}

	// Advance past the boundary. Instances below it are settled by the
	// snapshot: our outstanding proposals to them are moot (their unordered
	// identifiers, unclaimed again, will be re-proposed to live instances),
	// and pending decisions below it are subsumed.
	e.kNext = boundary
	for k, batch := range e.inFlight {
		if k < boundary {
			delete(e.inFlight, k)
			for _, id := range batch.IDs() {
				delete(e.claimed, id)
			}
		}
	}
	for k := range e.pending {
		if k < boundary {
			delete(e.pending, k)
		}
	}
	for k := range e.needed {
		if k < boundary {
			delete(e.needed, k)
		}
	}
	if e.kPropose < e.kNext {
		e.kPropose = e.kNext
	}
	e.snapsDone.Inc()
	e.tr.Record(trace.Event{At: e.ctx.Now(), P: e.ctx.ID(), Kind: trace.KindSnapInstall, K: boundary, Peer: producer, N: len(entries)})

	// Decisions already held at/after the boundary are now contiguous with
	// it; consume them, release the settled consensus state, and deliver
	// everything whose payload came with the transfer.
	e.consumePending()
	e.cons.PruneBelow(e.kNext)
	e.tryDeliver()
	if more {
		// The round was truncated at the producer's cap: accept the next
		// one directly. Going back through SyncReq → OnDeepLag would both
		// wait out the sync timer and risk the producer's relay cooldown
		// swallowing the re-request; a fresh accept streams immediately,
		// and the sync timer remains the backstop if it is lost.
		e.snap.Send(producer, 0, SnapAcceptMsg{Delivered: e.logBase + uint64(len(e.deliveredLog))})
	}
	e.armFetch()
	e.armSyncReq()
	e.maybePropose()
}

var (
	_ stack.Message = SnapOfferMsg{}
	_ stack.Message = SnapAcceptMsg{}
	_ stack.Message = SnapChunkMsg{}
)
