package core

import (
	"testing"
	"time"

	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/rbcast"
	"abcast/internal/simnet"
	"abcast/internal/stack"

	"abcast/internal/netmodel"
)

func mkApp(s, q int, size int) *msg.App {
	return &msg.App{
		ID:      msg.ID{Sender: stack.ProcessID(s), Seq: uint64(q)},
		Payload: make([]byte, size),
	}
}

func TestIDSetValueDecoupledFromPayload(t *testing.T) {
	// The motivating property: identifier values do not grow with message
	// size.
	small := IDSetValue{Set: msg.NewIDSet(mkApp(1, 1, 1).ID)}
	big := IDSetValue{Set: msg.NewIDSet(mkApp(1, 1, 1_000_000).ID)}
	if small.WireSize() != big.WireSize() {
		t.Fatalf("id value size depends on payload: %d vs %d", small.WireSize(), big.WireSize())
	}
}

func TestMsgSetValueCarriesPayload(t *testing.T) {
	v := NewMsgSetValue([]*msg.App{mkApp(1, 1, 5000)})
	if v.WireSize() < 5000 {
		t.Fatalf("message value too small: %d", v.WireSize())
	}
}

func TestMsgSetValueSortsByID(t *testing.T) {
	v := NewMsgSetValue([]*msg.App{mkApp(3, 1, 0), mkApp(1, 2, 0), mkApp(1, 1, 0)})
	ids := v.IDs()
	want := []msg.ID{{Sender: 1, Seq: 1}, {Sender: 1, Seq: 2}, {Sender: 3, Seq: 1}}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestValueKeysAgreeAcrossRepresentations(t *testing.T) {
	apps := []*msg.App{mkApp(2, 2, 10), mkApp(1, 1, 10)}
	mv := NewMsgSetValue(apps)
	iv := IDSetValue{Set: msg.NewIDSet(apps[0].ID, apps[1].ID)}
	if mv.Key() != iv.Key() {
		t.Fatal("the id-set and message-set encodings of the same set disagree on Key")
	}
}

func TestIdsOfValue(t *testing.T) {
	apps := []*msg.App{mkApp(1, 1, 0), mkApp(2, 1, 0)}
	if got := idsOfValue(NewMsgSetValue(apps)); len(got) != 2 {
		t.Fatalf("idsOfValue(MsgSet) = %v", got)
	}
	iv := IDSetValue{Set: msg.NewIDSet(apps[0].ID)}
	if got := idsOfValue(iv); len(got) != 1 || got[0] != apps[0].ID {
		t.Fatalf("idsOfValue(IDSet) = %v", got)
	}
	if got := idsOfValue(nil); got != nil {
		t.Fatalf("idsOfValue(nil) = %v", got)
	}
}

func TestConfigValidationCore(t *testing.T) {
	w := simnet.NewWorld(1, netmodel.Instant(), 1)
	if _, err := New(w.Node(1), Config{}); err == nil {
		t.Error("nil Deliver accepted")
	}
	if _, err := New(w.Node(1), Config{Deliver: func(*msg.App) {}}); err == nil {
		t.Error("nil detector accepted")
	}
}

// TestMaxBatchOneInstancePerMessage pins the batching knob: with MaxBatch=1
// each consensus instance orders exactly one message.
func TestMaxBatchOneInstancePerMessage(t *testing.T) {
	n := 3
	w := simnet.NewWorld(n, netmodel.Setup1(), 5)
	engines := make([]*Engine, n+1)
	deliveredTotal := 0
	for i := 1; i <= n; i++ {
		node := w.Node(stack.ProcessID(i))
		det := fd.NewHeartbeat(node, fd.DefaultConfig())
		eng, err := New(node, Config{
			Variant:  VariantIndirectCT,
			RB:       rbcast.KindEager,
			Detector: det,
			MaxBatch: 1,
			Deliver: func(*msg.App) {
				deliveredTotal++
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[i] = eng
	}
	const total = 12
	for s := 0; s < total; s++ {
		p := stack.ProcessID(s%n + 1)
		at := time.Duration(s) * 300 * time.Microsecond
		w.After(p, at, func() { engines[p].ABroadcast([]byte("x")) })
	}
	w.RunFor(30 * time.Second)
	st := engines[1].Stats()
	if st.Delivered != total {
		t.Fatalf("delivered %d/%d", st.Delivered, total)
	}
	if st.Instances != total {
		t.Fatalf("MaxBatch=1 ran %d instances for %d messages", st.Instances, total)
	}
}
