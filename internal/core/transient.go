package core

import "abcast/internal/msg"

// Transient-fault injection (tests only).
//
// SSABC-style self-stabilization work asks what happens when a process's
// *volatile* protocol state is scrambled by a transient fault — a bit flip,
// a bug, a partial restart — while the process itself keeps running. The
// engine's recovery machinery (decision relay, payload fetch, snapshot
// transfer) was built for processes that fell behind; CorruptVolatile lets
// the property tests in abcast_test prove the same machinery re-converges a
// process whose queues around kNext were wiped outright, provided ordering
// activity continues: the next decision that reaches the victim lands in its
// pending set above the hole, needsSync fires, and the standard
// relay/fetch/snapshot chain rebuilds everything below.

// CorruptVolatile simulates a transient fault at this process: every
// volatile queue adjacent to the consumption frontier kNext is dropped —
// received payloads not yet delivered, the unordered pool, the
// ordered-but-undelivered queue, outstanding proposal bookkeeping, buffered
// decisions, and the consensus layer's settled-instance memory at/after
// kNext (without which relayed decisions would be swallowed as duplicates
// and the hole could never refill). The durable facts survive untouched:
// kNext itself, the delivered set and log, and the sender sequence number
// (reusing sequence numbers would forge duplicate identifiers, which no
// recovery machinery could ever repair).
//
// Sim/test hook only: it is not part of the public API surface and is never
// called by the engine itself.
//
//abcheck:entry test hook; tests invoke it on the owning event loop (simnet.World.Do)
func (e *Engine) CorruptVolatile() {
	// Payloads that were received but not yet delivered vanish: both the
	// ordered-but-undelivered head and the unordered pool. Deleting while
	// ranging is safe (commutative), and the delivered prefix stays.
	for _, rec := range e.ordered {
		delete(e.received, rec.id)
		delete(e.inOrdered, rec.id)
	}
	e.ordered = e.ordered[:0]
	for _, id := range e.unordered.IDs() {
		delete(e.received, id)
	}
	e.unordered = msg.NewIDSet()
	for id := range e.unorderedSince {
		delete(e.unorderedSince, id)
	}

	// Proposal and consumption bookkeeping around kNext.
	for k := range e.inFlight {
		delete(e.inFlight, k)
	}
	for id := range e.claimed {
		delete(e.claimed, id)
	}
	for k := range e.needed {
		delete(e.needed, k)
	}
	for k := range e.pending {
		delete(e.pending, k)
	}
	for k := range e.proposedAt {
		delete(e.proposedAt, k)
	}
	for id := range e.wanted {
		delete(e.wanted, id)
	}

	// The consensus layer's memory of settled instances at/after kNext must
	// go with the queues: its decide-path dedup would otherwise drop the
	// relayed decisions that are the only way to refill pending.
	e.cons.ForgetDecided(e.kNext)

	// An in-progress snapshot transfer is volatile too.
	e.resetTransfer()
}
