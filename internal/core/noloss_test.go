package core

// Tests of the paper's No loss property (Section 2.3) and of the
// v-valence ⇒ v-stability theorem behind it (Section 3.1), checked as a
// runtime invariant: at the instant any process learns a decision v, the
// messages msgs(v) must be held by at least one process that never crashes
// in the run — and, for v-stability, by at least f+1 processes where f is
// the stack's tolerated failure count.
//
// The faulty stack serves as the negative control: under the Section 2.2
// schedule its decisions violate the invariant, which shows the checker
// actually detects violations.

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/consensus"
	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// nolossHarness runs a cluster with decision instrumentation.
type nolossHarness struct {
	w       *simnet.World
	engines []*Engine
	// willCrash marks processes that crash at some point in the run; a
	// "correct" process in the paper's sense is one that never crashes.
	willCrash map[stack.ProcessID]bool
	// violations collects decisions that were not held by any correct
	// process / by f+1 processes at decision time.
	nolossViolations  []string
	stabilityShortage []string
	f                 int // stability threshold f (tolerated failures)
}

func newNolossHarness(t *testing.T, n int, variant Variant, seed int64, willCrash map[stack.ProcessID]bool, f int, mutate ...func(*Config)) *nolossHarness {
	t.Helper()
	h := &nolossHarness{
		w:         simnet.NewWorld(n, netmodel.Setup1(), seed),
		engines:   make([]*Engine, n+1),
		willCrash: willCrash,
		f:         f,
	}
	for i := 1; i <= n; i++ {
		node := h.w.Node(stack.ProcessID(i))
		det := fd.NewHeartbeat(node, fd.DefaultConfig())
		cfg := Config{
			Variant:  variant,
			RB:       rbcast.KindEager,
			Detector: det,
			Deliver:  func(*msg.App) {},
			OnDecision: func(k uint64, v consensus.Value) {
				h.checkDecision(k, v)
			},
		}
		for _, m := range mutate {
			m(&cfg)
		}
		eng, err := New(node, cfg)
		if err != nil {
			t.Fatalf("New(p%d): %v", i, err)
		}
		h.engines[i] = eng
	}
	return h
}

// checkDecision evaluates the invariant at a decision instant. It runs
// inside the (single-threaded) simulation, so cross-engine reads observe
// exactly the decision-time state.
func (h *nolossHarness) checkDecision(k uint64, v consensus.Value) {
	ids := idsOfValue(v)
	if _, isMsgs := v.(MsgSetValue); isMsgs || len(ids) == 0 {
		// Consensus on messages carries the payloads in the decision:
		// No loss is trivial. Empty decisions have nothing to lose.
		return
	}
	holders, correctHolders := 0, 0
	for q := 1; q < len(h.engines); q++ {
		all := true
		for _, id := range ids {
			if !h.engines[q].HasReceived(id) {
				all = false
				break
			}
		}
		if all {
			holders++
			if !h.willCrash[stack.ProcessID(q)] {
				correctHolders++
			}
		}
	}
	if correctHolders == 0 {
		h.nolossViolations = append(h.nolossViolations,
			fmt.Sprintf("k=%d ids=%v no correct holder", k, ids))
	}
	if holders < h.f+1 {
		h.stabilityShortage = append(h.stabilityShortage,
			fmt.Sprintf("k=%d ids=%v holders=%d < f+1=%d", k, ids, holders, h.f+1))
	}
}

// TestNoLossInvariantHolds runs the correct id-based stacks under load with
// a crash and asserts the invariant at every decision instant.
func TestNoLossInvariantHolds(t *testing.T) {
	cases := []struct {
		variant Variant
		n, f    int
	}{
		{VariantIndirectCT, 3, 1},
		{VariantIndirectCT, 5, 2},
		{VariantIndirectMR, 4, 1},
		{VariantURBIDs, 3, 1},
	}
	for _, c := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			name := fmt.Sprintf("%v/n=%d/seed=%d", c.variant, c.n, seed)
			t.Run(name, func(t *testing.T) {
				crashed := stack.ProcessID(c.n) // the last process crashes mid-run
				h := newNolossHarness(t, c.n, c.variant, seed,
					map[stack.ProcessID]bool{crashed: true}, c.f)
				for i := 1; i <= c.n; i++ {
					p := stack.ProcessID(i)
					for s := 0; s < 6; s++ {
						at := time.Duration((int(seed)*13+i*7+s*31)%150) * time.Millisecond
						h.w.After(p, at, func() { h.engines[p].ABroadcast([]byte("x")) })
					}
				}
				h.w.After(1, time.Duration(40+seed*17)*time.Millisecond, func() {
					h.w.Crash(crashed, simnet.DropInFlight)
				})
				h.w.RunFor(20 * time.Second)
				if len(h.nolossViolations) > 0 {
					t.Fatalf("No loss violated: %v", h.nolossViolations)
				}
				if len(h.stabilityShortage) > 0 {
					t.Fatalf("v-stability shortage: %v", h.stabilityShortage)
				}
			})
		}
	}
}

// TestNoLossInvariantHoldsPipelined re-runs the invariant check with the
// ordering path pipelined: W concurrent instances with small disjoint
// batches must not weaken No loss or v-stability — the decision-time
// holders requirement is per decision, however many instances are in
// flight.
func TestNoLossInvariantHoldsPipelined(t *testing.T) {
	cases := []struct {
		variant Variant
		n, f, w int
	}{
		{VariantIndirectCT, 3, 1, 2},
		{VariantIndirectCT, 5, 2, 4},
		{VariantIndirectMR, 4, 1, 3},
		{VariantURBIDs, 3, 1, 4},
	}
	for _, c := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			name := fmt.Sprintf("%v/n=%d/W=%d/seed=%d", c.variant, c.n, c.w, seed)
			t.Run(name, func(t *testing.T) {
				crashed := stack.ProcessID(c.n)
				h := newNolossHarness(t, c.n, c.variant, seed,
					map[stack.ProcessID]bool{crashed: true}, c.f,
					func(cfg *Config) {
						cfg.Pipeline = c.w
						cfg.MaxBatch = 2 // keep several instances in flight
					})
				for i := 1; i <= c.n; i++ {
					p := stack.ProcessID(i)
					for s := 0; s < 8; s++ {
						at := time.Duration((int(seed)*13+i*7+s*23)%150) * time.Millisecond
						h.w.After(p, at, func() { h.engines[p].ABroadcast([]byte("x")) })
					}
				}
				h.w.After(1, time.Duration(40+seed*17)*time.Millisecond, func() {
					h.w.Crash(crashed, simnet.DropInFlight)
				})
				h.w.RunFor(20 * time.Second)
				if len(h.nolossViolations) > 0 {
					t.Fatalf("No loss violated: %v", h.nolossViolations)
				}
				if len(h.stabilityShortage) > 0 {
					t.Fatalf("v-stability shortage: %v", h.stabilityShortage)
				}
			})
		}
	}
}

// TestNoLossCheckerDetectsFaultyStack is the negative control: under the
// Section 2.2 adversarial schedule, the faulty stack must produce a
// decision with NO correct holder — proving the checker can fail.
func TestNoLossCheckerDetectsFaultyStack(t *testing.T) {
	params := netmodel.Setup1()
	params.LatencyFn = func(from, to stack.ProcessID, env stack.Envelope) time.Duration {
		if from == 2 && env.Proto == stack.ProtoRB {
			return time.Hour
		}
		return params.Latency
	}
	h := &nolossHarness{
		w:         simnet.NewWorld(3, params, 17),
		engines:   make([]*Engine, 4),
		willCrash: map[stack.ProcessID]bool{2: true},
		f:         1,
	}
	for i := 1; i <= 3; i++ {
		node := h.w.Node(stack.ProcessID(i))
		det := fd.NewHeartbeat(node, fd.DefaultConfig())
		eng, err := New(node, Config{
			Variant:  VariantFaultyIDs,
			RB:       rbcast.KindEager,
			Detector: det,
			Deliver:  func(*msg.App) {},
			OnDecision: func(k uint64, v consensus.Value) {
				h.checkDecision(k, v)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		h.engines[i] = eng
	}
	ab := func(p stack.ProcessID, at time.Duration) {
		h.w.After(p, at, func() { h.engines[p].ABroadcast([]byte("x")) })
	}
	ab(1, time.Millisecond)
	ab(3, time.Millisecond)
	ab(2, 50*time.Millisecond) // the poisoned broadcast
	ab(1, 51*time.Millisecond)
	ab(3, 51*time.Millisecond)
	h.w.After(1, time.Second, func() { h.w.Crash(2, simnet.DropInFlight) })
	h.w.RunFor(10 * time.Second)
	if len(h.nolossViolations) == 0 {
		t.Fatal("the faulty stack produced no No-loss violation; the checker (or the schedule) is broken")
	}
}
