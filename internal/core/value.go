package core

import (
	"sort"

	"abcast/internal/consensus"
	"abcast/internal/msg"
)

// IDSetValue is a consensus value holding only message identifiers — the
// proposal type of indirect consensus and of the (faulty) direct use of
// consensus on identifiers. Its wire size is independent of the size of the
// underlying messages, which is the whole point of ordering identifiers.
type IDSetValue struct {
	Set msg.IDSet
}

var _ consensus.Value = IDSetValue{}

// WireSize implements stack.Message.
func (v IDSetValue) WireSize() int { return v.Set.WireSize() }

// Key implements consensus.Value.
func (v IDSetValue) Key() string { return v.Set.Key() }

// MsgSetValue is a consensus value holding full messages — the proposal
// type of the original reduction of atomic broadcast to consensus, where
// consensus is executed directly on (sets of) messages. Its wire size grows
// with the messages' payloads, which is what saturates the network in
// Figure 1.
type MsgSetValue struct {
	Msgs []*msg.App // sorted by ID
}

var _ consensus.Value = MsgSetValue{}

// NewMsgSetValue builds a value from messages, normalizing order.
func NewMsgSetValue(msgs []*msg.App) MsgSetValue {
	out := make([]*msg.App, len(msgs))
	copy(out, msgs)
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return MsgSetValue{Msgs: out}
}

// WireSize implements stack.Message.
func (v MsgSetValue) WireSize() int {
	total := 4
	for _, a := range v.Msgs {
		total += a.WireSize()
	}
	return total
}

// IDs returns the identifiers of the contained messages in canonical order.
func (v MsgSetValue) IDs() []msg.ID {
	out := make([]msg.ID, len(v.Msgs))
	for i, a := range v.Msgs {
		out[i] = a.ID
	}
	return out
}

// Key implements consensus.Value: the identifier encoding suffices because
// messages and identifiers are in bijection.
func (v MsgSetValue) Key() string {
	s := msg.NewIDSet(v.IDs()...)
	return s.Key()
}
