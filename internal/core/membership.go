package core

// Dynamic membership: join/leave as configuration changes riding the total
// order itself.
//
// The classic trick: a membership change is just another atomically
// broadcast message (msg.App with a non-nil Config), so every process
// delivers it at the same position of the common total order — and that
// *delivery point* defines the switch. Two views change hands, on different
// schedules:
//
//   - The transport-level view (diffusion fan-out, heartbeat monitoring,
//     relink anti-entropy) switches immediately at the delivery point, via
//     stack.Node.SetGroup and fd.MemberAware.SetMembers. This is safe to do
//     eagerly because none of those layers carries quorum semantics, and it
//     is what lets a joiner start receiving payloads and heartbeats at once.
//   - The consensus-level view — quorum thresholds, coordinator rotation,
//     per-instance fan-out — switches at instance deliveryPoint+ConfigLag:
//     instances at or above that serial use the new member set, everything
//     below drains under the old one. The lag exists because of pipelining:
//     up to W instances beyond the delivery frontier may already be proposed
//     to, and their member set must not change retroactively. maybePropose
//     refuses to propose to any instance whose view could still be altered
//     by an undelivered change (k ≥ viewFrontier+ConfigLag), which makes
//     viewAt exact wherever it is consulted: any change effective at or
//     below such a k was delivered — hence applied — locally.
//
// A joiner bootstraps with no new machinery: once the join's delivery point
// passes, decide broadcasts for post-switch instances reach it (it is in
// their view), which puts decisions in its pending set while kNext is still
// 1 — the existing needsSync logic then drives RequestSync, and the peer
// answers with a decision replay (shallow lag) or a snapshot offer (behind
// the decision-log floor), exactly as for a partition-healed process. A
// leaver drains every instance below the switch under the old view, then
// retires: members mark it suspected at once (fd.SetMembers), so instances
// still draining rotate past it without waiting out timeouts, while its own
// engine keeps consuming decisions members still send it for old-view
// instances.
//
// Dynamic membership wants Config.Recover enabled: payloads diffused before
// a join (or after a leave) miss the processes the transport view did not
// yet (or no longer does) include, and the payload fetch is what repairs
// those gaps. The churn property tests and figure m1 run Recovery+Snapshot.

import (
	"fmt"
	"sort"

	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/stack"
	"abcast/internal/trace"
)

// DefaultConfigLag is the default delivery-point→quorum-switch distance. It
// comfortably exceeds adapt.DefaultMaxWindow (8), so the propose gate never
// binds before the pipeline window does.
const DefaultConfigLag = 32

// viewRec is one entry of the view log: the member set in force for
// consensus instances k with eff ≤ k < next entry's eff.
type viewRec struct {
	eff     uint64 // first consensus instance using this view
	members []stack.ProcessID
}

// initMembership validates Config.Members and seeds the view log (called
// from New when Members is non-nil).
//
//abcheck:entry constructor path; runs before the event loop starts
func (e *Engine) initMembership() error {
	if len(e.cfg.Members) == 0 {
		return fmt.Errorf("core: empty initial member set")
	}
	members := append([]stack.ProcessID(nil), e.cfg.Members...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for i, q := range members {
		if q < 1 || int(q) > e.ctx.N() {
			return fmt.Errorf("core: member %d outside universe 1..%d", q, e.ctx.N())
		}
		if i > 0 && members[i-1] == q {
			return fmt.Errorf("core: duplicate member %d", q)
		}
	}
	e.configLag = uint64(e.cfg.ConfigLag)
	if e.configLag == 0 {
		e.configLag = DefaultConfigLag
	}
	e.views = []viewRec{{eff: 1, members: members}}
	e.applyGroup(members)
	return nil
}

// dynamic reports whether this engine runs with dynamic membership.
func (e *Engine) dynamic() bool { return len(e.views) > 0 }

// viewAt resolves the member set of consensus instance k from the applied
// view log. It is exact for every instance the propose gate admits (see the
// package comment above); for larger k it returns the latest applied view,
// which callers treat as provisional. The returned slice is shared — do not
// mutate.
func (e *Engine) viewAt(k uint64) []stack.ProcessID {
	ms := e.views[0].members
	for _, v := range e.views[1:] {
		if v.eff > k {
			break
		}
		ms = v.members
	}
	return ms
}

// viewFrontier is the lowest consensus instance whose configuration payload
// could still be undelivered locally: the instance that ordered the blocked
// head of the delivery queue, or kNext when nothing is queued. Every
// configuration change ordered below it has been delivered and applied.
func (e *Engine) viewFrontier() uint64 {
	if len(e.ordered) > 0 {
		return e.ordered[0].k
	}
	return e.kNext
}

// selfInView reports whether this process is a member of instance k's view.
func (e *Engine) selfInView(k uint64) bool {
	self := e.ctx.ID()
	for _, q := range e.viewAt(k) {
		if q == self {
			return true
		}
	}
	return false
}

// applyConfig applies a configuration change delivered at ordering serial k:
// append the new view (effective at k+ConfigLag) and retarget the transport
// immediately. A change that would empty the view is ignored — the group
// must always retain at least one member to order the next change.
func (e *Engine) applyConfig(k uint64, ch *msg.ConfigChange) {
	cur := e.views[len(e.views)-1].members
	next := make([]stack.ProcessID, 0, len(cur)+1)
	for _, q := range cur {
		if q != ch.Leave {
			next = append(next, q)
		}
	}
	if j := ch.Join; j >= 1 && int(j) <= e.ctx.N() {
		i := sort.Search(len(next), func(i int) bool { return next[i] >= j })
		if i == len(next) || next[i] != j {
			next = append(next, 0)
			copy(next[i+1:], next[i:])
			next[i] = j
		}
	}
	if len(next) == 0 {
		return
	}
	eff := k + e.configLag
	e.views = append(e.views, viewRec{eff: eff, members: next})
	e.applyGroup(next)
	// Drive the pipeline to the switch: the new view takes effect only once
	// consumption reaches eff, so every instance below it must decide even
	// if the payload backlog runs dry first — mark them needed, and
	// maybePropose fills them (with empty batches when there is nothing to
	// order). Without this, a group that goes quiescent before eff never
	// completes the switch. Bounded by ConfigLag plus the pipeline window.
	for j := e.kPropose; j < eff; j++ {
		if _, decided := e.pending[j]; !decided {
			e.needed[j] = true
		}
	}
	// Introduce a joiner instead of waiting for it to notice post-switch
	// traffic (none may ever come if the group goes quiescent): every
	// member that applies the join relays it the decision history, which
	// either replays directly or — for a joiner behind the decision log's
	// floor — hands it to the snapshot path. Rate-limited per peer, and a
	// no-op without the recovery relay (dynamic membership wants
	// Config.Recover for exactly this reason).
	if j := ch.Join; j != 0 && j != e.ctx.ID() {
		e.cons.Introduce(j)
	}
	e.maybePropose() // the frontier moved; gated instances may now open
}

// applyGroup points the transport-level layers at the given view: the
// node's broadcast fan-out (diffusion, heartbeats, relink all follow it) and
// the failure detector's monitored set.
func (e *Engine) applyGroup(members []stack.ProcessID) {
	e.node.SetGroup(members)
	if ma, ok := e.cfg.Detector.(fd.MemberAware); ok {
		ma.SetMembers(members)
	}
}

// BroadcastConfig atomically broadcasts a membership change. It is ordered
// and delivered like any payload; the quorum switch happens at its delivery
// point plus ConfigLag, identically at every process. Any current member may
// broadcast it — including on behalf of the joining process, which cannot
// reach the group itself yet. Returns the carrying message's identifier.
//
//abcheck:entry public API; callers invoke it on the owning event loop (simnet.World.Do / live mailbox)
func (e *Engine) BroadcastConfig(ch msg.ConfigChange) msg.ID {
	e.seq++
	e.noteSeq()
	app := &msg.App{
		ID:     msg.ID{Sender: e.ctx.ID(), Seq: e.seq},
		Config: &ch,
	}
	e.broadcasts.Inc()
	e.tr.Record(trace.Event{At: e.ctx.Now(), P: e.ctx.ID(), Kind: trace.KindABroadcast, ID: app.ID})
	e.rb.Broadcast(app)
	return app.ID
}

// ViewAt returns the member set of consensus instance k (a copy), or nil
// when the engine is static. Tests use it to prove a post-switch instance
// ran under the new quorum.
func (e *Engine) ViewAt(k uint64) []stack.ProcessID {
	if !e.dynamic() {
		return nil
	}
	return append([]stack.ProcessID(nil), e.viewAt(k)...)
}

// CurrentView returns the latest applied view: the first consensus instance
// it governs and its member set (a copy; nil members when static).
func (e *Engine) CurrentView() (eff uint64, members []stack.ProcessID) {
	if !e.dynamic() {
		return 0, nil
	}
	v := e.views[len(e.views)-1]
	return v.eff, append([]stack.ProcessID(nil), v.members...)
}
