package core

// Transient-fault (SSABC-style) property tests: a process's volatile
// protocol state is scrambled mid-run while the process keeps executing,
// and the recovery machinery must re-converge it — same relay/fetch chain
// that serves laggards and partition victims, no dedicated repair protocol.
// The negative test pins the claim structurally: the *same* fault without
// the recovery subsystem provably wedges the victim (while safety — the
// total-order prefix property — still holds), so it is the recovery
// machinery, not incidental protocol redundancy, that repairs the fault.

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
	"abcast/internal/stack"
)

// transientLoad schedules 20 broadcasts from each process spread across
// ~2.5 s, so ordering activity continues well past a mid-window fault
// (re-convergence requires it: the next decision reaching the victim is
// what trips needsSync).
func transientLoad(c *cluster, seed int64, senders []stack.ProcessID, sent *[]msg.ID) {
	for _, p := range senders {
		for s := 0; s < 20; s++ {
			at := time.Duration((int(seed)*31+int(p)*17+s*127)%2500) * time.Millisecond
			c.abcastTracked(p, at, fmt.Sprintf("m-%d-%d", p, s), sent)
		}
	}
}

// corruptOnBacklog arms a scan at `from` that fires CorruptVolatile the
// first moment the victim holds received-but-undelivered payloads — a
// fixed-time fault under Setup1 usually lands on an empty backlog (end-to-
// end delivery is sub-millisecond) and wipes nothing. The scan is on the
// victim's own event loop and rechecks every 200 µs until the load window
// ends, so the whole schedule stays deterministic per seed. Returns a flag
// set at fault time; tests assert it to prove the fault actually destroyed
// state.
func corruptOnBacklog(c *cluster, victim stack.ProcessID, from time.Duration) *bool {
	fired := new(bool)
	deadline := 4 * time.Second
	elapsed := from
	var scan func()
	scan = func() {
		st := c.engines[victim].Stats()
		if st.Unordered > 0 || st.OrderedQ > 0 {
			*fired = true
			c.engines[victim].CorruptVolatile()
			return
		}
		if elapsed >= deadline {
			return
		}
		elapsed += 200 * time.Microsecond
		c.w.After(victim, 200*time.Microsecond, scan)
	}
	c.w.After(victim, from, scan)
	return fired
}

// TestTransientFaultRecovery corrupts the victim's volatile queues around
// kNext mid-run (received-but-undelivered payloads, unordered pool,
// buffered decisions, proposal bookkeeping, consensus settled-instance
// memory) and sweeps seeds: with recovery enabled the victim must fully
// re-converge — every message delivered everywhere, one total order, no
// duplicates — and the decision relay must provably have been exercised.
func TestTransientFaultRecovery(t *testing.T) {
	seedSweep(t, 5, func(t *testing.T, seed int64) {
		const n = 3
		c := newCluster(t, n, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), seed,
			withRecovery(false), pipelined(2, 2))
		all := procs(1, 2, 3)

		var sent []msg.ID
		transientLoad(c, seed, all, &sent)

		const victim = stack.ProcessID(2)
		fired := corruptOnBacklog(c, victim, 1200*time.Millisecond)
		c.w.RunFor(40 * time.Second)

		if !*fired {
			t.Fatalf("fault injector never found backlog to wipe; schedule too sparse")
		}
		c.checkTotalOrder(t, all)
		c.checkIntegrity(t, all)
		c.checkFullDelivery(t, all, sent)

		relays := 0
		for _, p := range all {
			if p != victim {
				relays += c.engines[p].cons.RelayCount()
			}
		}
		if relays == 0 {
			t.Errorf("victim re-converged without any decision relay; corruption did not exercise the recovery path")
		}
	})
}

// TestTransientFaultWithoutRecoveryWedges is the pinned structural
// negative: the identical fault under the identical schedule, but with the
// recovery subsystem disabled. The wiped payloads were already diffused
// once — nothing retransmits them — so the victim wedges at the hole,
// short of full delivery, while the unaffected majority still finishes and
// the victim's delivered sequence remains a clean prefix of theirs (the
// fault costs liveness, never safety).
func TestTransientFaultWithoutRecoveryWedges(t *testing.T) {
	const seed = 7
	const n = 3
	c := newCluster(t, n, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), seed,
		pipelined(2, 2)) // Config.Recover deliberately nil
	all := procs(1, 2, 3)

	var sent []msg.ID
	transientLoad(c, seed, all, &sent)

	const victim = stack.ProcessID(2)
	fired := corruptOnBacklog(c, victim, 1200*time.Millisecond)
	c.w.RunFor(40 * time.Second)

	if !*fired {
		t.Fatalf("fault injector never found backlog to wipe; schedule too sparse")
	}
	// Safety everywhere, liveness only at the survivors.
	c.checkTotalOrder(t, all)
	c.checkIntegrity(t, all)
	c.checkFullDelivery(t, procs(1, 3), sent)
	if got := len(c.delivered[victim]); got >= len(sent) {
		t.Fatalf("victim delivered %d/%d messages without recovery machinery; the negative no longer pins anything",
			got, len(sent))
	}
}
