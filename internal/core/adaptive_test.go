package core

// Tests of the adaptive control plane's engine side: the safety property
// (retargeting the window between instances never loses identifiers, so the
// full atomic broadcast contract survives partitions with the controller
// running) and the end-to-end feedback behaviour (the window grows under a
// backlog and decays once it drains).

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/adapt"
	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// adaptive is a Config mutator enabling the control plane with defaults.
func adaptive() func(*Config) {
	return func(cfg *Config) { cfg.Adapt = &adapt.Config{} }
}

// TestAdaptivePartitionKeepsContract: with the controller retargeting the
// pipeline width at runtime, a partition-and-heal episode must leave every
// atomic broadcast property intact — total order, integrity, No loss (the
// OnDecision checker partitionRun installs), and full delivery everywhere —
// in delay mode and in drop mode with recovery. The runs must actually have
// retargeted (a controller that never moves would make this vacuous): a
// cut-off minority's backlog grows while it cannot decide, which is exactly
// the growth signal, and the shrink path runs when the backlog drains after
// the heal. The risk pinned here is the window retarget crossing an
// instance boundary in a way that loses recycled identifiers: a shrink must
// only gate new instances, never cancel in-flight ones, or ids claimed by a
// cancelled proposal could vanish from the unordered set without ever being
// ordered.
func TestAdaptivePartitionKeepsContract(t *testing.T) {
	modes := []struct {
		name string
		mode simnet.PartitionMode
		rec  bool
	}{
		{"delay", simnet.PartitionDelay, false},
		{"drop+recovery", simnet.PartitionDrop, true},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
					extra := []func(*Config){adaptive()}
					if m.rec {
						extra = append(extra, func(cfg *Config) { cfg.Recover = &RecoverConfig{} })
					}
					c, sent, _, atCut, atHeal := partitionRun(t, seed, 2, m.mode, false, extra...)
					all := procs(1, 2, 3, 4, 5)
					c.checkTotalOrder(t, all)
					c.checkIntegrity(t, all)
					c.checkDelivers(t, all, sent)
					if atHeal <= atCut {
						t.Fatalf("majority made no progress during the partition: %d -> %d deliveries",
							atCut, atHeal)
					}
					retargets, maxW := 0, 0
					for p := 1; p <= 5; p++ {
						st := c.engines[p].Stats()
						retargets += st.Retargets
						if st.MaxInFlight > maxW {
							maxW = st.MaxInFlight
						}
					}
					if retargets == 0 {
						t.Fatalf("controller never retargeted; the episode did not exercise adaptation")
					}
					if maxW < 2 {
						t.Fatalf("window never actually widened (max in-flight %d)", maxW)
					}
				})
			}
		})
	}
}

// TestRetargetShrinkLosesNothing: shrinking the window (and the batch cap)
// while proposals are in flight must not lose identifiers. The shrink lands
// mid-run on every engine, with instances outstanding whose batches hold
// claimed ids; those instances drain at their own pace, their unordered-but
// -unwon ids are recycled into later (now serial) instances, and every
// message is still delivered everywhere in total order.
func TestRetargetShrinkLosesNothing(t *testing.T) {
	params := netmodel.Setup2()
	params.Latency = time.Millisecond // idle wire time, so W=4 pipelines for real
	c := newCluster(t, 3, VariantIndirectCT, rbcast.KindEager, params, 11, pipelined(4, 2))
	var sent []msg.ID
	for i := 1; i <= 3; i++ {
		p := stack.ProcessID(i)
		for s := 0; s < 30; s++ {
			c.abcast(p, time.Duration(2+s*2)*time.Millisecond, fmt.Sprintf("m-%d-%d", i, s))
			sent = append(sent, msg.ID{Sender: p, Seq: uint64(s + 1)})
		}
	}
	// Mid-burst, with the pipeline provably full, drop every engine to the
	// serial window.
	for i := 1; i <= 3; i++ {
		p := stack.ProcessID(i)
		c.w.After(p, 30*time.Millisecond, func() { c.engines[p].Retarget(1, 2) })
	}
	c.w.RunFor(20 * time.Second)
	all := procs(1, 2, 3)
	c.checkTotalOrder(t, all)
	c.checkIntegrity(t, all)
	c.checkDelivers(t, all, sent)
	for i := 1; i <= 3; i++ {
		st := c.engines[i].Stats()
		if st.MaxInFlight < 2 {
			t.Fatalf("p%d never pipelined (max in-flight %d); the shrink shrank nothing", i, st.MaxInFlight)
		}
		if st.Window != 1 || st.MaxBatch != 2 {
			t.Fatalf("p%d retarget not applied: window=%d batch=%d", i, st.Window, st.MaxBatch)
		}
		if st.InFlight > 1 {
			t.Fatalf("p%d still has %d in-flight proposals at a serial window after quiescence", i, st.InFlight)
		}
	}
}

// TestAdaptiveFailedConstructionArmsNoTimer: an errored New with Adapt set
// must not leave the control-tick timer armed — a timer firing on the
// half-built engine (nil consensus service) would panic the event loop long
// after the caller handled the constructor error.
func TestAdaptiveFailedConstructionArmsNoTimer(t *testing.T) {
	w := simnet.NewWorld(1, netmodel.Setup1(), 1)
	node := w.Node(1)
	_, err := New(node, Config{
		Variant:  Variant(99), // unknown: New fails after initAdapt ran
		Detector: fd.NewHeartbeat(node, fd.DefaultConfig()),
		Adapt:    &adapt.Config{},
		Deliver:  func(*msg.App) {},
	})
	if err == nil {
		t.Fatal("expected an unknown-variant error")
	}
	// If initAdapt armed the loop, the first tick at +25 ms panics here.
	w.RunFor(time.Second)
}

// TestAdaptiveGrowsAndDecays: the full feedback loop on a live burst — a
// metro-latency cluster under an offered burst far above the serial ceiling
// must widen its window (visible as real in-flight concurrency), deliver
// everything, and decay back to the serial window once the backlog drains.
func TestAdaptiveGrowsAndDecays(t *testing.T) {
	params := netmodel.Setup2()
	params.Latency = time.Millisecond
	c := newCluster(t, 3, VariantIndirectCT, rbcast.KindEager, params, 5, adaptive())
	var sent []msg.ID
	for i := 1; i <= 3; i++ {
		p := stack.ProcessID(i)
		for s := 0; s < 80; s++ {
			c.abcast(p, time.Duration(1+s)*time.Millisecond, fmt.Sprintf("b-%d-%d", i, s))
			sent = append(sent, msg.ID{Sender: p, Seq: uint64(s + 1)})
		}
	}
	c.w.RunFor(30 * time.Second)
	all := procs(1, 2, 3)
	c.checkTotalOrder(t, all)
	c.checkIntegrity(t, all)
	c.checkDelivers(t, all, sent)
	grew := false
	for i := 1; i <= 3; i++ {
		st := c.engines[i].Stats()
		if st.MaxInFlight >= 2 {
			grew = true
		}
		if st.Window != 1 {
			t.Fatalf("p%d window did not decay after the burst: %d", i, st.Window)
		}
	}
	if !grew {
		t.Fatalf("no engine widened its pipeline under a 3000 msg/s burst")
	}
}
