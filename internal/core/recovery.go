package core

// Recovery: the engine-level half of the drop-partition recovery subsystem.
//
// internal/relink repairs lost *envelopes* within its bounded retransmission
// window, and the consensus decide-relay replays lost *decisions*. What
// remains is the payload gap, which shows up in two directions:
//
//   - Ordered but never received: a process learns (via a relayed decision)
//     that an identifier is ordered while the diffusion broadcast that
//     carried the message was black-holed and evicted from every
//     retransmission buffer. Algorithm 1 then blocks at the head of the
//     ordered sequence. The paper's No loss property guarantees some correct
//     process still holds the message.
//   - Proposed but never diffused: a healed process proposes identifiers of
//     messages only its side of the former cut ever received. The indirect
//     algorithms correctly refuse to order them (rcv fails at the other
//     side), and the eager/lazy diffusion broadcasts relay only on first
//     receipt — so without repair the messages would stay unordered forever
//     and Validity-style full delivery would never be reached.
//
// Both directions resolve the same way: the engine notes the identifiers it
// is missing (the blocked head of the ordered queue, and every identifier a
// failed rcv check reveals), and past FetchDelay asks a peer for them by
// identifier (FetchMsg); the peer answers with the messages it holds
// (SupplyMsg). Supplied messages enter through the normal R-deliver path, so
// integrity, ordering and re-proposal are untouched.

import (
	"sort"
	"time"

	"abcast/internal/msg"
	"abcast/internal/relink"
	"abcast/internal/stack"
	"abcast/internal/trace"
)

// RecoverConfig enables and tunes the recovery subsystem. Wiring it into a
// Config turns on all three repair layers for the process:
//
//   - the relink reliable-link layer (sequencing, bounded retransmission,
//     anti-entropy) under every protocol of the stack;
//   - the consensus decide-relay (consensus.Config.Relay), so peers that
//     missed pruned decisions are caught up on demand;
//   - the engine's payload fetch, so ordered-but-never-received messages are
//     pulled from a peer that holds them.
//
// With recovery enabled, a drop-mode (black-hole) partition behaves like a
// delay-mode one at the model level: after the heal, every correct process
// reaches full delivery in total order. See docs/ARCHITECTURE.md.
type RecoverConfig struct {
	// Link tunes the reliable-link layer (zero values = relink defaults).
	Link relink.Config
	// FetchDelay is how long the engine stays blocked on a missing payload
	// before fetching it from a peer, and the retry cadence thereafter
	// (0 = DefaultFetchDelay). It should comfortably exceed normal
	// diffusion latency so fetches fire only on genuine loss.
	FetchDelay time.Duration
	// DecisionLogCap bounds the consensus decide-relay's decision log
	// (0 = consensus.DefaultLogCap).
	DecisionLogCap int
	// RediffuseDelay is how long a received message may sit unordered
	// before this process re-R-broadcasts it (0 = DefaultRediffuseDelay).
	// The reliable broadcasts relay only on first receipt, so a message
	// whose relays were black-holed and evicted is otherwise never offered
	// to the other side again — and an identifier nobody else holds the
	// message for is never ordered (the round-1 coordinator only proposes
	// its own estimate, so Validity rides on diffusion completing).
	RediffuseDelay time.Duration
	// Snapshot enables snapshot state transfer on top of the relay/fetch
	// repairs: a peer behind by more than DecisionLogCap consensus
	// instances — beyond the decide-relay's horizon — is shipped the
	// delivered prefix plus engine state (the Raft-snapshot analogue)
	// instead of a decision replay it can no longer use. Off by default;
	// without it, recovery covers only lags the decision log can replay.
	// See snapshot.go and docs/ARCHITECTURE.md.
	Snapshot bool
	// SnapshotChunk caps entries per snapshot chunk message
	// (0 = DefaultSnapshotChunk); the transfer is split into ceil(n/chunk)
	// SnapChunkMsgs so no single envelope carries an unbounded payload.
	SnapshotChunk int
	// SnapshotMax caps entries per snapshot round (0 = DefaultSnapshotMax).
	// A gap larger than the cap is closed over several offer/accept rounds,
	// each truncated at a consensus-instance boundary, bounding producer
	// burst and installer buffering regardless of how far behind the peer
	// is.
	SnapshotMax int
	// PreferPeers, when non-empty, lists the repair targets to try first:
	// both rotating repair paths (payload fetch, decision sync) cycle
	// through the preferred peers before the rest. The Cluster API fills it
	// with this process's same-site peers on Topology setups, so repair
	// traffic stays off the expensive inter-site links when a local peer can
	// serve it. Peers outside the current view (or self) are ignored; empty
	// leaves the rotation unchanged.
	PreferPeers []stack.ProcessID
}

// DefaultFetchDelay is the default blocked-head fetch delay: far above any
// LAN/WAN diffusion latency, so it only fires on genuine loss.
const DefaultFetchDelay = 100 * time.Millisecond

// DefaultRediffuseDelay is the default unordered-too-long re-diffusion
// delay. Ordering normally completes within a couple of consensus round
// trips, so only messages stranded by loss are re-offered.
const DefaultRediffuseDelay = 400 * time.Millisecond

// rediffuseBatch caps re-diffusions per tick, bounding the post-heal burst.
const rediffuseBatch = 64

// fetchBatch caps identifiers per FetchMsg (and so messages per SupplyMsg
// reply), bounding the burst while a long backlog is repaired; the engine
// re-fetches until unblocked.
const fetchBatch = 256

// FetchMsg asks a peer for the messages with the given identifiers
// (recovery path; stack.ProtoSync).
type FetchMsg struct {
	IDs []msg.ID
}

// WireSize implements stack.Message.
func (m FetchMsg) WireSize() int { return 2 + len(m.IDs)*msg.IDWireBytes }

// SupplyMsg answers a FetchMsg with the requested messages the sender
// holds.
type SupplyMsg struct {
	Apps []*msg.App
}

// WireSize implements stack.Message.
func (m SupplyMsg) WireSize() int {
	size := 2
	for _, a := range m.Apps {
		size += a.WireSize()
	}
	return size
}

// initRecovery wires the recovery subsystem into the engine (called from New
// when cfg.Recover is set; the consensus-relay half is configured there).
func (e *Engine) initRecovery(node *stack.Node) {
	// The link registers its counters and records retransmit spans through
	// the engine's observability config; work on a copy so the engine-owned
	// RecoverConfig stays as the caller tuned it.
	lcfg := e.cfg.Recover.Link
	lcfg.Metrics = e.cfg.Metrics
	lcfg.Trace = e.tr
	e.link = relink.New(node, lcfg)
	e.sync = node.Proto(stack.ProtoSync)
	node.Register(stack.ProtoSync, stack.HandlerFunc(e.onSync))
	if e.cfg.Recover.Snapshot {
		e.snap = node.Proto(stack.ProtoSnapshot)
		node.Register(stack.ProtoSnapshot, stack.HandlerFunc(e.onSnapshot))
	}
}

// LinkStats reports the reliable-link layer's counters (zero value when
// recovery is disabled). For tests and diagnostics.
func (e *Engine) LinkStats() relink.Stats {
	if e.link == nil {
		return relink.Stats{}
	}
	return e.link.Stats()
}

// fetchDelay returns the configured blocked-head fetch delay.
func (e *Engine) fetchDelay() time.Duration {
	if d := e.cfg.Recover.FetchDelay; d > 0 {
		return d
	}
	return DefaultFetchDelay
}

// noteWanted records identifiers a failed rcv check revealed as proposed by
// some peer but never received here, and arranges to fetch them. No-op
// unless recovery is enabled.
func (e *Engine) noteWanted(ids []msg.ID) {
	if e.cfg.Recover == nil {
		return
	}
	for _, id := range ids {
		if e.received[id] == nil {
			if e.wanted == nil {
				e.wanted = make(map[msg.ID]bool)
			}
			e.wanted[id] = true
		}
	}
	e.armFetch()
}

// needsFetch reports whether any payload is known missing: the ordered
// queue's head (delivery is blocked) or an identifier seen in a proposal.
func (e *Engine) needsFetch() bool {
	return e.Blocked() || len(e.wanted) > 0
}

// armFetch schedules a payload fetch if one is warranted and none is
// pending. Called whenever delivery stalls (tryDeliver) or a rcv check
// fails — harmless noise in healthy runs, because the timer re-checks
// before sending and diffusion normally wins the race.
func (e *Engine) armFetch() {
	if e.cfg.Recover == nil || e.fetchArmed || e.ctx.N() < 2 || !e.needsFetch() {
		return
	}
	e.fetchArmed = true
	e.ctx.SetTimer(e.fetchDelay(), e.fetchTick)
}

// fetchTick fires after FetchDelay of unresolved loss: request the missing
// payloads from one peer, rotating the target each attempt so a crashed or
// equally-behind peer cannot starve recovery.
func (e *Engine) fetchTick() {
	e.fetchArmed = false
	if !e.needsFetch() {
		return
	}
	missing := make([]msg.ID, 0, fetchBatch)
	seen := make(map[msg.ID]bool, fetchBatch)
	for _, rec := range e.ordered {
		if len(missing) == fetchBatch {
			break
		}
		if e.received[rec.id] == nil && !seen[rec.id] {
			missing = append(missing, rec.id)
			seen[rec.id] = true
		}
	}
	for id := range e.wanted {
		if len(missing) == fetchBatch {
			break
		}
		if e.received[id] != nil {
			delete(e.wanted, id) // resolved by diffusion in the meantime
			continue
		}
		if !seen[id] {
			missing = append(missing, id)
			seen[id] = true
		}
	}
	if len(missing) == 0 {
		return
	}
	// Canonical order: map iteration added wanted ids randomly.
	sort.Slice(missing, func(i, j int) bool { return missing[i].Less(missing[j]) })
	q := e.nextPeer(e.fetchAttempt)
	e.fetchAttempt++
	if q == 0 {
		e.armFetch() // sole survivor of a shrunken view: retry later
		return
	}
	e.fetches.Inc()
	e.tr.Record(trace.Event{At: e.ctx.Now(), P: e.ctx.ID(), Kind: trace.KindFetch, Peer: q, N: len(missing)})
	e.sync.Send(q, 0, FetchMsg{IDs: missing})
	e.armFetch() // stay armed until nothing is missing
}

// nextPeer returns the attempt-th repair target: the other processes in
// rotation, never self. Both repair paths (payload fetch, decision sync)
// share it so a change to target selection cannot silently diverge. Under
// dynamic membership the rotation covers the current transport view instead
// of the full universe — a retired process may be gone, and an un-joined one
// has nothing to serve; note the view need not contain self (a joiner's
// transport view is the member set it bootstraps from). Returns 0 when no
// peer is available.
func (e *Engine) nextPeer(attempt int) stack.ProcessID {
	self := e.ctx.ID()
	prefer := e.cfg.Recover.PreferPeers
	if e.dynamic() {
		peers := make([]stack.ProcessID, 0, len(e.views[len(e.views)-1].members))
		for _, q := range e.views[len(e.views)-1].members {
			if q != self {
				peers = append(peers, q)
			}
		}
		if len(peers) == 0 {
			return 0
		}
		if len(prefer) > 0 {
			peers = preferFirst(peers, prefer)
		}
		return peers[attempt%len(peers)]
	}
	n := e.ctx.N()
	if len(prefer) > 0 {
		peers := make([]stack.ProcessID, 0, n-1)
		for i := 0; i < n-1; i++ {
			peers = append(peers, stack.ProcessID((int(self)+i%(n-1))%n+1))
		}
		peers = preferFirst(peers, prefer)
		return peers[attempt%len(peers)]
	}
	return stack.ProcessID((int(self)+attempt%(n-1))%n + 1)
}

// preferFirst reorders a repair rotation so the preferred targets come
// first, preserving relative order within each half. Preferred peers not in
// the rotation (outside the view, or self) simply do not match.
func preferFirst(peers, prefer []stack.ProcessID) []stack.ProcessID {
	pref := make(map[stack.ProcessID]bool, len(prefer))
	for _, q := range prefer {
		pref[q] = true
	}
	out := make([]stack.ProcessID, 0, len(peers))
	for _, q := range peers {
		if pref[q] {
			out = append(out, q)
		}
	}
	for _, q := range peers {
		if !pref[q] {
			out = append(out, q)
		}
	}
	return out
}

// needsSync reports whether this engine knows it is behind on decisions: it
// holds decisions for later instances while earlier ones are missing
// (e.pending non-empty means kNext itself is undecided here), or a snapshot
// offer has promised a serial this engine has not reached yet (see
// snapshot.go; the condition self-clears once kNext catches up, however the
// gap ends up closed).
func (e *Engine) needsSync() bool {
	return len(e.pending) > 0 || e.kNext < e.snapTarget || e.restartProbes > 0
}

// armSyncReq schedules a decision-sync request: a hole in the decision
// sequence, after a black-holed partition, may never resolve on its own —
// the original DecideMsgs are lost and a behind process can be parked in a
// round it coordinates itself, emitting no stale traffic for the implicit
// relay to react to. The same timer keeps a deep-lagged engine asking until
// a snapshot transfer completes, which makes lost offers, accepts, and
// chunks all recoverable (each re-request eventually produces a fresh
// offer).
func (e *Engine) armSyncReq() {
	if e.cfg.Recover == nil || e.syncArmed || e.ctx.N() < 2 || !e.needsSync() {
		return
	}
	e.syncArmed = true
	e.ctx.SetTimer(e.fetchDelay(), e.syncTick)
}

// syncTick requests the missing decisions from one peer, rotating the
// target each attempt, and re-arms while the hole persists. In healthy runs
// the hole closes within a round trip and the timer finds nothing to do.
func (e *Engine) syncTick() {
	e.syncArmed = false
	if !e.needsSync() {
		return
	}
	q := e.nextPeer(e.syncAttempt)
	e.syncAttempt++
	if q == 0 {
		e.armSyncReq()
		return
	}
	e.syncReqs.Inc()
	e.cons.RequestSync(q, e.kNext)
	if e.restartProbes > 0 {
		// A restarted engine probes a bounded number of peers for the tail
		// it missed while down; each answer is a relay (shallow gap) or a
		// snapshot offer (behind the relay floor), and the other needsSync
		// conditions carry the catch-up from there.
		e.restartProbes--
	}
	e.armSyncReq()
}

// rediffuseDelay returns the configured unordered re-diffusion delay.
func (e *Engine) rediffuseDelay() time.Duration {
	if d := e.cfg.Recover.RediffuseDelay; d > 0 {
		return d
	}
	return DefaultRediffuseDelay
}

// noteUnordered timestamps an identifier's entry into the unordered set and
// arms the re-diffusion check. No-op unless recovery is enabled.
func (e *Engine) noteUnordered(id msg.ID) {
	if e.cfg.Recover == nil {
		return
	}
	if e.unorderedSince == nil {
		e.unorderedSince = make(map[msg.ID]time.Time)
	}
	e.unorderedSince[id] = e.ctx.Now()
	e.armRediffuse()
}

// armRediffuse schedules the next unordered-age check if one is warranted.
func (e *Engine) armRediffuse() {
	if e.cfg.Recover == nil || e.rediffArmed || e.ctx.N() < 2 || e.unordered.Empty() {
		return
	}
	e.rediffArmed = true
	e.ctx.SetTimer(e.rediffuseDelay(), e.rediffuseTick)
}

// rediffuseTick re-R-broadcasts messages that have sat unordered for at
// least RediffuseDelay, then re-arms while unordered identifiers remain.
// Scanning in canonical identifier order keeps the simulation
// deterministic.
func (e *Engine) rediffuseTick() {
	e.rediffArmed = false
	if e.unordered.Empty() {
		return
	}
	now := e.ctx.Now()
	delay := e.rediffuseDelay()
	sent := 0
	for _, id := range e.unordered.IDs() {
		if sent == rediffuseBatch {
			break
		}
		since, ok := e.unorderedSince[id]
		if !ok || now.Sub(since) < delay {
			continue
		}
		if app := e.received[id]; app != nil {
			e.rb.Rebroadcast(app)
			e.rediffusions.Inc()
			e.tr.Record(trace.Event{At: e.ctx.Now(), P: e.ctx.ID(), Kind: trace.KindRediffuse, ID: id})
			e.unorderedSince[id] = now // next offer no sooner than +delay
			sent++
		}
	}
	e.armRediffuse()
}

// onSync handles recovery fetch/supply traffic (stack.ProtoSync).
func (e *Engine) onSync(from stack.ProcessID, _ uint64, m stack.Message) {
	switch mm := m.(type) {
	case FetchMsg:
		apps := make([]*msg.App, 0, len(mm.IDs))
		for _, id := range mm.IDs {
			if a := e.received[id]; a != nil {
				apps = append(apps, a)
			}
		}
		if len(apps) > 0 {
			e.sync.Send(from, 0, SupplyMsg{Apps: apps})
		}
	case SupplyMsg:
		// Supplied messages enter through the normal R-deliver path:
		// deduplication, head delivery and re-proposal all behave exactly
		// as if the diffusion broadcast had finally arrived.
		for _, a := range mm.Apps {
			e.onRDeliver(a)
		}
	case FrontierMsg:
		if e.pstore != nil {
			e.noteFrontier(from, mm.Frontier)
		}
	}
}

var (
	_ stack.Message = FetchMsg{}
	_ stack.Message = SupplyMsg{}
)
