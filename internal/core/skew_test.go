package core

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// TestProcessingDelaySkewInvariants sweeps seeds over two adversarial
// per-protocol CPU-cost skews — consensus much slower than diffusion, and
// diffusion much slower than consensus — and checks that every atomic
// broadcast invariant survives both, even with a membership change landing
// mid-run. Slow consensus makes payloads pile up unordered (deep batches,
// wide pipelines); slow diffusion makes identifiers get ordered before
// their payloads arrive (the indirect stack's rcv(v) predicate and the
// ordered-queue wait do the work). Either skew re-paces every interleaving
// the protocol has; none may cost safety or delivery.
func TestProcessingDelaySkewInvariants(t *testing.T) {
	skews := []struct {
		name   string
		delays simnet.ProcessingDelays
	}{
		{"slow-consensus", simnet.ProcessingDelays{stack.ProtoCons: 2 * time.Millisecond}},
		{"slow-diffusion", simnet.ProcessingDelays{stack.ProtoRB: 2 * time.Millisecond}},
	}
	for _, sk := range skews {
		sk := sk
		t.Run(sk.name, func(t *testing.T) {
			seedSweep(t, 3, func(t *testing.T, seed int64) {
				const n = 4
				c := newCluster(t, n, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), seed,
					withMembers(1, 2, 3), withRecovery(false), pipelined(2, 2))
				c.w.SetProcessingDelays(sk.delays)

				var sent []msg.ID
				for _, p := range []stack.ProcessID{1, 2, 3} {
					for s := 0; s < 15; s++ {
						at := time.Duration((int(seed)*53+int(p)*29+s*71)%1500) * time.Millisecond
						c.abcastTracked(p, at, fmt.Sprintf("m-%d-%d", p, s), &sent)
					}
				}
				c.config(1, 700*time.Millisecond, msg.ConfigChange{Join: 4})
				c.w.RunFor(60 * time.Second)

				final := []stack.ProcessID{1, 2, 3, 4}
				c.checkTotalOrder(t, final)
				c.checkIntegrity(t, final)
				c.checkFullDelivery(t, final, sent)
				c.checkFinalView(t, final, final)
			})
		})
	}
}
