package core

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// seedSweep runs fn as one subtest per seed. Property-test families use it
// to sweep schedules: the default count is the family's choice, `go test
// -short` trims it to 2 seeds so quick runs stay quick, and the
// ABCAST_SEEDS environment variable overrides both (CI can widen a sweep
// without a code change; a single seed reproduces a failure exactly).
func seedSweep(t *testing.T, count int, fn func(t *testing.T, seed int64)) {
	t.Helper()
	if testing.Short() && count > 2 {
		count = 2
	}
	if env := os.Getenv("ABCAST_SEEDS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 1 {
			t.Fatalf("invalid ABCAST_SEEDS=%q: want a positive integer", env)
		}
		count = n
	}
	for seed := int64(1); seed <= int64(count); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fn(t, seed)
		})
	}
}
