package core

// Persistence tests: bounded memory under checkpoint pruning, crash-recovery
// restart from a checkpoint (memory- and file-backed stores), repair-target
// preference, and the long soak asserting a flat memory profile across
// crash/restart churn and partition episodes.
//
// All runs use RunFor, never Run: the checkpoint timer re-arms forever, so a
// persistent world never goes idle.

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/persist"
	"abcast/internal/rbcast"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// pcluster is an n-process system where every process runs with a persistent
// store and can be crashed and restarted as a fresh incarnation on the same
// store and identity.
type pcluster struct {
	t        *testing.T
	w        *simnet.World
	params   netmodel.Params
	interval time.Duration
	// reopen returns the store for process p's next incarnation: the same
	// MemStore across incarnations, or a fresh FileStore handle on the same
	// directory (what a real restarted OS process would do).
	reopen func(p int) persist.Store

	engines   []*Engine           // index 0 unused; current incarnation
	delivered [][]msg.ID          // cumulative across incarnations
	inc       [][]msg.ID          // current incarnation only (reset at restart)
	payloads  []map[msg.ID]string // cumulative
}

func newPersistCluster(t *testing.T, n int, seed int64, interval time.Duration, reopen func(p int) persist.Store) *pcluster {
	t.Helper()
	params := netmodel.Setup1()
	c := &pcluster{
		t:         t,
		w:         simnet.NewWorld(n, params, seed),
		params:    params,
		interval:  interval,
		reopen:    reopen,
		engines:   make([]*Engine, n+1),
		delivered: make([][]msg.ID, n+1),
		inc:       make([][]msg.ID, n+1),
		payloads:  make([]map[msg.ID]string, n+1),
	}
	for i := 1; i <= n; i++ {
		c.payloads[i] = make(map[msg.ID]string)
		c.startProc(i, c.w.Node(stack.ProcessID(i)))
	}
	return c
}

// startProc builds one incarnation of process p on the given node: the full
// stack wiring a restarted process repeats, with the store carrying whatever
// the previous incarnation checkpointed.
func (c *pcluster) startProc(p int, node *stack.Node) {
	c.t.Helper()
	det := fd.NewHeartbeat(node, fd.DefaultConfig())
	cfg := Config{
		Variant:      VariantIndirectCT,
		RB:           rbcast.KindEager,
		Detector:     det,
		RcvCheckCost: c.params.RcvCheckPerID,
		Persist:      &PersistConfig{Store: c.reopen(p), Interval: c.interval},
		Deliver: func(app *msg.App) {
			c.delivered[p] = append(c.delivered[p], app.ID)
			c.inc[p] = append(c.inc[p], app.ID)
			c.payloads[p][app.ID] = string(app.Payload)
		},
	}
	eng, err := New(node, cfg)
	if err != nil {
		c.t.Fatalf("New(p%d): %v", p, err)
	}
	c.engines[p] = eng
}

// abcast schedules a broadcast on p's event loop. The timer belongs to p's
// current incarnation: it is dropped if p crashes before it fires.
func (c *pcluster) abcast(p int, d time.Duration, payload string) {
	c.w.After(stack.ProcessID(p), d, func() { c.engines[p].ABroadcast([]byte(payload)) })
}

// restartAt schedules a restart of p at absolute simulation time `at`,
// rebuilding the stack on the fresh node. `then` (optional) runs right after,
// in the new incarnation's epoch — the place to schedule its broadcasts.
func (c *pcluster) restartAt(p int, at time.Duration, then func()) {
	c.w.Engine().After(at, func() {
		node := c.w.Restart(stack.ProcessID(p))
		c.inc[p] = nil
		c.startProc(p, node)
		if then != nil {
			then()
		}
	})
}

// checkSamePrefix verifies one delivery sequence is a prefix of the other.
func checkSamePrefix(t *testing.T, a, b []msg.ID, la, lb string) {
	t.Helper()
	short := a
	if len(b) < len(a) {
		short = b
	}
	for i := range short {
		if a[i] != b[i] {
			t.Fatalf("total order violated: %s[%d]=%v, %s[%d]=%v", la, i, a[i], lb, i, b[i])
		}
	}
}

// checkIncarnationSuffix verifies a restarted incarnation's delivery sequence
// equals the tail of the canonical order: redelivery resumes at the checkpoint
// frontier and continues in unchanged total order through quiescence.
func checkIncarnationSuffix(t *testing.T, full, tail []msg.ID, label string) {
	t.Helper()
	if len(tail) == 0 {
		t.Fatalf("%s delivered nothing after restart", label)
	}
	if len(tail) > len(full) {
		t.Fatalf("%s delivered %d after restart, more than the canonical %d", label, len(tail), len(full))
	}
	off := len(full) - len(tail)
	for i := range tail {
		if tail[i] != full[off+i] {
			t.Fatalf("%s post-restart order diverges at %d: got %v, canonical %v",
				label, i, tail[i], full[off+i])
		}
	}
	seen := make(map[msg.ID]bool, len(tail))
	for _, id := range tail {
		if seen[id] {
			t.Fatalf("%s delivered %v twice within one incarnation", label, id)
		}
		seen[id] = true
	}
}

// memReopen returns a reopen func sharing one MemStore per process across
// incarnations (restart within the OS process).
func memReopen() func(p int) persist.Store {
	stores := map[int]*persist.MemStore{}
	return func(p int) persist.Store {
		s := stores[p]
		if s == nil {
			s = persist.NewMemStore()
			stores[p] = s
		}
		s.Reopen()
		return s
	}
}

// fileReopen returns a reopen func opening a fresh FileStore handle on the
// same per-process directory each incarnation (restart across OS processes).
func fileReopen(t *testing.T) func(p int) persist.Store {
	base := t.TempDir()
	return func(p int) persist.Store {
		s, err := persist.OpenFileStore(filepath.Join(base, fmt.Sprintf("p%d", p)))
		if err != nil {
			t.Fatalf("open file store p%d: %v", p, err)
		}
		return s
	}
}

// TestPersistBoundedMemory drives steady traffic with checkpointing on and
// verifies the delivered prefix is pruned: received payloads and the retained
// delivered-log suffix end far below the total delivered, while delivery
// itself stays complete, totally ordered, and counted in full.
func TestPersistBoundedMemory(t *testing.T) {
	c := newPersistCluster(t, 3, 7, 50*time.Millisecond, memReopen())
	const total = 900
	for s := 0; s < total; s++ {
		c.abcast(s%3+1, time.Duration(s)*5*time.Millisecond, fmt.Sprintf("m-%d", s))
	}
	c.w.RunFor(30 * time.Second)
	for p := 1; p <= 3; p++ {
		st := c.engines[p].Stats()
		if st.Delivered != total {
			t.Fatalf("p%d delivered %d, want %d", p, st.Delivered, total)
		}
		ckpts, prunes, errs := c.engines[p].PersistStats()
		if ckpts == 0 || prunes == 0 {
			t.Fatalf("p%d: ckpts=%d prunes=%d; persistence idle", p, ckpts, prunes)
		}
		if errs != 0 {
			t.Fatalf("p%d: %d store errors", p, errs)
		}
		if st.LogBase == 0 {
			t.Fatalf("p%d: logBase never advanced", p)
		}
		o := c.engines[p].Observe()
		if o.Received > total/4 || o.DeliveredLog > total/4 {
			t.Fatalf("p%d: memory not bounded: received=%d deliveredLog=%d of %d delivered",
				p, o.Received, o.DeliveredLog, total)
		}
	}
	checkSamePrefix(t, c.delivered[1], c.delivered[2], "p1", "p2")
	checkSamePrefix(t, c.delivered[1], c.delivered[3], "p1", "p3")
}

// testRestart is the crash-recovery property shared by the store-backed
// variants: p2 is crashed mid-run (in-flight traffic dropped), traffic
// continues without it, and a fresh incarnation on the same store must
// re-converge — full delivery of everything including messages it missed
// while down, post-restart order equal to the canonical tail, and new
// broadcasts under fresh (non-aliasing) sequence numbers.
func testRestart(t *testing.T, reopen func(p int) persist.Store) {
	c := newPersistCluster(t, 3, 11, 50*time.Millisecond, reopen)
	var want []string
	send := func(p int, d time.Duration, payload string) {
		c.abcast(p, d, payload)
		want = append(want, payload)
	}
	// Phase 1: everyone broadcasts; p2 checkpoints some of it.
	for i := 1; i <= 3; i++ {
		for s := 0; s < 15; s++ {
			send(i, time.Duration(s*100+i*7)*time.Millisecond, fmt.Sprintf("a-%d-%d", i, s))
		}
	}
	c.w.Engine().After(2*time.Second, func() { c.w.Crash(2, simnet.DropInFlight) })
	// Phase 2: the survivors keep the total order moving while p2 is down.
	for _, p := range []int{1, 3} {
		for s := 0; s < 15; s++ {
			send(p, 2500*time.Millisecond+time.Duration(s*100+p*7)*time.Millisecond, fmt.Sprintf("b-%d-%d", p, s))
		}
	}
	// Restart at 5s; the new incarnation also broadcasts (phase 3) — those
	// messages must get fresh sequence numbers (the WAL'd counter), or they
	// would alias pre-crash identifiers and be deduplicated away.
	c.restartAt(2, 5*time.Second, func() {
		for s := 0; s < 5; s++ {
			c.abcast(2, 2*time.Second+time.Duration(s*100)*time.Millisecond, fmt.Sprintf("c-2-%d", s))
		}
	})
	for s := 0; s < 5; s++ {
		want = append(want, fmt.Sprintf("c-2-%d", s))
		send(1, 7*time.Second+time.Duration(s*100)*time.Millisecond, fmt.Sprintf("c-1-%d", s))
	}
	c.w.RunFor(60 * time.Second)

	for p := 1; p <= 3; p++ {
		have := make(map[string]bool, len(c.payloads[p]))
		for _, pl := range c.payloads[p] {
			have[pl] = true
		}
		for _, w := range want {
			if !have[w] {
				t.Fatalf("no loss violated: p%d never delivered %q", p, w)
			}
		}
		if st := c.engines[p].Stats(); st.Delivered != len(want) {
			t.Fatalf("p%d delivered %d, want %d", p, st.Delivered, len(want))
		}
		if _, _, errs := c.engines[p].PersistStats(); errs != 0 {
			t.Fatalf("p%d: %d store errors", p, errs)
		}
	}
	checkSamePrefix(t, c.delivered[1], c.delivered[3], "p1", "p3")
	checkIncarnationSuffix(t, c.delivered[1], c.inc[2], "p2")
}

func TestRestartFromCheckpointMem(t *testing.T) {
	testRestart(t, memReopen())
}

func TestRestartFromCheckpointFile(t *testing.T) {
	testRestart(t, fileReopen(t))
}

// TestNextPeerPrefersConfigured pins the repair-target preference both
// rotating repair paths (payload fetch, decision sync — and through the
// latter, snapshot producer selection) share: preferred peers come first,
// the rotation still covers everyone, self and unknown entries are ignored,
// and an empty preference leaves the historical rotation untouched.
func TestNextPeerPrefersConfigured(t *testing.T) {
	pref := newCluster(t, 4, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), 3,
		func(cfg *Config) {
			cfg.Recover = &RecoverConfig{PreferPeers: []stack.ProcessID{1, 3, 9}}
		})
	e := pref.engines[1]
	if got := e.nextPeer(0); got != 3 {
		t.Fatalf("first repair target %v, want preferred peer 3", got)
	}
	seen := map[stack.ProcessID]bool{}
	for a := 0; a < 6; a++ {
		q := e.nextPeer(a)
		if q == 1 || q == 0 {
			t.Fatalf("attempt %d returned %v", a, q)
		}
		seen[q] = true
	}
	if len(seen) != 3 {
		t.Fatalf("rotation covered %d peers, want 3", len(seen))
	}

	plain := newCluster(t, 4, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), 3,
		func(cfg *Config) { cfg.Recover = &RecoverConfig{} })
	for a := 0; a < 6; a++ {
		want := stack.ProcessID((1+a%3)%4 + 1)
		if got := plain.engines[1].nextPeer(a); got != want {
			t.Fatalf("empty preference changed the rotation: attempt %d got %v, want %v", a, got, want)
		}
	}
}

// TestPersistSoakFlatMemory is the long-haul property: hours of simulated
// time of steady traffic with checkpointing on, under repeated crash/restart
// churn and partition episodes. The engine's payload map and delivered-log
// suffix, sampled every simulated minute, must stay flat — bounded by repair
// horizons, not by history — while delivery stays complete and totally
// ordered across every restart.
func TestPersistSoakFlatMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: hours of simulated time")
	}
	c := newPersistCluster(t, 3, 17, 200*time.Millisecond, memReopen())
	const dur = 2 * time.Hour

	// Steady traffic from p1 (never crashed; its delivery log is canonical).
	sent := 0
	for ts := time.Second; ts < dur-time.Minute; ts += time.Second {
		c.abcast(1, ts, fmt.Sprintf("s-%d", sent))
		sent++
	}

	// Churn: every 10 minutes, crash p2 or p3 (alternating) for 30 seconds,
	// then restart it from its checkpoint; each fresh incarnation broadcasts
	// a probe, proving restarted senders keep Validity.
	probes := 0
	victim := 2
	for at := 5 * time.Minute; at < dur-10*time.Minute; at += 10 * time.Minute {
		v := victim
		victim = 5 - victim
		c.w.Engine().After(at, func() { c.w.Crash(stack.ProcessID(v), simnet.DropInFlight) })
		probe := fmt.Sprintf("r-%d-%d", v, probes)
		probes++
		c.restartAt(v, at+30*time.Second, func() {
			c.abcast(v, time.Second, probe)
		})
	}

	// Partition episodes (black-hole mode), disjoint from the churn windows.
	for at := 10 * time.Minute; at < dur-10*time.Minute; at += 20 * time.Minute {
		at := at
		c.w.Engine().After(at, func() {
			c.w.Partition(simnet.PartitionDrop, []stack.ProcessID{1, 2}, []stack.ProcessID{3})
		})
		c.w.Engine().After(at+15*time.Second, func() { c.w.Heal() })
	}

	// Sample p1's memory profile every simulated minute.
	type sample struct {
		received, log int
	}
	var samples []sample
	for at := time.Minute; at < dur; at += time.Minute {
		c.w.Engine().After(at, func() {
			o := c.engines[1].Observe()
			samples = append(samples, sample{received: o.Received, log: o.DeliveredLog})
		})
	}

	c.w.RunFor(dur + 2*time.Minute)

	total := sent + probes
	for p := 1; p <= 3; p++ {
		if st := c.engines[p].Stats(); st.Delivered != total {
			t.Fatalf("p%d delivered %d, want %d", p, st.Delivered, total)
		}
		if _, _, errs := c.engines[p].PersistStats(); errs != 0 {
			t.Fatalf("p%d: %d store errors", p, errs)
		}
	}
	checkIncarnationSuffix(t, c.delivered[1], c.inc[2], "p2")
	checkIncarnationSuffix(t, c.delivered[1], c.inc[3], "p3")

	// Flatness: occupancy may spike to roughly the repair horizon while a
	// peer is down or the network is cut (pruning needs everyone's durable
	// frontier), but must never trend with history. A linear profile over
	// ~7000 deliveries would blow far past this bound.
	maxReceived, maxLog := 0, 0
	for _, s := range samples {
		if s.received > maxReceived {
			maxReceived = s.received
		}
		if s.log > maxLog {
			maxLog = s.log
		}
	}
	if maxReceived > total/10 || maxLog > total/10 {
		t.Fatalf("memory profile not flat: max received=%d max deliveredLog=%d over %d delivered",
			maxReceived, maxLog, total)
	}
	final := c.engines[1].Observe()
	if final.Received > 128 || final.DeliveredLog > 128 {
		t.Fatalf("quiescent occupancy high: received=%d deliveredLog=%d", final.Received, final.DeliveredLog)
	}
}
