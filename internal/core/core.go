// Package core implements uniform atomic broadcast by reduction to
// consensus — Algorithm 1 of the paper — with pluggable ordering stacks:
//
//   - VariantConsensusMsgs: consensus directly on sets of *messages* (the
//     original reduction of Chandra & Toueg). Correct but slow for large
//     payloads, since every consensus message carries the payloads.
//   - VariantFaultyIDs: an *unmodified* consensus algorithm run directly on
//     message identifiers over plain reliable broadcast. This is the common
//     shortcut of earlier group-communication stacks; Section 2.2 shows it
//     violates the Validity property of atomic broadcast if one process
//     crashes. It is implemented here deliberately, both as the paper's
//     performance baseline (Figures 3 and 4) and to demonstrate the
//     violation (see the crash tests and examples/crashdemo).
//   - VariantIndirectCT / VariantIndirectMR: the paper's contribution —
//     indirect consensus on identifiers (Algorithms 2 and 3) over plain
//     reliable broadcast. Correct, and nearly as fast as the faulty stack.
//   - VariantURBIDs: unmodified consensus on identifiers over *uniform*
//     reliable broadcast — the alternative correct stack of Section 4.4,
//     which pays an extra communication step on every broadcast.
//
// Properties guaranteed by the correct variants: Validity, Uniform
// integrity, Uniform agreement, Uniform total order.
//
// Beyond the paper, Config.Pipeline generalizes Algorithm 1 from one
// outstanding consensus instance to a window of W concurrent instances with
// disjoint identifier batches; decisions are still consumed in serial
// instance order, so every correctness property above is preserved while
// the throughput ceiling imposed by MaxBatch × instance latency is
// multiplied by W.
package core

import (
	"fmt"
	"time"

	"abcast/internal/adapt"
	"abcast/internal/consensus"
	"abcast/internal/fd"
	"abcast/internal/metrics"
	"abcast/internal/msg"
	"abcast/internal/persist"
	"abcast/internal/rbcast"
	"abcast/internal/relink"
	"abcast/internal/stack"
	"abcast/internal/stats"
	"abcast/internal/trace"
)

// Variant selects an atomic broadcast stack.
type Variant int

// Available stacks.
const (
	VariantConsensusMsgs Variant = iota + 1
	VariantFaultyIDs
	VariantIndirectCT
	VariantIndirectMR
	VariantURBIDs
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantConsensusMsgs:
		return "consensus-on-messages"
	case VariantFaultyIDs:
		return "faulty-consensus-on-ids"
	case VariantIndirectCT:
		return "indirect-consensus-CT"
	case VariantIndirectMR:
		return "indirect-consensus-MR"
	case VariantURBIDs:
		return "consensus-on-ids+urb"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Correct reports whether the variant satisfies all atomic broadcast
// properties under crashes (VariantFaultyIDs does not).
func (v Variant) Correct() bool { return v != VariantFaultyIDs }

// Deliver is the adeliver upcall, invoked in delivery order.
type Deliver func(app *msg.App)

// Config parameterizes an atomic broadcast engine.
type Config struct {
	// Variant selects the ordering stack.
	Variant Variant
	// RB selects the diffusion broadcast for the id-based variants
	// (KindEager = O(n²) or KindLazy = O(n)). VariantURBIDs always uses
	// uniform reliable broadcast; if RB is zero it defaults to KindEager.
	RB rbcast.Kind
	// Detector is the ◇S failure detector shared by the stack's layers.
	Detector fd.Detector
	// RcvCheckCost is the CPU time charged per identifier by the rcv
	// predicate (models the id-set bookkeeping the paper measures as the
	// overhead of indirect consensus). Zero is valid.
	RcvCheckCost time.Duration
	// MaxBatch caps the number of identifiers proposed per consensus
	// instance (0 = unlimited, the paper's Algorithm 1, which proposes
	// the whole unordered set). A cap trades ordering latency under
	// burst for bounded per-instance work — an extension knob, ablated
	// in bench_test.go.
	MaxBatch int
	// Pipeline is the number of consensus instances this process may have
	// in flight concurrently (0 or 1 = the paper's serial Algorithm 1,
	// which starts instance k+1 only after consuming instance k's
	// decision). With W > 1 the engine proposes disjoint identifier
	// batches to instances kNext..kNext+W-1 concurrently; decisions are
	// still *consumed* in serial k order, so uniform total order and the
	// No loss invariant are untouched. Pipelining pays off when MaxBatch
	// bounds per-instance work: serial throughput is capped at
	// MaxBatch/instance-latency, and W concurrent instances multiply that
	// ceiling (see the pipeline ablation in internal/bench).
	Pipeline int
	// Adapt, when non-nil, enables the adaptive control plane: a feedback
	// controller (internal/adapt) samples the engine's signals every
	// control tick — unordered backlog, delivered rate, smoothed
	// propose→decide latency, per-link RTT estimates — and retargets the
	// pipeline width and MaxBatch between instances (AIMD on backlog), plus
	// the relink anti-entropy cadence when Recover is also set. Pipeline
	// and MaxBatch become the controller's *initial* values; zero MaxBatch
	// starts at the controller's minimum batch, since unbounded batching
	// hides the backlog signal the controller steers by. See
	// Engine.Observe, Engine.Retarget and docs/ARCHITECTURE.md.
	Adapt *adapt.Config
	// Recover, when non-nil, enables the recovery subsystem — the relink
	// reliable-link layer, the consensus decide-relay and the engine's
	// payload fetch — which restores the model's reliable-channel
	// assumption over lossy links: with it, correct processes reach full
	// delivery in total order even across drop-mode (black-hole) network
	// partitions. See RecoverConfig.
	Recover *RecoverConfig
	// Persist, when non-nil, enables crash-recovery persistence with bounded
	// memory: the engine checkpoints its delivered-prefix digest to the
	// configured store, prunes payloads and bookkeeping below the boundary
	// every member has durably passed, and a process restarted with the same
	// store resumes from its checkpoint and catches the tail through the
	// recovery paths. Setting it implies Recover with Snapshot enabled (the
	// restart catch-up path); an explicit Recover still tunes the rest. See
	// persist.go and internal/persist.
	Persist *PersistConfig
	// Members, when non-nil, enables dynamic membership: the sorted initial
	// member set (a subset of the universe 1..N; this process need not be in
	// it). Membership then changes only through configuration messages
	// riding the total order (BroadcastConfig): a delivered change switches
	// the transport-level view (diffusion, heartbeats, relink) immediately
	// and the consensus-level view — quorums, coordinator rotation,
	// per-instance fan-out — at instance deliveryPoint+ConfigLag, so every
	// process resolves the same member set for the same instance. Nil (the
	// default) is the static full group: no view bookkeeping, no behavioral
	// change anywhere.
	Members []stack.ProcessID
	// ConfigLag is the number of ordering serials between a configuration
	// change's delivery point and the first consensus instance that uses the
	// new member set (0 = DefaultConfigLag). It must exceed the largest
	// pipeline width the run can reach (the adaptive controller's cap
	// included): instances up to viewFrontier+ConfigLag-1 may be proposed to
	// concurrently, and their views must already be locally determined.
	ConfigLag int
	// Deliver receives adelivered messages, in total order. Configuration
	// messages are consumed by the engine at the delivery boundary and do
	// not reach this callback.
	Deliver Deliver
	// OnDecision, if set, is invoked at the instant this process learns
	// each consensus decision, before the decision is applied. Tests use
	// it to check the paper's No loss invariant (a decided identifier set
	// must be held, in full, by at least one correct process at decision
	// time).
	OnDecision func(k uint64, v consensus.Value)
	// Trace, when non-nil, records every message's lifecycle spans —
	// abroadcast → receive → propose → decide → ordered → adeliver, plus
	// the recovery events (retransmit, fetch, rediffuse, snapshot install,
	// restart) — stamped with the process clock, which is virtual time on
	// the simulator, so a trace is byte-reproducible under the seed. Nil
	// (the default) records nothing: every hook is a nil-receiver check.
	Trace *trace.Recorder
	// Metrics, when non-nil, is the registry the engine's counters and
	// gauges (core.*, persist.*) register into; it is also handed down to
	// the consensus and relink layers. Nil leaves every handle standalone —
	// the Stats views work either way, and updates never allocate or
	// schedule, so enabling a registry cannot perturb a simulated run.
	Metrics *metrics.Registry
}

// Engine is the per-process atomic broadcast engine (Algorithm 1).
//
//abcheck:eventloop all Engine state is owned by the process's event loop
type Engine struct {
	ctx  stack.Context
	cfg  Config
	node *stack.Node // retained for view retargeting (dynamic membership)
	rb   rbcast.Broadcaster
	cons *consensus.Service

	// Observability (Config.Trace / Config.Metrics): the possibly-nil span
	// recorder and the engine's metric cells. Counter/gauge handles are
	// always non-nil (standalone without a registry), so update sites need
	// no gating; see internal/metrics and internal/trace.
	tr           *trace.Recorder
	broadcasts   *metrics.Counter
	deliveredC   *metrics.Counter
	decisions    *metrics.Counter
	rediffusions *metrics.Counter
	winGauge     *metrics.Gauge
	batchGauge   *metrics.Gauge

	seq uint64 // per-sender sequence numbers for id(m)

	// Dynamic membership state (Config.Members): the view log — one entry
	// per applied configuration change, never pruned (a handful of entries
	// per run) — and the consensus-effect lag. See membership.go.
	views     []viewRec
	configLag uint64

	received  map[msg.ID]*msg.App // receivedp: messages received
	delivered map[msg.ID]bool     // messages already adelivered
	inOrdered map[msg.ID]bool     // ids currently queued in orderedp
	unordered msg.IDSet           // unorderedp: received but not yet ordered
	ordered   []ordRec            // orderedp: ordered, not yet adelivered

	kNext    uint64                     // next consensus instance to consume
	kPropose uint64                     // next consensus instance to propose to (≥ kNext)
	window   int                        // pipeline width W (≥ 1; retargetable, see Retarget)
	maxBatch int                        // per-instance id cap (0 = unlimited; retargetable)
	inFlight map[uint64]msg.IDSet       // our outstanding proposals, by instance
	claimed  map[msg.ID]bool            // ids inside some outstanding proposal
	needed   map[uint64]bool            // foreign-live instances we have not joined
	pending  map[uint64]consensus.Value // decisions not yet consumed

	maxInFlight int // high-water mark of len(inFlight), for tests/diagnostics

	// Adaptive control plane state (Config.Adapt): the controller, the
	// propose instants feeding the decision-latency signal, and a retarget
	// counter for tests. See adaptive.go.
	ctrl       *adapt.Controller
	proposedAt map[uint64]time.Time
	decLat     stats.Ewma
	retargets  *metrics.Counter

	// Recovery state (Config.Recover): the ProtoSync sending helper, the
	// single outstanding fetch timer, the rotating fetch target, and a
	// fetch counter for tests.
	sync           stack.Proto
	link           *relink.Link
	wanted         map[msg.ID]bool      // ids revealed by failed rcv checks, payload missing
	unorderedSince map[msg.ID]time.Time // when each unordered id arrived (re-diffusion aging)
	fetchArmed     bool
	rediffArmed    bool
	syncArmed      bool
	fetchAttempt   int
	syncAttempt    int
	fetches        *metrics.Counter
	syncReqs       *metrics.Counter

	// Snapshot state (Config.Recover.Snapshot): the ProtoSnapshot sending
	// helper, the delivered-prefix log (delivery order with ordering
	// serials, the producer side's source of truth), the installer's
	// in-progress transfer, and counters for tests. See snapshot.go.
	snap         stack.Proto
	deliveredLog []ordRec
	snapTarget   uint64          // highest serial an offer has promised; behind until kNext reaches it
	snapFrom     stack.ProcessID // producer of the transfer in progress (0 = none)
	snapStarted  time.Time       // when the transfer was accepted (stall detection)
	snapBoundary uint64          // transfer header, fixed by the first chunk
	snapStart    uint64
	snapTotal    int
	snapMore     bool
	snapChunks   map[int][]SnapEntry
	snapsServed  *metrics.Counter
	snapsDone    *metrics.Counter

	// Crash-recovery persistence state (Config.Persist): the checkpoint/WAL
	// store, the compressed delivered digest (per-sender floors; the
	// delivered map then holds only the residue above them), the durable
	// frontiers peers have announced, and the prune bookkeeping. deliveredN
	// is maintained unconditionally — it equals len(delivered) exactly until
	// persistence starts compressing the set. See persist.go.
	pstore        persist.Store
	ckptEvery     time.Duration
	deliveredN    int                        // total adelivered count
	logBase       uint64                     // deliveredLog entries pruned below deliveredLog[0]
	delFloor      map[stack.ProcessID]uint64 // per-sender contiguous delivered floors
	peerFrontier  map[stack.ProcessID]uint64 // durable frontiers announced per process
	lastCkptF     uint64                     // frontier of the last saved checkpoint
	linkReserve   uint64                     // WAL'd relink sequence reservation
	prunedTo      uint64                     // boundary of the last prune round
	restartProbes int                        // post-restart sync probes still owed
	ckpts         *metrics.Counter
	prunes        *metrics.Counter
	persistErrs   *metrics.Counter
}

// ordRec is one entry of the ordered/delivered sequences: an identifier plus
// the consensus instance that ordered it. The serial lets the snapshot
// producer truncate a transfer exactly at an instance boundary.
type ordRec struct {
	id msg.ID
	k  uint64
}

// New wires an atomic broadcast engine and all its substrate layers into
// the node. Every handler and timer callback the engine ever runs is
// registered (directly or transitively) here.
//
//abcheck:entry constructor; runs before the event loop starts
func New(node *stack.Node, cfg Config) (*Engine, error) {
	if cfg.Deliver == nil {
		return nil, fmt.Errorf("core: nil Deliver upcall")
	}
	if cfg.Detector == nil {
		return nil, fmt.Errorf("core: nil failure detector")
	}
	if cfg.RB == 0 {
		cfg.RB = rbcast.KindEager
	}
	if cfg.Pipeline < 0 {
		return nil, fmt.Errorf("core: negative pipeline window %d", cfg.Pipeline)
	}
	window := cfg.Pipeline
	if window < 1 {
		window = 1
	}
	if cfg.Persist != nil {
		if cfg.Persist.Store == nil {
			return nil, fmt.Errorf("core: Persist with nil Store")
		}
		// Persistence implies the recovery subsystem with snapshot transfer
		// (the restart catch-up path). Work on an engine-owned copy so the
		// caller's RecoverConfig is never mutated.
		rc := RecoverConfig{}
		if cfg.Recover != nil {
			rc = *cfg.Recover
		}
		rc.Snapshot = true
		cfg.Recover = &rc
	}
	e := &Engine{
		ctx:       node.Context(),
		cfg:       cfg,
		node:      node,
		received:  make(map[msg.ID]*msg.App),
		delivered: make(map[msg.ID]bool),
		inOrdered: make(map[msg.ID]bool),
		kNext:     1,
		kPropose:  1,
		window:    window,
		maxBatch:  cfg.MaxBatch,
		inFlight:  make(map[uint64]msg.IDSet),
		claimed:   make(map[msg.ID]bool),
		needed:    make(map[uint64]bool),
		pending:   make(map[uint64]consensus.Value),
	}
	// Metric handles before any init step that may bump them (rehydrate
	// restores the delivered count; a failing store surfaces errors).
	e.tr = cfg.Trace
	e.broadcasts = cfg.Metrics.Counter("core.broadcasts")
	e.deliveredC = cfg.Metrics.Counter("core.delivered")
	e.decisions = cfg.Metrics.Counter("core.decisions")
	e.fetches = cfg.Metrics.Counter("core.fetches")
	e.syncReqs = cfg.Metrics.Counter("core.sync_requests")
	e.rediffusions = cfg.Metrics.Counter("core.rediffusions")
	e.retargets = cfg.Metrics.Counter("core.retargets")
	e.snapsServed = cfg.Metrics.Counter("core.snapshots_served")
	e.snapsDone = cfg.Metrics.Counter("core.snapshots_installed")
	e.ckpts = cfg.Metrics.Counter("persist.checkpoints")
	e.prunes = cfg.Metrics.Counter("persist.prunes")
	e.persistErrs = cfg.Metrics.Counter("persist.errors")
	e.winGauge = cfg.Metrics.Gauge("core.window")
	e.batchGauge = cfg.Metrics.Gauge("core.max_batch")
	if cfg.Adapt != nil {
		e.initAdapt()
	}
	if cfg.Members != nil {
		if err := e.initMembership(); err != nil {
			return nil, err
		}
	}
	if cfg.Persist != nil {
		// After initMembership (rehydrating may replace the seed view log),
		// before initRecovery (which consumes the Link config initPersist
		// rewires).
		if err := e.initPersist(); err != nil {
			return nil, err
		}
	}

	// Diffusion layer.
	switch cfg.Variant {
	case VariantURBIDs:
		e.rb = rbcast.NewUniform(node, e.onRDeliver)
	case VariantConsensusMsgs, VariantFaultyIDs, VariantIndirectCT, VariantIndirectMR:
		e.rb = rbcast.New(cfg.RB, node, cfg.Detector, e.onRDeliver)
	default:
		return nil, fmt.Errorf("core: unknown variant %v", cfg.Variant)
	}

	// Recovery subsystem (reliable link + payload fetch here, decide-relay
	// via the consensus config below).
	if cfg.Recover != nil {
		e.initRecovery(node)
	}

	// Ordering layer.
	ccfg := consensus.Config{
		Detector: cfg.Detector,
		Decide:   e.onDecide,
		Metrics:  cfg.Metrics,
	}
	if e.dynamic() {
		ccfg.ViewAt = e.viewAt
	}
	if cfg.Recover != nil {
		ccfg.Relay = true
		ccfg.DecisionLogCap = cfg.Recover.DecisionLogCap
		if cfg.Recover.Snapshot {
			// Deep lag (a peer behind the decision log's floor) is answered
			// with a snapshot offer instead of a futile relay.
			ccfg.OnDeepLag = e.onDeepLag
		}
	}
	if e.pipelined() {
		// Serial operation needs no participation callback: an instance's
		// identifiers always diffuse to everyone and pull them in. Only a
		// pipelined engine can face an instance it has nothing to say
		// about (see maybePropose) — and an adaptive engine counts as
		// pipelined even at W=1, since the controller may widen the window
		// at any tick (and peers' own controllers may already have).
		ccfg.OnNeed = e.onNeed
	}
	switch cfg.Variant {
	case VariantConsensusMsgs, VariantFaultyIDs, VariantURBIDs:
		ccfg.Algo = consensus.CT
	case VariantIndirectCT:
		ccfg.Algo = consensus.CT
		ccfg.Indirect = true
		ccfg.Rcv = e.rcv
	case VariantIndirectMR:
		ccfg.Algo = consensus.MR
		ccfg.Indirect = true
		ccfg.Rcv = e.rcv
	}
	cons, err := consensus.NewService(node, ccfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	e.cons = cons
	if e.ctrl != nil {
		// Start the control loop only now that every layer is wired and
		// construction can no longer fail.
		e.armAdapt()
	}
	if e.pstore != nil {
		// Same rule for the checkpoint loop — and a restarted incarnation
		// starts probing for the tail it missed while down.
		e.armCkpt()
		e.armSyncReq()
	}
	e.winGauge.Set(int64(e.window))
	e.batchGauge.Set(int64(e.maxBatch))
	return e, nil
}

// ABroadcast atomically broadcasts a payload (Algorithm 1 lines 7-8): the
// message is R-broadcast once; ordering happens on its identifier.
// It returns the new message's identifier.
//
//abcheck:entry public API; callers invoke it on the owning event loop (simnet.World.Do / live mailbox)
func (e *Engine) ABroadcast(payload []byte) msg.ID {
	e.seq++
	e.noteSeq()
	app := &msg.App{
		ID:      msg.ID{Sender: e.ctx.ID(), Seq: e.seq},
		Payload: payload,
	}
	e.broadcasts.Inc()
	e.tr.Record(trace.Event{At: e.ctx.Now(), P: e.ctx.ID(), Kind: trace.KindABroadcast, ID: app.ID})
	e.rb.Broadcast(app)
	return app.ID
}

// rcv is the predicate of Algorithm 1 lines 9-10: true iff every identifier
// in the proposal has a received message. The per-identifier CPU charge
// models the real cost of these checks — the overhead the paper measures in
// Figures 3 and 4.
func (e *Engine) rcv(v consensus.Value) bool {
	ids := idsOfValue(v)
	if e.cfg.RcvCheckCost > 0 {
		e.ctx.Work(time.Duration(len(ids)) * e.cfg.RcvCheckCost)
	}
	for _, id := range ids {
		if e.received[id] == nil {
			// A failed check names messages a peer holds but this process
			// never received — with recovery enabled, fetch them rather
			// than rely on a diffusion that may have been black-holed.
			e.noteWanted(ids)
			return false
		}
	}
	return true
}

// onRDeliver handles R-delivery of a message (Algorithm 1 lines 11-14).
func (e *Engine) onRDeliver(app *msg.App) {
	if e.received[app.ID] != nil {
		return
	}
	if e.pstore != nil && e.isDelivered(app.ID) {
		// Delivered and pruned: a straggling diffusion (or re-diffusion)
		// copy must not re-accumulate the payload the prune dropped.
		return
	}
	e.received[app.ID] = app
	e.tr.Record(trace.Event{At: e.ctx.Now(), P: e.ctx.ID(), Kind: trace.KindReceive, ID: app.ID})
	delete(e.wanted, app.ID)
	if !e.isDelivered(app.ID) && !e.inOrdered[app.ID] {
		e.unordered.Add(app.ID)
		e.noteUnordered(app.ID)
	}
	e.tryDeliver() // the head of orderedp may have been waiting for this payload
	e.maybePropose()
}

// maybePropose starts consensus instances while the pipeline window has
// room. With window 1 this is exactly Algorithm 1 lines 15-17: propose the
// unordered set to kNext when no proposal is outstanding. With window W > 1
// the engine proposes *disjoint* batches of unordered identifiers to
// instances kPropose, kPropose+1, ... until W instances are in flight;
// identifiers claimed by an outstanding proposal are skipped, and become
// proposable again when their instance is consumed without ordering them
// (some other process's batch won the instance — see onDecide).
//
// A pipelined proposal cannot rely on the serial liveness argument (its
// identifiers may all be ordered by an earlier instance's decision before
// the instance runs, after which diffusion pulls nobody in), so proposing
// beyond kNext — or proposing an empty batch — broadcasts a participation
// beacon (consensus.OpenMsg). Conversely, when another process opens an
// instance this process has no identifiers for, it joins with an empty
// batch so quorums stay reachable.
func (e *Engine) maybePropose() {
	for len(e.inFlight) < e.window {
		k := e.kPropose
		if _, decided := e.pending[k]; decided {
			// Already decided by others; nothing to contribute.
			delete(e.needed, k)
			e.kPropose++
			continue
		}
		if e.dynamic() {
			if k >= e.viewFrontier()+e.configLag {
				// Instance k's member set is not locally determined yet: a
				// configuration change still queued for delivery could take
				// effect at or below k. Stop proposing until delivery (or
				// recovery) advances the frontier — every instance below
				// frontier+ConfigLag has its view pinned by the already-
				// applied prefix, so serial operation is never gated.
				return
			}
			if !e.selfInView(k) {
				// Not a member of instance k (still a joiner, or already
				// retired): never propose, claim, or beacon for it — its
				// members decide it, and the decision reaches this process
				// point-to-point if it is in the instance's view, or via
				// relay/snapshot catch-up otherwise.
				delete(e.needed, k)
				e.kPropose = k + 1
				continue
			}
		}
		batch := e.selectBatch()
		if len(batch) == 0 && !((e.pipelined() || e.dynamic()) && e.needed[k]) {
			return
		}
		delete(e.needed, k)
		set := msg.NewIDSet(batch...)
		e.inFlight[k] = set
		if len(e.inFlight) > e.maxInFlight {
			e.maxInFlight = len(e.inFlight)
		}
		for _, id := range batch {
			e.claimed[id] = true
		}
		if e.proposedAt != nil {
			e.proposedAt[k] = e.ctx.Now()
		}
		e.kPropose = k + 1
		if e.pipelined() && (k > e.kNext || len(batch) == 0) {
			// An adaptive engine beacons even at W=1: its window may have
			// shrunk back to serial while kPropose is still ahead of kNext,
			// and the serial liveness argument does not cover those
			// instances.
			e.cons.Open(k)
		}
		e.tr.Record(trace.Event{At: e.ctx.Now(), P: e.ctx.ID(), Kind: trace.KindPropose, K: k, N: len(batch)})
		switch e.cfg.Variant {
		case VariantConsensusMsgs:
			msgs := make([]*msg.App, 0, len(batch))
			for _, id := range batch {
				msgs = append(msgs, e.received[id])
			}
			e.cons.Propose(k, NewMsgSetValue(msgs))
		default:
			e.cons.Propose(k, IDSetValue{Set: set})
		}
	}
}

// selectBatch picks the unordered identifiers not claimed by an outstanding
// proposal, in canonical order, capped at MaxBatch. Disjointness across the
// in-flight instances keeps the pipeline from ordering an identifier twice
// through two of this process's own proposals.
func (e *Engine) selectBatch() []msg.ID {
	all := e.unordered.IDs()
	batch := make([]msg.ID, 0, len(all))
	for _, id := range all {
		if e.claimed[id] {
			continue
		}
		batch = append(batch, id)
		if e.maxBatch > 0 && len(batch) == e.maxBatch {
			break
		}
	}
	return batch
}

// onNeed joins a consensus instance some other process is running. Invoked
// by the consensus service (only when pipelining) on traffic for an
// instance this process has not proposed to.
func (e *Engine) onNeed(k uint64) {
	if k < e.kNext {
		return // settled locally; stale traffic
	}
	e.needed[k] = true
	e.maybePropose()
}

// onDecide records the decision of instance k and consumes decisions in
// serial order (Algorithm 1 lines 18-21).
func (e *Engine) onDecide(k uint64, v consensus.Value) {
	if _, dup := e.pending[k]; dup || k < e.kNext {
		return
	}
	if t0, ok := e.proposedAt[k]; ok {
		// Propose→decide latency of our own proposal: the consensus-level
		// congestion signal of the adaptive control plane.
		e.decLat.Observe(float64(e.ctx.Now().Sub(t0)))
		delete(e.proposedAt, k)
	}
	if e.cfg.OnDecision != nil {
		e.cfg.OnDecision(k, v)
	}
	e.decisions.Inc()
	if e.tr.Enabled() {
		// idsOfValue allocates, so the batch size is computed only when a
		// recorder is attached.
		e.tr.Record(trace.Event{At: e.ctx.Now(), P: e.ctx.ID(), Kind: trace.KindDecide, K: k, N: len(idsOfValue(v))})
	}
	e.pending[k] = v
	e.consumePending()
	// Consumed instances are settled locally and our decide relay is out:
	// their consensus state can be released.
	e.cons.PruneBelow(e.kNext)
	// Decisions left pending mean kNext is missing here — a hole that,
	// after a lossy episode, only an explicit sync may fill.
	e.armSyncReq()
	e.maybePropose()
}

// consumePending consumes decisions in serial order from the pending set,
// advancing kNext as far as the contiguous prefix reaches. Shared by the
// decide upcall and the snapshot installer (which jumps kNext past a gap and
// may thereby unlock already-held later decisions).
func (e *Engine) consumePending() {
	for {
		next, ok := e.pending[e.kNext]
		if !ok {
			break
		}
		delete(e.pending, e.kNext)
		if batch, ours := e.inFlight[e.kNext]; ours {
			// Release our proposal for the consumed instance. Identifiers
			// the decision did not order (another process's batch won) are
			// still in unordered and, unclaimed again, get re-proposed to
			// a later instance by maybePropose.
			delete(e.inFlight, e.kNext)
			for _, id := range batch.IDs() {
				delete(e.claimed, id)
			}
		}
		delete(e.needed, e.kNext)
		delete(e.proposedAt, e.kNext)
		k := e.kNext
		e.kNext++
		e.applyDecision(k, next)
	}
	if e.kPropose < e.kNext {
		// Instances decided entirely without us; never propose below kNext.
		e.kPropose = e.kNext
	}
}

// applyDecision appends the identifiers decided by instance k, in
// deterministic order, to the ordered sequence and delivers what it can.
func (e *Engine) applyDecision(k uint64, v consensus.Value) {
	if mv, ok := v.(MsgSetValue); ok {
		// Consensus on messages: the decision itself carries the
		// payloads, so every decider can deliver them even if the
		// diffusion broadcast has not reached it yet.
		for _, a := range mv.Msgs {
			if e.received[a.ID] == nil {
				e.received[a.ID] = a
				e.tr.Record(trace.Event{At: e.ctx.Now(), P: e.ctx.ID(), Kind: trace.KindReceive, ID: a.ID})
			}
		}
	}
	ids := idsOfValue(v)
	for _, id := range ids {
		e.unordered.Remove(id)
		delete(e.unorderedSince, id)
		if !e.isDelivered(id) && !e.inOrdered[id] {
			e.ordered = append(e.ordered, ordRec{id: id, k: k})
			e.inOrdered[id] = true
			e.tr.Record(trace.Event{At: e.ctx.Now(), P: e.ctx.ID(), Kind: trace.KindOrdered, ID: id, K: k})
		}
	}
	e.tryDeliver()
}

// tryDeliver adelivers ordered messages whose payload has been received
// (Algorithm 1 lines 23-25). With a correct variant the head never blocks
// forever: No loss (or uniform diffusion) guarantees the payload arrives.
func (e *Engine) tryDeliver() {
	for len(e.ordered) > 0 {
		rec := e.ordered[0]
		app := e.received[rec.id]
		if app == nil {
			// Head ordered but not yet received. With recovery enabled,
			// arrange to fetch the payload if the stall persists.
			e.armFetch()
			return
		}
		e.ordered = e.ordered[1:]
		delete(e.inOrdered, rec.id)
		e.markDelivered(rec.id)
		e.tr.Record(trace.Event{At: e.ctx.Now(), P: e.ctx.ID(), Kind: trace.KindADeliver, ID: rec.id, K: rec.k})
		if e.snapshotEnabled() {
			// The delivered prefix, in order and with ordering serials, is
			// what snapshot transfers ship; see snapshot.go.
			e.deliveredLog = append(e.deliveredLog, rec)
		}
		if app.Config != nil && e.dynamic() {
			// A configuration change is consumed at its delivery boundary:
			// the quorum switch it defines takes effect at instance
			// rec.k+ConfigLag, the transport-level view immediately. It is
			// not an application delivery.
			e.applyConfig(rec.k, app.Config)
			continue
		}
		e.cfg.Deliver(app)
	}
}

// Blocked reports whether the engine is stuck: an identifier is at the head
// of the ordered sequence with no corresponding message. Transient in
// correct stacks; permanent in the faulty stack's Section 2.2 scenario.
func (e *Engine) Blocked() bool {
	return len(e.ordered) > 0 && e.received[e.ordered[0].id] == nil
}

// BlockedOn returns the identifier the engine is waiting on, if Blocked.
func (e *Engine) BlockedOn() (msg.ID, bool) {
	if e.Blocked() {
		return e.ordered[0].id, true
	}
	return msg.ID{}, false
}

// HasReceived reports whether this process holds the message with the
// given identifier (the receivedp set of Algorithm 1). Used by invariant
// checkers.
func (e *Engine) HasReceived(id msg.ID) bool { return e.received[id] != nil }

// Stats reports engine counters for diagnostics and tests.
type Stats struct {
	Received  int
	Delivered int
	Unordered int
	OrderedQ  int
	Instances uint64
	// InFlight is the number of this process's currently outstanding
	// consensus proposals; MaxInFlight is its high-water mark. Serial
	// operation (Pipeline ≤ 1) never exceeds 1.
	InFlight    int
	MaxInFlight int
	// Window and MaxBatch are the currently applied pipeline width and
	// per-instance batch cap — equal to the Config values for a static
	// engine, moving targets under the adaptive control plane. Retargets
	// counts how often Retarget changed either.
	Window    int
	MaxBatch  int
	Retargets int
	// Persistence counters (zero without Config.Persist): the retained
	// delivered-log suffix length, the absolute position it starts at
	// (entries pruned below it), and checkpoint/prune round counts.
	DeliveredLog int
	LogBase      uint64
	Checkpoints  int
	Prunes       int
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Received:     len(e.received),
		Delivered:    e.deliveredN,
		Unordered:    e.unordered.Len(),
		DeliveredLog: len(e.deliveredLog),
		LogBase:      e.logBase,
		Checkpoints:  int(e.ckpts.Value()),
		Prunes:       int(e.prunes.Value()),
		OrderedQ:     len(e.ordered),
		Instances:    e.kNext - 1,
		InFlight:     len(e.inFlight),
		MaxInFlight:  e.maxInFlight,
		Window:       e.window,
		MaxBatch:     e.maxBatch,
		Retargets:    int(e.retargets.Value()),
	}
}

// idsOfValue extracts identifiers, in canonical order, from either value
// type.
func idsOfValue(v consensus.Value) []msg.ID {
	switch vv := v.(type) {
	case IDSetValue:
		return vv.Set.IDs()
	case MsgSetValue:
		return vv.IDs()
	default:
		return nil
	}
}
