package core

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// TestSafetyPropertiesQuick is a property-based test: for random seeds,
// jitters, traffic patterns and crash times, the indirect-CT stack must
// preserve prefix order, integrity, and survivor agreement.
func TestSafetyPropertiesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized simulation sweep")
	}
	property := func(seed16 uint16, crashAt8, traffic8 uint8) bool {
		seed := int64(seed16) + 1
		params := netmodel.Setup1()
		params.Jitter = time.Duration(seed%5) * 20 * time.Microsecond
		c := newClusterQuick(3, VariantIndirectCT, params, seed)
		msgs := int(traffic8)%12 + 4
		for s := 0; s < msgs; s++ {
			p := stack.ProcessID(s%3 + 1)
			at := time.Duration((int(seed)*31+s*47)%300) * time.Millisecond
			c.abcastQuick(p, at, fmt.Sprintf("m%d", s))
		}
		crashAt := time.Duration(crashAt8) * 2 * time.Millisecond
		c.w.After(1, crashAt, func() { c.w.Crash(3, simnet.DropInFlight) })
		c.w.RunFor(15 * time.Second)

		// Prefix property between the two survivors.
		a, b := c.delivered[1], c.delivered[2]
		short := a
		if len(b) < len(a) {
			short = b
		}
		for i := range short {
			if a[i] != b[i] {
				return false
			}
		}
		// Agreement at quiescence.
		if len(a) != len(b) {
			return false
		}
		// Integrity.
		for _, p := range []stack.ProcessID{1, 2} {
			seen := map[msg.ID]bool{}
			for _, id := range c.delivered[p] {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSafetyPropertiesQuickPipelined extends the property sweep with a
// random pipeline window and batch cap: whatever (W, MaxBatch, seed, crash
// time) the generator picks, prefix order, integrity and survivor agreement
// must hold.
func TestSafetyPropertiesQuickPipelined(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized simulation sweep")
	}
	property := func(seed16 uint16, crashAt8, traffic8, w8, batch8 uint8) bool {
		seed := int64(seed16) + 1
		w := int(w8)%4 + 1          // W in 1..4
		maxBatch := int(batch8) % 4 // 0 = unbounded, else 1..3
		params := netmodel.Setup1()
		params.Jitter = time.Duration(seed%5) * 20 * time.Microsecond
		c := newClusterQuick(3, VariantIndirectCT, params, seed, func(cfg *Config) {
			cfg.Pipeline = w
			cfg.MaxBatch = maxBatch
		})
		msgs := int(traffic8)%12 + 4
		for s := 0; s < msgs; s++ {
			p := stack.ProcessID(s%3 + 1)
			at := time.Duration((int(seed)*31+s*47)%300) * time.Millisecond
			c.abcastQuick(p, at, fmt.Sprintf("m%d", s))
		}
		crashAt := time.Duration(crashAt8) * 2 * time.Millisecond
		c.w.After(1, crashAt, func() { c.w.Crash(3, simnet.DropInFlight) })
		c.w.RunFor(15 * time.Second)

		a, b := c.delivered[1], c.delivered[2]
		short := a
		if len(b) < len(a) {
			short = b
		}
		for i := range short {
			if a[i] != b[i] {
				return false
			}
		}
		if len(a) != len(b) {
			return false
		}
		for _, p := range []stack.ProcessID{1, 2} {
			seen := map[msg.ID]bool{}
			for _, id := range c.delivered[p] {
				if seen[id] {
					return false
				}
				seen[id] = true
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// quickCluster is a pared-down harness for property tests (no *testing.T in
// the construction path so it can run under quick.Check).
type quickCluster struct {
	w         *simnet.World
	engines   []*Engine
	delivered [][]msg.ID
}

func newClusterQuick(n int, variant Variant, params netmodel.Params, seed int64, mutate ...func(*Config)) *quickCluster {
	c := &quickCluster{
		w:         simnet.NewWorld(n, params, seed),
		engines:   make([]*Engine, n+1),
		delivered: make([][]msg.ID, n+1),
	}
	for i := 1; i <= n; i++ {
		i := i
		node := c.w.Node(stack.ProcessID(i))
		det := fd.NewHeartbeat(node, fd.DefaultConfig())
		cfg := Config{
			Variant:  variant,
			RB:       rbcast.KindEager,
			Detector: det,
			Deliver: func(app *msg.App) {
				c.delivered[i] = append(c.delivered[i], app.ID)
			},
		}
		for _, m := range mutate {
			m(&cfg)
		}
		eng, err := New(node, cfg)
		if err != nil {
			panic(err) // construction is deterministic; a failure is a bug
		}
		c.engines[i] = eng
	}
	return c
}

func (c *quickCluster) abcastQuick(p stack.ProcessID, d time.Duration, payload string) {
	c.w.After(p, d, func() { c.engines[p].ABroadcast([]byte(payload)) })
}

// SoakLongRun pushes sustained traffic with periodic payload size changes
// for many virtual minutes; guards against slow state leaks and ordering
// drift in long executions.
func TestSoakLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	c := newCluster(t, 3, VariantIndirectCT, rbcast.KindEager, netmodel.Setup1(), 99)
	const total = 2000
	for s := 0; s < total; s++ {
		p := stack.ProcessID(s%3 + 1)
		at := time.Duration(s) * 2 * time.Millisecond // ~500 msg/s for 4s
		size := (s % 5) * 400
		c.abcast(p, at, string(make([]byte, size)))
	}
	c.w.RunFor(60 * time.Second)
	for p := 1; p <= 3; p++ {
		st := c.engines[p].Stats()
		if st.Delivered != total {
			t.Fatalf("p%d delivered %d/%d", p, st.Delivered, total)
		}
		if st.Unordered != 0 || st.OrderedQ != 0 {
			t.Fatalf("p%d left residue: %+v", p, st)
		}
		if count := c.engines[p].cons.InstanceCount(); count > 3 {
			t.Fatalf("p%d retains %d instances after soak", p, count)
		}
	}
	c.checkTotalOrder(t, procs(1, 2, 3))
	c.checkIntegrity(t, procs(1, 2, 3))
}
