package sim

import (
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.After(3*time.Millisecond, func() { got = append(got, 3) })
	e.After(1*time.Millisecond, func() { got = append(got, 1) })
	e.After(2*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(3*time.Millisecond) {
		t.Fatalf("Now = %v, want 3ms", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(time.Millisecond), func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("events at same instant not FIFO: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var fired []string
	e.After(time.Millisecond, func() {
		fired = append(fired, "a")
		e.After(time.Millisecond, func() { fired = append(fired, "b") })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "b" {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != Time(2*time.Millisecond) {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.After(time.Millisecond, func() { fired = true })
	tm.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineSchedulingInPastRunsNow(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.After(5*time.Millisecond, func() {
		e.At(0, func() { at = e.Now() })
	})
	e.Run()
	if at != Time(5*time.Millisecond) {
		t.Fatalf("past event ran at %v, want now (5ms)", at)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine(1)
	e.After(time.Millisecond, func() {})
	n := e.RunUntil(Time(10 * time.Millisecond))
	if n != 1 {
		t.Fatalf("executed %d events, want 1", n)
	}
	if e.Now() != Time(10*time.Millisecond) {
		t.Fatalf("Now = %v, want 10ms", e.Now())
	}
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.After(10*time.Millisecond, func() { fired = true })
	e.RunUntil(Time(5 * time.Millisecond))
	if fired {
		t.Fatal("future event fired early")
	}
	if !e.Pending() {
		t.Fatal("future event lost")
	}
	e.RunUntil(Time(20 * time.Millisecond))
	if !fired {
		t.Fatal("future event never fired")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.After(time.Millisecond, func() { count++; e.Stop() })
	e.After(2*time.Millisecond, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("executed %d events after Stop, want 1", count)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false")
	}
}

func TestResourceFIFO(t *testing.T) {
	var r Resource
	s1, e1 := r.Acquire(0, 10*time.Millisecond)
	if s1 != 0 || e1 != Time(10*time.Millisecond) {
		t.Fatalf("first acquire: start=%v end=%v", s1, e1)
	}
	// Submitted while busy: queues behind.
	s2, e2 := r.Acquire(Time(2*time.Millisecond), 5*time.Millisecond)
	if s2 != Time(10*time.Millisecond) || e2 != Time(15*time.Millisecond) {
		t.Fatalf("second acquire: start=%v end=%v", s2, e2)
	}
	// Submitted after idle: starts immediately.
	s3, _ := r.Acquire(Time(20*time.Millisecond), time.Millisecond)
	if s3 != Time(20*time.Millisecond) {
		t.Fatalf("third acquire: start=%v", s3)
	}
}

func TestResourceExtend(t *testing.T) {
	var r Resource
	r.Extend(Time(5*time.Millisecond), 2*time.Millisecond)
	if r.FreeAt() != Time(7*time.Millisecond) {
		t.Fatalf("FreeAt = %v", r.FreeAt())
	}
	r.Extend(0, time.Millisecond) // already busy: appends
	if r.FreeAt() != Time(8*time.Millisecond) {
		t.Fatalf("FreeAt = %v", r.FreeAt())
	}
}

func TestTimeHelpers(t *testing.T) {
	a := Time(time.Second)
	if a.Add(time.Second) != Time(2*time.Second) {
		t.Fatal("Add")
	}
	if a.Sub(0) != time.Second {
		t.Fatal("Sub")
	}
	if !a.AsTime().Equal(time.Unix(1, 0)) {
		t.Fatal("AsTime")
	}
}
