// Package sim implements a deterministic discrete-event simulation kernel:
// a virtual clock, an event queue, and FIFO resources used to model CPUs and
// network links.
//
// Its role is the paper's simulated test bed: the authors evaluated their
// algorithms in the Neko framework (Urbán et al.), where the same protocol
// implementation runs in simulation and on a real network. This kernel is
// the simulation half of that property — given a seed, a run is exactly
// reproducible event for event, which is what lets the repository pin
// protocol schedules (adversarial crash timings, partition episodes) and
// archive byte-stable benchmark output across revisions.
//
// The kernel is deliberately small and generic; the network cost model that
// the benchmarks rely on lives in package netmodel, and the process/protocol
// plumbing in package simnet.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Time is a virtual instant, in nanoseconds since the start of the
// simulation.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// AsTime converts the virtual instant into a time.Time anchored at the Unix
// epoch, so protocol code can use the standard time package uniformly across
// runtimes.
func (t Time) AsTime() time.Time { return time.Unix(0, int64(t)) }

// event is a scheduled callback.
type event struct {
	at        Time
	seq       uint64 // FIFO tie-break for events at the same instant
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulation engine. All
// scheduled callbacks run on the goroutine that calls Run/Step, in
// deterministic (time, insertion) order.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	stopped bool
}

// NewEngine returns an engine whose random source is seeded
// deterministically.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Timer cancels a scheduled event.
type Timer struct{ ev *event }

// Cancel prevents the event from firing. Idempotent; cancelling an already
// fired event has no effect.
func (t Timer) Cancel() {
	if t.ev != nil {
		t.ev.cancelled = true
	}
}

// At schedules fn to run at virtual instant t. Scheduling in the past runs
// the event at the current time (immediately after already queued events at
// this instant).
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return Timer{ev: ev}
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	return e.At(e.now.Add(d), fn)
}

// Step runs the next pending event. It returns false when the queue is
// empty or the engine has been stopped.
func (e *Engine) Step() bool {
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run processes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= deadline, advancing the clock
// to exactly deadline if the simulation goes idle earlier. It returns the
// number of events executed.
func (e *Engine) RunUntil(deadline Time) int {
	executed := 0
	for len(e.events) > 0 && !e.stopped {
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		if e.Step() {
			executed++
		}
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return executed
}

// peek returns the earliest non-cancelled event without removing it.
func (e *Engine) peek() *event {
	for len(e.events) > 0 {
		if e.events[0].cancelled {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0]
	}
	return nil
}

// Pending reports whether any event remains scheduled.
func (e *Engine) Pending() bool { return e.peek() != nil }

// Stop halts the engine; subsequent Step/Run calls return immediately.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }
