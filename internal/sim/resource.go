package sim

import "time"

// Resource models a FIFO server (a CPU or a network link): work items are
// served one at a time, in the order they are submitted, each occupying the
// resource for its service duration.
//
// Resource does not schedule events itself; callers combine the returned
// completion instants with Engine.At.
type Resource struct {
	busyUntil Time
}

// Acquire submits a work item of duration d at instant now. It returns the
// instant service starts (>= now) and the instant it completes. The resource
// is busy until the returned end time.
func (r *Resource) Acquire(now Time, d time.Duration) (start, end Time) {
	start = now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	end = start.Add(d)
	r.busyUntil = end
	return start, end
}

// Extend lengthens the current busy period by d, starting no earlier than
// now. It is used to charge extra CPU work discovered while an event handler
// is executing (e.g. the rcv(v) checks of indirect consensus).
func (r *Resource) Extend(now Time, d time.Duration) {
	if r.busyUntil < now {
		r.busyUntil = now
	}
	r.busyUntil = r.busyUntil.Add(d)
}

// FreeAt returns the instant the resource becomes idle.
func (r *Resource) FreeAt() Time { return r.busyUntil }

// Utilization returns the fraction of the window [from, to] during which the
// resource was busy, assuming busyUntil only moved forward. It is a coarse
// measure used by benchmark diagnostics.
func (r *Resource) Utilization(from, to Time) float64 {
	if to <= from {
		return 0
	}
	busy := r.busyUntil
	if busy > to {
		busy = to
	}
	if busy <= from {
		return 0
	}
	return float64(busy-from) / float64(to-from)
}
