package netmodel

import (
	"testing"
	"time"
)

func TestSendRecvCostLinearInSize(t *testing.T) {
	p := Setup1()
	small := p.SendCost(0)
	big := p.SendCost(10000)
	if small != p.SendOverhead {
		t.Fatalf("SendCost(0) = %v, want %v", small, p.SendOverhead)
	}
	if big-small != 10000*p.SendPerByte {
		t.Fatalf("per-byte send cost wrong: %v", big-small)
	}
	if p.RecvCost(100) != p.RecvOverhead+100*p.RecvPerByte {
		t.Fatal("RecvCost wrong")
	}
}

func TestTxTime(t *testing.T) {
	p := Params{Bandwidth: 1e6, WirePerMsg: 0}
	if got := p.TxTime(1e6); got != time.Second {
		t.Fatalf("TxTime(1MB @ 1MB/s) = %v, want 1s", got)
	}
	p.WirePerMsg = 100
	if got := p.TxTime(0); got != 100*time.Microsecond {
		t.Fatalf("framing-only TxTime = %v, want 100µs", got)
	}
	// Zero bandwidth (Instant) means free transmission.
	if Instant().TxTime(1e9) != 0 {
		t.Fatal("Instant network should have zero tx time")
	}
}

func TestSetupsOrdering(t *testing.T) {
	s1, s2 := Setup1(), Setup2()
	// Setup 2 (P4 + GbE) must dominate Setup 1 (PIII + 100Mb) everywhere.
	if s2.SendOverhead >= s1.SendOverhead {
		t.Fatal("Setup2 send overhead should be lower than Setup1")
	}
	if s2.Bandwidth <= s1.Bandwidth {
		t.Fatal("Setup2 bandwidth should be higher than Setup1")
	}
	if s2.Latency > s1.Latency {
		t.Fatal("Setup2 latency should not exceed Setup1")
	}
	if s2.RcvCheckPerID >= s1.RcvCheckPerID {
		t.Fatal("Setup2 rcv check should be cheaper than Setup1")
	}
	for _, s := range []Params{s1, s2} {
		if s.SendOverhead <= 0 || s.RecvOverhead <= 0 || s.Latency <= 0 || s.Bandwidth <= 0 {
			t.Fatal("setup has non-positive base costs")
		}
	}
}
