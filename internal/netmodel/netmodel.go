// Package netmodel defines the cost model of the simulated network and the
// two calibrated parameter sets corresponding to the paper's test beds.
//
// The model follows the structure of the Neko simulation model used by the
// paper's authors (Urbán's performance-evaluation framework): transmitting a
// message occupies, in order,
//
//  1. the sender's CPU, for SendOverhead + size*SendPerByte;
//  2. the directed link from sender to receiver, for
//     (size+WirePerMsg)/Bandwidth — links are FIFO, like a TCP connection;
//  3. the wire, for Latency (propagation delay, possibly jittered);
//  4. the receiver's CPU, for RecvOverhead + size*RecvPerByte, before the
//     protocol handler runs.
//
// Saturation effects — the latency blow-ups in the paper's Figures 1 and 3-7
// — emerge from queueing on the CPU and link resources, not from any
// hard-coded curve.
package netmodel

import (
	"time"

	"abcast/internal/stack"
)

// Params parameterizes the simulated network and hosts.
type Params struct {
	// SendOverhead is the fixed CPU cost of handing one message to the
	// network, and SendPerByte the per-byte (serialization) CPU cost.
	SendOverhead time.Duration
	SendPerByte  time.Duration

	// RecvOverhead / RecvPerByte are the receive-side equivalents.
	RecvOverhead time.Duration
	RecvPerByte  time.Duration

	// Latency is the one-way propagation delay of the network.
	Latency time.Duration
	// Jitter, if non-zero, uniformly perturbs each message's latency in
	// [-Jitter, +Jitter]. Deterministic given the simulation seed.
	Jitter time.Duration

	// Topology, when set, replaces the uniform Latency/Jitter/Bandwidth
	// with per-directed-link parameters (see Topology and LinkFor). It is
	// how geo-replicated deployments — sites on fast local links joined by
	// slow asymmetric WAN paths — are modelled.
	Topology *Topology

	// Bandwidth is the capacity of each directed link, in bytes/second.
	// A Topology link with zero bandwidth inherits this value.
	Bandwidth float64
	// WirePerMsg is per-message framing overhead added on the wire.
	WirePerMsg int

	// LocalDeliveryCost is the CPU cost of a process sending a message to
	// itself (no network involved).
	LocalDeliveryCost time.Duration

	// RcvCheckPerID is the CPU cost of checking one message identifier in
	// the rcv(v) predicate of indirect consensus. This is the cost the
	// paper measures as the overhead of indirect consensus over the
	// (faulty) direct use of consensus on identifiers (Figures 3 and 4).
	RcvCheckPerID time.Duration

	// LatencyFn, when set, overrides the propagation delay per message —
	// including the per-link delay of a Topology. The precedence contract
	// is: LatencyFn > Topology > uniform Latency+Jitter. (LatencyFn does
	// not override bandwidth: link occupancy still follows the Topology or
	// the uniform Bandwidth.) It is used by adversarial tests to build the
	// asynchronous schedules of Section 2.2 (reliable channels are not FIFO
	// across messages in the formal model).
	LatencyFn func(from, to stack.ProcessID, env stack.Envelope) time.Duration
}

// LinkFor resolves the effective parameters of the directed link from→to:
// the Topology's link when one is set (with zero-bandwidth links inheriting
// the uniform Bandwidth), the uniform Latency/Jitter/Bandwidth otherwise.
// Callers honouring the precedence contract must consult LatencyFn first —
// when set, it replaces the returned Latency and Jitter (never the
// Bandwidth).
func (p Params) LinkFor(from, to stack.ProcessID) Link {
	if p.Topology == nil {
		return Link{Latency: p.Latency, Jitter: p.Jitter, Bandwidth: p.Bandwidth}
	}
	l := p.Topology.LinkOf(from, to)
	if l.Bandwidth == 0 {
		l.Bandwidth = p.Bandwidth
	}
	return l
}

// TxTimeOn returns the link occupancy time of a message of the given wire
// size on the directed link from→to, honouring a Topology's per-link
// bandwidth.
func (p Params) TxTimeOn(from, to stack.ProcessID, size int) time.Duration {
	return p.txTime(p.LinkFor(from, to).Bandwidth, size)
}

// txTime is the shared occupancy formula: (size+framing)/bandwidth, with
// non-positive bandwidth meaning free transmission.
func (p Params) txTime(bw float64, size int) time.Duration {
	if bw <= 0 {
		return 0
	}
	bytes := float64(size + p.WirePerMsg)
	return time.Duration(bytes / bw * float64(time.Second))
}

// SendCost returns the sender-side CPU cost for a message of the given wire
// size.
func (p Params) SendCost(size int) time.Duration {
	return p.SendOverhead + time.Duration(size)*p.SendPerByte
}

// RecvCost returns the receiver-side CPU cost for a message of the given
// wire size.
func (p Params) RecvCost(size int) time.Duration {
	return p.RecvOverhead + time.Duration(size)*p.RecvPerByte
}

// TxTime returns the link occupancy time of a message of the given wire
// size on the uniform network.
func (p Params) TxTime(size int) time.Duration {
	return p.txTime(p.Bandwidth, size)
}

// Setup1 models the paper's Setup 1: Pentium III 766 MHz hosts on switched
// 100Base-TX Ethernet, running a JVM. Costs are calibrated to produce
// latencies of the same order of magnitude as the paper's measurements
// (single-digit milliseconds for an unloaded 3-process atomic broadcast).
func Setup1() Params {
	return Params{
		SendOverhead:      110 * time.Microsecond, // JVM + kernel per-message cost
		SendPerByte:       28 * time.Nanosecond,   // JVM serialization
		RecvOverhead:      110 * time.Microsecond,
		RecvPerByte:       28 * time.Nanosecond,
		Latency:           85 * time.Microsecond,
		Jitter:            12 * time.Microsecond,
		Bandwidth:         11.5e6, // ~92 Mbit/s of goodput
		WirePerMsg:        60,
		LocalDeliveryCost: 15 * time.Microsecond,
		RcvCheckPerID:     60 * time.Microsecond,
	}
}

// Setup2 models the paper's Setup 2: Pentium 4 3.2 GHz hosts on Gigabit
// Ethernet.
func Setup2() Params {
	return Params{
		SendOverhead:      50 * time.Microsecond,
		SendPerByte:       7 * time.Nanosecond,
		RecvOverhead:      50 * time.Microsecond,
		RecvPerByte:       7 * time.Nanosecond,
		Latency:           45 * time.Microsecond,
		Jitter:            6 * time.Microsecond,
		Bandwidth:         110e6, // ~880 Mbit/s of goodput
		WirePerMsg:        60,
		LocalDeliveryCost: 6 * time.Microsecond,
		RcvCheckPerID:     8 * time.Microsecond,
	}
}

// Instant returns a zero-cost network: no latency, no CPU cost, infinite
// bandwidth. Used by unit tests that exercise protocol logic rather than
// performance.
func Instant() Params {
	return Params{Bandwidth: 0}
}
