package netmodel

import (
	"time"

	"abcast/internal/stack"
)

// Link is the parameter set of one directed link. Latency and Jitter are
// taken as given — zero means a zero-delay, jitter-free link; only a zero
// Bandwidth inherits the uniform Params.Bandwidth (see Params.LinkFor).
type Link struct {
	// Latency is the one-way propagation delay of the link.
	Latency time.Duration
	// Jitter uniformly perturbs each message's latency in [-Jitter, +Jitter].
	Jitter time.Duration
	// Bandwidth is the link capacity in bytes/second; 0 inherits
	// Params.Bandwidth.
	Bandwidth float64
}

// Topology assigns every process to a site and every ordered site pair a
// Link, turning the uniform network of Params into a geo-replicated one with
// per-directed-link latency, jitter, and bandwidth. Directions are
// independent, so inter-site paths may be asymmetric (as real WAN routes
// are).
//
// Precedence: when Params.LatencyFn is set it overrides the topology's
// latency and jitter (but not bandwidth) — LatencyFn is the adversarial
// escape hatch and always wins. See Params.LatencyFn.
type Topology struct {
	// Name labels the topology in figure titles and flag values.
	Name string
	// SiteLink[i][j] is the directed link from site i to site j; i == j is
	// the intra-site link. len(SiteLink) is the number of sites.
	SiteLink [][]Link
	// Assign[p-1] is the site of process p. Processes beyond len(Assign)
	// are assigned round-robin ((p-1) mod sites), so the common "one or two
	// processes per site" layouts need no explicit assignment.
	Assign []int
}

// Sites returns the number of sites.
func (t *Topology) Sites() int { return len(t.SiteLink) }

// Site returns the site of process p.
func (t *Topology) Site(p stack.ProcessID) int {
	i := int(p) - 1
	if i >= 0 && i < len(t.Assign) {
		return t.Assign[i]
	}
	return i % t.Sites()
}

// LinkOf returns the directed link parameters from process `from` to
// process `to`.
func (t *Topology) LinkOf(from, to stack.ProcessID) Link {
	return t.SiteLink[t.Site(from)][t.Site(to)]
}

// SameSite reports whether two processes share a site.
func (t *Topology) SameSite(a, b stack.ProcessID) bool {
	return t.Site(a) == t.Site(b)
}

// SiteProcs returns the processes of site s in an n-process system, in
// ascending order. Benchmarks use it to cut a whole site off in partition
// episodes.
func (t *Topology) SiteProcs(s, n int) []stack.ProcessID {
	var out []stack.ProcessID
	for p := stack.ProcessID(1); p <= stack.ProcessID(n); p++ {
		if t.Site(p) == s {
			out = append(out, p)
		}
	}
	return out
}

// WAN3Sites models a 3-site geo-replicated deployment of Setup-2-class
// hosts: 1 ms intra-site links at full LAN bandwidth, and asymmetric
// inter-site links of 40/80/120 ms (with the reverse directions a few ms
// longer, as real WAN routes are) at ~100 Mbit/s. Jitter scales with
// latency. Site membership is round-robin: with n=3, process p lives alone
// in site p-1.
//
// The profile is where the pipeline extension pays off: a consensus round
// costs an inter-site round trip, so the serial engine idles for tens of
// milliseconds between instances (see figures g1/g2).
func WAN3Sites() Params {
	p := Setup2()
	intra := Link{Latency: time.Millisecond, Jitter: 50 * time.Microsecond, Bandwidth: p.Bandwidth}
	wan := func(lat time.Duration) Link {
		return Link{Latency: lat, Jitter: lat / 40, Bandwidth: 12.5e6}
	}
	p.Topology = &Topology{
		Name: "wan3",
		SiteLink: [][]Link{
			{intra, wan(40 * time.Millisecond), wan(80 * time.Millisecond)},
			{wan(44 * time.Millisecond), intra, wan(120 * time.Millisecond)},
			{wan(88 * time.Millisecond), wan(126 * time.Millisecond), intra},
		},
	}
	return p
}
