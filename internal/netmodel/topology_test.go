package netmodel

import (
	"testing"
	"time"

	"abcast/internal/stack"
)

func TestTopologySiteAssignment(t *testing.T) {
	p := WAN3Sites()
	topo := p.Topology
	if topo == nil || topo.Sites() != 3 {
		t.Fatalf("WAN3Sites topology = %+v, want 3 sites", topo)
	}
	// Round-robin default: p1..p6 -> sites 0,1,2,0,1,2.
	for i, want := range []int{0, 1, 2, 0, 1, 2} {
		if got := topo.Site(stack.ProcessID(i + 1)); got != want {
			t.Fatalf("Site(p%d) = %d, want %d", i+1, got, want)
		}
	}
	// Explicit assignment wins over round-robin.
	topo.Assign = []int{2, 2}
	if topo.Site(1) != 2 || topo.Site(2) != 2 || topo.Site(3) != 2 {
		t.Fatalf("explicit assignment ignored: %d %d %d",
			topo.Site(1), topo.Site(2), topo.Site(3))
	}
	topo.Assign = nil
	if !topo.SameSite(1, 4) || topo.SameSite(1, 2) {
		t.Fatal("SameSite wrong")
	}
	if got := topo.SiteProcs(1, 6); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("SiteProcs(1, 6) = %v", got)
	}
}

func TestTopologyAsymmetry(t *testing.T) {
	p := WAN3Sites()
	topo := p.Topology
	// Inter-site latencies must be asymmetric (real WAN routes are), and
	// intra-site links must be far faster than inter-site ones.
	fwd := topo.LinkOf(1, 2).Latency
	rev := topo.LinkOf(2, 1).Latency
	if fwd == rev {
		t.Fatalf("link 1->2 and 2->1 both %v; topology should be asymmetric", fwd)
	}
	intra := topo.LinkOf(1, 4).Latency
	if intra*10 > fwd {
		t.Fatalf("intra-site %v not far below inter-site %v", intra, fwd)
	}
}

func TestLinkForFallbacks(t *testing.T) {
	// Without a topology, LinkFor returns the uniform parameters.
	p := Setup1()
	l := p.LinkFor(1, 2)
	if l.Latency != p.Latency || l.Jitter != p.Jitter || l.Bandwidth != p.Bandwidth {
		t.Fatalf("uniform LinkFor = %+v", l)
	}
	// A topology link with zero bandwidth inherits the uniform bandwidth.
	p.Bandwidth = 1e6 // clean number: tx times divide exactly
	p.Topology = &Topology{SiteLink: [][]Link{
		{{Latency: time.Millisecond}, {Latency: 40 * time.Millisecond}},
		{{Latency: 44 * time.Millisecond}, {Latency: time.Millisecond}},
	}}
	l = p.LinkFor(1, 2)
	if l.Latency != 40*time.Millisecond {
		t.Fatalf("topology latency not used: %v", l.Latency)
	}
	if l.Bandwidth != p.Bandwidth {
		t.Fatalf("zero-bandwidth link did not inherit uniform bandwidth: %v", l.Bandwidth)
	}
	if got := p.TxTimeOn(1, 2, 1000); got != p.TxTime(1000) {
		t.Fatalf("TxTimeOn with inherited bandwidth = %v, want %v", got, p.TxTime(1000))
	}
	// A link with its own bandwidth uses it.
	p.Topology.SiteLink[0][1].Bandwidth = p.Bandwidth / 2
	if got := p.TxTimeOn(1, 2, 1000); got != 2*p.TxTime(1000) {
		t.Fatalf("per-link bandwidth ignored: %v", got)
	}
}
