package consensus

import "abcast/internal/stack"

// ctInst is the round machinery of the Chandra–Toueg ◇S algorithm, covering
// both the original algorithm and the paper's indirect adaptation
// (Algorithm 2). The differences between the two are confined to
// actOnProposal (lines 25-30: accept the coordinator's proposal only if
// rcv(v) holds) and to the coordinator keeping the selected proposal in
// propVal (the paper's estimatec) separate from its own estimate.
//
// Resilience: f < n/2 in both flavours — the paper's point is that CT is
// "fairly easy" to adapt without losing resilience.
type ctInst struct {
	in *instance

	estimate Value
	ts       int // last round in which estimate was updated
	r        int // current round
	phase    int // 3 = waiting for coordinator proposal, 4 = coordinator collecting replies, 0 = settled

	ests      map[int]map[stack.ProcessID]CTEstimateMsg // Phase 1 estimates, per round (coordinator)
	proposals map[int]Value                             // coordinator proposals received, per round
	propSent  map[int]bool                              // rounds for which this process, as coordinator, proposed
	propVal   map[int]Value                             // estimatec per round (coordinator)
	acks      map[int]map[stack.ProcessID]bool
	nacks     map[int]map[stack.ProcessID]bool
}

var _ algoImpl = (*ctInst)(nil)

func newCTInst(in *instance) *ctInst {
	return &ctInst{
		in:        in,
		ests:      make(map[int]map[stack.ProcessID]CTEstimateMsg),
		proposals: make(map[int]Value),
		propSent:  make(map[int]bool),
		propVal:   make(map[int]Value),
		acks:      make(map[int]map[stack.ProcessID]bool),
		nacks:     make(map[int]map[stack.ProcessID]bool),
	}
}

func (c *ctInst) n() int                      { return c.in.nMembers() }
func (c *ctInst) coord(r int) stack.ProcessID { return c.in.coordOf(r) }
func (c *ctInst) self() stack.ProcessID       { return c.in.ctx().ID() }

// propose implements algoImpl.
func (c *ctInst) propose(v Value) {
	c.estimate = v
	c.ts = 0
	c.r = 0
	c.nextRound()
}

// nextRound advances to round r+1 (the body of the while loop of
// Algorithm 2).
func (c *ctInst) nextRound() {
	if c.in.decided {
		return
	}
	c.r++
	c.phase = 3
	r := c.r
	co := c.coord(r)

	// Phase 1: send the current estimate to the round's coordinator
	// (skipped in round 1, where the coordinator uses its own estimate).
	if r > 1 {
		c.in.svc.send(co, c.in.k, CTEstimateMsg{R: r, TS: c.ts, Est: c.estimate})
	}

	// Phase 2 (coordinator): round 1 proposes the coordinator's own
	// estimate immediately; later rounds wait for a majority of
	// estimates.
	if co == c.self() {
		if r == 1 {
			c.propVal[1] = c.estimate
			c.propSent[1] = true
			c.in.svc.broadcast(c.in.k, CTProposalMsg{R: 1, Est: c.estimate})
		} else {
			c.tryCoordinatorPropose(r)
		}
	}

	// Phase 3 entry: the proposal (or grounds for suspicion) may already
	// be at hand.
	if _, ok := c.proposals[r]; ok {
		c.actOnProposal(r)
	} else if c.in.svc.cfg.Detector.Suspects(co) {
		c.refuse(r)
	}
}

// tryCoordinatorPropose fires when this process coordinates round r, has
// entered round r, and holds ⌈(n+1)/2⌉ Phase 1 estimates for it: it selects
// the estimate with the largest timestamp (line 17-18) and proposes it.
func (c *ctInst) tryCoordinatorPropose(r int) {
	if c.r != r || c.coord(r) != c.self() || c.propSent[r] {
		return
	}
	byProc := c.ests[r]
	if len(byProc) < Majority(c.n()) {
		return
	}
	// Deterministic selection: among the largest timestamps, take the
	// estimate of the lowest process id (the member list is sorted, so the
	// dynamic-view loop preserves that rule).
	best := CTEstimateMsg{TS: -1}
	if ms := c.in.members; ms != nil {
		for _, q := range ms {
			if e, ok := byProc[q]; ok && e.TS > best.TS {
				best = e
			}
		}
	} else {
		for q := stack.ProcessID(1); q <= stack.ProcessID(c.n()); q++ {
			if e, ok := byProc[q]; ok && e.TS > best.TS {
				best = e
			}
		}
	}
	// In the indirect algorithm this value is estimatec, the
	// coordinator's *proposal*, deliberately distinct from estimatep: the
	// coordinator only updates its own estimate in Phase 3, and only if
	// rcv holds (see the paper's "need for estimatec and estimatep").
	c.propVal[r] = best.Est
	c.propSent[r] = true
	c.in.svc.broadcast(c.in.k, CTProposalMsg{R: r, Est: best.Est})
}

// actOnProposal is Phase 3 with a proposal at hand.
func (c *ctInst) actOnProposal(r int) {
	if c.r != r || c.phase != 3 {
		return
	}
	v := c.proposals[r]
	accept := true
	if c.in.svc.cfg.Indirect {
		// Line 25: check that all messages whose identifiers are in the
		// coordinator's proposal have been received.
		accept = c.in.rcvHolds(v)
	}
	co := c.coord(r)
	if accept {
		c.estimate = v
		c.ts = r
		c.in.svc.send(co, c.in.k, CTAckMsg{R: r})
	} else {
		// Line 30: the proposal names messages this process is missing.
		c.in.svc.send(co, c.in.k, CTAckMsg{R: r, Nack: true})
	}
	c.afterPhase3(r)
}

// refuse is Phase 3 when the coordinator is suspected before its proposal
// arrives.
func (c *ctInst) refuse(r int) {
	if c.r != r || c.phase != 3 {
		return
	}
	c.in.svc.send(c.coord(r), c.in.k, CTAckMsg{R: r, Nack: true})
	c.afterPhase3(r)
}

// afterPhase3 moves a non-coordinator to the next round; the coordinator
// enters Phase 4 to collect replies.
func (c *ctInst) afterPhase3(r int) {
	if c.coord(r) == c.self() {
		c.phase = 4
		c.tryCoordinatorResolve(r)
		return
	}
	c.nextRound()
}

// tryCoordinatorResolve is Phase 4: with ⌈(n+1)/2⌉ acks the coordinator
// R-broadcasts its decision; with any nack it moves on.
func (c *ctInst) tryCoordinatorResolve(r int) {
	if c.r != r || c.phase != 4 || c.in.decided {
		return
	}
	if len(c.acks[r]) >= Majority(c.n()) {
		c.phase = 0
		c.in.broadcastDecide(c.propVal[r])
		return
	}
	if len(c.nacks[r]) >= 1 {
		c.nextRound()
	}
}

// dispatch implements algoImpl.
func (c *ctInst) dispatch(from stack.ProcessID, m stack.Message) {
	switch mm := m.(type) {
	case CTEstimateMsg:
		byProc, ok := c.ests[mm.R]
		if !ok {
			byProc = make(map[stack.ProcessID]CTEstimateMsg)
			c.ests[mm.R] = byProc
		}
		byProc[from] = mm
		c.tryCoordinatorPropose(mm.R)
	case CTProposalMsg:
		if _, dup := c.proposals[mm.R]; !dup {
			c.proposals[mm.R] = mm.Est
		}
		c.actOnProposal(mm.R)
	case CTAckMsg:
		set := c.acks
		if mm.Nack {
			set = c.nacks
		}
		byProc, ok := set[mm.R]
		if !ok {
			byProc = make(map[stack.ProcessID]bool)
			set[mm.R] = byProc
		}
		byProc[from] = true
		c.tryCoordinatorResolve(mm.R)
	}
}

// onSuspect implements algoImpl: a Phase 3 wait aborts when the current
// coordinator becomes suspected.
func (c *ctInst) onSuspect(q stack.ProcessID) {
	if c.phase == 3 && q == c.coord(c.r) {
		if _, ok := c.proposals[c.r]; !ok {
			c.refuse(c.r)
		}
	}
}
