package consensus

// Tests of the decide-relay (Config.Relay): bounded decision-log retention,
// explicit sync requests, the implicit stale-traffic trigger, and the
// per-peer cooldown.

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/fd"
	"abcast/internal/netmodel"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// newRelayHarness is newHarness with the decide-relay enabled and a small
// decision-log cap.
func newRelayHarness(t *testing.T, n int, logCap int) *harness {
	t.Helper()
	h := &harness{
		w:           simnet.NewWorld(n, netmodel.Setup1(), 42),
		fds:         make([]*fd.Scripted, n+1),
		svcs:        make([]*Service, n+1),
		decisions:   make([]map[uint64]Value, n+1),
		decideCount: make([]map[uint64]int, n+1),
	}
	for i := 1; i <= n; i++ {
		i := i
		h.fds[i] = fd.NewScripted()
		h.decisions[i] = make(map[uint64]Value)
		h.decideCount[i] = make(map[uint64]int)
		svc, err := NewService(h.w.Node(stack.ProcessID(i)), Config{
			Algo:           CT,
			Detector:       h.fds[i],
			Relay:          true,
			DecisionLogCap: logCap,
			Decide: func(k uint64, v Value) {
				h.decisions[i][k] = v
				h.decideCount[i][k]++
			},
		})
		if err != nil {
			t.Fatalf("NewService(p%d): %v", i, err)
		}
		h.svcs[i] = svc
	}
	return h
}

// TestDecideRelayLogBoundedAndAnswersSync: after deciding more instances
// than the log retains, a sync request is answered with exactly the logged
// decisions — the cap bounds both memory and how far back the relay can
// reach — and a second request inside the cooldown window is not answered
// again.
func TestDecideRelayLogBoundedAndAnswersSync(t *testing.T) {
	const n, instances, logCap = 3, 6, 4
	h := newRelayHarness(t, n, logCap)
	for k := uint64(1); k <= instances; k++ {
		for i := 1; i <= n; i++ {
			h.propose(stack.ProcessID(i), time.Duration(k)*5*time.Millisecond, k,
				tv(fmt.Sprintf("k%d-v%d", k, i)))
		}
	}
	h.w.RunFor(10 * time.Second)
	for k := uint64(1); k <= instances; k++ {
		h.checkAgreement(t, k, allProcs(n), nil)
	}

	svc1 := h.svcs[1]
	if got := len(svc1.decisions); got != logCap {
		t.Fatalf("decision log holds %d entries, want cap %d", got, logCap)
	}
	// The instances are settled everywhere, so p1 prunes them (as the
	// engine above would); the log outlives the prune — that is its point.
	h.w.After(1, time.Millisecond, func() { svc1.PruneBelow(instances + 1) })

	// p3 asks for everything from instance 1; only the logged tail
	// (instances 3..6) can be relayed. The second request lands inside the
	// per-peer cooldown and must be rate-limited away.
	h.w.After(3, 5*time.Millisecond, func() { h.svcs[3].RequestSync(1, 1) })
	h.w.After(3, 5*time.Millisecond+DefaultRelayCooldown/2, func() { h.svcs[3].RequestSync(1, 1) })
	h.w.RunFor(time.Second)
	if got := svc1.RelayCount(); got != logCap {
		t.Fatalf("relayed %d decisions, want %d (the logged tail, once)", got, logCap)
	}

	// Relayed decisions for already-settled instances must not re-fire the
	// upcall (at-most-once decide).
	for k := uint64(1); k <= instances; k++ {
		if c := h.decideCount[3][k]; c != 1 {
			t.Fatalf("p3 decided k=%d %d times", k, c)
		}
	}
}

// TestDecideRelayTriggersOnStaleTraffic: algorithm traffic for a pruned
// instance marks its sender as behind and triggers a relay without any
// explicit request.
func TestDecideRelayTriggersOnStaleTraffic(t *testing.T) {
	const n, instances = 3, 3
	h := newRelayHarness(t, n, 0)
	for k := uint64(1); k <= instances; k++ {
		for i := 1; i <= n; i++ {
			h.propose(stack.ProcessID(i), time.Duration(k)*5*time.Millisecond, k,
				tv(fmt.Sprintf("k%d-v%d", k, i)))
		}
	}
	h.w.RunFor(10 * time.Second)
	svc1 := h.svcs[1]
	h.w.After(1, time.Millisecond, func() { svc1.PruneBelow(instances + 1) })
	// p3 emits round traffic for the long-settled instance 1, as a healed
	// process still stuck in it would.
	h.w.After(3, 5*time.Millisecond, func() {
		h.svcs[3].send(1, 1, CTEstimateMsg{R: 2, TS: 0, Est: tv("stale")})
	})
	h.w.RunFor(time.Second)
	if got := svc1.RelayCount(); got != instances {
		t.Fatalf("stale traffic relayed %d decisions, want %d", got, instances)
	}
}
