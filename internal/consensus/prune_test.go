package consensus

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/stack"
)

func TestPruneBelowReleasesInstances(t *testing.T) {
	const n, instances = 3, 10
	h := newHarness(t, n, CT, false, nil)
	for k := uint64(1); k <= instances; k++ {
		for i := 1; i <= n; i++ {
			h.propose(stack.ProcessID(i), time.Duration(k)*5*time.Millisecond, k,
				tv(fmt.Sprintf("k%d-v%d", k, i)))
		}
	}
	h.w.RunFor(10 * time.Second)
	for k := uint64(1); k <= instances; k++ {
		h.checkAgreement(t, k, allProcs(n), nil)
	}
	svc := h.svcs[1]
	if svc.InstanceCount() != instances {
		t.Fatalf("InstanceCount = %d before prune", svc.InstanceCount())
	}
	h.w.After(1, time.Millisecond, func() { svc.PruneBelow(instances + 1) })
	h.w.RunFor(time.Second)
	if svc.InstanceCount() != 0 {
		t.Fatalf("InstanceCount = %d after prune, want 0", svc.InstanceCount())
	}
	// Idempotent and monotone.
	h.w.After(1, time.Millisecond, func() {
		svc.PruneBelow(3) // lower than current watermark: no-op
		svc.PruneBelow(instances + 1)
	})
	h.w.RunFor(time.Second)
}

func TestPrunedInstanceIgnoresTraffic(t *testing.T) {
	const n = 3
	h := newHarness(t, n, CT, false, nil)
	for i := 1; i <= n; i++ {
		h.propose(stack.ProcessID(i), time.Millisecond, 1, tv(fmt.Sprintf("v%d", i)))
	}
	h.w.RunFor(2 * time.Second)
	h.checkAgreement(t, 1, allProcs(n), nil)

	svc := h.svcs[1]
	h.w.After(1, time.Millisecond, func() {
		svc.PruneBelow(2)
		// Late traffic and proposals for the pruned instance must be
		// ignored, not resurrect state.
		svc.Propose(1, tv("zombie"))
	})
	h.w.RunFor(time.Second)
	if svc.InstanceCount() != 0 {
		t.Fatalf("pruned instance resurrected: count=%d", svc.InstanceCount())
	}
	if h.decideCount[1][1] != 1 {
		t.Fatalf("decide count changed after prune: %d", h.decideCount[1][1])
	}
}
