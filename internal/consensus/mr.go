package consensus

import "abcast/internal/stack"

// mrInst is the round machinery of the Mostéfaoui–Raynal ◇S algorithm,
// covering both the original algorithm and the paper's indirect adaptation
// (Algorithm 3).
//
// Each round has two phases. Phase 1: the round's coordinator broadcasts
// its estimate; every other process relays either that estimate or ⊥ (if it
// suspects the coordinator — or, in the indirect flavour, if rcv fails on
// the coordinator's value, lines 16-19). Phase 2: each process collects a
// quorum of relays; a unanimous quorum decides, a mixed quorum may adopt the
// valid value.
//
// The two flavours differ in their Phase 2 quorum and adoption rule:
//
//	original: quorum ⌈(n+1)/2⌉, adopt any valid value     (f < n/2)
//	indirect: quorum ⌈(2n+1)/3⌉, adopt v only if rcv(v)
//	          or v was received ⌈(n+1)/3⌉ times           (f < n/3)
//
// The resilience loss is the paper's second contribution: with quorum
// ⌈(2n+1)/3⌉ any two quorums share n−2f ≥ f+1 processes (Figure 2), which
// guarantees that a decided value is v-stable (No loss) while still forcing
// every process that could block a decision to adopt it (Uniform
// agreement).
type mrInst struct {
	in *instance

	estimate Value
	r        int

	echoSent  map[int]bool                     // this process already relayed in round r
	coordVal  map[int]Value                    // the coordinator's value, per round
	echoOrder map[int][]mrEcho                 // relays in arrival order (Phase 2 examines the first quorum)
	echoFrom  map[int]map[stack.ProcessID]bool // dedup
	evaluated map[int]bool
}

// mrEcho is one recorded relay.
type mrEcho struct {
	from stack.ProcessID
	est  Value // nil = ⊥
}

var _ algoImpl = (*mrInst)(nil)

func newMRInst(in *instance) *mrInst {
	return &mrInst{
		in:        in,
		echoSent:  make(map[int]bool),
		coordVal:  make(map[int]Value),
		echoOrder: make(map[int][]mrEcho),
		echoFrom:  make(map[int]map[stack.ProcessID]bool),
		evaluated: make(map[int]bool),
	}
}

func (m *mrInst) n() int                      { return m.in.nMembers() }
func (m *mrInst) coord(r int) stack.ProcessID { return m.in.coordOf(r) }
func (m *mrInst) self() stack.ProcessID       { return m.in.ctx().ID() }

// quorum returns the Phase 2 wait threshold of the configured flavour.
func (m *mrInst) quorum() int {
	if m.in.svc.cfg.Indirect {
		return TwoThirds(m.n())
	}
	return Majority(m.n())
}

// propose implements algoImpl.
func (m *mrInst) propose(v Value) {
	m.estimate = v
	m.r = 0
	m.nextRound()
}

// nextRound starts round r+1.
func (m *mrInst) nextRound() {
	if m.in.decided {
		return
	}
	m.r++
	r := m.r
	co := m.coord(r)

	if co == m.self() {
		// Phase 1, coordinator: its broadcast is simultaneously the
		// round's proposal and its own relay (Algorithm 3 line 12).
		m.sendEcho(r, m.estimate)
	} else if v, ok := m.coordVal[r]; ok {
		m.handleCoordVal(r, v)
	} else if m.in.svc.cfg.Detector.Suspects(co) {
		m.sendEcho(r, nil)
	}
	m.tryEvaluate(r)
}

// handleCoordVal is a non-coordinator acting on the coordinator's Phase 1
// value.
func (m *mrInst) handleCoordVal(r int, v Value) {
	if m.r != r || m.echoSent[r] {
		return
	}
	if m.in.svc.cfg.Indirect && !m.in.rcvHolds(v) {
		// Lines 16-19: without msgs(v), the process must not propagate
		// v — it relays ⊥ instead. This is what prevents a v-valent,
		// non-v-stable configuration.
		m.sendEcho(r, nil)
		return
	}
	m.sendEcho(r, v)
}

// sendEcho broadcasts this process's round-r relay (est or ⊥) exactly once.
func (m *mrInst) sendEcho(r int, est Value) {
	if m.echoSent[r] {
		return
	}
	m.echoSent[r] = true
	m.in.svc.broadcast(m.in.k, MREchoMsg{R: r, Bottom: est == nil, Est: est})
}

// dispatch implements algoImpl.
func (m *mrInst) dispatch(from stack.ProcessID, raw stack.Message) {
	e, ok := raw.(MREchoMsg)
	if !ok {
		return
	}
	r := e.R
	if !e.Bottom && from == m.coord(r) {
		if _, seen := m.coordVal[r]; !seen {
			m.coordVal[r] = e.Est
		}
		if m.r == r {
			m.handleCoordVal(r, e.Est)
		}
	}
	byProc, ok := m.echoFrom[r]
	if !ok {
		byProc = make(map[stack.ProcessID]bool)
		m.echoFrom[r] = byProc
	}
	if !byProc[from] {
		byProc[from] = true
		var est Value
		if !e.Bottom {
			est = e.Est
		}
		m.echoOrder[r] = append(m.echoOrder[r], mrEcho{from: from, est: est})
	}
	m.tryEvaluate(r)
}

// tryEvaluate is Phase 2: once a quorum of relays for the current round has
// arrived, examine exactly the first quorum received (the paper's "wait
// until received from Q processes").
func (m *mrInst) tryEvaluate(r int) {
	if m.r != r || m.evaluated[r] || m.in.decided {
		return
	}
	q := m.quorum()
	if len(m.echoOrder[r]) < q {
		return
	}
	m.evaluated[r] = true

	first := m.echoOrder[r][:q]
	var v Value
	countV := 0
	for _, e := range first {
		if e.est != nil {
			v = e.est // all non-⊥ relays of a round carry the same value
			countV++
		}
	}

	if countV == q {
		// recp = {v}: unanimous quorum — decide (lines 24-26).
		m.estimate = v
		m.in.broadcastDecide(v)
		return
	}
	if countV > 0 {
		adopt := true
		if m.in.svc.cfg.Indirect {
			// Line 28: adopt v only with msgs(v) in hand, or with
			// ⌈(n+1)/3⌉ copies — i.e. at least one correct holder.
			adopt = m.in.rcvHolds(v) || countV >= ThirdPlus(m.n())
		}
		if adopt {
			m.estimate = v
		}
	}
	m.nextRound()
}

// onSuspect implements algoImpl: suspicion of the current coordinator
// releases the Phase 1 wait with a ⊥ relay.
func (m *mrInst) onSuspect(q stack.ProcessID) {
	r := m.r
	if r >= 1 && q == m.coord(r) && !m.echoSent[r] {
		if _, have := m.coordVal[r]; !have {
			m.sendEcho(r, nil)
		}
	}
}
