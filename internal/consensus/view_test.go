package consensus

import (
	"testing"
	"time"

	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// view returns a Config mutator installing a constant member-set resolver:
// every instance runs under exactly these members, regardless of serial.
func view(members ...stack.ProcessID) func(*Config) {
	return func(cfg *Config) {
		cfg.ViewAt = func(uint64) []stack.ProcessID { return members }
	}
}

// TestViewQuorumDecidesWithoutNonMembers pins the dynamic-membership quorum
// arithmetic: in a universe of 5 processes with the view restricted to
// {1,2,3}, quorums are computed over the view (majority of 3 = 2), so the
// three members decide even though they are a minority of the universe —
// and the non-members, who never see the algorithm's traffic, decide
// nothing.
func TestViewQuorumDecidesWithoutNonMembers(t *testing.T) {
	h := newHarness(t, 5, CT, true, rcvAlways, view(1, 2, 3))
	var proposals []Value
	for _, p := range []stack.ProcessID{1, 2, 3} {
		v := tv(string(rune('a' + p)))
		proposals = append(proposals, v)
		h.propose(p, time.Millisecond, 1, v)
	}
	h.w.RunFor(5 * time.Second)
	h.checkAgreement(t, 1, []stack.ProcessID{1, 2, 3}, proposals)
	for _, q := range []stack.ProcessID{4, 5} {
		if len(h.decisions[q]) != 0 {
			t.Errorf("non-member p%d decided %v; view traffic must not reach it", q, h.decisions[q])
		}
	}
}

// TestViewQuorumSurvivesMemberCrash crashes one of the three view members:
// the remaining two are exactly a majority of the *view* (2 of 3) — were
// quorums still computed over the 5-process universe (majority 3), the
// survivors could never decide.
func TestViewQuorumSurvivesMemberCrash(t *testing.T) {
	h := newHarness(t, 5, CT, true, rcvAlways, view(1, 2, 3))
	crashed := stack.ProcessID(2) // round-1 coordinator of view {1,2,3}
	h.w.Crash(crashed, simnet.DropInFlight)
	var proposals []Value
	for _, p := range []stack.ProcessID{1, 3} {
		v := tv(string(rune('a' + p)))
		proposals = append(proposals, v)
		h.propose(p, time.Millisecond, 1, v)
	}
	for _, p := range []stack.ProcessID{1, 3} {
		p := p
		h.w.After(p, 50*time.Millisecond, func() {
			h.fds[p].SetSuspected(crashed, true)
		})
	}
	h.w.RunFor(5 * time.Second)
	h.checkAgreement(t, 1, []stack.ProcessID{1, 3}, proposals)
}

// TestViewTrafficFromNonMemberDropped: algorithm traffic from outside the
// view must be ignored — a process no longer (or not yet) in an instance's
// member set cannot influence its outcome. Process 4 proposes v4 to the
// same instance the members run; the decision must still be a member's
// proposal.
func TestViewTrafficFromNonMemberDropped(t *testing.T) {
	h := newHarness(t, 5, CT, true, rcvAlways, view(1, 2, 3))
	h.propose(4, 500*time.Microsecond, 1, tv("intruder"))
	var proposals []Value
	for _, p := range []stack.ProcessID{1, 2, 3} {
		v := tv(string(rune('a' + p)))
		proposals = append(proposals, v)
		h.propose(p, time.Millisecond, 1, v)
	}
	h.w.RunFor(5 * time.Second)
	decided := h.checkAgreement(t, 1, []stack.ProcessID{1, 2, 3}, proposals)
	if decided.Key() == "intruder" {
		t.Fatalf("instance decided the non-member's proposal")
	}
}
