// Package consensus implements ◇S failure-detector-based consensus:
//
//   - the Chandra–Toueg rotating-coordinator algorithm (CT), and
//   - the Mostéfaoui–Raynal quorum-based algorithm (MR),
//
// each in two flavours: the original algorithm on opaque values, and the
// paper's *indirect consensus* adaptation that decides on message-identifier
// sets and consults an rcv predicate before adopting an estimate
// (Algorithms 2 and 3 of the paper). Package indirect re-exports the
// indirect flavours under their paper-facing names and documents the
// resilience consequences.
//
// A Service multiplexes an unbounded sequence of independent consensus
// instances (the serial numbers k of Algorithm 1) over a single protocol id.
package consensus

import (
	"fmt"

	"abcast/internal/fd"
	"abcast/internal/stack"
)

// Value is a consensus proposal/decision. Key must be a canonical encoding:
// two Values are the same value iff their Keys are equal (used by MR's
// Phase 2, which compares estimates).
type Value interface {
	stack.Message
	Key() string
}

// Rcv is the predicate of indirect consensus: rcv(v) is true only if the
// calling process has received msgs(v), the messages whose identifiers are
// in v. It is supplied by the atomic broadcast algorithm (Algorithm 1,
// lines 9-10).
type Rcv func(v Value) bool

// DecideFn is the decision upcall: instance k decided v. It is invoked
// exactly once per instance per process.
type DecideFn func(k uint64, v Value)

// Algo selects the consensus algorithm.
type Algo int

// Available algorithms.
const (
	CT Algo = iota + 1 // Chandra-Toueg ◇S (rotating coordinator, f < n/2)
	MR                 // Mostéfaoui-Raynal ◇S (quorum based; f < n/2, or f < n/3 when indirect)
)

// String implements fmt.Stringer.
func (a Algo) String() string {
	switch a {
	case CT:
		return "CT"
	case MR:
		return "MR"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// Majority returns ⌈(n+1)/2⌉.
func Majority(n int) int { return (n + 2) / 2 }

// TwoThirds returns ⌈(2n+1)/3⌉, the Phase 2 quorum of the indirect MR
// algorithm (Algorithm 3, line 22).
func TwoThirds(n int) int { return (2*n + 3) / 3 }

// ThirdPlus returns ⌈(n+1)/3⌉, the adoption threshold of the indirect MR
// algorithm (Algorithm 3, line 28).
func ThirdPlus(n int) int { return (n + 3) / 3 }

// MaxFaulty returns the resilience of the chosen configuration: the largest
// number of crashes under which all properties (including No loss for the
// indirect flavours) are guaranteed.
func MaxFaulty(a Algo, indirect bool, n int) int {
	if a == MR && indirect {
		return (n - 1) / 3 // f < n/3 — the paper's headline resilience loss
	}
	return (n - 1) / 2 // f < n/2
}

// Config parameterizes a consensus Service.
type Config struct {
	// Algo selects CT or MR.
	Algo Algo
	// Indirect enables the paper's indirect-consensus modifications.
	Indirect bool
	// Rcv is the received-messages predicate; required when Indirect.
	// The original algorithms ignore it — running them directly on
	// message identifiers is exactly the faulty configuration of
	// Section 2.2.
	Rcv Rcv
	// Detector is the ◇S failure detector.
	Detector fd.Detector
	// Decide is the decision upcall.
	Decide DecideFn
	// OnNeed, if set, is invoked when traffic arrives for an instance this
	// process has not proposed to (and that is neither decided nor pruned).
	// A pipelined atomic broadcast engine uses it to join instances it has
	// no identifiers of its own for; without a proposal the process would
	// never ack, echo, or coordinate, and the instance could stall. The
	// callback may synchronously call Propose for the same instance.
	OnNeed func(k uint64)
}

// Service multiplexes consensus instances over stack.ProtoCons.
type Service struct {
	proto       stack.Proto
	cfg         Config
	insts       map[uint64]*instance
	prunedBelow uint64
}

// NewService wires a consensus service into the node.
func NewService(node *stack.Node, cfg Config) (*Service, error) {
	if cfg.Detector == nil {
		return nil, fmt.Errorf("consensus: nil failure detector")
	}
	if cfg.Indirect && cfg.Rcv == nil {
		return nil, fmt.Errorf("consensus: indirect %v requires an rcv predicate", cfg.Algo)
	}
	if cfg.Algo != CT && cfg.Algo != MR {
		return nil, fmt.Errorf("consensus: unknown algorithm %v", cfg.Algo)
	}
	s := &Service{
		proto: node.Proto(stack.ProtoCons),
		cfg:   cfg,
		insts: make(map[uint64]*instance),
	}
	node.Register(stack.ProtoCons, stack.HandlerFunc(s.receive))
	return s, nil
}

// Propose starts instance k with initial value v (propose(k, v, rcv) in the
// paper). Proposing twice for the same instance is a no-op.
func (s *Service) Propose(k uint64, v Value) {
	if k < s.prunedBelow {
		return
	}
	inst := s.instance(k)
	if inst.proposed || inst.decided {
		if inst.decided {
			// The decision already arrived before this process got
			// around to proposing; nothing to do — the upcall fired.
			return
		}
		return
	}
	inst.propose(v)
}

// instance returns (creating if needed) the state of instance k.
func (s *Service) instance(k uint64) *instance {
	inst, ok := s.insts[k]
	if !ok {
		inst = newInstance(s, k)
		s.insts[k] = inst
	}
	return inst
}

// Open broadcasts a participation beacon for instance k to all other
// processes. Callers (the pipelined atomic broadcast engine) send it when
// proposing to an instance beyond their lowest undecided serial number, or
// when proposing an empty batch: in both cases the usual guarantee — that
// the proposal's identifiers diffuse to everyone and pull them into the
// instance — does not apply, so the beacon carries the news instead.
func (s *Service) Open(k uint64) {
	if k < s.prunedBelow {
		return
	}
	s.proto.BroadcastOthers(k, OpenMsg{})
}

// PruneBelow releases all state of instances with serial number < k and
// ignores their future traffic. Callers (the atomic broadcast engine) prune
// only instances they have locally decided and consumed: by then this
// process's decide relay has already been sent, so discarding the state
// cannot strand a correct peer.
func (s *Service) PruneBelow(k uint64) {
	if k <= s.prunedBelow {
		return
	}
	for i := range s.insts {
		if i < k {
			delete(s.insts, i)
		}
	}
	s.prunedBelow = k
}

// InstanceCount reports the number of retained instances (for tests and
// monitoring).
func (s *Service) InstanceCount() int { return len(s.insts) }

// receive routes an incoming consensus message to its instance.
func (s *Service) receive(from stack.ProcessID, k uint64, m stack.Message) {
	if k < s.prunedBelow {
		return // stale traffic for a settled, pruned instance
	}
	if _, ok := m.(OpenMsg); ok {
		// Beacons carry no algorithm state: just surface the instance to
		// the layer above if this process has not joined it yet.
		if inst, exists := s.insts[k]; exists && (inst.proposed || inst.decided) {
			return
		}
		if s.cfg.OnNeed != nil {
			s.cfg.OnNeed(k)
		}
		return
	}
	inst := s.instance(k)
	// Decisions short-circuit everything, including the pre-propose
	// buffer: a process can decide without having proposed.
	if d, ok := m.(DecideMsg); ok {
		inst.onDecide(d.Est)
		return
	}
	if inst.decided {
		return // stale traffic for a settled instance
	}
	if !inst.proposed {
		// Buffer until this process proposes; asynchronous channels make
		// this indistinguishable from delayed delivery. The buffered
		// message doubles as a participation signal: OnNeed may propose
		// synchronously, in which case propose() replays the buffer.
		inst.buffer = append(inst.buffer, bufferedMsg{from: from, m: m})
		if s.cfg.OnNeed != nil {
			s.cfg.OnNeed(k)
		}
		return
	}
	inst.dispatch(from, m)
}

// bufferedMsg is a message queued before the local propose.
type bufferedMsg struct {
	from stack.ProcessID
	m    stack.Message
}

// coord returns the rotating coordinator of round r: (r mod n) + 1, as in
// Algorithms 2 and 3.
func coord(r, n int) stack.ProcessID {
	return stack.ProcessID((r % n) + 1)
}
