// Package consensus implements ◇S failure-detector-based consensus:
//
//   - the Chandra–Toueg rotating-coordinator algorithm (CT), and
//   - the Mostéfaoui–Raynal quorum-based algorithm (MR),
//
// each in two flavours: the original algorithm on opaque values, and the
// paper's *indirect consensus* adaptation that decides on message-identifier
// sets and consults an rcv predicate before adopting an estimate
// (Algorithms 2 and 3 of the paper). Package indirect re-exports the
// indirect flavours under their paper-facing names and documents the
// resilience consequences.
//
// A Service multiplexes an unbounded sequence of independent consensus
// instances (the serial numbers k of Algorithm 1) over a single protocol id.
package consensus

import (
	"fmt"
	"sort"
	"time"

	"abcast/internal/fd"
	"abcast/internal/metrics"
	"abcast/internal/stack"
)

// Value is a consensus proposal/decision. Key must be a canonical encoding:
// two Values are the same value iff their Keys are equal (used by MR's
// Phase 2, which compares estimates).
type Value interface {
	stack.Message
	Key() string
}

// Rcv is the predicate of indirect consensus: rcv(v) is true only if the
// calling process has received msgs(v), the messages whose identifiers are
// in v. It is supplied by the atomic broadcast algorithm (Algorithm 1,
// lines 9-10).
type Rcv func(v Value) bool

// DecideFn is the decision upcall: instance k decided v. It is invoked
// exactly once per instance per process.
type DecideFn func(k uint64, v Value)

// Algo selects the consensus algorithm.
type Algo int

// Available algorithms.
const (
	CT Algo = iota + 1 // Chandra-Toueg ◇S (rotating coordinator, f < n/2)
	MR                 // Mostéfaoui-Raynal ◇S (quorum based; f < n/2, or f < n/3 when indirect)
)

// String implements fmt.Stringer.
func (a Algo) String() string {
	switch a {
	case CT:
		return "CT"
	case MR:
		return "MR"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// Majority returns ⌈(n+1)/2⌉.
func Majority(n int) int { return (n + 2) / 2 }

// TwoThirds returns ⌈(2n+1)/3⌉, the Phase 2 quorum of the indirect MR
// algorithm (Algorithm 3, line 22).
func TwoThirds(n int) int { return (2*n + 3) / 3 }

// ThirdPlus returns ⌈(n+1)/3⌉, the adoption threshold of the indirect MR
// algorithm (Algorithm 3, line 28).
func ThirdPlus(n int) int { return (n + 3) / 3 }

// MaxFaulty returns the resilience of the chosen configuration: the largest
// number of crashes under which all properties (including No loss for the
// indirect flavours) are guaranteed.
func MaxFaulty(a Algo, indirect bool, n int) int {
	if a == MR && indirect {
		return (n - 1) / 3 // f < n/3 — the paper's headline resilience loss
	}
	return (n - 1) / 2 // f < n/2
}

// Config parameterizes a consensus Service.
type Config struct {
	// Algo selects CT or MR.
	Algo Algo
	// Indirect enables the paper's indirect-consensus modifications.
	Indirect bool
	// Rcv is the received-messages predicate; required when Indirect.
	// The original algorithms ignore it — running them directly on
	// message identifiers is exactly the faulty configuration of
	// Section 2.2.
	Rcv Rcv
	// Detector is the ◇S failure detector.
	Detector fd.Detector
	// Decide is the decision upcall.
	Decide DecideFn
	// OnNeed, if set, is invoked when traffic arrives for an instance this
	// process has not proposed to (and that is neither decided nor pruned).
	// A pipelined atomic broadcast engine uses it to join instances it has
	// no identifiers of its own for; without a proposal the process would
	// never ack, echo, or coordinate, and the instance could stall. The
	// callback may synchronously call Propose for the same instance.
	OnNeed func(k uint64)
	// OpenDelay bounds how long an Open announcement may wait for a ride on
	// outgoing algorithm traffic before the remaining destinations get a
	// standalone OpenMsg beacon (0 = DefaultOpenDelay). Announcements
	// piggyback on every algorithm message sent while pending, so under
	// load most beacons cost no extra network messages; the delay is the
	// worst-case join latency added to an otherwise idle pipelined
	// instance.
	OpenDelay time.Duration
	// Relay enables the decide-relay: decisions are retained in a bounded
	// log after their instance is pruned, and a peer observed sending
	// algorithm traffic for an already-pruned instance — the signature of a
	// process that missed decisions, e.g. across a drop-mode partition — is
	// sent the decisions it is missing. Without Relay (the default), stale
	// traffic is silently dropped and a peer cut off by a black-hole
	// partition can stay behind forever once the original DecideMsgs are
	// lost. Part of the recovery subsystem (see internal/relink and
	// core.RecoverConfig).
	Relay bool
	// DecisionLogCap bounds the relay's decision log (0 = DefaultLogCap).
	// A peer behind by more than the log can no longer be caught up by the
	// relay alone; the cap is the state-transfer analogue of a Raft log
	// truncated without snapshots.
	DecisionLogCap int
	// RelayCooldown rate-limits relays per peer (0 = DefaultRelayCooldown):
	// a peer's stale traffic triggers at most one relay batch per cooldown,
	// which both bounds the cost of traffic that merely crossed a prune on
	// the wire and paces multi-batch catch-up.
	RelayCooldown time.Duration
	// OnDeepLag, if set, is invoked — instead of a decision replay — when a
	// peer's stale traffic or explicit SyncReqMsg reveals it behind the
	// decision log's floor: the decisions it needs first have already been
	// evicted, so no amount of relaying can catch it up. The callback is the
	// seam for snapshot state transfer (the layer above offers the peer its
	// delivered prefix plus engine state; see core's snapshot subsystem).
	// Invocations share the per-peer RelayCooldown rate limit with ordinary
	// relays. Without the callback, a deep-lagged peer gets the best-effort
	// logged tail, which cannot close its gap.
	OnDeepLag func(q stack.ProcessID, from uint64)
	// ViewAt, if set, resolves the member set of instance k — the dynamic
	// membership seam. The returned slice must be sorted, deterministic for
	// a given k across all processes (the atomic broadcast engine derives it
	// from configuration changes riding the total order itself), and stable
	// once any process may have proposed to k. Quorum thresholds, the
	// rotating coordinator, and the broadcast fan-out of instance k are all
	// computed over ViewAt(k) instead of the full group; algorithm traffic
	// from a process outside instance k's view is ignored (decisions are
	// always accepted — they are self-certifying). Nil = the static full
	// group 1..N.
	ViewAt func(k uint64) []stack.ProcessID
	// Metrics, when non-nil, is the registry the service's counters
	// (consensus.*) register into. Nil leaves them standalone — the
	// OpenTraffic/RelayCount/DeepLagCount views work either way, and
	// counter updates never allocate or schedule, so enabling a registry
	// cannot perturb a simulated run.
	Metrics *metrics.Registry
}

// Relay defaults.
const (
	// DefaultLogCap is the default decision-log retention.
	DefaultLogCap = 4096
	// DefaultRelayCooldown is the default per-peer relay rate limit.
	DefaultRelayCooldown = 50 * time.Millisecond
	// relayBatch caps decisions sent per relay, bounding the burst a healed
	// peer receives; its next stale message (or decide re-broadcast) after
	// the cooldown triggers the next batch.
	relayBatch = 64
)

// DefaultOpenDelay is the default piggyback window of Open announcements —
// small against any consensus round trip, so pipelined instance joins are
// never delayed materially.
const DefaultOpenDelay = 250 * time.Microsecond

// Service multiplexes consensus instances over stack.ProtoCons.
//
//abcheck:eventloop all Service state is owned by the process's event loop
type Service struct {
	proto       stack.Proto
	cfg         Config
	insts       map[uint64]*instance
	prunedBelow uint64

	// pendingOpen holds, per peer, the open announcements still waiting for
	// a ride on outgoing algorithm traffic (see Open); flushArmed guards the
	// single outstanding flush timer.
	pendingOpen map[stack.ProcessID][]uint64
	flushArmed  bool

	// Beacon traffic accounting, surfaced through OpenTraffic. The cells
	// register into Config.Metrics when one is set.
	opensAnnounced   *metrics.Counter
	opensPiggybacked *metrics.Counter
	opensStandalone  *metrics.Counter

	// Decide-relay state (Config.Relay): the bounded decision log, the
	// per-peer rate limiter, and a counter surfaced through RelayCount.
	decisions  map[uint64]Value
	decLow     uint64 // lowest retained decision (0 = log empty)
	maxDecided uint64
	lastRelay  map[stack.ProcessID]time.Time
	relaysSent *metrics.Counter
	deepLags   *metrics.Counter // deep-lag detections handed to OnDeepLag
}

// NewService wires a consensus service into the node.
//
//abcheck:entry constructor; runs before the event loop starts
func NewService(node *stack.Node, cfg Config) (*Service, error) {
	if cfg.Detector == nil {
		return nil, fmt.Errorf("consensus: nil failure detector")
	}
	if cfg.Indirect && cfg.Rcv == nil {
		return nil, fmt.Errorf("consensus: indirect %v requires an rcv predicate", cfg.Algo)
	}
	if cfg.Algo != CT && cfg.Algo != MR {
		return nil, fmt.Errorf("consensus: unknown algorithm %v", cfg.Algo)
	}
	s := &Service{
		proto:       node.Proto(stack.ProtoCons),
		cfg:         cfg,
		insts:       make(map[uint64]*instance),
		pendingOpen: make(map[stack.ProcessID][]uint64),

		opensAnnounced:   cfg.Metrics.Counter("consensus.opens_announced"),
		opensPiggybacked: cfg.Metrics.Counter("consensus.opens_piggybacked"),
		opensStandalone:  cfg.Metrics.Counter("consensus.opens_standalone"),
		relaysSent:       cfg.Metrics.Counter("consensus.relays_sent"),
		deepLags:         cfg.Metrics.Counter("consensus.deep_lags"),
	}
	if cfg.Relay {
		s.decisions = make(map[uint64]Value)
		s.lastRelay = make(map[stack.ProcessID]time.Time)
	}
	node.Register(stack.ProtoCons, stack.HandlerFunc(s.receive))
	return s, nil
}

// Propose starts instance k with initial value v (propose(k, v, rcv) in the
// paper). Proposing twice for the same instance is a no-op.
//
//abcheck:entry cross-package API; the engine calls it from its own event-loop callbacks
func (s *Service) Propose(k uint64, v Value) {
	if k < s.prunedBelow {
		return
	}
	inst := s.instance(k)
	if inst.proposed || inst.decided {
		if inst.decided {
			// The decision already arrived before this process got
			// around to proposing; nothing to do — the upcall fired.
			return
		}
		return
	}
	inst.propose(v)
}

// instance returns (creating if needed) the state of instance k.
func (s *Service) instance(k uint64) *instance {
	inst, ok := s.insts[k]
	if !ok {
		inst = newInstance(s, k)
		s.insts[k] = inst
	}
	return inst
}

// Open announces instance k to all other processes. Callers (the pipelined
// atomic broadcast engine) invoke it when proposing to an instance beyond
// their lowest undecided serial number, or when proposing an empty batch: in
// both cases the usual guarantee — that the proposal's identifiers diffuse
// to everyone and pull them into the instance — does not apply, so the
// beacon carries the news instead.
//
// The announcement is not broadcast immediately: it piggybacks (as a
// PiggyMsg wrapper) on whatever algorithm traffic this process sends within
// Config.OpenDelay, and only the peers that saw no traffic in that window
// get a standalone OpenMsg — one beacon covering every instance still
// pending for them. Under pipelined load this turns the former n-1 beacon
// messages per pipelined propose into (usually) zero extra messages.
//
//abcheck:entry cross-package API; the engine calls it from its own event-loop callbacks
func (s *Service) Open(k uint64) {
	if k < s.prunedBelow {
		return
	}
	ctx := s.proto.Ctx()
	self := ctx.ID()
	if ms := s.membersOf(k); ms != nil {
		for _, q := range ms {
			if q == self {
				continue
			}
			if !containsU64(s.pendingOpen[q], k) {
				s.pendingOpen[q] = append(s.pendingOpen[q], k)
				s.opensAnnounced.Inc()
			}
		}
		s.armOpenFlush()
		return
	}
	for q := stack.ProcessID(1); q <= stack.ProcessID(ctx.N()); q++ {
		if q == self {
			continue
		}
		if !containsU64(s.pendingOpen[q], k) {
			s.pendingOpen[q] = append(s.pendingOpen[q], k)
			s.opensAnnounced.Inc()
		}
	}
	s.armOpenFlush()
}

// membersOf resolves instance k's member set (nil = the static full group).
func (s *Service) membersOf(k uint64) []stack.ProcessID {
	if s.cfg.ViewAt == nil {
		return nil
	}
	return s.cfg.ViewAt(k)
}

// armOpenFlush schedules the standalone-beacon fallback for pending open
// announcements, if not already scheduled.
func (s *Service) armOpenFlush() {
	if s.flushArmed || len(s.pendingOpen) == 0 {
		return
	}
	s.flushArmed = true
	d := s.cfg.OpenDelay
	if d <= 0 {
		d = DefaultOpenDelay
	}
	s.proto.Ctx().SetTimer(d, s.flushOpens)
}

// flushOpens sends one standalone OpenMsg to every peer whose announcements
// found no ride within the piggyback window.
func (s *Service) flushOpens() {
	s.flushArmed = false
	ctx := s.proto.Ctx()
	self := ctx.ID()
	for q := stack.ProcessID(1); q <= stack.ProcessID(ctx.N()); q++ {
		if q == self {
			continue
		}
		opens := s.takeOpens(q)
		if len(opens) == 0 {
			continue
		}
		s.opensStandalone.Add(int64(len(opens)))
		s.proto.Send(q, opens[0], OpenMsg{Also: opens[1:]})
	}
}

// takeOpens removes and returns the still-live open announcements pending
// for q; announcements for instances that have settled (decided or pruned)
// in the meantime are elided — those peers learn of the outcome from the
// decide relay instead.
func (s *Service) takeOpens(q stack.ProcessID) []uint64 {
	ks := s.pendingOpen[q]
	if len(ks) == 0 {
		return nil
	}
	delete(s.pendingOpen, q)
	live := ks[:0]
	for _, k := range ks {
		if k < s.prunedBelow {
			continue
		}
		if inst, ok := s.insts[k]; ok && inst.decided {
			continue
		}
		live = append(live, k)
	}
	return live
}

// send transmits an algorithm message for instance k to q, letting pending
// open announcements for q hitch a ride. All algorithm traffic (ct, mr,
// decide dissemination) flows through here.
func (s *Service) send(q stack.ProcessID, k uint64, m stack.Message) {
	if q != s.proto.Ctx().ID() {
		if opens := s.takeOpens(q); len(opens) > 0 {
			s.opensPiggybacked.Add(int64(len(opens)))
			s.proto.Send(q, k, PiggyMsg{Opens: opens, M: m})
			return
		}
	}
	s.proto.Send(q, k, m)
}

// broadcast is stack.Proto.Broadcast through the piggybacking send path
// (self-delivery last, preserving the live runtime's ordering contract).
func (s *Service) broadcast(k uint64, m stack.Message) {
	s.broadcastOthers(k, m)
	s.proto.Send(s.proto.Ctx().ID(), k, m)
}

// broadcastDecideMsg disseminates a decide to the union of instance k's
// view and the latest applied view (self-copy last when includeSelf, which
// preserves the live runtime's ordering contract). Quorum-bearing algorithm
// traffic must stay inside the instance's view, but a decision is safe to
// hand to any process — and a joiner admitted by a change whose quorum
// switch is still ahead depends on exactly these decides: instances between
// the change's delivery point and its effective serial run under old views
// that exclude the joiner, so if the group quiesces before the switch,
// decides restricted to the old view would strand it with no evidence of
// the tail to sync on.
func (s *Service) broadcastDecideMsg(k uint64, m stack.Message, includeSelf bool) {
	ctx := s.proto.Ctx()
	self := ctx.ID()
	if s.cfg.ViewAt == nil {
		for q := stack.ProcessID(1); q <= stack.ProcessID(ctx.N()); q++ {
			if q != self {
				s.send(q, k, m)
			}
		}
		if includeSelf {
			s.proto.Send(self, k, m)
		}
		return
	}
	cur := s.cfg.ViewAt(k)
	latest := s.cfg.ViewAt(^uint64(0))
	seen := make(map[stack.ProcessID]bool, len(cur)+len(latest))
	targets := make([]stack.ProcessID, 0, len(cur)+len(latest))
	for _, ms := range [][]stack.ProcessID{cur, latest} {
		for _, q := range ms {
			if !seen[q] {
				seen[q] = true
				targets = append(targets, q)
			}
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, q := range targets {
		if q != self {
			s.send(q, k, m)
		}
	}
	if includeSelf {
		s.proto.Send(self, k, m)
	}
}

// broadcastOthers is stack.Proto.BroadcastOthers through the piggybacking
// send path, restricted to instance k's view under dynamic membership.
func (s *Service) broadcastOthers(k uint64, m stack.Message) {
	ctx := s.proto.Ctx()
	self := ctx.ID()
	if ms := s.membersOf(k); ms != nil {
		for _, q := range ms {
			if q != self {
				s.send(q, k, m)
			}
		}
		return
	}
	for q := stack.ProcessID(1); q <= stack.ProcessID(ctx.N()); q++ {
		if q != self {
			s.send(q, k, m)
		}
	}
}

// OpenTraffic reports beacon accounting: announced is the number of
// per-peer announcement obligations Open created, piggybacked how many rode
// on algorithm traffic for free, standalone how many needed an OpenMsg of
// their own. announced - piggybacked - standalone is the number elided
// because the instance settled before any send. Tests use it to pin the
// message-count reduction over the naive scheme (which always paid
// standalone == announced).
func (s *Service) OpenTraffic() (announced, piggybacked, standalone int) {
	return int(s.opensAnnounced.Value()), int(s.opensPiggybacked.Value()), int(s.opensStandalone.Value())
}

// containsU64 reports whether xs contains k (the pending lists are a few
// entries long at most).
func containsU64(xs []uint64, k uint64) bool {
	for _, x := range xs {
		if x == k {
			return true
		}
	}
	return false
}

// PruneBelow releases all state of instances with serial number < k and
// ignores their future traffic. Callers (the atomic broadcast engine) prune
// only instances they have locally decided and consumed: by then this
// process's decide relay has already been sent, so discarding the state
// cannot strand a correct peer.
//
//abcheck:entry cross-package API; the engine calls it from its own event-loop callbacks
func (s *Service) PruneBelow(k uint64) {
	if k <= s.prunedBelow {
		return
	}
	for i := range s.insts {
		if i < k {
			delete(s.insts, i)
		}
	}
	s.prunedBelow = k
}

// ForgetDecided drops the settled instance records with serial number ≥
// from, so that a re-received (relayed) DecideMsg recreates the instance and
// fires the Decide upcall again. It exists for transient-fault recovery: an
// engine whose volatile decision bookkeeping was corrupted re-learns the
// lost decisions through the decide-relay, but a settled instance record
// would silently swallow the re-delivery (onDecide deduplicates). Undecided
// instances are untouched — they will still decide and fire on their own.
//
//abcheck:entry cross-package API; the engine calls it from its own event-loop callbacks
func (s *Service) ForgetDecided(from uint64) {
	for k, inst := range s.insts {
		if k >= from && inst.decided {
			delete(s.insts, k)
		}
	}
}

// InstanceCount reports the number of retained instances (for tests and
// monitoring).
func (s *Service) InstanceCount() int { return len(s.insts) }

// Undecided reports the number of retained instances this process has
// proposed to whose decision has not arrived yet — the consensus-level
// congestion signal of the adaptive control plane (core.Engine.Observe):
// a count persistently at the pipeline width while the backlog grows means
// the instances themselves, not the supply of proposals, are the
// bottleneck. It is also the window-retarget boundary: a width change never
// touches these instances (they drain at their own pace and release their
// claimed identifiers only when consumed), it only changes how many new
// ones may start.
func (s *Service) Undecided() int {
	n := 0
	for _, inst := range s.insts {
		if inst.proposed && !inst.decided {
			n++
		}
	}
	return n
}

// receive routes an incoming consensus message to its instance.
func (s *Service) receive(from stack.ProcessID, k uint64, m stack.Message) {
	if pm, ok := m.(PiggyMsg); ok {
		// Piggybacked open announcements are independent of the carried
		// message's instance: process them before the prune check on k.
		for _, ko := range pm.Opens {
			s.noteOpen(ko)
		}
		m = pm.M
	}
	if om, ok := m.(OpenMsg); ok {
		// Beacons carry no algorithm state: just surface the instances to
		// the layer above if this process has not joined them yet. Each
		// announced instance is judged on its own (noteOpen checks the
		// prune watermark per instance), so a batched beacon whose envelope
		// instance is already pruned here still delivers its live Also
		// entries.
		s.noteOpen(k)
		for _, ko := range om.Also {
			s.noteOpen(ko)
		}
		return
	}
	if sr, ok := m.(SyncReqMsg); ok {
		// An explicit relay request from a peer that knows it is behind.
		s.maybeRelay(from, sr.From)
		return
	}
	if k < s.prunedBelow {
		// Stale traffic for a settled, pruned instance. Algorithm traffic
		// (not a decision: those mean the sender already knows the outcome)
		// marks the sender as behind — relay what it missed, if enabled.
		if _, isDecide := m.(DecideMsg); !isDecide {
			s.maybeRelay(from, k)
		}
		return
	}
	inst := s.instance(k)
	// Decisions short-circuit everything, including the pre-propose
	// buffer: a process can decide without having proposed.
	if d, ok := m.(DecideMsg); ok {
		inst.onDecide(d.Est)
		return
	}
	if inst.decided {
		return // stale traffic for a settled instance
	}
	if !inst.proposed {
		// Buffer until this process proposes; asynchronous channels make
		// this indistinguishable from delayed delivery. The buffered
		// message doubles as a participation signal: OnNeed may propose
		// synchronously, in which case propose() replays the buffer.
		inst.buffer = append(inst.buffer, bufferedMsg{from: from, m: m})
		if s.cfg.OnNeed != nil {
			s.cfg.OnNeed(k)
		}
		return
	}
	inst.dispatch(from, m)
}

// noteOpen surfaces an open announcement (beacon or piggybacked) for
// instance k to the layer above, unless this process has already joined or
// settled the instance.
func (s *Service) noteOpen(k uint64) {
	if k < s.prunedBelow {
		return
	}
	if inst, exists := s.insts[k]; exists && (inst.proposed || inst.decided) {
		return
	}
	if s.cfg.OnNeed != nil {
		s.cfg.OnNeed(k)
	}
}

// logDecision retains a decided value for the decide-relay (no-op unless
// Config.Relay). The log is bounded: beyond DecisionLogCap the lowest serial
// numbers are evicted, and peers behind the floor can no longer be caught up
// by the relay alone.
func (s *Service) logDecision(k uint64, v Value) {
	if s.decisions == nil {
		return
	}
	if _, dup := s.decisions[k]; dup {
		return
	}
	s.decisions[k] = v
	if k > s.maxDecided {
		s.maxDecided = k
	}
	if s.decLow == 0 || k < s.decLow {
		s.decLow = k
	}
	limit := s.cfg.DecisionLogCap
	if limit <= 0 {
		limit = DefaultLogCap
	}
	for len(s.decisions) > limit {
		// Evict the lowest retained serial number. Decisions arrive nearly
		// in order, so decLow is almost always the victim directly; the
		// scan below only runs when pipelining decided out of order.
		if _, ok := s.decisions[s.decLow]; !ok {
			low := uint64(0)
			for j := range s.decisions {
				if low == 0 || j < low {
					low = j
				}
			}
			s.decLow = low
		}
		delete(s.decisions, s.decLow)
		s.decLow++
	}
}

// maybeRelay answers stale algorithm traffic from a peer that is behind:
// re-send it the logged decisions from its apparent position onward, rate
// limited per peer. The relayed DecideMsgs flow through the normal decide
// path on the receiver (settle instance, fire the upcall), so the engine
// above consumes them exactly like first-hand decisions.
//
// A peer whose apparent position lies below the log's floor is *deeply*
// lagged: the decisions it needs first are evicted, and relaying the logged
// tail would only park them in the peer's pending set forever. When
// Config.OnDeepLag is set, such a peer is handed to it (snapshot state
// transfer) instead of being relayed to.
func (s *Service) maybeRelay(q stack.ProcessID, k uint64) {
	if len(s.decisions) == 0 {
		// Relay disabled, or nothing logged yet.
		return
	}
	now := s.proto.Ctx().Now()
	cooldown := s.cfg.RelayCooldown
	if cooldown <= 0 {
		cooldown = DefaultRelayCooldown
	}
	if last, ok := s.lastRelay[q]; ok && now.Sub(last) < cooldown {
		return
	}
	s.lastRelay[q] = now
	if k < s.decLow && s.cfg.OnDeepLag != nil {
		s.deepLags.Inc()
		s.cfg.OnDeepLag(q, k)
		return
	}
	start := k
	if start < s.decLow {
		start = s.decLow // best effort: older decisions are evicted
	}
	sent := 0
	last := uint64(0)
	for j := start; j <= s.maxDecided && sent < relayBatch; j++ {
		if v, ok := s.decisions[j]; ok {
			s.send(q, j, DecideMsg{Est: v})
			sent++
			last = j
		}
	}
	if s.cfg.ViewAt != nil && sent == relayBatch && last < s.maxDecided {
		// Dynamic membership: a truncated replay also pins the horizon by
		// sending the newest decision. The peer parks it in its pending set,
		// which keeps its sync loop pulling batch after batch until it
		// actually reaches maxDecided — without this, a joiner catching up
		// from a quiescent group consumes one batch, finds its pending set
		// empty, and stops asking. (Static relays are unchanged: there the
		// peer's own stale instances keep re-triggering relay.)
		if v, ok := s.decisions[s.maxDecided]; ok {
			s.send(q, s.maxDecided, DecideMsg{Est: v})
			sent++
		}
	}
	s.relaysSent.Add(int64(sent))
}

// Introduce hands a freshly joined process the decision history: a direct
// relay from the log's origin, which replays decisions to a shallow joiner
// and routes one behind the decision-log floor to Config.OnDeepLag (the
// snapshot path). The dynamic-membership engine calls it from every member
// applying a join, so the joiner bootstraps even if the group never orders
// another message; the per-peer cooldown keeps the n-fold call cheap.
//
//abcheck:entry cross-package API; the engine calls it from its own event-loop callbacks
func (s *Service) Introduce(q stack.ProcessID) {
	s.maybeRelay(q, 1)
}

// RelayCount reports how many decisions the decide-relay has re-sent (for
// tests and diagnostics).
func (s *Service) RelayCount() int { return int(s.relaysSent.Value()) }

// DeepLagCount reports how many deep-lag detections were handed to
// Config.OnDeepLag (for tests and diagnostics).
func (s *Service) DeepLagCount() int { return int(s.deepLags.Value()) }

// LogFloor returns the lowest serial number still retained by the
// decide-relay's decision log (0 = log empty). A peer whose next-expected
// serial is below the floor cannot be caught up by the relay alone.
func (s *Service) LogFloor() uint64 { return s.decLow }

// RaiseFloor evicts every logged decision with serial number < k and raises
// the relay floor to at least k. The engine calls it when the delivered
// prefix below k is pruned from memory (bounded-memory checkpointing): a
// decision replay below the prune boundary would name payloads no process
// retains, so lagging peers are instead routed through Config.OnDeepLag to
// the snapshot path, which starts from the peer's own delivered position.
//
//abcheck:entry cross-package API; the engine calls it from its own event-loop callbacks
func (s *Service) RaiseFloor(k uint64) {
	if s.decisions == nil || k <= s.decLow {
		return
	}
	for j := range s.decisions {
		if j < k {
			delete(s.decisions, j)
		}
	}
	s.decLow = k
}

// RequestSync asks q to relay the decisions of instances ≥ from that it
// still has logged. Used by the engine above when it detects a hole in its
// decision sequence that no implicit path is filling (see SyncReqMsg).
//
//abcheck:entry cross-package API; the engine calls it from its own event-loop callbacks
func (s *Service) RequestSync(q stack.ProcessID, from uint64) {
	s.proto.Send(q, from, SyncReqMsg{From: from})
}

// bufferedMsg is a message queued before the local propose.
type bufferedMsg struct {
	from stack.ProcessID
	m    stack.Message
}

// coord returns the rotating coordinator of round r: (r mod n) + 1, as in
// Algorithms 2 and 3.
func coord(r, n int) stack.ProcessID {
	return stack.ProcessID((r % n) + 1)
}
