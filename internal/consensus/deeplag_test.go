package consensus

// Tests of the deep-lag detector (Config.OnDeepLag): a peer whose apparent
// position lies below the decision log's floor is handed to the callback —
// the seam snapshot state transfer hangs off — instead of being sent a
// best-effort relay it cannot consume.

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/fd"
	"abcast/internal/netmodel"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// deepLagRecord is one OnDeepLag invocation.
type deepLagRecord struct {
	at   stack.ProcessID // process whose callback fired
	peer stack.ProcessID
	from uint64
}

// newDeepLagHarness is newRelayHarness with OnDeepLag recording.
func newDeepLagHarness(t *testing.T, n int, logCap int) (*harness, *[]deepLagRecord) {
	t.Helper()
	h := &harness{
		w:           simnet.NewWorld(n, netmodel.Setup1(), 42),
		fds:         make([]*fd.Scripted, n+1),
		svcs:        make([]*Service, n+1),
		decisions:   make([]map[uint64]Value, n+1),
		decideCount: make([]map[uint64]int, n+1),
	}
	var records []deepLagRecord
	for i := 1; i <= n; i++ {
		i := i
		h.fds[i] = fd.NewScripted()
		h.decisions[i] = make(map[uint64]Value)
		h.decideCount[i] = make(map[uint64]int)
		svc, err := NewService(h.w.Node(stack.ProcessID(i)), Config{
			Algo:           CT,
			Detector:       h.fds[i],
			Relay:          true,
			DecisionLogCap: logCap,
			OnDeepLag: func(q stack.ProcessID, from uint64) {
				records = append(records, deepLagRecord{at: stack.ProcessID(i), peer: q, from: from})
			},
			Decide: func(k uint64, v Value) {
				h.decisions[i][k] = v
				h.decideCount[i][k]++
			},
		})
		if err != nil {
			t.Fatalf("NewService(p%d): %v", i, err)
		}
		h.svcs[i] = svc
	}
	return h, &records
}

// TestDeepLagHandoffInsteadOfRelay: a sync request from below the log floor
// fires OnDeepLag and relays nothing (the peer could not consume the logged
// tail anyway); a later request at the floor is served by the ordinary
// relay without a deep-lag detection. The two paths share the per-peer
// cooldown.
func TestDeepLagHandoffInsteadOfRelay(t *testing.T) {
	const n, instances, logCap = 3, 6, 4
	h, records := newDeepLagHarness(t, n, logCap)
	for k := uint64(1); k <= instances; k++ {
		for i := 1; i <= n; i++ {
			h.propose(stack.ProcessID(i), time.Duration(k)*5*time.Millisecond, k,
				tv(fmt.Sprintf("k%d-v%d", k, i)))
		}
	}
	h.w.RunFor(10 * time.Second)
	svc1 := h.svcs[1]
	h.w.After(1, time.Millisecond, func() { svc1.PruneBelow(instances + 1) })

	// Instances 1 and 2 are evicted (cap 4 of 6): the floor is 3.
	floor := instances - logCap + 1
	// p3 claims to be at instance 1 — below the floor: deep lag, no relay.
	h.w.After(3, 5*time.Millisecond, func() { h.svcs[3].RequestSync(1, 1) })
	h.w.RunFor(time.Second)
	if got := svc1.RelayCount(); got != 0 {
		t.Fatalf("deep-lagged peer was relayed %d decisions; expected the OnDeepLag handoff instead", got)
	}
	if got := svc1.DeepLagCount(); got != 1 {
		t.Fatalf("deep-lag detections = %d, want 1", got)
	}
	if len(*records) != 1 || (*records)[0] != (deepLagRecord{at: 1, peer: 3, from: 1}) {
		t.Fatalf("OnDeepLag records = %+v, want one {at:1 peer:3 from:1}", *records)
	}
	if got := svc1.LogFloor(); got != uint64(floor) {
		t.Fatalf("log floor = %d, want %d", got, floor)
	}

	// From the floor onward the ordinary relay takes over: no further
	// deep-lag detection, the full logged tail relayed.
	h.w.After(3, 5*time.Millisecond, func() { h.svcs[3].RequestSync(1, uint64(floor)) })
	h.w.RunFor(time.Second)
	if got := svc1.RelayCount(); got != logCap {
		t.Fatalf("relayed %d decisions from the floor, want %d", got, logCap)
	}
	if got := svc1.DeepLagCount(); got != 1 {
		t.Fatalf("deep-lag detections after floor-level sync = %d, want still 1", got)
	}
}

// TestDeepLagSharesRelayCooldown: a deep-lag detection consumes the peer's
// relay cooldown slot, so a burst of stale traffic cannot fan out a burst
// of offers.
func TestDeepLagSharesRelayCooldown(t *testing.T) {
	const n, instances, logCap = 3, 6, 4
	h, _ := newDeepLagHarness(t, n, logCap)
	for k := uint64(1); k <= instances; k++ {
		for i := 1; i <= n; i++ {
			h.propose(stack.ProcessID(i), time.Duration(k)*5*time.Millisecond, k,
				tv(fmt.Sprintf("k%d-v%d", k, i)))
		}
	}
	h.w.RunFor(10 * time.Second)
	svc1 := h.svcs[1]
	h.w.After(1, time.Millisecond, func() { svc1.PruneBelow(instances + 1) })
	// Two deep requests inside one cooldown window: only the first detects.
	h.w.After(3, 5*time.Millisecond, func() { h.svcs[3].RequestSync(1, 1) })
	h.w.After(3, 5*time.Millisecond+DefaultRelayCooldown/2, func() { h.svcs[3].RequestSync(1, 2) })
	h.w.RunFor(time.Second)
	if got := svc1.DeepLagCount(); got != 1 {
		t.Fatalf("deep-lag detections = %d, want 1 (cooldown must rate-limit)", got)
	}
}
