package consensus

import "abcast/internal/stack"

// instance is the per-serial-number consensus state shared by both
// algorithms: propose/decide lifecycle, pre-propose buffering, decide
// dissemination, and failure-detector subscription. The round logic itself
// lives in the algoImpl (ctInst or mrInst).
type instance struct {
	svc        *Service
	k          uint64
	proposed   bool
	decided    bool
	decideSent bool
	buffer     []bufferedMsg
	fdCancel   func()
	impl       algoImpl
}

// algoImpl is the algorithm-specific round machinery.
type algoImpl interface {
	// propose starts round 1 with the initial value.
	propose(v Value)
	// dispatch handles an algorithm message (never DecideMsg).
	dispatch(from stack.ProcessID, m stack.Message)
	// onSuspect reacts to the failure detector newly suspecting q.
	onSuspect(q stack.ProcessID)
}

// newInstance creates instance k in the not-yet-proposed state.
func newInstance(svc *Service, k uint64) *instance {
	in := &instance{svc: svc, k: k}
	switch svc.cfg.Algo {
	case CT:
		in.impl = newCTInst(in)
	case MR:
		in.impl = newMRInst(in)
	}
	return in
}

// ctx is a convenience accessor.
func (in *instance) ctx() stack.Context { return in.svc.proto.Ctx() }

// propose starts the instance locally and replays any buffered traffic.
func (in *instance) propose(v Value) {
	in.proposed = true
	in.fdCancel = in.svc.cfg.Detector.Subscribe(func(q stack.ProcessID, suspected bool) {
		if suspected && !in.decided && in.impl != nil {
			in.impl.onSuspect(q)
		}
	})
	in.impl.propose(v)
	// Replay messages that arrived before the local propose; the buffer
	// may grow during replay if handlers trigger further local sends, so
	// iterate by index.
	for i := 0; i < len(in.buffer); i++ {
		if in.decided {
			break
		}
		b := in.buffer[i]
		in.impl.dispatch(b.from, b.m)
	}
	in.buffer = nil
}

// dispatch forwards algorithm traffic to the implementation.
func (in *instance) dispatch(from stack.ProcessID, m stack.Message) {
	if in.decided || in.impl == nil {
		return
	}
	in.impl.dispatch(from, m)
}

// broadcastDecide disseminates a decision (R-broadcast of the decide
// message). The local decision fires when the self-copy is delivered, which
// keeps the decide path uniform across initiator and receivers.
func (in *instance) broadcastDecide(v Value) {
	if in.decided || in.decideSent {
		return
	}
	in.decideSent = true
	in.svc.broadcast(in.k, DecideMsg{Est: v})
}

// onDecide handles a received decide message: relay once (reliable
// broadcast semantics), settle the instance, release its state, and fire
// the upcall.
func (in *instance) onDecide(v Value) {
	if in.decided {
		return
	}
	if !in.decideSent {
		in.decideSent = true
		in.svc.broadcastOthers(in.k, DecideMsg{Est: v})
	}
	in.decided = true
	in.svc.logDecision(in.k, v)
	if in.fdCancel != nil {
		in.fdCancel()
		in.fdCancel = nil
	}
	in.impl = nil // release round state for GC
	in.buffer = nil
	if in.svc.cfg.Decide != nil {
		in.svc.cfg.Decide(in.k, v)
	}
}

// rcvHolds evaluates the rcv predicate for indirect configurations; the
// original algorithms never call it.
func (in *instance) rcvHolds(v Value) bool {
	return in.svc.cfg.Rcv(v)
}
