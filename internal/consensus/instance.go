package consensus

import "abcast/internal/stack"

// instance is the per-serial-number consensus state shared by both
// algorithms: propose/decide lifecycle, pre-propose buffering, decide
// dissemination, and failure-detector subscription. The round logic itself
// lives in the algoImpl (ctInst or mrInst).
type instance struct {
	svc        *Service
	k          uint64
	proposed   bool
	decided    bool
	decideSent bool
	buffer     []bufferedMsg
	fdCancel   func()
	impl       algoImpl
	// members is the instance's view under dynamic membership, cached at
	// propose time — the point where quorum math starts. (An instance can be
	// created earlier, by buffered traffic, when the local view may still be
	// behind; Config.ViewAt guarantees stability by then.) Nil = the static
	// full group 1..N.
	members []stack.ProcessID
}

// algoImpl is the algorithm-specific round machinery.
type algoImpl interface {
	// propose starts round 1 with the initial value.
	propose(v Value)
	// dispatch handles an algorithm message (never DecideMsg).
	dispatch(from stack.ProcessID, m stack.Message)
	// onSuspect reacts to the failure detector newly suspecting q.
	onSuspect(q stack.ProcessID)
}

// newInstance creates instance k in the not-yet-proposed state.
func newInstance(svc *Service, k uint64) *instance {
	in := &instance{svc: svc, k: k}
	switch svc.cfg.Algo {
	case CT:
		in.impl = newCTInst(in)
	case MR:
		in.impl = newMRInst(in)
	}
	return in
}

// ctx is a convenience accessor.
func (in *instance) ctx() stack.Context { return in.svc.proto.Ctx() }

// nMembers returns the size of the instance's view (the n of its quorum
// thresholds).
func (in *instance) nMembers() int {
	if in.members != nil {
		return len(in.members)
	}
	return in.ctx().N()
}

// coordOf returns the rotating coordinator of round r within the instance's
// view. For the static full group this is (r mod n) + 1, exactly the
// paper's rule, because the sorted member list of 1..n maps index r mod n to
// process r mod n + 1.
func (in *instance) coordOf(r int) stack.ProcessID {
	if ms := in.members; ms != nil {
		return ms[r%len(ms)]
	}
	return coord(r, in.ctx().N())
}

// fromMember reports whether q belongs to the instance's view (always true
// for the static full group — the transport only carries ids 1..N).
func (in *instance) fromMember(q stack.ProcessID) bool {
	if in.members == nil {
		return true
	}
	for _, m := range in.members {
		if m == q {
			return true
		}
	}
	return false
}

// propose starts the instance locally and replays any buffered traffic.
func (in *instance) propose(v Value) {
	in.proposed = true
	in.members = in.svc.membersOf(in.k)
	in.fdCancel = in.svc.cfg.Detector.Subscribe(func(q stack.ProcessID, suspected bool) {
		if suspected && !in.decided && in.impl != nil {
			in.impl.onSuspect(q)
		}
	})
	in.impl.propose(v)
	// Replay messages that arrived before the local propose; the buffer
	// may grow during replay if handlers trigger further local sends, so
	// iterate by index.
	for i := 0; i < len(in.buffer); i++ {
		if in.decided {
			break
		}
		b := in.buffer[i]
		if !in.fromMember(b.from) {
			continue
		}
		in.impl.dispatch(b.from, b.m)
	}
	in.buffer = nil
}

// dispatch forwards algorithm traffic to the implementation. Traffic from a
// process outside the instance's view is dropped: a non-member must not
// count toward quorums computed over the view (decisions never come through
// here — they are accepted from anyone).
func (in *instance) dispatch(from stack.ProcessID, m stack.Message) {
	if in.decided || in.impl == nil {
		return
	}
	if !in.fromMember(from) {
		return
	}
	in.impl.dispatch(from, m)
}

// broadcastDecide disseminates a decision (R-broadcast of the decide
// message). The local decision fires when the self-copy is delivered, which
// keeps the decide path uniform across initiator and receivers.
func (in *instance) broadcastDecide(v Value) {
	if in.decided || in.decideSent {
		return
	}
	in.decideSent = true
	in.svc.broadcastDecideMsg(in.k, DecideMsg{Est: v}, true)
}

// onDecide handles a received decide message: relay once (reliable
// broadcast semantics), settle the instance, release its state, and fire
// the upcall.
func (in *instance) onDecide(v Value) {
	if in.decided {
		return
	}
	if !in.decideSent {
		in.decideSent = true
		in.svc.broadcastDecideMsg(in.k, DecideMsg{Est: v}, false)
	}
	in.decided = true
	in.svc.logDecision(in.k, v)
	if in.fdCancel != nil {
		in.fdCancel()
		in.fdCancel = nil
	}
	in.impl = nil // release round state for GC
	in.buffer = nil
	if in.svc.cfg.Decide != nil {
		in.svc.cfg.Decide(in.k, v)
	}
}

// rcvHolds evaluates the rcv predicate for indirect configurations; the
// original algorithms never call it.
func (in *instance) rcvHolds(v Value) bool {
	return in.svc.cfg.Rcv(v)
}
