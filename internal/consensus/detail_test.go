package consensus

import (
	"testing"
	"time"

	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// TestEstimateCDistinctFromEstimateP reproduces the scenario behind the
// paper's "need for estimatec and estimatep" (Section 3.2.2): a coordinator
// must be able to *propose* the highest-timestamp estimate without
// *adopting* it when it lacks msgs(v). If the implementation conflated the
// two, the value "hot" — held only by processes that crash — would persist
// in live processes' estimates forever and no decision could be reached.
//
// Timeline (n=5, indirect CT, f=2 < n/2):
//   - p2 (round-1 coordinator) proposes "hot"; only p2 and p3 hold
//     msgs(hot), so p3 acks (adopting hot with ts=1) and the rest nack.
//   - p2 and p3 crash. Later coordinators keep *selecting* hot (highest
//     timestamp) while its holders' estimates are still arriving, but
//     never adopt it; once p2's and p3's estimates vanish, a timestamp-0
//     "cold" estimate is selected and decided.
func TestEstimateCDistinctFromEstimateP(t *testing.T) {
	const n = 5
	rcv := func(p stack.ProcessID, v Value) bool {
		if v.Key() == "hot" {
			return p == 2 || p == 3
		}
		return true
	}
	h := newHarness(t, n, CT, true, rcv)
	h.propose(2, time.Millisecond, 1, tv("hot"))
	for _, p := range []stack.ProcessID{1, 3, 4, 5} {
		h.propose(p, time.Millisecond, 1, tv("cold"+string('0'+byte(p))))
	}
	// Let round 1 complete (p3 adopts hot), then both holders crash.
	h.w.After(1, 30*time.Millisecond, func() {
		h.w.Crash(2, simnet.DropInFlight)
		h.w.Crash(3, simnet.DropInFlight)
	})
	for _, p := range []stack.ProcessID{1, 4, 5} {
		p := p
		h.w.After(p, 60*time.Millisecond, func() {
			h.fds[p].SetSuspected(2, true)
			h.fds[p].SetSuspected(3, true)
		})
	}
	h.w.RunFor(30 * time.Second)
	v := h.checkAgreement(t, 1, []stack.ProcessID{1, 4, 5}, nil)
	if v.Key() == "hot" {
		t.Fatalf("decided %q, whose messages no correct process holds (No loss violated)", v.Key())
	}
}

// TestDecideWithoutProposing: a process that never proposes must still
// decide when the decision reaches it (decisions bypass the pre-propose
// buffer).
func TestDecideWithoutProposing(t *testing.T) {
	for _, fl := range algoFlavours() {
		t.Run(fl.name, func(t *testing.T) {
			const n = 3
			h := newHarness(t, n, fl.algo, fl.indirect, rcvAlways)
			// Only p1 and p2 propose; MR additionally needs p3's echoes?
			// No: MR echoes require participation… p3 buffers non-decide
			// traffic, so the quorum must come from p1 and p2 alone —
			// which suffices for plain/indirect CT (majority 2) but not
			// for indirect MR (quorum 3). Skip the flavours whose quorum
			// exceeds the proposers.
			quorum := Majority(n)
			if fl.algo == MR && fl.indirect {
				quorum = TwoThirds(n)
			}
			if quorum > 2 {
				t.Skip("quorum exceeds proposing processes; not decidable by design")
			}
			h.propose(1, time.Millisecond, 1, tv("a"))
			h.propose(2, time.Millisecond, 1, tv("b"))
			h.w.RunFor(10 * time.Second)
			h.checkAgreement(t, 1, allProcs(n), []Value{tv("a"), tv("b")})
		})
	}
}

// TestLateProposerCatchesUp: a process that proposes long after the others
// replays its buffered traffic and still decides the already-settled value.
func TestLateProposerCatchesUp(t *testing.T) {
	for _, fl := range algoFlavours() {
		t.Run(fl.name, func(t *testing.T) {
			const n = 4
			h := newHarness(t, n, fl.algo, fl.indirect, rcvAlways)
			for _, p := range []stack.ProcessID{1, 2, 3} {
				h.propose(p, time.Millisecond, 1, tv("early"))
			}
			h.propose(4, 500*time.Millisecond, 1, tv("late"))
			h.w.RunFor(10 * time.Second)
			v := h.checkAgreement(t, 1, allProcs(n), nil)
			if v.Key() == "late" {
				t.Fatalf("late proposal overturned a settled instance")
			}
		})
	}
}

// TestTimestampPriority: CT coordinators must select the estimate with the
// highest timestamp. A value locked in round 1 (adopted by a majority) must
// win over fresh timestamp-0 estimates in later rounds, preserving
// v-valence.
func TestTimestampPriority(t *testing.T) {
	const n = 3
	h := newHarness(t, n, CT, false, nil)
	// All propose distinct values; round 1 coordinator is p2, so "v2" is
	// proposed first and, failure-free, must win.
	for i := 1; i <= n; i++ {
		h.propose(stack.ProcessID(i), time.Millisecond, 1, tv("v"+string('0'+byte(i))))
	}
	h.w.RunFor(5 * time.Second)
	v := h.checkAgreement(t, 1, allProcs(n), nil)
	if v.Key() != "v2" {
		t.Fatalf("decided %q; round-1 coordinator's own estimate should win failure-free", v.Key())
	}
}

// TestManyConcurrentInstances floods the service with interleaved
// instances to exercise the per-instance isolation of round state.
func TestManyConcurrentInstances(t *testing.T) {
	const n, instances = 3, 50
	h := newHarness(t, n, CT, false, nil)
	for k := uint64(1); k <= instances; k++ {
		for i := 1; i <= n; i++ {
			// All instances start almost simultaneously.
			h.propose(stack.ProcessID(i), time.Duration(k%7)*time.Millisecond, k,
				tv("k"+string('a'+byte(k%26))+"-v"+string('0'+byte(i))))
		}
	}
	h.w.RunFor(60 * time.Second)
	for k := uint64(1); k <= instances; k++ {
		h.checkAgreement(t, k, allProcs(n), nil)
	}
}
