package consensus

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/fd"
	"abcast/internal/netmodel"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// tv is a trivial test value.
type tv string

func (t tv) WireSize() int { return len(t) }
func (t tv) Key() string   { return string(t) }

// harness wires one consensus service per simulated process.
type harness struct {
	w    *simnet.World
	fds  []*fd.Scripted // index 0 unused
	svcs []*Service     // index 0 unused
	// decisions[p][k] = decided value
	decisions []map[uint64]Value
	// decideCount[p][k] = number of upcalls (must be exactly 1)
	decideCount []map[uint64]int
}

// newHarness builds an n-process system with the given algorithm flavour.
// rcv may be nil for non-indirect configurations. Optional mutators adjust
// each process's Config before construction (e.g. to install a view
// resolver).
func newHarness(t *testing.T, n int, algo Algo, indirect bool, rcv func(p stack.ProcessID, v Value) bool, mutate ...func(*Config)) *harness {
	t.Helper()
	h := &harness{
		w:           simnet.NewWorld(n, netmodel.Setup1(), 42),
		fds:         make([]*fd.Scripted, n+1),
		svcs:        make([]*Service, n+1),
		decisions:   make([]map[uint64]Value, n+1),
		decideCount: make([]map[uint64]int, n+1),
	}
	for i := 1; i <= n; i++ {
		i := i
		h.fds[i] = fd.NewScripted()
		h.decisions[i] = make(map[uint64]Value)
		h.decideCount[i] = make(map[uint64]int)
		var rcvFn Rcv
		if rcv != nil {
			rcvFn = func(v Value) bool { return rcv(stack.ProcessID(i), v) }
		}
		cfg := Config{
			Algo:     algo,
			Indirect: indirect,
			Rcv:      rcvFn,
			Detector: h.fds[i],
			Decide: func(k uint64, v Value) {
				h.decisions[i][k] = v
				h.decideCount[i][k]++
			},
		}
		for _, m := range mutate {
			m(&cfg)
		}
		svc, err := NewService(h.w.Node(stack.ProcessID(i)), cfg)
		if err != nil {
			t.Fatalf("NewService(p%d): %v", i, err)
		}
		h.svcs[i] = svc
	}
	return h
}

// propose schedules process p to propose v for instance k after d.
func (h *harness) propose(p stack.ProcessID, d time.Duration, k uint64, v Value) {
	h.w.After(p, d, func() { h.svcs[p].Propose(k, v) })
}

// checkAgreement verifies that every process in alive decided instance k on
// the same value, exactly once, and that the value is one of proposals.
func (h *harness) checkAgreement(t *testing.T, k uint64, alive []stack.ProcessID, proposals []Value) Value {
	t.Helper()
	var decided Value
	for _, p := range alive {
		v, ok := h.decisions[p][k]
		if !ok {
			t.Fatalf("p%d never decided instance %d", p, k)
		}
		if c := h.decideCount[p][k]; c != 1 {
			t.Fatalf("p%d decided instance %d %d times", p, k, c)
		}
		if decided == nil {
			decided = v
		} else if decided.Key() != v.Key() {
			t.Fatalf("agreement violated at instance %d: %q vs %q", k, decided.Key(), v.Key())
		}
	}
	if len(proposals) > 0 {
		valid := false
		for _, pv := range proposals {
			if pv.Key() == decided.Key() {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("validity violated: decided %q not among proposals", decided.Key())
		}
	}
	return decided
}

func allProcs(n int) []stack.ProcessID {
	out := make([]stack.ProcessID, n)
	for i := range out {
		out[i] = stack.ProcessID(i + 1)
	}
	return out
}

func algoFlavours() []struct {
	name     string
	algo     Algo
	indirect bool
} {
	return []struct {
		name     string
		algo     Algo
		indirect bool
	}{
		{"CT", CT, false},
		{"MR", MR, false},
		{"CT-indirect", CT, true},
		{"MR-indirect", MR, true},
	}
}

// rcvAlways is an rcv predicate that always holds (all messages received).
func rcvAlways(stack.ProcessID, Value) bool { return true }

func TestFailureFreeDecision(t *testing.T) {
	for _, fl := range algoFlavours() {
		for _, n := range []int{3, 4, 5, 7} {
			t.Run(fmt.Sprintf("%s/n=%d", fl.name, n), func(t *testing.T) {
				h := newHarness(t, n, fl.algo, fl.indirect, rcvAlways)
				var proposals []Value
				for i := 1; i <= n; i++ {
					v := tv(fmt.Sprintf("v%d", i))
					proposals = append(proposals, v)
					h.propose(stack.ProcessID(i), time.Duration(i)*time.Millisecond, 1, v)
				}
				h.w.RunFor(5 * time.Second)
				h.checkAgreement(t, 1, allProcs(n), proposals)
			})
		}
	}
}

func TestManySequentialInstances(t *testing.T) {
	for _, fl := range algoFlavours() {
		t.Run(fl.name, func(t *testing.T) {
			const n, instances = 3, 20
			h := newHarness(t, n, fl.algo, fl.indirect, rcvAlways)
			for k := uint64(1); k <= instances; k++ {
				for i := 1; i <= n; i++ {
					v := tv(fmt.Sprintf("k%d-v%d", k, i))
					h.propose(stack.ProcessID(i), time.Duration(k)*10*time.Millisecond, k, v)
				}
			}
			h.w.RunFor(30 * time.Second)
			for k := uint64(1); k <= instances; k++ {
				h.checkAgreement(t, k, allProcs(n), nil)
			}
		})
	}
}

// TestCoordinatorCrash crashes the round-1 coordinator (process 2, since
// coord(1) = (1 mod n) + 1) before it can act; the surviving processes must
// still decide once their detectors suspect it.
func TestCoordinatorCrash(t *testing.T) {
	for _, fl := range algoFlavours() {
		t.Run(fl.name, func(t *testing.T) {
			n := 3
			if fl.algo == MR && fl.indirect {
				// The indirect MR algorithm only tolerates f < n/3
				// (the paper's resilience result); n=4 tolerates one
				// crash.
				n = 4
			}
			h := newHarness(t, n, fl.algo, fl.indirect, rcvAlways)
			crashed := stack.ProcessID(2)
			h.w.Crash(crashed, simnet.DropInFlight)
			var proposals []Value
			var alive []stack.ProcessID
			for i := 1; i <= n; i++ {
				v := tv(fmt.Sprintf("v%d", i))
				proposals = append(proposals, v)
				h.propose(stack.ProcessID(i), time.Millisecond, 1, v)
				if stack.ProcessID(i) != crashed {
					alive = append(alive, stack.ProcessID(i))
				}
			}
			// Survivors suspect the crashed coordinator after a while.
			for _, p := range alive {
				p := p
				h.w.After(p, 50*time.Millisecond, func() {
					h.fds[p].SetSuspected(crashed, true)
				})
			}
			h.w.RunFor(5 * time.Second)
			h.checkAgreement(t, 1, alive, proposals)
		})
	}
}

// TestCrashMidInstance crashes a coordinator after it has already sent some
// round traffic; agreement must hold among survivors.
func TestCrashMidInstance(t *testing.T) {
	for _, fl := range algoFlavours() {
		t.Run(fl.name, func(t *testing.T) {
			const n = 5
			h := newHarness(t, n, fl.algo, fl.indirect, rcvAlways)
			crashed := stack.ProcessID(2) // round-1 coordinator
			for i := 1; i <= n; i++ {
				h.propose(stack.ProcessID(i), time.Millisecond, 1, tv(fmt.Sprintf("v%d", i)))
			}
			// Let round 1 partially complete, then crash the coordinator
			// dropping whatever it still has in flight.
			h.w.After(1, 2*time.Millisecond, func() {
				h.w.Crash(crashed, simnet.DropInFlight)
			})
			for _, p := range []stack.ProcessID{1, 3, 4, 5} {
				p := p
				h.w.After(p, 60*time.Millisecond, func() {
					h.fds[p].SetSuspected(crashed, true)
				})
			}
			h.w.RunFor(10 * time.Second)
			h.checkAgreement(t, 1, []stack.ProcessID{1, 3, 4, 5}, nil)
		})
	}
}

// TestWrongSuspicionsStillTerminate floods the detectors with transient
// wrong suspicions; ◇S only promises *eventual* accuracy, and the
// algorithms must converge once suspicions quiesce.
func TestWrongSuspicionsStillTerminate(t *testing.T) {
	for _, fl := range algoFlavours() {
		t.Run(fl.name, func(t *testing.T) {
			const n = 3
			h := newHarness(t, n, fl.algo, fl.indirect, rcvAlways)
			for i := 1; i <= n; i++ {
				h.propose(stack.ProcessID(i), time.Millisecond, 1, tv(fmt.Sprintf("v%d", i)))
			}
			// Every process briefly suspects everyone, twice.
			for i := 1; i <= n; i++ {
				p := stack.ProcessID(i)
				for rep := 0; rep < 2; rep++ {
					base := time.Duration(rep)*3*time.Millisecond + 500*time.Microsecond
					for j := 1; j <= n; j++ {
						q := stack.ProcessID(j)
						if q == p {
							continue
						}
						h.w.After(p, base, func() { h.fds[p].SetSuspected(q, true) })
						h.w.After(p, base+time.Millisecond, func() { h.fds[p].SetSuspected(q, false) })
					}
				}
			}
			h.w.RunFor(10 * time.Second)
			h.checkAgreement(t, 1, allProcs(n), nil)
		})
	}
}

// TestIndirectRefusesUnreceivedValue checks the core indirect-consensus
// behaviour: a process that does not hold msgs(v) must not help decide v.
// Process 1 proposes "hot" but only process 1 holds its messages; the
// decision must not be "hot" unless rcv eventually holds elsewhere — here it
// never does, so the decision must be some other proposal.
func TestIndirectRefusesUnreceivedValue(t *testing.T) {
	for _, algo := range []Algo{CT, MR} {
		t.Run(algo.String(), func(t *testing.T) {
			const n = 3
			rcv := func(p stack.ProcessID, v Value) bool {
				if v.Key() == "hot" {
					return p == 1 // only the proposer holds msgs("hot")
				}
				return true
			}
			h := newHarness(t, n, algo, true, rcv)
			h.propose(1, time.Millisecond, 1, tv("hot"))
			h.propose(2, time.Millisecond, 1, tv("cold2"))
			h.propose(3, time.Millisecond, 1, tv("cold3"))
			h.w.RunFor(10 * time.Second)
			v := h.checkAgreement(t, 1, allProcs(n), nil)
			if v.Key() == "hot" {
				t.Fatalf("decided %q although only one (potentially faulty) process held its messages", v.Key())
			}
		})
	}
}

// TestIndirectDecidesOnceRcvHolds is the liveness side of Hypothesis A: a
// value initially held by nobody becomes received everywhere, after which
// the indirect algorithms must terminate on it.
func TestIndirectDecidesOnceRcvHolds(t *testing.T) {
	for _, algo := range []Algo{CT, MR} {
		t.Run(algo.String(), func(t *testing.T) {
			const n = 3
			have := make(map[stack.ProcessID]bool)
			rcv := func(p stack.ProcessID, v Value) bool { return have[p] }
			h := newHarness(t, n, algo, true, rcv)
			// Everyone proposes the same value; rcv holds for nobody at
			// first, then becomes true everywhere (as reliable broadcast
			// would make it).
			for i := 1; i <= n; i++ {
				h.propose(stack.ProcessID(i), time.Millisecond, 1, tv("vv"))
			}
			for i := 1; i <= n; i++ {
				p := stack.ProcessID(i)
				h.w.After(p, 40*time.Millisecond, func() { have[p] = true })
			}
			// Detectors eventually suspect nobody, but rounds must churn
			// until rcv holds; give the rotation a nudge so blocked
			// rounds can move past coordinators whose proposals are
			// refused.
			h.w.RunFor(20 * time.Second)
			h.checkAgreement(t, 1, allProcs(n), []Value{tv("vv")})
		})
	}
}

// TestMRIndirectResilienceBoundary pins down the paper's Section 3.3
// result: the indirect MR algorithm requires ⌈(2n+1)/3⌉ correct processes.
// At n=3 a single crash (f=1 ≥ n/3) makes the Phase 2 quorum of 3
// unreachable, so the survivors must NOT decide; the original MR algorithm
// in the same scenario does decide. CT-indirect also decides (its
// resilience is unaffected by the adaptation).
func TestMRIndirectResilienceBoundary(t *testing.T) {
	run := func(algo Algo, indirect bool) bool {
		const n = 3
		h := newHarness(t, n, algo, indirect, rcvAlways)
		crashed := stack.ProcessID(2)
		h.w.Crash(crashed, simnet.DropInFlight)
		for i := 1; i <= n; i++ {
			h.propose(stack.ProcessID(i), time.Millisecond, 1, tv(fmt.Sprintf("v%d", i)))
		}
		for _, p := range []stack.ProcessID{1, 3} {
			p := p
			h.w.After(p, 50*time.Millisecond, func() {
				h.fds[p].SetSuspected(crashed, true)
			})
		}
		h.w.RunFor(5 * time.Second)
		_, ok1 := h.decisions[1][1]
		_, ok3 := h.decisions[3][1]
		return ok1 && ok3
	}
	if run(MR, true) {
		t.Error("indirect MR decided at n=3 with one crash; it must block (f < n/3)")
	}
	if !run(MR, false) {
		t.Error("original MR failed to decide at n=3 with one crash (f < n/2 should suffice)")
	}
	if !run(CT, true) {
		t.Error("indirect CT failed to decide at n=3 with one crash (resilience should be unaffected)")
	}
}

func TestQuorumHelpers(t *testing.T) {
	cases := []struct {
		n, maj, tt, third int
	}{
		{3, 2, 3, 2},
		{4, 3, 3, 2},
		{5, 3, 4, 2},
		{6, 4, 5, 3},
		{7, 4, 5, 3},
		{9, 5, 7, 4},
		{10, 6, 7, 4},
	}
	for _, c := range cases {
		if got := Majority(c.n); got != c.maj {
			t.Errorf("Majority(%d) = %d, want %d", c.n, got, c.maj)
		}
		if got := TwoThirds(c.n); got != c.tt {
			t.Errorf("TwoThirds(%d) = %d, want %d", c.n, got, c.tt)
		}
		if got := ThirdPlus(c.n); got != c.third {
			t.Errorf("ThirdPlus(%d) = %d, want %d", c.n, got, c.third)
		}
	}
}

func TestMaxFaulty(t *testing.T) {
	cases := []struct {
		algo     Algo
		indirect bool
		n, want  int
	}{
		{CT, false, 3, 1},
		{CT, true, 3, 1},
		{MR, false, 3, 1},
		{MR, true, 3, 0}, // f < n/3: no crash tolerated at n=3
		{MR, true, 4, 1},
		{MR, true, 7, 2},
		{CT, true, 7, 3},
	}
	for _, c := range cases {
		if got := MaxFaulty(c.algo, c.indirect, c.n); got != c.want {
			t.Errorf("MaxFaulty(%v, indirect=%v, n=%d) = %d, want %d",
				c.algo, c.indirect, c.n, got, c.want)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	w := simnet.NewWorld(1, netmodel.Instant(), 1)
	if _, err := NewService(w.Node(1), Config{Algo: CT}); err == nil {
		t.Error("nil detector accepted")
	}
	if _, err := NewService(w.Node(1), Config{Algo: CT, Indirect: true, Detector: fd.NewScripted()}); err == nil {
		t.Error("indirect without rcv accepted")
	}
	if _, err := NewService(w.Node(1), Config{Algo: Algo(99), Detector: fd.NewScripted()}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestCoordRotation(t *testing.T) {
	// coord(r) = (r mod n) + 1 as in the paper's pseudo-code.
	if c := coord(1, 3); c != 2 {
		t.Fatalf("coord(1,3) = %d, want 2", c)
	}
	if c := coord(3, 3); c != 1 {
		t.Fatalf("coord(3,3) = %d, want 1", c)
	}
	seen := map[stack.ProcessID]bool{}
	for r := 1; r <= 5; r++ {
		seen[coord(r, 5)] = true
	}
	if len(seen) != 5 {
		t.Fatalf("coordinator rotation covered %d of 5 processes", len(seen))
	}
}
