package consensus

// Tests of the pipelining support points of the Service: the OnNeed
// participation callback and the OpenMsg beacon. Both exist for the
// pipelined atomic broadcast engine, whose liveness argument needs every
// correct process to eventually join every live instance — including
// instances it holds no identifiers for.

import (
	"testing"
	"time"

	"abcast/internal/fd"
	"abcast/internal/netmodel"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// needHarness wires n services whose OnNeed callbacks record the instances
// they were asked to join.
type needHarness struct {
	*harness
	needs []map[uint64]int // needs[p][k] = OnNeed invocations
}

func newNeedHarness(t *testing.T, n int) *needHarness {
	t.Helper()
	nh := &needHarness{
		harness: &harness{
			w:           simnet.NewWorld(n, netmodel.Setup1(), 42),
			fds:         make([]*fd.Scripted, n+1),
			svcs:        make([]*Service, n+1),
			decisions:   make([]map[uint64]Value, n+1),
			decideCount: make([]map[uint64]int, n+1),
		},
		needs: make([]map[uint64]int, n+1),
	}
	for i := 1; i <= n; i++ {
		i := i
		nh.fds[i] = fd.NewScripted()
		nh.decisions[i] = make(map[uint64]Value)
		nh.decideCount[i] = make(map[uint64]int)
		nh.needs[i] = make(map[uint64]int)
		svc, err := NewService(nh.w.Node(stack.ProcessID(i)), Config{
			Algo:     CT,
			Detector: nh.fds[i],
			Decide: func(k uint64, v Value) {
				nh.decisions[i][k] = v
				nh.decideCount[i][k]++
			},
			OnNeed: func(k uint64) { nh.needs[i][k]++ },
		})
		if err != nil {
			t.Fatalf("NewService(p%d): %v", i, err)
		}
		nh.svcs[i] = svc
	}
	return nh
}

// TestOpenBeaconFiresOnNeed: a beacon for an instance nobody proposed to
// must surface through OnNeed at every receiver, and not at the sender.
func TestOpenBeaconFiresOnNeed(t *testing.T) {
	h := newNeedHarness(t, 3)
	h.w.After(1, time.Millisecond, func() { h.svcs[1].Open(7) })
	h.w.RunFor(time.Second)
	if h.needs[1][7] != 0 {
		t.Fatalf("sender's own OnNeed fired %d times", h.needs[1][7])
	}
	for p := 2; p <= 3; p++ {
		if h.needs[p][7] == 0 {
			t.Fatalf("p%d never learned of instance 7", p)
		}
	}
	// Beacons alone must not create instance state.
	for p := 1; p <= 3; p++ {
		if c := h.svcs[p].InstanceCount(); c != 0 {
			t.Fatalf("p%d retains %d instances after beacons only", p, c)
		}
	}
}

// TestOpenIgnoredAfterProposeOrDecide: a process that already joined (or
// settled) the instance must not be re-notified.
func TestOpenIgnoredAfterProposeOrDecide(t *testing.T) {
	h := newNeedHarness(t, 3)
	for i := 1; i <= 3; i++ {
		h.propose(stack.ProcessID(i), time.Millisecond, 1, tv("v"))
	}
	h.w.RunFor(2 * time.Second)
	h.checkAgreement(t, 1, allProcs(3), nil)
	before := h.needs[2][1]
	h.w.After(1, time.Millisecond, func() { h.svcs[1].Open(1) })
	h.w.RunFor(time.Second)
	if h.needs[2][1] != before {
		t.Fatalf("OnNeed re-fired for a settled instance: %d -> %d", before, h.needs[2][1])
	}
}

// TestOpenIgnoredWhenPruned: beacons for pruned instances are stale traffic
// on the receiving side, and a no-op on the sending side.
func TestOpenIgnoredWhenPruned(t *testing.T) {
	h := newNeedHarness(t, 3)
	h.w.After(2, time.Millisecond, func() { h.svcs[2].PruneBelow(10) })
	h.w.After(1, 2*time.Millisecond, func() { h.svcs[1].Open(5) })
	h.w.RunFor(time.Second)
	if h.needs[2][5] != 0 {
		t.Fatal("OnNeed fired for a pruned instance")
	}
	if h.needs[3][5] == 0 {
		t.Fatal("unpruned p3 missed the beacon (test wiring broken)")
	}
	// A sender whose own watermark has passed k must not beacon at all.
	h.w.After(2, time.Millisecond, func() { h.svcs[2].Open(6) })
	h.w.RunFor(time.Second)
	for _, p := range []int{1, 3} {
		if h.needs[p][6] != 0 {
			t.Fatalf("Open below the sender's prune watermark still reached p%d", p)
		}
	}
}

// TestBufferedTrafficFiresOnNeed: ordinary algorithm traffic for an
// instance this process has not proposed to doubles as a participation
// signal.
func TestBufferedTrafficFiresOnNeed(t *testing.T) {
	h := newNeedHarness(t, 3)
	// Process 2 is the round-1 coordinator (coord(1,3) = 2): its proposal
	// broadcast reaches the others, which have not proposed.
	h.propose(2, time.Millisecond, 3, tv("v2"))
	h.w.RunFor(time.Second)
	for _, p := range []int{1, 3} {
		if h.needs[p][3] == 0 {
			t.Fatalf("p%d: buffered round-1 proposal did not fire OnNeed", p)
		}
	}
}

// TestOpenPiggybacksOnAlgorithmTraffic: an Open issued in the same event as
// a propose that broadcasts (the round-1 coordinator's proposal) must ride
// on that traffic — zero standalone beacon messages.
func TestOpenPiggybacksOnAlgorithmTraffic(t *testing.T) {
	h := newNeedHarness(t, 3)
	// coord(1, 3) = 2: p2's round-1 proposal broadcast is the ride.
	h.w.After(2, time.Millisecond, func() {
		h.svcs[2].Open(7)
		h.svcs[2].Propose(1, tv("v2"))
	})
	h.w.RunFor(time.Second)
	for _, p := range []int{1, 3} {
		if h.needs[p][7] == 0 {
			t.Fatalf("p%d never learned of instance 7 via piggyback", p)
		}
	}
	announced, piggybacked, standalone := h.svcs[2].OpenTraffic()
	if announced != 2 || piggybacked != 2 || standalone != 0 {
		t.Fatalf("OpenTraffic = (%d, %d, %d), want (2, 2, 0): the proposal broadcast should have carried both announcements",
			announced, piggybacked, standalone)
	}
}

// TestOpenStandaloneBeaconsBatch: announcements that find no ride fall back
// to one standalone OpenMsg per peer covering every pending instance — not
// one message per (instance, peer).
func TestOpenStandaloneBeaconsBatch(t *testing.T) {
	h := newNeedHarness(t, 3)
	h.w.After(1, time.Millisecond, func() {
		h.svcs[1].Open(7)
		h.svcs[1].Open(9)
	})
	h.w.RunFor(time.Second)
	for _, p := range []int{2, 3} {
		for _, k := range []uint64{7, 9} {
			if h.needs[p][k] == 0 {
				t.Fatalf("p%d never learned of instance %d", p, k)
			}
		}
	}
	announced, piggybacked, standalone := h.svcs[1].OpenTraffic()
	if announced != 4 || piggybacked != 0 || standalone != 4 {
		t.Fatalf("OpenTraffic = (%d, %d, %d), want (4, 0, 4)", announced, piggybacked, standalone)
	}
	// Both instances share one wire message per peer (the Scripted
	// detectors emit no heartbeats, so all traffic here is beacons).
	if got := h.w.MsgsSent(); got != 2 {
		t.Fatalf("MsgsSent = %d, want 2 (one batched beacon per peer)", got)
	}
}

// TestBatchedBeaconSurvivesPrunedEnvelopeInstance: a standalone beacon
// whose envelope instance the receiver has already pruned must still
// deliver its live Also announcements — each announced instance is judged
// against the prune watermark on its own.
func TestBatchedBeaconSurvivesPrunedEnvelopeInstance(t *testing.T) {
	h := newNeedHarness(t, 3)
	// p2 has settled instances below 6; p1's batched beacon arrives with
	// envelope instance 5 and Also=[9].
	h.w.After(2, time.Millisecond, func() { h.svcs[2].PruneBelow(6) })
	h.w.After(1, 2*time.Millisecond, func() {
		h.svcs[1].Open(5)
		h.svcs[1].Open(9)
	})
	h.w.RunFor(time.Second)
	if h.needs[2][5] != 0 {
		t.Fatal("p2 notified of an instance below its prune watermark")
	}
	if h.needs[2][9] == 0 {
		t.Fatal("p2 lost the live announcement batched behind a pruned envelope instance")
	}
	// p3 pruned nothing and must learn of both.
	if h.needs[3][5] == 0 || h.needs[3][9] == 0 {
		t.Fatal("p3 missed a batched announcement (test wiring broken)")
	}
}

// TestOpenElidedWhenSettledBeforeFlush: announcements whose instance is
// pruned before the flush are silently dropped — the peers learn the
// outcome from the decide relay, not from a beacon.
func TestOpenElidedWhenSettledBeforeFlush(t *testing.T) {
	h := newNeedHarness(t, 3)
	h.w.After(1, time.Millisecond, func() {
		h.svcs[1].Open(7)
		h.svcs[1].PruneBelow(8)
	})
	h.w.RunFor(time.Second)
	if h.w.MsgsSent() != 0 {
		t.Fatalf("MsgsSent = %d, want 0: pruned announcement still flushed", h.w.MsgsSent())
	}
	announced, piggybacked, standalone := h.svcs[1].OpenTraffic()
	if announced != 2 || piggybacked != 0 || standalone != 0 {
		t.Fatalf("OpenTraffic = (%d, %d, %d), want (2, 0, 0)", announced, piggybacked, standalone)
	}
	for _, p := range []int{2, 3} {
		if h.needs[p][7] != 0 {
			t.Fatalf("p%d notified of a pruned instance", p)
		}
	}
}

// TestOnNeedCanProposeSynchronously: proposing from inside the callback is
// allowed and the buffered message that triggered it is replayed, so the
// instance decides.
func TestOnNeedCanProposeSynchronously(t *testing.T) {
	const n = 3
	h := &needHarness{
		harness: &harness{
			w:           simnet.NewWorld(n, netmodel.Setup1(), 7),
			fds:         make([]*fd.Scripted, n+1),
			svcs:        make([]*Service, n+1),
			decisions:   make([]map[uint64]Value, n+1),
			decideCount: make([]map[uint64]int, n+1),
		},
		needs: make([]map[uint64]int, n+1),
	}
	for i := 1; i <= n; i++ {
		i := i
		h.fds[i] = fd.NewScripted()
		h.decisions[i] = make(map[uint64]Value)
		h.decideCount[i] = make(map[uint64]int)
		h.needs[i] = make(map[uint64]int)
		svc, err := NewService(h.w.Node(stack.ProcessID(i)), Config{
			Algo:     CT,
			Detector: h.fds[i],
			Decide: func(k uint64, v Value) {
				h.decisions[i][k] = v
				h.decideCount[i][k]++
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Join on demand with this process's own (empty-ish) value.
		svc.cfg.OnNeed = func(k uint64) {
			h.needs[i][k]++
			svc.Propose(k, tv("joined"))
		}
		h.svcs[i] = svc
	}
	// Only the coordinator proposes of its own accord.
	h.propose(2, time.Millisecond, 1, tv("v2"))
	h.w.RunFor(5 * time.Second)
	h.checkAgreement(t, 1, allProcs(n), []Value{tv("v2"), tv("joined")})
}
