package consensus

import "abcast/internal/stack"

// valueSize returns the wire footprint of a possibly-nil value.
func valueSize(v Value) int {
	if v == nil {
		return 0
	}
	return v.WireSize()
}

// CTEstimateMsg is Phase 1 of the CT algorithm: (p, r, estimate, ts) sent to
// the round's coordinator.
type CTEstimateMsg struct {
	R   int
	TS  int
	Est Value
}

// WireSize implements stack.Message.
func (m CTEstimateMsg) WireSize() int { return 9 + valueSize(m.Est) }

// CTProposalMsg is Phase 2 of the CT algorithm: the coordinator's proposal
// (p, r, estimatec) sent to all.
type CTProposalMsg struct {
	R   int
	Est Value
}

// WireSize implements stack.Message.
func (m CTProposalMsg) WireSize() int { return 5 + valueSize(m.Est) }

// CTAckMsg is Phase 3's reply: (p, r, ack) or (p, r, nack).
type CTAckMsg struct {
	R    int
	Nack bool
}

// WireSize implements stack.Message.
func (m CTAckMsg) WireSize() int { return 6 }

// MREchoMsg is the MR algorithm's per-round broadcast: the coordinator's
// initial send and every process's Phase 1 relay of est_from_c share this
// type (as in Algorithm 3, where both are "(p, rp, est_from_cp)"). Bottom
// encodes ⊥.
type MREchoMsg struct {
	R      int
	Bottom bool
	Est    Value
}

// WireSize implements stack.Message.
func (m MREchoMsg) WireSize() int { return 6 + valueSize(m.Est) }

// DecideMsg carries a decision; it is relayed once by every receiver, which
// gives it reliable-broadcast semantics (line 37 of Algorithm 2, line 26 of
// Algorithm 3).
type DecideMsg struct {
	Est Value
}

// WireSize implements stack.Message.
func (m DecideMsg) WireSize() int { return 2 + valueSize(m.Est) }

// OpenMsg is a participation beacon, not part of the paper's algorithms: a
// process that proposes to a *pipelined* instance (one beyond its lowest
// undecided serial number) announces the instance to all others. Without it,
// an instance whose every proposed identifier got ordered by an earlier
// instance's decision would generate no traffic that forces the remaining
// processes to join, and the rotating coordinator could wait forever on a
// correct process that never proposes. Receivers that have not proposed to
// the instance react through Config.OnNeed.
//
// A standalone OpenMsg is the fallback path: announcements first wait
// (briefly) for a ride on outgoing algorithm traffic as a PiggyMsg, and only
// destinations that saw no traffic within Config.OpenDelay get the beacon as
// its own message. One beacon covers many instances: the envelope's Inst
// field carries the first, Also the rest.
type OpenMsg struct {
	// Also lists further open instances beyond the envelope's Inst.
	Also []uint64
}

// WireSize implements stack.Message.
func (m OpenMsg) WireSize() int { return 2 + 8*len(m.Also) }

// SyncReqMsg asks the receiver to relay the decisions of instances ≥ From
// that it has in its decision log (recovery path, Config.Relay). A process
// sends it when it can tell it is behind — it holds decisions for later
// instances while earlier ones are missing — which happens when a drop-mode
// partition black-holed the original DecideMsgs and eviction has emptied
// every retransmission buffer that could have replayed them. Stale algorithm
// traffic triggers the same relay implicitly; the explicit request covers a
// behind process that has gone quiet (e.g. parked in a round it coordinates
// itself, waiting for estimates that will never come).
type SyncReqMsg struct {
	From uint64
}

// WireSize implements stack.Message.
func (m SyncReqMsg) WireSize() int { return 9 }

// PiggyMsg decorates an algorithm message with open-instance announcements,
// so a pipelined propose costs no standalone beacon messages when the sender
// is already talking to the destination. The receiver processes Opens
// exactly like OpenMsg beacons, then handles M under the envelope's own
// instance.
type PiggyMsg struct {
	Opens []uint64
	M     stack.Message
}

// WireSize implements stack.Message.
func (m PiggyMsg) WireSize() int { return 1 + 8*len(m.Opens) + m.M.WireSize() }

var (
	_ stack.Message = CTEstimateMsg{}
	_ stack.Message = CTProposalMsg{}
	_ stack.Message = CTAckMsg{}
	_ stack.Message = MREchoMsg{}
	_ stack.Message = DecideMsg{}
	_ stack.Message = OpenMsg{}
	_ stack.Message = PiggyMsg{}
	_ stack.Message = SyncReqMsg{}
)
