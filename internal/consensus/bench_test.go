package consensus

// Hot-path microbenchmark: per-instance cost of indirect consensus in the
// steady state — three correct processes, stable coordinator, one decided
// instance per iteration, including the open/piggyback machinery the engine
// exercises between ordering rounds.

import (
	"testing"
	"time"

	"abcast/internal/fd"
	"abcast/internal/netmodel"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// BenchmarkInstanceDecide runs b.N sequential Chandra–Toueg instances to
// decision across a 3-process world and reports the cost per decided
// instance (all three processes' work plus simulator scheduling).
func BenchmarkInstanceDecide(b *testing.B) {
	const n = 3
	w := simnet.NewWorld(n, netmodel.Setup1(), 42)
	svcs := make([]*Service, n+1)
	decided := make([]int, n+1)
	for i := 1; i <= n; i++ {
		i := i
		svc, err := NewService(w.Node(stack.ProcessID(i)), Config{
			Algo:     CT,
			Indirect: true,
			Rcv:      func(Value) bool { return true },
			Detector: fd.NewScripted(),
			Decide:   func(uint64, Value) { decided[i]++ },
		})
		if err != nil {
			b.Fatal(err)
		}
		svcs[i] = svc
	}
	const gap = 2 * time.Millisecond
	for k := 0; k < b.N; k++ {
		k := uint64(k)
		at := time.Duration(k) * gap
		for p := 1; p <= n; p++ {
			p := stack.ProcessID(p)
			w.After(p, at, func() { svcs[p].Propose(k, tv("v")) })
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	w.RunFor(time.Duration(b.N)*gap + time.Second)
	b.StopTimer()
	for p := 1; p <= n; p++ {
		if decided[p] != b.N {
			b.Fatalf("p%d decided %d/%d instances", p, decided[p], b.N)
		}
	}
}
