package relink

// Hot-path microbenchmark: per-message cost of the reliable-link layer on a
// loss-free network — sequence assignment, retention, in-order dispatch,
// and acknowledgment trimming, with no retransmissions in the way.

import (
	"testing"
	"time"

	"abcast/internal/netmodel"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// BenchmarkLinkSendDispatch streams b.N messages 1→2 through a Link pair
// and reports the full send-to-dispatch cost per message (simulator
// scheduling included, identical in both arms of any comparison).
func BenchmarkLinkSendDispatch(b *testing.B) {
	w := simnet.NewWorld(2, netmodel.Setup1(), 7)
	got := 0
	for i := 1; i <= 2; i++ {
		node := w.Node(stack.ProcessID(i))
		New(node, Config{})
		node.Register(stack.ProtoApp, stack.HandlerFunc(func(_ stack.ProcessID, _ uint64, _ stack.Message) {
			got++
		}))
	}
	sender := w.Node(1).Proto(stack.ProtoApp)
	// Setup1 charges ~125µs of sender CPU per message; keep the offered
	// rate below the service rate so the send queue stays bounded.
	const gap = 200 * time.Microsecond
	for i := 0; i < b.N; i++ {
		n := i
		w.After(1, time.Duration(i)*gap, func() { sender.Send(2, 0, tmsg{N: n}) })
	}
	b.ReportAllocs()
	b.ResetTimer()
	w.RunFor(time.Duration(b.N)*gap + time.Second)
	b.StopTimer()
	if got != b.N {
		b.Fatalf("dispatched %d/%d", got, b.N)
	}
}
