// Package relink restores reliable-channel semantics over lossy links: a
// sequencing, retransmitting link layer slotted between the protocol stack
// and the transport.
//
// The paper's model assumes quasi-reliable channels — a message sent between
// two correct processes is eventually delivered. A drop-mode network
// partition (simnet.PartitionDrop, a routing black hole over a datagram
// transport) violates that assumption: traffic crossing the cut is lost for
// good, and the protocol properties that rely on eventual delivery (minority
// catch-up after a heal, full delivery everywhere) fail with it. A Link
// repairs the channel underneath the protocols, the way TCP or a gossip
// anti-entropy pass would, so the model's assumption holds again end to end:
//
//   - every remote send is assigned a per-(sender, receiver) sequence number
//     and retained in a bounded per-peer retransmission buffer until the
//     receiver acknowledges it (oldest entries are evicted beyond
//     Config.BufferCap — see below);
//   - the receiver tracks, per peer, the contiguous prefix it has seen and
//     the out-of-order sequence numbers beyond it; duplicates are dropped, so
//     upper layers still see each message at most once;
//   - on a timer (Config.Interval), both ends run anti-entropy: receivers
//     with gaps or un-acknowledged progress send a digest (AckMsg: cumulative
//     prefix + the sparse set above it), and senders with unacknowledged data
//     probe (ProbeMsg: highest sequence sent + eviction watermark). A digest
//     tells the sender exactly what is missing; it retransmits those
//     envelopes and trims what was received.
//
// The exchange is receiver-driven where possible (no per-message timers) and
// quiesces completely: once all streams are acknowledged and gap-free, no
// further control traffic is generated. A peer that stops answering
// altogether (it crashed, or a cut is outlasting the probes) is probed at
// most Config.MaxProbes consecutive times and then left alone until fresh
// traffic to it — which the broadcast-to-all protocol layers above keep
// generating while the system is active — re-earns the budget, so a dead
// peer cannot keep the link ticking forever.
//
// Eviction makes the buffer bounded rather than the recovery perfect: an
// envelope evicted before it was acknowledged can never be retransmitted.
// Every SeqMsg and ProbeMsg therefore carries the sender's eviction watermark
// (Low), and the receiver advances its accounted prefix over such permanent
// gaps instead of NACKing them forever. Repairing the *semantic* loss is the
// job of the layer above: the consensus decide-relay replays decisions a
// healed peer missed, and the atomic broadcast engine fetches missing
// payloads by identifier (see internal/consensus and internal/core). The
// division of labour mirrors production systems: bounded in-window repair at
// the transport (TCP retransmission), state transfer above it (Raft
// snapshots, anti-entropy in Dynamo-style stores).
//
// Failure-detector heartbeats (stack.ProtoFD) bypass the layer: they are
// periodic and carry no state worth replaying, and retransmitting stale
// heartbeats would only distort timeout adaptation.
package relink

import (
	"sort"
	"time"

	"abcast/internal/metrics"
	"abcast/internal/stack"
	"abcast/internal/stats"
	"abcast/internal/trace"
)

// Config parameterizes a Link. The zero value selects the defaults.
type Config struct {
	// BufferCap is the maximum number of unacknowledged envelopes retained
	// per peer for retransmission; beyond it the oldest are evicted
	// (default DefaultBufferCap).
	BufferCap int
	// Interval is the anti-entropy cadence: how often receivers digest and
	// senders probe. It doubles as the retransmission guard — an envelope
	// (re)sent within the last Interval is not retransmitted again, so an
	// in-flight copy is not duplicated by a digest that predates it
	// (default DefaultInterval).
	Interval time.Duration
	// Burst caps retransmissions per processed digest, bounding the load
	// spike when a long gap is repaired after a heal; the next anti-entropy
	// round picks up where the burst stopped (default DefaultBurst).
	Burst int
	// HaveCap bounds the per-peer set of out-of-order sequence numbers a
	// receiver tracks; beyond it the oldest gap is declared lost (default
	// DefaultHaveCap).
	HaveCap int
	// MaxProbes bounds consecutive unanswered probes per outgoing stream:
	// a peer that answers nothing for that many anti-entropy rounds (it
	// has crashed, or the cut is outlasting the probes) stops being
	// probed, so the link still quiesces with a dead peer in the group.
	// Any fresh send to the peer, or any digest from it, resets the
	// budget — which is what re-triggers repair after a long cut heals,
	// since the protocol layers above keep broadcasting to every process
	// (default DefaultMaxProbes).
	MaxProbes int
	// StartSeq is the first sequence number new outgoing streams assign
	// (default 1). A restarted process must resume *above* every sequence
	// number its previous incarnation ever used: receivers remember the
	// old stream positions, and a reused number would be dropped as a
	// duplicate — silently losing a fresh envelope. The crash-recovery
	// layer passes the write-ahead-logged reservation here.
	StartSeq uint64
	// OnReserve, when set, is invoked whenever the link claims a new block
	// of sequence numbers: every number the link will ever assign is below
	// the reported limit until OnReserve is called again with a higher
	// one. The crash-recovery layer logs the limit write-ahead and feeds
	// it back via StartSeq on restart.
	OnReserve func(limit uint64)
	// Metrics, when non-nil, is the registry the link counters (relink.*)
	// register into; nil leaves them standalone (Stats works either way).
	Metrics *metrics.Registry
	// Trace, when non-nil, records a retransmit lifecycle event per digest
	// that triggered re-sends. Nil (the default) records nothing and costs
	// one pointer test.
	Trace *trace.Recorder
}

// Defaults for the zero Config.
const (
	DefaultBufferCap = 1024
	DefaultInterval  = 100 * time.Millisecond
	DefaultBurst     = 256
	DefaultHaveCap   = 4096
	DefaultMaxProbes = 25
)

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.BufferCap <= 0 {
		c.BufferCap = DefaultBufferCap
	}
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Burst <= 0 {
		c.Burst = DefaultBurst
	}
	if c.HaveCap <= 0 {
		c.HaveCap = DefaultHaveCap
	}
	if c.MaxProbes <= 0 {
		c.MaxProbes = DefaultMaxProbes
	}
	if c.StartSeq == 0 {
		c.StartSeq = 1
	}
	return c
}

// reserveSlack is the size of each sequence-number block claimed through
// Config.OnReserve: large enough that steady traffic reserves rarely, small
// enough that the numbers skipped on restart are negligible against the
// uint64 space.
const reserveSlack = 1024

// SeqMsg wraps one protocol envelope with its stream sequence number. Low is
// the sender's eviction watermark: no sequence number below it can be
// retransmitted anymore, so the receiver gives up waiting for those.
type SeqMsg struct {
	Seq uint64
	Low uint64
	Env stack.Envelope
}

// WireSize implements stack.Message.
func (m SeqMsg) WireSize() int { return 16 + m.Env.WireSize() }

// AckMsg is the receiver's digest of one incoming stream: every sequence
// number ≤ Cum has been accounted for (delivered or given up), and Have
// lists the out-of-order ones received beyond Cum. The sender trims its
// buffer to the digest and retransmits exactly the gaps.
type AckMsg struct {
	Cum  uint64
	Have []uint64
}

// WireSize implements stack.Message.
func (m AckMsg) WireSize() int { return 10 + 8*len(m.Have) }

// ProbeMsg advertises the sender's stream extent while unacknowledged data
// remains: Max is the highest sequence number sent, Low the eviction
// watermark. It makes tail loss visible — a dropped final burst reveals no
// gap to the receiver, so the receiver cannot know to NACK until a probe
// tells it what Max to expect. The receiver always answers with its digest.
type ProbeMsg struct {
	Max uint64
	Low uint64
}

// WireSize implements stack.Message.
func (m ProbeMsg) WireSize() int { return 16 }

// Stats counts link-layer activity, for tests and diagnostics.
type Stats struct {
	// Sequenced is the number of envelopes sent through the layer.
	Sequenced int64
	// Retransmitted counts envelope re-sends triggered by digests.
	Retransmitted int64
	// Evicted counts buffered envelopes discarded unacknowledged because
	// the per-peer buffer exceeded BufferCap.
	Evicted int64
	// Duplicates counts received envelopes dropped as already-delivered.
	Duplicates int64
	// GiveUps counts sequence numbers a receiver stopped waiting for
	// because the sender's watermark passed them (or HaveCap overflowed).
	GiveUps int64
	// Probes and Acks count control messages sent.
	Probes int64
	Acks   int64
	// RTTs is the smoothed per-peer round-trip estimate of each outgoing
	// stream that has completed at least one ProbeMsg→AckMsg exchange
	// (absent peers are unmeasured). It is the signal the adaptive control
	// plane feeds into SetInterval, so the anti-entropy cadence tracks the
	// topology instead of a constant; see Link.MaxRTT.
	RTTs map[stack.ProcessID]time.Duration
}

// outStream is the sender side of one directed stream: a ring of envelopes
// indexed by sequence number, base..base+len-1, nil where acknowledged.
type outStream struct {
	next    uint64 // last sequence number assigned
	base    uint64 // sequence number of entries[0]; everything below is settled
	entries []*outEntry
	live    int // non-nil entries
	// unanswered counts consecutive probes with no digest back; at
	// Config.MaxProbes the stream stops probing until fresh traffic or a
	// digest resets it (see Config.MaxProbes).
	unanswered int
	// probeAt is when the oldest unanswered probe of the current exchange
	// was sent (zero = no probe outstanding); the next digest from the peer
	// closes the round trip and folds it into rtt. Measuring from the
	// *oldest* probe makes a lost probe inflate the sample rather than
	// vanish, which errs the anti-entropy cadence toward patience on lossy
	// paths. A digest the receiver emitted on its own can close the exchange
	// early and under-measure; the smoothing absorbs it.
	probeAt time.Time
	// rtt is the smoothed probe→digest round-trip estimate for this stream.
	rtt stats.Ewma
}

type outEntry struct {
	env      stack.Envelope
	lastSent time.Time
}

// inStream is the receiver side: the contiguous accounted prefix plus the
// sparse set of sequence numbers received beyond it.
type inStream struct {
	cum      uint64 // every seq ≤ cum accounted for (delivered or given up)
	have     map[uint64]bool
	ackDirty bool // progress since the last digest we sent
}

// Link is the per-process recovery layer. Install with New; it hooks itself
// into the node as both the outbound Sender and the ProtoLink handler. All
// methods run on the process's event loop (like every protocol layer), so no
// locking is needed.
//
//abcheck:eventloop all Link state is owned by the process's event loop
type Link struct {
	node *stack.Node
	ctx  stack.Context
	cfg  Config

	out map[stack.ProcessID]*outStream
	in  map[stack.ProcessID]*inStream

	// reserve is the sequence-number limit last reported through
	// Config.OnReserve: every stream's next assignment stays below it, or a
	// new block is claimed first.
	reserve uint64

	timerArmed bool
	cancelTick func()
	tr         *trace.Recorder

	// Counter cells, registered under relink.* when Config.Metrics is set
	// (standalone otherwise); Stats is a view over them.
	sequenced     *metrics.Counter
	retransmitted *metrics.Counter
	evicted       *metrics.Counter
	duplicates    *metrics.Counter
	giveUps       *metrics.Counter
	probes        *metrics.Counter
	acks          *metrics.Counter
}

// rttAlpha is the smoothing gain of the per-stream round-trip estimate (the
// classic TCP SRTT weight).
const rttAlpha = 0.125

// New wires a Link into the node: outgoing envelopes (except heartbeats and
// the link's own control traffic) are sequenced and buffered; incoming
// SeqMsg envelopes are unwrapped, deduplicated and dispatched to their
// protocol layer.
//
//abcheck:entry constructor; runs before the event loop starts
func New(node *stack.Node, cfg Config) *Link {
	l := &Link{
		node: node,
		ctx:  node.Context(),
		cfg:  cfg.withDefaults(),
		out:  make(map[stack.ProcessID]*outStream),
		in:   make(map[stack.ProcessID]*inStream),
		tr:   cfg.Trace,

		sequenced:     cfg.Metrics.Counter("relink.sequenced"),
		retransmitted: cfg.Metrics.Counter("relink.retransmitted"),
		evicted:       cfg.Metrics.Counter("relink.evicted"),
		duplicates:    cfg.Metrics.Counter("relink.duplicates"),
		giveUps:       cfg.Metrics.Counter("relink.give_ups"),
		probes:        cfg.Metrics.Counter("relink.probes"),
		acks:          cfg.Metrics.Counter("relink.acks"),
	}
	l.reserve = l.cfg.StartSeq
	node.Register(stack.ProtoLink, stack.HandlerFunc(l.receive))
	node.SetSender(l)
	return l
}

// Stats returns a snapshot of the link counters, including the smoothed
// per-peer RTT of every outgoing stream measured so far.
func (l *Link) Stats() Stats {
	st := Stats{
		Sequenced:     l.sequenced.Value(),
		Retransmitted: l.retransmitted.Value(),
		Evicted:       l.evicted.Value(),
		Duplicates:    l.duplicates.Value(),
		GiveUps:       l.giveUps.Value(),
		Probes:        l.probes.Value(),
		Acks:          l.acks.Value(),
	}
	for q, os := range l.out {
		if os.rtt.Seen() {
			if st.RTTs == nil {
				st.RTTs = make(map[stack.ProcessID]time.Duration, len(l.out))
			}
			st.RTTs[q] = time.Duration(os.rtt.Value())
		}
	}
	return st
}

// MaxRTT returns the largest smoothed per-peer round-trip estimate, or 0
// when no stream has completed a probe→digest exchange yet. The adaptive
// control plane paces the anti-entropy cadence off it: the slowest link
// dictates how long a digest can usefully be waited for.
func (l *Link) MaxRTT() time.Duration {
	var max float64
	for _, os := range l.out {
		if os.rtt.Seen() && os.rtt.Value() > max {
			max = os.rtt.Value()
		}
	}
	return time.Duration(max)
}

// Interval returns the current anti-entropy cadence.
func (l *Link) Interval() time.Duration { return l.cfg.Interval }

// SetInterval retargets the anti-entropy cadence (and with it the
// retransmission guard window) at runtime. A pending tick is re-armed at the
// new cadence, so the change takes effect on the next tick rather than after
// one more old-cadence period. Non-positive durations are ignored.
//
//abcheck:entry control-plane actuator; invoked on-loop by core.adaptTick and external controllers via Do
func (l *Link) SetInterval(d time.Duration) {
	if d <= 0 || d == l.cfg.Interval {
		return
	}
	l.cfg.Interval = d
	if l.timerArmed && l.cancelTick != nil {
		l.cancelTick()
		l.timerArmed = false
		l.arm()
	}
}

// Send implements stack.Sender: sequence, buffer, transmit.
//
//abcheck:entry stack.Sender seam, dispatched through the interface from every layer's on-loop sends
func (l *Link) Send(to stack.ProcessID, env stack.Envelope) {
	if env.Proto == stack.ProtoLink || env.Proto == stack.ProtoFD {
		// Control traffic and heartbeats ride raw (see the package comment).
		l.ctx.Send(to, env)
		return
	}
	os := l.outTo(to)
	os.next++
	if l.cfg.OnReserve != nil && os.next >= l.reserve {
		// Claim the next block write-ahead: the callback must make the limit
		// durable before this sequence number leaves the process.
		l.reserve = os.next + reserveSlack
		l.cfg.OnReserve(l.reserve)
	}
	os.entries = append(os.entries, &outEntry{env: env, lastSent: l.ctx.Now()})
	os.live++
	os.unanswered = 0 // fresh traffic re-earns the probe budget
	l.sequenced.Inc()
	for os.live > l.cfg.BufferCap {
		l.evictOldest(os)
	}
	l.ctx.Send(to, stack.Envelope{Proto: stack.ProtoLink, Msg: SeqMsg{Seq: os.next, Low: os.base, Env: env}})
	l.arm()
}

// evictOldest discards the oldest unacknowledged entry and advances the
// watermark past it.
func (l *Link) evictOldest(os *outStream) {
	for i := range os.entries {
		if os.entries[i] != nil {
			os.entries[i] = nil
			os.live--
			l.evicted.Inc()
			break
		}
	}
	os.trim()
}

// trim drops settled entries from the front of the ring.
func (os *outStream) trim() {
	i := 0
	for i < len(os.entries) && os.entries[i] == nil {
		i++
	}
	os.entries = os.entries[i:]
	os.base += uint64(i)
}

// outTo returns (creating if needed) the outgoing stream to q.
func (l *Link) outTo(q stack.ProcessID) *outStream {
	os, ok := l.out[q]
	if !ok {
		os = &outStream{base: l.cfg.StartSeq, next: l.cfg.StartSeq - 1, rtt: stats.NewEwma(rttAlpha)}
		l.out[q] = os
	}
	return os
}

// inFrom returns (creating if needed) the incoming stream from q.
func (l *Link) inFrom(q stack.ProcessID) *inStream {
	is, ok := l.in[q]
	if !ok {
		is = &inStream{have: make(map[uint64]bool)}
		l.in[q] = is
	}
	return is
}

// receive handles link control traffic (ProtoLink).
func (l *Link) receive(from stack.ProcessID, _ uint64, m stack.Message) {
	switch mm := m.(type) {
	case SeqMsg:
		l.onSeq(from, mm)
	case AckMsg:
		l.onAck(from, mm)
	case ProbeMsg:
		l.onProbe(from, mm)
	}
}

// onSeq accounts for one sequenced arrival and dispatches its envelope
// upward unless it is a duplicate.
func (l *Link) onSeq(from stack.ProcessID, m SeqMsg) {
	is := l.inFrom(from)
	l.giveUpBelow(is, m.Low)
	if m.Seq <= is.cum || is.have[m.Seq] {
		l.duplicates.Inc()
		is.ackDirty = true // re-digest so the sender stops resending
		l.arm()
		return
	}
	is.have[m.Seq] = true
	is.compact()
	if len(is.have) > l.cfg.HaveCap {
		// Bound receiver memory: declare the oldest gap lost and advance
		// over it. The layers above repair the semantic loss.
		min := uint64(0)
		for s := range is.have {
			if min == 0 || s < min {
				min = s
			}
		}
		l.giveUps.Add(int64(min - is.cum - 1))
		is.cum = min
		delete(is.have, min)
		is.compact()
	}
	is.ackDirty = true
	l.arm()
	l.node.Dispatch(from, m.Env)
}

// giveUpBelow advances the accounted prefix over sequence numbers the sender
// can no longer retransmit.
func (l *Link) giveUpBelow(is *inStream, low uint64) {
	if low == 0 || low-1 <= is.cum {
		return
	}
	for s := is.cum + 1; s < low; s++ {
		if is.have[s] {
			delete(is.have, s)
		} else {
			l.giveUps.Inc()
		}
	}
	is.cum = low - 1
	is.compact()
	is.ackDirty = true
}

// compact folds contiguous received sequence numbers into the prefix.
func (is *inStream) compact() {
	for is.have[is.cum+1] {
		delete(is.have, is.cum+1)
		is.cum++
	}
}

// onAck trims the outgoing stream to the receiver's digest and retransmits
// the gaps it reveals.
func (l *Link) onAck(from stack.ProcessID, m AckMsg) {
	os, ok := l.out[from]
	if !ok {
		return
	}
	os.unanswered = 0 // the peer is alive and digesting
	if !os.probeAt.IsZero() {
		// A digest closes the outstanding probe exchange: one RTT sample.
		os.rtt.Observe(float64(l.ctx.Now().Sub(os.probeAt)))
		os.probeAt = time.Time{}
	}
	// Settle everything the digest covers.
	for i := range os.entries {
		seq := os.base + uint64(i)
		if os.entries[i] != nil && seq <= m.Cum {
			os.entries[i] = nil
			os.live--
		}
	}
	for _, seq := range m.Have {
		if seq >= os.base {
			if i := int(seq - os.base); i < len(os.entries) && os.entries[i] != nil {
				os.entries[i] = nil
				os.live--
			}
		}
	}
	os.trim()
	// Retransmit what the receiver is provably missing: buffered, not in
	// the digest, and not (re)sent within the guard window — a digest can
	// never account for copies still in flight when it was emitted.
	now := l.ctx.Now()
	burst := 0
	for i := range os.entries {
		if burst >= l.cfg.Burst {
			break
		}
		e := os.entries[i]
		if e == nil || now.Sub(e.lastSent) < l.cfg.Interval {
			continue
		}
		seq := os.base + uint64(i)
		e.lastSent = now
		l.retransmitted.Inc()
		l.ctx.Send(from, stack.Envelope{Proto: stack.ProtoLink, Msg: SeqMsg{Seq: seq, Low: os.base, Env: e.env}})
		burst++
	}
	if burst > 0 {
		l.tr.Record(trace.Event{At: now, P: l.ctx.ID(), Kind: trace.KindRetransmit, Peer: from, N: burst})
	}
	if os.live > 0 {
		l.arm()
	}
}

// onProbe answers a sender's probe with the current digest, first taking the
// probe's extent and watermark into account.
func (l *Link) onProbe(from stack.ProcessID, m ProbeMsg) {
	is := l.inFrom(from)
	l.giveUpBelow(is, m.Low)
	// The probe reveals the stream extent; anything between our prefix and
	// Max that we do not have is a (possibly tail-loss) gap the digest
	// reports implicitly via Cum.
	l.sendAck(from, is)
}

// sendAck emits the digest for one incoming stream.
func (l *Link) sendAck(to stack.ProcessID, is *inStream) {
	have := make([]uint64, 0, len(is.have))
	for s := range is.have {
		have = append(have, s)
	}
	sort.Slice(have, func(i, j int) bool { return have[i] < have[j] })
	l.acks.Inc()
	is.ackDirty = false
	l.ctx.Send(to, stack.Envelope{Proto: stack.ProtoLink, Msg: AckMsg{Cum: is.cum, Have: have}})
	if len(is.have) > 0 {
		l.arm() // keep digesting until the gaps are repaired
	}
}

// arm schedules the next anti-entropy tick if one is not already pending.
func (l *Link) arm() {
	if l.timerArmed {
		return
	}
	l.timerArmed = true
	l.cancelTick = l.ctx.SetTimer(l.cfg.Interval, l.tick)
}

// tick runs one anti-entropy round: digest every incoming stream with
// un-acknowledged progress or gaps, probe every outgoing stream with
// unsettled data. Rearms itself only while such state remains, so a
// quiescent link generates no traffic and no events.
func (l *Link) tick() {
	l.timerArmed = false
	pending := false
	// Under dynamic membership, restrict anti-entropy to the node's current
	// group: a retired peer will never answer another probe nor fill another
	// gap, and digesting it forever would keep the timer alive. Repair of
	// still-draining streams is sender-driven (probe → onProbe → ack), which
	// this gate does not touch. Nil group = static full universe, unchanged.
	group := l.node.Group()
	inGroup := func(q stack.ProcessID) bool {
		if group == nil {
			return true
		}
		for _, m := range group {
			if m == q {
				return true
			}
		}
		return false
	}
	n := stack.ProcessID(l.ctx.N())
	for q := stack.ProcessID(1); q <= n; q++ {
		if !inGroup(q) {
			continue
		}
		if is, ok := l.in[q]; ok && (is.ackDirty || len(is.have) > 0) {
			l.sendAck(q, is)
			if len(is.have) > 0 {
				pending = true
			}
		}
	}
	for q := stack.ProcessID(1); q <= n; q++ {
		if !inGroup(q) {
			continue
		}
		if os, ok := l.out[q]; ok && os.live > 0 && os.unanswered < l.cfg.MaxProbes {
			os.unanswered++
			if os.probeAt.IsZero() {
				os.probeAt = l.ctx.Now() // opens a probe→digest RTT exchange
			}
			l.probes.Inc()
			l.ctx.Send(q, stack.Envelope{Proto: stack.ProtoLink, Msg: ProbeMsg{Max: os.next, Low: os.base}})
			pending = true
		}
	}
	if pending {
		l.arm()
	}
}

var (
	_ stack.Message = SeqMsg{}
	_ stack.Message = AckMsg{}
	_ stack.Message = ProbeMsg{}
	_ stack.Sender  = (*Link)(nil)
)
