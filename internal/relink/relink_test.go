package relink

// Unit tests of the reliable-link layer, driven on the discrete-event
// simulator: repair across drop-mode cuts, exactly-once dispatch despite
// retransmission, and the bounded-buffer eviction contract.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"abcast/internal/netmodel"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// tmsg is a trivial application message.
type tmsg struct {
	N int
}

func (tmsg) WireSize() int { return 8 }

// harness is a simulated n-process world with a Link per process and a
// recording handler on stack.ProtoApp.
type harness struct {
	w     *simnet.World
	links []*Link // index 0 unused
	got   [][]int // got[p] = payload numbers dispatched at p, in order
}

func newHarness(t *testing.T, n int, cfg Config, seed int64) *harness {
	t.Helper()
	h := &harness{
		w:     simnet.NewWorld(n, netmodel.Setup1(), seed),
		links: make([]*Link, n+1),
		got:   make([][]int, n+1),
	}
	for i := 1; i <= n; i++ {
		i := i
		node := h.w.Node(stack.ProcessID(i))
		h.links[i] = New(node, cfg)
		node.Register(stack.ProtoApp, stack.HandlerFunc(func(_ stack.ProcessID, _ uint64, m stack.Message) {
			h.got[i] = append(h.got[i], m.(tmsg).N)
		}))
	}
	return h
}

// send schedules process p to send tmsg{n} to q at virtual instant d.
func (h *harness) send(p, q stack.ProcessID, d time.Duration, n int) {
	h.w.After(p, d, func() {
		h.w.Node(p).Proto(stack.ProtoApp).Send(q, 0, tmsg{N: n})
	})
}

// wants asserts process p dispatched exactly the given payloads (any order,
// each exactly once).
func (h *harness) wants(t *testing.T, p stack.ProcessID, want []int) {
	t.Helper()
	seen := make(map[int]int)
	for _, n := range h.got[p] {
		seen[n]++
	}
	for _, n := range want {
		if seen[n] != 1 {
			t.Fatalf("p%d saw payload %d %d times, want exactly once (got %v)", p, n, seen[n], h.got[p])
		}
		delete(seen, n)
	}
	if len(seen) != 0 {
		t.Fatalf("p%d dispatched unexpected payloads %v", p, seen)
	}
}

// TestRepairAcrossDropCut: messages black-holed by a drop-mode partition are
// retransmitted after the heal and dispatched exactly once.
func TestRepairAcrossDropCut(t *testing.T) {
	h := newHarness(t, 2, Config{}, 1)
	var want []int
	// Before, during, and after a 5-105 ms cut.
	for n := 1; n <= 30; n++ {
		h.send(1, 2, time.Duration(n)*4*time.Millisecond, n)
		want = append(want, n)
	}
	h.w.After(1, 5*time.Millisecond, func() {
		h.w.Partition(simnet.PartitionDrop, []stack.ProcessID{2})
	})
	h.w.After(1, 105*time.Millisecond, func() { h.w.Heal() })
	h.w.RunFor(5 * time.Second)
	h.wants(t, 2, want)
	if st := h.links[1].Stats(); st.Retransmitted == 0 {
		t.Fatalf("no retransmissions despite a drop cut: %+v", st)
	}
	if st := h.links[1].Stats(); st.Evicted != 0 {
		t.Fatalf("evictions with an ample buffer: %+v", st)
	}
}

// TestBufferBoundsAndEviction pins the bounded-buffer contract: with
// BufferCap = 8, a burst of 100 black-holed sends keeps only the last 8
// replayable; the rest are evicted at the sender and given up by the
// receiver (watermark), so the stream converges instead of NACKing forever
// — and traffic sent after the heal still flows.
func TestBufferBoundsAndEviction(t *testing.T) {
	h := newHarness(t, 2, Config{BufferCap: 8}, 2)
	h.w.After(1, 0, func() {
		h.w.Partition(simnet.PartitionDrop, []stack.ProcessID{2})
	})
	for n := 1; n <= 100; n++ {
		h.send(1, 2, time.Duration(10+n)*time.Millisecond, n)
	}
	h.w.After(1, 500*time.Millisecond, func() { h.w.Heal() })
	// Post-heal traffic must be unaffected by the earlier give-ups.
	for n := 101; n <= 110; n++ {
		h.send(1, 2, time.Duration(900+n)*time.Millisecond, n)
	}
	h.w.RunFor(10 * time.Second)

	// Only the retained window (93..100) is recoverable, plus the post-heal
	// sends.
	want := []int{93, 94, 95, 96, 97, 98, 99, 100}
	for n := 101; n <= 110; n++ {
		want = append(want, n)
	}
	h.wants(t, 2, want)
	// 100 sends into a cap-8 buffer evict at least 92 entries; post-heal
	// traffic may add a few benign evictions of already-delivered entries
	// whose acks lag one anti-entropy tick.
	sst := h.links[1].Stats()
	if sst.Evicted < 92 {
		t.Fatalf("sender evicted %d, want ≥ 92 (100 sends, cap 8): %+v", sst.Evicted, sst)
	}
	// The receiver gives up on exactly the 92 black-holed-and-evicted
	// entries; eviction of delivered entries never produces a give-up.
	rst := h.links[2].Stats()
	if rst.GiveUps != 92 {
		t.Fatalf("receiver gave up on %d, want 92: %+v", rst.GiveUps, rst)
	}
}

// TestDedupDropsRepeatedSeq: a retransmitted copy of an already-dispatched
// sequence number is dropped before reaching the protocol layer, so upper
// layers see each message at most once no matter how often the link repeats
// it.
func TestDedupDropsRepeatedSeq(t *testing.T) {
	h := newHarness(t, 2, Config{}, 3)
	env := stack.Envelope{Proto: stack.ProtoApp, Msg: tmsg{N: 7}}
	wrapped := stack.Envelope{Proto: stack.ProtoLink, Msg: SeqMsg{Seq: 1, Low: 1, Env: env}}
	// Emit the same SeqMsg three times, as a retransmitting sender would.
	for i := 0; i < 3; i++ {
		d := time.Duration(i+1) * time.Millisecond
		h.w.After(1, d, func() { h.w.Proc(1).Send(2, wrapped) })
	}
	h.w.RunFor(time.Second)
	h.wants(t, 2, []int{7})
	if st := h.links[2].Stats(); st.Duplicates != 2 {
		t.Fatalf("duplicates dropped = %d, want 2: %+v", st.Duplicates, st)
	}
}

// TestQuiescence: once every stream is acknowledged, the link generates no
// further control traffic — the simulation goes idle instead of ticking
// forever.
func TestQuiescence(t *testing.T) {
	h := newHarness(t, 3, Config{}, 4)
	for n := 1; n <= 5; n++ {
		for q := stack.ProcessID(2); q <= 3; q++ {
			h.send(1, q, time.Duration(n)*time.Millisecond, n)
		}
	}
	h.w.RunFor(2 * time.Second)
	before := h.links[1].Stats()
	h.w.RunFor(10 * time.Second)
	after := h.links[1].Stats()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("link not quiescent: %+v -> %+v", before, after)
	}
	h.wants(t, 2, []int{1, 2, 3, 4, 5})
	h.wants(t, 3, []int{1, 2, 3, 4, 5})
}

// TestCrashedPeerStopsProbing: a peer that never answers exhausts the
// probe budget, so the link quiesces instead of probing a dead process
// forever.
func TestCrashedPeerStopsProbing(t *testing.T) {
	h := newHarness(t, 2, Config{MaxProbes: 5}, 7)
	h.w.After(1, time.Millisecond, func() { h.w.Crash(2, simnet.DropInFlight) })
	for n := 1; n <= 3; n++ {
		h.send(1, 2, time.Duration(5+n)*time.Millisecond, n)
	}
	h.w.RunFor(5 * time.Second)
	st := h.links[1].Stats()
	if st.Probes != 5 {
		t.Fatalf("probed a dead peer %d times, want exactly the budget of 5: %+v", st.Probes, st)
	}
	before := st
	h.w.RunFor(10 * time.Second)
	if after := h.links[1].Stats(); !reflect.DeepEqual(after, before) {
		t.Fatalf("link not quiescent with a dead peer: %+v -> %+v", before, after)
	}
}

// TestHeartbeatsBypass: ProtoFD traffic is not sequenced or buffered.
func TestHeartbeatsBypass(t *testing.T) {
	h := newHarness(t, 2, Config{}, 5)
	h.w.After(1, time.Millisecond, func() {
		h.w.Node(1).Proto(stack.ProtoFD).Send(2, 0, tmsg{N: 42})
	})
	h.w.RunFor(time.Second)
	if st := h.links[1].Stats(); st.Sequenced != 0 {
		t.Fatalf("heartbeat was sequenced: %+v", st)
	}
}

// TestStreamsAreIndependent: loss on one directed stream does not disturb
// another (sequence numbers are per peer pair).
func TestStreamsAreIndependent(t *testing.T) {
	h := newHarness(t, 3, Config{}, 6)
	var want2, want3 []int
	for n := 1; n <= 20; n++ {
		h.send(1, 2, time.Duration(n)*3*time.Millisecond, n)
		h.send(1, 3, time.Duration(n)*3*time.Millisecond, 100+n)
		want2 = append(want2, n)
		want3 = append(want3, 100+n)
	}
	// Only p3 is cut off.
	h.w.After(1, 10*time.Millisecond, func() {
		h.w.Partition(simnet.PartitionDrop, []stack.ProcessID{3})
	})
	h.w.After(1, 200*time.Millisecond, func() { h.w.Heal() })
	h.w.RunFor(5 * time.Second)
	h.wants(t, 2, want2)
	h.wants(t, 3, want3)
	for n := range h.got[2] {
		if h.got[2][n] != n+1 {
			t.Fatalf("p2 (uncut stream) saw out-of-order dispatch: %v", h.got[2])
		}
	}
	fmtOK := fmt.Sprintf("%d/%d", len(h.got[2]), len(h.got[3]))
	if fmtOK != "20/20" {
		t.Fatalf("dispatch counts %s, want 20/20", fmtOK)
	}
}

// TestSetIntervalTakesEffectNextTick: retargeting the anti-entropy cadence
// re-arms a pending tick, so the very next tick (and all control traffic
// depending on it) runs at the new cadence instead of finishing one more
// old-cadence period first — the actuator contract the adaptive control
// plane relies on.
func TestSetIntervalTakesEffectNextTick(t *testing.T) {
	// A black-holed send leaves unacknowledged data, so the sender probes
	// on every tick; probe counts measure the cadence.
	h := newHarness(t, 2, Config{Interval: time.Second}, 5)
	h.w.After(1, 0, func() {
		h.w.Partition(simnet.PartitionDrop, []stack.ProcessID{2})
	})
	h.send(1, 2, time.Millisecond, 1)
	// Let the slow cadence tick twice, then retarget to 10 ms.
	h.w.RunFor(2500 * time.Millisecond)
	slow := h.links[1].Stats().Probes
	if slow != 2 {
		t.Fatalf("expected 2 probes at the 1 s cadence, got %d", slow)
	}
	h.w.After(1, 0, func() { h.links[1].SetInterval(10 * time.Millisecond) })
	// At the old cadence the pending tick would fire at t=3 s; at the new
	// one, ~10 ms after the retarget. 200 ms is ~20 new-cadence ticks and
	// zero old-cadence ones.
	h.w.RunFor(200 * time.Millisecond)
	fast := h.links[1].Stats().Probes
	if fast < slow+10 {
		t.Fatalf("cadence change not effective: %d probes before, %d after", slow, fast)
	}
	if got := h.links[1].Interval(); got != 10*time.Millisecond {
		t.Fatalf("Interval() = %v after SetInterval", got)
	}
}

// TestRTTEstimate: a probe answered by a digest yields a smoothed per-peer
// round-trip estimate, exported through Stats().RTTs and MaxRTT, in the
// ballpark of the link's actual round trip.
func TestRTTEstimate(t *testing.T) {
	h := newHarness(t, 3, Config{Interval: 20 * time.Millisecond}, 6)
	// A steady stream keeps unacknowledged data present at most ticks, so
	// the sender probes and the receiver's digests close the exchanges —
	// the healthy-run case, where the estimate should sit near the real
	// round trip rather than a loss-inflated one.
	for n := 1; n <= 200; n++ {
		h.send(1, 2, time.Duration(n)*5*time.Millisecond, n)
	}
	h.w.RunFor(2 * time.Second)
	st := h.links[1].Stats()
	rtt, ok := st.RTTs[2]
	if !ok {
		t.Fatalf("no RTT estimate for the probed peer: %+v", st)
	}
	// Setup 1 links are ~100 µs one way plus CPU costs; an estimate in
	// (0, 5 ms] says real probe→digest round trips were measured (an
	// unsolicited digest can close an exchange early, but never below the
	// wire time).
	if rtt <= 0 || rtt > 5*time.Millisecond {
		t.Fatalf("implausible RTT estimate %v", rtt)
	}
	if got := h.links[1].MaxRTT(); got < rtt {
		t.Fatalf("MaxRTT() = %v below the measured per-peer estimate %v", got, rtt)
	}
	// The unprobed reverse direction has no estimate.
	if _, ok := h.links[3].Stats().RTTs[1]; ok {
		t.Fatalf("RTT estimate on a stream that never probed")
	}
}
