// Package indirect exposes the paper's *indirect consensus* algorithms
// under their paper-facing names and specifications.
//
// Indirect consensus (Section 2.3) is consensus whose proposals are pairs
// (v, rcv): v a set of message identifiers, rcv a predicate true only when
// the proposing process holds msgs(v). On top of the usual Termination,
// Uniform integrity, Uniform agreement and Uniform validity, it guarantees
//
//	No loss: if a process decides v at time t, then one correct process
//	has received msgs(v) at time t.
//
// The paper shows No loss holds iff every v-valent configuration (any
// future decision can only be v) is also v-stable (f+1 processes hold
// msgs(v)).
//
// Two algorithms are provided, both built on the shared round machinery of
// package consensus:
//
//   - NewCT — Algorithm 2, the adapted Chandra–Toueg ◇S algorithm.
//     Resilience f < n/2, unchanged from the original.
//   - NewMR — Algorithm 3, the adapted Mostéfaoui–Raynal ◇S algorithm.
//     Resilience f < n/3, *reduced* from the original's f < n/2: its
//     Phase 2 quorum grows to ⌈(2n+1)/3⌉ so that any two quorums intersect
//     in at least n−2f ≥ f+1 processes (Figure 2).
package indirect

import (
	"abcast/internal/consensus"
	"abcast/internal/fd"
	"abcast/internal/stack"
)

// Service is an indirect-consensus service; see consensus.Service.
type Service = consensus.Service

// NewCT wires the Chandra–Toueg-based indirect consensus algorithm
// (Algorithm 2) into the node. rcv is the received-messages predicate
// supplied by the atomic broadcast layer; decide is the per-instance
// decision upcall.
func NewCT(node *stack.Node, det fd.Detector, rcv consensus.Rcv, decide consensus.DecideFn) (*Service, error) {
	return consensus.NewService(node, consensus.Config{
		Algo:     consensus.CT,
		Indirect: true,
		Rcv:      rcv,
		Detector: det,
		Decide:   decide,
	})
}

// NewMR wires the Mostéfaoui–Raynal-based indirect consensus algorithm
// (Algorithm 3) into the node. Note the reduced resilience: f < n/3.
func NewMR(node *stack.Node, det fd.Detector, rcv consensus.Rcv, decide consensus.DecideFn) (*Service, error) {
	return consensus.NewService(node, consensus.Config{
		Algo:     consensus.MR,
		Indirect: true,
		Rcv:      rcv,
		Detector: det,
		Decide:   decide,
	})
}

// QuorumIntersection returns the guaranteed overlap of any two sets of
// (n-f) processes out of n: n - 2f. Figure 2 of the paper illustrates this
// for n=7, f=2 (overlap 3). The indirect MR algorithm is safe when this
// overlap reaches f+1, i.e. when f < n/3.
func QuorumIntersection(n, f int) int { return n - 2*f }

// MRSafe reports whether the indirect MR algorithm's resilience condition
// holds: every pair of Phase 2 quorums must intersect in at least f+1
// processes.
func MRSafe(n, f int) bool { return QuorumIntersection(n, f) >= f+1 }
