package indirect

import (
	"testing"
	"testing/quick"

	"abcast/internal/consensus"
)

// TestQuorumIntersection reproduces Figure 2's arithmetic: with quorums of
// size n-f, two quorums share at least n-2f processes, and the indirect MR
// algorithm is safe exactly when that overlap is at least f+1, i.e. f < n/3.
func TestQuorumIntersection(t *testing.T) {
	// The worked example of Figure 2: n=7, f=2 → quorums of 5 intersect
	// in at least 3 = f+1 processes.
	if got := QuorumIntersection(7, 2); got != 3 {
		t.Fatalf("QuorumIntersection(7,2) = %d, want 3", got)
	}
	if !MRSafe(7, 2) {
		t.Fatal("MRSafe(7,2) = false, want true")
	}
	// One more failure and the overlap can no longer guarantee a correct
	// holder of msgs(v).
	if MRSafe(7, 3) {
		t.Fatal("MRSafe(7,3) = true, want false")
	}

	for n := 1; n <= 60; n++ {
		for f := 0; f < n; f++ {
			want := 3*f < n // f < n/3
			if got := MRSafe(n, f); got != want {
				t.Errorf("MRSafe(%d,%d) = %v, want %v", n, f, got, want)
			}
		}
	}
}

// TestResilienceFormulasAgree cross-checks the package's quorum algebra
// against consensus.MaxFaulty: the largest f with MRSafe(n, f) must equal
// the stated resilience of the indirect MR algorithm for every n.
func TestResilienceFormulasAgree(t *testing.T) {
	for n := 1; n <= 50; n++ {
		maxSafe := -1
		for f := 0; f < n; f++ {
			if MRSafe(n, f) {
				maxSafe = f
			}
		}
		if want := consensus.MaxFaulty(consensus.MR, true, n); maxSafe != want {
			t.Errorf("n=%d: quorum algebra tolerates f=%d, MaxFaulty says %d", n, maxSafe, want)
		}
	}
}

// TestQuorumIntersectionExhaustive verifies, by direct counting rather than
// algebra, that n-2f is the tight lower bound of the overlap of two
// (n-f)-subsets: |A∩B| = |A|+|B|-|A∪B| ≥ 2(n-f)-n.
func TestQuorumIntersectionExhaustive(t *testing.T) {
	check := func(n8, f8 uint8) bool {
		n := int(n8%20) + 1
		f := int(f8) % n
		q := n - f
		// Worst case: A = first q processes, B = last q processes.
		overlap := 2*q - n
		if overlap < 0 {
			overlap = 0
		}
		min := QuorumIntersection(n, f)
		if min < 0 {
			min = 0
		}
		return overlap == min
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
