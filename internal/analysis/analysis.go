// Package analysis implements abcheck, a small static-analysis suite that
// proves this repository's determinism and event-loop discipline at compile
// time.
//
// The simulator's headline property — a seeded run is bit-for-bit
// reproducible, which is what lets BENCH_<rev>.json trajectories be pinned
// across revisions — is easy to break silently: Go's map iteration order is
// randomized per run, wall-clock reads leak host time into virtual
// schedules, and state mutated off the event loop races the deterministic
// dispatch order. Each failure class has already occurred or nearly
// occurred in this repository's history (the PR-4 failure-detector bug
// notified suspicion subscribers in map order). The three analyzers here
// turn those postmortems into compile-time rules:
//
//   - maporder: in determinism-critical packages, a `for … range` over a
//     map must not perform an order-sensitive effect (send a message,
//     invoke a callback, schedule a timer, or build a slice that is never
//     sorted afterwards). The collect-keys-then-sort idiom is recognized
//     as clean.
//   - walltime: simulation-path packages must not read the wall clock
//     (time.Now, time.Since, time.After, …) or the global math/rand
//     source; only the virtual clock (stack.Context.Now) and the per-proc
//     seeded *rand.Rand are legal.
//   - eventloop: types annotated //abcheck:eventloop have their field
//     writes checked — mutation is only legal in functions reachable from
//     the //abcheck:entry dispatch set, and never inside a `go` statement.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) so the analyzers read idiomatically and
// could be ported to the upstream framework mechanically. It is built on
// the standard library alone (go/ast, go/types, go/build) because this
// repository carries no module dependencies; see load.go for the
// source-level package loader that replaces go/packages.
//
// Escape hatch: a finding that is a deliberate, justified exception is
// suppressed with
//
//	//abcheck:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason string is
// mandatory; a bare ignore is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //abcheck:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// All is the abcheck analyzer suite, in reporting order.
var All = []*Analyzer{MapOrder, WallTime, EventLoop}

// byName maps analyzer names to analyzers, for ignore-directive
// validation.
func byName() map[string]*Analyzer {
	m := make(map[string]*Analyzer, len(All))
	for _, a := range All {
		m[a.Name] = a
	}
	return m
}

// A Pass provides one analyzer with the typed syntax of one package, and
// collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the import path the package was loaded under. Analyzers
	// use it for package classification (sim-path vs wall-clock); it is
	// kept separate from Pkg.Path() so testdata packages can exercise
	// classification rules.
	Path string

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, bound to a source position.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the canonical file:line:col form used
// by go vet.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// RunPackage applies the given analyzers to a loaded package, filters the
// results through //abcheck:ignore directives, and returns the surviving
// diagnostics sorted by position. Malformed directives (missing reason,
// unknown analyzer) are reported as diagnostics of the pseudo-analyzer
// "abcheck".
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ig := collectIgnores(pkg.Fset, pkg.Files, byName())
	diags := append([]Diagnostic(nil), ig.malformed...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Path:      pkg.Path,
		}
		pass.report = func(d Diagnostic) {
			if ig.suppresses(a.Name, d.Pos) {
				return
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
