package analysis

import (
	"go/ast"
	"go/types"
)

// WallTime forbids wall-clock reads and the global math/rand source in
// simulation-path packages.
//
// Simulation-path code runs under the virtual clock: the only legal time
// source is the runtime context (stack.Context.Now, sim.Engine.Now) and
// the only legal randomness is the per-process seeded *rand.Rand
// (stack.Context.Rand, simnet.Proc.Rand, sim.Engine.Rand). A time.Now or
// a global rand.Intn leaks host state into the event schedule and
// silently breaks seeded reproducibility — the property the whole pinned
// benchmark trajectory rests on.
//
// Constructing explicit sources (rand.New, rand.NewSource) and using pure
// types and conversions (time.Time, time.Duration, time.Unix) is legal;
// only the functions that consult the host clock or the shared global
// source are flagged. Packages that face real wall clocks — the live TCP
// runtime, its stats, the public API's caller-side timeouts, commands and
// examples — are allowlisted (see packages.go).
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock reads and global math/rand in simulation-path packages",
	Run:  runWallTime,
}

// wallClockFuncs are the package time functions that read the host clock
// or schedule on it.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "Sleep": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

// globalRandFuncs are the math/rand and math/rand/v2 package-level
// functions backed by the shared global source. Explicit-source
// constructors (New, NewSource, NewPCG, NewChaCha8, NewZipf) are legal.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true,
}

func runWallTime(pass *Pass) error {
	if !wallTimeChecked(pass.Path) {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pn.Imported().Path() {
			case "time":
				if wallClockFuncs[name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock in a simulation-path package: use the runtime context's virtual clock (stack.Context.Now / SetTimer) instead",
						name)
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[name] {
					pass.Reportf(sel.Pos(),
						"rand.%s uses the global math/rand source in a simulation-path package: use the per-process seeded source (stack.Context.Rand / simnet.Proc.Rand) instead",
						name)
				}
			}
			return true
		})
	}
	return nil
}
