package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive. Grammar:
//
//	//abcheck:ignore <analyzer> <reason...>
//
// The directive suppresses diagnostics of the named analyzer on the line
// it appears on and on the line directly below it (so it works both as an
// end-of-line comment and as a comment above the flagged statement). The
// reason is mandatory and free-form; a directive without one, or naming an
// unknown analyzer, is itself reported.
const ignorePrefix = "abcheck:ignore"

// directiveBody extracts the text after "abcheck:ignore" from a comment,
// accepting both the line form (//abcheck:ignore …) and the block form
// (/*abcheck:ignore …*/, useful when the line needs a second comment).
func directiveBody(text string) (string, bool) {
	switch {
	case strings.HasPrefix(text, "//"):
		text = text[2:]
	case strings.HasPrefix(text, "/*"):
		text = strings.TrimSuffix(text[2:], "*/")
	}
	rest, ok := strings.CutPrefix(text, ignorePrefix)
	if !ok {
		return "", false
	}
	return rest, true
}

// ignoreSet indexes the suppression directives of one package.
type ignoreSet struct {
	// byKey maps "filename:line:analyzer" to true for every (line,
	// analyzer) pair a directive covers.
	byKey     map[string]bool
	malformed []Diagnostic
}

func ignoreKey(file string, line int, analyzer string) string {
	return fmt.Sprintf("%s:%d:%s", file, line, analyzer)
}

// collectIgnores scans every comment of every file for directives.
func collectIgnores(fset *token.FileSet, files []*ast.File, known map[string]*Analyzer) *ignoreSet {
	ig := &ignoreSet{byKey: make(map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := directiveBody(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := body
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					ig.malformed = append(ig.malformed, Diagnostic{
						Analyzer: "abcheck",
						Pos:      pos,
						Message:  "abcheck:ignore directive must name an analyzer and give a reason",
					})
					continue
				}
				name := fields[0]
				if _, ok := known[name]; !ok {
					ig.malformed = append(ig.malformed, Diagnostic{
						Analyzer: "abcheck",
						Pos:      pos,
						Message:  "abcheck:ignore names unknown analyzer " + name,
					})
					continue
				}
				if len(fields) < 2 {
					ig.malformed = append(ig.malformed, Diagnostic{
						Analyzer: "abcheck",
						Pos:      pos,
						Message:  "abcheck:ignore " + name + " requires a reason string",
					})
					continue
				}
				ig.byKey[ignoreKey(pos.Filename, pos.Line, name)] = true
				ig.byKey[ignoreKey(pos.Filename, pos.Line+1, name)] = true
			}
		}
	}
	return ig
}

// suppresses reports whether a diagnostic of the named analyzer at pos is
// covered by a directive.
func (ig *ignoreSet) suppresses(analyzer string, pos token.Position) bool {
	return ig.byKey[ignoreKey(pos.Filename, pos.Line, analyzer)]
}
