package analysis

import "strings"

// Package classification. The rules are keyed on import paths so the
// analysistest golden packages (loaded under synthetic paths such as
// "maporder" or "abcast/internal/tcpnet") exercise exactly the same
// decisions the real tree does.

// modulePrefix is the import-path prefix of this repository's packages.
const modulePrefix = "abcast"

// mapOrderCritical lists the determinism-critical packages in which a map
// range must not perform an order-sensitive effect. These are the packages
// on the simulated execution path whose event order feeds the pinned
// benchmark trajectory.
var mapOrderCritical = map[string]bool{
	"abcast/internal/sim":       true,
	"abcast/internal/simnet":    true,
	"abcast/internal/core":      true,
	"abcast/internal/consensus": true,
	"abcast/internal/relink":    true,
	"abcast/internal/rbcast":    true,
	"abcast/internal/fd":        true,
	"abcast/internal/adapt":     true,
	"abcast/internal/msg":       true,
	"abcast/internal/stack":     true,
	"abcast/internal/bench":     true,
	"abcast/internal/persist":   true,
}

// simPath lists the packages that run (also) under the virtual clock: all
// of mapOrderCritical plus the pure-model packages they pull in. These
// must not read the wall clock or the global math/rand source.
var simPath = map[string]bool{
	"abcast/internal/netmodel": true,
	"abcast/internal/wire":     true,
	"abcast/internal/indirect": true,
}

func init() {
	for p := range mapOrderCritical {
		simPath[p] = true
	}
}

// wallClockAllowed lists the packages that legitimately face the host
// clock: the live TCP runtime, its statistics, the public Cluster API
// (caller-side timeouts), and every command and example binary.
func wallClockAllowed(path string) bool {
	switch path {
	case modulePrefix, "abcast/internal/tcpnet", "abcast/internal/live", "abcast/internal/stats":
		return true
	}
	return strings.HasPrefix(path, "abcast/cmd/") ||
		strings.HasPrefix(path, "abcast/examples/")
}

// inModule reports whether path belongs to this repository's module. The
// analysistest packages are loaded under paths outside the module so they
// default to "checked" for both classification-driven analyzers unless
// they deliberately mirror an allowlisted real path.
func inModule(path string) bool {
	return path == modulePrefix || strings.HasPrefix(path, modulePrefix+"/")
}

// mapOrderChecked reports whether maporder applies to the package.
func mapOrderChecked(path string) bool {
	if !inModule(path) {
		return true // testdata golden packages
	}
	return mapOrderCritical[path]
}

// wallTimeChecked reports whether walltime applies to the package.
func wallTimeChecked(path string) bool {
	if !inModule(path) {
		return true // testdata golden packages
	}
	if wallClockAllowed(path) {
		return false
	}
	return simPath[path]
}
