package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// EventLoop checks that the state of event-loop-owned types is only
// mutated from event-loop dispatch.
//
// The repository's concurrency discipline is "all state transitions
// happen inside one event-loop callback": every handler, timer callback,
// and cross-package actuator runs on its process's event loop (the
// simulator's single thread, or the live runtime's per-process mailbox
// goroutine), so protocol state needs no locks — and, in simulation, is
// mutated in a deterministic order. This analyzer is the static shadow of
// that rule:
//
//   - a type annotated //abcheck:eventloop (core.Engine,
//     consensus.Service, relink.Link) has its field writes checked;
//   - writes are legal only inside functions reachable from the
//     //abcheck:entry dispatch set — the constructors plus the
//     loop-invoked surface (message handlers, timer callbacks, and the
//     actuator methods other packages call on-loop);
//   - reachability follows any reference to a package function or method
//     (a direct call, or registering a method as a handler/timer
//     callback), except references inside a `go` statement — code spawned
//     off the loop is never a legal mutation site, and writes inside a
//     `go` statement body are flagged unconditionally.
//
// Limitation: calls that dispatch through an interface are not resolved,
// so a mutation reached only that way needs its own //abcheck:entry.
var EventLoop = &Analyzer{
	Name: "eventloop",
	Doc:  "restrict field writes of //abcheck:eventloop types to functions reachable from //abcheck:entry",
	Run:  runEventLoop,
}

const (
	eventloopDirective = "//abcheck:eventloop"
	entryDirective     = "//abcheck:entry"
)

// hasDirective reports whether any line of the doc comment is the given
// directive (optionally followed by explanatory text).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

func runEventLoop(pass *Pass) error {
	info := pass.TypesInfo

	// Pass 1: annotated types and the package function universe.
	annotated := make(map[*types.TypeName]bool)
	decls := make(map[*types.Func]*ast.FuncDecl)
	var entries []*types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !hasDirective(ts.Doc, eventloopDirective) && !hasDirective(decl.Doc, eventloopDirective) {
						continue
					}
					if tn, ok := info.Defs[ts.Name].(*types.TypeName); ok {
						annotated[tn] = true
					}
				}
			case *ast.FuncDecl:
				fn, ok := info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				decls[fn] = decl
				if hasDirective(decl.Doc, entryDirective) {
					entries = append(entries, fn)
				}
			}
		}
	}
	if len(annotated) == 0 {
		return nil
	}

	// Pass 2: reachability from the entry set. An edge is any reference
	// to a package function outside a `go` statement: calling it, or
	// registering it as a handler / timer callback, both put it in the
	// event loop's dispatch set.
	reachable := make(map[*types.Func]bool)
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if reachable[fn] {
			return
		}
		reachable[fn] = true
		decl := decls[fn]
		if decl == nil || decl.Body == nil {
			return
		}
		walkOutsideGo(decl.Body, func(n ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok {
				return
			}
			if ref, ok := info.Uses[id].(*types.Func); ok {
				if _, local := decls[ref]; local {
					visit(ref)
				}
			}
		})
	}
	for _, fn := range entries {
		visit(fn)
	}

	// Pass 3: flag writes.
	for fn, decl := range decls {
		if decl.Body == nil {
			continue
		}
		fnReachable := reachable[fn]
		walkWrites(info, decl.Body, func(write ast.Node, lhs ast.Expr, inGo bool) {
			tn, field := annotatedFieldWrite(info, annotated, lhs)
			if tn == nil {
				return
			}
			switch {
			case inGo:
				pass.Reportf(write.Pos(),
					"write to %s.%s inside a go statement: %s state must only be mutated on its event loop",
					tn.Name(), field, tn.Name())
			case !fnReachable:
				pass.Reportf(write.Pos(),
					"write to %s.%s in %s, which is not reachable from any //abcheck:entry function: annotate the dispatch entry point or move the mutation onto the event loop",
					tn.Name(), field, fn.Name())
			}
		})
	}
	return nil
}

// walkOutsideGo walks the subtree, skipping everything under a GoStmt.
func walkOutsideGo(root ast.Node, f func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

// walkWrites visits every assignment and inc/dec statement in the
// subtree, reporting for each LHS whether it sits inside a go statement.
func walkWrites(info *types.Info, root ast.Node, f func(write ast.Node, lhs ast.Expr, inGo bool)) {
	var walk func(n ast.Node, inGo bool)
	walk = func(n ast.Node, inGo bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				walk(m.Call, true)
				return false
			case *ast.AssignStmt:
				for _, lhs := range m.Lhs {
					f(m, lhs, inGo)
				}
			case *ast.IncDecStmt:
				f(m, m.X, inGo)
			}
			return true
		})
	}
	walk(root, false)
}

// annotatedFieldWrite reports the annotated type and field name if the
// assignment target is (or indexes/dereferences into) a field of an
// annotated type, walking selector chains so nested targets like
// `l.stats.Sequenced++` and `s.insts[k] = v` are attributed to the
// outermost annotated owner.
func annotatedFieldWrite(info *types.Info, annotated map[*types.TypeName]bool, lhs ast.Expr) (*types.TypeName, string) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			// *p = v: a write through a pointer; if it points at an
			// annotated type, it rewrites the whole value.
			if tn := annotatedNamed(info.TypeOf(e.X), annotated); tn != nil {
				return tn, "(*" + tn.Name() + ")"
			}
			lhs = e.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
				if tn := annotatedNamed(sel.Recv(), annotated); tn != nil {
					return tn, e.Sel.Name
				}
			}
			lhs = e.X
		default:
			return nil, ""
		}
	}
}

// annotatedNamed resolves t (through pointers) to an annotated named
// type, if it is one.
func annotatedNamed(t types.Type, annotated map[*types.TypeName]bool) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && annotated[n.Obj()] {
		return n.Obj()
	}
	return nil
}
