// Package analysistest runs an analyzer over a golden package under
// testdata/src and checks its diagnostics against // want comments, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// A want comment sits on the line the diagnostic is expected on and
// carries one quoted regexp per expected diagnostic:
//
//	fn(v) // want `calls function value fn`
//	x = 1 // want "first" "second"
//
// Every diagnostic must be matched by exactly one expectation and vice
// versa; mismatches in either direction fail the test. Diagnostics of the
// pseudo-analyzer "abcheck" (malformed //abcheck:ignore directives) are
// checked the same way, so the escape-hatch grammar is testable.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"abcast/internal/analysis"
)

// Run loads testdata/src/<path> (resolved against the calling test's
// working directory) and applies the analyzer.
func Run(t *testing.T, a *analysis.Analyzer, path string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader("", "")
	loader.ExtraRoots = []string{filepath.Join(wd, "testdata", "src")}
	pkg, err := loader.Load(path)
	if err != nil {
		t.Fatalf("load %s: %v", path, err)
	}
	diags, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, path, err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if !consumeWant(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched %q", key, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// wantArg pulls one double- or backtick-quoted string off the front of s.
var wantArg = regexp.MustCompile("^\\s*(\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// collectWants indexes the // want expectations of every file by
// "filename:line".
func collectWants(t *testing.T, pkg *analysis.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for {
					m := wantArg.FindStringSubmatch(text)
					if m == nil {
						break
					}
					text = text[len(m[0]):]
					q := m[1]
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", key, q, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], &want{re: re})
				}
				if len(wants[key]) == 0 {
					t.Fatalf("%s: want comment with no quoted patterns: %s", key, c.Text)
				}
			}
		}
	}
	return wants
}

// consumeWant marks the first unmatched expectation whose regexp matches
// the message.
func consumeWant(ws []*want, message string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}
