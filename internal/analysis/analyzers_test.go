package analysis_test

import (
	"testing"

	"abcast/internal/analysis"
	"abcast/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "maporder")
}

// TestMapOrderSkipsNonCritical: the live runtime's import path is not in
// the determinism-critical set, so its map-order fanout is clean.
func TestMapOrderSkipsNonCritical(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder, "abcast/internal/live")
}

func TestWallTime(t *testing.T) {
	analysistest.Run(t, analysis.WallTime, "walltime")
}

// TestWallTimeAllowlist: the live TCP transport faces the host clock and
// is allowlisted; its time.Now/time.Sleep draw no findings.
func TestWallTimeAllowlist(t *testing.T) {
	analysistest.Run(t, analysis.WallTime, "abcast/internal/tcpnet")
}

func TestEventLoop(t *testing.T) {
	analysistest.Run(t, analysis.EventLoop, "eventloop")
}

// TestModuleClean runs the full analyzer suite over this repository
// itself: the tree must stay at zero findings (the same gate CI's abcheck
// job enforces, kept here so `go test ./...` alone catches regressions).
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short mode")
	}
	modPath, modDir, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := analysis.NewLoader(modPath, modDir)
	paths, err := loader.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("suspiciously few packages found: %v", paths)
	}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		diags, err := analysis.RunPackage(pkg, analysis.All)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
