package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	// Path is the import path the package was loaded under.
	Path string
	// Dir is the directory its sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages from source and typechecks them recursively,
// resolving imports against the repository module and GOROOT. It fills the
// role of go/packages (which this repository cannot depend on: the module
// is dependency-free) the same way the standard library's internal
// srcimporter does: go/build selects files, go/parser parses them, and
// go/types checks them with imports satisfied by loading the imported
// package's source in turn.
//
// A Loader memoizes every package it checks, so a whole-module run
// typechecks each package (and each stdlib dependency) exactly once.
type Loader struct {
	// ModulePath and ModuleDir describe the enclosing module ("abcast"
	// at the repository root). Imports of ModulePath or below resolve
	// into ModuleDir.
	ModulePath string
	ModuleDir  string
	// ExtraRoots are directories searched, in order and before module
	// and GOROOT resolution, for an <root>/<importpath> package
	// directory. The analysistest harness points one at testdata/src.
	ExtraRoots []string

	Fset *token.FileSet

	ctxt build.Context
	pkgs map[string]*loadEntry
}

type loadEntry struct {
	pkg      *Package
	err      error
	checking bool
}

// NewLoader returns a loader rooted at the given module.
func NewLoader(modulePath, moduleDir string) *Loader {
	ctxt := build.Default
	// File selection must not depend on host cgo availability: analysis
	// always sees the pure-Go file set, like CGO_ENABLED=0 builds.
	ctxt.CgoEnabled = false
	return &Loader{
		ModulePath: modulePath,
		ModuleDir:  moduleDir,
		Fset:       token.NewFileSet(),
		ctxt:       ctxt,
		pkgs:       make(map[string]*loadEntry),
	}
}

// FindModule locates the module containing dir by walking up to the
// nearest go.mod and returns its path and root directory.
func FindModule(dir string) (modulePath, moduleDir string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return strings.TrimSpace(rest), dir, nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load loads and typechecks the package with the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.checking {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	dir, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	return l.loadDir(dir, path)
}

// LoadDir loads the package in dir under the given import path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.checking {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	return l.loadDir(dir, path)
}

// resolve maps an import path to a source directory.
func (l *Loader) resolve(path string) (string, error) {
	for _, root := range l.ExtraRoots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, nil
		}
	}
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.ModuleDir, nil
		}
		if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
			return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
		}
	}
	goroot := l.ctxt.GOROOT
	if dir := filepath.Join(goroot, "src", filepath.FromSlash(path)); hasGoFiles(dir) {
		return dir, nil
	}
	// Standard-library dependencies vendored into GOROOT (e.g.
	// golang.org/x/net/http2 under net/http).
	if dir := filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)); hasGoFiles(dir) {
		return dir, nil
	}
	return "", fmt.Errorf("cannot resolve import %q", path)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir parses and typechecks one package directory.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	entry := &loadEntry{checking: true}
	l.pkgs[path] = entry
	pkg, err := l.check(dir, path)
	entry.pkg, entry.err, entry.checking = pkg, err, false
	return pkg, err
}

func (l *Loader) check(dir, path string) (*Package, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	// Analysis covers non-test files: test files run under the race
	// detector and the host clock legitimately (and the pinned bench
	// trajectory is produced by non-test code only).
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// Full syntax/type fact tables are only needed for packages the
	// analyzers will visit: the module's own packages and any package
	// loaded from an ExtraRoot (testdata). GOROOT dependencies only
	// contribute their type information.
	var info *types.Info
	if l.analyzed(path) {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
	}
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if imp == "unsafe" {
				return types.Unsafe, nil
			}
			p, err := l.Load(imp)
			if err != nil {
				return nil, err
			}
			return p.Types, nil
		}),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("%s: %w", path, firstErr)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// analyzed reports whether a package loaded under path gets full analysis
// fact tables (as opposed to being a types-only dependency).
func (l *Loader) analyzed(path string) bool {
	if l.ModulePath != "" && (path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")) {
		return true
	}
	for _, root := range l.ExtraRoots {
		if hasGoFiles(filepath.Join(root, filepath.FromSlash(path))) {
			return true
		}
	}
	return false
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ModulePackages returns the import paths of every package directory in
// the module, in sorted order, skipping testdata, hidden directories, and
// directories without Go files.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(p) {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
