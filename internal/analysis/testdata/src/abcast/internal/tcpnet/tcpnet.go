// Package tcpnet mirrors the import path of the real live-transport
// package, which is allowlisted for walltime: it faces the host network
// and legitimately reads the wall clock. No diagnostics are expected.
package tcpnet

import "time"

// Deadline computes an absolute I/O deadline from the host clock.
func Deadline(d time.Duration) time.Time {
	return time.Now().Add(d)
}

// Backoff sleeps between reconnect attempts.
func Backoff(attempt int) {
	time.Sleep(time.Duration(attempt) * 10 * time.Millisecond)
}
