// Package live mirrors the import path of the real goroutine runtime,
// which is not in maporder's determinism-critical set: its map walks feed
// per-process mailboxes whose arrival order is nondeterministic anyway.
// No diagnostics are expected.
package live

type mailbox struct {
	deliver map[int]func([]byte)
}

// fanout may iterate in map order: the live runtime makes no ordering
// promise at this layer.
func (m *mailbox) fanout(payload []byte) {
	for _, fn := range m.deliver {
		fn(payload)
	}
}
