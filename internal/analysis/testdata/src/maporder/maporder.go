// Package maporder is the analysistest golden package for the maporder
// analyzer. Its import path is outside the module, so it is treated as
// determinism-critical.
package maporder

import "sort"

type sender struct{}

func (sender) Send(to int, m string)       {}
func (sender) record(to int)               {}
func (s sender) Broadcast(m string)        {}
func (s sender) dispatchAll(m map[int]int) {}

type hub struct {
	subs map[int]func(int)
	seen map[int]bool
	out  sender
}

// notifyBad invokes stored callbacks in map order.
func (h *hub) notifyBad(v int) {
	for _, fn := range h.subs {
		fn(v) // want `calls function value fn inside iteration over a map`
	}
}

// indexBad calls through the map without even naming the value.
func (h *hub) indexBad(v int) {
	for k := range h.subs {
		h.subs[k](v) // want `calls a function value inside iteration over a map`
	}
}

// floodBad emits messages in map order.
func (h *hub) floodBad(m string) {
	for to := range h.seen {
		h.out.Send(to, m) // want `calls Send inside iteration over a map`
	}
}

// keysBad lets a slice escape carrying map order.
func (h *hub) keysBad() []int {
	var ks []int
	for k := range h.seen {
		ks = append(ks, k) // want `appends to ks inside iteration over a map with no later sort`
	}
	return ks
}

// notifyGood is the canonical sorted-keys idiom: the append loop is
// followed by a sort in the same function, and the effectful loop ranges
// over the sorted slice.
func (h *hub) notifyGood(v int) {
	ks := make([]int, 0, len(h.subs))
	for k := range h.subs {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		h.subs[k](v)
	}
}

// sortSliceGood uses sort.Slice, whose closure mentions the slice.
func (h *hub) sortSliceGood() []int {
	var ks []int
	for k := range h.seen {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// maxKey is a pure reduction: no order-sensitive effect.
func (h *hub) maxKey() int {
	best := 0
	for k := range h.seen {
		if k > best {
			best = k
		}
	}
	return best
}

// clear is delete-only.
func (h *hub) clear() {
	for k := range h.seen {
		delete(h.seen, k)
	}
}

// fill builds another map; map inserts are order-insensitive.
func (h *hub) fill(dst map[int]bool) {
	for k := range h.seen {
		dst[k] = true
	}
}

// localSlice appends to a slice born inside the loop body: it cannot
// carry iteration order out of the loop.
func (h *hub) localSlice() {
	for k := range h.seen {
		pair := []int{}
		pair = append(pair, k, k+1)
		h.seen[pair[0]] = true
	}
}

// anyOne is a justified exception: it invokes one arbitrary callback and
// leaves the loop, so iteration order is not observable.
func (h *hub) anyOne(v int) {
	for _, fn := range h.subs {
		//abcheck:ignore maporder only one arbitrary subscriber runs; the loop exits after the first
		fn(v)
		return
	}
}

// badIgnore has an ignore directive with no reason: the directive is
// reported and does not suppress the finding.
func (h *hub) badIgnore(v int) {
	for _, fn := range h.subs {
		fn(v) /*abcheck:ignore maporder*/ // want `abcheck:ignore maporder requires a reason string` `calls function value fn inside iteration over a map`
	}
}

// wrongAnalyzer names an analyzer that does not exist.
func (h *hub) wrongAnalyzer(v int) {
	for _, fn := range h.subs {
		fn(v) /*abcheck:ignore mapsort because typo*/ // want `abcheck:ignore names unknown analyzer mapsort` `calls function value fn inside iteration over a map`
	}
}
