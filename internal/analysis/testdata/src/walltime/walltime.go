// Package walltime is the analysistest golden package for the walltime
// analyzer. Its import path is outside the module, so it is treated as a
// simulation-path package.
package walltime

import (
	"math/rand"
	"time"
)

type proc struct {
	now func() time.Time
	rng *rand.Rand
}

func (p *proc) deadlineBad() time.Time {
	return time.Now().Add(5 * time.Second) // want `time.Now reads the wall clock`
}

func elapsedBad(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock`
}

func (p *proc) waitBad() {
	<-time.After(time.Millisecond) // want `time.After reads the wall clock`
}

func tickBad() <-chan time.Time {
	return time.Tick(time.Second) // want `time.Tick reads the wall clock`
}

func jitterBad() int {
	return rand.Intn(100) // want `rand.Intn uses the global math/rand source`
}

func shuffleBad(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle uses the global math/rand source`
}

// deadlineGood reads the virtual clock the runtime context provides.
func (p *proc) deadlineGood() time.Time {
	return p.now().Add(5 * time.Second)
}

// jitterGood draws from the per-process seeded source.
func (p *proc) jitterGood() int {
	return p.rng.Intn(100)
}

// newProc builds an explicit seeded source: constructors are legal, only
// the global-source package functions are not.
func newProc(seed int64, now func() time.Time) *proc {
	return &proc{now: now, rng: rand.New(rand.NewSource(seed))}
}

// durations and conversions never consult the host clock.
func span() time.Duration {
	return 3*time.Second + time.Duration(7)*time.Millisecond
}

// epoch anchors a virtual instant; time.Unix is a pure conversion.
func epoch(ns int64) time.Time {
	return time.Unix(0, ns)
}

// wallMark is a justified exception.
func wallMark() time.Time {
	return time.Now() //abcheck:ignore walltime host-side log timestamp; never feeds the simulation
}
