// Package eventloop is the analysistest golden package for the eventloop
// analyzer.
package eventloop

// loop is an event-driven state machine whose fields are owned by one
// event loop.
//
//abcheck:eventloop test type
type loop struct {
	n     int
	stats struct{ handled int }
	timer func(func())
}

// newLoop registers handle as a timer callback; the reference makes the
// whole handle/bump chain reachable.
//
//abcheck:entry constructor
func newLoop(timer func(func())) *loop {
	l := &loop{timer: timer}
	l.arm()
	return l
}

func (l *loop) arm() { l.timer(l.handle) }

// handle runs on the loop: reachable via the registration in newLoop.
func (l *loop) handle() {
	l.n++
	l.stats.handled++
	l.bump(2)
}

// bump is a helper called from reachable code.
func (l *loop) bump(d int) { l.n += d }

// Inject is the externally invoked actuator, documented to run on-loop.
//
//abcheck:entry actuator; callers enqueue it onto the owning loop
func (l *loop) Inject(v int) { l.n = v }

// Mutate writes loop state but is reachable from no entry.
func (l *loop) Mutate(v int) {
	l.n = v // want `write to loop.n in Mutate, which is not reachable from any //abcheck:entry function`
}

// spawn hands loop state to another goroutine: never legal, annotated or
// not.
//
//abcheck:entry even an entry may not mutate from a spawned goroutine
func (l *loop) spawn() {
	go func() {
		l.n = 0 // want `write to loop.n inside a go statement`
	}()
}

// Reset is a justified exception.
func (l *loop) Reset() {
	l.n = 0 //abcheck:ignore eventloop test-only helper, runs before the loop starts
}

// free functions are checked too.
func zero(l *loop) {
	l.n = 0 // want `write to loop.n in zero, which is not reachable`
}

// other is an unannotated type: its writes are nobody's business.
type other struct{ n int }

func (o *other) set(v int) { o.n = v }
