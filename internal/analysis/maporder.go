package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for … range` over a map whose body performs an
// order-sensitive effect, in determinism-critical packages.
//
// Go randomizes map iteration order per run, so any effect whose outcome
// depends on visit order breaks seeded reproducibility. Three effect
// classes are recognized:
//
//   - calling a function value (subscriber callbacks, stored cancel
//     functions): the callees run in random order;
//   - calling a send/dispatch/timer method (Send, Broadcast, SetTimer,
//     …): messages enter the network, or events enter the queue, in
//     random order;
//   - appending to a slice declared outside the loop with no subsequent
//     sort.*/slices.* call on it in the same function: the slice escapes
//     carrying random order.
//
// The third rule is what makes the repository's canonical fix — collect
// the keys, sort them, then iterate — automatically clean: the append
// loop is followed by a sort, and the effectful loop ranges over a slice.
// Pure reductions (min/max/count), map-to-map fills, and delete-only
// loops have no order-sensitive effect and are not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive effects inside map iteration in determinism-critical packages",
	Run:  runMapOrder,
}

// orderSensitiveCalls are method/function names whose invocation order is
// observable: they emit messages or schedule events. Lowercase variants
// cover unexported senders (consensus.Service.send and friends).
var orderSensitiveCalls = map[string]bool{
	"Send": true, "send": true,
	"Broadcast": true, "broadcast": true,
	"BroadcastOthers": true, "broadcastOthers": true,
	"Dispatch": true, "dispatch": true,
	"Rebroadcast": true, "rebroadcast": true,
	"SetTimer": true,
}

func runMapOrder(pass *Pass) error {
	if !mapOrderChecked(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncMapOrder(pass, fn)
		}
	}
	return nil
}

func checkFuncMapOrder(pass *Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypesInfo.TypeOf(rs.X); t == nil || !isMap(t) {
			return true
		}
		checkMapRangeBody(pass, fn, rs)
		return true
	})
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody scans one map-range body for order-sensitive effects.
func checkMapRangeBody(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkMapRangeCall(pass, fn, rs, n)
		case *ast.AssignStmt:
			checkMapRangeAppend(pass, fn, rs, n, info)
		}
		return true
	})
}

// checkMapRangeCall flags dynamic function-value calls and calls of
// order-sensitive named methods.
func checkMapRangeCall(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, call *ast.CallExpr) {
	info := pass.TypesInfo
	fun := ast.Unparen(call.Fun)
	// A conversion is not a call.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}
	callee := calleeObject(info, fun)
	switch callee := callee.(type) {
	case *types.Builtin, nil:
		// append/delete/len/… and calls we cannot resolve (a call of a
		// call's result) have no named callee; the dynamic-value check
		// below still applies when the operand is function-typed.
		if callee != nil {
			return
		}
	case *types.Func:
		if orderSensitiveCalls[callee.Name()] {
			pass.Reportf(call.Pos(),
				"calls %s inside iteration over a map: messages/events would be emitted in randomized map order; iterate sorted keys instead",
				callee.Name())
		}
		return
	case *types.Var:
		// Function-typed variable, parameter, or struct field: the
		// callee itself was chosen by map order.
		pass.Reportf(call.Pos(),
			"calls function value %s inside iteration over a map: callbacks would run in randomized map order; iterate sorted keys instead (see internal/fd notify)",
			callee.Name())
		return
	}
	// No named object: an index expression like m[k]() or a call of a
	// returned closure. If the operand is function-typed, it is a
	// dynamic call in map order.
	if t := info.TypeOf(fun); t != nil {
		if _, ok := t.Underlying().(*types.Signature); ok {
			pass.Reportf(call.Pos(),
				"calls a function value inside iteration over a map: callbacks would run in randomized map order; iterate sorted keys instead")
		}
	}
}

// calleeObject resolves the object a call expression's operand denotes,
// if it is a plain identifier or selector.
func calleeObject(info *types.Info, fun ast.Expr) types.Object {
	switch fun := fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// checkMapRangeAppend flags `s = append(s, …)` where s is declared
// outside the loop and no later sort.*/slices.* call in the same function
// mentions s.
func checkMapRangeAppend(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt, info *types.Info) {
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			continue
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		obj := assignTarget(info, as.Lhs[i])
		if obj == nil {
			continue
		}
		// A slice created inside the loop body does not carry iteration
		// order out of the loop.
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			continue
		}
		if sortedAfter(info, fn, rs.End(), obj) {
			continue
		}
		pass.Reportf(as.Pos(),
			"appends to %s inside iteration over a map with no later sort in this function: the slice escapes in randomized map order; sort it (sort.* / slices.*) or range over sorted keys",
			obj.Name())
	}
}

// assignTarget resolves the variable an assignment LHS denotes (plain
// identifier or field selector).
func assignTarget(info *types.Info, lhs ast.Expr) types.Object {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := info.Uses[lhs]; obj != nil {
			return obj
		}
		return info.Defs[lhs]
	case *ast.SelectorExpr:
		return info.Uses[lhs.Sel]
	}
	return nil
}

// sortedAfter reports whether, somewhere after pos in fn, a sort.* or
// slices.* call mentions obj.
func sortedAfter(info *types.Info, fn *ast.FuncDecl, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					mentioned = true
					return false
				}
				return true
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
