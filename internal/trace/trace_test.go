package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"abcast/internal/msg"
)

func sampleEvents() []Event {
	t0 := time.Unix(0, 0)
	id := msg.ID{Sender: 1, Seq: 7}
	return []Event{
		{At: t0, P: 1, Kind: KindABroadcast, ID: id},
		{At: t0.Add(200 * time.Microsecond), P: 2, Kind: KindReceive, ID: id},
		{At: t0.Add(300 * time.Microsecond), P: 2, Kind: KindPropose, K: 1, N: 1},
		{At: t0.Add(900 * time.Microsecond), P: 2, Kind: KindDecide, K: 1, N: 1},
		{At: t0.Add(901 * time.Microsecond), P: 2, Kind: KindOrdered, ID: id, K: 1},
		{At: t0.Add(902 * time.Microsecond), P: 2, Kind: KindADeliver, ID: id, K: 1},
		{At: t0.Add(2 * time.Millisecond), P: 1, Kind: KindFetch, Peer: 3, N: 2},
	}
}

func TestNilRecorderIsFreeAndSilent(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindABroadcast})
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder retained events")
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil recorder JSONL: err=%v len=%d", err, buf.Len())
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(Event{Kind: KindADeliver, P: 3, K: 9})
	})
	if allocs != 0 {
		t.Fatalf("nil recorder Record allocates %v per call", allocs)
	}
}

func TestRecorderOrderAndCopy(t *testing.T) {
	r := New()
	for _, ev := range sampleEvents() {
		r.Record(ev)
	}
	if r.Len() != 7 {
		t.Fatalf("Len = %d, want 7", r.Len())
	}
	evs := r.Events()
	if evs[0].Kind != KindABroadcast || evs[6].Kind != KindFetch {
		t.Fatalf("arrival order not preserved: %v ... %v", evs[0].Kind, evs[6].Kind)
	}
	evs[0].Kind = KindRestart
	if r.Events()[0].Kind != KindABroadcast {
		t.Fatal("Events returned an aliased slice")
	}
}

func TestWriteJSONLShape(t *testing.T) {
	r := New()
	for _, ev := range sampleEvents() {
		r.Record(ev)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 7 {
		t.Fatalf("got %d lines, want 7", len(lines))
	}
	var first struct {
		TNs  int64  `json:"t_ns"`
		P    int    `json:"p"`
		Kind string `json:"kind"`
		ID   string `json:"id"`
		K    uint64 `json:"k"`
		Peer int    `json:"peer"`
		N    int    `json:"n"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if first.TNs != 0 || first.Kind != "abroadcast" || first.ID != "1:7" || first.P != 1 {
		t.Fatalf("unexpected first line: %+v", first)
	}
	var last struct {
		TNs  int64  `json:"t_ns"`
		Kind string `json:"kind"`
		Peer int    `json:"peer"`
		N    int    `json:"n"`
	}
	if err := json.Unmarshal([]byte(lines[6]), &last); err != nil {
		t.Fatal(err)
	}
	if last.TNs != int64(2*time.Millisecond) || last.Kind != "fetch" || last.Peer != 3 || last.N != 2 {
		t.Fatalf("unexpected last line: %+v", last)
	}
}

func TestWriteJSONLByteStable(t *testing.T) {
	var a, b bytes.Buffer
	for _, buf := range []*bytes.Buffer{&a, &b} {
		r := New()
		for _, ev := range sampleEvents() {
			r.Record(ev)
		}
		if err := r.WriteJSONL(buf); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical recordings exported different JSONL bytes")
	}
}

func TestWriteChromeParses(t *testing.T) {
	r := New()
	for _, ev := range sampleEvents() {
		r.Record(ev)
	}
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Tid  int     `json:"tid"`
			Args struct {
				Name string `json:"name"`
				ID   string `json:"id"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	// 2 thread-name metadata events (p1, p2 appear; p3 only as a Peer) + 7.
	if len(doc.TraceEvents) != 9 {
		t.Fatalf("got %d trace events, want 9", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Args.Name != "p1" {
		t.Fatalf("expected p1 thread metadata first, got %+v", doc.TraceEvents[0])
	}
	ev := doc.TraceEvents[2] // first real event
	if ev.Name != "abroadcast" || ev.Ph != "i" || ev.Args.ID != "1:7" {
		t.Fatalf("unexpected first instant event: %+v", ev)
	}
	last := doc.TraceEvents[len(doc.TraceEvents)-1]
	if last.Ts != 2000 {
		t.Fatalf("last ts = %v µs, want 2000", last.Ts)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{
		KindABroadcast, KindReceive, KindPropose, KindDecide, KindOrdered,
		KindADeliver, KindRetransmit, KindFetch, KindRediffuse,
		KindSnapInstall, KindRestart,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate kind string %q", s)
		}
		seen[s] = true
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatalf("unknown kind string: %q", Kind(99).String())
	}
}
