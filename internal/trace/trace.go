// Package trace records deterministic lifecycle spans for atomically
// broadcast messages: abroadcast → first diffusion receipt → consensus
// propose → decide → ordered-queue entry → adeliver, plus the recovery
// events (retransmission, payload fetch, re-diffusion, snapshot install,
// restart rehydration) that repair a run after loss.
//
// Every event is stamped with the recording process's clock via the
// existing stack.Context.Now() — on the simulator that is virtual time, so
// a trace is byte-reproducible under a seed and records nothing the
// abcheck walltime analyzer objects to. The recorder is off by default:
// layers hold a possibly-nil *Recorder and call Record unconditionally;
// the nil receiver returns immediately without allocating, so a disabled
// trace costs one pointer test per hook point on the hot path.
//
// Traces export as JSONL (one event per line, fixed field order, byte-
// stable across identical runs) and as Chrome trace_event JSON, which
// opens directly in chrome://tracing or Perfetto.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"

	"abcast/internal/msg"
	"abcast/internal/stack"
)

// Kind classifies a lifecycle event.
type Kind uint8

// The span taxonomy. The first six kinds are the delivery path of
// Algorithm 1, in causal order; the rest are recovery-path events.
const (
	// KindABroadcast: the message enters the system (Engine.ABroadcast).
	KindABroadcast Kind = iota + 1
	// KindReceive: first receipt of the payload at a process — via
	// diffusion, fetch supply, a message-set decision, or a snapshot
	// chunk. Duplicates are not recorded.
	KindReceive
	// KindPropose: the process proposes a batch to consensus instance K
	// (N = batch size; ID is zero — the batch is the subject).
	KindPropose
	// KindDecide: the process learns instance K's decision (N = ids
	// decided).
	KindDecide
	// KindOrdered: an identifier enters the ordered queue at a process,
	// with K the deciding instance.
	KindOrdered
	// KindADeliver: the identifier is adelivered at the process. Across a
	// restart the suffix above the checkpoint is redelivered, so a
	// (message, process) pair may carry more than one ADeliver event.
	KindADeliver
	// KindRetransmit: the reliable link retransmitted unacknowledged
	// envelopes to Peer (N = envelopes; link-level, so ID is zero).
	KindRetransmit
	// KindFetch: the engine requested N missing payloads from Peer.
	KindFetch
	// KindRediffuse: the process re-R-broadcast a stranded unordered
	// message.
	KindRediffuse
	// KindSnapInstall: a snapshot transfer installed N delivered-prefix
	// entries, advancing the process to serial K.
	KindSnapInstall
	// KindRestart: a restarted incarnation rehydrated from its store
	// (K = checkpoint frontier, N = delivered entries restored).
	KindRestart
)

// String returns the stable identifier used in both export formats.
func (k Kind) String() string {
	switch k {
	case KindABroadcast:
		return "abroadcast"
	case KindReceive:
		return "receive"
	case KindPropose:
		return "propose"
	case KindDecide:
		return "decide"
	case KindOrdered:
		return "ordered"
	case KindADeliver:
		return "adeliver"
	case KindRetransmit:
		return "retransmit"
	case KindFetch:
		return "fetch"
	case KindRediffuse:
		return "rediffuse"
	case KindSnapInstall:
		return "snap-install"
	case KindRestart:
		return "restart"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded lifecycle event. Zero-valued fields are meaningful
// ("no subject message", "no counterpart") and are exported as zeros, so
// the wire shape never depends on which fields a kind happens to use.
type Event struct {
	// At is the recording process's clock (virtual time on the simulator).
	At time.Time
	// P is the process the event happened on.
	P stack.ProcessID
	// Kind classifies the event.
	Kind Kind
	// ID is the subject message, when the event concerns one.
	ID msg.ID
	// K is the consensus instance / ordering serial, when applicable.
	K uint64
	// Peer is the counterpart process (fetch target, retransmission
	// destination, snapshot producer), when applicable.
	Peer stack.ProcessID
	// N is the kind-specific count (batch size, envelopes, entries).
	N int
}

// Recorder accumulates events in arrival order. A nil *Recorder is the
// disabled state: Record returns immediately and allocates nothing, so
// layers wire a possibly-nil recorder through unconditionally.
//
// On the simulator all processes share one event loop, so arrival order —
// and therefore every export — is deterministic under the seed. On the
// live runtime processes are goroutines and the mutex makes recording
// safe; arrival order is then whatever the scheduler produced.
type Recorder struct {
	mu  sync.Mutex
	evs []Event
}

// New returns an enabled recorder.
func New() *Recorder { return &Recorder{} }

// Record appends one event. Safe (and free) on a nil recorder.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.evs = append(r.evs, ev)
	r.mu.Unlock()
}

// Enabled reports whether events are being recorded.
func (r *Recorder) Enabled() bool { return r != nil }

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.evs)
}

// Events returns a copy of the recorded events, in arrival order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.evs))
	copy(out, r.evs)
	return out
}

// base returns the first event's timestamp; exported timestamps are
// relative to it, so a trace is byte-stable regardless of the runtime's
// epoch (the simulator's virtual zero or the live runtime's wall clock).
func base(evs []Event) time.Time {
	if len(evs) == 0 {
		return time.Time{}
	}
	return evs[0].At
}

// WriteJSONL writes one JSON object per event with a fixed field order:
// t_ns (nanoseconds since the trace's first event), p, kind, id, k, peer,
// n. Identical runs produce identical bytes.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	evs := r.Events()
	b := base(evs)
	for _, ev := range evs {
		_, err := fmt.Fprintf(w,
			"{\"t_ns\":%d,\"p\":%d,\"kind\":%q,\"id\":\"%d:%d\",\"k\":%d,\"peer\":%d,\"n\":%d}\n",
			ev.At.Sub(b).Nanoseconds(), ev.P, ev.Kind.String(),
			ev.ID.Sender, ev.ID.Seq, ev.K, ev.Peer, ev.N)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteChrome writes the trace in Chrome trace_event format (the JSON
// object form), one instant event per recorded event with pid 0 and the
// process id as tid, plus thread-name metadata so chrome://tracing and
// Perfetto label each row "p<i>". Timestamps are microseconds since the
// trace's first event.
func (r *Recorder) WriteChrome(w io.Writer) error {
	evs := r.Events()
	b := base(evs)
	procs := map[stack.ProcessID]bool{}
	for _, ev := range evs {
		procs[ev.P] = true
	}
	maxP := stack.ProcessID(0)
	for p := range procs {
		if p > maxP {
			maxP = p
		}
	}
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	// Thread metadata first, in process order (not map order).
	for p := stack.ProcessID(1); p <= maxP; p++ {
		if !procs[p] {
			continue
		}
		if err := emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"p%d\"}}", p, p); err != nil {
			return err
		}
	}
	for _, ev := range evs {
		us := float64(ev.At.Sub(b).Nanoseconds()) / 1e3
		if err := emit(
			"{\"name\":%q,\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"id\":\"%d:%d\",\"k\":%d,\"peer\":%d,\"n\":%d}}",
			ev.Kind.String(), us, ev.P,
			ev.ID.Sender, ev.ID.Seq, ev.K, ev.Peer, ev.N); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
