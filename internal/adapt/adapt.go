// Package adapt is the feedback control plane of the atomic broadcast
// engine: a deterministic controller that turns engine-side observations
// (unordered backlog, delivered throughput, consensus decision latency,
// per-link round-trip estimates) into actuator targets for the layers —
// the consensus pipeline width W, the per-instance identifier batch cap
// MaxBatch, and the relink anti-entropy cadence.
//
// Every one of those knobs started life as a static number the operator had
// to tune per workload and per topology: the pipeline ablation (figure p1)
// and its WAN counterpart (figure g1) show that the best static W differs
// between a 1 ms metro network and the 3-site WAN, and relink's 100 ms
// anti-entropy interval is two orders of magnitude too slow for a LAN and
// marginal for a 250 ms WAN round trip. The controller replaces the
// hand-tuning with feedback:
//
//   - Pipeline width (AIMD on backlog). While the unordered backlog exceeds
//     what the current pipeline can order in one round (Window × MaxBatch)
//     and consensus decisions keep pace (the smoothed propose→decide latency
//     has not blown out against its best observed value), the window grows
//     by one instance per control tick. When a grow step fails to add
//     delivered throughput while the backlog is not draining — the
//     bottleneck is elsewhere, extra instances only add protocol state — the
//     step is reverted and growth pauses for a few ticks. When the backlog
//     drains below one batch, the window decays multiplicatively back toward
//     the serial engine, so a burst leaves no idle protocol state behind.
//
//   - Batch cap. The window is the preferred absorber (it multiplies the
//     ordering ceiling without inflating per-instance work); only when the
//     window is pinned at its maximum and the backlog still exceeds a full
//     pipeline round does the batch cap double, Algorithm-1 style, up to
//     MaxBatchCap. It halves back toward MinBatch once the backlog fits a
//     single batch again, restoring the low-latency configuration.
//
//   - Anti-entropy cadence. The relink layer measures a smoothed round-trip
//     estimate per outgoing stream from ProbeMsg→AckMsg exchanges; the
//     controller requests a cadence of RTTMultiple × the slowest link's
//     estimate, clamped to [MinInterval, MaxInterval]. On a LAN the ticks
//     speed up to repair within milliseconds; across a WAN they back off so
//     probes are not resent while the answering digest is still in flight.
//
// The controller is a pure state machine: Tick consumes one Sample and
// returns the Targets to apply, with no timers, I/O, or randomness of its
// own. The engine (internal/core) owns the sampling cadence and the
// actuators; see core.Config.Adapt for the wiring and docs/ARCHITECTURE.md
// for the signals → controller → actuators map. Determinism matters beyond
// taste: the benchmark trajectory (BENCH_<rev>.json) and the CI determinism
// gate require byte-identical reruns, with adaptation on as much as off.
package adapt

import "time"

// Config parameterizes a Controller. The zero value selects the defaults.
type Config struct {
	// Interval is the control-loop cadence: how often the engine samples
	// its signals and applies the returned targets (default
	// DefaultInterval). Shorter intervals ramp the pipeline faster under a
	// burst at the cost of more (purely local) control work.
	Interval time.Duration
	// MinWindow/MaxWindow clamp the pipeline width the controller may
	// target (defaults 1 and DefaultMaxWindow).
	MinWindow int
	MaxWindow int
	// MinBatch/MaxBatchCap clamp the per-instance identifier batch cap
	// (defaults DefaultMinBatch and DefaultMaxBatchCap). An engine whose
	// static MaxBatch is 0 (unbounded) starts adaptive runs at MinBatch:
	// unbounded batching absorbs any backlog into ever-larger proposals,
	// which hides exactly the signal the window controller steers by.
	MinBatch    int
	MaxBatchCap int
	// Epsilon is the relative delivered-throughput gain below which a
	// window grow step counts as "added nothing" and is reverted (default
	// DefaultEpsilon).
	Epsilon float64
	// LatencyFactor bounds how far the smoothed propose→decide latency may
	// rise above its best observed value before the controller stops
	// growing the window — decisions no longer keep pace, so more
	// concurrent instances would only queue (default DefaultLatencyFactor).
	LatencyFactor float64
	// RTTMultiple scales the slowest link's smoothed round-trip estimate
	// into the anti-entropy cadence target (default DefaultRTTMultiple).
	RTTMultiple float64
	// MinInterval/MaxInterval clamp the anti-entropy cadence target
	// (defaults DefaultMinInterval and DefaultMaxInterval).
	MinInterval time.Duration
	MaxInterval time.Duration
}

// Defaults for the zero Config.
const (
	DefaultInterval      = 25 * time.Millisecond
	DefaultMaxWindow     = 8
	DefaultMinBatch      = 4
	DefaultMaxBatchCap   = 64
	DefaultEpsilon       = 0.05
	DefaultLatencyFactor = 4.0
	DefaultRTTMultiple   = 2.0
	DefaultMinInterval   = 5 * time.Millisecond
	DefaultMaxInterval   = time.Second
	// growHold is how many control ticks window growth pauses after a
	// reverted grow step, damping grow/revert oscillation around the knee.
	growHold = 4
)

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 1
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = DefaultMaxWindow
	}
	if c.MaxWindow < c.MinWindow {
		c.MaxWindow = c.MinWindow
	}
	if c.MinBatch <= 0 {
		c.MinBatch = DefaultMinBatch
	}
	if c.MaxBatchCap <= 0 {
		c.MaxBatchCap = DefaultMaxBatchCap
	}
	if c.MaxBatchCap < c.MinBatch {
		c.MaxBatchCap = c.MinBatch
	}
	if c.Epsilon <= 0 {
		c.Epsilon = DefaultEpsilon
	}
	if c.LatencyFactor <= 0 {
		c.LatencyFactor = DefaultLatencyFactor
	}
	if c.RTTMultiple <= 0 {
		c.RTTMultiple = DefaultRTTMultiple
	}
	if c.MinInterval <= 0 {
		c.MinInterval = DefaultMinInterval
	}
	if c.MaxInterval <= 0 {
		c.MaxInterval = DefaultMaxInterval
	}
	if c.MaxInterval < c.MinInterval {
		c.MaxInterval = c.MinInterval
	}
	return c
}

// Sample is one observation of the engine's signals, taken at a control
// tick. The engine builds it from core.Engine.Observe plus the relink RTT
// estimate; see that method for the exact field semantics.
type Sample struct {
	// Now is the observation instant (virtual time under simulation).
	Now time.Time
	// Backlog is the number of received-but-unordered identifiers not
	// claimed by any in-flight proposal: the work the pipeline has not yet
	// picked up.
	Backlog int
	// Delivered is the cumulative adelivered message count; the controller
	// differentiates it across ticks into the delivered rate.
	Delivered int
	// InFlight is the number of currently outstanding consensus proposals.
	InFlight int
	// Window and MaxBatch are the currently applied actuator values.
	Window   int
	MaxBatch int
	// DecisionLatency is the smoothed propose→decide latency (0 = no
	// decision observed yet).
	DecisionLatency time.Duration
	// LinkRTTMax is the slowest link's smoothed round-trip estimate (0 =
	// unmeasured, or recovery disabled).
	LinkRTTMax time.Duration
}

// Targets is what the controller wants applied: the pipeline width and
// batch cap to retarget (always set), and the anti-entropy cadence (0 =
// leave the cadence alone, e.g. before any RTT has been measured).
type Targets struct {
	Window      int
	MaxBatch    int
	AntiEntropy time.Duration
}

// Controller is the feedback state machine. It is not safe for concurrent
// use; like every protocol layer it lives on one process's event loop.
type Controller struct {
	cfg Config

	last          time.Time
	lastDelivered int
	lastBacklog   int
	lastRate      float64
	prevWindow    int
	minDecLat     time.Duration
	hold          int
}

// NewController builds a controller; zero Config fields take defaults.
func NewController(cfg Config) *Controller {
	return &Controller{cfg: cfg.WithDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Tick consumes one sample and returns the targets to apply. The first
// sample only establishes the baseline; thereafter each tick runs one step
// of the window AIMD, the batch escalation, and the cadence tracking
// described in the package comment.
func (c *Controller) Tick(s Sample) Targets {
	t := Targets{Window: clamp(s.Window, c.cfg.MinWindow, c.cfg.MaxWindow), MaxBatch: clamp(s.MaxBatch, c.cfg.MinBatch, c.cfg.MaxBatchCap)}
	if s.LinkRTTMax > 0 {
		t.AntiEntropy = clampDur(time.Duration(c.cfg.RTTMultiple*float64(s.LinkRTTMax)), c.cfg.MinInterval, c.cfg.MaxInterval)
	}
	if s.DecisionLatency > 0 && (c.minDecLat == 0 || s.DecisionLatency < c.minDecLat) {
		c.minDecLat = s.DecisionLatency
	}
	if c.last.IsZero() || !s.Now.After(c.last) {
		// First sample (or a clock that has not advanced): baseline only.
		c.remember(s, c.lastRate)
		return t
	}
	elapsed := s.Now.Sub(c.last)
	rate := float64(s.Delivered-c.lastDelivered) / elapsed.Seconds()
	if c.hold > 0 {
		c.hold--
	}

	// Window AIMD. "Pace" is the keep-up guard: decisions whose smoothed
	// latency has blown out LatencyFactor× past the best observed mean the
	// consensus layer (or the CPU under it) is saturated, and more
	// concurrent instances would only deepen the queues.
	pace := s.DecisionLatency == 0 || c.minDecLat == 0 ||
		s.DecisionLatency <= time.Duration(c.cfg.LatencyFactor*float64(c.minDecLat))
	grew := c.prevWindow > 0 && s.Window > c.prevWindow
	switch {
	case grew && rate <= c.lastRate*(1+c.cfg.Epsilon) && s.Backlog >= c.lastBacklog:
		// The previous grow step added no delivered throughput and the
		// backlog is not draining: revert it and pause growth.
		t.Window = clamp(s.Window-1, c.cfg.MinWindow, c.cfg.MaxWindow)
		c.hold = growHold
	case s.Backlog > s.Window*t.MaxBatch && s.Window < c.cfg.MaxWindow && pace && c.hold == 0:
		// More than one full pipeline round is queued and decisions keep
		// pace: additive increase.
		t.Window = s.Window + 1
	case s.Backlog <= t.MaxBatch && s.InFlight <= 1 && s.Window > c.cfg.MinWindow:
		// The burst is over (one batch covers the backlog, the pipeline
		// idles): decay multiplicatively back toward serial operation.
		t.Window = s.Window - (s.Window-c.cfg.MinWindow+1)/2
	}

	// Batch escalation: only once the window is exhausted does per-instance
	// work grow, and it shrinks back as soon as the backlog fits one batch.
	switch {
	case t.Window >= c.cfg.MaxWindow && s.Backlog > t.Window*t.MaxBatch && t.MaxBatch < c.cfg.MaxBatchCap:
		t.MaxBatch = clamp(t.MaxBatch*2, c.cfg.MinBatch, c.cfg.MaxBatchCap)
	case s.Backlog <= t.MaxBatch/2 && t.MaxBatch > c.cfg.MinBatch:
		t.MaxBatch = clamp(t.MaxBatch/2, c.cfg.MinBatch, c.cfg.MaxBatchCap)
	}

	c.remember(s, rate)
	return t
}

// remember rolls the per-tick state forward.
func (c *Controller) remember(s Sample, rate float64) {
	c.last = s.Now
	c.lastDelivered = s.Delivered
	c.lastBacklog = s.Backlog
	c.lastRate = rate
	c.prevWindow = s.Window
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// clampDur bounds d to [lo, hi].
func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
