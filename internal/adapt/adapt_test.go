package adapt

// Unit tests of the feedback controller: pure state-machine checks, no
// simulator needed — the controller's whole contract is that Targets are a
// deterministic function of the Sample sequence.

import (
	"testing"
	"time"
)

// at builds the observation instant of tick i at the default cadence.
func at(i int) time.Time {
	return time.Unix(0, 0).Add(time.Duration(i) * DefaultInterval)
}

// TestDefaultsFilled: the zero config defaults every knob, and bounds stay
// ordered.
func TestDefaultsFilled(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Interval != DefaultInterval || c.MinWindow != 1 || c.MaxWindow != DefaultMaxWindow {
		t.Fatalf("window defaults wrong: %+v", c)
	}
	if c.MinBatch != DefaultMinBatch || c.MaxBatchCap != DefaultMaxBatchCap {
		t.Fatalf("batch defaults wrong: %+v", c)
	}
	if c.MinInterval != DefaultMinInterval || c.MaxInterval != DefaultMaxInterval {
		t.Fatalf("cadence defaults wrong: %+v", c)
	}
	c = Config{MinWindow: 6, MaxWindow: 2}.WithDefaults()
	if c.MaxWindow < c.MinWindow {
		t.Fatalf("bounds not reconciled: %+v", c)
	}
}

// TestGrowsUnderBacklog: a backlog beyond one pipeline round with decisions
// keeping pace grows the window by one per tick up to the maximum, and no
// further.
func TestGrowsUnderBacklog(t *testing.T) {
	c := NewController(Config{})
	w, batch := 1, 4
	delivered := 0
	for i := 0; i < 20; i++ {
		tg := c.Tick(Sample{
			Now: at(i), Backlog: 100, Delivered: delivered,
			InFlight: w, Window: w, MaxBatch: batch,
		})
		if tg.Window > w+1 {
			t.Fatalf("tick %d: grew by more than one: %d -> %d", i, w, tg.Window)
		}
		// Apply the targets and keep delivering (throughput rises with W,
		// so grow steps are never judged fruitless).
		w, batch = tg.Window, tg.MaxBatch
		delivered += w * batch
	}
	if w != DefaultMaxWindow {
		t.Fatalf("window did not reach the maximum: %d", w)
	}
}

// TestRevertsFruitlessGrowth: when a grow step adds no delivered throughput
// and the backlog is not draining, the step is reverted and growth pauses.
func TestRevertsFruitlessGrowth(t *testing.T) {
	c := NewController(Config{})
	// Baseline, then a tick that grows 1 -> 2 (delivery at a fixed rate).
	c.Tick(Sample{Now: at(0), Backlog: 100, Delivered: 0, Window: 1, MaxBatch: 4})
	tg := c.Tick(Sample{Now: at(1), Backlog: 100, Delivered: 10, Window: 1, MaxBatch: 4})
	if tg.Window != 2 {
		t.Fatalf("expected growth to W=2, got %d", tg.Window)
	}
	// The grown window delivers the same 10 per tick — no gain — while the
	// backlog keeps rising: revert.
	tg = c.Tick(Sample{Now: at(2), Backlog: 120, Delivered: 20, Window: 2, MaxBatch: 4})
	if tg.Window != 1 {
		t.Fatalf("fruitless growth not reverted: W=%d", tg.Window)
	}
	// And growth holds off for a few ticks despite the standing backlog.
	tg = c.Tick(Sample{Now: at(3), Backlog: 140, Delivered: 30, Window: 1, MaxBatch: 4})
	if tg.Window != 1 {
		t.Fatalf("growth not paused after revert: W=%d", tg.Window)
	}
}

// TestDecaysWhenDrained: once the backlog fits a single batch and the
// pipeline idles, the window decays back toward serial.
func TestDecaysWhenDrained(t *testing.T) {
	c := NewController(Config{})
	c.Tick(Sample{Now: at(0), Backlog: 0, Delivered: 100, Window: 8, MaxBatch: 4})
	w := 8
	for i := 1; w > 1 && i < 10; i++ {
		tg := c.Tick(Sample{Now: at(i), Backlog: 0, Delivered: 100, InFlight: 0, Window: w, MaxBatch: 4})
		if tg.Window >= w {
			t.Fatalf("tick %d: idle window did not decay: %d -> %d", i, w, tg.Window)
		}
		w = tg.Window
	}
	if w != 1 {
		t.Fatalf("idle window never reached serial: W=%d", w)
	}
}

// TestLatencyGuardStopsGrowth: a smoothed decision latency far above its
// best observed value blocks additive increase — decisions are not keeping
// pace, so more instances would only queue.
func TestLatencyGuardStopsGrowth(t *testing.T) {
	c := NewController(Config{})
	base := Sample{Backlog: 100, Window: 2, MaxBatch: 4, DecisionLatency: 10 * time.Millisecond}
	base.Now = at(0)
	c.Tick(base)
	blown := base
	blown.Now = at(1)
	blown.Delivered = 50 // rate fine; only latency objects
	blown.DecisionLatency = 10 * DefaultLatencyFactor * 10 * time.Millisecond
	if tg := c.Tick(blown); tg.Window != 2 {
		t.Fatalf("grew despite blown decision latency: W=%d", tg.Window)
	}
}

// TestBatchEscalatesOnlyAtMaxWindow: the batch cap doubles only once the
// window is pinned at its maximum with the backlog still beyond a full
// round, and halves back once the backlog fits one batch.
func TestBatchEscalatesOnlyAtMaxWindow(t *testing.T) {
	c := NewController(Config{})
	c.Tick(Sample{Now: at(0), Backlog: 1000, Delivered: 0, Window: DefaultMaxWindow, MaxBatch: 4})
	tg := c.Tick(Sample{Now: at(1), Backlog: 1000, Delivered: 100, Window: DefaultMaxWindow, MaxBatch: 4})
	if tg.MaxBatch != 8 {
		t.Fatalf("batch did not escalate at max window: %d", tg.MaxBatch)
	}
	// Below max window the same backlog grows W instead.
	c2 := NewController(Config{})
	c2.Tick(Sample{Now: at(0), Backlog: 1000, Delivered: 0, Window: 2, MaxBatch: 4})
	tg = c2.Tick(Sample{Now: at(1), Backlog: 1000, Delivered: 100, Window: 2, MaxBatch: 4})
	if tg.MaxBatch != 4 || tg.Window != 3 {
		t.Fatalf("batch escalated before the window was exhausted: W=%d batch=%d", tg.Window, tg.MaxBatch)
	}
	// Drained: the batch halves back toward the minimum.
	c3 := NewController(Config{})
	c3.Tick(Sample{Now: at(0), Backlog: 0, Delivered: 0, Window: 1, MaxBatch: 16})
	tg = c3.Tick(Sample{Now: at(1), Backlog: 0, Delivered: 10, Window: 1, MaxBatch: 16})
	if tg.MaxBatch != 8 {
		t.Fatalf("drained batch did not shrink: %d", tg.MaxBatch)
	}
}

// TestAntiEntropyTracksRTT: the cadence target is RTTMultiple × the slowest
// link's estimate, clamped — and absent entirely while no RTT is measured.
func TestAntiEntropyTracksRTT(t *testing.T) {
	c := NewController(Config{})
	if tg := c.Tick(Sample{Now: at(0), Window: 1, MaxBatch: 4}); tg.AntiEntropy != 0 {
		t.Fatalf("cadence target without an RTT estimate: %v", tg.AntiEntropy)
	}
	tg := c.Tick(Sample{Now: at(1), Window: 1, MaxBatch: 4, LinkRTTMax: 100 * time.Millisecond})
	if want := time.Duration(DefaultRTTMultiple * float64(100*time.Millisecond)); tg.AntiEntropy != want {
		t.Fatalf("cadence = %v, want %v", tg.AntiEntropy, want)
	}
	tg = c.Tick(Sample{Now: at(2), Window: 1, MaxBatch: 4, LinkRTTMax: time.Microsecond})
	if tg.AntiEntropy != DefaultMinInterval {
		t.Fatalf("cadence not clamped below: %v", tg.AntiEntropy)
	}
	tg = c.Tick(Sample{Now: at(3), Window: 1, MaxBatch: 4, LinkRTTMax: time.Hour})
	if tg.AntiEntropy != DefaultMaxInterval {
		t.Fatalf("cadence not clamped above: %v", tg.AntiEntropy)
	}
}

// TestDeterministic: the same sample sequence yields the same target
// sequence — the property the CI bench-determinism gate rides on.
func TestDeterministic(t *testing.T) {
	run := func() []Targets {
		c := NewController(Config{})
		var out []Targets
		w, batch, delivered := 1, 4, 0
		for i := 0; i < 30; i++ {
			backlog := 0
			if i%7 < 4 {
				backlog = 50 * (i%7 + 1)
			}
			tg := c.Tick(Sample{
				Now: at(i), Backlog: backlog, Delivered: delivered,
				InFlight: w, Window: w, MaxBatch: batch,
				DecisionLatency: time.Duration(1+i%3) * time.Millisecond,
				LinkRTTMax:      time.Duration(i%5) * 10 * time.Millisecond,
			})
			w, batch = tg.Window, tg.MaxBatch
			delivered += w * 3
			out = append(out, tg)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tick %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}
