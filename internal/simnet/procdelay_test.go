package simnet

import (
	"fmt"
	"testing"
	"time"

	"abcast/internal/netmodel"
	"abcast/internal/stack"
)

// TestProcessingDelayCharged: a per-protocol processing delay pushes the
// handler's run time back by exactly its amount (jitter disabled), and only
// for the listed protocol — other layers pay nothing.
func TestProcessingDelayCharged(t *testing.T) {
	run := func(delays ProcessingDelays, proto stack.ProtoID) time.Duration {
		params := netmodel.Setup1()
		params.Jitter = 0
		w := NewWorld(2, params, 1)
		w.SetProcessingDelays(delays)
		at := time.Duration(-1)
		w.Node(2).Register(proto, stack.HandlerFunc(
			func(stack.ProcessID, uint64, stack.Message) {
				at = w.Now().Sub(time.Unix(0, 0))
			}))
		w.After(1, 0, func() {
			w.Proc(1).Send(2, stack.Envelope{Proto: proto, Msg: pingMsg{size: 10}})
		})
		w.RunFor(time.Second)
		if at < 0 {
			t.Fatalf("proto %d: message never dispatched", proto)
		}
		return at
	}

	const extra = 3 * time.Millisecond
	delays := ProcessingDelays{stack.ProtoCons: extra}
	base := run(nil, stack.ProtoCons)
	if got := run(delays, stack.ProtoCons) - base; got != extra {
		t.Errorf("delayed proto dispatched %v later than baseline, want exactly %v", got, extra)
	}
	if got := run(delays, stack.ProtoApp) - run(nil, stack.ProtoApp); got != 0 {
		t.Errorf("unlisted proto dispatched %v later than baseline, want 0", got)
	}
}

// TestProcessingDelayLocalDelivery: self-addressed messages pay the delay
// too (they skip the network, not the CPU).
func TestProcessingDelayLocalDelivery(t *testing.T) {
	const extra = 2 * time.Millisecond
	params := netmodel.Setup1()
	params.Jitter = 0
	run := func(delays ProcessingDelays) time.Duration {
		w := NewWorld(1, params, 1)
		w.SetProcessingDelays(delays)
		at := time.Duration(-1)
		register(w, 1, func(stack.ProcessID, stack.Message) {
			at = w.Now().Sub(time.Unix(0, 0))
		})
		w.After(1, 0, func() { send(w, 1, 1, pingMsg{size: 10}) })
		w.RunFor(time.Second)
		if at < 0 {
			t.Fatalf("local message never dispatched")
		}
		return at
	}
	got := run(ProcessingDelays{stack.ProtoApp: extra}) - run(nil)
	if got != extra {
		t.Errorf("local delivery delayed by %v, want exactly %v", got, extra)
	}
}

// TestProcessingDelayDeterminism: with delays installed, two worlds under
// the same seed produce byte-identical delivery traces (sender, protocol,
// virtual timestamp) — the knob perturbs the schedule but never the
// determinism contract.
func TestProcessingDelayDeterminism(t *testing.T) {
	trace := func() []string {
		params := netmodel.Setup1() // jittered: exercises the seeded RNG too
		w := NewWorld(3, params, 42)
		w.SetProcessingDelays(ProcessingDelays{
			stack.ProtoApp: 700 * time.Microsecond,
			stack.ProtoRB:  150 * time.Microsecond,
		})
		var out []string
		for i := 1; i <= 3; i++ {
			p := stack.ProcessID(i)
			for _, proto := range []stack.ProtoID{stack.ProtoApp, stack.ProtoRB} {
				proto := proto
				w.Node(p).Register(proto, stack.HandlerFunc(
					func(from stack.ProcessID, _ uint64, _ stack.Message) {
						out = append(out, fmt.Sprintf("%d<-%d/%d@%v", p, from, proto, w.Now().UnixNano()))
					}))
			}
		}
		for i := 1; i <= 3; i++ {
			from := stack.ProcessID(i)
			for s := 0; s < 5; s++ {
				s := s
				w.After(from, time.Duration(s*3+i)*time.Millisecond, func() {
					for j := 1; j <= 3; j++ {
						to := stack.ProcessID(j)
						proto := stack.ProtoApp
						if s%2 == 1 {
							proto = stack.ProtoRB
						}
						w.Proc(from).Send(to, stack.Envelope{Proto: proto, Msg: pingMsg{size: 50 + s}})
					}
				})
			}
		}
		w.RunFor(time.Second)
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatalf("empty trace")
	}
}
