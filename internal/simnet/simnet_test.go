package simnet

import (
	"testing"
	"time"

	"abcast/internal/netmodel"
	"abcast/internal/stack"
)

// pingMsg is a trivial test message.
type pingMsg struct{ size int }

func (p pingMsg) WireSize() int { return p.size }

// register installs a capture handler on process p.
func register(w *World, p stack.ProcessID, fn func(from stack.ProcessID, m stack.Message)) {
	w.Node(p).Register(stack.ProtoApp, stack.HandlerFunc(
		func(from stack.ProcessID, _ uint64, m stack.Message) { fn(from, m) }))
}

func send(w *World, from, to stack.ProcessID, m stack.Message) {
	w.Proc(from).Send(to, stack.Envelope{Proto: stack.ProtoApp, Msg: m})
}

func TestPointToPointDelivery(t *testing.T) {
	w := NewWorld(2, netmodel.Setup1(), 1)
	var got []stack.ProcessID
	register(w, 2, func(from stack.ProcessID, m stack.Message) { got = append(got, from) })
	w.After(1, 0, func() { send(w, 1, 2, pingMsg{size: 10}) })
	w.RunFor(time.Second)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("deliveries = %v", got)
	}
}

func TestLatencyRespected(t *testing.T) {
	params := netmodel.Setup1()
	params.Jitter = 0
	w := NewWorld(2, params, 1)
	var at time.Duration = -1
	register(w, 2, func(stack.ProcessID, stack.Message) {
		at = w.Now().Sub(time.Unix(0, 0))
	})
	w.After(1, 0, func() { send(w, 1, 2, pingMsg{size: 1}) })
	w.RunFor(time.Second)
	if at < params.Latency {
		t.Fatalf("delivered after %v, below propagation latency %v", at, params.Latency)
	}
	if at > params.Latency+2*time.Millisecond {
		t.Fatalf("delivered after %v, far above latency %v", at, params.Latency)
	}
}

// TestPerLinkFIFO: two messages on the same link keep their order.
func TestPerLinkFIFO(t *testing.T) {
	w := NewWorld(2, netmodel.Setup1(), 1)
	var sizes []int
	register(w, 2, func(_ stack.ProcessID, m stack.Message) {
		sizes = append(sizes, m.(pingMsg).size)
	})
	w.After(1, 0, func() {
		send(w, 1, 2, pingMsg{size: 5000}) // slow, first
		send(w, 1, 2, pingMsg{size: 1})    // fast, second
	})
	w.RunFor(time.Second)
	if len(sizes) != 2 || sizes[0] != 5000 || sizes[1] != 1 {
		t.Fatalf("link not FIFO: %v", sizes)
	}
}

// TestBandwidthQueueing: pushing many large messages through a link takes at
// least size/bandwidth time in aggregate.
func TestBandwidthQueueing(t *testing.T) {
	params := netmodel.Setup1()
	params.Jitter = 0
	w := NewWorld(2, params, 1)
	const count, size = 50, 10000
	var last time.Duration
	register(w, 2, func(stack.ProcessID, stack.Message) {
		last = w.Now().Sub(time.Unix(0, 0))
	})
	w.After(1, 0, func() {
		for i := 0; i < count; i++ {
			send(w, 1, 2, pingMsg{size: size})
		}
	})
	w.RunFor(10 * time.Second)
	wire := float64(count*(size+params.WirePerMsg)) / params.Bandwidth
	minTotal := time.Duration(wire * float64(time.Second))
	if last < minTotal {
		t.Fatalf("%d×%dB drained in %v, faster than link bandwidth allows (%v)",
			count, size, last, minTotal)
	}
}

// TestCPUCostSerializesHandlers: Work() performed by one handler delays the
// next delivery's processing.
func TestCPUCostSerializesHandlers(t *testing.T) {
	params := netmodel.Setup1()
	params.Jitter = 0
	w := NewWorld(3, params, 1)
	var times []time.Duration
	w.Node(2).Register(stack.ProtoApp, stack.HandlerFunc(
		func(from stack.ProcessID, _ uint64, m stack.Message) {
			times = append(times, w.Now().Sub(time.Unix(0, 0)))
			w.Proc(2).Work(10 * time.Millisecond)
		}))
	w.After(1, 0, func() { send(w, 1, 2, pingMsg{size: 1}) })
	w.After(3, 0, func() { send(w, 3, 2, pingMsg{size: 1}) })
	w.RunFor(time.Second)
	if len(times) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(times))
	}
	if gap := times[1] - times[0]; gap < 10*time.Millisecond {
		t.Fatalf("second handler ran %v after first; Work(10ms) not charged", gap)
	}
}

func TestSelfSendLoopsBack(t *testing.T) {
	w := NewWorld(1, netmodel.Setup1(), 1)
	got := 0
	register(w, 1, func(from stack.ProcessID, m stack.Message) { got++ })
	w.After(1, 0, func() { send(w, 1, 1, pingMsg{size: 1}) })
	w.RunFor(time.Second)
	if got != 1 {
		t.Fatalf("self deliveries = %d", got)
	}
	if w.MsgsSent() != 0 {
		t.Fatal("self-send counted as network traffic")
	}
}

func TestCrashStopsProcess(t *testing.T) {
	w := NewWorld(2, netmodel.Setup1(), 1)
	got := 0
	register(w, 2, func(stack.ProcessID, stack.Message) { got++ })
	w.Crash(2, DeliverInFlight)
	w.After(1, 0, func() { send(w, 1, 2, pingMsg{size: 1}) })
	w.RunFor(time.Second)
	if got != 0 {
		t.Fatal("crashed process handled a message")
	}
	// Crashed process cannot send either.
	w.After(2, 0, func() { send(w, 2, 1, pingMsg{size: 1}) })
	w.RunFor(time.Second)
	if w.MsgsSent() != 1 { // only p1's original send
		t.Fatalf("MsgsSent = %d, crashed sender leaked traffic", w.MsgsSent())
	}
}

func TestCrashDropInFlight(t *testing.T) {
	params := netmodel.Setup1()
	params.Latency = 50 * time.Millisecond // long flight time
	params.Jitter = 0
	w := NewWorld(2, params, 1)
	got := 0
	register(w, 2, func(stack.ProcessID, stack.Message) { got++ })
	w.After(1, 0, func() { send(w, 1, 2, pingMsg{size: 1}) })
	// Crash the sender while the message is in flight, dropping it.
	w.After(2, 10*time.Millisecond, func() { w.Crash(1, DropInFlight) })
	w.RunFor(time.Second)
	if got != 0 {
		t.Fatal("in-flight message from crashed sender delivered despite DropInFlight")
	}
}

func TestCrashDeliverInFlight(t *testing.T) {
	params := netmodel.Setup1()
	params.Latency = 50 * time.Millisecond
	params.Jitter = 0
	w := NewWorld(2, params, 1)
	got := 0
	register(w, 2, func(stack.ProcessID, stack.Message) { got++ })
	w.After(1, 0, func() { send(w, 1, 2, pingMsg{size: 1}) })
	w.After(2, 10*time.Millisecond, func() { w.Crash(1, DeliverInFlight) })
	w.RunFor(time.Second)
	if got != 1 {
		t.Fatal("in-flight message lost despite DeliverInFlight")
	}
}

func TestTimerCancel(t *testing.T) {
	w := NewWorld(1, netmodel.Setup1(), 1)
	fired := false
	var cancel func()
	w.After(1, 0, func() {
		cancel = w.Proc(1).SetTimer(10*time.Millisecond, func() { fired = true })
	})
	w.After(1, time.Millisecond, func() { cancel() })
	w.RunFor(time.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() []time.Duration {
		params := netmodel.Setup1() // jitter active: exercises the RNG
		w := NewWorld(3, params, 99)
		var times []time.Duration
		for i := 2; i <= 3; i++ {
			register(w, stack.ProcessID(i), func(stack.ProcessID, stack.Message) {
				times = append(times, w.Now().Sub(time.Unix(0, 0)))
			})
		}
		w.After(1, 0, func() {
			for i := 0; i < 20; i++ {
				send(w, 1, 2, pingMsg{size: 100})
				send(w, 1, 3, pingMsg{size: 100})
			}
		})
		w.RunFor(time.Second)
		return times
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d at %v vs %v: simulation not deterministic", i, a[i], b[i])
		}
	}
}

func TestAdversarialLatencyFn(t *testing.T) {
	params := netmodel.Setup1()
	params.LatencyFn = func(from, to stack.ProcessID, env stack.Envelope) time.Duration {
		if to == 3 {
			return 500 * time.Millisecond
		}
		return time.Microsecond
	}
	w := NewWorld(3, params, 1)
	var order []stack.ProcessID
	for i := 2; i <= 3; i++ {
		i := i
		register(w, stack.ProcessID(i), func(stack.ProcessID, stack.Message) {
			order = append(order, stack.ProcessID(i))
		})
	}
	w.After(1, 0, func() {
		send(w, 1, 3, pingMsg{size: 1}) // sent first, arrives last
		send(w, 1, 2, pingMsg{size: 1})
	})
	w.RunFor(time.Second)
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Fatalf("adversarial reordering failed: %v", order)
	}
}

func TestTrafficCounters(t *testing.T) {
	params := netmodel.Setup1()
	w := NewWorld(2, params, 1)
	register(w, 2, func(stack.ProcessID, stack.Message) {})
	w.After(1, 0, func() { send(w, 1, 2, pingMsg{size: 88}) })
	w.RunFor(time.Second)
	if w.MsgsSent() != 1 {
		t.Fatalf("MsgsSent = %d", w.MsgsSent())
	}
	wantBytes := int64(88 + 12) // payload + envelope header
	if w.BytesSent() != wantBytes {
		t.Fatalf("BytesSent = %d, want %d", w.BytesSent(), wantBytes)
	}
}
