package simnet

// Tests of runtime fault injection (Partition/Heal) and of the per-link
// topology path: severing semantics in both modes, composition with Crash,
// the netmodel precedence contract (LatencyFn > Topology > uniform), and
// determinism of partitioned runs under a fixed seed.

import (
	"testing"
	"time"

	"abcast/internal/netmodel"
	"abcast/internal/stack"
)

func TestPartitionDropSevers(t *testing.T) {
	w := NewWorld(4, netmodel.Setup1(), 1)
	got := make(map[stack.ProcessID]int)
	for i := 1; i <= 4; i++ {
		p := stack.ProcessID(i)
		register(w, p, func(stack.ProcessID, stack.Message) { got[p]++ })
	}
	w.Partition(PartitionDrop, []stack.ProcessID{1, 2})
	if !w.Partitioned(1, 3) || w.Partitioned(1, 2) || w.Partitioned(3, 4) {
		t.Fatal("partition group membership wrong")
	}
	w.After(1, 0, func() {
		send(w, 1, 2, pingMsg{size: 1}) // same group: delivered
		send(w, 1, 3, pingMsg{size: 1}) // cross cut: dropped
	})
	// Processes not named in any group share the implicit extra group.
	w.After(3, 0, func() { send(w, 3, 4, pingMsg{size: 1}) })
	w.RunFor(time.Second)
	if got[2] != 1 || got[4] != 1 {
		t.Fatalf("intra-group deliveries = %v, want p2 and p4 reached", got)
	}
	if got[3] != 0 {
		t.Fatal("cross-cut message delivered under PartitionDrop")
	}
	// After Heal, traffic flows again but dropped messages stay lost.
	w.Heal()
	w.After(1, 0, func() { send(w, 1, 3, pingMsg{size: 1}) })
	w.RunFor(time.Second)
	if got[3] != 1 {
		t.Fatalf("post-heal delivery count = %d, want 1 (drop mode loses cut traffic)", got[3])
	}
}

func TestPartitionDelayReleasesAtHeal(t *testing.T) {
	params := netmodel.Setup1()
	params.Jitter = 0
	w := NewWorld(2, params, 1)
	var sizes []int
	var times []time.Duration
	register(w, 2, func(_ stack.ProcessID, m stack.Message) {
		sizes = append(sizes, m.(pingMsg).size)
		times = append(times, w.Now().Sub(time.Unix(0, 0)))
	})
	w.Partition(PartitionDelay, []stack.ProcessID{1})
	w.After(1, 0, func() {
		send(w, 1, 2, pingMsg{size: 10}) // held at the cut
		send(w, 1, 2, pingMsg{size: 20}) // held behind it
	})
	w.After(1, 50*time.Millisecond, func() { w.Heal() })
	w.RunFor(time.Second)
	if len(sizes) != 2 || sizes[0] != 10 || sizes[1] != 20 {
		t.Fatalf("held messages delivered as %v, want FIFO [10 20]", sizes)
	}
	for _, at := range times {
		if at < 50*time.Millisecond {
			t.Fatalf("held message delivered at %v, before the heal", at)
		}
	}
}

// TestPartitionComposesWithCrash: a sender that crashed with DropInFlight
// during the partition must not have its held messages resurrected by Heal.
func TestPartitionComposesWithCrash(t *testing.T) {
	w := NewWorld(2, netmodel.Setup1(), 1)
	got := 0
	register(w, 2, func(stack.ProcessID, stack.Message) { got++ })
	w.Partition(PartitionDelay, []stack.ProcessID{1})
	w.After(1, 0, func() { send(w, 1, 2, pingMsg{size: 1}) })
	w.After(2, 10*time.Millisecond, func() { w.Crash(1, DropInFlight) })
	w.After(2, 20*time.Millisecond, func() { w.Heal() })
	w.RunFor(time.Second)
	if got != 0 {
		t.Fatal("held message from a DropInFlight-crashed sender delivered at heal")
	}
}

// TestRepartitionReevaluatesHeld: replacing the cut re-evaluates held
// traffic against the new groups — still-severed messages stay held, the
// rest deliver.
func TestRepartitionReevaluatesHeld(t *testing.T) {
	w := NewWorld(3, netmodel.Setup1(), 1)
	got := make(map[stack.ProcessID]int)
	for i := 2; i <= 3; i++ {
		p := stack.ProcessID(i)
		register(w, p, func(stack.ProcessID, stack.Message) { got[p]++ })
	}
	w.Partition(PartitionDelay, []stack.ProcessID{1})
	w.After(1, 0, func() {
		send(w, 1, 2, pingMsg{size: 1})
		send(w, 1, 3, pingMsg{size: 1})
	})
	// New cut: p1 and p2 together, p3 alone.
	w.After(1, 20*time.Millisecond, func() {
		w.Partition(PartitionDelay, []stack.ProcessID{1, 2})
	})
	w.RunFor(time.Second)
	if got[2] != 1 {
		t.Fatal("message to p2 not released when the new cut joined p1 and p2")
	}
	if got[3] != 0 {
		t.Fatal("message to p3 delivered although still severed")
	}
	w.Heal()
	w.RunFor(time.Second)
	if got[3] != 1 {
		t.Fatal("message to p3 not released at final heal")
	}
}

func TestTopologyLatencyPerLink(t *testing.T) {
	params := netmodel.WAN3Sites()
	params.Topology.SiteLink[0][1].Jitter = 0
	params.Topology.SiteLink[0][2].Jitter = 0
	w := NewWorld(3, params, 1) // p1..p3 on sites 0..2
	at := make(map[stack.ProcessID]time.Duration)
	for i := 2; i <= 3; i++ {
		p := stack.ProcessID(i)
		register(w, p, func(stack.ProcessID, stack.Message) {
			at[p] = w.Now().Sub(time.Unix(0, 0))
		})
	}
	w.After(1, 0, func() {
		send(w, 1, 2, pingMsg{size: 1})
		send(w, 1, 3, pingMsg{size: 1})
	})
	w.RunFor(time.Second)
	l12 := params.Topology.SiteLink[0][1].Latency
	l13 := params.Topology.SiteLink[0][2].Latency
	if at[2] < l12 || at[2] > l12+time.Millisecond {
		t.Fatalf("p2 delivery at %v, want ~%v", at[2], l12)
	}
	if at[3] < l13 || at[3] > l13+time.Millisecond {
		t.Fatalf("p3 delivery at %v, want ~%v", at[3], l13)
	}
}

// TestLatencyFnOverridesTopology pins the netmodel precedence contract:
// LatencyFn > Topology > uniform Latency/Jitter.
func TestLatencyFnOverridesTopology(t *testing.T) {
	params := netmodel.WAN3Sites()
	const forced = 3 * time.Millisecond
	params.LatencyFn = func(from, to stack.ProcessID, env stack.Envelope) time.Duration {
		return forced
	}
	w := NewWorld(3, params, 1)
	var at time.Duration = -1
	register(w, 3, func(stack.ProcessID, stack.Message) {
		at = w.Now().Sub(time.Unix(0, 0))
	})
	w.After(1, 0, func() { send(w, 1, 3, pingMsg{size: 1}) })
	w.RunFor(time.Second)
	wan := params.Topology.SiteLink[0][2].Latency // 80 ms: must NOT apply
	if at < 0 || at >= wan {
		t.Fatalf("delivery at %v: LatencyFn did not override the topology link (%v)", at, wan)
	}
	if at < forced {
		t.Fatalf("delivery at %v, below the forced latency %v", at, forced)
	}
}

// deliveryTrace runs a fixed 3-process workload, optionally with a
// partition episode, and returns every delivery as (receiver, time).
func deliveryTrace(seed int64, partition bool) []string {
	params := netmodel.WAN3Sites() // jitter active: exercises the RNG
	w := NewWorld(3, params, seed)
	var trace []string
	for i := 1; i <= 3; i++ {
		p := stack.ProcessID(i)
		register(w, p, func(from stack.ProcessID, m stack.Message) {
			trace = append(trace, w.Now().Sub(time.Unix(0, 0)).String()+"@"+string(rune('0'+p)))
		})
	}
	for i := 1; i <= 3; i++ {
		p := stack.ProcessID(i)
		for s := 0; s < 10; s++ {
			at := time.Duration(i*3+s*17) * time.Millisecond
			w.After(p, at, func() {
				for q := stack.ProcessID(1); q <= 3; q++ {
					if q != p {
						send(w, p, q, pingMsg{size: 100})
					}
				}
			})
		}
	}
	if partition {
		w.After(1, 40*time.Millisecond, func() { w.Partition(PartitionDelay, []stack.ProcessID{3}) })
		w.After(1, 120*time.Millisecond, func() { w.Heal() })
	}
	w.RunFor(2 * time.Second)
	return trace
}

// TestDeterminismWithPartitions: the same seed must yield the identical
// delivery trace, with and without a partition episode — fault injection
// consumes no randomness and schedules through the same event queue.
func TestDeterminismWithPartitions(t *testing.T) {
	for _, partition := range []bool{false, true} {
		a := deliveryTrace(42, partition)
		b := deliveryTrace(42, partition)
		if len(a) == 0 {
			t.Fatalf("partition=%v: empty trace", partition)
		}
		if len(a) != len(b) {
			t.Fatalf("partition=%v: trace lengths %d vs %d", partition, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("partition=%v: trace diverges at %d: %s vs %s", partition, i, a[i], b[i])
			}
		}
	}
	// And the episode must actually change the schedule (the partition is
	// not a no-op).
	if len(deliveryTrace(42, false)) == len(deliveryTrace(42, true)) {
		whole, cut := deliveryTrace(42, false), deliveryTrace(42, true)
		same := true
		for i := range whole {
			if whole[i] != cut[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("partition episode did not affect the delivery trace")
		}
	}
}
