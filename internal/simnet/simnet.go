// Package simnet executes protocol stacks on the discrete-event simulator.
//
// A World hosts n processes. Each process has a FIFO CPU resource; each
// ordered pair of processes is connected by a FIFO link resource. Message
// costs come from a netmodel.Params — per-link when the params carry a
// netmodel.Topology, so geo-replicated (WAN) deployments simulate with
// asymmetric site-to-site latencies and bandwidths. All processes run on a
// single deterministic event loop, so a simulation with a fixed seed is
// exactly reproducible.
//
// Runtime fault injection: Crash stops a process; Partition/Heal sever the
// network along group lines, either dropping cross-cut traffic
// (PartitionDrop) or buffering it until the heal (PartitionDelay). Both
// compose with each other and stay deterministic under the seed.
package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"abcast/internal/metrics"
	"abcast/internal/netmodel"
	"abcast/internal/sim"
	"abcast/internal/stack"
)

// World is a simulated distributed system.
type World struct {
	eng    *sim.Engine
	params netmodel.Params
	procs  []*Proc // index 0 unused; processes are 1..n
	links  map[linkKey]*sim.Resource

	// dropped marks crashed senders whose in-flight messages must be
	// discarded on arrival (the adversary's choice permitted by reliable
	// channels, which only guarantee delivery between correct processes).
	dropped map[stack.ProcessID]bool

	// partGroup maps each process to its partition group while a partition
	// is in effect (nil when the network is whole). Messages whose
	// endpoints are in different groups are severed at their arrival
	// instant.
	partGroup map[stack.ProcessID]int
	partMode  PartitionMode
	// held buffers severed messages under PartitionDelay, in arrival
	// order, for release at Heal.
	held []heldMsg

	// procDelays charges extra receive-side CPU per protocol layer (see
	// SetProcessingDelays). Nil = no extra cost.
	procDelays ProcessingDelays

	// Debug enables per-process log output through Logf.
	Debug bool
	// LogSink receives debug lines when Debug is set; defaults to stdout
	// via fmt.Printf when nil.
	LogSink func(line string)

	// World-level traffic cells (simnet.msgs_sent / simnet.bytes_sent);
	// standalone until SetMetrics hands them to a registry.
	msgsSent  *metrics.Counter
	bytesSent *metrics.Counter
}

type linkKey struct{ from, to stack.ProcessID }

// NewWorld creates a simulated system of n processes with the given network
// parameters and deterministic seed.
func NewWorld(n int, params netmodel.Params, seed int64) *World {
	w := &World{
		eng:       sim.NewEngine(seed),
		params:    params,
		procs:     make([]*Proc, n+1),
		links:     make(map[linkKey]*sim.Resource, n*n),
		dropped:   make(map[stack.ProcessID]bool),
		msgsSent:  new(metrics.Counter),
		bytesSent: new(metrics.Counter),
	}
	for i := 1; i <= n; i++ {
		p := &Proc{
			world: w,
			id:    stack.ProcessID(i),
			n:     n,
			rng:   rand.New(rand.NewSource(seed + int64(i)*7919)),
		}
		p.node = stack.NewNode(p)
		w.procs[i] = p
	}
	return w
}

// ProcessingDelays assigns extra receive-side CPU time per protocol layer:
// every message of a listed stack.ProtoID costs its entry on top of the
// netmodel receive cost before its handler runs. It models heterogeneous
// handler costs — a consensus round that verifies signatures, a snapshot
// chunk that deserializes state — without touching the uniform byte-count
// model, and lets property tests skew the relative pacing of the layers
// (slow consensus under fast diffusion, and vice versa) while the event
// order stays deterministic under the seed.
type ProcessingDelays map[stack.ProtoID]time.Duration

// SetProcessingDelays installs per-protocol receive-side CPU delays for
// every process of the world. The map is captured by reference; it must not
// be mutated while the simulation runs. Call before (or between) runs —
// messages already queued on a CPU keep the cost charged at arrival.
func (w *World) SetProcessingDelays(d ProcessingDelays) { w.procDelays = d }

// procDelay resolves the extra receive-side CPU cost of one envelope.
func (w *World) procDelay(env stack.Envelope) time.Duration {
	if w.procDelays == nil {
		return 0
	}
	return w.procDelays[env.Proto]
}

// Engine exposes the underlying event engine (tests and the bench harness
// schedule workload events through it).
func (w *World) Engine() *sim.Engine { return w.eng }

// Params returns the network parameters in use.
func (w *World) Params() netmodel.Params { return w.params }

// N returns the number of processes.
func (w *World) N() int { return len(w.procs) - 1 }

// Node returns the protocol node of process p, for wiring layers.
func (w *World) Node(p stack.ProcessID) *stack.Node { return w.procs[p].node }

// Proc returns the runtime context of process p.
func (w *World) Proc(p stack.ProcessID) *Proc { return w.procs[p] }

// Now returns the current virtual time.
func (w *World) Now() time.Time { return w.eng.Now().AsTime() }

// Run processes events until the simulation goes idle.
func (w *World) Run() { w.eng.Run() }

// RunFor processes events for d of virtual time.
func (w *World) RunFor(d time.Duration) {
	w.eng.RunUntil(w.eng.Now().Add(d))
}

// After schedules fn on process p's event loop after d of virtual time,
// respecting p's CPU availability. It is the entry point used by workload
// generators and tests to inject application events.
func (w *World) After(p stack.ProcessID, d time.Duration, fn func()) (cancel func()) {
	return w.procs[p].SetTimer(d, fn)
}

// Crash semantics for in-flight messages.
type CrashMode int

const (
	// DropInFlight discards every message from the crashed process that
	// has not yet been delivered.
	DropInFlight CrashMode = iota + 1
	// DeliverInFlight lets messages already sent by the crashed process
	// reach their destinations.
	DeliverInFlight
)

// Crash stops process p. Depending on mode, its undelivered messages are
// dropped or still delivered.
func (w *World) Crash(p stack.ProcessID, mode CrashMode) {
	w.procs[p].crashed = true
	if mode == DropInFlight {
		w.dropped[p] = true
	}
}

// Restart revives a crashed process as a fresh incarnation: a new protocol
// node on the same process identity, with every trace of the previous
// incarnation's volatile state discarded. The incarnation epoch is bumped so
// that timers armed and CPU tasks queued by the dead incarnation are dropped
// when they fire — a restarted process must not execute callbacks that close
// over pre-crash protocol state. Messages still in flight toward p deliver
// into the new incarnation (the network does not know the process died),
// which is exactly the at-least-once surface the persistence layer's
// checkpoint dedup absorbs.
//
// The caller rebuilds the protocol stack on the returned node (the same
// wiring it did at start-up, now with the persistent store carrying the
// checkpoint) and schedules the rebuild via w.Engine().At — NOT w.After,
// whose timer would have been dropped while the process was crashed.
func (w *World) Restart(pid stack.ProcessID) *stack.Node {
	p := w.procs[pid]
	p.crashed = false
	p.epoch++
	p.queue = nil
	delete(w.dropped, pid)
	p.node = stack.NewNode(p)
	return p.node
}

// PartitionMode selects what happens to messages crossing a partition cut.
type PartitionMode int

const (
	// PartitionDrop loses cross-group messages — a routing black hole over
	// a datagram transport. Channel reliability between correct processes
	// is violated while the partition lasts: traffic sent across the cut is
	// gone for good, so without repair, protocol properties that rely on
	// reliable channels (eventual delivery on the minority side, minority
	// catch-up) hold only for traffic sent after Heal. The recovery
	// subsystem (core.Config.Recover: relink retransmission + anti-entropy,
	// consensus decide-relay, payload fetch) closes exactly this gap — with
	// it enabled, a drop-mode episode ends in full delivery everywhere,
	// like a delay-mode one (see the drop-vs-delay matrix in the root
	// package's doc.go).
	PartitionDrop PartitionMode = iota + 1
	// PartitionDelay holds cross-group messages at the cut and releases
	// them, in original arrival order, when the partition heals — the
	// behaviour of connection-oriented transports (TCP) that buffer and
	// retransmit across an outage. Channels stay reliable, merely slow, so
	// every protocol property is preserved across the episode and the
	// minority side catches up at Heal.
	PartitionDelay
)

// heldMsg is one severed message awaiting Heal under PartitionDelay.
type heldMsg struct {
	from, to stack.ProcessID
	env      stack.Envelope
	size     int
}

// Partition splits the system into the given groups: a message is severed
// when, at its arrival instant, sender and receiver are in different groups.
// Processes not named in any group form one implicit extra group. The call
// composes with Crash (crash semantics are checked first) and is
// deterministic under the simulation seed: partitions only gate arrivals,
// they consume no randomness.
//
// Calling Partition while a partition is already in effect replaces the
// cut: traffic held under PartitionDelay is re-evaluated under the new
// groups and the new mode — no-longer-severed messages deliver immediately,
// still-severed ones stay held if the new mode is PartitionDelay and are
// lost if it is PartitionDrop (a Drop cut is a black hole for everything
// crossing it, including traffic a previous Delay cut had buffered).
func (w *World) Partition(mode PartitionMode, groups ...[]stack.ProcessID) {
	w.partMode = mode
	w.partGroup = make(map[stack.ProcessID]int)
	for gi, g := range groups {
		for _, p := range g {
			w.partGroup[p] = gi
		}
	}
	for p := stack.ProcessID(1); p <= stack.ProcessID(w.N()); p++ {
		if _, ok := w.partGroup[p]; !ok {
			w.partGroup[p] = len(groups)
		}
	}
	w.redeliverHeld()
}

// Heal removes the partition. Messages held under PartitionDelay are
// delivered now, in the order they originally reached the cut (per-link
// FIFO is preserved).
func (w *World) Heal() {
	w.partGroup = nil
	w.redeliverHeld()
}

// Partitioned reports whether a message from a to b would currently be
// severed.
func (w *World) Partitioned(a, b stack.ProcessID) bool {
	if w.partGroup == nil {
		return false
	}
	return w.partGroup[a] != w.partGroup[b]
}

// redeliverHeld re-runs arrival for all held messages; arrive re-checks the
// (possibly new) cut, so still-severed messages are re-held and the rest
// proceed into their destination's run queue.
func (w *World) redeliverHeld() {
	held := w.held
	w.held = nil
	for _, h := range held {
		w.procs[h.to].arrive(h.from, h.env, h.size)
	}
}

// SetMetrics registers the world's traffic counters (simnet.msgs_sent,
// simnet.bytes_sent) into r, carrying over anything already counted. Call
// before (or between) runs; counter updates never allocate or schedule, so
// collection cannot perturb the simulation.
func (w *World) SetMetrics(r *metrics.Registry) {
	m, b := r.Counter("simnet.msgs_sent"), r.Counter("simnet.bytes_sent")
	m.Add(w.msgsSent.Value())
	b.Add(w.bytesSent.Value())
	w.msgsSent, w.bytesSent = m, b
}

// MsgsSent and BytesSent report global traffic counters (network messages
// only; local self-deliveries are excluded).
func (w *World) MsgsSent() int64  { return w.msgsSent.Value() }
func (w *World) BytesSent() int64 { return w.bytesSent.Value() }

func (w *World) link(from, to stack.ProcessID) *sim.Resource {
	k := linkKey{from, to}
	l, ok := w.links[k]
	if !ok {
		l = &sim.Resource{}
		w.links[k] = l
	}
	return l
}

// Proc is one simulated process; it implements stack.Context.
//
// Incoming events (message deliveries, local deliveries, timer callbacks)
// pass through a FIFO run queue served by the process's CPU: each item
// first occupies the CPU for its processing cost, then its handler runs.
// Handlers may charge additional CPU (Work, send costs), which delays every
// later item — this is what makes the rcv(v) check cost of indirect
// consensus visible in end-to-end latency.
type Proc struct {
	world   *World
	id      stack.ProcessID
	n       int
	cpu     sim.Resource
	node    *stack.Node
	rng     *rand.Rand
	crashed bool

	// epoch counts incarnations: bumped by World.Restart. Timers and CPU
	// tasks capture the epoch they were created under and are dropped when
	// it no longer matches, so callbacks closing over a dead incarnation's
	// protocol state never run against the new one.
	epoch int

	queue       []cpuTask
	pumpArmed   bool
	taskRunning bool
}

// cpuTask is one queued unit of process work.
type cpuTask struct {
	cost  time.Duration
	fn    func()
	epoch int
}

var _ stack.Context = (*Proc)(nil)

// Node returns the protocol node hosted by this process.
func (p *Proc) Node() *stack.Node { return p.node }

// ID implements stack.Context.
func (p *Proc) ID() stack.ProcessID { return p.id }

// N implements stack.Context.
func (p *Proc) N() int { return p.n }

// Now implements stack.Context.
func (p *Proc) Now() time.Time { return p.world.eng.Now().AsTime() }

// Rand implements stack.Context.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Crashed implements stack.Context.
func (p *Proc) Crashed() bool { return p.crashed }

// Work implements stack.Context: it charges d of CPU time, delaying this
// process's subsequent sends and event handling.
func (p *Proc) Work(d time.Duration) {
	if d > 0 {
		p.cpu.Extend(p.world.eng.Now(), d)
	}
}

// Logf implements stack.Context.
func (p *Proc) Logf(format string, args ...any) {
	if !p.world.Debug {
		return
	}
	line := fmt.Sprintf("[%12s p%d] %s",
		p.world.eng.Now().Sub(0), p.id, fmt.Sprintf(format, args...))
	if p.world.LogSink != nil {
		p.world.LogSink(line)
		return
	}
	fmt.Println(line)
}

// Send implements stack.Context.
func (p *Proc) Send(to stack.ProcessID, env stack.Envelope) {
	if p.crashed {
		return
	}
	w := p.world
	now := w.eng.Now()
	if to == p.id {
		// Local delivery: CPU cost only, no network.
		p.exec(w.params.LocalDeliveryCost+w.procDelay(env), func() {
			p.node.Dispatch(p.id, env)
		})
		return
	}
	size := env.WireSize()
	w.msgsSent.Inc()
	w.bytesSent.Add(int64(size))

	// Sender CPU: serialize/enqueue.
	_, cpuDone := p.cpu.Acquire(now, w.params.SendCost(size))
	// Link: FIFO transmission at (per-link, if a topology is set) bandwidth.
	_, txDone := w.link(p.id, to).Acquire(cpuDone, w.params.TxTimeOn(p.id, to, size))
	// Propagation delay.
	lat := w.latency(p.id, to, env)
	arrival := txDone.Add(lat)

	from := p.id
	dst := w.procs[to]
	w.eng.At(arrival, func() { dst.arrive(from, env, size) })
}

// latency computes the propagation delay for one message, following the
// netmodel precedence contract: LatencyFn > Topology link > uniform
// Latency+Jitter.
func (w *World) latency(from, to stack.ProcessID, env stack.Envelope) time.Duration {
	if w.params.LatencyFn != nil {
		return w.params.LatencyFn(from, to, env)
	}
	link := w.params.LinkFor(from, to)
	lat := link.Latency
	if j := link.Jitter; j > 0 {
		lat += time.Duration(w.eng.Rand().Int63n(int64(2*j))) - j
		if lat < 0 {
			lat = 0
		}
	}
	return lat
}

// arrive runs on the destination at wire-arrival time: it enqueues the
// message on the destination's CPU run queue.
func (p *Proc) arrive(from stack.ProcessID, env stack.Envelope, size int) {
	w := p.world
	if p.crashed || w.dropped[from] {
		return
	}
	if w.Partitioned(from, p.id) {
		if w.partMode == PartitionDelay {
			w.held = append(w.held, heldMsg{from: from, to: p.id, env: env, size: size})
		}
		return
	}
	p.exec(w.params.RecvCost(size)+w.procDelay(env), func() {
		if !w.dropped[from] {
			p.node.Dispatch(from, env)
		}
	})
}

// exec appends a work item to the CPU run queue.
func (p *Proc) exec(cost time.Duration, fn func()) {
	if p.crashed {
		return
	}
	p.queue = append(p.queue, cpuTask{cost: cost, fn: fn, epoch: p.epoch})
	p.pump()
}

// pump arms the next run-queue step: when the CPU goes idle, the head task
// charges its processing cost and then runs. Handlers may extend the busy
// period (Work, send costs), so the pump re-checks idleness each time.
func (p *Proc) pump() {
	if p.pumpArmed || p.taskRunning || len(p.queue) == 0 {
		return
	}
	p.pumpArmed = true
	eng := p.world.eng
	now := eng.Now()
	at := p.cpu.FreeAt()
	if at < now {
		at = now
	}
	eng.At(at, func() {
		p.pumpArmed = false
		if p.crashed {
			p.queue = nil
			return
		}
		now := eng.Now()
		if p.cpu.FreeAt() > now {
			// Busy period was extended since this step was armed.
			p.pump()
			return
		}
		if len(p.queue) == 0 {
			return
		}
		task := p.queue[0]
		p.queue = p.queue[1:]
		p.cpu.Extend(now, task.cost)
		p.taskRunning = true
		eng.At(p.cpu.FreeAt(), func() {
			if !p.crashed && task.epoch == p.epoch {
				task.fn()
			}
			p.taskRunning = false
			p.pump()
		})
	})
}

// SetTimer implements stack.Context. The callback runs on the process's
// run queue once the delay elapses and the CPU is free.
func (p *Proc) SetTimer(d time.Duration, fn func()) (cancel func()) {
	cancelled := false
	epoch := p.epoch
	tm := p.world.eng.After(d, func() {
		if p.crashed || cancelled || p.epoch != epoch {
			return
		}
		p.exec(0, func() {
			if !cancelled {
				fn()
			}
		})
	})
	return func() {
		cancelled = true
		tm.Cancel()
	}
}
