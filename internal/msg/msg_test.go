package msg

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"abcast/internal/stack"
)

func id(s, q int) ID { return ID{Sender: stack.ProcessID(s), Seq: uint64(q)} }

func TestIDLess(t *testing.T) {
	cases := []struct {
		a, b ID
		want bool
	}{
		{id(1, 1), id(1, 2), true},
		{id(1, 2), id(1, 1), false},
		{id(1, 9), id(2, 1), true},
		{id(2, 1), id(1, 9), false},
		{id(1, 1), id(1, 1), false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIDSetAddRemoveContains(t *testing.T) {
	var s IDSet
	if !s.Empty() {
		t.Fatal("fresh set not empty")
	}
	if !s.Add(id(2, 1)) || !s.Add(id(1, 1)) || !s.Add(id(1, 2)) {
		t.Fatal("Add of new element returned false")
	}
	if s.Add(id(1, 1)) {
		t.Fatal("Add of duplicate returned true")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, x := range []ID{id(1, 1), id(1, 2), id(2, 1)} {
		if !s.Contains(x) {
			t.Fatalf("Contains(%v) = false", x)
		}
	}
	if s.Contains(id(3, 3)) {
		t.Fatal("Contains of absent element = true")
	}
	if !s.Remove(id(1, 2)) || s.Remove(id(1, 2)) {
		t.Fatal("Remove semantics broken")
	}
	if s.Len() != 2 {
		t.Fatalf("Len after remove = %d", s.Len())
	}
}

func TestIDSetCanonicalOrder(t *testing.T) {
	ids := []ID{id(3, 1), id(1, 5), id(2, 2), id(1, 1), id(2, 1)}
	s := NewIDSet(ids...)
	got := s.IDs()
	want := append([]ID(nil), ids...)
	sort.Slice(want, func(i, j int) bool { return want[i].Less(want[j]) })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs() = %v, want sorted %v", got, want)
		}
	}
}

func TestIDSetUnionCloneEqual(t *testing.T) {
	a := NewIDSet(id(1, 1), id(2, 2))
	b := NewIDSet(id(2, 2), id(3, 3))
	u := a.Union(b)
	if u.Len() != 3 {
		t.Fatalf("union len = %d", u.Len())
	}
	if a.Len() != 2 || b.Len() != 2 {
		t.Fatal("union mutated its operands")
	}
	c := a.Clone()
	c.Add(id(9, 9))
	if a.Contains(id(9, 9)) {
		t.Fatal("Clone shares storage")
	}
	if !a.Equal(NewIDSet(id(2, 2), id(1, 1))) {
		t.Fatal("Equal order-insensitive failed")
	}
	if a.Equal(b) {
		t.Fatal("Equal of different sets = true")
	}
}

func TestIDSetRemoveAll(t *testing.T) {
	a := NewIDSet(id(1, 1), id(1, 2), id(2, 1), id(2, 2))
	a.RemoveAll(NewIDSet(id(1, 2), id(2, 1), id(5, 5)))
	if !a.Equal(NewIDSet(id(1, 1), id(2, 2))) {
		t.Fatalf("RemoveAll left %v", a)
	}
}

func TestKeyBijective(t *testing.T) {
	a := NewIDSet(id(1, 1), id(2, 2))
	b := NewIDSet(id(2, 2), id(1, 1))
	if a.Key() != b.Key() {
		t.Fatal("Key not canonical")
	}
	c := NewIDSet(id(1, 1), id(2, 3))
	if a.Key() == c.Key() {
		t.Fatal("distinct sets share a key")
	}
}

func TestWireSizes(t *testing.T) {
	app := &App{ID: id(1, 1), Payload: make([]byte, 100)}
	if got := app.WireSize(); got != IDWireBytes+100 {
		t.Fatalf("App.WireSize = %d", got)
	}
	s := NewIDSet(id(1, 1), id(2, 2), id(3, 3))
	if got := s.WireSize(); got != 4+3*IDWireBytes {
		t.Fatalf("IDSet.WireSize = %d", got)
	}
	// The decoupling property: identifier size is independent of payload
	// size.
	big := NewIDSet(id(1, 1))
	if big.WireSize() != 4+IDWireBytes {
		t.Fatal("id set size depends on something it should not")
	}
}

// Property: set semantics match a reference map implementation under random
// operation sequences.
func TestIDSetQuickAgainstMap(t *testing.T) {
	check := func(seed int64, ops []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		var s IDSet
		ref := make(map[ID]bool)
		for _, op := range ops {
			x := id(int(op%5)+1, int(op/5)%10)
			if rng.Intn(2) == 0 {
				s.Add(x)
				ref[x] = true
			} else {
				s.Remove(x)
				delete(ref, x)
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		prev := ID{}
		for i, got := range s.IDs() {
			if !ref[got] {
				return false
			}
			if i > 0 && !prev.Less(got) {
				return false // order violated
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Key is injective over distinct sets (bijection between messages
// and identifiers is what lets atomic broadcast order ids instead of
// messages).
func TestKeyInjectiveQuick(t *testing.T) {
	check := func(a, b []uint16) bool {
		mk := func(xs []uint16) IDSet {
			var s IDSet
			for _, x := range xs {
				s.Add(id(int(x%7)+1, int(x/7)%50))
			}
			return s
		}
		sa, sb := mk(a), mk(b)
		return sa.Equal(sb) == (sa.Key() == sb.Key())
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if got := id(2, 7).String(); got != "2:7" {
		t.Fatalf("ID.String = %q", got)
	}
	s := NewIDSet(id(1, 1), id(2, 2))
	if got := s.String(); got != "{1:1,2:2}" {
		t.Fatalf("IDSet.String = %q", got)
	}
}
