// Package msg defines application messages and message identifiers — the
// paper's id(m) and msgs(-) constructs (Section 2.1).
//
// Every atomically-broadcast message m carries a unique identifier id(m),
// the pair (sender, per-sender sequence number). The relationship between
// messages and identifiers is bijective, which is the property the paper's
// reduction relies on to infer a delivery order of messages from an ordered
// sequence of identifiers.
//
// IDSet is the value type indirect consensus decides on: deterministic
// canonical order (Algorithm 1 line 20 needs one), cheap set algebra for
// the engine's unordered/ordered bookkeeping, and a wire footprint that
// depends only on the number of identifiers — the decoupling of consensus
// cost from payload size that motivates the whole approach.
package msg

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"abcast/internal/stack"
)

// IDWireBytes is the wire footprint of one identifier (4-byte sender +
// 8-byte sequence number).
const IDWireBytes = 12

// ID uniquely identifies an application message.
type ID struct {
	Sender stack.ProcessID
	Seq    uint64
}

// Less orders identifiers deterministically (by sender, then sequence
// number). Algorithm 1 line 20 needs "elements of idSet in some
// deterministic order"; this is that order.
func (a ID) Less(b ID) bool {
	if a.Sender != b.Sender {
		return a.Sender < b.Sender
	}
	return a.Seq < b.Seq
}

// String implements fmt.Stringer.
func (a ID) String() string { return fmt.Sprintf("%d:%d", a.Sender, a.Seq) }

// ConfigChange is a membership reconfiguration request riding the total
// order like any payload: at most one process joining and one leaving. Its
// delivery point — the ordering serial the carrying message is delivered at
// — defines where the quorum switch takes effect (see internal/core).
type ConfigChange struct {
	Join  stack.ProcessID // 0 = no join
	Leave stack.ProcessID // 0 = no leave
}

// configWireBytes is the wire footprint of an embedded ConfigChange (two
// 4-byte process ids).
const configWireBytes = 8

// App is an application message: an identifier plus an opaque payload.
// Config, when non-nil, marks the message as a membership reconfiguration;
// the engine consumes it at the delivery boundary instead of handing it to
// the application.
type App struct {
	ID      ID
	Payload []byte
	Config  *ConfigChange
}

// WireSize implements stack.Message.
func (a *App) WireSize() int {
	n := IDWireBytes + len(a.Payload)
	if a.Config != nil {
		n += configWireBytes
	}
	return n
}

var _ stack.Message = (*App)(nil)

// IDSet is a set of message identifiers kept as a sorted slice, so that the
// canonical order is always available and set operations are deterministic.
type IDSet struct {
	ids []ID // sorted, unique
}

// NewIDSet builds a set from the given identifiers (duplicates are
// discarded).
func NewIDSet(ids ...ID) IDSet {
	var s IDSet
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Len returns the number of identifiers in the set.
func (s IDSet) Len() int { return len(s.ids) }

// Empty reports whether the set has no elements.
func (s IDSet) Empty() bool { return len(s.ids) == 0 }

// IDs returns the identifiers in canonical (deterministic) order. The
// returned slice is a copy.
func (s IDSet) IDs() []ID {
	out := make([]ID, len(s.ids))
	copy(out, s.ids)
	return out
}

// search returns the insertion index of id.
func (s IDSet) search(id ID) int {
	return sort.Search(len(s.ids), func(i int) bool { return !s.ids[i].Less(id) })
}

// Contains reports membership.
func (s IDSet) Contains(id ID) bool {
	i := s.search(id)
	return i < len(s.ids) && s.ids[i] == id
}

// Add inserts id, keeping the canonical order. It reports whether the set
// changed.
func (s *IDSet) Add(id ID) bool {
	i := s.search(id)
	if i < len(s.ids) && s.ids[i] == id {
		return false
	}
	s.ids = append(s.ids, ID{})
	copy(s.ids[i+1:], s.ids[i:])
	s.ids[i] = id
	return true
}

// Remove deletes id if present and reports whether the set changed.
func (s *IDSet) Remove(id ID) bool {
	i := s.search(id)
	if i >= len(s.ids) || s.ids[i] != id {
		return false
	}
	s.ids = append(s.ids[:i], s.ids[i+1:]...)
	return true
}

// RemoveAll deletes every identifier of other from s.
func (s *IDSet) RemoveAll(other IDSet) {
	for _, id := range other.ids {
		s.Remove(id)
	}
}

// Union returns a new set with the elements of both sets.
func (s IDSet) Union(other IDSet) IDSet {
	out := NewIDSet(s.ids...)
	for _, id := range other.ids {
		out.Add(id)
	}
	return out
}

// Clone returns an independent copy.
func (s IDSet) Clone() IDSet {
	return IDSet{ids: append([]ID(nil), s.ids...)}
}

// RawIDs returns the backing sorted slice; callers must not mutate it. The
// wire codec iterates it to avoid the copy IDs() makes on every encode.
func (s IDSet) RawIDs() []ID { return s.ids }

// IDSetFromSorted adopts ids as a set, taking ownership of the slice. It
// trusts the canonical order when it holds and re-normalizes otherwise —
// the defensive path for sets decoded from untrusted wire input.
func IDSetFromSorted(ids []ID) IDSet {
	for i := 1; i < len(ids); i++ {
		if !ids[i-1].Less(ids[i]) {
			return NewIDSet(ids...)
		}
	}
	if len(ids) == 0 {
		ids = nil
	}
	return IDSet{ids: ids}
}

// Equal reports whether both sets hold exactly the same identifiers.
func (s IDSet) Equal(other IDSet) bool {
	if len(s.ids) != len(other.ids) {
		return false
	}
	for i := range s.ids {
		if s.ids[i] != other.ids[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string encoding, used as an equality key by
// consensus algorithms that compare estimates (Mostéfaoui–Raynal Phase 2).
func (s IDSet) Key() string {
	b := make([]byte, 0, len(s.ids)*IDWireBytes)
	for _, id := range s.ids {
		b = append(b,
			byte(id.Sender>>24), byte(id.Sender>>16), byte(id.Sender>>8), byte(id.Sender),
			byte(id.Seq>>56), byte(id.Seq>>48), byte(id.Seq>>40), byte(id.Seq>>32),
			byte(id.Seq>>24), byte(id.Seq>>16), byte(id.Seq>>8), byte(id.Seq),
		)
	}
	return string(b)
}

// WireSize implements stack.Message: identifiers only, independent of the
// size of the underlying messages. This is the decoupling that motivates
// indirect consensus.
func (s IDSet) WireSize() int { return 4 + len(s.ids)*IDWireBytes }

// GobEncode implements gob.GobEncoder: the set travels as its canonical
// identifier slice (the backing slice is unexported). The live transport no
// longer uses gob — internal/wire has its own binary codec — but the codec's
// differential test keeps a gob baseline, which needs these hooks.
func (s IDSet) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.ids); err != nil {
		return nil, fmt.Errorf("encode id set: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (s *IDSet) GobDecode(data []byte) error {
	var ids []ID
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ids); err != nil {
		return fmt.Errorf("decode id set: %w", err)
	}
	*s = IDSet{}
	for _, id := range ids {
		s.Add(id) // re-normalize defensively
	}
	return nil
}

// String implements fmt.Stringer.
func (s IDSet) String() string {
	out := "{"
	for i, id := range s.ids {
		if i > 0 {
			out += ","
		}
		out += id.String()
	}
	return out + "}"
}
