package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Median() != 0 || s.StdDev() != 0 {
		t.Fatal("empty sample must report zeros")
	}
}

func TestMeanMedian(t *testing.T) {
	var s Sample
	for _, x := range []float64{4, 1, 3, 2, 5} {
		s.Add(x)
	}
	if !almost(s.Mean(), 3) {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if !almost(s.Median(), 3) {
		t.Fatalf("Median = %v", s.Median())
	}
	if !almost(s.Min(), 1) || !almost(s.Max(), 5) {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestStdDev(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if !almost(s.StdDev(), 2) {
		t.Fatalf("StdDev = %v, want 2", s.StdDev())
	}
}

func TestQuantile(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Quantile(0.95); !almost(got, 95) {
		t.Fatalf("P95 = %v", got)
	}
	if got := s.Quantile(0); !almost(got, 1) {
		t.Fatalf("Q0 = %v", got)
	}
	if got := s.Quantile(1); !almost(got, 100) {
		t.Fatalf("Q1 = %v", got)
	}
}

func TestAddAfterQuantile(t *testing.T) {
	var s Sample
	s.Add(10)
	_ = s.Median()
	s.Add(1) // must re-sort lazily
	if !almost(s.Min(), 1) {
		t.Fatalf("Min after late Add = %v", s.Min())
	}
}

func TestSummarize(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 3} {
		s.Add(x)
	}
	sum := s.Summarize()
	if sum.N != 3 || !almost(sum.Mean, 2) || !almost(sum.Min, 1) || !almost(sum.Max, 3) {
		t.Fatalf("Summary = %+v", sum)
	}
}

// Property: quantiles are monotone and bounded by min/max.
func TestQuantileMonotoneQuick(t *testing.T) {
	check := func(seed int64, n8 uint8) bool {
		n := int(n8)%50 + 1
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		for i := 0; i < n; i++ {
			s.Add(rng.NormFloat64() * 100)
		}
		prev := s.Min()
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return s.Min() <= s.Mean() && s.Mean() <= s.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestEwma: first observation initializes, later ones move the average by
// alpha, and the zero state reports unseen.
func TestEwma(t *testing.T) {
	e := NewEwma(0.5)
	if e.Seen() || e.Value() != 0 {
		t.Fatalf("fresh ewma not empty: %v", e)
	}
	e.Observe(10)
	if !e.Seen() || e.Value() != 10 {
		t.Fatalf("first observation should initialize: %v", e.Value())
	}
	e.Observe(20)
	if e.Value() != 15 {
		t.Fatalf("Value = %v after 10,20 at alpha 0.5, want 15", e.Value())
	}
	e.Observe(15)
	if e.Value() != 15 {
		t.Fatalf("steady input moved the average: %v", e.Value())
	}
}
