// Package stats provides the statistical accumulators behind the benchmark
// harness: a Sample collects observations (one per measured message) and a
// Summary reports mean, median, percentiles and spread.
//
// Its role maps to the paper's performance metric (Section 4.1): "latency"
// there is the average, over all processes, of the elapsed time between
// abroadcast(m) and adeliver(m), and every figure plots the mean of that
// quantity over the measured messages. internal/bench computes the
// per-message averages and feeds them here; Summary.Mean is the cell value
// the figures print, while the median/P95 fields support the saturation
// analysis (the latency blow-ups of Figures 1 and 3-7 show up as a widening
// mean-median gap before the mean explodes).
package stats

import (
	"math"
	"sort"
)

// Sample accumulates observations.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// sort ensures the backing slice is ordered for quantile queries.
func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank on the
// sorted sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	idx := int(math.Ceil(q*float64(len(s.xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s.xs[idx]
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.Quantile(0) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.Quantile(1) }

// Median returns the 0.5-quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Ewma is a deterministic exponentially weighted moving average, the
// smoother behind the adaptive control plane's signals: relink uses one per
// outgoing stream to smooth probe→digest round-trip samples, and the atomic
// broadcast engine uses one for its propose→decide latency. The zero value
// (with a positive alpha set via NewEwma) has no observations; the first
// observation initializes the average directly, TCP-SRTT style.
type Ewma struct {
	alpha float64
	v     float64
	seen  bool
}

// NewEwma returns an average weighting each new observation by alpha
// (0 < alpha <= 1); 1/8 is the classic TCP smoothing gain.
func NewEwma(alpha float64) Ewma {
	return Ewma{alpha: alpha}
}

// Observe folds one observation into the average.
func (e *Ewma) Observe(x float64) {
	if !e.seen {
		e.v, e.seen = x, true
		return
	}
	e.v += e.alpha * (x - e.v)
}

// Value returns the current average (0 before any observation).
func (e *Ewma) Value() float64 { return e.v }

// Seen reports whether any observation has been folded in.
func (e *Ewma) Seen() bool { return e.seen }

// Summary is an immutable digest of a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	P95    float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize digests the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		Median: s.Median(),
		P95:    s.Quantile(0.95),
		Min:    s.Min(),
		Max:    s.Max(),
		StdDev: s.StdDev(),
	}
}
