package stack

import (
	"math/rand"
	"testing"
	"time"
)

// fakeCtx is a minimal Context capturing sends.
type fakeCtx struct {
	id    ProcessID
	n     int
	sends []struct {
		to  ProcessID
		env Envelope
	}
}

var _ Context = (*fakeCtx)(nil)

func (f *fakeCtx) ID() ProcessID { return f.id }
func (f *fakeCtx) N() int        { return f.n }
func (f *fakeCtx) Now() time.Time {
	return time.Unix(0, 0)
}
func (f *fakeCtx) Send(to ProcessID, env Envelope) {
	f.sends = append(f.sends, struct {
		to  ProcessID
		env Envelope
	}{to, env})
}
func (f *fakeCtx) SetTimer(time.Duration, func()) func() { return func() {} }
func (f *fakeCtx) Work(time.Duration)                    {}
func (f *fakeCtx) Rand() *rand.Rand                      { return rand.New(rand.NewSource(1)) }
func (f *fakeCtx) Crashed() bool                         { return false }
func (f *fakeCtx) Logf(string, ...any)                   {}

type testMsg struct{ size int }

func (m testMsg) WireSize() int { return m.size }

func TestEnvelopeWireSize(t *testing.T) {
	env := Envelope{Proto: ProtoRB, Inst: 4, Msg: testMsg{size: 100}}
	if got := env.WireSize(); got != 112 {
		t.Fatalf("WireSize = %d, want 112 (header 12 + payload 100)", got)
	}
}

func TestNodeDispatchRouting(t *testing.T) {
	ctx := &fakeCtx{id: 1, n: 3}
	node := NewNode(ctx)
	var gotRB, gotCons []uint64
	node.Register(ProtoRB, HandlerFunc(func(_ ProcessID, inst uint64, _ Message) {
		gotRB = append(gotRB, inst)
	}))
	node.Register(ProtoCons, HandlerFunc(func(_ ProcessID, inst uint64, _ Message) {
		gotCons = append(gotCons, inst)
	}))
	node.Dispatch(2, Envelope{Proto: ProtoRB, Inst: 7, Msg: testMsg{}})
	node.Dispatch(2, Envelope{Proto: ProtoCons, Inst: 9, Msg: testMsg{}})
	node.Dispatch(2, Envelope{Proto: ProtoFD, Msg: testMsg{}}) // unregistered: dropped
	if len(gotRB) != 1 || gotRB[0] != 7 {
		t.Fatalf("rb got %v", gotRB)
	}
	if len(gotCons) != 1 || gotCons[0] != 9 {
		t.Fatalf("cons got %v", gotCons)
	}
}

func TestProtoSendWraps(t *testing.T) {
	ctx := &fakeCtx{id: 1, n: 3}
	node := NewNode(ctx)
	p := node.Proto(ProtoCons)
	p.Send(2, 5, testMsg{size: 10})
	if len(ctx.sends) != 1 {
		t.Fatalf("sends = %d", len(ctx.sends))
	}
	s := ctx.sends[0]
	if s.to != 2 || s.env.Proto != ProtoCons || s.env.Inst != 5 {
		t.Fatalf("send = %+v", s)
	}
}

func TestBroadcastIncludesSelfLast(t *testing.T) {
	ctx := &fakeCtx{id: 2, n: 3}
	node := NewNode(ctx)
	node.Proto(ProtoRB).Broadcast(0, testMsg{})
	if len(ctx.sends) != 3 {
		t.Fatalf("broadcast sent %d messages, want 3", len(ctx.sends))
	}
	// Remote destinations first, self last.
	if ctx.sends[len(ctx.sends)-1].to != 2 {
		t.Fatalf("self-delivery not last: %+v", ctx.sends)
	}
	seen := map[ProcessID]bool{}
	for _, s := range ctx.sends {
		seen[s.to] = true
	}
	for q := ProcessID(1); q <= 3; q++ {
		if !seen[q] {
			t.Fatalf("broadcast missed %d", q)
		}
	}
}

func TestBroadcastOthersExcludesSelf(t *testing.T) {
	ctx := &fakeCtx{id: 2, n: 4}
	node := NewNode(ctx)
	node.Proto(ProtoRB).BroadcastOthers(0, testMsg{})
	if len(ctx.sends) != 3 {
		t.Fatalf("sent %d, want 3", len(ctx.sends))
	}
	for _, s := range ctx.sends {
		if s.to == 2 {
			t.Fatal("BroadcastOthers sent to self")
		}
	}
}
