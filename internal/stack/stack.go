// Package stack provides the protocol-composition framework shared by the
// simulated and the live (goroutine) runtimes.
//
// A distributed protocol is written once, as an event-driven Handler, and
// executed unchanged on either runtime. This mirrors the design of the Neko
// framework used in the paper, where the same protocol implementation runs in
// a simulated environment and on a real network.
//
// Each process hosts a Node. A Node multiplexes several protocol layers
// (failure detector, reliable broadcast, consensus, atomic broadcast), each
// identified by a ProtoID. Protocol messages travel wrapped in an Envelope
// that carries the protocol id and, for protocols that run many independent
// instances (consensus), an instance number.
//
// All events of a process — message deliveries and timer firings — are
// executed sequentially, so protocol implementations need no internal
// locking.
//
// The Sender hook (Node.SetSender) is the seam the recovery subsystem uses:
// internal/relink installs itself there to sequence and buffer every remote
// send without any protocol layer knowing, which is how the repository
// restores the paper's quasi-reliable-channel assumption over transports
// that lose messages (see internal/relink).
package stack

import (
	"math/rand"
	"sort"
	"time"
)

// ProcessID identifies a process. Processes are numbered 1..n as in the
// paper (Π = {p1, ..., pn}).
type ProcessID int

// Message is any protocol message. WireSize reports the number of bytes the
// message would occupy on the wire; the simulated network charges bandwidth
// and CPU per-byte costs based on it.
type Message interface {
	WireSize() int
}

// ProtoID identifies a protocol layer within a Node.
type ProtoID uint8

// Well-known protocol ids used by this repository's layers.
const (
	ProtoFD    ProtoID = 1 // heartbeat failure detector
	ProtoRB    ProtoID = 2 // reliable broadcast
	ProtoURB   ProtoID = 3 // uniform reliable broadcast
	ProtoCons  ProtoID = 4 // consensus / indirect consensus
	ProtoApp   ProtoID = 5 // application-level traffic (examples)
	ProtoBench ProtoID = 6 // benchmark harness control traffic
	ProtoLink  ProtoID = 7 // reliable-link recovery layer (internal/relink)
	ProtoSync  ProtoID = 8 // payload catch-up fetch/supply (internal/core)
	// ProtoSnapshot carries snapshot state transfer for deep catch-up: a
	// peer behind by more than the consensus decision log can retain is
	// shipped the delivered prefix plus engine state instead of a decision
	// replay (offer/accept/chunk messages, internal/core).
	ProtoSnapshot ProtoID = 9
)

// Envelope wraps a protocol message for transport.
type Envelope struct {
	Proto ProtoID
	Inst  uint64 // instance number (e.g. consensus serial number k); 0 if unused
	Msg   Message
}

// envelopeHeaderBytes approximates the header overhead of the envelope
// (protocol id, instance number, message type tag).
const envelopeHeaderBytes = 12

// WireSize implements Message.
func (e Envelope) WireSize() int {
	return envelopeHeaderBytes + e.Msg.WireSize()
}

// Context is the interface a runtime offers to a process. It is the only
// way protocol code interacts with the outside world, which keeps protocol
// implementations runtime-agnostic.
type Context interface {
	// ID returns this process's id (1-based).
	ID() ProcessID
	// N returns the total number of processes in the system.
	N() int
	// Now returns the current time. Virtual in the simulator, wall-clock
	// in the live runtime.
	Now() time.Time
	// Send transmits an envelope to the given process. Sending to the
	// local process is allowed and is delivered through the normal
	// dispatch path without crossing the network.
	Send(to ProcessID, env Envelope)
	// SetTimer schedules fn to run on this process's event loop after d.
	// The returned function cancels the timer (idempotent).
	SetTimer(d time.Duration, fn func()) (cancel func())
	// Work charges d of CPU time to this process. In the simulator this
	// delays the process's subsequent sends and event handling; in the
	// live runtime it is a no-op. It models computation such as the
	// rcv(v) identifier-set checks of indirect consensus.
	Work(d time.Duration)
	// Rand returns this process's deterministic random source.
	Rand() *rand.Rand
	// Crashed reports whether this process has crashed. A crashed process
	// receives no further events.
	Crashed() bool
	// Logf records a debug log line attributed to this process.
	Logf(format string, args ...any)
}

// Handler is a protocol layer: it receives the messages addressed to its
// ProtoID.
type Handler interface {
	Receive(from ProcessID, inst uint64, m Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from ProcessID, inst uint64, m Message)

// Receive implements Handler.
func (f HandlerFunc) Receive(from ProcessID, inst uint64, m Message) {
	f(from, inst, m)
}

// Sender intercepts outgoing envelopes before they reach the transport. A
// recovery layer (internal/relink) installs one to sequence and buffer
// remote sends; it forwards to Context.Send itself.
type Sender interface {
	Send(to ProcessID, env Envelope)
}

// Node multiplexes protocol layers on a single process.
type Node struct {
	ctx      Context
	handlers map[ProtoID]Handler
	sender   Sender
	group    []ProcessID // nil = every process 1..N (static membership)
}

// NewNode creates a node bound to the given runtime context.
func NewNode(ctx Context) *Node {
	return &Node{
		ctx:      ctx,
		handlers: make(map[ProtoID]Handler),
	}
}

// Context returns the runtime context the node is bound to.
func (n *Node) Context() Context { return n.ctx }

// Register installs the handler for a protocol id. Registering the same id
// twice replaces the previous handler; protocols are wired once at startup.
func (n *Node) Register(p ProtoID, h Handler) {
	n.handlers[p] = h
}

// Dispatch routes an incoming envelope to the protocol layer it belongs to.
// Envelopes for unregistered protocols are dropped; this happens only when a
// stack variant does not include a given layer.
func (n *Node) Dispatch(from ProcessID, env Envelope) {
	if h, ok := n.handlers[env.Proto]; ok {
		h.Receive(from, env.Inst, env.Msg)
	}
}

// SetGroup restricts the node's broadcast fan-out to the given member set
// (sorted copy taken). The dynamic-membership engine calls it when a
// configuration change is delivered, so every layer broadcasting through the
// node — failure detector, diffusion, consensus — targets the live view
// without knowing about membership. A nil group restores the static 1..N
// fan-out. The local process need not be a member: a joiner (or a retired
// leaver) keeps observing group traffic addressed to it point-to-point.
func (n *Node) SetGroup(members []ProcessID) {
	if members == nil {
		n.group = nil
		return
	}
	g := append([]ProcessID(nil), members...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	n.group = g
}

// Group returns the current broadcast member set (nil = all 1..N). The
// returned slice is shared; callers must not mutate it.
func (n *Node) Group() []ProcessID { return n.group }

// SetSender installs an outbound interceptor: every remote send of every
// protocol layer on this node flows through s instead of going straight to
// the transport. Local (self) sends bypass it — they never cross the
// network, so there is nothing to recover. Installing nil restores direct
// transport sends.
func (n *Node) SetSender(s Sender) { n.sender = s }

// send routes one outgoing envelope: through the installed Sender for
// remote destinations, directly to the transport otherwise.
func (n *Node) send(to ProcessID, env Envelope) {
	if n.sender != nil && to != n.ctx.ID() {
		n.sender.Send(to, env)
		return
	}
	n.ctx.Send(to, env)
}

// Proto returns a protocol-scoped sending helper for the given layer.
func (n *Node) Proto(id ProtoID) Proto {
	return Proto{node: n, id: id}
}

// Proto is a protocol-scoped view of a Node: sends are automatically wrapped
// in an Envelope carrying the protocol's id.
type Proto struct {
	node *Node
	id   ProtoID
}

// Ctx returns the underlying runtime context.
func (p Proto) Ctx() Context { return p.node.ctx }

// Send transmits m to process q under this protocol's id.
func (p Proto) Send(q ProcessID, inst uint64, m Message) {
	p.node.send(q, Envelope{Proto: p.id, Inst: inst, Msg: m})
}

// Broadcast transmits m to every process of the node's group (all 1..N when
// no group is set), including the sender. The paper's pseudo-code "send to
// all" includes the sending process; local delivery does not cross the
// network.
func (p Proto) Broadcast(inst uint64, m Message) {
	self := p.node.ctx.ID()
	if g := p.node.group; g != nil {
		for _, q := range g {
			if q == self {
				continue
			}
			p.Send(q, inst, m)
		}
		// Self-delivery happens even when self is outside the group: a
		// broadcasting joiner still processes its own message locally.
		p.Send(self, inst, m)
		return
	}
	n := p.node.ctx.N()
	for q := ProcessID(1); q <= ProcessID(n); q++ {
		if q == self {
			continue
		}
		p.Send(q, inst, m)
	}
	// Deliver to self last so that, on the live runtime, remote sends are
	// already queued before local processing triggers follow-up traffic.
	p.Send(self, inst, m)
}

// BroadcastOthers transmits m to every process of the node's group except
// the sender (all 1..N when no group is set).
func (p Proto) BroadcastOthers(inst uint64, m Message) {
	self := p.node.ctx.ID()
	if g := p.node.group; g != nil {
		for _, q := range g {
			if q != self {
				p.Send(q, inst, m)
			}
		}
		return
	}
	n := p.node.ctx.N()
	for q := ProcessID(1); q <= ProcessID(n); q++ {
		if q != self {
			p.Send(q, inst, m)
		}
	}
}
