// Package live executes protocol stacks on real goroutines and channels:
// one event-loop goroutine per process, an in-memory network with
// configurable latency, and wall-clock timers.
//
// The protocol implementations are exactly the ones the simulator runs —
// they only see stack.Context. This mirrors the Neko property the paper's
// evaluation relied on: one implementation, simulated or real execution.
//
// All events of a process (message deliveries, timer callbacks, injected
// actions) are serialized through its mailbox, so protocol code remains
// lock-free.
package live

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"abcast/internal/netmodel"
	"abcast/internal/stack"
)

// Option configures a Network.
type Option func(*config)

type config struct {
	latency time.Duration
	jitter  time.Duration
	topo    *netmodel.Topology
	seed    int64
}

// WithLatency sets the one-way message latency (default 200µs).
func WithLatency(d time.Duration) Option { return func(c *config) { c.latency = d } }

// WithJitter adds uniform ±jitter to each message's latency.
func WithJitter(d time.Duration) Option { return func(c *config) { c.jitter = d } }

// WithTopology gives each directed link the latency and jitter of the
// topology's site-pair link, overriding the uniform WithLatency/WithJitter
// values (link bandwidth is not modelled on the live runtime — messages
// cross an in-memory channel, so transmission time is effectively zero).
// A nil topology leaves the uniform network in place.
func WithTopology(t *netmodel.Topology) Option { return func(c *config) { c.topo = t } }

// WithSeed seeds the per-process random sources.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// Network is an in-memory message-passing network of n processes. Each
// ordered process pair is connected by a FIFO link (like a TCP connection):
// messages between the same two processes are delivered in send order.
type Network struct {
	cfg   config
	procs []*Proc // index 0 unused
	wg    sync.WaitGroup
	timer timerSet

	linkMu sync.Mutex
	links  map[linkKey]*link
	stop   chan struct{}
}

type linkKey struct{ from, to stack.ProcessID }

// link is a FIFO delivery pipe: a single goroutine drains queued messages
// in order, sleeping until each one's delivery deadline.
type link struct {
	queue *mailbox
}

// getLink returns (starting if needed) the link from src to dst.
func (net *Network) getLink(from, to stack.ProcessID) *link {
	net.linkMu.Lock()
	defer net.linkMu.Unlock()
	k := linkKey{from, to}
	l, ok := net.links[k]
	if !ok {
		l = &link{queue: newMailbox()}
		net.links[k] = l
		net.wg.Add(1)
		go func() {
			defer net.wg.Done()
			for {
				fn, ok := l.queue.get(net.stop)
				if !ok {
					return
				}
				fn()
			}
		}()
	}
	return l
}

// NewNetwork starts n process event loops.
func NewNetwork(n int, opts ...Option) *Network {
	cfg := config{latency: 200 * time.Microsecond, seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	net := &Network{
		cfg:   cfg,
		procs: make([]*Proc, n+1),
		links: make(map[linkKey]*link, n*n),
		stop:  make(chan struct{}),
	}
	for i := 1; i <= n; i++ {
		p := &Proc{
			net:   net,
			id:    stack.ProcessID(i),
			n:     n,
			inbox: newMailbox(),
			stop:  make(chan struct{}),
			done:  make(chan struct{}),
			rng:   rand.New(rand.NewSource(cfg.seed + int64(i)*104729)),
		}
		p.node.Store(stack.NewNode(p))
		net.procs[i] = p
		net.wg.Add(1)
		go p.loop(&net.wg)
	}
	return net
}

// N returns the number of processes.
func (net *Network) N() int { return len(net.procs) - 1 }

// Node returns the protocol node of process p for wiring layers. Wire all
// layers before injecting traffic.
func (net *Network) Node(p stack.ProcessID) *stack.Node { return net.procs[p].node.Load() }

// Proc returns the runtime context of process p.
func (net *Network) Proc(p stack.ProcessID) *Proc { return net.procs[p] }

// Do runs fn on process p's event loop (used to inject application
// actions such as broadcasts).
func (net *Network) Do(p stack.ProcessID, fn func()) { net.procs[p].inbox.put(fn) }

// Crash stops process p: it handles no further events and its pending sends
// are dropped. Restart revives it as a fresh incarnation.
func (net *Network) Crash(p stack.ProcessID) { net.procs[p].crashed.Store(true) }

// Restart revives a crashed process as a fresh incarnation: a new protocol
// node on the same event loop. Bumping the incarnation epoch invalidates
// every timer the previous incarnation armed (a real restarted process has
// no memory of its timers), while messages still in flight toward p deliver
// into the new incarnation — the at-least-once surface a restarted process
// faces on a real network. The caller wires a fresh protocol stack on the
// returned node (via Do, so no event precedes complete wiring), typically
// rehydrating it from a persist.Store the previous incarnation wrote.
// Restart of a non-crashed process is a caller bug: the old stack would
// keep running against a node no longer receiving traffic.
func (net *Network) Restart(p stack.ProcessID) *stack.Node {
	pr := net.procs[p]
	pr.epoch.Add(1) // kill the previous incarnation's timers first
	node := stack.NewNode(pr)
	pr.node.Store(node)
	pr.crashed.Store(false)
	return node
}

// Close shuts down every process loop and link, waits for them to exit,
// then stops all outstanding timers.
func (net *Network) Close() {
	net.linkMu.Lock()
	select {
	case <-net.stop:
	default:
		close(net.stop)
	}
	for _, l := range net.links {
		l.queue.close()
	}
	net.linkMu.Unlock()
	for _, p := range net.procs[1:] {
		p.closeOnce.Do(func() { close(p.stop) })
		p.inbox.close()
	}
	net.wg.Wait()
	net.timer.stopAll()
}

// timerSet tracks outstanding time.Timers so Close can stop them. Timers
// are created while holding the registry lock, which orders the callback's
// self-deregistration after registration.
type timerSet struct {
	mu     sync.Mutex
	timers map[uint64]*time.Timer
	nextID uint64
}

// schedule arms fn to run after d. The returned function cancels the timer
// (best effort; a concurrently firing callback may still run).
func (ts *timerSet) schedule(d time.Duration, fn func()) (cancel func()) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.timers == nil {
		ts.timers = make(map[uint64]*time.Timer)
	}
	id := ts.nextID
	ts.nextID++
	t := time.AfterFunc(d, func() {
		ts.remove(id)
		fn()
	})
	ts.timers[id] = t
	return func() {
		ts.mu.Lock()
		defer ts.mu.Unlock()
		if t, ok := ts.timers[id]; ok {
			t.Stop()
			delete(ts.timers, id)
		}
	}
}

func (ts *timerSet) remove(id uint64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	delete(ts.timers, id)
}

func (ts *timerSet) stopAll() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, t := range ts.timers {
		t.Stop()
	}
	ts.timers = nil
}

// Proc is one live process; it implements stack.Context.
type Proc struct {
	net       *Network
	id        stack.ProcessID
	n         int
	node      atomic.Pointer[stack.Node] // swapped by Network.Restart
	inbox     *mailbox
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	crashed   atomic.Bool
	// epoch counts incarnations; Network.Restart bumps it. Timer callbacks
	// capture the epoch they were armed under and drop themselves on
	// mismatch, so a dead incarnation's timers never fire into a new one.
	epoch atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand
}

var _ stack.Context = (*Proc)(nil)

// loop is the process event loop; all protocol code of this process runs
// here.
func (p *Proc) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	defer close(p.done)
	for {
		fn, ok := p.inbox.get(p.stop)
		if !ok {
			return
		}
		if !p.crashed.Load() {
			fn()
		}
	}
}

// ID implements stack.Context.
func (p *Proc) ID() stack.ProcessID { return p.id }

// N implements stack.Context.
func (p *Proc) N() int { return p.n }

// Now implements stack.Context.
func (p *Proc) Now() time.Time { return time.Now() }

// Rand implements stack.Context.
func (p *Proc) Rand() *rand.Rand { return p.rng }

// Crashed implements stack.Context.
func (p *Proc) Crashed() bool { return p.crashed.Load() }

// Work implements stack.Context; on the live runtime computation costs are
// real, so no accounting is needed.
func (p *Proc) Work(time.Duration) {}

// Logf implements stack.Context.
func (p *Proc) Logf(format string, args ...any) {
	// The live runtime is used by examples; keep it quiet by default.
	_ = format
	_ = args
}

// Send implements stack.Context: deliver env to the destination's mailbox
// after the configured latency, in per-link FIFO order (like a TCP
// connection). Self-sends skip the network but still go through the
// mailbox, preserving the "events are serialized" contract.
func (p *Proc) Send(to stack.ProcessID, env stack.Envelope) {
	if p.crashed.Load() {
		return
	}
	from := p.id
	dst := p.net.procs[to]
	if to == p.id {
		dst.inbox.put(func() { dst.node.Load().Dispatch(from, env) })
		return
	}
	d := p.net.cfg.latency
	j := p.net.cfg.jitter
	if t := p.net.cfg.topo; t != nil {
		l := t.LinkOf(from, to)
		d, j = l.Latency, l.Jitter
	}
	if j > 0 {
		p.rngMu.Lock()
		d += time.Duration(p.rng.Int63n(int64(2*j))) - j
		p.rngMu.Unlock()
		if d < 0 {
			d = 0
		}
	}
	deadline := time.Now().Add(d)
	p.net.getLink(from, to).queue.put(func() {
		if wait := time.Until(deadline); wait > 0 {
			select {
			case <-p.net.stop:
				return
			case <-time.After(wait):
			}
		}
		if !p.crashed.Load() { // crashed senders lose in-flight messages
			dst.inbox.put(func() { dst.node.Load().Dispatch(from, env) })
		}
	})
}

// SetTimer implements stack.Context. The callback belongs to the arming
// incarnation: it is dropped if the process crashed or restarted (epoch
// mismatch) before it runs — checked again at execution, because a restart
// may land between the enqueue and the event loop draining it.
func (p *Proc) SetTimer(d time.Duration, fn func()) (cancel func()) {
	var cancelled atomic.Bool
	epoch := p.epoch.Load()
	stop := p.net.timer.schedule(d, func() {
		if cancelled.Load() || p.crashed.Load() || p.epoch.Load() != epoch {
			return
		}
		p.inbox.put(func() {
			if !cancelled.Load() && p.epoch.Load() == epoch {
				fn()
			}
		})
	})
	return func() {
		cancelled.Store(true)
		stop()
	}
}

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("live-p%d", p.id) }
