package live

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"abcast/internal/stack"
)

type pingMsg struct{ v int }

func (pingMsg) WireSize() int { return 4 }

// capture installs a handler collecting (from, msg) pairs under a lock.
type capture struct {
	mu  sync.Mutex
	got []int
}

func (c *capture) handler() stack.Handler {
	return stack.HandlerFunc(func(_ stack.ProcessID, _ uint64, m stack.Message) {
		c.mu.Lock()
		defer c.mu.Unlock()
		if p, ok := m.(pingMsg); ok {
			c.got = append(c.got, p.v)
		}
	})
}

func (c *capture) snapshot() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.got...)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestDeliveryAndFIFOPerSender(t *testing.T) {
	net := NewNetwork(2, WithLatency(100*time.Microsecond))
	defer net.Close()
	var c capture
	net.Node(2).Register(stack.ProtoApp, c.handler())
	const count = 50
	net.Do(1, func() {
		for i := 0; i < count; i++ {
			net.Proc(1).Send(2, stack.Envelope{Proto: stack.ProtoApp, Msg: pingMsg{v: i}})
		}
	})
	waitFor(t, 5*time.Second, func() bool { return len(c.snapshot()) == count })
	// With constant latency, per-sender order is preserved.
	for i, v := range c.snapshot() {
		if v != i {
			t.Fatalf("order broken at %d: %v", i, c.snapshot())
		}
	}
}

func TestSelfSendServedOnLoop(t *testing.T) {
	net := NewNetwork(1)
	defer net.Close()
	var c capture
	net.Node(1).Register(stack.ProtoApp, c.handler())
	net.Do(1, func() {
		net.Proc(1).Send(1, stack.Envelope{Proto: stack.ProtoApp, Msg: pingMsg{v: 42}})
	})
	waitFor(t, time.Second, func() bool { return len(c.snapshot()) == 1 })
}

func TestCrashStopsDelivery(t *testing.T) {
	net := NewNetwork(2, WithLatency(50*time.Millisecond))
	defer net.Close()
	var c capture
	net.Node(2).Register(stack.ProtoApp, c.handler())
	net.Do(1, func() {
		net.Proc(1).Send(2, stack.Envelope{Proto: stack.ProtoApp, Msg: pingMsg{v: 1}})
	})
	// Crash the *sender* while the message is in flight: live semantics
	// drop in-flight messages of crashed senders.
	time.Sleep(10 * time.Millisecond)
	net.Crash(1)
	time.Sleep(100 * time.Millisecond)
	if len(c.snapshot()) != 0 {
		t.Fatal("in-flight message from crashed sender delivered")
	}
}

func TestCrashedReceiverIgnores(t *testing.T) {
	net := NewNetwork(2, WithLatency(time.Millisecond))
	defer net.Close()
	var c capture
	net.Node(2).Register(stack.ProtoApp, c.handler())
	net.Crash(2)
	net.Do(1, func() {
		net.Proc(1).Send(2, stack.Envelope{Proto: stack.ProtoApp, Msg: pingMsg{v: 1}})
	})
	time.Sleep(50 * time.Millisecond)
	if len(c.snapshot()) != 0 {
		t.Fatal("crashed receiver processed a message")
	}
}

func TestTimerFiresAndCancels(t *testing.T) {
	net := NewNetwork(1)
	defer net.Close()
	var fired, cancelled atomic.Int32
	done := make(chan struct{})
	net.Do(1, func() {
		net.Proc(1).SetTimer(5*time.Millisecond, func() {
			fired.Add(1)
			close(done)
		})
		cancel := net.Proc(1).SetTimer(5*time.Millisecond, func() { cancelled.Add(1) })
		cancel()
	})
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("timer never fired")
	}
	time.Sleep(20 * time.Millisecond)
	if fired.Load() != 1 {
		t.Fatalf("fired %d times", fired.Load())
	}
	if cancelled.Load() != 0 {
		t.Fatal("cancelled timer fired")
	}
}

func TestCloseIdempotentAndJoins(t *testing.T) {
	net := NewNetwork(3)
	net.Close()
	net.Close() // second close must be a no-op
}

func TestMailboxCloseDropsItems(t *testing.T) {
	m := newMailbox()
	m.put(func() {})
	m.close()
	m.put(func() {}) // dropped
	stop := make(chan struct{})
	close(stop)
	if _, ok := m.get(stop); ok {
		t.Fatal("got an item from a closed mailbox with closed stop")
	}
}

func TestMailboxFIFO(t *testing.T) {
	m := newMailbox()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		m.put(func() { got = append(got, i) })
	}
	stop := make(chan struct{})
	for i := 0; i < 10; i++ {
		fn, ok := m.get(stop)
		if !ok {
			t.Fatal("mailbox empty early")
		}
		fn()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("mailbox not FIFO: %v", got)
		}
	}
}

func TestContextBasics(t *testing.T) {
	net := NewNetwork(2, WithSeed(9))
	defer net.Close()
	p := net.Proc(1)
	if p.ID() != 1 || p.N() != 2 {
		t.Fatal("identity wrong")
	}
	if p.Crashed() {
		t.Fatal("fresh process crashed")
	}
	p.Work(time.Hour) // must be a no-op, not a sleep
	if got := p.String(); got != "live-p1" {
		t.Fatalf("String = %q", got)
	}
	if p.Rand() == nil {
		t.Fatal("nil rng")
	}
	if time.Since(p.Now()) > time.Minute {
		t.Fatal("Now() not wall clock")
	}
}
