package live

import "sync"

// mailbox is an unbounded FIFO of work items. Unboundedness matters:
// protocol handlers send while handling, so a bounded inbox could deadlock
// two processes sending to each other under backpressure.
type mailbox struct {
	mu     sync.Mutex
	items  []func()
	signal chan struct{}
	closed bool
}

func newMailbox() *mailbox {
	return &mailbox{signal: make(chan struct{}, 1)}
}

// put enqueues an item; items enqueued after close are dropped.
func (m *mailbox) put(fn func()) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.items = append(m.items, fn)
	m.mu.Unlock()
	select {
	case m.signal <- struct{}{}:
	default:
	}
}

// get dequeues the next item, blocking until one is available or stop
// closes. It returns false only on stop.
func (m *mailbox) get(stop <-chan struct{}) (func(), bool) {
	for {
		m.mu.Lock()
		if len(m.items) > 0 {
			fn := m.items[0]
			m.items[0] = nil
			m.items = m.items[1:]
			m.mu.Unlock()
			return fn, true
		}
		m.mu.Unlock()
		select {
		case <-m.signal:
		case <-stop:
			return nil, false
		}
	}
}

// close marks the mailbox closed; pending items are discarded.
func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.items = nil
}
