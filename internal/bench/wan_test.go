package bench

// Tests of the geo-replication figures: the WAN point behaves sanely (all
// delivered, latency dominated by inter-site propagation), the partition
// episode composes with the harness under both semantics, and pipelining
// pays on the WAN exactly as figure g1 claims.

import (
	"testing"
	"time"

	"abcast/internal/core"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
)

// wanPoint is a small WAN experiment, optionally with the g2 partition
// episode.
func wanPoint(w int, episode bool) Experiment {
	e := Experiment{
		Name:       "wan-point",
		N:          3,
		Params:     netmodel.WAN3Sites(),
		Variant:    core.VariantIndirectCT,
		RB:         rbcast.KindEager,
		Throughput: 100,
		Payload:    100,
		Messages:   150,
		Warmup:     30,
		Seed:       11,
		MaxBatch:   4,
		Pipeline:   w,
		MaxVirtual: 60 * time.Second,
	}
	if episode {
		e.PartitionFrom = 400 * time.Millisecond
		e.PartitionUntil = 1100 * time.Millisecond
		e.PartitionMinority = []int{3}
	}
	return e
}

// TestPartitionMinorityValidated: minority ids outside 1..N must be an
// error, not a silently ineffective partition.
func TestPartitionMinorityValidated(t *testing.T) {
	e := wanPoint(1, true)
	e.PartitionMinority = []int{5} // n=3: out of range
	if _, err := Run(e); err == nil {
		t.Fatal("out-of-range partition minority accepted")
	}
}

// TestWANLatencyDominatedByPropagation: on the 3-site WAN an unloaded
// delivery cannot beat one inter-site crossing, and must stay within a
// small multiple of the slowest round trip.
func TestWANLatencyDominatedByPropagation(t *testing.T) {
	e := wanPoint(1, false)
	e.Throughput = 10
	e.Messages, e.Warmup, e.MaxBatch = 40, 10, 0
	r, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if r.Undelivered != 0 {
		t.Fatalf("%d undelivered on an unloaded WAN", r.Undelivered)
	}
	if r.Latency.Mean < 40 { // ms: the fastest inter-site link
		t.Fatalf("mean latency %.1f ms below one WAN crossing", r.Latency.Mean)
	}
	if r.Latency.Mean > 2000 {
		t.Fatalf("mean latency %.1f ms absurd for an unloaded WAN", r.Latency.Mean)
	}
}

// TestWANPipelineCollapsesQueueing is the acceptance check of figure g1:
// with per-instance work capped, a pipelined window must cut the WAN mean
// latency well below the saturated serial engine's.
func TestWANPipelineCollapsesQueueing(t *testing.T) {
	serial, err := Run(wanPoint(1, false))
	if err != nil {
		t.Fatal(err)
	}
	piped, err := Run(wanPoint(4, false))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("W=1: %.1f ms, W=4: %.1f ms", serial.Latency.Mean, piped.Latency.Mean)
	if piped.Latency.Mean*2 > serial.Latency.Mean {
		t.Fatalf("W=4 latency %.1f ms not well below serial %.1f ms",
			piped.Latency.Mean, serial.Latency.Mean)
	}
}

// TestWANPartitionEpisodeDelayRecovers: with the default (delay) semantics
// the g2 episode must cost latency but never messages — traffic of the cut
// minority waits for the heal, then everything is delivered.
func TestWANPartitionEpisodeDelayRecovers(t *testing.T) {
	whole, err := Run(wanPoint(4, false))
	if err != nil {
		t.Fatal(err)
	}
	cut, err := Run(wanPoint(4, true))
	if err != nil {
		t.Fatal(err)
	}
	if cut.Undelivered != 0 {
		t.Fatalf("%d messages undelivered despite delay semantics and a heal", cut.Undelivered)
	}
	t.Logf("mean latency: whole %.1f ms, with episode %.1f ms", whole.Latency.Mean, cut.Latency.Mean)
	if cut.Latency.Mean <= whole.Latency.Mean {
		t.Fatalf("partition episode cost no latency: %.1f vs %.1f ms",
			cut.Latency.Mean, whole.Latency.Mean)
	}
}

// TestWANPartitionEpisodeDropLosesMinority: under drop semantics the
// minority misses decide relays for good, so the run must end saturated
// (undelivered messages at the horizon) — the honest signal that black-hole
// partitions break the channel assumption the protocol needs.
func TestWANPartitionEpisodeDropLosesMinority(t *testing.T) {
	e := wanPoint(4, true)
	e.PartitionDrop = true
	// Cut late enough that some measured messages complete everywhere
	// before the episode starts.
	e.PartitionFrom = 800 * time.Millisecond
	e.PartitionUntil = 1300 * time.Millisecond
	e.MaxVirtual = 20 * time.Second // saturated runs always reach the horizon
	r, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if r.Undelivered == 0 {
		t.Fatal("drop-mode partition lost nothing; either the episode never fired or drops are not modelled")
	}
	if r.Delivered == 0 {
		t.Fatal("majority delivered nothing during/after the episode")
	}
}
