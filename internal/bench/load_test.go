package bench

// Unit tests of the time-varying offered-load schedule: rate lookup, phase
// skipping, validation, the constant-load equivalence the byte-stable bench
// trajectory depends on, and the scaled-schedule helpers figure p2 uses.

import (
	"math/rand"
	"testing"
	"time"
)

// TestOfferedAt: phase lookup, zero-rate boundaries, hold-last beyond the
// schedule, and the constant fallback.
func TestOfferedAt(t *testing.T) {
	e := Experiment{
		N: 3,
		Load: []LoadPhase{
			{Duration: 100 * time.Millisecond, Throughput: 0},
			{Duration: 100 * time.Millisecond, Throughput: 1000},
			{Duration: 100 * time.Millisecond, Throughput: 200},
		},
	}
	cases := []struct {
		at       time.Duration
		rate     float64
		boundary time.Duration
	}{
		{0, 0, 100 * time.Millisecond},
		{50 * time.Millisecond, 0, 100 * time.Millisecond},
		{100 * time.Millisecond, 1000, 200 * time.Millisecond},
		{150 * time.Millisecond, 1000, 200 * time.Millisecond},
		{250 * time.Millisecond, 200, 300 * time.Millisecond},
		{time.Second, 200, 0}, // beyond the schedule: last rate holds
	}
	for _, c := range cases {
		rate, boundary := e.offeredAt(c.at)
		if rate != c.rate || boundary != c.boundary {
			t.Fatalf("offeredAt(%v) = (%v, %v), want (%v, %v)", c.at, rate, boundary, c.rate, c.boundary)
		}
	}
	flat := Experiment{N: 3, Throughput: 500}
	if rate, _ := flat.offeredAt(time.Hour); rate != 500 {
		t.Fatalf("constant fallback broken: %v", rate)
	}
}

// TestValidLoad: schedules must have positive durations, non-negative
// rates, and a positive final rate.
func TestValidLoad(t *testing.T) {
	ok := []LoadPhase{{Duration: time.Second, Throughput: 0}, {Duration: time.Second, Throughput: 10}}
	if err := validLoad(ok); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := [][]LoadPhase{
		{{Duration: 0, Throughput: 10}},
		{{Duration: time.Second, Throughput: -1}},
		{{Duration: time.Second, Throughput: 10}, {Duration: time.Second, Throughput: 0}},
	}
	for i, load := range bad {
		if err := validLoad(load); err == nil {
			t.Fatalf("invalid schedule %d accepted", i)
		}
	}
}

// TestSendScheduleFollowsPhases: no sends land inside a silent phase, the
// burst phase is denser than the tail, and the same seed reproduces the
// same schedule exactly.
func TestSendScheduleFollowsPhases(t *testing.T) {
	e := Experiment{
		N: 3,
		Load: []LoadPhase{
			{Duration: 200 * time.Millisecond, Throughput: 0},
			{Duration: 500 * time.Millisecond, Throughput: 2000},
			{Duration: 500 * time.Millisecond, Throughput: 100},
		},
	}
	gen := func() []sendEvent {
		rng := rand.New(rand.NewSource(42))
		return sendSchedule(&e, rng, 600)
	}
	sched := gen()
	if len(sched) != 600 {
		t.Fatalf("schedule has %d events, want 600", len(sched))
	}
	burst, tail := 0, 0
	for _, ev := range sched {
		if ev.at < 200*time.Millisecond {
			t.Fatalf("send at %v inside the silent phase", ev.at)
		}
		switch {
		case ev.at < 700*time.Millisecond:
			burst++
		case ev.at < 1200*time.Millisecond:
			tail++
		}
	}
	// ~1000 expected in the burst half-second vs ~50 in the tail one.
	if burst < tail*5 {
		t.Fatalf("burst not denser than tail: %d vs %d sends", burst, tail)
	}
	again := gen()
	for i := range sched {
		if sched[i] != again[i] {
			t.Fatalf("schedule not deterministic at event %d: %+v vs %+v", i, sched[i], again[i])
		}
	}
}

// TestSendScheduleConstantMatchesLegacy: with no Load schedule the
// generator must reproduce the original constant-rate arithmetic exactly —
// same rng draws, same durations — which is what keeps the pinned
// BENCH_<rev>.json byte-identical across this refactor.
func TestSendScheduleConstantMatchesLegacy(t *testing.T) {
	e := Experiment{N: 3, Throughput: 900}
	rng := rand.New(rand.NewSource(7))
	sched := sendSchedule(&e, rng, 300)

	legacy := rand.New(rand.NewSource(7))
	perProc := e.Throughput / float64(e.N)
	next := make([]time.Duration, e.N+1)
	for k := 0; k < 300; k++ {
		p := k%e.N + 1
		gap := time.Duration(legacy.ExpFloat64() / perProc * float64(time.Second))
		next[p] += gap
		if sched[k].p != 0 && int(sched[k].p) != p || sched[k].at != next[p] {
			t.Fatalf("event %d diverged from the legacy generator: %+v vs (p%d, %v)", k, sched[k], p, next[p])
		}
	}
}

// TestScaleLoadAndTotal: scaling shrinks durations, preserves rates, and
// the integral tracks it.
func TestScaleLoadAndTotal(t *testing.T) {
	load := []LoadPhase{
		{Duration: 400 * time.Millisecond, Throughput: 1000},
		{Duration: 600 * time.Millisecond, Throughput: 500},
	}
	if got := loadTotal(load); got != 700 {
		t.Fatalf("loadTotal = %d, want 700", got)
	}
	half := scaleLoad(load, 0.5)
	if half[0].Duration != 200*time.Millisecond || half[0].Throughput != 1000 {
		t.Fatalf("scaleLoad broke phase 0: %+v", half[0])
	}
	if got := loadTotal(half); got != 350 {
		t.Fatalf("scaled loadTotal = %d, want 350", got)
	}
	if got := loadTotal(nil); got != 60 {
		t.Fatalf("empty-schedule floor = %d, want 60", got)
	}
}
