package bench

import (
	"testing"
	"time"

	"abcast/internal/core"
	"abcast/internal/rbcast"
)

// pipelinePoint is one point of the p1 ablation, shrunk to test size: an
// offered load far above the serial engine's ceiling when per-instance work
// is capped, on the ablation's latency-dominated network, so the delivered
// rate is limited by the ordering path alone.
func pipelinePoint(w int) Experiment {
	return Experiment{
		Name:       "pipeline-ablation",
		N:          3,
		Params:     PipelineParams(),
		Variant:    core.VariantIndirectCT,
		RB:         rbcast.KindEager,
		Throughput: 3000,
		Payload:    1,
		Messages:   2500,
		Warmup:     100,
		Seed:       5,
		MaxBatch:   4,
		Pipeline:   w,
		MaxVirtual: time.Second,
	}
}

// TestPipelineRaisesDeliveredRate is the acceptance check of the pipeline
// extension: with per-instance work capped (MaxBatch), a window of 4
// concurrent consensus instances must deliver measurably more messages per
// second than the paper's serial engine on the IndirectCT stack.
func TestPipelineRaisesDeliveredRate(t *testing.T) {
	serial, err := Run(pipelinePoint(1))
	if err != nil {
		t.Fatal(err)
	}
	pipelined, err := Run(pipelinePoint(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("W=1: rate=%.0f msg/s delivered=%d undelivered=%d virtual=%v",
		serial.Rate, serial.Delivered, serial.Undelivered, serial.Virtual)
	t.Logf("W=4: rate=%.0f msg/s delivered=%d undelivered=%d virtual=%v",
		pipelined.Rate, pipelined.Delivered, pipelined.Undelivered, pipelined.Virtual)
	if serial.Rate <= 0 {
		t.Fatal("serial engine delivered nothing; the workload is broken")
	}
	if pipelined.Rate < serial.Rate*1.3 {
		t.Fatalf("pipelining W=4 did not raise the delivered rate measurably: %.0f vs %.0f msg/s",
			pipelined.Rate, serial.Rate)
	}
}

// TestPipelineUnboundedBatchControl is the ablation's control arm: with the
// paper's unbounded whole-set batching, the serial engine already absorbs
// load into larger batches, so a pipelined window must at least not hurt
// (and everything must still be delivered).
func TestPipelineUnboundedBatchControl(t *testing.T) {
	for _, w := range []int{1, 4} {
		e := pipelinePoint(w)
		e.MaxBatch = 0
		e.Throughput = 800
		e.MaxVirtual = 20 * time.Second
		r, err := Run(e)
		if err != nil {
			t.Fatal(err)
		}
		if r.Undelivered != 0 {
			t.Fatalf("W=%d: %d messages undelivered with unbounded batching", w, r.Undelivered)
		}
	}
}
