package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"abcast/internal/trace"
)

// The JSON output is the machine-readable face of the harness: one object
// per figure, one series per stack, one point per x value, every counter of
// the Result included except host wall time — everything emitted is a
// function of (figure, scale, seed), so a rerun is byte-identical. It is
// what cmd/abench -json emits, so successive runs can be archived
// (BENCH_<rev>.json) and diffed across PRs without noise.

// JSONPoint is one measurement in machine-readable form.
type JSONPoint struct {
	X             float64 `json:"x"`
	MeanMs        float64 `json:"mean_ms"`
	MedianMs      float64 `json:"median_ms"`
	P95Ms         float64 `json:"p95_ms"`
	MinMs         float64 `json:"min_ms"`
	MaxMs         float64 `json:"max_ms"`
	StdDevMs      float64 `json:"stddev_ms"`
	Samples       int     `json:"samples"`
	Delivered     int     `json:"delivered"`
	Undelivered   int     `json:"undelivered"`
	RateMsgPerSec float64 `json:"rate_msg_per_sec"`
	MsgsSent      int64   `json:"msgs_sent"`
	BytesSent     int64   `json:"bytes_sent"`
	VirtualMs     float64 `json:"virtual_ms"`
	// Stages is the per-stage latency decomposition of traced runs
	// (figure o1); omitted — keeping untraced figures' bytes unchanged —
	// when the experiment did not trace.
	Stages *JSONStages `json:"stages,omitempty"`
}

// JSONStages mirrors StageBreakdown in machine-readable form.
type JSONStages struct {
	DiffusionMs float64 `json:"diffusion_ms"`
	ConsensusMs float64 `json:"consensus_ms"`
	QueueMs     float64 `json:"queue_ms"`
}

// JSONSeries is one curve.
type JSONSeries struct {
	Label  string      `json:"label"`
	Points []JSONPoint `json:"points"`
}

// JSONFigure is one regenerated figure.
type JSONFigure struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	XLabel string       `json:"xlabel"`
	Metric string       `json:"metric"`
	Scale  float64      `json:"scale"`
	Seed   int64        `json:"seed"`
	Series []JSONSeries `json:"series"`
}

// metricName maps a Metric to its stable JSON identifier.
func metricName(m Metric) string {
	if m == MetricRate {
		return "rate"
	}
	return "latency"
}

// ToJSON converts a regenerated figure, keeping the Stacks declaration
// order for the series (the Series map iterates randomly).
func (f Figure) ToJSON(scale float64, seed int64) JSONFigure {
	out := JSONFigure{
		ID:     f.Spec.ID,
		Title:  f.Spec.Title,
		XLabel: f.Spec.XLabel,
		Metric: metricName(f.Spec.Metric),
		Scale:  scale,
		Seed:   seed,
	}
	for _, s := range f.Spec.Stacks {
		series := JSONSeries{Label: s.Label, Points: []JSONPoint{}}
		for _, p := range f.Series[s.Label] {
			r := p.Result
			var stages *JSONStages
			if r.Stages != nil {
				stages = &JSONStages{
					DiffusionMs: r.Stages.DiffusionMs,
					ConsensusMs: r.Stages.ConsensusMs,
					QueueMs:     r.Stages.QueueMs,
				}
			}
			series.Points = append(series.Points, JSONPoint{
				X:             p.X,
				MeanMs:        r.Latency.Mean,
				MedianMs:      r.Latency.Median,
				P95Ms:         r.Latency.P95,
				MinMs:         r.Latency.Min,
				MaxMs:         r.Latency.Max,
				StdDevMs:      r.Latency.StdDev,
				Samples:       r.Latency.N,
				Delivered:     r.Delivered,
				Undelivered:   r.Undelivered,
				RateMsgPerSec: r.Rate,
				MsgsSent:      r.MsgsSent,
				BytesSent:     r.BytesSent,
				VirtualMs:     float64(r.Virtual) / float64(time.Millisecond),
				Stages:        stages,
			})
		}
		out.Series = append(out.Series, series)
	}
	return out
}

// RunJSON regenerates the given figures and writes them as one indented
// JSON array.
func RunJSON(w io.Writer, ids []string, scale float64, seed int64) error {
	figs := Figures()
	specs := make([]FigureSpec, 0, len(ids))
	for _, id := range ids {
		spec, ok := figs[id]
		if !ok {
			return fmt.Errorf("bench: unknown figure %q", id)
		}
		specs = append(specs, spec)
	}
	return RunSpecsJSON(w, specs, scale, seed)
}

// RunSpecsJSON regenerates explicit figure specs (possibly carrying
// overrides) and writes them as one indented JSON array.
func RunSpecsJSON(w io.Writer, specs []FigureSpec, scale float64, seed int64) error {
	figs, err := RunSpecs(specs, scale, seed)
	if err != nil {
		return err
	}
	return WriteJSON(w, figs, scale, seed)
}

// RunSpecs regenerates explicit figure specs (possibly carrying overrides),
// returning the figures with their full results — including any lifecycle
// trace recordings — for callers that need more than the JSON projection
// (cmd/abench -trace).
func RunSpecs(specs []FigureSpec, scale float64, seed int64) ([]Figure, error) {
	out := make([]Figure, 0, len(specs))
	for _, spec := range specs {
		fig, err := spec.Run(scale, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

// WriteTraces exports the lifecycle recordings of every traced run of the
// figures, in declaration order (figure, then stack, then x). Format
// "jsonl" concatenates the runs' JSONL exports, each run's timestamps
// relative to its own first event — identical traced runs produce
// identical bytes. Format "chrome" merges all events into one Chrome
// trace_event document for chrome://tracing / Perfetto (runs share the
// simulator's virtual timebase, so their rows overlap).
func WriteTraces(w io.Writer, figs []Figure, format string) error {
	var recs []*trace.Recorder
	for _, f := range figs {
		for _, s := range f.Spec.Stacks {
			for _, p := range f.Series[s.Label] {
				if p.Result.TraceLog != nil {
					recs = append(recs, p.Result.TraceLog)
				}
			}
		}
	}
	switch format {
	case "jsonl":
		for _, r := range recs {
			if err := r.WriteJSONL(w); err != nil {
				return err
			}
		}
		return nil
	case "chrome":
		merged := trace.New()
		for _, r := range recs {
			for _, ev := range r.Events() {
				merged.Record(ev)
			}
		}
		return merged.WriteChrome(w)
	default:
		return fmt.Errorf("bench: unknown trace format %q (want jsonl or chrome)", format)
	}
}

// WriteJSON writes regenerated figures as one indented JSON array — the
// byte-stable archive format of cmd/abench -json.
func WriteJSON(w io.Writer, figs []Figure, scale float64, seed int64) error {
	out := make([]JSONFigure, 0, len(figs))
	for _, f := range figs {
		out = append(out, f.ToJSON(scale, seed))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
