// Package bench is the measurement harness that regenerates the paper's
// evaluation: a symmetric workload generator, a single-experiment runner,
// and the parameter sweeps of every figure in Section 4 (plus Figure 1 of
// Section 2).
//
// The performance metric matches the paper's: latency is the average, over
// all processes, of the elapsed time between abroadcast(m) and adeliver(m);
// the workload is symmetric — all processes abroadcast at the same rate,
// whose sum is the throughput.
package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"abcast/internal/adapt"
	"abcast/internal/core"
	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/persist"
	"abcast/internal/rbcast"
	"abcast/internal/relink"
	"abcast/internal/sim"
	"abcast/internal/simnet"
	"abcast/internal/stack"
	"abcast/internal/stats"
	"abcast/internal/trace"
)

// Experiment is one benchmark configuration point.
type Experiment struct {
	Name    string
	N       int             // number of processes
	Params  netmodel.Params // network/CPU cost model (Setup 1 or Setup 2)
	Variant core.Variant    // atomic broadcast stack
	RB      rbcast.Kind     // diffusion broadcast for id-based variants

	Throughput float64 // abroadcasts per second, summed over all processes
	Payload    int     // payload bytes per message

	// Load, when non-empty, replaces the constant Throughput with a
	// time-varying offered-load schedule: phase i holds its aggregate rate
	// for its duration, and the last phase's rate holds beyond the
	// schedule's end (so a fixed message count can always be generated).
	// Zero-rate phases are silent gaps — senders skip to the next phase
	// boundary. The per-sender Poisson clocks are unchanged; only the rate
	// each gap is drawn at follows the schedule, sampled at the sender's
	// current clock. Figure p2 uses a quiet→burst→quiet shape to exercise
	// the adaptive control plane against static pipeline widths.
	Load []LoadPhase

	Messages int   // messages measured (after warmup)
	Warmup   int   // messages excluded from statistics
	Seed     int64 // deterministic workload seed

	// MaxBatch caps identifiers per consensus instance (0 = unlimited);
	// see core.Config.MaxBatch.
	MaxBatch int

	// Pipeline is the consensus pipeline width W (0 or 1 = the paper's
	// serial Algorithm 1); see core.Config.Pipeline.
	Pipeline int

	// Adaptive enables the feedback control plane on every process
	// (core.Config.Adapt with defaults): pipeline width and MaxBatch are
	// retargeted from the observed backlog, and — with Recovery on — the
	// anti-entropy cadence from measured per-link RTTs. Pipeline/MaxBatch
	// become initial values. Off by default, so every static figure
	// measures the hand-tuned stack.
	Adaptive bool

	// PartitionFrom/PartitionUntil, when 0 < PartitionFrom <
	// PartitionUntil, inject a partition episode: at virtual instant
	// PartitionFrom the processes of PartitionMinority are cut off from the
	// rest, and at PartitionUntil the network heals. The default semantics
	// are simnet.PartitionDelay (TCP-like: the cut buffers traffic and the
	// heal flushes it, so channels stay reliable and the minority catches
	// up); PartitionDrop switches to black-hole semantics, under which
	// traffic sent across the cut is lost for good.
	PartitionFrom     time.Duration
	PartitionUntil    time.Duration
	PartitionMinority []int
	PartitionDrop     bool

	// Recovery enables the drop-partition recovery subsystem on every
	// process (core.RecoverConfig: relink retransmission + anti-entropy,
	// consensus decide-relay, payload fetch). Off by default, so the
	// paper's figures measure the unmodified stack.
	Recovery bool
	// RecoveryBuffer overrides the per-peer retransmission buffer capacity
	// (0 = relink default). Small values force eviction during a partition
	// and exercise the decide-relay/fetch path instead of pure replay.
	RecoveryBuffer int
	// DecisionLogCap overrides the consensus decide-relay's decision-log
	// retention (0 = consensus default). Small values push a partitioned
	// minority beyond the relay's horizon — the deep-lag regime snapshot
	// state transfer exists for.
	DecisionLogCap int
	// Snapshot enables snapshot state transfer on every process (implies
	// Recovery): a peer behind by more than DecisionLogCap instances is
	// shipped the delivered prefix plus engine state instead of a decision
	// replay it cannot use. Figure g4 compares relay-only against it.
	Snapshot bool

	// Persist enables crash-recovery persistence on every process: a
	// per-process in-memory checkpoint/WAL store (core.Config.Persist),
	// which also implies the recovery subsystem with snapshot transfer.
	// CheckpointInterval overrides the checkpoint cadence (0 = core
	// default).
	Persist            bool
	CheckpointInterval time.Duration

	// RestartProc, when non-zero, injects a crash-restart episode: the
	// process crashes at RestartCrashAt (in-flight traffic dropped) and — if
	// RestartAt is non-zero — a fresh incarnation on the same store rejoins
	// at RestartAt, catching the tail through the repair paths. RestartAt of
	// zero leaves the process down for the rest of the run (the no-recovery
	// baseline of figure r1). Restarting requires Persist; the restarted
	// process is excluded from the senders (its pending workload timers
	// would die with the crash) but still measured, so full delivery — and
	// the Rate metric — waits for its catch-up.
	RestartProc    int
	RestartCrashAt time.Duration
	RestartAt      time.Duration

	// Members, when non-nil, enables dynamic membership: only the listed
	// processes (a subset of 1..N) form the initial ordering group. The
	// workload then comes from the stable members only (initial members that
	// no churn event removes), and full delivery is measured at the members
	// of the final view — the processes the run's guarantees are about.
	Members []int
	// Churn schedules membership changes: at each event's virtual instant,
	// process From (a member at that time) atomically broadcasts the
	// join/leave, which takes effect at its delivery point in the total
	// order. Requires Members; churn runs want Recovery (and Snapshot for
	// deep joins) so joiners can catch up.
	Churn []ChurnEvent

	// MaxVirtual caps the simulated time after the last send; messages
	// undelivered by then (saturation) still count into the mean with
	// the cap as a floor, so saturated points read as "very slow" rather
	// than being silently dropped.
	MaxVirtual time.Duration

	// ProcDelays charges extra receive-side CPU per protocol layer
	// (simnet.SetProcessingDelays). Figure c1 uses it to put the stack in
	// a CPU-saturated regime where per-message consensus cost dominates,
	// making batching and pipeline widening distinguishable.
	ProcDelays simnet.ProcessingDelays

	// Trace records every message's lifecycle events (abroadcast, receipt,
	// propose, decide, ordered, adeliver, plus recovery events) during the
	// run. The recorder only appends to a buffer on the existing event
	// paths — it never schedules or reads wall clocks — so a traced run's
	// measurements are identical to an untraced one's. Result.TraceLog
	// carries the recording and Result.Stages the per-stage latency
	// decomposition computed from it (figure o1).
	Trace bool
}

// ChurnEvent is one scheduled membership change of an experiment.
type ChurnEvent struct {
	At    time.Duration // virtual instant the sponsor broadcasts the change
	From  int           // sponsoring member that broadcasts it
	Join  int           // process joining (0 = none)
	Leave int           // process leaving (0 = none)
}

// Result is the outcome of one experiment.
type Result struct {
	Experiment  Experiment
	Latency     stats.Summary // milliseconds
	Delivered   int           // measured messages fully delivered everywhere
	Undelivered int           // measured messages missing somewhere at the horizon
	Rate        float64       // measured messages fully delivered everywhere, per virtual second
	MsgsSent    int64
	BytesSent   int64
	Virtual     time.Duration // simulated duration
	Wall        time.Duration // host duration
	// Stages decomposes the mean latency into its pipeline stages (nil
	// unless Experiment.Trace). The three means sum to (approximately) the
	// Latency mean over the same fully-delivered messages.
	Stages *StageBreakdown
	// TraceLog is the run's lifecycle recording (nil unless
	// Experiment.Trace); export it with WriteJSONL or WriteChrome.
	TraceLog *trace.Recorder
}

// StageBreakdown splits the mean abroadcast-to-adeliver latency into the
// three stages every delivered message passes through, averaged — like the
// latency metric itself — over all measured (message, process) pairs that
// completed every stage.
type StageBreakdown struct {
	// DiffusionMs: abroadcast at the sender → payload receipt at the
	// delivering process (reliable-broadcast propagation).
	DiffusionMs float64
	// ConsensusMs: payload receipt → the identifier's ordered-queue entry.
	// Decisions are consumed in serial instance order, so this stage
	// includes both the deciding instance's rounds and the wait for every
	// earlier instance to be consumed — the component pipelining (W)
	// attacks.
	ConsensusMs float64
	// QueueMs: ordered-queue entry → adeliver. Near zero in healthy runs
	// (an ordered identifier whose payload is present delivers in the same
	// step); it grows only when delivery stalls behind a missing payload
	// (the fetch path) or an undelivered predecessor.
	QueueMs float64
}

// Run executes one experiment on the simulator.
func Run(e Experiment) (Result, error) {
	if e.N < 1 || e.Messages <= 0 || (e.Throughput <= 0 && len(e.Load) == 0) {
		return Result{}, fmt.Errorf("bench: invalid experiment %+v", e)
	}
	if err := validLoad(e.Load); err != nil {
		return Result{}, err
	}
	if err := e.validMembership(); err != nil {
		return Result{}, err
	}
	if err := e.validRestart(); err != nil {
		return Result{}, err
	}
	if e.MaxVirtual <= 0 {
		e.MaxVirtual = 30 * time.Second
	}
	//abcheck:ignore walltime Result.Wall reports host run time of the benchmark itself; it never feeds the simulation and is stripped from pinned JSON.
	start := time.Now()

	w := simnet.NewWorld(e.N, e.Params, e.Seed)
	if len(e.ProcDelays) != 0 {
		w.SetProcessingDelays(e.ProcDelays)
	}
	// One recorder shared by all processes (Event.P tells them apart); on
	// the simulator's single event loop arrival order is deterministic.
	var tr *trace.Recorder
	if e.Trace {
		tr = trace.New()
	}

	if len(e.PartitionMinority) > 0 && e.PartitionFrom > 0 && e.PartitionUntil > e.PartitionFrom {
		minority := make([]stack.ProcessID, len(e.PartitionMinority))
		for i, p := range e.PartitionMinority {
			if p < 1 || p > e.N {
				return Result{}, fmt.Errorf("bench: partition minority process %d out of range 1..%d", p, e.N)
			}
			minority[i] = stack.ProcessID(p)
		}
		mode := simnet.PartitionDelay
		if e.PartitionDrop {
			mode = simnet.PartitionDrop
		}
		w.Engine().At(sim.Time(e.PartitionFrom), func() { w.Partition(mode, minority) })
		w.Engine().At(sim.Time(e.PartitionUntil), func() { w.Heal() })
	}

	total := e.Messages + e.Warmup
	sentAt := make(map[msg.ID]time.Duration, total)
	// deliveredAt[p][id] = virtual delivery instant
	deliveredAt := make([]map[msg.ID]time.Duration, e.N+1)

	engines := make([]*core.Engine, e.N+1)
	var stores []*persist.MemStore
	if e.Persist {
		stores = make([]*persist.MemStore, e.N+1)
		for i := 1; i <= e.N; i++ {
			stores[i] = persist.NewMemStore()
		}
	}
	// startProc builds one incarnation of process i on the given node — called
	// once per process at setup, and again from a restart episode, where the
	// fresh incarnation rehydrates from stores[i].
	startProc := func(i int, node *stack.Node) error {
		det := fd.NewHeartbeat(node, fd.DefaultConfig())
		var rcfg *core.RecoverConfig
		if e.Recovery || e.Snapshot {
			rcfg = &core.RecoverConfig{
				Link:           relink.Config{BufferCap: e.RecoveryBuffer},
				DecisionLogCap: e.DecisionLogCap,
				Snapshot:       e.Snapshot,
			}
		}
		var pcfg *core.PersistConfig
		if e.Persist {
			pcfg = &core.PersistConfig{Store: stores[i], Interval: e.CheckpointInterval}
		}
		var acfg *adapt.Config
		if e.Adaptive {
			acfg = &adapt.Config{}
		}
		var members []stack.ProcessID
		if e.Members != nil {
			members = make([]stack.ProcessID, len(e.Members))
			for j, m := range e.Members {
				members[j] = stack.ProcessID(m)
			}
		}
		eng, err := core.New(node, core.Config{
			Variant:      e.Variant,
			RB:           e.RB,
			Detector:     det,
			RcvCheckCost: e.Params.RcvCheckPerID,
			MaxBatch:     e.MaxBatch,
			Pipeline:     e.Pipeline,
			Adapt:        acfg,
			Recover:      rcfg,
			Persist:      pcfg,
			Members:      members,
			Trace:        tr,
			Deliver: func(app *msg.App) {
				// First delivery only: across a restart the suffix above the
				// checkpoint redelivers (at-least-once), and latency measures
				// the original delivery instant.
				if _, ok := deliveredAt[i][app.ID]; !ok {
					deliveredAt[i][app.ID] = virt(w)
				}
			},
		})
		if err != nil {
			return fmt.Errorf("bench: %w", err)
		}
		engines[i] = eng
		return nil
	}
	for i := 1; i <= e.N; i++ {
		deliveredAt[i] = make(map[msg.ID]time.Duration, total)
		if err := startProc(i, w.Node(stack.ProcessID(i))); err != nil {
			return Result{}, err
		}
	}

	// Crash-restart episode: crash drops in-flight traffic; the restart (if
	// scheduled) rebuilds the stack on the fresh node, rehydrating from the
	// same store.
	var restartErr error
	if e.RestartProc != 0 {
		rp := stack.ProcessID(e.RestartProc)
		w.Engine().At(sim.Time(e.RestartCrashAt), func() { w.Crash(rp, simnet.DropInFlight) })
		if e.RestartAt > 0 {
			w.Engine().At(sim.Time(e.RestartAt), func() {
				if err := startProc(e.RestartProc, w.Restart(rp)); err != nil && restartErr == nil {
					restartErr = err
				}
			})
		}
	}

	// Membership churn: each event's sponsor broadcasts the change at its
	// scheduled instant, on its own event loop like any other send.
	for _, ce := range e.Churn {
		ce := ce
		w.After(stack.ProcessID(ce.From), ce.At, func() {
			engines[ce.From].BroadcastConfig(msg.ConfigChange{
				Join:  stack.ProcessID(ce.Join),
				Leave: stack.ProcessID(ce.Leave),
			})
		})
	}

	// Symmetric Poisson workload: round-robin senders, each keeping its
	// own Poisson clock, with exponential inter-arrival times drawn at the
	// offered rate current at that clock (constant, or following the Load
	// schedule). Under dynamic membership only the stable members send.
	rng := rand.New(rand.NewSource(e.Seed*6364136223846793005 + 1442695040888963407))
	var lastSend time.Duration
	for k, ev := range sendSchedule(&e, rng, total) {
		p, at := ev.p, ev.at
		if at > lastSend {
			lastSend = at
		}
		warm := k < e.Warmup
		payload := make([]byte, e.Payload)
		w.After(p, at, func() {
			id := engines[p].ABroadcast(payload)
			if !warm {
				sentAt[id] = virt(w)
			}
		})
	}

	// Run in slices until every measured message is delivered at every
	// measured process (the final view's members under churn, everyone
	// otherwise) or the horizon passes.
	procs := e.measuredProcs()
	horizon := lastSend + e.MaxVirtual
	for virt(w) < horizon {
		w.RunFor(250 * time.Millisecond)
		if len(sentAt) == e.Messages && allDelivered(sentAt, deliveredAt, procs) {
			break
		}
	}
	if restartErr != nil {
		return Result{}, restartErr
	}

	// Latency per message: average over all processes of
	// adeliver - abroadcast (the paper's metric).
	var lat stats.Sample
	delivered, undelivered := 0, 0
	end := virt(w)
	// Iterate in canonical id order so floating-point accumulation is
	// deterministic across runs.
	ids := make([]msg.ID, 0, len(sentAt))
	for id := range sentAt {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for _, id := range ids {
		t0 := sentAt[id]
		sum := 0.0
		missing := false
		for _, p := range procs {
			td, ok := deliveredAt[p][id]
			if !ok {
				missing = true
				td = end // saturation floor
			}
			sum += float64(td-t0) / float64(time.Millisecond)
		}
		lat.Add(sum / float64(len(procs)))
		if missing {
			undelivered++
		} else {
			delivered++
		}
	}

	rate := 0.0
	if end > 0 {
		// Delivered throughput over the whole run. Under saturation the
		// run lasts until the horizon for every configuration, so this is
		// the discriminating metric: configurations with a higher ordering
		// ceiling deliver more of the measured messages in the same
		// virtual time.
		rate = float64(delivered) / end.Seconds()
	}
	return Result{
		Experiment:  e,
		Latency:     lat.Summarize(),
		Delivered:   delivered,
		Undelivered: undelivered,
		Rate:        rate,
		MsgsSent:    w.MsgsSent(),
		BytesSent:   w.BytesSent(),
		Virtual:     end,
		Wall:        time.Since(start), //abcheck:ignore walltime host-side run time for logs; excluded from byte-stable output.
		Stages:      stageBreakdown(tr, ids, procs),
		TraceLog:    tr,
	}, nil
}

// stageBreakdown computes the per-stage latency decomposition from a run's
// trace: for every measured message and measured process whose chain
// completed (abroadcast → receive → ordered → adeliver, first occurrence
// each), the three stage durations are averaged the same way the latency
// metric averages end-to-end time. Returns nil without a trace or when no
// chain completed.
func stageBreakdown(tr *trace.Recorder, ids []msg.ID, procs []int) *StageBreakdown {
	if tr == nil {
		return nil
	}
	broadcastAt := make(map[msg.ID]time.Time)
	type stamp struct{ receive, ordered, adeliver time.Time }
	stamps := make(map[stack.ProcessID]map[msg.ID]*stamp)
	at := func(p stack.ProcessID, id msg.ID) *stamp {
		m := stamps[p]
		if m == nil {
			m = make(map[msg.ID]*stamp)
			stamps[p] = m
		}
		s := m[id]
		if s == nil {
			s = &stamp{}
			m[id] = s
		}
		return s
	}
	for _, ev := range tr.Events() {
		switch ev.Kind {
		case trace.KindABroadcast:
			if _, ok := broadcastAt[ev.ID]; !ok {
				broadcastAt[ev.ID] = ev.At
			}
		case trace.KindReceive:
			if s := at(ev.P, ev.ID); s.receive.IsZero() {
				s.receive = ev.At
			}
		case trace.KindOrdered:
			if s := at(ev.P, ev.ID); s.ordered.IsZero() {
				s.ordered = ev.At
			}
		case trace.KindADeliver:
			if s := at(ev.P, ev.ID); s.adeliver.IsZero() {
				s.adeliver = ev.At
			}
		}
	}
	var diffusion, consensus, queue float64
	n := 0
	// ids arrive pre-sorted, so accumulation order — and the float sums —
	// are deterministic.
	for _, id := range ids {
		t0, ok := broadcastAt[id]
		if !ok {
			continue
		}
		for _, p := range procs {
			s := stamps[stack.ProcessID(p)][id]
			if s == nil || s.receive.IsZero() || s.ordered.IsZero() || s.adeliver.IsZero() {
				continue
			}
			diffusion += float64(s.receive.Sub(t0)) / float64(time.Millisecond)
			consensus += float64(s.ordered.Sub(s.receive)) / float64(time.Millisecond)
			queue += float64(s.adeliver.Sub(s.ordered)) / float64(time.Millisecond)
			n++
		}
	}
	if n == 0 {
		return nil
	}
	return &StageBreakdown{
		DiffusionMs: diffusion / float64(n),
		ConsensusMs: consensus / float64(n),
		QueueMs:     queue / float64(n),
	}
}

// virt returns the current virtual time as a duration since simulation
// start.
func virt(w *simnet.World) time.Duration {
	return w.Now().Sub(time.Unix(0, 0))
}

// allDelivered reports whether every measured message reached every
// measured process.
func allDelivered(sentAt map[msg.ID]time.Duration, deliveredAt []map[msg.ID]time.Duration, procs []int) bool {
	for id := range sentAt {
		for _, p := range procs {
			if _, ok := deliveredAt[p][id]; !ok {
				return false
			}
		}
	}
	return true
}

// validMembership checks the experiment's Members/Churn configuration.
func (e *Experiment) validMembership() error {
	if e.Members == nil {
		if len(e.Churn) > 0 {
			return fmt.Errorf("bench: Churn requires Members")
		}
		return nil
	}
	if len(e.Members) == 0 {
		return fmt.Errorf("bench: empty initial member set")
	}
	for _, m := range e.Members {
		if m < 1 || m > e.N {
			return fmt.Errorf("bench: member %d out of range 1..%d", m, e.N)
		}
	}
	for _, ce := range e.Churn {
		if ce.From < 1 || ce.From > e.N {
			return fmt.Errorf("bench: churn sponsor %d out of range 1..%d", ce.From, e.N)
		}
		if ce.Join < 0 || ce.Join > e.N || ce.Leave < 0 || ce.Leave > e.N {
			return fmt.Errorf("bench: churn target out of range 1..%d", e.N)
		}
		if ce.Join == 0 && ce.Leave == 0 {
			return fmt.Errorf("bench: churn event with no join and no leave")
		}
	}
	return nil
}

// validRestart checks the experiment's crash-restart episode.
func (e *Experiment) validRestart() error {
	if e.RestartProc == 0 {
		if e.RestartCrashAt != 0 || e.RestartAt != 0 {
			return fmt.Errorf("bench: restart schedule without RestartProc")
		}
		return nil
	}
	if e.RestartProc < 1 || e.RestartProc > e.N {
		return fmt.Errorf("bench: RestartProc %d out of range 1..%d", e.RestartProc, e.N)
	}
	if e.RestartCrashAt <= 0 {
		return fmt.Errorf("bench: RestartProc requires RestartCrashAt > 0")
	}
	if e.RestartAt != 0 {
		if e.RestartAt <= e.RestartCrashAt {
			return fmt.Errorf("bench: RestartAt must follow RestartCrashAt")
		}
		if !e.Persist {
			return fmt.Errorf("bench: restarting requires Persist (the checkpoint to rejoin from)")
		}
	}
	if e.Members != nil {
		return fmt.Errorf("bench: restart episodes and dynamic membership cannot be combined")
	}
	return nil
}

// senderProcs returns the workload's senders: every process for a static
// run, the stable members (initial members no churn event removes) under
// dynamic membership — a joiner cannot send before its join applies and a
// leaver's late sends could never complete, so neither belongs in a
// full-delivery workload. A crash-restart episode's subject is likewise
// excluded: its pending workload timers would die with the crash.
func (e *Experiment) senderProcs() []stack.ProcessID {
	if e.Members == nil {
		out := make([]stack.ProcessID, 0, e.N)
		for i := 1; i <= e.N; i++ {
			if i != e.RestartProc {
				out = append(out, stack.ProcessID(i))
			}
		}
		return out
	}
	leaves := make(map[int]bool, len(e.Churn))
	for _, ce := range e.Churn {
		if ce.Leave != 0 {
			leaves[ce.Leave] = true
		}
	}
	out := make([]stack.ProcessID, 0, len(e.Members))
	for _, m := range e.Members {
		if !leaves[m] {
			out = append(out, stack.ProcessID(m))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// measuredProcs returns the processes full delivery is measured at: every
// process for a static run, the final view's members under churn (applying
// the scheduled joins and leaves to the initial set, in schedule order).
func (e *Experiment) measuredProcs() []int {
	if e.Members == nil {
		out := make([]int, e.N)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	in := make(map[int]bool, len(e.Members))
	for _, m := range e.Members {
		in[m] = true
	}
	for _, ce := range e.Churn {
		if ce.Join != 0 {
			in[ce.Join] = true
		}
		if ce.Leave != 0 {
			delete(in, ce.Leave)
		}
	}
	out := make([]int, 0, len(in))
	for m := range in {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// defaultMessages scales the measured message count with throughput so that
// low-rate points stay fast and high-rate points still sample a steady
// state.
func defaultMessages(throughput float64, scale float64) (measured, warmup int) {
	m := int(throughput * 1.5 * scale)
	if m < 120 {
		m = 120
	}
	if m > 2400 {
		m = 2400
	}
	wu := m / 4
	return m, wu
}
