package bench

import (
	"strings"
	"testing"
	"time"

	"abcast/internal/core"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
)

func quickExp(variant core.Variant) Experiment {
	return Experiment{
		Name:       "quick",
		N:          3,
		Params:     netmodel.Setup1(),
		Variant:    variant,
		RB:         rbcast.KindEager,
		Throughput: 200,
		Payload:    10,
		Messages:   60,
		Warmup:     10,
		Seed:       3,
		MaxVirtual: 20 * time.Second,
	}
}

func TestRunDeliversEverything(t *testing.T) {
	r, err := Run(quickExp(core.VariantIndirectCT))
	if err != nil {
		t.Fatal(err)
	}
	if r.Undelivered != 0 {
		t.Fatalf("%d messages undelivered at a gentle load", r.Undelivered)
	}
	if r.Delivered != 60 {
		t.Fatalf("Delivered = %d, want 60", r.Delivered)
	}
	if r.Latency.N != 60 {
		t.Fatalf("latency samples = %d", r.Latency.N)
	}
	if r.Latency.Mean <= 0 || r.Latency.Mean > 100 {
		t.Fatalf("implausible mean latency %v ms", r.Latency.Mean)
	}
	if r.Latency.Min > r.Latency.Median || r.Latency.Median > r.Latency.Max {
		t.Fatal("latency summary not ordered")
	}
	if r.MsgsSent == 0 || r.BytesSent == 0 {
		t.Fatal("traffic counters empty")
	}
}

func TestRunDeterministicAcrossRepeats(t *testing.T) {
	a, err := Run(quickExp(core.VariantIndirectCT))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickExp(core.VariantIndirectCT))
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency.Mean != b.Latency.Mean || a.MsgsSent != b.MsgsSent {
		t.Fatalf("same seed produced different results: %.6f/%.6f ms, %d/%d msgs",
			a.Latency.Mean, b.Latency.Mean, a.MsgsSent, b.MsgsSent)
	}
}

func TestRunSeedChangesSchedule(t *testing.T) {
	a, _ := Run(quickExp(core.VariantIndirectCT))
	e := quickExp(core.VariantIndirectCT)
	e.Seed = 4
	b, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency.Mean == b.Latency.Mean && a.MsgsSent == b.MsgsSent {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestRunValidation(t *testing.T) {
	bad := quickExp(core.VariantIndirectCT)
	bad.Throughput = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero throughput accepted")
	}
	bad = quickExp(core.VariantIndirectCT)
	bad.Messages = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero messages accepted")
	}
	bad = quickExp(core.Variant(99))
	if _, err := Run(bad); err == nil {
		t.Error("bogus variant accepted")
	}
}

func TestDefaultMessagesScaling(t *testing.T) {
	lowM, lowW := defaultMessages(10, 1)
	highM, _ := defaultMessages(2000, 1)
	if lowM < 100 {
		t.Fatalf("low-rate sample too small: %d", lowM)
	}
	if highM <= lowM {
		t.Fatal("message count does not scale with throughput")
	}
	if highM > 2400 {
		t.Fatalf("message count uncapped: %d", highM)
	}
	if lowW <= 0 || lowW >= lowM {
		t.Fatalf("warmup = %d of %d", lowW, lowM)
	}
}

func TestFiguresComplete(t *testing.T) {
	figs := Figures()
	want := []string{
		"1a", "1b",
		"3a", "3b",
		"4a", "4b", "4c", "4d",
		"5a", "5b", "5c",
		"s1", "p1",
		"6a", "6b", "6c",
		"7a", "7b",
		"g1", "g2", "g3", "g4",
		"p2",
		"m1",
		"c1",
		"r1",
		"o1",
	}
	// Most figures compare two stacks over ≥4 x values; g3 is the recovery
	// comparison (off / on / on-with-tiny-buffers), g4 the deep-lag one
	// (relay-only / snapshot), each over the three pipeline widths that
	// matter, p2 the adaptive comparison (static W=1/4/8 / adaptive) over
	// its two topologies, m1 the membership-churn comparison (static /
	// join+leave) over its two topologies, and c1 the CPU-saturation
	// batching comparison (MaxBatch 1 / 4 / unbounded) over four widths.
	wantStacks := map[string]int{"g3": 3, "p2": 4, "c1": 3}
	minPoints := map[string]int{"g3": 3, "g4": 3, "p2": 2, "m1": 2}
	for _, id := range want {
		spec, ok := figs[id]
		if !ok {
			t.Errorf("figure %s missing", id)
			continue
		}
		points := 4
		if p, ok := minPoints[id]; ok {
			points = p
		}
		if len(spec.Xs) < points {
			t.Errorf("figure %s has only %d points", id, len(spec.Xs))
		}
		stacks := 2
		if s, ok := wantStacks[id]; ok {
			stacks = s
		}
		if len(spec.Stacks) != stacks {
			t.Errorf("figure %s has %d stacks, want %d", id, len(spec.Stacks), stacks)
		}
		if spec.Build == nil {
			t.Errorf("figure %s has no builder", id)
		}
	}
	if len(figs) != len(want) {
		t.Errorf("figure count = %d, want %d", len(figs), len(want))
	}
	ids := FigureIDs()
	if len(ids) != len(want) {
		t.Errorf("FigureIDs = %v", ids)
	}
}

// TestFigureRunAndPrint runs a tiny sweep end to end and checks the table
// output shape.
func TestFigureRunAndPrint(t *testing.T) {
	spec := FigureSpec{
		ID:     "test",
		Title:  "tiny",
		XLabel: "payload [bytes]",
		Xs:     []float64{0, 100},
		Stacks: []StackSpec{
			{Label: "Indirect", Variant: core.VariantIndirectCT, RB: rbcast.KindEager},
			{Label: "Faulty", Variant: core.VariantFaultyIDs, RB: rbcast.KindEager},
		},
		Build: buildPayloadSweep(3, netmodel.Setup1(), 100),
	}
	fig, err := spec.Run(0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fig.Print(&sb)
	out := sb.String()
	for _, needle := range []string{"# test", "Indirect", "Faulty", "ms"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("output missing %q:\n%s", needle, out)
		}
	}
	if len(fig.Series["Indirect"]) != 2 || len(fig.Series["Faulty"]) != 2 {
		t.Fatalf("series lengths wrong: %+v", fig.Series)
	}
}

func TestRunAndPrintUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := RunAndPrint(&sb, "nope", 1, 1); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// TestSaturationMarksUndelivered: a hopeless overload with a tiny horizon
// must report undelivered messages rather than hanging or dropping them
// silently.
func TestSaturationMarksUndelivered(t *testing.T) {
	e := quickExp(core.VariantConsensusMsgs)
	e.Throughput = 5000
	e.Payload = 5000
	e.Messages = 200
	e.Warmup = 0
	e.MaxVirtual = 300 * time.Millisecond
	r, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if r.Undelivered == 0 {
		t.Fatal("overload with a tiny horizon reported full delivery")
	}
	if r.Latency.N != 200 {
		t.Fatalf("saturated messages dropped from the sample: N=%d", r.Latency.N)
	}
}
