package bench

import (
	"bytes"
	"math"
	"os"
	"testing"
	"time"

	"abcast/internal/core"
	"abcast/internal/msg"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
	"abcast/internal/stack"
	"abcast/internal/trace"
)

// checkChains verifies the trace-completeness property on a finished run:
// every adeliver event has a gap-free span chain behind it — an abroadcast
// of the message, and a first receive and first ordered entry at the
// delivering process, in causal timestamp order. Recovery runs may start a
// process's chain from a snapshot install or a restart rehydration, but
// those paths record receive/ordered events too, so the invariant is
// uniform.
func checkChains(t *testing.T, r Result) {
	t.Helper()
	if r.TraceLog == nil {
		t.Fatal("run recorded no trace")
	}
	type key struct {
		p  stack.ProcessID
		id msg.ID
	}
	broadcastAt := map[msg.ID]time.Time{}
	receiveAt := map[key]time.Time{}
	orderedAt := map[key]time.Time{}
	adelivers := 0
	evs := r.TraceLog.Events()
	for _, ev := range evs {
		switch ev.Kind {
		case trace.KindABroadcast:
			if _, ok := broadcastAt[ev.ID]; !ok {
				broadcastAt[ev.ID] = ev.At
			}
		case trace.KindReceive:
			k := key{ev.P, ev.ID}
			if _, ok := receiveAt[k]; !ok {
				receiveAt[k] = ev.At
			}
		case trace.KindOrdered:
			k := key{ev.P, ev.ID}
			if _, ok := orderedAt[k]; !ok {
				orderedAt[k] = ev.At
			}
		}
	}
	for _, ev := range evs {
		if ev.Kind != trace.KindADeliver {
			continue
		}
		adelivers++
		k := key{ev.P, ev.ID}
		t0, ok := broadcastAt[ev.ID]
		if !ok {
			t.Fatalf("adeliver of %v at p%d without an abroadcast event", ev.ID, ev.P)
		}
		rcv, ok := receiveAt[k]
		if !ok {
			t.Fatalf("adeliver of %v at p%d without a receive event", ev.ID, ev.P)
		}
		ord, ok := orderedAt[k]
		if !ok {
			t.Fatalf("adeliver of %v at p%d without an ordered event", ev.ID, ev.P)
		}
		// Receive and ordered may land in either order (a decision can
		// precede its payload — the fetch path); both must follow the
		// abroadcast and precede the adeliver.
		if t0.After(rcv) || t0.After(ord) || rcv.After(ev.At) || ord.After(ev.At) {
			t.Fatalf("span chain of %v at p%d out of order: abroadcast %v, receive %v, ordered %v, adeliver %v",
				ev.ID, ev.P, t0, rcv, ord, ev.At)
		}
	}
	if adelivers == 0 {
		t.Fatal("trace holds no adeliver events")
	}
}

// TestTraceCompletenessChurnPartition checks the span-chain property on the
// harshest non-restart run the harness supports: dynamic membership with a
// join and a leave, plus a drop-mode partition the recovery subsystem (with
// snapshot transfer) must repair.
func TestTraceCompletenessChurnPartition(t *testing.T) {
	e := Experiment{
		Name:              "trace churn+partition",
		N:                 4,
		Params:            PipelineParams(),
		Variant:           core.VariantIndirectCT,
		RB:                rbcast.KindEager,
		Throughput:        400,
		Payload:           50,
		Messages:          120,
		Warmup:            20,
		Seed:              7,
		MaxBatch:          4,
		Pipeline:          2,
		Recovery:          true,
		Snapshot:          true,
		Members:           []int{1, 2, 3},
		PartitionFrom:     120 * time.Millisecond,
		PartitionUntil:    240 * time.Millisecond,
		PartitionMinority: []int{2},
		PartitionDrop:     true,
		Trace:             true,
		MaxVirtual:        30 * time.Second,
	}
	sendDur := time.Duration(float64(e.Messages+e.Warmup) / e.Throughput * float64(time.Second))
	e.Churn = []ChurnEvent{
		{At: sendDur / 3, From: 1, Join: 4},
		{At: sendDur * 2 / 3, From: 1, Leave: 3},
	}
	r, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if r.Undelivered != 0 {
		t.Fatalf("%d measured messages undelivered — recovery failed, chains unverifiable", r.Undelivered)
	}
	checkChains(t, r)
}

// TestTraceCompletenessRestart checks the span-chain property across a
// crash-restart episode, and that the restarted incarnation recorded its
// rehydration.
func TestTraceCompletenessRestart(t *testing.T) {
	e := Experiment{
		Name:           "trace restart",
		N:              3,
		Params:         netmodel.Setup1(),
		Variant:        core.VariantIndirectCT,
		RB:             rbcast.KindEager,
		Throughput:     60,
		Payload:        50,
		Messages:       80,
		Warmup:         10,
		Seed:           5,
		MaxBatch:       4,
		Persist:        true,
		RestartProc:    3,
		RestartCrashAt: 400 * time.Millisecond,
		RestartAt:      900 * time.Millisecond,
		Trace:          true,
		MaxVirtual:     30 * time.Second,
	}
	r, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if r.Undelivered != 0 {
		t.Fatalf("%d measured messages undelivered after the restart", r.Undelivered)
	}
	checkChains(t, r)
	restarts := 0
	for _, ev := range r.TraceLog.Events() {
		if ev.Kind == trace.KindRestart && ev.P == 3 {
			restarts++
		}
	}
	if restarts != 1 {
		t.Fatalf("restart events at p3 = %d, want 1", restarts)
	}
}

// TestTracedRunMatchesUntraced is the zero-perturbation property: tracing
// must only observe a run, never change it.
func TestTracedRunMatchesUntraced(t *testing.T) {
	off, err := Run(quickExp(core.VariantIndirectCT))
	if err != nil {
		t.Fatal(err)
	}
	traced := quickExp(core.VariantIndirectCT)
	traced.Trace = true
	on, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}
	if off.Latency != on.Latency || off.MsgsSent != on.MsgsSent || off.BytesSent != on.BytesSent || off.Virtual != on.Virtual {
		t.Fatalf("tracing changed the run: off latency %+v msgs %d, on latency %+v msgs %d",
			off.Latency, off.MsgsSent, on.Latency, on.MsgsSent)
	}
	if off.Stages != nil || off.TraceLog != nil {
		t.Fatal("untraced run carries trace output")
	}
	if on.Stages == nil || on.TraceLog == nil {
		t.Fatal("traced run carries no trace output")
	}
}

// TestStageBreakdownSumsToLatency: on a fully delivered run the three stage
// means must sum to the end-to-end latency mean (same messages, same
// averaging).
func TestStageBreakdownSumsToLatency(t *testing.T) {
	e := quickExp(core.VariantIndirectCT)
	e.Trace = true
	r, err := Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if r.Undelivered != 0 {
		t.Fatalf("%d undelivered", r.Undelivered)
	}
	s := r.Stages
	if s == nil {
		t.Fatal("no stage breakdown")
	}
	sum := s.DiffusionMs + s.ConsensusMs + s.QueueMs
	if math.Abs(sum-r.Latency.Mean) > 1e-6 {
		t.Fatalf("stages sum to %.9f ms, latency mean is %.9f ms", sum, r.Latency.Mean)
	}
	if s.DiffusionMs <= 0 || s.ConsensusMs <= 0 {
		t.Fatalf("implausible breakdown %+v", s)
	}
}

// TestTraceDoubleRunIdenticalJSONL: two traced runs of the same experiment
// export byte-identical JSONL — the trace is as deterministic as the run.
func TestTraceDoubleRunIdenticalJSONL(t *testing.T) {
	var dumps [2]bytes.Buffer
	for i := range dumps {
		e := quickExp(core.VariantIndirectCT)
		e.Trace = true
		r, err := Run(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.TraceLog.WriteJSONL(&dumps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if dumps[0].Len() == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(dumps[0].Bytes(), dumps[1].Bytes()) {
		t.Fatal("identical traced runs exported different JSONL")
	}
}

// TestPinnedArchiveByteIdentical regenerates the pinned figure set at the
// archived scale and compares it byte-for-byte against the checked-in
// trajectory point. The full run takes minutes, so it only runs when
// ABCAST_PINNED=1 (CI's figures job sets it); the cheap double-run
// determinism checks above always run.
func TestPinnedArchiveByteIdentical(t *testing.T) {
	if os.Getenv("ABCAST_PINNED") != "1" {
		t.Skip("set ABCAST_PINNED=1 to regenerate and compare the pinned archive")
	}
	want, err := os.ReadFile("../../BENCH_66fb832.json")
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := RunJSON(&got, []string{"p1", "g1", "g3", "g4", "m1", "c1", "r1"}, 0.25, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("pinned set drifted from BENCH_66fb832.json (got %d bytes, want %d)", got.Len(), len(want))
	}
}
