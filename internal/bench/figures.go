package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"abcast/internal/core"
	"abcast/internal/netmodel"
	"abcast/internal/rbcast"
	"abcast/internal/simnet"
	"abcast/internal/stack"
)

// StackSpec labels one curve of a figure.
type StackSpec struct {
	Label   string
	Variant core.Variant
	RB      rbcast.Kind
	// MaxBatch caps identifiers per consensus instance for ablation
	// curves (zero — unlimited — for the paper's figures). The pipeline
	// window is not a curve property: the p1 ablation sweeps it on the x
	// axis instead.
	MaxBatch int
	// Recovery/RecoveryBuffer enable the drop-partition recovery subsystem
	// for this curve (figure g3 compares recovery off, on, and on with
	// tiny buffers that force the decide-relay path).
	Recovery       bool
	RecoveryBuffer int
	// DecisionLogCap/Snapshot configure the deep-lag regime: a small
	// decision log pushes a cut-off minority beyond the decide-relay's
	// horizon, and Snapshot enables the state transfer that closes such a
	// gap (figure g4 compares relay-only against it).
	DecisionLogCap int
	Snapshot       bool
	// Pipeline fixes the curve's pipeline width when a figure compares
	// widths as curves instead of sweeping them on the x axis, and
	// Adaptive hands the width (and batch cap) to the feedback control
	// plane instead. Figure p2 pits static widths against the controller.
	Pipeline int
	Adaptive bool
	// Churn marks the curve that runs the figure's membership-change
	// schedule; the figure's Build decides the actual events. Figure m1
	// compares a static member set against one join plus one leave.
	Churn bool
	// Persist enables crash-recovery persistence for this curve, and
	// Restart marks the curve whose crashed process comes back from its
	// checkpoint; the figure's Build decides the schedule. Figure r1
	// compares restart-from-checkpoint against staying down.
	Persist bool
	Restart bool
}

// Metric selects what a figure's cells report.
type Metric int

// Available metrics.
const (
	// MetricLatency is the paper's metric: mean abroadcast-to-adeliver
	// latency in milliseconds.
	MetricLatency Metric = iota
	// MetricRate is delivered throughput in messages per virtual second —
	// the metric of the pipeline ablation, where the interesting quantity
	// is the ordering ceiling rather than per-message latency.
	MetricRate
)

// FigureSpec declares how to regenerate one of the paper's figures: an x
// axis, a set of stacks (curves), and a builder mapping (stack, x) to an
// experiment.
type FigureSpec struct {
	ID    string
	Title string
	// Desc is the short one-liner `abench -list` prints (falls back to
	// Title when empty); it is not part of the byte-stable JSON output.
	Desc   string
	XLabel string
	Metric Metric // what the cells report (default MetricLatency)
	Xs     []float64
	Stacks []StackSpec
	Build  func(s StackSpec, x float64, scale float64, seed int64) Experiment
}

// Point is one measurement of one curve.
type Point struct {
	X      float64
	Result Result
}

// Figure is a regenerated figure: one series of points per stack.
type Figure struct {
	Spec   FigureSpec
	Series map[string][]Point // label -> points, in Xs order
}

// Run regenerates the figure. scale (0,1] shrinks the per-point message
// counts for quick runs; 1.0 is the full configuration.
func (f FigureSpec) Run(scale float64, seed int64) (Figure, error) {
	if scale <= 0 {
		scale = 1
	}
	out := Figure{Spec: f, Series: make(map[string][]Point, len(f.Stacks))}
	for _, s := range f.Stacks {
		for _, x := range f.Xs {
			e := f.Build(s, x, scale, seed)
			r, err := Run(e)
			if err != nil {
				return Figure{}, fmt.Errorf("figure %s, stack %q, x=%v: %w", f.ID, s.Label, x, err)
			}
			out.Series[s.Label] = append(out.Series[s.Label], Point{X: x, Result: r})
		}
	}
	return out, nil
}

// Print renders the figure as an aligned table of mean latencies (ms), one
// row per x value and one column per stack — the same rows the paper plots.
func (f Figure) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", f.Spec.ID, f.Spec.Title)
	labels := make([]string, 0, len(f.Spec.Stacks))
	for _, s := range f.Spec.Stacks {
		labels = append(labels, s.Label)
	}
	fmt.Fprintf(w, "%-24s", f.Spec.XLabel)
	for _, l := range labels {
		fmt.Fprintf(w, "  %22s", l)
	}
	fmt.Fprintln(w)
	for i, x := range f.Spec.Xs {
		fmt.Fprintf(w, "%-24.0f", x)
		for _, l := range labels {
			pts := f.Series[l]
			if i < len(pts) {
				r := pts[i].Result
				var cell string
				switch {
				case r.Stages != nil:
					// Traced figures print the stacked decomposition:
					// diffusion + consensus + queue (ms).
					cell = fmt.Sprintf("%.2f+%.2f+%.2f ms",
						r.Stages.DiffusionMs, r.Stages.ConsensusMs, r.Stages.QueueMs)
				case f.Spec.Metric == MetricRate:
					cell = fmt.Sprintf("%.0f msg/s", r.Rate)
				default:
					cell = fmt.Sprintf("%.3f ms", r.Latency.Mean)
				}
				if r.Undelivered > 0 {
					cell += "*" // saturated: some messages missed the horizon
				}
				fmt.Fprintf(w, "  %22s", cell)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// PipelineParams is the network point of the pipeline ablation (figure p1):
// Setup 2 hosts on 1 ms links — a metro/cross-datacenter propagation delay
// instead of the paper's LAN. On a LAN a consensus round costs about as
// much CPU as wire time, so the serial engine is CPU-limited and pipelining
// has nothing to hide; with millisecond links the serial engine idles
// between rounds, which is exactly the gap W concurrent instances fill.
func PipelineParams() netmodel.Params {
	p := netmodel.Setup2()
	p.Latency = time.Millisecond
	return p
}

// seq builds an inclusive numeric range.
func seq(from, to, step float64) []float64 {
	var out []float64
	for x := from; x <= to+1e-9; x += step {
		out = append(out, x)
	}
	return out
}

// Stack labels shared across figures (matching the paper's legends).
var (
	stackIndirect   = StackSpec{Label: "Indirect consensus", Variant: core.VariantIndirectCT, RB: rbcast.KindEager}
	stackIndirectN1 = StackSpec{Label: "Indirect w/ O(n) rb", Variant: core.VariantIndirectCT, RB: rbcast.KindLazy}
	stackOnMsgs     = StackSpec{Label: "Consensus", Variant: core.VariantConsensusMsgs, RB: rbcast.KindEager}
	stackFaulty     = StackSpec{Label: "(Faulty) consensus", Variant: core.VariantFaultyIDs, RB: rbcast.KindEager}
	stackURB        = StackSpec{Label: "Consensus w/ URB", Variant: core.VariantURBIDs, RB: rbcast.KindUniform}
)

// buildPayloadSweep returns a builder for latency-vs-payload figures.
func buildPayloadSweep(n int, params netmodel.Params, throughput float64) func(StackSpec, float64, float64, int64) Experiment {
	return func(s StackSpec, x, scale float64, seed int64) Experiment {
		measured, warmup := defaultMessages(throughput, scale)
		return Experiment{
			Name:       fmt.Sprintf("%s tp=%.0f payload=%.0f", s.Label, throughput, x),
			N:          n,
			Params:     params,
			Variant:    s.Variant,
			RB:         s.RB,
			Throughput: throughput,
			Payload:    int(x),
			Messages:   measured,
			Warmup:     warmup,
			Seed:       seed,
			MaxVirtual: 30 * time.Second,
		}
	}
}

// buildThroughputSweep returns a builder for latency-vs-throughput figures.
func buildThroughputSweep(n int, params netmodel.Params, payload int) func(StackSpec, float64, float64, int64) Experiment {
	return func(s StackSpec, x, scale float64, seed int64) Experiment {
		measured, warmup := defaultMessages(x, scale)
		return Experiment{
			Name:       fmt.Sprintf("%s tp=%.0f payload=%d", s.Label, x, payload),
			N:          n,
			Params:     params,
			Variant:    s.Variant,
			RB:         s.RB,
			Throughput: x,
			Payload:    payload,
			Messages:   measured,
			Warmup:     warmup,
			Seed:       seed,
			MaxVirtual: 30 * time.Second,
		}
	}
}

// Figures returns every figure specification, keyed by id.
func Figures() map[string]FigureSpec {
	s1 := netmodel.Setup1()
	s2 := netmodel.Setup2()
	figs := []FigureSpec{
		{
			ID:     "1a",
			Title:  "latency vs payload, n=3, 100 msg/s, Setup 1 (indirect consensus vs consensus on messages)",
			XLabel: "payload [bytes]",
			Xs:     seq(0, 5000, 1000),
			Stacks: []StackSpec{stackIndirect, stackOnMsgs},
			Build:  buildPayloadSweep(3, s1, 100),
		},
		{
			ID:     "1b",
			Title:  "latency vs payload, n=3, 800 msg/s, Setup 1 (indirect consensus vs consensus on messages)",
			XLabel: "payload [bytes]",
			Xs:     seq(0, 4000, 1000),
			Stacks: []StackSpec{stackIndirect, stackOnMsgs},
			Build:  buildPayloadSweep(3, s1, 800),
		},
		{
			ID:     "3a",
			Title:  "latency vs throughput, n=3, payload 1 B, Setup 1 (indirect vs faulty consensus on ids)",
			XLabel: "throughput [msg/s]",
			Xs:     []float64{100, 200, 400, 600, 800},
			Stacks: []StackSpec{stackIndirect, stackFaulty},
			Build:  buildThroughputSweep(3, s1, 1),
		},
		{
			ID:     "3b",
			Title:  "latency vs throughput, n=5, payload 1 B, Setup 1 (indirect vs faulty consensus on ids)",
			XLabel: "throughput [msg/s]",
			Xs:     []float64{100, 200, 400, 600, 800},
			Stacks: []StackSpec{stackIndirect, stackFaulty},
			Build:  buildThroughputSweep(5, s1, 1),
		},
		{
			ID:     "7a",
			Title:  "latency vs throughput, n=3, 1 B, Setup 2, O(n²) rbcast (indirect+rb vs consensus+URB)",
			XLabel: "throughput [msg/s]",
			Xs:     []float64{500, 750, 1000, 1250, 1500, 1750, 2000},
			Stacks: []StackSpec{stackIndirect, stackURB},
			Build:  buildThroughputSweep(3, s2, 1),
		},
		{
			ID:     "7b",
			Title:  "latency vs throughput, n=3, 1 B, Setup 2, O(n) rbcast (indirect+rb vs consensus+URB)",
			XLabel: "throughput [msg/s]",
			Xs:     []float64{500, 750, 1000, 1250, 1500, 1750, 2000},
			Stacks: []StackSpec{stackIndirectN1, stackURB},
			Build:  buildThroughputSweep(3, s2, 1),
		},
	}
	// Figure 4: n=5, indirect vs faulty, payload sweep at four throughputs.
	for _, sub := range []struct {
		id  string
		tp  float64
		max float64 // the paper sweeps only 0-2000 B at 800 msg/s
	}{{"4a", 10, 5000}, {"4b", 100, 5000}, {"4c", 400, 5000}, {"4d", 800, 2000}} {
		figs = append(figs, FigureSpec{
			ID:     sub.id,
			Title:  fmt.Sprintf("latency vs payload, n=5, %.0f msg/s, Setup 1 (indirect vs faulty consensus on ids)", sub.tp),
			XLabel: "payload [bytes]",
			Xs:     seq(0, sub.max, sub.max/5),
			Stacks: []StackSpec{stackIndirect, stackFaulty},
			Build:  buildPayloadSweep(5, s1, sub.tp),
		})
	}
	// Figures 5 and 6: n=3, Setup 2, indirect+rb vs consensus+URB, payload
	// sweeps at three throughputs; Figure 5 uses O(n²) rbcast, Figure 6
	// the O(n) one.
	for _, group := range []struct {
		fig   string
		stack StackSpec
	}{{"5", stackIndirect}, {"6", stackIndirectN1}} {
		for i, tp := range []float64{500, 1500, 2000} {
			id := fmt.Sprintf("%s%c", group.fig, 'a'+i)
			figs = append(figs, FigureSpec{
				ID: id,
				Title: fmt.Sprintf("latency vs payload, n=3, %.0f msg/s, Setup 2, %s diffusion (vs consensus+URB)",
					tp, group.stack.RB),
				XLabel: "payload [bytes]",
				Xs:     seq(0, 2500, 500),
				Stacks: []StackSpec{group.stack, stackURB},
				Build:  buildPayloadSweep(3, s2, tp),
			})
		}
	}
	// Extension (not a figure in the paper): scalability in the number of
	// processes. Section 2.1 claims the advantage of identifiers "becomes
	// clearer ... as the size of the system increases"; this sweep
	// substantiates it.
	figs = append(figs, FigureSpec{
		ID:     "s1",
		Title:  "EXTENSION: latency vs system size, 200 msg/s, 1000 B, Setup 1",
		Desc:   "scalability extension: latency vs system size n",
		XLabel: "processes [n]",
		Xs:     []float64{3, 5, 7, 9},
		Stacks: []StackSpec{stackIndirect, stackOnMsgs},
		Build: func(s StackSpec, x, scale float64, seed int64) Experiment {
			measured, warmup := defaultMessages(200, scale)
			return Experiment{
				Name:       fmt.Sprintf("%s n=%.0f", s.Label, x),
				N:          int(x),
				Params:     s1,
				Variant:    s.Variant,
				RB:         s.RB,
				Throughput: 200,
				Payload:    1000,
				Messages:   measured,
				Warmup:     warmup,
				Seed:       seed,
				MaxVirtual: 30 * time.Second,
			}
		},
	})
	// Extension: the pipeline ablation. Delivered throughput as a function
	// of the pipeline width W, at an offered load that saturates the serial
	// engine when MaxBatch bounds per-instance work. The capped curve shows
	// the point of pipelining — the ceiling scales with W — while the
	// unbounded curve is the control: Algorithm 1's whole-set batching
	// already absorbs load into bigger batches, so W buys little.
	figs = append(figs, FigureSpec{
		ID:     "p1",
		Title:  "EXTENSION: delivered throughput vs pipeline width W, n=3, offered 3000 msg/s, 1 B, Setup 2 @ 1 ms links, IndirectCT",
		Desc:   "pipeline ablation: delivered rate vs W on metro 1 ms links, capped vs unbounded batch",
		XLabel: "pipeline width [W]",
		Metric: MetricRate,
		Xs:     []float64{1, 2, 4, 8},
		Stacks: []StackSpec{
			{Label: "Indirect, MaxBatch=4", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4},
			{Label: "Indirect, unbounded", Variant: core.VariantIndirectCT, RB: rbcast.KindEager},
		},
		Build: func(s StackSpec, x, scale float64, seed int64) Experiment {
			measured, warmup := defaultMessages(3000, scale)
			return Experiment{
				Name:       fmt.Sprintf("%s W=%.0f", s.Label, x),
				N:          3,
				Params:     PipelineParams(),
				Variant:    s.Variant,
				RB:         s.RB,
				Throughput: 3000,
				Payload:    1,
				Messages:   measured,
				Warmup:     warmup,
				Seed:       seed,
				MaxBatch:   s.MaxBatch,
				Pipeline:   int(x),
				MaxVirtual: 2 * time.Second,
			}
		},
	})
	// Extension: geo-replication. Figure g1 is the WAN counterpart of p1 —
	// mean delivery latency as a function of the pipeline width W with
	// n=3 processes spread over the three sites of netmodel.WAN3Sites. A
	// consensus round costs an inter-site round trip (~100 ms aggregate),
	// so with per-instance work capped the serial engine's ordering ceiling
	// sits far below the offered load and queueing delay dominates; W
	// concurrent instances lift the ceiling and collapse the latency. The
	// unbounded curve is again the control.
	figs = append(figs, FigureSpec{
		ID:     "g1",
		Title:  "EXTENSION: latency vs pipeline width W, n=3 across 3 WAN sites (1 ms intra, 40-126 ms inter), 100 msg/s, 100 B, IndirectCT",
		Desc:   "WAN: latency vs pipeline width W across 3 sites",
		XLabel: "pipeline width [W]",
		Xs:     []float64{1, 2, 4, 8},
		Stacks: []StackSpec{
			{Label: "Indirect, MaxBatch=4", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4},
			{Label: "Indirect, unbounded", Variant: core.VariantIndirectCT, RB: rbcast.KindEager},
		},
		Build: func(s StackSpec, x, scale float64, seed int64) Experiment {
			measured, warmup := defaultMessages(100, scale)
			return Experiment{
				Name:       fmt.Sprintf("%s W=%.0f wan3", s.Label, x),
				N:          3,
				Params:     netmodel.WAN3Sites(),
				Variant:    s.Variant,
				RB:         s.RB,
				Throughput: 100,
				Payload:    100,
				Messages:   measured,
				Warmup:     warmup,
				Seed:       seed,
				MaxBatch:   s.MaxBatch,
				Pipeline:   int(x),
				MaxVirtual: 90 * time.Second,
			}
		},
	})
	// Extension: figure g2 adds a partition-and-heal episode to the WAN
	// workload — the minority site (process 3) is cut off from 400 ms to
	// 1.1 s of virtual time under PartitionDelay (TCP-like) semantics, a
	// window the send schedule straddles at every scale. The majority pair
	// keeps ordering through the episode (CT tolerates f < n/2 unreachable
	// processes); at the heal, the held traffic flushes and the minority
	// catches up. The delivered-throughput metric shows both effects: the
	// backlog the episode creates and the rate at which each pipeline width
	// drains it.
	figs = append(figs, FigureSpec{
		ID:     "g2",
		Title:  "EXTENSION: delivered throughput vs pipeline width W across a minority-site partition (0.4-1.1 s, site of p3 cut, delay semantics), n=3 WAN, offered 120 msg/s, 100 B, IndirectCT",
		Desc:   "WAN: delivered rate across a delay-mode minority partition-and-heal",
		XLabel: "pipeline width [W]",
		Metric: MetricRate,
		Xs:     []float64{1, 2, 4, 8},
		Stacks: []StackSpec{
			{Label: "Indirect, MaxBatch=4", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4},
			{Label: "Indirect, unbounded", Variant: core.VariantIndirectCT, RB: rbcast.KindEager},
		},
		Build: func(s StackSpec, x, scale float64, seed int64) Experiment {
			measured, warmup := defaultMessages(120, scale)
			return Experiment{
				Name:              fmt.Sprintf("%s W=%.0f wan3+partition", s.Label, x),
				N:                 3,
				Params:            netmodel.WAN3Sites(),
				Variant:           s.Variant,
				RB:                s.RB,
				Throughput:        120,
				Payload:           100,
				Messages:          measured,
				Warmup:            warmup,
				Seed:              seed,
				MaxBatch:          s.MaxBatch,
				Pipeline:          int(x),
				PartitionFrom:     400 * time.Millisecond,
				PartitionUntil:    1100 * time.Millisecond,
				PartitionMinority: []int{3},
				MaxVirtual:        90 * time.Second,
			}
		},
	})
	// Extension: figure g3 is the drop-mode counterpart of g2 — the same
	// WAN partition-and-heal episode, but as a black hole (drop semantics)
	// instead of TCP-like buffering. Without recovery the minority site
	// never catches up: messages sent across the cut are gone, the
	// minority misses decisions and payloads for good, and the
	// delivered-everywhere rate flatlines (points stay saturated at the
	// horizon). With the recovery subsystem enabled (retransmission +
	// anti-entropy + decide-relay + payload fetch) the minority reaches
	// full delivery after the heal and the rate recovers; the tiny-buffer
	// curve shows the same outcome when eviction has destroyed the
	// retransmission window and only the decide-relay/fetch path remains.
	figs = append(figs, FigureSpec{
		ID:     "g3",
		Title:  "EXTENSION: delivered throughput across a DROP-mode partition-and-heal (0.4-1.1 s, site of p3 black-holed), with vs without recovery, n=3 WAN, offered 120 msg/s, 100 B, IndirectCT, MaxBatch=4",
		Desc:   "WAN drop-mode partition: recovery off vs on vs eviction-forced relay",
		XLabel: "pipeline width [W]",
		Metric: MetricRate,
		Xs:     []float64{1, 2, 4},
		Stacks: []StackSpec{
			{Label: "No recovery", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4},
			{Label: "Recovery", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4, Recovery: true},
			{Label: "Recovery, 16-msg buffers", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4, Recovery: true, RecoveryBuffer: 16},
		},
		Build: func(s StackSpec, x, scale float64, seed int64) Experiment {
			measured, warmup := defaultMessages(120, scale)
			return Experiment{
				Name:              fmt.Sprintf("%s W=%.0f wan3+drop-partition", s.Label, x),
				N:                 3,
				Params:            netmodel.WAN3Sites(),
				Variant:           s.Variant,
				RB:                s.RB,
				Throughput:        120,
				Payload:           100,
				Messages:          measured,
				Warmup:            warmup,
				Seed:              seed,
				MaxBatch:          s.MaxBatch,
				Pipeline:          int(x),
				PartitionFrom:     400 * time.Millisecond,
				PartitionUntil:    1100 * time.Millisecond,
				PartitionMinority: []int{3},
				PartitionDrop:     true,
				Recovery:          s.Recovery,
				RecoveryBuffer:    s.RecoveryBuffer,
				// The no-recovery curve never reaches full delivery, so it
				// always runs to the horizon; keep it short.
				MaxVirtual: 20 * time.Second,
			}
		},
	})
	// Extension: figure g4 is the deep-lag counterpart of g3 — the same
	// drop-mode partition-and-heal episode, but with the decide-relay's
	// decision log capped at 8 instances (and 16-message retransmission
	// buffers, so eviction destroys the replay window). During the 0.7 s
	// cut the majority consumes far more than 8 instances, pushing the
	// minority beyond the relay's horizon: with relay-only recovery the
	// minority can never fill the evicted gap — it holds later decisions it
	// cannot consume, its own instances find no quorum, and the
	// delivered-everywhere rate flatlines at the horizon. With snapshot
	// state transfer enabled, the minority is shipped the delivered prefix,
	// atomically advanced past the gap, and the relay/fetch path finishes
	// the tail — full delivery everywhere, like g3's recovery curves but
	// for arbitrarily deep lag.
	figs = append(figs, FigureSpec{
		ID:     "g4",
		Title:  "EXTENSION: delivered throughput across a DROP-mode partition-and-heal with the minority beyond the decision-log horizon (log cap 8, 16-msg buffers): relay-only vs snapshot state transfer, n=3 WAN, offered 120 msg/s, 100 B, IndirectCT, MaxBatch=4",
		Desc:   "WAN deep-lag drop partition: relay-only vs snapshot state transfer",
		XLabel: "pipeline width [W]",
		Metric: MetricRate,
		Xs:     []float64{1, 2, 4},
		Stacks: []StackSpec{
			{Label: "Relay only", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4, Recovery: true, RecoveryBuffer: 16, DecisionLogCap: 8},
			{Label: "Snapshot", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4, Recovery: true, RecoveryBuffer: 16, DecisionLogCap: 8, Snapshot: true},
		},
		Build: func(s StackSpec, x, scale float64, seed int64) Experiment {
			measured, warmup := defaultMessages(120, scale)
			return Experiment{
				Name:              fmt.Sprintf("%s W=%.0f wan3+deep-lag", s.Label, x),
				N:                 3,
				Params:            netmodel.WAN3Sites(),
				Variant:           s.Variant,
				RB:                s.RB,
				Throughput:        120,
				Payload:           100,
				Messages:          measured,
				Warmup:            warmup,
				Seed:              seed,
				MaxBatch:          s.MaxBatch,
				Pipeline:          int(x),
				PartitionFrom:     400 * time.Millisecond,
				PartitionUntil:    1100 * time.Millisecond,
				PartitionMinority: []int{3},
				PartitionDrop:     true,
				Recovery:          s.Recovery,
				RecoveryBuffer:    s.RecoveryBuffer,
				DecisionLogCap:    s.DecisionLogCap,
				Snapshot:          s.Snapshot,
				// The relay-only curve never reaches full delivery, so it
				// always runs to the horizon; keep it short.
				MaxVirtual: 20 * time.Second,
			}
		},
	})
	// Extension: figure p2 closes the loop the static ablations opened —
	// p1 and g1 show that the best hand-picked pipeline width differs
	// between the 1 ms metro network and the 3-site WAN, so no single
	// static W wins everywhere. p2 offers a ramped load (quiet → burst →
	// quiet; rates scaled to each topology's capacity, since a WAN orders
	// two orders of magnitude slower than a metro LAN) and compares static
	// W=1/4/8 against the adaptive control plane, which starts serial on
	// both topologies with identical controller settings and must discover
	// the width from its backlog. The delivered-rate metric rewards
	// draining the burst quickly: the adaptive curve is expected within
	// 10% of (or above) the best static curve on *both* x values — the
	// "no per-topology tuning" claim of the control plane.
	figs = append(figs, FigureSpec{
		ID:     "p2",
		Title:  "EXTENSION: delivered throughput under ramped offered load (quiet-burst-quiet): static pipeline widths vs adaptive control plane, n=3, 100 B, IndirectCT, static MaxBatch=4; x=1: Setup 2 @ 1 ms links (burst 6000 msg/s), x=2: wan3 (burst 320 msg/s)",
		Desc:   "ramped load: adaptive control plane vs static W=1/4/8, metro and wan3",
		XLabel: "topology [1=metro, 2=wan3]",
		Metric: MetricRate,
		Xs:     []float64{1, 2},
		Stacks: []StackSpec{
			{Label: "Static W=1", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4, Pipeline: 1},
			{Label: "Static W=4", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4, Pipeline: 4},
			{Label: "Static W=8", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4, Pipeline: 8},
			{Label: "Adaptive", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, Adaptive: true},
		},
		Build: func(s StackSpec, x, scale float64, seed int64) Experiment {
			params := PipelineParams()
			load := []LoadPhase{
				{Duration: 300 * time.Millisecond, Throughput: 500},
				{Duration: 700 * time.Millisecond, Throughput: 6000},
				{Duration: 500 * time.Millisecond, Throughput: 500},
			}
			maxVirtual := 20 * time.Second
			if x == 2 {
				params = netmodel.WAN3Sites()
				load = []LoadPhase{
					{Duration: 300 * time.Millisecond, Throughput: 40},
					{Duration: 700 * time.Millisecond, Throughput: 320},
					{Duration: 500 * time.Millisecond, Throughput: 40},
				}
				maxVirtual = 60 * time.Second
			}
			// Quick runs shrink the schedule, not the rates, so the shape —
			// and the controller's job — is preserved at every scale; the
			// message count is the schedule's integral.
			load = scaleLoad(load, scale)
			measured := loadTotal(load)
			return Experiment{
				Name:       fmt.Sprintf("%s x=%.0f ramped", s.Label, x),
				N:          3,
				Params:     params,
				Variant:    s.Variant,
				RB:         s.RB,
				Load:       load,
				Payload:    100,
				Messages:   measured,
				Warmup:     measured / 8,
				Seed:       seed,
				MaxBatch:   s.MaxBatch,
				Pipeline:   s.Pipeline,
				Adaptive:   s.Adaptive,
				MaxVirtual: maxVirtual,
			}
		},
	})
	figs = append(figs, FigureSpec{
		ID:     "m1",
		Title:  "EXTENSION: delivered throughput under membership churn: static member set vs one join + one leave riding the total order, universe n=4 starting as {1,2,3}, 100 B, IndirectCT, W=4, MaxBatch=4, recovery+snapshot; x=1: Setup 2 @ 1 ms links (2000 msg/s), x=2: wan3 (160 msg/s)",
		Desc:   "membership churn: static members vs join+leave, metro and wan3",
		XLabel: "topology [1=metro, 2=wan3]",
		Metric: MetricRate,
		Xs:     []float64{1, 2},
		Stacks: []StackSpec{
			{Label: "Static members", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4, Pipeline: 4, Snapshot: true},
			{Label: "Join+Leave", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4, Pipeline: 4, Snapshot: true, Churn: true},
		},
		Build: func(s StackSpec, x, scale float64, seed int64) Experiment {
			params := PipelineParams()
			throughput := 2000.0
			maxVirtual := 20 * time.Second
			if x == 2 {
				params = netmodel.WAN3Sites()
				throughput = 160.0
				maxVirtual = 60 * time.Second
			}
			measured, warmup := defaultMessages(throughput, scale)
			// The churn schedule rides the send window: process 4 joins a
			// third of the way in, process 3 leaves at two thirds — so the
			// run exercises ordering across both switches while load is
			// still flowing, and the final view {1,2,4} measures a joiner
			// that had to catch up from serial 1. Member 1 sponsors both.
			sendDur := time.Duration(float64(measured+warmup) / throughput * float64(time.Second))
			e := Experiment{
				Name:       fmt.Sprintf("%s x=%.0f churn", s.Label, x),
				N:          4,
				Params:     params,
				Variant:    s.Variant,
				RB:         s.RB,
				Throughput: throughput,
				Payload:    100,
				Messages:   measured,
				Warmup:     warmup,
				Seed:       seed,
				MaxBatch:   s.MaxBatch,
				Pipeline:   s.Pipeline,
				Recovery:   true,
				Snapshot:   s.Snapshot,
				Members:    []int{1, 2, 3},
				MaxVirtual: maxVirtual,
			}
			if s.Churn {
				e.Churn = []ChurnEvent{
					{At: sendDur / 3, From: 1, Join: 4},
					{At: sendDur * 2 / 3, From: 1, Leave: 3},
				}
			}
			return e
		},
	})
	// Extension: CPU saturation. The paper's LAN figures are network-bound;
	// figure c1 instead charges each received consensus-protocol message
	// 150 µs of processor time (simnet.ProcessingDelays), putting the
	// ordering layer in a CPU-saturated regime at 3000 msg/s offered. Per
	// Algorithm 1 the consensus message count scales with the number of
	// instances, not the identifiers per instance — so batching (MaxBatch
	// unbounded, many ids per instance) slashes the charged CPU and holds
	// the offered rate, while widening the pipeline with per-instance work
	// capped (MaxBatch=1, W up to 8) only multiplies concurrently-saturated
	// instances and stays flat: batching beats widening when the cost is
	// processor time rather than round trips.
	figs = append(figs, FigureSpec{
		ID:     "c1",
		Title:  "EXTENSION: delivered throughput vs pipeline width W with 150 µs CPU per received consensus message, n=3, offered 3000 msg/s, 1 B, Setup 1, IndirectCT",
		Desc:   "CPU saturation: delivered rate vs W with per-message consensus CPU cost, batching vs widening",
		XLabel: "pipeline width [W]",
		Metric: MetricRate,
		Xs:     []float64{1, 2, 4, 8},
		Stacks: []StackSpec{
			{Label: "Indirect, MaxBatch=1", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 1},
			{Label: "Indirect, MaxBatch=4", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4},
			{Label: "Indirect, unbounded", Variant: core.VariantIndirectCT, RB: rbcast.KindEager},
		},
		Build: func(s StackSpec, x, scale float64, seed int64) Experiment {
			measured, warmup := defaultMessages(3000, scale)
			return Experiment{
				Name:       fmt.Sprintf("%s W=%.0f cpu", s.Label, x),
				N:          3,
				Params:     netmodel.Setup1(),
				Variant:    s.Variant,
				RB:         s.RB,
				Throughput: 3000,
				Payload:    1,
				Messages:   measured,
				Warmup:     warmup,
				Seed:       seed,
				MaxBatch:   s.MaxBatch,
				Pipeline:   int(x),
				MaxVirtual: 2 * time.Second,
				ProcDelays: simnet.ProcessingDelays{stack.ProtoCons: 150 * time.Microsecond},
			}
		},
	})
	// Extension: crash-recovery. Figure r1 crashes process 3 at 800 ms with
	// in-flight traffic dropped and — on the restart curve — brings a fresh
	// incarnation back on the same checkpoint store after x ms of downtime.
	// The restarted process is excluded from the senders but still measured:
	// the Rate metric counts messages delivered *everywhere* per virtual
	// second, so each point folds in how long the restarted incarnation
	// takes to rehydrate from its checkpoint and catch the tail through
	// relay/fetch/snapshot — longer downtime, bigger tail, lower rate. The
	// baseline curve never restarts: the two live processes (a CT majority)
	// keep ordering, but full delivery never happens, so those points run to
	// the horizon and read as saturated — the cost of having no recovery at
	// all, same role as g3's no-recovery curve.
	figs = append(figs, FigureSpec{
		ID:     "r1",
		Title:  "EXTENSION: delivered throughput vs crash downtime: restart from checkpoint vs staying down, n=3, p3 crashes at 800 ms (in-flight dropped), offered 60 msg/s, 100 B, Setup 1, IndirectCT, MaxBatch=4, persistence on",
		Desc:   "crash-recovery: delivered rate vs downtime, restart-from-checkpoint vs no restart",
		XLabel: "downtime [ms]",
		Metric: MetricRate,
		Xs:     []float64{200, 500, 1000, 2000},
		Stacks: []StackSpec{
			{Label: "Restart from checkpoint", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4, Persist: true, Restart: true},
			{Label: "No restart", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4, Persist: true},
		},
		Build: func(s StackSpec, x, scale float64, seed int64) Experiment {
			measured, warmup := defaultMessages(60, scale)
			e := Experiment{
				Name:           fmt.Sprintf("%s downtime=%.0fms", s.Label, x),
				N:              3,
				Params:         netmodel.Setup1(),
				Variant:        s.Variant,
				RB:             s.RB,
				Throughput:     60,
				Payload:        100,
				Messages:       measured,
				Warmup:         warmup,
				Seed:           seed,
				MaxBatch:       s.MaxBatch,
				Persist:        s.Persist,
				RestartProc:    3,
				RestartCrashAt: 800 * time.Millisecond,
				// The no-restart curve never reaches full delivery, so it
				// always runs to the horizon; keep it short.
				MaxVirtual: 20 * time.Second,
			}
			if s.Restart {
				e.RestartAt = e.RestartCrashAt + time.Duration(x)*time.Millisecond
			}
			return e
		},
	})
	// Extension: observability. Figure o1 runs the pipeline sweep traced and
	// reports where each millisecond of delivery latency is spent: the
	// lifecycle trace splits every delivered message's end-to-end time into
	// diffusion (abroadcast → payload receipt), consensus (receipt →
	// ordered-queue entry, which folds in the serial wait for earlier
	// instances) and queue (entry → adeliver, ~0 unless a payload is
	// missing), averaged like the latency metric. Diffusion is the flat
	// propagation floor on both topologies; the consensus stage dominates at
	// W=1 — on the WAN it is an order of magnitude above the round-trip time,
	// pure serial-consumption backlog — and collapses toward the bare round
	// as W grows. Tracing only appends to a buffer on existing event paths,
	// so a traced run's measurements match the untraced figures exactly.
	figs = append(figs, FigureSpec{
		ID:     "o1",
		Title:  "EXTENSION: stage-latency breakdown (diffusion+consensus+queue) vs pipeline width W, n=3, 100 B, IndirectCT, MaxBatch=4, traced; curves: Setup 2 @ 1 ms links (600 msg/s) and wan3 (100 msg/s)",
		Desc:   "observability: stacked stage-latency breakdown vs W, metro and wan3",
		XLabel: "pipeline width [W]",
		Xs:     []float64{1, 2, 4, 8},
		Stacks: []StackSpec{
			{Label: "Metro 1 ms", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4},
			{Label: "3-site WAN", Variant: core.VariantIndirectCT, RB: rbcast.KindEager, MaxBatch: 4},
		},
		Build: func(s StackSpec, x, scale float64, seed int64) Experiment {
			params := PipelineParams()
			throughput := 600.0
			maxVirtual := 20 * time.Second
			if s.Label == "3-site WAN" {
				params = netmodel.WAN3Sites()
				throughput = 100.0
				maxVirtual = 90 * time.Second
			}
			measured, warmup := defaultMessages(throughput, scale)
			return Experiment{
				Name:       fmt.Sprintf("%s W=%.0f traced", s.Label, x),
				N:          3,
				Params:     params,
				Variant:    s.Variant,
				RB:         s.RB,
				Throughput: throughput,
				Payload:    100,
				Messages:   measured,
				Warmup:     warmup,
				Seed:       seed,
				MaxBatch:   s.MaxBatch,
				Pipeline:   int(x),
				Trace:      true,
				MaxVirtual: maxVirtual,
			}
		},
	})
	out := make(map[string]FigureSpec, len(figs))
	for _, f := range figs {
		out[f.ID] = f
	}
	return out
}

// NamedParams resolves a network-model name, as accepted by the -topo flag
// of cmd/abench: the paper's two LAN test beds, the pipeline ablation's
// metro network, and the 3-site WAN topology.
func NamedParams(name string) (netmodel.Params, error) {
	switch strings.ToLower(name) {
	case "setup1":
		return netmodel.Setup1(), nil
	case "setup2":
		return netmodel.Setup2(), nil
	case "pipeline":
		return PipelineParams(), nil
	case "wan3":
		return netmodel.WAN3Sites(), nil
	default:
		return netmodel.Params{}, fmt.Errorf("bench: unknown topology %q (have setup1, setup2, pipeline, wan3)", name)
	}
}

// WithOverride returns a copy of the spec whose Build post-processes every
// experiment with fn. cmd/abench uses it to re-run any figure on a
// different network model (-topo) or with a fault episode (-partition).
func (f FigureSpec) WithOverride(fn func(*Experiment)) FigureSpec {
	orig := f.Build
	f.Build = func(s StackSpec, x, scale float64, seed int64) Experiment {
		e := orig(s, x, scale, seed)
		fn(&e)
		return e
	}
	return f
}

// Describe returns the one-line description `abench -list` prints: the
// short Desc when one is set, the full Title otherwise.
func (f FigureSpec) Describe() string {
	if f.Desc != "" {
		return f.Desc
	}
	return f.Title
}

// FigureIDs returns all figure ids in display order.
func FigureIDs() []string {
	ids := make([]string, 0)
	for id := range Figures() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunAndPrint regenerates one figure and renders it.
func RunAndPrint(w io.Writer, id string, scale float64, seed int64) error {
	spec, ok := Figures()[id]
	if !ok {
		return fmt.Errorf("bench: unknown figure %q (have %s)", id, strings.Join(FigureIDs(), ", "))
	}
	return RunSpecAndPrint(w, spec, scale, seed)
}

// RunSpecAndPrint regenerates one figure from an explicit spec (possibly
// carrying overrides) and renders it.
func RunSpecAndPrint(w io.Writer, spec FigureSpec, scale float64, seed int64) error {
	fig, err := spec.Run(scale, seed)
	if err != nil {
		return err
	}
	fig.Print(w)
	return nil
}
