package bench

// Time-varying offered load. The paper's workload is stationary — every
// figure offers one constant aggregate rate — which cannot express the
// scenario the adaptive control plane exists for: traffic that ramps and
// bursts, where any static pipeline width is wrong part of the time. A
// LoadPhase schedule keeps the harness's symmetric per-sender Poisson
// clocks and only varies the rate each inter-arrival gap is drawn at, so
// constant-load figures are bit-for-bit unaffected and a scheduled figure
// stays deterministic under its seed.

import (
	"fmt"
	"math/rand"
	"time"

	"abcast/internal/stack"
)

// LoadPhase is one segment of a time-varying offered-load schedule: the
// aggregate rate (summed over all processes, like Experiment.Throughput)
// held for the phase's duration. A zero Throughput is a silent gap.
type LoadPhase struct {
	Duration   time.Duration
	Throughput float64
}

// validLoad checks a schedule: positive durations, non-negative rates, and
// a positive final rate (the last phase's rate holds beyond the schedule's
// end, so a zero one could never finish generating the message count).
func validLoad(load []LoadPhase) error {
	for i, ph := range load {
		if ph.Duration <= 0 {
			return fmt.Errorf("bench: load phase %d has non-positive duration %v", i, ph.Duration)
		}
		if ph.Throughput < 0 {
			return fmt.Errorf("bench: load phase %d has negative throughput %v", i, ph.Throughput)
		}
	}
	if n := len(load); n > 0 && load[n-1].Throughput <= 0 {
		return fmt.Errorf("bench: last load phase must have positive throughput")
	}
	return nil
}

// offeredAt returns the aggregate offered rate at instant t and, for use
// when that rate is zero, the instant the current phase ends. Beyond the
// schedule the last phase's rate holds; with no schedule the constant
// Throughput does.
func (e *Experiment) offeredAt(t time.Duration) (rate float64, boundary time.Duration) {
	if len(e.Load) == 0 {
		return e.Throughput, 0
	}
	var end time.Duration
	for _, ph := range e.Load {
		end += ph.Duration
		if t < end {
			return ph.Throughput, end
		}
	}
	return e.Load[len(e.Load)-1].Throughput, 0
}

// sendEvent is one scheduled abroadcast: which process sends, and when.
type sendEvent struct {
	p  stack.ProcessID
	at time.Duration
}

// sendSchedule draws the workload: total sends, round-robin over senders,
// each sender advancing its own Poisson clock with exponential gaps drawn
// at the offered rate current at that clock (silent phases are skipped to
// their boundary). With no Load schedule this reproduces the original
// constant-rate generator exactly — same rng call sequence, same
// arithmetic — which the byte-stable BENCH_<rev>.json trajectory depends
// on.
func sendSchedule(e *Experiment, rng *rand.Rand, total int) []sendEvent {
	senders := e.senderProcs()
	next := make([]time.Duration, e.N+1)
	out := make([]sendEvent, 0, total)
	for k := 0; k < total; k++ {
		p := senders[k%len(senders)]
		t := next[p]
		rate, boundary := e.offeredAt(t)
		for rate <= 0 {
			t = boundary
			rate, boundary = e.offeredAt(t)
		}
		perProc := rate / float64(len(senders))
		gap := time.Duration(rng.ExpFloat64() / perProc * float64(time.Second))
		next[p] = t + gap
		out = append(out, sendEvent{p: p, at: next[p]})
	}
	return out
}

// scaleLoad scales every phase duration, preserving the rates: the
// schedule keeps its shape while quick runs (scale < 1) shorten it and
// oversampled runs (scale > 1) lengthen it, so the message count implied by
// the integral tracks scale exactly like the other figures' counts do.
func scaleLoad(load []LoadPhase, scale float64) []LoadPhase {
	if scale <= 0 || scale == 1 {
		return load
	}
	out := make([]LoadPhase, len(load))
	for i, ph := range load {
		d := time.Duration(float64(ph.Duration) * scale)
		if d <= 0 {
			d = time.Millisecond
		}
		out[i] = LoadPhase{Duration: d, Throughput: ph.Throughput}
	}
	return out
}

// loadTotal returns the expected number of sends a schedule generates over
// its phases (the integral of rate over time), floored at a sane minimum so
// tiny scales still measure something.
func loadTotal(load []LoadPhase) int {
	var sum float64
	for _, ph := range load {
		sum += ph.Throughput * ph.Duration.Seconds()
	}
	n := int(sum)
	if n < 60 {
		n = 60
	}
	return n
}
