package tcpnet

import (
	"sync"
	"testing"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	q := newQueue()
	var got []int
	for i := 1; i <= 5; i++ {
		i := i
		q.put(func() { got = append(got, i) })
	}
	stop := make(chan struct{})
	for i := 0; i < 5; i++ {
		fn, ok := q.get(stop)
		if !ok {
			t.Fatalf("get %d returned !ok with items pending", i)
		}
		fn()
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("queue not FIFO: %v", got)
		}
	}
}

func TestQueueGetBlocksUntilPut(t *testing.T) {
	q := newQueue()
	stop := make(chan struct{})
	done := make(chan int, 1)
	go func() {
		fn, ok := q.get(stop)
		if !ok {
			done <- -1
			return
		}
		fn()
		done <- 1
	}()
	select {
	case <-done:
		t.Fatal("get returned before any put")
	case <-time.After(20 * time.Millisecond):
	}
	q.put(func() {})
	select {
	case v := <-done:
		if v != 1 {
			t.Fatal("get unblocked by stop, not by the put")
		}
	case <-time.After(time.Second):
		t.Fatal("get never observed the put")
	}
}

func TestQueueGetUnblocksOnStop(t *testing.T) {
	q := newQueue()
	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, ok := q.get(stop)
		done <- ok
	}()
	close(stop)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("get returned an item after stop")
		}
	case <-time.After(time.Second):
		t.Fatal("get did not unblock on stop")
	}
}

func TestQueueCloseDiscardsAndRejects(t *testing.T) {
	q := newQueue()
	q.put(func() { t.Fatal("discarded item ran") })
	q.close()
	q.put(func() { t.Fatal("post-close item ran") })
	stop := make(chan struct{})
	close(stop) // close() leaves get waiting; use stop to observe emptiness
	if _, ok := q.get(stop); ok {
		t.Fatal("get returned an item from a closed queue")
	}
}

// TestQueueConcurrentPutGet drains items produced by several goroutines;
// run under -race this also checks the locking discipline.
func TestQueueConcurrentPutGet(t *testing.T) {
	q := newQueue()
	const producers, perProducer = 4, 100
	var mu sync.Mutex
	seen := 0
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.put(func() {
					mu.Lock()
					seen++
					mu.Unlock()
				})
			}
		}()
	}
	stop := make(chan struct{})
	for i := 0; i < producers*perProducer; i++ {
		fn, ok := q.get(stop)
		if !ok {
			t.Fatal("get failed mid-drain")
		}
		fn()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if seen != producers*perProducer {
		t.Fatalf("drained %d items, want %d", seen, producers*perProducer)
	}
}

func TestTimerRegistryFiresAndDeregisters(t *testing.T) {
	var tr timerRegistry
	fired := make(chan struct{})
	tr.schedule(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("scheduled timer never fired")
	}
	// The firing callback deregisters itself.
	deadline := time.Now().Add(time.Second)
	for {
		tr.mu.Lock()
		n := len(tr.timers)
		tr.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d timers still registered after firing", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTimerRegistryCancel(t *testing.T) {
	var tr timerRegistry
	cancel := tr.schedule(10*time.Millisecond, func() { t.Error("cancelled timer fired") })
	cancel()
	cancel() // idempotent
	tr.mu.Lock()
	n := len(tr.timers)
	tr.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d timers registered after cancel", n)
	}
	time.Sleep(30 * time.Millisecond)
}

func TestTimerRegistryStopAll(t *testing.T) {
	var tr timerRegistry
	for i := 0; i < 3; i++ {
		tr.schedule(10*time.Millisecond, func() { t.Error("stopped timer fired") })
	}
	tr.stopAll()
	time.Sleep(30 * time.Millisecond)
	// stopAll resets the registry; scheduling afterwards still works.
	fired := make(chan struct{})
	tr.schedule(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("timer scheduled after stopAll never fired")
	}
}
