// Package tcpnet executes protocol stacks over real TCP sockets: one OS
// process (or one Peer value) per protocol process, length-prefixed
// gob-encoded envelopes on persistent connections, automatic redial.
//
// Together with internal/simnet (deterministic simulation) and
// internal/live (in-memory goroutines), this gives the repository the full
// Neko property the paper's methodology relies on: the same protocol code
// runs simulated, in-memory, and on a real network.
//
// Lifecycle: Listen → wire protocol layers on Node() → Start → Do/traffic →
// Close.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"abcast/internal/metrics"
	"abcast/internal/stack"
	"abcast/internal/wire"
)

// maxFrameBytes bounds a single envelope on the wire (defensive; protocol
// envelopes are far smaller).
const maxFrameBytes = 64 << 20

// Option configures a Peer.
type Option func(*config)

type config struct {
	seed        int64
	dialBackoff time.Duration
	dialTimeout time.Duration
	metricsAddr string
	metrics     *metrics.Registry
}

// WithSeed seeds the peer's random source.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithDialBackoff sets the redial interval (default 50ms).
func WithDialBackoff(d time.Duration) Option { return func(c *config) { c.dialBackoff = d } }

// WithMetrics attaches a metrics registry to the peer; wire it into the
// protocol layers (e.g. core.Config.Metrics) so their counters land in it.
// Without WithMetricsAddr it is only readable in-process via Metrics().
func WithMetrics(r *metrics.Registry) Option { return func(c *config) { c.metrics = r } }

// WithMetricsAddr starts an HTTP exporter on addr alongside the peer:
// /metrics serves the peer's registry (prefixed "p<id>."), /debug/pprof/
// serves the standard profiling endpoints. A registry is created if
// WithMetrics did not supply one. Use MetricsAddr for the bound address
// (useful with ":0"); the exporter shuts down with Close.
func WithMetricsAddr(addr string) Option { return func(c *config) { c.metricsAddr = addr } }

// Peer is one protocol process attached to a TCP group; it implements
// stack.Context.
type Peer struct {
	cfg     config
	self    stack.ProcessID
	n       int
	node    *stack.Node
	ln      net.Listener
	inbox   *queue
	out     []*outbound // index 0 unused; nil at self
	stop    chan struct{}
	stopped sync.Once
	wg      sync.WaitGroup
	crashed atomic.Bool
	started atomic.Bool

	reg  *metrics.Registry // nil when metrics are off
	msrv *metrics.Server   // nil without WithMetricsAddr

	rngMu sync.Mutex
	rng   *rand.Rand

	timers timerRegistry
}

var _ stack.Context = (*Peer)(nil)

// Listen creates process self of an n-process group, listening on addr
// (e.g. "127.0.0.1:0"). Wire protocol layers on Node() before calling
// Start.
func Listen(self stack.ProcessID, n int, addr string, opts ...Option) (*Peer, error) {
	if self < 1 || int(self) > n {
		return nil, fmt.Errorf("tcpnet: process id %d out of range 1..%d", self, n)
	}
	cfg := config{seed: 1, dialBackoff: 50 * time.Millisecond, dialTimeout: 2 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	p := &Peer{
		cfg:   cfg,
		self:  self,
		n:     n,
		ln:    ln,
		inbox: newQueue(),
		out:   make([]*outbound, n+1),
		stop:  make(chan struct{}),
		rng:   rand.New(rand.NewSource(cfg.seed + int64(self)*31337)),
		reg:   cfg.metrics,
	}
	if cfg.metricsAddr != "" {
		if p.reg == nil {
			p.reg = metrics.New()
		}
		srv, err := metrics.Serve(cfg.metricsAddr, map[string]*metrics.Registry{
			fmt.Sprintf("p%d", self): p.reg,
		})
		if err != nil {
			ln.Close()
			return nil, err
		}
		p.msrv = srv
	}
	p.node = stack.NewNode(p)
	return p, nil
}

// Addr returns the actual listening address (useful with ":0").
func (p *Peer) Addr() string { return p.ln.Addr().String() }

// Metrics returns the peer's metrics registry (nil when neither WithMetrics
// nor WithMetricsAddr was used). Wire it into the protocol layers.
func (p *Peer) Metrics() *metrics.Registry { return p.reg }

// MetricsAddr returns the bound address of the HTTP exporter, or "" when
// WithMetricsAddr was not used.
func (p *Peer) MetricsAddr() string {
	if p.msrv == nil {
		return ""
	}
	return p.msrv.Addr()
}

// Node returns the protocol node for wiring layers (before Start).
func (p *Peer) Node() *stack.Node { return p.node }

// Start connects to the group and begins processing events. addrs maps
// every process id (including self, which is ignored) to its address.
func (p *Peer) Start(addrs map[stack.ProcessID]string) error {
	for q := stack.ProcessID(1); q <= stack.ProcessID(p.n); q++ {
		if q == p.self {
			continue
		}
		addr, ok := addrs[q]
		if !ok {
			return fmt.Errorf("tcpnet: no address for process %d", q)
		}
		p.out[q] = newOutbound(p, addr)
	}
	p.started.Store(true)
	p.wg.Add(2)
	go p.acceptLoop()
	go p.eventLoop()
	return nil
}

// Do runs fn on the peer's event loop.
func (p *Peer) Do(fn func()) { p.inbox.put(fn) }

// Crash makes the peer stop processing and sending without closing sockets
// abruptly ordered — used by fault-injection tests.
func (p *Peer) Crash() { p.crashed.Store(true) }

// Close shuts the peer down and waits for its goroutines.
func (p *Peer) Close() error {
	var err error
	p.stopped.Do(func() {
		close(p.stop)
		if p.msrv != nil {
			p.msrv.Close()
		}
		err = p.ln.Close()
		p.inbox.close()
		for _, o := range p.out {
			if o != nil {
				o.close()
			}
		}
		p.timers.stopAll()
	})
	p.wg.Wait()
	return err
}

// eventLoop serializes all protocol events of this process.
func (p *Peer) eventLoop() {
	defer p.wg.Done()
	for {
		fn, ok := p.inbox.get(p.stop)
		if !ok {
			return
		}
		if !p.crashed.Load() {
			fn()
		}
	}
}

// acceptLoop accepts inbound connections from any peer.
func (p *Peer) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.wg.Add(1)
		go p.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection into the event loop.
func (p *Peer) readLoop(conn net.Conn) {
	defer p.wg.Done()
	defer conn.Close()
	go func() {
		<-p.stop
		conn.Close()
	}()
	for {
		data, err := readFrame(conn)
		if err != nil {
			return
		}
		from, env, err := wire.DecodeEnvelope(data)
		if err != nil {
			return // corrupted stream: drop the connection
		}
		p.inbox.put(func() { p.node.Dispatch(from, env) })
	}
}

// ID implements stack.Context.
func (p *Peer) ID() stack.ProcessID { return p.self }

// N implements stack.Context.
func (p *Peer) N() int { return p.n }

// Now implements stack.Context.
func (p *Peer) Now() time.Time { return time.Now() }

// Rand implements stack.Context.
func (p *Peer) Rand() *rand.Rand { return p.rng }

// Crashed implements stack.Context.
func (p *Peer) Crashed() bool { return p.crashed.Load() }

// Work implements stack.Context (real computation is real on this runtime).
func (p *Peer) Work(time.Duration) {}

// Logf implements stack.Context.
func (p *Peer) Logf(string, ...any) {}

// Send implements stack.Context.
func (p *Peer) Send(to stack.ProcessID, env stack.Envelope) {
	if p.crashed.Load() {
		return
	}
	if to == p.self {
		p.inbox.put(func() { p.node.Dispatch(p.self, env) })
		return
	}
	if o := p.out[to]; o != nil {
		data, err := wire.EncodeEnvelope(p.self, env)
		if err != nil {
			return // unencodable message: programming error upstream
		}
		o.send(data)
	}
}

// SetTimer implements stack.Context.
func (p *Peer) SetTimer(d time.Duration, fn func()) (cancel func()) {
	var cancelled atomic.Bool
	stop := p.timers.schedule(d, func() {
		if cancelled.Load() || p.crashed.Load() {
			return
		}
		p.inbox.put(func() {
			if !cancelled.Load() {
				fn()
			}
		})
	})
	return func() {
		cancelled.Store(true)
		stop()
	}
}

// outbound is a persistent, self-healing connection to one peer with an
// unbounded send queue (reliable-channel semantics between correct
// processes: nothing is dropped while the process lives).
type outbound struct {
	peer   *Peer
	addr   string
	queue  *queue
	closed chan struct{}
	once   sync.Once
	conn   net.Conn // owned by writeLoop exclusively
}

func newOutbound(p *Peer, addr string) *outbound {
	o := &outbound{peer: p, addr: addr, queue: newQueue(), closed: make(chan struct{})}
	p.wg.Add(1)
	go o.writeLoop()
	return o
}

func (o *outbound) send(data []byte) {
	d := data
	o.queue.put(func() { o.write(d) })
}

func (o *outbound) close() { o.once.Do(func() { close(o.closed) }) }

// writeLoop drains the queue; write handles (re)dialing.
func (o *outbound) writeLoop() {
	defer o.peer.wg.Done()
	defer func() {
		if o.conn != nil {
			o.conn.Close()
		}
	}()
	for {
		fn, ok := o.queue.get(o.closed)
		if !ok {
			return
		}
		fn()
	}
}

func (o *outbound) write(data []byte) {
	for attempt := 0; ; attempt++ {
		select {
		case <-o.closed:
			return
		default:
		}
		if o.conn == nil {
			conn, err := net.DialTimeout("tcp", o.addr, o.peer.cfg.dialTimeout)
			if err != nil {
				// Peer not up (yet): back off and retry. A crashed peer
				// keeps us retrying, which is fine — channels only
				// promise delivery between correct processes.
				if attempt > 200 {
					return // give up on persistent failure
				}
				select {
				case <-o.closed:
					return
				case <-time.After(o.peer.cfg.dialBackoff):
				}
				continue
			}
			o.conn = conn
		}
		if err := writeFrame(o.conn, data); err != nil {
			o.conn.Close()
			o.conn = nil
			continue // redial and resend
		}
		return
	}
}

// writeFrame emits a length-prefixed frame.
func writeFrame(w io.Writer, data []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size > maxFrameBytes {
		return nil, errors.New("tcpnet: oversized frame")
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	return data, nil
}
