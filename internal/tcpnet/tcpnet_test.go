package tcpnet

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"abcast/internal/consensus"
	"abcast/internal/core"
	"abcast/internal/fd"
	"abcast/internal/msg"
	"abcast/internal/rbcast"
	"abcast/internal/stack"
	"abcast/internal/wire"
)

// tcpGroup spins up n peers on loopback with a full atomic broadcast stack.
type tcpGroup struct {
	peers   []*Peer // index 0 unused
	engines []*core.Engine
	mu      sync.Mutex
	order   [][]msg.ID
}

func newTCPGroup(t *testing.T, n int, variant core.Variant) *tcpGroup {
	t.Helper()
	g := &tcpGroup{
		peers:   make([]*Peer, n+1),
		engines: make([]*core.Engine, n+1),
		order:   make([][]msg.ID, n+1),
	}
	addrs := make(map[stack.ProcessID]string, n)
	for i := 1; i <= n; i++ {
		p, err := Listen(stack.ProcessID(i), n, "127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen p%d: %v", i, err)
		}
		g.peers[i] = p
		addrs[stack.ProcessID(i)] = p.Addr()
	}
	t.Cleanup(func() {
		for i := 1; i <= n; i++ {
			_ = g.peers[i].Close()
		}
	})
	for i := 1; i <= n; i++ {
		i := i
		node := g.peers[i].Node()
		det := fd.NewHeartbeat(node, fd.DefaultConfig())
		eng, err := core.New(node, core.Config{
			Variant:  variant,
			RB:       rbcast.KindEager,
			Detector: det,
			Deliver: func(app *msg.App) {
				g.mu.Lock()
				g.order[i] = append(g.order[i], app.ID)
				g.mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("core.New p%d: %v", i, err)
		}
		g.engines[i] = eng
	}
	for i := 1; i <= n; i++ {
		if err := g.peers[i].Start(addrs); err != nil {
			t.Fatalf("Start p%d: %v", i, err)
		}
	}
	return g
}

// broadcast injects an abcast on process p's event loop.
func (g *tcpGroup) broadcast(p int, payload string) {
	g.peers[p].Do(func() { g.engines[p].ABroadcast([]byte(payload)) })
}

// deliveredCount returns how many messages process p has delivered.
func (g *tcpGroup) deliveredCount(p int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.order[p])
}

// waitDelivered blocks until every process in procs delivered want
// messages.
func (g *tcpGroup) waitDelivered(t *testing.T, procs []int, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		done := true
		for _, p := range procs {
			if g.deliveredCount(p) < want {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, p := range procs {
		t.Logf("p%d delivered %d/%d", p, g.deliveredCount(p), want)
	}
	t.Fatal("timed out waiting for deliveries over TCP")
}

func TestTCPTotalOrder(t *testing.T) {
	const n, perProc = 3, 4
	g := newTCPGroup(t, n, core.VariantIndirectCT)
	for p := 1; p <= n; p++ {
		for i := 0; i < perProc; i++ {
			g.broadcast(p, fmt.Sprintf("m%d-%d", p, i))
		}
	}
	total := n * perProc
	g.waitDelivered(t, []int{1, 2, 3}, total, 30*time.Second)
	g.mu.Lock()
	defer g.mu.Unlock()
	for p := 2; p <= n; p++ {
		for i := 0; i < total; i++ {
			if g.order[1][i] != g.order[p][i] {
				t.Fatalf("total order violated over TCP at %d: %v vs %v",
					i, g.order[1][i], g.order[p][i])
			}
		}
	}
}

func TestTCPCrashTolerance(t *testing.T) {
	const n = 3
	g := newTCPGroup(t, n, core.VariantIndirectCT)
	g.broadcast(1, "before")
	g.waitDelivered(t, []int{1, 2, 3}, 1, 20*time.Second)
	// Hard-crash p2 (stops processing and sending).
	g.peers[2].Crash()
	g.broadcast(3, "after")
	g.waitDelivered(t, []int{1, 3}, 2, 30*time.Second)
}

func TestTCPConsensusOnMessages(t *testing.T) {
	// Exercises gob round-tripping of MsgSetValue (payload-carrying
	// consensus values).
	const n = 3
	g := newTCPGroup(t, n, core.VariantConsensusMsgs)
	g.broadcast(2, "payload-over-tcp")
	g.waitDelivered(t, []int{1, 2, 3}, 1, 20*time.Second)
}

func TestListenValidation(t *testing.T) {
	if _, err := Listen(0, 3, "127.0.0.1:0"); err == nil {
		t.Error("process id 0 accepted")
	}
	if _, err := Listen(4, 3, "127.0.0.1:0"); err == nil {
		t.Error("out-of-range process id accepted")
	}
	if _, err := Listen(1, 3, "256.0.0.1:bogus"); err == nil {
		t.Error("bogus address accepted")
	}
	p, err := Listen(1, 3, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Start(map[stack.ProcessID]string{2: "127.0.0.1:1"}); err == nil {
		t.Error("Start with missing address accepted")
	}
}

func TestWireRoundTrip(t *testing.T) {
	envs := []stack.Envelope{
		{Proto: stack.ProtoFD, Msg: fd.HeartbeatMsg{}},
		{Proto: stack.ProtoRB, Msg: rbcast.DataMsg{App: &msg.App{
			ID: msg.ID{Sender: 2, Seq: 9}, Payload: []byte("hi")}}},
		{Proto: stack.ProtoCons, Inst: 7, Msg: consensus.DecideMsg{
			Est: core.IDSetValue{Set: msg.NewIDSet(
				msg.ID{Sender: 1, Seq: 1}, msg.ID{Sender: 3, Seq: 4})},
		}},
		// ⊥ estimates (nil Value) must survive the wire too.
		{Proto: stack.ProtoCons, Inst: 8, Msg: consensus.MREchoMsg{R: 2, Bottom: true}},
	}
	for i, env := range envs {
		data, err := wire.EncodeEnvelope(3, env)
		if err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
		from, got, err := wire.DecodeEnvelope(data)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if from != 3 || got.Proto != env.Proto || got.Inst != env.Inst {
			t.Fatalf("round trip %d: got from=%d %+v", i, from, got)
		}
		if got.Msg.WireSize() != env.Msg.WireSize() {
			t.Fatalf("round trip %d: wire size %d != %d", i, got.Msg.WireSize(), env.Msg.WireSize())
		}
	}
	// Decoded identifier sets must keep their content.
	data, err := wire.EncodeEnvelope(1, envs[2])
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := wire.DecodeEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	dec, ok := got.Msg.(consensus.DecideMsg)
	if !ok {
		t.Fatalf("decoded type %T", got.Msg)
	}
	set := dec.Est.(core.IDSetValue).Set
	if !set.Contains(msg.ID{Sender: 3, Seq: 4}) || set.Len() != 2 {
		t.Fatalf("id set mangled: %v", set)
	}
}

func TestPeerMetricsExporter(t *testing.T) {
	p, err := Listen(1, 1, "127.0.0.1:0", WithMetricsAddr("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Metrics() == nil {
		t.Fatal("WithMetricsAddr did not create a registry")
	}
	p.Metrics().Counter("core.delivered").Add(7)
	base := "http://" + p.MetricsAddr()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "p1.core.delivered 7") {
		t.Fatalf("/metrics missing counter line:\n%s", body)
	}
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Fatal("exporter still serving after Close")
	}
}
