package tcpnet

import (
	"sync"
	"time"
)

// queue is an unbounded FIFO of work items (same contract as the live
// runtime's mailbox: unboundedness prevents send/receive deadlocks).
type queue struct {
	mu     sync.Mutex
	items  []func()
	signal chan struct{}
	closed bool
}

func newQueue() *queue {
	return &queue{signal: make(chan struct{}, 1)}
}

// put enqueues an item; items enqueued after close are dropped.
func (q *queue) put(fn func()) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, fn)
	q.mu.Unlock()
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// get dequeues the next item, blocking until one arrives or stop closes.
func (q *queue) get(stop <-chan struct{}) (func(), bool) {
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			fn := q.items[0]
			q.items[0] = nil
			q.items = q.items[1:]
			q.mu.Unlock()
			return fn, true
		}
		q.mu.Unlock()
		select {
		case <-q.signal:
		case <-stop:
			return nil, false
		}
	}
}

// close marks the queue closed and discards pending items.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.items = nil
}

// timerRegistry tracks outstanding timers so Close can stop them; timers
// are created under the lock so a firing callback's deregistration is
// ordered after registration.
type timerRegistry struct {
	mu     sync.Mutex
	timers map[uint64]*time.Timer
	nextID uint64
}

// schedule arms fn after d; the returned function cancels it.
func (tr *timerRegistry) schedule(d time.Duration, fn func()) (cancel func()) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.timers == nil {
		tr.timers = make(map[uint64]*time.Timer)
	}
	id := tr.nextID
	tr.nextID++
	t := time.AfterFunc(d, func() {
		tr.remove(id)
		fn()
	})
	tr.timers[id] = t
	return func() {
		tr.mu.Lock()
		defer tr.mu.Unlock()
		if t, ok := tr.timers[id]; ok {
			t.Stop()
			delete(tr.timers, id)
		}
	}
}

func (tr *timerRegistry) remove(id uint64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	delete(tr.timers, id)
}

func (tr *timerRegistry) stopAll() {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for _, t := range tr.timers {
		t.Stop()
	}
	tr.timers = nil
}
