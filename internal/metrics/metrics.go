// Package metrics is a small deterministic metrics registry: named
// counters, gauges and bounded histograms that the protocol layers (core,
// consensus, relink, fd, persist, simnet) register into, forming one
// catalog instead of scattered per-layer counter fields.
//
// Handles are always usable: asking a nil *Registry for a metric returns a
// standalone handle, so layers hold non-nil handles unconditionally and
// their Stats views read the same cells whether or not a registry collects
// them. Updates are a single atomic add — they never allocate, schedule,
// or read clocks, so enabling metrics cannot perturb the simulator's
// schedule and a run's figures stay byte-identical either way.
//
// Values are atomics so the live runtime's HTTP exporter (Serve: an
// expvar-style /metrics plus net/http/pprof) can read them while the
// event loops run.
package metrics

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric cell.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d. Safe on a nil counter.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a set-to-current-value metric cell.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value. Safe on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into a fixed set of upper-bound buckets
// (plus an overflow bucket), tracking count and sum exactly. Bounds are
// inclusive upper edges in ascending order.
type Histogram struct {
	mu     sync.Mutex
	bounds []int64
	counts []int64 // len(bounds)+1; last = overflow
	count  int64
	sum    int64
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one observation. Safe on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count  int64
	Sum    int64
	Bounds []int64 // ascending upper edges
	Counts []int64 // len(Bounds)+1; last = overflow
}

// Snapshot returns a copy of the histogram's state (zero on nil).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{
		Count:  h.count,
		Sum:    h.sum,
		Bounds: append([]int64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
	}
	return s
}

// Registry holds the named metrics of one process. The zero value is not
// used directly — call New — but a nil *Registry is the disabled state:
// every lookup returns a standalone handle that works and is simply not
// collected anywhere.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, registering it on first use. On a
// nil registry it returns a fresh standalone counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use. On a nil
// registry it returns a fresh standalone gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it with the given
// bucket bounds on first use (later callers share the first bounds). On a
// nil registry it returns a fresh standalone histogram.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Names returns the sorted catalog of registered metric names (histograms
// appear under their base name).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns every cell's current value: counters and gauges under
// their name, histograms expanded to <name>.count, <name>.sum and one
// <name>.le_<bound> (or .le_inf) cell per bucket.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()
	out := make(map[string]int64)
	for n, c := range counters {
		out[n] = c.Value()
	}
	for n, g := range gauges {
		out[n] = g.Value()
	}
	for n, h := range hists {
		s := h.Snapshot()
		out[n+".count"] = s.Count
		out[n+".sum"] = s.Sum
		for i, b := range s.Bounds {
			out[fmt.Sprintf("%s.le_%d", n, b)] = s.Counts[i]
		}
		out[n+".le_inf"] = s.Counts[len(s.Counts)-1]
	}
	return out
}

// WriteText renders the snapshot as expvar-style "name value" lines in
// sorted name order.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", n, snap[n]); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the given registries as plain text: each metric line is
// prefixed with its registry's name ("<reg>.<metric> <value>"), registries
// in sorted name order.
func Handler(regs map[string]*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		names := make([]string, 0, len(regs))
		for n := range regs {
			names = append(names, n)
		}
		sort.Strings(names)
		var sb strings.Builder
		for _, n := range names {
			snap := regs[n].Snapshot()
			keys := make([]string, 0, len(snap))
			for k := range snap {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&sb, "%s.%s %d\n", n, k, snap[k])
			}
		}
		io.WriteString(w, sb.String())
	})
}

// Server is a running metrics/profiling HTTP endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server on addr exposing /metrics (the registries,
// via Handler) and the standard net/http/pprof endpoints under
// /debug/pprof/. It returns once the listener is bound; use Addr for the
// actual address (useful with ":0") and Close to shut it down.
func Serve(addr string, regs map[string]*Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(regs))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
