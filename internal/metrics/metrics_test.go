package metrics

import (
	"bytes"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
)

func TestNilRegistryHandlesWork(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("standalone counter = %d, want 3", c.Value())
	}
	g := r.Gauge("y")
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("standalone gauge = %d, want 7", g.Value())
	}
	h := r.Histogram("z", 10, 100)
	h.Observe(5)
	if s := h.Snapshot(); s.Count != 1 || s.Sum != 5 {
		t.Fatalf("standalone histogram snapshot = %+v", s)
	}
	if r.Names() != nil || r.Snapshot() != nil {
		t.Fatal("nil registry should report no catalog")
	}
}

func TestNilHandlesAreSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge")
	}
	var h *Histogram
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram")
	}
}

func TestCounterUpdateDoesNotAllocate(t *testing.T) {
	c := New().Counter("hot")
	allocs := testing.AllocsPerRun(100, func() { c.Inc() })
	if allocs != 0 {
		t.Fatalf("Counter.Inc allocates %v per call", allocs)
	}
}

func TestRegistryDedupAndCatalog(t *testing.T) {
	r := New()
	a := r.Counter("core.delivered")
	b := r.Counter("core.delivered")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(4)
	r.Gauge("core.window").Set(2)
	r.Histogram("core.batch_size", 1, 4).Observe(3)
	want := []string{"core.batch_size", "core.delivered", "core.window"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names = %v, want %v", got, want)
	}
	snap := r.Snapshot()
	if snap["core.delivered"] != 4 || snap["core.window"] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap["core.batch_size.count"] != 1 || snap["core.batch_size.sum"] != 3 ||
		snap["core.batch_size.le_1"] != 0 || snap["core.batch_size.le_4"] != 1 ||
		snap["core.batch_size.le_inf"] != 0 {
		t.Fatalf("histogram expansion = %v", snap)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 5122 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
	if !reflect.DeepEqual(s.Counts, []int64{2, 2, 0, 1}) {
		t.Fatalf("bucket counts = %v", s.Counts)
	}
}

func TestWriteTextSortedAndStable(t *testing.T) {
	r := New()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("c").Set(3)
	var x, y bytes.Buffer
	if err := r.WriteText(&x); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&y); err != nil {
		t.Fatal(err)
	}
	if x.String() != "a 1\nb 2\nc 3\n" {
		t.Fatalf("WriteText = %q", x.String())
	}
	if x.String() != y.String() {
		t.Fatal("WriteText not stable across calls")
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	r := New()
	r.Counter("core.delivered").Add(9)
	s, err := Serve("127.0.0.1:0", map[string]*Registry{"p1": r})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "p1.core.delivered 9\n") {
		t.Fatalf("/metrics body = %q", body)
	}
	resp, err = http.Get("http://" + s.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d", resp.StatusCode)
	}
}
