package persist

import (
	"reflect"
	"testing"

	"abcast/internal/msg"
	"abcast/internal/stack"
)

// sampleCheckpoint builds a checkpoint exercising every field, including
// unsorted floors/residue (the stores must canonicalize).
func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Frontier:    42,
		Seq:         117,
		LinkReserve: 2048,
		LogBase:     39,
		Entries: []Entry{
			{ID: msg.ID{Sender: 2, Seq: 11}, K: 40},
			{ID: msg.ID{Sender: 1, Seq: 9}, K: 41},
			{ID: msg.ID{Sender: 3, Seq: 1}, K: 41},
		},
		Floors: []Floor{
			{Sender: 3, Seq: 1},
			{Sender: 1, Seq: 9},
			{Sender: 2, Seq: 10},
		},
		Residue: []msg.ID{
			{Sender: 2, Seq: 13},
			{Sender: 1, Seq: 11},
		},
		Views: []View{
			{Eff: 1, Members: []stack.ProcessID{1, 2, 3}},
			{Eff: 30, Members: []stack.ProcessID{1, 2, 3, 4}},
		},
	}
}

// canonical returns the checkpoint in the normalized form stores hand back.
func canonical(cp *Checkpoint) *Checkpoint {
	c := cp.Clone()
	c.normalize()
	return c
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cp := canonical(sampleCheckpoint())
	got, err := DecodeCheckpoint(EncodeCheckpoint(cp))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cp)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := EncodeCheckpoint(canonical(sampleCheckpoint()))
	if _, err := DecodeCheckpoint(enc[:len(enc)-1]); err == nil {
		t.Fatalf("truncated checkpoint decoded without error")
	}
	bad := append([]byte{}, enc...)
	bad[0] = 99 // unknown format byte
	if _, err := DecodeCheckpoint(bad); err == nil {
		t.Fatalf("unknown format decoded without error")
	}
	if _, err := DecodeCheckpoint(append(enc, 0)); err == nil {
		t.Fatalf("trailing bytes decoded without error")
	}
}

// storeSuite runs the Store contract against one implementation.
func storeSuite(t *testing.T, open func(t *testing.T) Store) {
	t.Run("EmptyStoreRecoversNil", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		cp, err := Recover(s)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if cp != nil {
			t.Fatalf("empty store recovered %+v, want nil", cp)
		}
	})

	t.Run("CheckpointRoundTrip", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		want := sampleCheckpoint()
		if err := s.SaveCheckpoint(want); err != nil {
			t.Fatalf("save: %v", err)
		}
		got, err := s.LoadCheckpoint()
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		if !reflect.DeepEqual(got, canonical(want)) {
			t.Fatalf("loaded %+v\nwant %+v", got, canonical(want))
		}
	})

	t.Run("SaveReplacesPrevious", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		first := sampleCheckpoint()
		if err := s.SaveCheckpoint(first); err != nil {
			t.Fatalf("save: %v", err)
		}
		second := sampleCheckpoint()
		second.Frontier = 77
		second.LogBase = 70
		if err := s.SaveCheckpoint(second); err != nil {
			t.Fatalf("save: %v", err)
		}
		got, err := s.LoadCheckpoint()
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		if got.Frontier != 77 || got.LogBase != 70 {
			t.Fatalf("loaded frontier %d base %d, want 77/70", got.Frontier, got.LogBase)
		}
	})

	t.Run("WALAdvancesCounters", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		if err := s.SaveCheckpoint(&Checkpoint{Frontier: 5, Seq: 10, LinkReserve: 100}); err != nil {
			t.Fatalf("save: %v", err)
		}
		for _, rec := range []WALRecord{
			{Kind: WALSeq, Value: 11},
			{Kind: WALSeq, Value: 12},
			{Kind: WALLinkReserve, Value: 1124},
		} {
			if err := s.AppendWAL(rec); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		cp, err := Recover(s)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if cp.Seq != 12 || cp.LinkReserve != 1124 || cp.Frontier != 5 {
			t.Fatalf("recovered %+v, want Seq 12, LinkReserve 1124, Frontier 5", cp)
		}
	})

	t.Run("WALWithoutCheckpointStillRecovers", func(t *testing.T) {
		// A crash before the first checkpoint must still restore the
		// sequence counters — that is the WAL's whole reason to exist.
		s := open(t)
		defer s.Close()
		if err := s.AppendWAL(WALRecord{Kind: WALSeq, Value: 3}); err != nil {
			t.Fatalf("append: %v", err)
		}
		cp, err := Recover(s)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if cp == nil || cp.Seq != 3 {
			t.Fatalf("recovered %+v, want Seq 3", cp)
		}
	})

	t.Run("TruncateDropsWAL", func(t *testing.T) {
		s := open(t)
		defer s.Close()
		if err := s.AppendWAL(WALRecord{Kind: WALSeq, Value: 9}); err != nil {
			t.Fatalf("append: %v", err)
		}
		if err := s.TruncateWAL(); err != nil {
			t.Fatalf("truncate: %v", err)
		}
		n := 0
		if err := s.ReplayWAL(func(WALRecord) error { n++; return nil }); err != nil {
			t.Fatalf("replay: %v", err)
		}
		if n != 0 {
			t.Fatalf("replayed %d records after truncate, want 0", n)
		}
		// Appends after a truncation land in a fresh log.
		if err := s.AppendWAL(WALRecord{Kind: WALSeq, Value: 21}); err != nil {
			t.Fatalf("append: %v", err)
		}
		cp, err := Recover(s)
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if cp == nil || cp.Seq != 21 {
			t.Fatalf("recovered %+v, want Seq 21", cp)
		}
	})
}

func TestMemStore(t *testing.T) {
	storeSuite(t, func(t *testing.T) Store { return NewMemStore() })
}

func TestFileStore(t *testing.T) {
	storeSuite(t, func(t *testing.T) Store {
		s, err := OpenFileStore(t.TempDir())
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return s
	})
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.SaveCheckpoint(sampleCheckpoint()); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := s.AppendWAL(WALRecord{Kind: WALSeq, Value: 200}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	cp, err := Recover(s2)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if cp == nil || cp.Frontier != 42 || cp.Seq != 200 {
		t.Fatalf("recovered %+v, want Frontier 42, Seq 200 (WAL applied)", cp)
	}
}

func TestFileStoreTornWALTail(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := s.AppendWAL(WALRecord{Kind: WALSeq, Value: 7}); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Simulate a crash mid-append: a lone kind byte with no value.
	if _, err := s.wal.Write([]byte{byte(WALSeq)}); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	cp, err := Recover(s)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if cp == nil || cp.Seq != 7 {
		t.Fatalf("recovered %+v, want the pre-tear Seq 7", cp)
	}
	s.Close()
}
