package persist

import "errors"

// ErrClosed reports use of a closed store.
var ErrClosed = errors.New("persist: store is closed")

// MemStore is the in-memory Store: checkpoint and WAL survive engine
// restarts within the same OS process (the simulator's crash/restart
// episodes, tests, the bench harness), and nothing survives the process.
type MemStore struct {
	cp     *Checkpoint
	wal    []WALRecord
	closed bool
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// SaveCheckpoint implements Store.
func (s *MemStore) SaveCheckpoint(cp *Checkpoint) error {
	if s.closed {
		return ErrClosed
	}
	c := cp.Clone()
	c.normalize()
	s.cp = c
	return nil
}

// LoadCheckpoint implements Store.
func (s *MemStore) LoadCheckpoint() (*Checkpoint, error) {
	if s.closed {
		return nil, ErrClosed
	}
	return s.cp.Clone(), nil
}

// AppendWAL implements Store.
func (s *MemStore) AppendWAL(rec WALRecord) error {
	if s.closed {
		return ErrClosed
	}
	s.wal = append(s.wal, rec)
	return nil
}

// ReplayWAL implements Store.
func (s *MemStore) ReplayWAL(fn func(WALRecord) error) error {
	if s.closed {
		return ErrClosed
	}
	for _, rec := range s.wal {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// TruncateWAL implements Store.
func (s *MemStore) TruncateWAL() error {
	if s.closed {
		return ErrClosed
	}
	s.wal = nil
	return nil
}

// Close implements Store. The retained state survives: reopening is simply
// using the same *MemStore for the next engine incarnation, so Close only
// marks the handoff boundary.
func (s *MemStore) Close() error {
	s.closed = true
	return nil
}

// Reopen returns the store to service after a Close, for the next engine
// incarnation (a restart within the same OS process reuses the value).
func (s *MemStore) Reopen() { s.closed = false }
