// Package persist is the pluggable crash-recovery store of the atomic
// broadcast engine: a checkpoint of the engine's delivered-prefix state plus
// a tiny write-ahead log for the two monotone counters that must never move
// backwards across a restart.
//
// The split follows the classic recovery recipe. Almost all engine state is
// safe to restore *stale*: an old checkpoint merely makes the restarted
// process redeliver a longer suffix (atomic broadcast across a crash is
// at-least-once; order never changes), so checkpoints are written lazily, on
// a timer, whenever the delivered frontier advanced. Two values are the
// exception — the process's own broadcast sequence number and the relink
// stream reservation. Reusing either after a restart would let a *new*
// message alias an *old* identifier and be silently deduplicated, a Validity
// violation. Those are therefore logged write-ahead: the engine appends a
// WAL record before the value is used, and a checkpoint (which embeds the
// current values) truncates the log.
//
// Two implementations sit behind the Store interface: MemStore keeps
// everything in process memory (restart within the same OS process — the
// simulator, tests, the bench harness) and FileStore persists to a
// directory (restart across OS processes). Both are single-owner: a Store
// belongs to one engine, which calls it from its event loop only, so
// implementations need no locking.
//
// Durability model: FileStore writes through the OS page cache without
// fsync. The failure model is process crash (the paper's crash-stop turned
// crash-recovery), not host power loss; a deployment that needs
// power-loss durability can wrap FileStore with an fsyncing variant behind
// the same interface.
package persist

import (
	"fmt"
	"sort"

	"abcast/internal/msg"
	"abcast/internal/stack"
)

// Entry is one delivered-suffix record: an identifier plus the consensus
// instance that ordered it (the engine's ordRec, made public). Payloads are
// deliberately absent — the checkpoint is bookkeeping, not state transfer;
// a restarted process re-obtains payloads it still needs through the
// fetch/snapshot machinery.
type Entry struct {
	ID msg.ID
	K  uint64
}

// Floor is one per-sender contiguous delivered floor: every identifier of
// Sender with sequence number ≤ Seq has been adelivered here.
type Floor struct {
	Sender stack.ProcessID
	Seq    uint64
}

// View is one applied membership view: Members is the consensus member set
// effective from instance Eff onward.
type View struct {
	Eff     uint64
	Members []stack.ProcessID
}

// Checkpoint is the engine's durable restart state: the delivered prefix in
// digest form (frontier, suffix entries, per-sender floors and the sparse
// residue above them), the applied view log, and the two monotone counters.
type Checkpoint struct {
	// Frontier is the first consensus instance not fully delivered when the
	// checkpoint was taken; a restarted engine resumes consumption there.
	Frontier uint64
	// Seq is the engine's own broadcast sequence high-water at save time
	// (WAL records may advance it further; see Apply).
	Seq uint64
	// LinkReserve is the relink sequence reservation: every stream sequence
	// number the previous incarnation ever assigned is below it.
	LinkReserve uint64
	// LogBase is the number of delivered-log entries pruned below Entries[0]
	// — the absolute delivered-sequence position the suffix starts at.
	LogBase uint64
	// Entries is the retained delivered suffix, in delivery order.
	Entries []Entry
	// Floors are the per-sender contiguous delivered floors.
	Floors []Floor
	// Residue lists delivered identifiers above their sender's floor
	// (out-of-order remainder, normally tiny).
	Residue []msg.ID
	// Views is the applied membership view log (empty for static groups).
	Views []View
}

// WALKind tags one write-ahead record.
type WALKind uint8

// The two record kinds.
const (
	// WALSeq records a broadcast sequence number the engine is about to
	// use.
	WALSeq WALKind = 1
	// WALLinkReserve records a new relink sequence reservation: the link
	// layer will assign stream sequence numbers up to (excluding) Value.
	WALLinkReserve WALKind = 2
)

// WALRecord is one write-ahead log record.
type WALRecord struct {
	Kind  WALKind
	Value uint64
}

// Store is the pluggable checkpoint/WAL store. All methods are called from
// the owning engine's event loop; implementations need no locking.
type Store interface {
	// SaveCheckpoint atomically replaces the stored checkpoint.
	SaveCheckpoint(cp *Checkpoint) error
	// LoadCheckpoint returns the stored checkpoint, or (nil, nil) when none
	// has been saved.
	LoadCheckpoint() (*Checkpoint, error)
	// AppendWAL appends one record; it must be durable (to the store's
	// durability model) before returning.
	AppendWAL(rec WALRecord) error
	// ReplayWAL invokes fn for every record appended since the last
	// truncation, in order.
	ReplayWAL(fn func(WALRecord) error) error
	// TruncateWAL discards all replayable records (called after a
	// checkpoint, which embeds their effect).
	TruncateWAL() error
	// Close releases the store. A closed store must not be used again.
	Close() error
}

// Apply folds one WAL record into the checkpoint: records only ever advance
// the monotone counters.
func (cp *Checkpoint) Apply(rec WALRecord) {
	switch rec.Kind {
	case WALSeq:
		if rec.Value > cp.Seq {
			cp.Seq = rec.Value
		}
	case WALLinkReserve:
		if rec.Value > cp.LinkReserve {
			cp.LinkReserve = rec.Value
		}
	}
}

// Recover loads the store's checkpoint and folds the WAL into it. It
// returns nil when the store holds neither a checkpoint nor WAL records —
// a fresh start. A store with WAL records but no checkpoint (the process
// crashed before its first checkpoint) yields a zero checkpoint advanced by
// the records, so the sequence counters still never move backwards.
func Recover(s Store) (*Checkpoint, error) {
	cp, err := s.LoadCheckpoint()
	if err != nil {
		return nil, fmt.Errorf("persist: load checkpoint: %w", err)
	}
	walSeen := false
	if cp == nil {
		cp = &Checkpoint{}
	}
	if err := s.ReplayWAL(func(rec WALRecord) error {
		walSeen = true
		cp.Apply(rec)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("persist: replay WAL: %w", err)
	}
	if cp.Frontier == 0 && cp.Seq == 0 && cp.LinkReserve == 0 && !walSeen &&
		len(cp.Entries) == 0 && len(cp.Views) == 0 {
		return nil, nil
	}
	return cp, nil
}

// Clone returns a deep copy (stores hand out copies so callers cannot alias
// retained state).
func (cp *Checkpoint) Clone() *Checkpoint {
	if cp == nil {
		return nil
	}
	out := *cp
	out.Entries = append([]Entry(nil), cp.Entries...)
	out.Floors = append([]Floor(nil), cp.Floors...)
	out.Residue = append([]msg.ID(nil), cp.Residue...)
	out.Views = make([]View, len(cp.Views))
	for i, v := range cp.Views {
		out.Views[i] = View{Eff: v.Eff, Members: append([]stack.ProcessID(nil), v.Members...)}
	}
	return &out
}

// normalize puts a checkpoint into canonical form before encoding: floors
// sorted by sender, residue in canonical identifier order. The engine
// builds checkpoints from map state, so canonicalization is what keeps the
// stored bytes deterministic under a fixed simulation seed.
func (cp *Checkpoint) normalize() {
	sort.Slice(cp.Floors, func(i, j int) bool { return cp.Floors[i].Sender < cp.Floors[j].Sender })
	sort.Slice(cp.Residue, func(i, j int) bool { return cp.Residue[i].Less(cp.Residue[j]) })
}
