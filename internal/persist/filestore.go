package persist

import (
	"fmt"
	"os"
	"path/filepath"
)

// File names inside a FileStore directory.
const (
	ckptFile = "checkpoint.bin"
	walFile  = "wal.bin"
	tmpFile  = "checkpoint.tmp"
)

// FileStore is the file-backed Store: one directory per process holding the
// latest checkpoint (replaced atomically via rename) and an append-only WAL.
// It is what makes restart survive the OS process: point the next
// incarnation at the same directory.
type FileStore struct {
	dir    string
	wal    *os.File
	closed bool
}

// OpenFileStore opens (creating if needed) the store rooted at dir.
func OpenFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open store: %w", err)
	}
	w, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open WAL: %w", err)
	}
	return &FileStore{dir: dir, wal: w}, nil
}

// Dir returns the store's directory.
func (s *FileStore) Dir() string { return s.dir }

// SaveCheckpoint implements Store: write-to-temp then rename, so a crash
// mid-save leaves the previous checkpoint intact.
func (s *FileStore) SaveCheckpoint(cp *Checkpoint) error {
	if s.closed {
		return ErrClosed
	}
	c := cp.Clone()
	c.normalize()
	tmp := filepath.Join(s.dir, tmpFile)
	if err := os.WriteFile(tmp, EncodeCheckpoint(c), 0o644); err != nil {
		return fmt.Errorf("persist: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, ckptFile)); err != nil {
		return fmt.Errorf("persist: install checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint implements Store.
func (s *FileStore) LoadCheckpoint() (*Checkpoint, error) {
	if s.closed {
		return nil, ErrClosed
	}
	data, err := os.ReadFile(filepath.Join(s.dir, ckptFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: read checkpoint: %w", err)
	}
	return DecodeCheckpoint(data)
}

// AppendWAL implements Store.
func (s *FileStore) AppendWAL(rec WALRecord) error {
	if s.closed {
		return ErrClosed
	}
	if _, err := s.wal.Write(appendWALRecord(nil, rec)); err != nil {
		return fmt.Errorf("persist: append WAL: %w", err)
	}
	return nil
}

// ReplayWAL implements Store.
func (s *FileStore) ReplayWAL(fn func(WALRecord) error) error {
	if s.closed {
		return ErrClosed
	}
	data, err := os.ReadFile(filepath.Join(s.dir, walFile))
	if err != nil {
		return fmt.Errorf("persist: read WAL: %w", err)
	}
	return decodeWAL(data, fn)
}

// TruncateWAL implements Store.
func (s *FileStore) TruncateWAL() error {
	if s.closed {
		return ErrClosed
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("persist: truncate WAL: %w", err)
	}
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}
