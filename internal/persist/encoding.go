package persist

import (
	"fmt"

	"abcast/internal/msg"
	"abcast/internal/stack"
	"abcast/internal/wire/binary"
)

// ckptFormat is the first byte of an encoded checkpoint. Bump only on an
// incompatible layout change; a store finding an unknown format refuses the
// load rather than misparse.
const ckptFormat = 1

// appendID appends one identifier (zigzag sender + uvarint sequence, the
// wire codec's identifier layout).
func appendID(b []byte, id msg.ID) []byte {
	b = binary.AppendVarint(b, int64(id.Sender))
	return binary.AppendUvarint(b, id.Seq)
}

// readID reads one identifier.
func readID(r *binary.Reader) msg.ID {
	return msg.ID{Sender: stack.ProcessID(r.Varint()), Seq: r.Uvarint()}
}

// EncodeCheckpoint renders a checkpoint in the store's canonical binary
// form.
func EncodeCheckpoint(cp *Checkpoint) []byte {
	b := []byte{ckptFormat}
	b = binary.AppendUvarint(b, cp.Frontier)
	b = binary.AppendUvarint(b, cp.Seq)
	b = binary.AppendUvarint(b, cp.LinkReserve)
	b = binary.AppendUvarint(b, cp.LogBase)
	b = binary.AppendUvarint(b, uint64(len(cp.Entries)))
	for _, en := range cp.Entries {
		b = appendID(b, en.ID)
		b = binary.AppendUvarint(b, en.K)
	}
	b = binary.AppendUvarint(b, uint64(len(cp.Floors)))
	for _, fl := range cp.Floors {
		b = binary.AppendVarint(b, int64(fl.Sender))
		b = binary.AppendUvarint(b, fl.Seq)
	}
	b = binary.AppendUvarint(b, uint64(len(cp.Residue)))
	for _, id := range cp.Residue {
		b = appendID(b, id)
	}
	b = binary.AppendUvarint(b, uint64(len(cp.Views)))
	for _, v := range cp.Views {
		b = binary.AppendUvarint(b, v.Eff)
		b = binary.AppendUvarint(b, uint64(len(v.Members)))
		for _, m := range v.Members {
			b = binary.AppendVarint(b, int64(m))
		}
	}
	return b
}

// DecodeCheckpoint parses a checkpoint previously rendered by
// EncodeCheckpoint, treating the input as untrusted (bounds-checked lengths
// throughout).
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	r := binary.NewReader(data)
	if f := r.Byte(); r.Err() == nil && f != ckptFormat {
		return nil, fmt.Errorf("persist: unknown checkpoint format %d", f)
	}
	cp := &Checkpoint{}
	cp.Frontier = r.Uvarint()
	cp.Seq = r.Uvarint()
	cp.LinkReserve = r.Uvarint()
	cp.LogBase = r.Uvarint()
	if n := r.Len(3); n > 0 {
		cp.Entries = make([]Entry, n)
		for i := range cp.Entries {
			cp.Entries[i] = Entry{ID: readID(r), K: r.Uvarint()}
		}
	}
	if n := r.Len(2); n > 0 {
		cp.Floors = make([]Floor, n)
		for i := range cp.Floors {
			cp.Floors[i] = Floor{Sender: stack.ProcessID(r.Varint()), Seq: r.Uvarint()}
		}
	}
	if n := r.Len(2); n > 0 {
		cp.Residue = make([]msg.ID, n)
		for i := range cp.Residue {
			cp.Residue[i] = readID(r)
		}
	}
	if n := r.Len(2); n > 0 {
		cp.Views = make([]View, n)
		for i := range cp.Views {
			cp.Views[i].Eff = r.Uvarint()
			if k := r.Len(1); k > 0 {
				cp.Views[i].Members = make([]stack.ProcessID, k)
				for j := range cp.Views[i].Members {
					cp.Views[i].Members[j] = stack.ProcessID(r.Varint())
				}
			}
		}
	}
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("persist: decode checkpoint: %w", err)
	}
	return cp, nil
}

// appendWALRecord appends one WAL record (kind byte + uvarint value).
func appendWALRecord(b []byte, rec WALRecord) []byte {
	b = append(b, byte(rec.Kind))
	return binary.AppendUvarint(b, rec.Value)
}

// decodeWAL replays records from raw log bytes. A torn tail — the process
// died mid-append — ends the replay silently, the standard WAL contract:
// everything before the tear was durable and is returned.
func decodeWAL(data []byte, fn func(WALRecord) error) error {
	r := binary.NewReader(data)
	for r.Remaining() > 0 {
		k := r.Byte()
		if k != byte(WALSeq) && k != byte(WALLinkReserve) {
			return nil // torn or foreign tail; stop at the last good record
		}
		v := r.Uvarint()
		if r.Err() != nil {
			return nil
		}
		if err := fn(WALRecord{Kind: WALKind(k), Value: v}); err != nil {
			return err
		}
	}
	return nil
}
