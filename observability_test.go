package abcast

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"abcast/internal/metrics"
	"abcast/internal/netmodel"
	"abcast/internal/simnet"
	"abcast/internal/stack"
	"abcast/internal/trace"
)

func TestClusterTraceAndMetrics(t *testing.T) {
	c, err := New(3, Options{Trace: true, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const msgs = 5
	for i := 0; i < msgs; i++ {
		if err := c.Broadcast(1, []byte("observe")); err != nil {
			t.Fatal(err)
		}
	}
	for p := 1; p <= 3; p++ {
		collect(t, c, p, msgs)
	}

	var jsonl bytes.Buffer
	if err := c.WriteTrace(&jsonl, "jsonl"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonl.String(), `"kind":"adeliver"`) {
		t.Fatalf("JSONL trace holds no adeliver events:\n%.400s", jsonl.String())
	}
	var chrome bytes.Buffer
	if err := c.WriteTrace(&chrome, "chrome"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), `"traceEvents"`) {
		t.Fatal("chrome trace missing traceEvents array")
	}
	if err := c.WriteTrace(io.Discard, "xml"); err == nil {
		t.Fatal("unknown trace format accepted")
	}
	adelivers := 0
	for _, ev := range c.TraceEvents() {
		if ev.Kind == trace.KindADeliver && ev.P == 2 {
			adelivers++
		}
	}
	if adelivers < msgs {
		t.Fatalf("p2 recorded %d adeliver events, want ≥ %d", adelivers, msgs)
	}

	for p := 1; p <= 3; p++ {
		snap, err := c.MetricsSnapshot(p)
		if err != nil {
			t.Fatal(err)
		}
		if snap["core.delivered"] < msgs {
			t.Fatalf("p%d core.delivered = %d, want ≥ %d", p, snap["core.delivered"], msgs)
		}
	}
	snap, err := c.MetricsSnapshot(1)
	if err != nil {
		t.Fatal(err)
	}
	if snap["core.broadcasts"] != msgs {
		t.Fatalf("p1 core.broadcasts = %d, want %d", snap["core.broadcasts"], msgs)
	}
	if _, err := c.MetricsSnapshot(9); err == nil {
		t.Fatal("out-of-range process accepted")
	}
}

func TestClusterObservabilityDisabledByDefault(t *testing.T) {
	c, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteTrace(io.Discard, "jsonl"); err == nil {
		t.Fatal("WriteTrace succeeded without Options.Trace")
	}
	if evs := c.TraceEvents(); evs != nil {
		t.Fatalf("TraceEvents = %d events without Options.Trace", len(evs))
	}
	if _, err := c.MetricsSnapshot(1); err == nil {
		t.Fatal("MetricsSnapshot succeeded without Options.Metrics")
	}
	if addr := c.MetricsAddr(); addr != "" {
		t.Fatalf("MetricsAddr = %q without Options.MetricsAddr", addr)
	}
}

func TestClusterMetricsHTTP(t *testing.T) {
	c, err := New(2, Options{MetricsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Broadcast(1, []byte("served")); err != nil {
		t.Fatal(err)
	}
	collect(t, c, 2, 1)
	base := "http://" + c.MetricsAddr()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"p1.core.delivered 1", "p2.core.delivered 1", "p1.fd.heartbeats_sent"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
	// MetricsAddr implies Metrics: the in-process view works too.
	if _, err := c.MetricsSnapshot(1); err != nil {
		t.Fatal(err)
	}
}

// TestClusterStatsTimeoutDoesNotLeak pins the Stats timeout contract: a
// snapshot that cannot be answered in time returns ok=false without leaking
// a goroutine — the result channel is buffered, so the late closure's send
// never blocks (see Stats).
func TestClusterStatsTimeoutDoesNotLeak(t *testing.T) {
	c, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	before := runtime.NumGoroutine()
	release := make(chan struct{})
	blocked := make(chan struct{})
	c.net.Do(stack.ProcessID(1), func() {
		close(blocked)
		<-release
	})
	<-blocked
	const attempts = 50
	for i := 0; i < attempts; i++ {
		if _, ok := c.Stats(1, time.Millisecond); ok {
			t.Fatal("Stats succeeded against a blocked event loop")
		}
	}
	close(release)
	if _, ok := c.Stats(1, 10*time.Second); !ok {
		t.Fatal("Stats failed after the event loop was unblocked")
	}
	// The timed-out closures have all run by now (the loop is drained in
	// order); give the runtime a moment and check nothing stuck around.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+5 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after %d timed-out Stats calls",
		before, runtime.NumGoroutine(), attempts)
}

// TestClusterStatsSurfacesPersistCounters checks the persistence counters
// reach the public Stats view.
func TestClusterStatsSurfacesPersistCounters(t *testing.T) {
	c, err := New(3, Options{Persist: &PersistOptions{Interval: 5 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Broadcast(1, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	collect(t, c, 1, 1)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := c.Stats(1, time.Second)
		if ok && st.Checkpoints >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("Stats.Checkpoints never reached 1 despite a 5ms checkpoint interval")
}

// TestMetricsCatalogDocumented is the metric-name drift gate, the
// counterpart of CI's knob-matrix check: every metric a fully-featured
// process registers — plus the simulator's traffic counters — must appear
// backticked in docs/OPERATIONS.md, so the doc's catalog cannot silently
// fall behind the code.
func TestMetricsCatalogDocumented(t *testing.T) {
	c, err := New(3, Options{
		Metrics:  true,
		Snapshot: true,
		Persist:  &PersistOptions{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	names := c.regs[1].Names()
	if len(names) == 0 {
		t.Fatal("fully-featured process registered no metrics")
	}
	simReg := metrics.New()
	simnet.NewWorld(2, netmodel.Setup1(), 1).SetMetrics(simReg)
	names = append(names, simReg.Names()...)

	doc, err := os.ReadFile("docs/OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	for _, n := range names {
		if !strings.Contains(string(doc), "`"+n+"`") {
			missing = append(missing, n)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("metric names missing from docs/OPERATIONS.md: %v", missing)
	}
}
