package abcast

// Concurrency tests meant to run under the race detector (the CI runs
// `go test -race ./...`): the deliveryQueue and the public Cluster surface
// are the two places where caller goroutines meet the per-process event
// loops.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"abcast/internal/stack"
)

// TestDeliveryQueueConcurrent hammers one deliveryQueue from several
// producers and consumers, then closes it mid-stream: every item must be
// consumed at most once, and nobody may hang or race.
func TestDeliveryQueueConcurrent(t *testing.T) {
	q := newDeliveryQueue()
	const producers, perProducer, consumers = 4, 250, 3
	var consumed int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.put(Delivery{Sender: p + 1, Seq: uint64(i + 1)})
			}
		}()
	}
	seen := make([]map[uint64]bool, producers+1)
	var seenMu sync.Mutex
	for i := 1; i <= producers; i++ {
		seen[i] = make(map[uint64]bool)
	}
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				d, ok := q.next(500 * time.Millisecond)
				if !ok {
					return // closed or drained
				}
				seenMu.Lock()
				if seen[d.Sender][d.Seq] {
					t.Errorf("delivery %d:%d consumed twice", d.Sender, d.Seq)
				}
				seen[d.Sender][d.Seq] = true
				seenMu.Unlock()
				atomic.AddInt64(&consumed, 1)
			}
		}()
	}
	wg.Wait()
	// Let the consumers drain, then close while they are still polling.
	for atomic.LoadInt64(&consumed) < producers*perProducer {
		time.Sleep(time.Millisecond)
	}
	q.close()
	cwg.Wait()
	if got := atomic.LoadInt64(&consumed); got != producers*perProducer {
		t.Fatalf("consumed %d of %d deliveries", got, producers*perProducer)
	}
	// put after close must be a quiet no-op.
	q.put(Delivery{Sender: 1, Seq: 9999})
	if _, ok := q.next(10 * time.Millisecond); ok {
		t.Fatal("delivery accepted after close")
	}
}

// TestClusterConcurrentUse exercises the full public surface — Broadcast,
// Next, Stats — from many goroutines against a pipelined live cluster, and
// finally Close races a blocked Next. Run it under -race.
func TestClusterConcurrentUse(t *testing.T) {
	const n, perProc = 3, 20
	c, err := New(n, Options{
		Stack:    IndirectCT,
		Pipeline: 4,
		MaxBatch: 2,
		Latency:  50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 1; p <= n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				if err := c.Broadcast(p, []byte(fmt.Sprintf("m%d-%d", p, i))); err != nil {
					t.Errorf("Broadcast(p%d): %v", p, err)
					return
				}
			}
		}()
	}
	// A stats poller runs alongside the broadcasters.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			c.Stats(i%n+1, time.Second)
		}
	}()
	// Each process's deliveries are drained by its own consumer; all must
	// see the same total order.
	orders := make([][]Delivery, n+1)
	var cwg sync.WaitGroup
	for p := 1; p <= n; p++ {
		p := p
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for len(orders[p]) < n*perProc {
				d, ok := c.Next(p, 20*time.Second)
				if !ok {
					t.Errorf("p%d: timed out after %d deliveries", p, len(orders[p]))
					return
				}
				orders[p] = append(orders[p], d)
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	for p := 2; p <= n; p++ {
		if len(orders[p]) != len(orders[1]) {
			t.Fatalf("p%d delivered %d, p1 delivered %d", p, len(orders[p]), len(orders[1]))
		}
		for i := range orders[1] {
			a, b := orders[1][i], orders[p][i]
			if a.Sender != b.Sender || a.Seq != b.Seq {
				t.Fatalf("order diverges at %d: p1=%d:%d p%d=%d:%d",
					i, a.Sender, a.Seq, p, b.Sender, b.Seq)
			}
		}
	}
	// Close must unblock a waiting Next rather than leak it.
	unblocked := make(chan struct{})
	go func() {
		c.Next(1, time.Minute)
		close(unblocked)
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case <-unblocked:
	case <-time.After(5 * time.Second):
		t.Fatal("Next still blocked after Close")
	}
}

// TestClusterAdaptiveActuatorRace exercises the adaptive control plane's
// cross-goroutine surface under -race: while broadcasters, a stats poller
// and per-process consumers hammer an Adaptive+Recovery cluster, an
// external controller goroutine runs Observe→Retarget plus the
// anti-entropy cadence actuator (core.SetAntiEntropy → relink.SetInterval)
// against every process, racing the per-process control loops that drive
// the same actuators from adaptTick. All actuator calls are enqueued onto
// the owning process's event loop — the discipline the eventloop analyzer
// enforces statically — so the run must be race-clean and every process
// must still deliver the same total order.
func TestClusterAdaptiveActuatorRace(t *testing.T) {
	const n, perProc = 3, 15
	c, err := New(n, Options{
		Stack:    IndirectCT,
		Adaptive: true,
		Recovery: true,
		Latency:  50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 1; p <= n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProc; i++ {
				if err := c.Broadcast(p, []byte(fmt.Sprintf("a%d-%d", p, i))); err != nil {
					t.Errorf("Broadcast(p%d): %v", p, err)
					return
				}
			}
		}()
	}
	// The external controller: observe, retarget the window/batch pair,
	// and retune the anti-entropy cadence, round-robin over processes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			p := i%n + 1
			step := i
			done := make(chan struct{})
			c.net.Do(stack.ProcessID(p), func() {
				o := c.engines[p].Observe()
				c.engines[p].Retarget(o.Window+step%2, o.MaxBatch)
				c.engines[p].SetAntiEntropy(time.Duration(1+step%4) * time.Millisecond)
				close(done)
			})
			<-done
		}
	}()
	// A stats poller reads the same state the controller writes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			c.Stats(i%n+1, time.Second)
		}
	}()
	orders := make([][]Delivery, n+1)
	var cwg sync.WaitGroup
	for p := 1; p <= n; p++ {
		p := p
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for len(orders[p]) < n*perProc {
				d, ok := c.Next(p, 20*time.Second)
				if !ok {
					t.Errorf("p%d: timed out after %d deliveries", p, len(orders[p]))
					return
				}
				orders[p] = append(orders[p], d)
			}
		}()
	}
	wg.Wait()
	cwg.Wait()
	for p := 2; p <= n; p++ {
		if len(orders[p]) != len(orders[1]) {
			t.Fatalf("p%d delivered %d, p1 delivered %d", p, len(orders[p]), len(orders[1]))
		}
		for i := range orders[1] {
			a, b := orders[1][i], orders[p][i]
			if a.Sender != b.Sender || a.Seq != b.Seq {
				t.Fatalf("order diverges at %d: p1=%d:%d p%d=%d:%d",
					i, a.Sender, a.Seq, p, b.Sender, b.Seq)
			}
		}
	}
	c.Close()
}
