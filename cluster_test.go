package abcast

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"abcast/internal/netmodel"
)

func stacks() []Stack {
	return []Stack{IndirectCT, IndirectMR, ConsensusOnMessages, ConsensusWithURB}
}

// collect drains exactly count deliveries from process p.
func collect(t *testing.T, c *Cluster, p, count int) []Delivery {
	t.Helper()
	out := make([]Delivery, 0, count)
	for len(out) < count {
		d, ok := c.Next(p, 10*time.Second)
		if !ok {
			t.Fatalf("p%d: timed out after %d/%d deliveries", p, len(out), count)
		}
		out = append(out, d)
	}
	return out
}

func TestClusterTotalOrderLive(t *testing.T) {
	for _, s := range stacks() {
		t.Run(s.String(), func(t *testing.T) {
			c, err := New(3, Options{Stack: s, Latency: 100 * time.Microsecond})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			const perProc = 5
			for p := 1; p <= 3; p++ {
				for i := 0; i < perProc; i++ {
					if err := c.Broadcast(p, []byte(fmt.Sprintf("m%d-%d", p, i))); err != nil {
						t.Fatal(err)
					}
				}
			}
			total := 3 * perProc
			seqs := make([][]Delivery, 4)
			for p := 1; p <= 3; p++ {
				seqs[p] = collect(t, c, p, total)
			}
			for p := 2; p <= 3; p++ {
				for i := range seqs[1] {
					a, b := seqs[1][i], seqs[p][i]
					if a.Sender != b.Sender || a.Seq != b.Seq {
						t.Fatalf("order diverges at %d: p1=%v:%d p%d=%v:%d",
							i, a.Sender, a.Seq, p, b.Sender, b.Seq)
					}
				}
			}
		})
	}
}

func TestClusterPayloadIntegrity(t *testing.T) {
	c, err := New(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := []byte("mutate-me")
	if err := c.Broadcast(1, payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X' // caller reuse must not corrupt the broadcast
	d, ok := c.Next(2, 10*time.Second)
	if !ok {
		t.Fatal("no delivery")
	}
	if string(d.Payload) != "mutate-me" {
		t.Fatalf("payload corrupted: %q", d.Payload)
	}
	if d.Sender != 1 || d.Seq != 1 {
		t.Fatalf("delivery id = %d:%d", d.Sender, d.Seq)
	}
}

func TestClusterCrashTolerance(t *testing.T) {
	c, err := New(3, Options{Stack: IndirectCT})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Broadcast(1, []byte("before")); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 3} {
		if d, ok := c.Next(p, 10*time.Second); !ok || string(d.Payload) != "before" {
			t.Fatalf("p%d missing pre-crash delivery", p)
		}
	}
	c.Crash(2)
	if err := c.Broadcast(3, []byte("after")); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 3} {
		if d, ok := c.Next(p, 15*time.Second); !ok || string(d.Payload) != "after" {
			t.Fatalf("p%d did not deliver post-crash broadcast", p)
		}
	}
}

func TestClusterOnDeliverCallback(t *testing.T) {
	var mu sync.Mutex
	got := map[int]int{}
	c, err := New(3, Options{OnDeliver: func(p int, d Delivery) {
		mu.Lock()
		got[p]++
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Broadcast(2, []byte("cb")); err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 3; p++ {
		collect(t, c, p, 1)
	}
	mu.Lock()
	defer mu.Unlock()
	for p := 1; p <= 3; p++ {
		if got[p] != 1 {
			t.Fatalf("OnDeliver fired %d times at p%d", got[p], p)
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(0, Options{}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New(3, Options{Stack: Stack(42)}); err == nil {
		t.Error("bogus stack accepted")
	}
	c, err := New(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Broadcast(2, nil); err == nil {
		t.Error("out-of-range process accepted")
	}
	if _, ok := c.Next(9, time.Millisecond); ok {
		t.Error("Next on bogus process succeeded")
	}
}

func TestClusterSingleProcess(t *testing.T) {
	c, err := New(1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if err := c.Broadcast(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ds := collect(t, c, 1, 3)
	for i, d := range ds {
		if d.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, d.Seq)
		}
	}
}

func TestNextTimeout(t *testing.T) {
	c, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, ok := c.Next(1, 50*time.Millisecond); ok {
		t.Fatal("delivery out of nowhere")
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("Next returned before its timeout")
	}
}

func TestClusterStats(t *testing.T) {
	c, err := New(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Broadcast(1, []byte("s")); err != nil {
		t.Fatal(err)
	}
	collect(t, c, 2, 1)
	st, ok := c.Stats(2, 5*time.Second)
	if !ok {
		t.Fatal("Stats timed out")
	}
	if st.Delivered != 1 || st.Received != 1 || st.Instances == 0 {
		t.Fatalf("Stats = %+v", st)
	}
	if _, ok := c.Stats(99, time.Millisecond); ok {
		t.Fatal("Stats accepted bogus process")
	}
	c.Crash(3)
	if _, ok := c.Stats(3, 100*time.Millisecond); ok {
		t.Fatal("Stats of crashed process succeeded")
	}
}

// TestBroadcastOnCrashedProcess is the regression test for the silent-drop
// bug: Broadcast on a crashed process used to enqueue a closure that never
// ran and report success; it must fail instead. Stats likewise must fail
// fast rather than waiting out its timeout.
func TestBroadcastOnCrashedProcess(t *testing.T) {
	c, err := New(3, Options{Stack: IndirectCT})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Broadcast(2, []byte("pre")); err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 3; p++ {
		collect(t, c, p, 1)
	}
	c.Crash(2)
	if err := c.Broadcast(2, []byte("lost")); err == nil {
		t.Fatal("Broadcast from a crashed process reported success")
	}
	start := time.Now()
	if _, ok := c.Stats(2, 10*time.Second); ok {
		t.Fatal("Stats of a crashed process succeeded")
	}
	if time.Since(start) > time.Second {
		t.Fatal("Stats of a crashed process waited for the timeout instead of failing fast")
	}
	// The survivors are unaffected.
	if err := c.Broadcast(1, []byte("post")); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 3} {
		if d, ok := c.Next(p, 15*time.Second); !ok || string(d.Payload) != "post" {
			t.Fatalf("p%d missing post-crash delivery", p)
		}
	}
}

// TestClusterPipelinedTotalOrder runs the public API with the pipeline knob
// on: order and payload integrity must be as with the serial default.
func TestClusterPipelinedTotalOrder(t *testing.T) {
	c, err := New(3, Options{
		Stack:    IndirectCT,
		Pipeline: 4,
		MaxBatch: 2,
		Latency:  100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const perProc = 8
	for p := 1; p <= 3; p++ {
		for i := 0; i < perProc; i++ {
			if err := c.Broadcast(p, []byte(fmt.Sprintf("m%d-%d", p, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := 3 * perProc
	seqs := make([][]Delivery, 4)
	for p := 1; p <= 3; p++ {
		seqs[p] = collect(t, c, p, total)
	}
	for p := 2; p <= 3; p++ {
		for i := range seqs[1] {
			a, b := seqs[1][i], seqs[p][i]
			if a.Sender != b.Sender || a.Seq != b.Seq {
				t.Fatalf("pipelined order diverges at %d: p1=%v:%d p%d=%v:%d",
					i, a.Sender, a.Seq, p, b.Sender, b.Seq)
			}
		}
	}
}

// TestClusterAdaptiveTotalOrder: the adaptive control plane on the live
// (goroutine) runtime — a burst far above the serial ceiling must still be
// delivered everywhere in one total order while the controller retargets
// width and batch underneath, and Stats must expose the applied knobs.
func TestClusterAdaptiveTotalOrder(t *testing.T) {
	c, err := New(3, Options{
		Stack:    IndirectCT,
		Adaptive: true,
		Latency:  200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const perProc = 40
	for i := 0; i < perProc; i++ {
		for p := 1; p <= 3; p++ {
			if err := c.Broadcast(p, []byte(fmt.Sprintf("m%d-%d", p, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := 3 * perProc
	seqs := make([][]Delivery, 4)
	for p := 1; p <= 3; p++ {
		seqs[p] = collect(t, c, p, total)
	}
	for p := 2; p <= 3; p++ {
		for i := range seqs[1] {
			a, b := seqs[1][i], seqs[p][i]
			if a.Sender != b.Sender || a.Seq != b.Seq {
				t.Fatalf("adaptive order diverges at %d: p1=%v:%d p%d=%v:%d",
					i, a.Sender, a.Seq, p, b.Sender, b.Seq)
			}
		}
	}
	st, ok := c.Stats(1, 5*time.Second)
	if !ok {
		t.Fatal("stats unavailable")
	}
	if st.Window < 1 || st.MaxBatch < 1 {
		t.Fatalf("adaptive knobs not surfaced: %+v", st)
	}
}

func TestStackStrings(t *testing.T) {
	for _, s := range append(stacks(), FaultyConsensusOnIDs) {
		if s.String() == "" || s.String()[0] == 'S' {
			t.Fatalf("missing String for %d", int(s))
		}
	}
}

// TestClusterWANTopology runs the live cluster on the 3-site WAN topology:
// deliveries must still be totally ordered, and a delivery cannot beat one
// inter-site crossing of wall-clock time (the topology's slow links are
// real sleeps on the live runtime).
func TestClusterWANTopology(t *testing.T) {
	// Scale the WAN profile down 10x so the test stays fast while keeping
	// the inter-site asymmetry.
	topo := netmodel.WAN3Sites().Topology
	for i := range topo.SiteLink {
		for j := range topo.SiteLink[i] {
			topo.SiteLink[i][j].Latency /= 10
			topo.SiteLink[i][j].Jitter /= 10
		}
	}
	c, err := New(3, Options{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.Broadcast(1, []byte("geo")); err != nil {
		t.Fatal(err)
	}
	minCrossing := topo.SiteLink[0][1].Latency // the fastest inter-site link
	for p := 1; p <= 3; p++ {
		d, ok := c.Next(p, 30*time.Second)
		if !ok {
			t.Fatalf("p%d: no delivery on the WAN topology", p)
		}
		if d.Sender != 1 || string(d.Payload) != "geo" {
			t.Fatalf("p%d delivered %+v", p, d)
		}
	}
	if elapsed := time.Since(start); elapsed < minCrossing {
		t.Fatalf("WAN delivery completed in %v, below one inter-site crossing %v: topology latencies not applied",
			elapsed, minCrossing)
	}
	// A second round still totally ordered across sites.
	for p := 1; p <= 3; p++ {
		if err := c.Broadcast(p, []byte(fmt.Sprintf("r2-%d", p))); err != nil {
			t.Fatal(err)
		}
	}
	orders := make([][]Delivery, 4)
	for p := 1; p <= 3; p++ {
		orders[p] = collect(t, c, p, 3)
	}
	for p := 2; p <= 3; p++ {
		for i := range orders[1] {
			a, b := orders[1][i], orders[p][i]
			if a.Sender != b.Sender || a.Seq != b.Seq {
				t.Fatalf("total order violated across WAN sites: p1[%d]=%+v p%d[%d]=%+v",
					i, a, p, i, b)
			}
		}
	}
}

// collectDistinct drains deliveries from p until count messages not yet in
// seen have arrived, deduplicating by (Sender, Seq) — the consumer contract
// across a restart is at-least-once, and the caller keeps seen across calls
// because a restarted process redelivers the suffix above its checkpoint.
// Returns the new messages in first-delivery order.
func collectDistinct(t *testing.T, c *Cluster, p, count int, seen map[[2]uint64]bool) []Delivery {
	t.Helper()
	out := make([]Delivery, 0, count)
	deadline := time.Now().Add(60 * time.Second)
	for len(out) < count {
		d, ok := c.Next(p, time.Until(deadline))
		if !ok {
			t.Fatalf("p%d: timed out after %d/%d distinct deliveries", p, len(out), count)
		}
		k := [2]uint64{uint64(d.Sender), d.Seq}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, d)
	}
	return out
}

// testClusterRestart drives the public crash-recovery surface end to end:
// traffic before the crash, traffic while p3 is down, a restart that
// rehydrates from the store, and — the aliasing check — a post-restart
// broadcast from the restarted process that must carry a fresh sequence
// number and deliver everywhere. Every process's deduplicated delivery
// sequence must be the same total order.
func testClusterRestart(t *testing.T, po *PersistOptions) {
	c, err := New(3, Options{Stack: IndirectCT, Persist: po, Latency: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Restart(1); err == nil {
		t.Fatal("Restart of a running process succeeded")
	}

	// Phase 1: three broadcasts from every process, including the future
	// crash victim (so its WAL records sequence numbers 1..3).
	for i := 0; i < 3; i++ {
		for p := 1; p <= 3; p++ {
			if err := c.Broadcast(p, []byte(fmt.Sprintf("a%d-%d", p, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	seqs := make([][]Delivery, 4)
	seen := make([]map[[2]uint64]bool, 4)
	for p := 1; p <= 3; p++ {
		seen[p] = map[[2]uint64]bool{}
		seqs[p] = collectDistinct(t, c, p, 9, seen[p])
	}
	// Let a checkpoint land so the restart exercises rehydration, not just
	// a from-scratch catch-up.
	time.Sleep(6 * po.Interval)

	c.Crash(3)
	// Phase 2: the survivors keep ordering while p3 is down.
	for i := 0; i < 2; i++ {
		for _, p := range []int{1, 2} {
			if err := c.Broadcast(p, []byte(fmt.Sprintf("b%d-%d", p, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, p := range []int{1, 2} {
		seqs[p] = append(seqs[p], collectDistinct(t, c, p, 4, seen[p])...)
	}

	if err := c.Restart(3); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	// Phase 3: the restarted incarnation broadcasts; its sequence number
	// must not alias any pre-crash identifier (the WAL's job).
	if err := c.Broadcast(3, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2} {
		seqs[p] = append(seqs[p], collectDistinct(t, c, p, 1, seen[p])...)
	}
	// The restarted process consumed phase 1 before the crash; what remains
	// is the tail it missed (phase 2) plus the fresh broadcast — suffix
	// redeliveries below its checkpoint boundary dedupe away via seen.
	// Appended to its pre-crash prefix, its sequence is the same 14-message
	// total order as everyone else's.
	seqs[3] = append(seqs[3], collectDistinct(t, c, 3, 5, seen[3])...)
	for p := 2; p <= 3; p++ {
		for i := range seqs[1] {
			a, b := seqs[1][i], seqs[p][i]
			if a.Sender != b.Sender || a.Seq != b.Seq {
				t.Fatalf("order diverges at %d: p1=%d:%d p%d=%d:%d",
					i, a.Sender, a.Seq, p, b.Sender, b.Seq)
			}
		}
	}
	last := seqs[1][len(seqs[1])-1]
	if last.Sender != 3 || last.Seq != 4 || string(last.Payload) != "fresh" {
		t.Fatalf("post-restart broadcast = %d:%d %q, want 3:4 \"fresh\" (sequence aliased?)",
			last.Sender, last.Seq, last.Payload)
	}
}

func TestClusterRestartMem(t *testing.T) {
	testClusterRestart(t, &PersistOptions{Interval: 50 * time.Millisecond})
}

func TestClusterRestartFile(t *testing.T) {
	testClusterRestart(t, &PersistOptions{Dir: t.TempDir(), Interval: 50 * time.Millisecond})
}

// TestClusterRestartValidation: Restart requires Options.Persist, an
// in-range process, and a crashed target.
func TestClusterRestartValidation(t *testing.T) {
	c, err := New(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Crash(2)
	if err := c.Restart(2); err == nil {
		t.Error("Restart accepted without Options.Persist")
	}
	d, err := New(2, Options{Persist: &PersistOptions{}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Restart(9); err == nil {
		t.Error("Restart accepted an out-of-range process")
	}
	if err := d.Restart(1); err == nil {
		t.Error("Restart accepted a running process")
	}
}

// TestSameSitePeers pins the Cluster's PreferPeers auto-wiring: on a
// Topology setup each process prefers its co-located peers for repair
// traffic; a uniform network (or a process alone at its site) wires none.
func TestSameSitePeers(t *testing.T) {
	if got := sameSitePeers(nil, 1, 4); got != nil {
		t.Fatalf("uniform network wired PreferPeers %v", got)
	}
	topo := netmodel.WAN3Sites().Topology // round-robin sites
	// n=6: site 0 = {1,4}, site 1 = {2,5}, site 2 = {3,6}.
	if got := fmt.Sprint(sameSitePeers(topo, 1, 6)); got != "[4]" {
		t.Fatalf("sameSitePeers(p1, n=6) = %v, want [4]", got)
	}
	if got := fmt.Sprint(sameSitePeers(topo, 5, 6)); got != "[2]" {
		t.Fatalf("sameSitePeers(p5, n=6) = %v, want [2]", got)
	}
	// n=3: every process is alone at its site — no preference.
	if got := sameSitePeers(topo, 2, 3); got != nil {
		t.Fatalf("sameSitePeers(p2, n=3) = %v, want none", got)
	}
}

// waitMembers polls Stats(p) until its applied member set equals want.
func waitMembers(t *testing.T, c *Cluster, p int, want []int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, ok := c.Stats(p, time.Second)
		if ok && fmt.Sprint(st.Members) == fmt.Sprint(want) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("p%d: members = %v (ok=%v), want %v", p, st.Members, ok, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterDynamicMembership drives the public dynamic-membership surface
// on the live runtime: a 4-process cluster starts with group {1,2,3},
// process 4 joins mid-stream (and must deliver the complete pre-join
// history, in the same total order, through the recovery machinery), then
// process 2 leaves and the remaining members keep ordering.
func TestClusterDynamicMembership(t *testing.T) {
	c, err := New(4, Options{
		Stack:      IndirectCT,
		Membership: []int{1, 2, 3},
		Recovery:   true,
		Snapshot:   true,
		Latency:    100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const pre = 4
	for i := 0; i < pre; i++ {
		if err := c.Broadcast(1, []byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seq1 := collect(t, c, 1, pre)
	collect(t, c, 2, pre)
	collect(t, c, 3, pre)

	if err := c.Join(4); err != nil {
		t.Fatalf("Join: %v", err)
	}
	waitMembers(t, c, 1, []int{1, 2, 3, 4})

	const post = 4
	for i := 0; i < post; i++ {
		if err := c.Broadcast(3, []byte(fmt.Sprintf("post-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seq1 = append(seq1, collect(t, c, 1, post)...)
	collect(t, c, 2, post)
	collect(t, c, 3, post)
	// The joiner reconstructs the entire history: pre-join traffic it never
	// saw diffused plus the post-join tail, in the members' order.
	seq4 := collect(t, c, 4, pre+post)
	for i := range seq1 {
		if seq1[i].Sender != seq4[i].Sender || seq1[i].Seq != seq4[i].Seq {
			t.Fatalf("joiner order diverges at %d: p1=%d:%d p4=%d:%d",
				i, seq1[i].Sender, seq1[i].Seq, seq4[i].Sender, seq4[i].Seq)
		}
	}

	if err := c.Leave(2); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	waitMembers(t, c, 1, []int{1, 3, 4})
	if err := c.Broadcast(1, []byte("final")); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 3, 4} {
		if d, ok := c.Next(p, 15*time.Second); !ok || string(d.Payload) != "final" {
			t.Fatalf("p%d missing post-leave delivery", p)
		}
	}
}

// TestClusterMembershipValidation: Join/Leave require Options.Membership
// and in-range processes; a bogus initial membership is rejected.
func TestClusterMembershipValidation(t *testing.T) {
	c, err := New(3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Join(2); err == nil {
		t.Error("Join accepted without Options.Membership")
	}
	if err := c.Leave(2); err == nil {
		t.Error("Leave accepted without Options.Membership")
	}
	if _, err := New(3, Options{Membership: []int{}}); err == nil {
		t.Error("empty Membership accepted")
	}
	if _, err := New(3, Options{Membership: []int{1, 4}}); err == nil {
		t.Error("out-of-range member accepted")
	}
	if _, err := New(3, Options{Membership: []int{1, 1}}); err == nil {
		t.Error("duplicate member accepted")
	}
	d, err := New(3, Options{Membership: []int{1, 2}, Recovery: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Join(9); err == nil {
		t.Error("Join accepted an out-of-range process")
	}
}
